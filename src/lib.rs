pub use mpi_core; pub use netsim; pub use simcore; pub use transport; pub use workloads;
