//! Minimal in-repo reimplementation of the subset of the `proptest` API
//! this workspace uses (offline build — see README "offline builds").
//!
//! Differences from upstream proptest, accepted for this workspace:
//! * no shrinking — a failing case reports its case number and seed; runs
//!   are deterministic per test name, so failures reproduce exactly;
//! * the default case count is 64 (upstream: 256), overridable with the
//!   `PROPTEST_CASES` environment variable, because several suites here
//!   run whole simulations per case.

pub mod strategy {
    use crate::test_runner::TestRng;

    /// A generator of values of type `Value`.
    ///
    /// Object safe: `generate` takes no generics, so `Box<dyn Strategy>`
    /// works (needed by `prop_oneof!` over heterogeneous arms).
    pub trait Strategy {
        type Value;

        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        fn prop_map<O, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> O,
        {
            Map { inner: self, f }
        }

        /// Derive a second strategy from each generated value (dependent
        /// generation, e.g. "pick `n`, then pick a vec of length `n`").
        /// Without shrinking, this is just generate-then-generate.
        fn prop_flat_map<O, F>(self, f: F) -> FlatMap<Self, F>
        where
            Self: Sized,
            O: Strategy,
            F: Fn(Self::Value) -> O,
        {
            FlatMap { inner: self, f }
        }

        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            Box::new(self)
        }
    }

    pub type BoxedStrategy<V> = Box<dyn Strategy<Value = V>>;

    impl<V> Strategy for BoxedStrategy<V> {
        type Value = V;
        fn generate(&self, rng: &mut TestRng) -> V {
            (**self).generate(rng)
        }
    }

    /// Always produces a clone of one value.
    #[derive(Clone, Debug)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
        type Value = O;
        fn generate(&self, rng: &mut TestRng) -> O {
            (self.f)(self.inner.generate(rng))
        }
    }

    pub struct FlatMap<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, O: Strategy, F: Fn(S::Value) -> O> Strategy for FlatMap<S, F> {
        type Value = O::Value;
        fn generate(&self, rng: &mut TestRng) -> O::Value {
            (self.f)(self.inner.generate(rng)).generate(rng)
        }
    }

    /// Uniform choice among boxed alternative strategies (`prop_oneof!`).
    pub struct Union<V> {
        arms: Vec<BoxedStrategy<V>>,
    }

    impl<V> Union<V> {
        pub fn new(arms: Vec<BoxedStrategy<V>>) -> Union<V> {
            assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
            Union { arms }
        }
    }

    impl<V> Strategy for Union<V> {
        type Value = V;
        fn generate(&self, rng: &mut TestRng) -> V {
            let i = (rng.next_u64() % self.arms.len() as u64) as usize;
            self.arms[i].generate(rng)
        }
    }

    macro_rules! impl_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for std::ops::Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end as i128 - self.start as i128) as u128;
                    (self.start as i128 + (rng.next_u64() as u128 % span) as i128) as $t
                }
            }
            impl Strategy for std::ops::RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "empty range strategy");
                    let span = (hi as i128 - lo as i128 + 1) as u128;
                    (lo as i128 + (rng.next_u64() as u128 % span) as i128) as $t
                }
            }
        )*};
    }
    impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Strategy for std::ops::Range<f64> {
        type Value = f64;
        fn generate(&self, rng: &mut TestRng) -> f64 {
            let unit = (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
            self.start + unit * (self.end - self.start)
        }
    }

    macro_rules! impl_tuple_strategy {
        ($(($($s:ident . $idx:tt),+))*) => {$(
            impl<$($s: Strategy),+> Strategy for ($($s,)+) {
                type Value = ($($s::Value,)+);
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$idx.generate(rng),)+)
                }
            }
        )*};
    }
    impl_tuple_strategy! {
        (A.0, B.1)
        (A.0, B.1, C.2)
        (A.0, B.1, C.2, D.3)
        (A.0, B.1, C.2, D.3, E.4)
        (A.0, B.1, C.2, D.3, E.4, F.5)
    }

    /// Types with a canonical "any value" strategy (`any::<T>()`).
    pub trait Arbitrary: Sized {
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    macro_rules! impl_arbitrary_int {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut TestRng) -> $t {
                    rng.next_u64() as $t
                }
            }
        )*};
    }
    impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    pub struct Any<T>(std::marker::PhantomData<T>);

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }

    pub fn any<T: Arbitrary>() -> Any<T> {
        Any(std::marker::PhantomData)
    }
}

pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    pub struct VecStrategy<S> {
        elem: S,
        size: std::ops::Range<usize>,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.end - self.size.start).max(1) as u64;
            let n = self.size.start + (rng.next_u64() % span) as usize;
            (0..n).map(|_| self.elem.generate(rng)).collect()
        }
    }

    /// `prop::collection::vec(element, size_range)`.
    pub fn vec<S: Strategy>(elem: S, size: std::ops::Range<usize>) -> VecStrategy<S> {
        VecStrategy { elem, size }
    }
}

pub mod test_runner {
    /// Deterministic per-test RNG (SplitMix64). Each named test gets its
    /// own fixed stream, so failures reproduce without recording a seed.
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        pub fn for_test(name: &str) -> TestRng {
            let mut h: u64 = 0xcbf2_9ce4_8422_2325;
            for b in name.bytes() {
                h ^= b as u64;
                h = h.wrapping_mul(0x1000_0000_01b3);
            }
            TestRng { state: h ^ 0x5DEE_CE66_D6A5_7A1F }
        }

        #[inline]
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }

    /// Subset of proptest's config: just the case count.
    #[derive(Clone, Debug)]
    pub struct ProptestConfig {
        pub cases: u32,
    }

    impl ProptestConfig {
        pub fn with_cases(cases: u32) -> ProptestConfig {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> ProptestConfig {
            let cases = std::env::var("PROPTEST_CASES")
                .ok()
                .and_then(|v| v.parse().ok())
                .unwrap_or(64);
            ProptestConfig { cases }
        }
    }

    /// A failed property assertion (carried out of the case body).
    #[derive(Debug)]
    pub struct TestCaseError {
        pub message: String,
    }

    impl TestCaseError {
        pub fn fail(message: String) -> TestCaseError {
            TestCaseError { message }
        }
    }

    impl std::fmt::Display for TestCaseError {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            write!(f, "{}", self.message)
        }
    }
}

/// `proptest::prelude` — the common imports.
pub mod prelude {
    pub use crate::strategy::{any, Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};

    /// `proptest::prelude::prop` — module-style access (`prop::collection::vec`).
    pub mod prop {
        pub use crate::collection;
    }
}

#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_fns! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_fns! { ($crate::test_runner::ProptestConfig::default()) $($rest)* }
    };
}

#[macro_export]
#[doc(hidden)]
macro_rules! __proptest_fns {
    ( ($cfg:expr) ) => {};
    ( ($cfg:expr)
      $(#[$attr:meta])*
      fn $name:ident ( $($arg:ident in $strat:expr),* $(,)? ) $body:block
      $($rest:tt)*
    ) => {
        $(#[$attr])*
        fn $name() {
            let cfg: $crate::test_runner::ProptestConfig = $cfg;
            let mut rng = $crate::test_runner::TestRng::for_test(stringify!($name));
            for case in 0..cfg.cases {
                $(let $arg = $crate::strategy::Strategy::generate(&($strat), &mut rng);)*
                let result: ::std::result::Result<(), $crate::test_runner::TestCaseError> =
                    (|| { $body ::std::result::Result::Ok(()) })();
                if let ::std::result::Result::Err(e) = result {
                    panic!(
                        "proptest {} failed at case {}/{}: {}",
                        stringify!($name), case, cfg.cases, e
                    );
                }
            }
        }
        $crate::__proptest_fns! { ($cfg) $($rest)* }
    };
}

#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!("assertion failed: {}", stringify!($cond)),
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!($($fmt)+),
            ));
        }
    };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($lhs:expr, $rhs:expr) => {{
        let (l, r) = (&$lhs, &$rhs);
        if !(*l == *r) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!("assertion failed: {} == {} ({:?} != {:?})",
                        stringify!($lhs), stringify!($rhs), l, r),
            ));
        }
    }};
    ($lhs:expr, $rhs:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$lhs, &$rhs);
        if !(*l == *r) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!("{} ({:?} != {:?})", format!($($fmt)+), l, r),
            ));
        }
    }};
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($lhs:expr, $rhs:expr) => {{
        let (l, r) = (&$lhs, &$rhs);
        if *l == *r {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!("assertion failed: {} != {} (both {:?})",
                        stringify!($lhs), stringify!($rhs), l),
            ));
        }
    }};
}

#[macro_export]
macro_rules! prop_oneof {
    ($($arm:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($arm)),+
        ])
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        #[test]
        fn ranges_and_tuples(a in 0u64..10, pair in (0i32..5, any::<bool>())) {
            prop_assert!(a < 10);
            prop_assert!((0..5).contains(&pair.0));
        }

        #[test]
        fn oneof_and_vec(
            v in prop::collection::vec(
                prop_oneof![Just(None), (0i32..4).prop_map(Some)],
                0..20,
            ),
        ) {
            prop_assert!(v.len() < 20);
            for x in v {
                if let Some(t) = x {
                    prop_assert!((0..4).contains(&t), "tag {} out of range", t);
                }
            }
        }
    }
}
