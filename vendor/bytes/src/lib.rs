//! Minimal in-repo reimplementation of the subset of the `bytes` crate API
//! this workspace uses. The build environment has no network access to a
//! crates.io registry, so external dependencies are vendored as small shims
//! (see the workspace `[workspace.dependencies]` and README "offline builds").
//!
//! `Bytes` is a cheaply cloneable, sliceable view over an immutable buffer:
//! either a `&'static [u8]` or an `Arc<Vec<u8>>`, plus an offset/length
//! window. Slicing shares the underlying allocation — callers rely on this
//! (e.g. `workloads::zeros` asserts slices alias one allocation).

use std::ops::{Bound, Deref, RangeBounds};
use std::sync::Arc;

#[derive(Clone)]
enum Repr {
    Static(&'static [u8]),
    Shared(Arc<Vec<u8>>),
}

/// A cheaply cloneable and sliceable chunk of contiguous memory.
#[derive(Clone)]
pub struct Bytes {
    repr: Repr,
    off: usize,
    len: usize,
}

impl Bytes {
    /// Creates a new empty `Bytes`.
    #[inline]
    pub const fn new() -> Bytes {
        Bytes { repr: Repr::Static(&[]), off: 0, len: 0 }
    }

    /// Creates `Bytes` from a static slice without copying.
    #[inline]
    pub const fn from_static(s: &'static [u8]) -> Bytes {
        Bytes { repr: Repr::Static(s), off: 0, len: s.len() }
    }

    /// Creates `Bytes` by copying the given slice.
    pub fn copy_from_slice(s: &[u8]) -> Bytes {
        Bytes::from(s.to_vec())
    }

    #[inline]
    pub fn len(&self) -> usize {
        self.len
    }

    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    fn backing(&self) -> &[u8] {
        match &self.repr {
            Repr::Static(s) => s,
            Repr::Shared(v) => v.as_slice(),
        }
    }

    /// Returns a slice of self for the provided range, sharing the
    /// underlying memory.
    pub fn slice(&self, range: impl RangeBounds<usize>) -> Bytes {
        let start = match range.start_bound() {
            Bound::Included(&n) => n,
            Bound::Excluded(&n) => n + 1,
            Bound::Unbounded => 0,
        };
        let end = match range.end_bound() {
            Bound::Included(&n) => n + 1,
            Bound::Excluded(&n) => n,
            Bound::Unbounded => self.len,
        };
        assert!(start <= end, "slice start {start} > end {end}");
        assert!(end <= self.len, "slice end {end} out of range (len {})", self.len);
        Bytes { repr: self.repr.clone(), off: self.off + start, len: end - start }
    }

    /// Splits off and returns the first `at` bytes; `self` keeps the rest.
    pub fn split_to(&mut self, at: usize) -> Bytes {
        assert!(at <= self.len, "split_to at {at} out of range (len {})", self.len);
        let head = Bytes { repr: self.repr.clone(), off: self.off, len: at };
        self.off += at;
        self.len -= at;
        head
    }

    /// Splits off and returns the bytes from `at` onward; `self` keeps the
    /// first `at` bytes.
    pub fn split_off(&mut self, at: usize) -> Bytes {
        assert!(at <= self.len, "split_off at {at} out of range (len {})", self.len);
        let tail = Bytes { repr: self.repr.clone(), off: self.off + at, len: self.len - at };
        self.len = at;
        tail
    }
}

impl Default for Bytes {
    fn default() -> Bytes {
        Bytes::new()
    }
}

impl Deref for Bytes {
    type Target = [u8];
    #[inline]
    fn deref(&self) -> &[u8] {
        &self.backing()[self.off..self.off + self.len]
    }
}

impl AsRef<[u8]> for Bytes {
    #[inline]
    fn as_ref(&self) -> &[u8] {
        self
    }
}

impl std::borrow::Borrow<[u8]> for Bytes {
    fn borrow(&self) -> &[u8] {
        self
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Bytes {
        let len = v.len();
        Bytes { repr: Repr::Shared(Arc::new(v)), off: 0, len }
    }
}

impl From<&'static [u8]> for Bytes {
    fn from(s: &'static [u8]) -> Bytes {
        Bytes::from_static(s)
    }
}

impl From<String> for Bytes {
    fn from(s: String) -> Bytes {
        Bytes::from(s.into_bytes())
    }
}

impl std::fmt::Debug for Bytes {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "b\"")?;
        for &b in self.iter() {
            if (0x20..0x7f).contains(&b) && b != b'"' && b != b'\\' {
                write!(f, "{}", b as char)?;
            } else {
                write!(f, "\\x{b:02x}")?;
            }
        }
        write!(f, "\"")
    }
}

impl PartialEq for Bytes {
    fn eq(&self, other: &Bytes) -> bool {
        self[..] == other[..]
    }
}
impl Eq for Bytes {}

impl PartialEq<[u8]> for Bytes {
    fn eq(&self, other: &[u8]) -> bool {
        self[..] == *other
    }
}

impl<const N: usize> PartialEq<[u8; N]> for Bytes {
    fn eq(&self, other: &[u8; N]) -> bool {
        self[..] == other[..]
    }
}

impl PartialEq<Vec<u8>> for Bytes {
    fn eq(&self, other: &Vec<u8>) -> bool {
        self[..] == other[..]
    }
}

impl std::hash::Hash for Bytes {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        self[..].hash(state)
    }
}

impl PartialOrd for Bytes {
    fn partial_cmp(&self, other: &Bytes) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Bytes {
    fn cmp(&self, other: &Bytes) -> std::cmp::Ordering {
        self[..].cmp(&other[..])
    }
}

impl FromIterator<u8> for Bytes {
    fn from_iter<T: IntoIterator<Item = u8>>(iter: T) -> Bytes {
        Bytes::from(iter.into_iter().collect::<Vec<u8>>())
    }
}

/// Read access to a buffer of bytes (the subset of `bytes::Buf` in use).
pub trait Buf {
    fn remaining(&self) -> usize;
    fn chunk(&self) -> &[u8];
    fn advance(&mut self, cnt: usize);
    fn has_remaining(&self) -> bool {
        self.remaining() > 0
    }
}

impl Buf for Bytes {
    #[inline]
    fn remaining(&self) -> usize {
        self.len
    }
    #[inline]
    fn chunk(&self) -> &[u8] {
        self
    }
    fn advance(&mut self, cnt: usize) {
        assert!(cnt <= self.len, "advance {cnt} out of range (len {})", self.len);
        self.off += cnt;
        self.len -= cnt;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn slice_shares_allocation() {
        let b = Bytes::from(vec![1u8, 2, 3, 4, 5]);
        let s = b.slice(1..4);
        assert_eq!(&s[..], &[2, 3, 4]);
        assert_eq!(s.as_ptr(), unsafe { b.as_ptr().add(1) });
    }

    #[test]
    fn split_to_and_advance() {
        let mut b = Bytes::from(vec![1u8, 2, 3, 4]);
        let head = b.split_to(2);
        assert_eq!(&head[..], &[1, 2]);
        assert_eq!(&b[..], &[3, 4]);
        b.advance(1);
        assert_eq!(&b[..], &[4]);
    }

    #[test]
    fn eq_and_debug() {
        let b = Bytes::from_static(b"hi");
        assert_eq!(b, *b"hi");
        assert_eq!(format!("{b:?}"), "b\"hi\"");
    }
}
