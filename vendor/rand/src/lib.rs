//! Minimal in-repo reimplementation of the subset of the `rand` crate API
//! this workspace uses (offline build — see README "offline builds").
//!
//! `SmallRng` is xoshiro256++, the same small fast generator rand 0.8 uses
//! on 64-bit targets. Exact stream compatibility with upstream `rand` is
//! not required anywhere in this workspace — only determinism and stream
//! independence (see `simcore::rng::derive_rng`), which this provides.

/// The core of a random number generator.
pub trait RngCore {
    fn next_u64(&mut self) -> u64;

    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(8);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next_u64().to_le_bytes());
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            let word = self.next_u64().to_le_bytes();
            rem.copy_from_slice(&word[..rem.len()]);
        }
    }
}

/// User-facing random value generation, blanket-implemented for all
/// [`RngCore`] types.
pub trait Rng: RngCore {
    /// Returns a uniformly random value of type `T`.
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    /// Returns a uniformly random value in `range` (half-open).
    fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T
    where
        Self: Sized,
    {
        range.sample_from(self)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "gen_bool p={p} out of [0,1]");
        // 53 uniform mantissa bits in [0,1); strict `<` makes p=0.0 never
        // fire and p=1.0 always fire.
        let unit = (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        unit < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Types sampleable uniformly from an RNG (`rand`'s `Standard` distribution).
pub trait Standard {
    fn sample<R: RngCore>(rng: &mut R) -> Self;
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn sample<R: RngCore>(rng: &mut R) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Standard for u128 {
    fn sample<R: RngCore>(rng: &mut R) -> u128 {
        ((rng.next_u64() as u128) << 64) | rng.next_u64() as u128
    }
}

impl Standard for bool {
    fn sample<R: RngCore>(rng: &mut R) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    fn sample<R: RngCore>(rng: &mut R) -> f64 {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample<R: RngCore>(rng: &mut R) -> f32 {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

/// Ranges usable with [`Rng::gen_range`].
pub trait SampleRange<T> {
    fn sample_from<R: RngCore>(self, rng: &mut R) -> T;
}

macro_rules! impl_sample_range_uint {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for std::ops::Range<$t> {
            fn sample_from<R: RngCore>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range over empty range");
                let span = (self.end - self.start) as u64;
                // Modulo bias is negligible for simulation purposes and
                // irrelevant for correctness here.
                self.start + (rng.next_u64() % span) as $t
            }
        }
        impl SampleRange<$t> for std::ops::RangeInclusive<$t> {
            fn sample_from<R: RngCore>(self, rng: &mut R) -> $t {
                let (lo, hi) = self.into_inner();
                assert!(lo <= hi, "gen_range over empty range");
                let span = (hi - lo) as u64;
                if span == u64::MAX {
                    return lo + rng.next_u64() as $t;
                }
                lo + (rng.next_u64() % (span + 1)) as $t
            }
        }
    )*};
}
impl_sample_range_uint!(u8, u16, u32, u64, usize);

macro_rules! impl_sample_range_sint {
    ($($t:ty => $u:ty),*) => {$(
        impl SampleRange<$t> for std::ops::Range<$t> {
            fn sample_from<R: RngCore>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range over empty range");
                let span = (self.end as $u).wrapping_sub(self.start as $u) as u64;
                self.start.wrapping_add((rng.next_u64() % span) as $t)
            }
        }
    )*};
}
impl_sample_range_sint!(i8 => u8, i16 => u16, i32 => u32, i64 => u64);

impl SampleRange<f64> for std::ops::Range<f64> {
    fn sample_from<R: RngCore>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "gen_range over empty range");
        let unit = (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        self.start + unit * (self.end - self.start)
    }
}

/// A generator seedable from a fixed-size byte array.
pub trait SeedableRng: Sized {
    type Seed: Sized + Default + AsMut<[u8]>;

    fn from_seed(seed: Self::Seed) -> Self;

    fn seed_from_u64(state: u64) -> Self {
        // SplitMix64 expansion, as in upstream rand.
        let mut seed = Self::Seed::default();
        let mut x = state;
        for chunk in seed.as_mut().chunks_mut(8) {
            x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = x;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^= z >> 31;
            let b = z.to_le_bytes();
            let n = chunk.len();
            chunk.copy_from_slice(&b[..n]);
        }
        Self::from_seed(seed)
    }
}

pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// A small, fast generator: xoshiro256++ (what rand 0.8's `SmallRng`
    /// is on 64-bit platforms).
    #[derive(Clone, Debug)]
    pub struct SmallRng {
        s: [u64; 4],
    }

    impl RngCore for SmallRng {
        #[inline]
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }

    impl SeedableRng for SmallRng {
        type Seed = [u8; 32];

        fn from_seed(seed: [u8; 32]) -> SmallRng {
            let mut s = [0u64; 4];
            for (i, chunk) in seed.chunks_exact(8).enumerate() {
                s[i] = u64::from_le_bytes(chunk.try_into().unwrap());
            }
            // An all-zero state is a fixed point for xoshiro; perturb it.
            if s == [0; 4] {
                s = [0x9E37_79B9_7F4A_7C15, 0xBF58_476D_1CE4_E5B9, 0x94D0_49BB_1331_11EB, 1];
            }
            SmallRng { s }
        }
    }
}

/// `rand::prelude` — the common imports.
pub mod prelude {
    pub use crate::rngs::SmallRng;
    pub use crate::{Rng, RngCore, SeedableRng};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn deterministic_and_seed_sensitive() {
        let mut a = SmallRng::seed_from_u64(7);
        let mut b = SmallRng::seed_from_u64(7);
        let mut c = SmallRng::seed_from_u64(8);
        let (x, y, z): (u64, u64, u64) = (a.gen(), b.gen(), c.gen());
        assert_eq!(x, y);
        assert_ne!(x, z);
    }

    #[test]
    fn ranges_in_bounds() {
        let mut r = SmallRng::seed_from_u64(3);
        for _ in 0..1000 {
            let v = r.gen_range(10u64..20);
            assert!((10..20).contains(&v));
            let w = r.gen_range(-5i32..5);
            assert!((-5..5).contains(&w));
            let f = r.gen_range(0.25f64..0.75);
            assert!((0.25..0.75).contains(&f));
        }
        let big = r.gen_range(1..u64::MAX);
        assert!(big >= 1);
    }

    #[test]
    fn gen_bool_extremes() {
        let mut r = SmallRng::seed_from_u64(4);
        for _ in 0..100 {
            assert!(!r.gen_bool(0.0));
            assert!(r.gen_bool(1.0));
        }
        let hits = (0..10_000).filter(|_| r.gen_bool(0.3)).count();
        assert!((2_500..3_500).contains(&hits), "p=0.3 gave {hits}/10000");
    }

    #[test]
    fn fill_bytes_covers_tail() {
        let mut r = SmallRng::seed_from_u64(5);
        let mut buf = [0u8; 13];
        r.fill_bytes(&mut buf);
        assert!(buf.iter().any(|&b| b != 0));
    }
}
