//! Minimal in-repo reimplementation of the subset of the `criterion` API
//! this workspace uses (offline build — see README "offline builds").
//!
//! No statistics engine: each benchmark runs `sample_size` timed samples
//! after one warm-up and reports min / mean / max per iteration. That is
//! enough to track hot-path regressions between PRs; the numbers are
//! printed in a stable, grep-friendly one-line format:
//!
//! ```text
//! bench <name> ... min <t> mean <t> max <t> (N samples)
//! ```

use std::time::{Duration, Instant};

pub use std::hint::black_box;

pub struct Criterion {
    sample_size: usize,
    filter: Option<String>,
}

impl Default for Criterion {
    fn default() -> Criterion {
        Criterion { sample_size: 20, filter: None }
    }
}

impl Criterion {
    pub fn sample_size(mut self, n: usize) -> Criterion {
        assert!(n >= 2, "sample_size must be at least 2");
        self.sample_size = n;
        self
    }

    /// Reads a substring filter from the command line (`bench_bin <filter>`),
    /// mirroring criterion's CLI behaviour closely enough for local use.
    pub fn configure_from_args(mut self) -> Criterion {
        self.filter = std::env::args().nth(1).filter(|a| !a.starts_with('-'));
        self
    }

    pub fn bench_function<F>(&mut self, name: &str, mut f: F) -> &mut Criterion
    where
        F: FnMut(&mut Bencher),
    {
        if let Some(filt) = &self.filter {
            if !name.contains(filt.as_str()) {
                return self;
            }
        }
        let mut b = Bencher { samples: Vec::with_capacity(self.sample_size) };
        // One untimed warm-up sample, then the measured ones.
        f(&mut b);
        b.samples.clear();
        for _ in 0..self.sample_size {
            f(&mut b);
        }
        let per_iter: Vec<f64> =
            b.samples.iter().map(|(d, n)| d.as_secs_f64() / (*n).max(1) as f64).collect();
        let mean = per_iter.iter().sum::<f64>() / per_iter.len() as f64;
        let min = per_iter.iter().cloned().fold(f64::INFINITY, f64::min);
        let max = per_iter.iter().cloned().fold(0.0f64, f64::max);
        println!(
            "bench {name:<40} min {} mean {} max {} ({} samples)",
            fmt_time(min),
            fmt_time(mean),
            fmt_time(max),
            per_iter.len()
        );
        self
    }

    pub fn final_summary(&self) {}
}

fn fmt_time(secs: f64) -> String {
    if secs >= 1.0 {
        format!("{secs:.3} s")
    } else if secs >= 1e-3 {
        format!("{:.3} ms", secs * 1e3)
    } else if secs >= 1e-6 {
        format!("{:.3} us", secs * 1e6)
    } else {
        format!("{:.1} ns", secs * 1e9)
    }
}

pub struct Bencher {
    /// (elapsed, iterations) per sample.
    samples: Vec<(Duration, u64)>,
}

impl Bencher {
    /// Times one execution of `f` as one sample.
    pub fn iter<R, F: FnMut() -> R>(&mut self, mut f: F) {
        let start = Instant::now();
        let out = f();
        let elapsed = start.elapsed();
        black_box(&out);
        self.samples.push((elapsed, 1));
    }
}

#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut c: $crate::Criterion = $config.configure_from_args();
            $($target(&mut c);)+
            c.final_summary();
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group! {
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        }
    };
}

#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_and_reports() {
        let mut c = Criterion::default().sample_size(3);
        let mut runs = 0u32;
        c.bench_function("smoke", |b| {
            b.iter(|| {
                runs += 1;
                black_box(runs)
            })
        });
        // 1 warm-up + 3 samples.
        assert_eq!(runs, 4);
    }

    #[test]
    fn fmt_time_scales() {
        assert!(fmt_time(2.0).ends_with(" s"));
        assert!(fmt_time(2e-3).ends_with(" ms"));
        assert!(fmt_time(2e-6).ends_with(" us"));
        assert!(fmt_time(2e-9).ends_with(" ns"));
    }
}
