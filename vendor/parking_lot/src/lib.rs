//! Minimal in-repo reimplementation of the subset of the `parking_lot` API
//! this workspace uses, backed by `std::sync` (offline build — see README
//! "offline builds").
//!
//! Matches parking_lot's two observable differences from `std`: `lock()`
//! returns the guard directly (no `Result`), and there is no poisoning —
//! a panicked holder does not wedge the lock. The simulation runtime
//! relies on both (worker threads may panic while the driver still locks
//! the shared world).

use std::ops::{Deref, DerefMut};
use std::sync::PoisonError;

pub struct Mutex<T: ?Sized> {
    inner: std::sync::Mutex<T>,
}

pub struct MutexGuard<'a, T: ?Sized> {
    // `Option` so `Condvar::wait` can temporarily take the std guard out.
    inner: Option<std::sync::MutexGuard<'a, T>>,
}

impl<T> Mutex<T> {
    #[inline]
    pub const fn new(t: T) -> Mutex<T> {
        Mutex { inner: std::sync::Mutex::new(t) }
    }

    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    #[inline]
    pub fn lock(&self) -> MutexGuard<'_, T> {
        let g = self.inner.lock().unwrap_or_else(PoisonError::into_inner);
        MutexGuard { inner: Some(g) }
    }

    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(g) => Some(MutexGuard { inner: Some(g) }),
            Err(std::sync::TryLockError::Poisoned(p)) => {
                Some(MutexGuard { inner: Some(p.into_inner()) })
            }
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: Default> Default for Mutex<T> {
    fn default() -> Mutex<T> {
        Mutex::new(T::default())
    }
}

impl<T: ?Sized + std::fmt::Debug> std::fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        self.inner.fmt(f)
    }
}

impl<T: ?Sized> Deref for MutexGuard<'_, T> {
    type Target = T;
    #[inline]
    fn deref(&self) -> &T {
        self.inner.as_ref().expect("guard taken during wait")
    }
}

impl<T: ?Sized> DerefMut for MutexGuard<'_, T> {
    #[inline]
    fn deref_mut(&mut self) -> &mut T {
        self.inner.as_mut().expect("guard taken during wait")
    }
}

#[derive(Default)]
pub struct Condvar {
    inner: std::sync::Condvar,
}

impl Condvar {
    #[inline]
    pub const fn new() -> Condvar {
        Condvar { inner: std::sync::Condvar::new() }
    }

    /// Blocks until notified, releasing the mutex while waiting
    /// (parking_lot signature: the guard is passed by `&mut`).
    pub fn wait<T>(&self, guard: &mut MutexGuard<'_, T>) {
        let std_guard = guard.inner.take().expect("guard taken during wait");
        let std_guard = self.inner.wait(std_guard).unwrap_or_else(PoisonError::into_inner);
        guard.inner = Some(std_guard);
    }

    #[inline]
    pub fn notify_one(&self) {
        self.inner.notify_one();
    }

    #[inline]
    pub fn notify_all(&self) {
        self.inner.notify_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn lock_and_condvar_roundtrip() {
        let pair = Arc::new((Mutex::new(false), Condvar::new()));
        let p2 = pair.clone();
        let h = std::thread::spawn(move || {
            let (m, cv) = &*p2;
            *m.lock() = true;
            cv.notify_one();
        });
        let (m, cv) = &*pair;
        let mut g = m.lock();
        while !*g {
            cv.wait(&mut g);
        }
        drop(g);
        h.join().unwrap();
    }

    #[test]
    fn no_poisoning_after_panic() {
        let m = Arc::new(Mutex::new(1));
        let m2 = m.clone();
        let _ = std::thread::spawn(move || {
            let _g = m2.lock();
            panic!("poison attempt");
        })
        .join();
        assert_eq!(*m.lock(), 1);
    }
}
