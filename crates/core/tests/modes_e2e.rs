//! End-to-end tests for the configuration modes: PPID context mapping
//! (§2.3), CMT multipath (§5), the era TCP stack, probe/iprobe, and the
//! Option A race fix.

use bytes::Bytes;
use mpi_core::{mpirun, ContextMap, MpiCfg, RaceFix, TransportSel, ANY_TAG, COMM_WORLD};
use simcore::Dur;

fn pattern(len: usize, tag: u8) -> Bytes {
    Bytes::from((0..len).map(|i| (i as u8) ^ tag).collect::<Vec<u8>>())
}

#[test]
fn ppid_context_mapping_delivers_everything() {
    // Same traffic as a normal run, but contexts ride in the PPID field
    // and streams are keyed by tag alone — including sub-communicators.
    mpirun(MpiCfg::sctp_ppid(6, 0.01).with_seed(13), |mpi| {
        let me = mpi.rank();
        let half = mpi.comm_split(COMM_WORLD, Some((me % 2) as i32), 0).unwrap();
        for i in 0..10u8 {
            if me == 0 || me == 1 {
                for dst in (me + 2..mpi.size()).step_by(2) {
                    mpi.send(dst, i as i32, pattern(2000, i));
                }
            }
        }
        if me >= 2 {
            let from = me % 2;
            for i in 0..10u8 {
                let (st, msg) = mpi.recv(Some(from), Some(i as i32));
                assert_eq!(st.len, 2000);
                assert_eq!(msg.to_vec(), &pattern(2000, i)[..]);
            }
        }
        mpi.barrier_on(half);
        mpi.barrier();
    });
}

#[test]
fn ppid_and_streamhash_agree_on_results() {
    fn sum(cfg: MpiCfg) -> f64 {
        let out = std::sync::Arc::new(std::sync::atomic::AtomicU64::new(0));
        let o = out.clone();
        mpirun(cfg, move |mpi| {
            let v = mpi.allreduce(mpi_core::ReduceOp::Sum, &[mpi.rank() as f64]);
            if mpi.rank() == 0 {
                o.store(v[0] as u64, std::sync::atomic::Ordering::Relaxed);
            }
        });
        out.load(std::sync::atomic::Ordering::Relaxed) as f64
    }
    assert_eq!(sum(MpiCfg::sctp(5, 0.0)), sum(MpiCfg::sctp_ppid(5, 0.0)));
}

#[test]
fn cmt_outperforms_single_path_on_bulk() {
    fn tput(paths: u8, cmt: bool) -> f64 {
        let mut m = MpiCfg::sctp(2, 0.0).with_seed(14);
        m.sctp.num_paths = paths;
        m.sctp.cmt = cmt;
        let r = workloads::pingpong::run(m, workloads::pingpong::PingPongCfg {
            size: 200 * 1024,
            iters: 30,
        });
        r.throughput
    }
    let single = tput(1, false);
    let cmt3 = tput(3, true);
    assert!(
        cmt3 > single * 1.3,
        "CMT over 3 paths ({cmt3:.0}) should clearly beat one path ({single:.0})"
    );
}

#[test]
fn cmt_preserves_order_and_content() {
    let mut m = MpiCfg::sctp(2, 0.005).with_seed(15);
    m.sctp.num_paths = 3;
    m.sctp.cmt = true;
    mpirun(m, |mpi| match mpi.rank() {
        0 => {
            for i in 0..30u8 {
                mpi.send(1, 4, pattern(20_000, i));
            }
        }
        1 => {
            for i in 0..30u8 {
                let (_, msg) = mpi.recv(Some(0), Some(4));
                assert_eq!(msg.to_vec(), &pattern(20_000, i)[..], "CMT broke ordering at {i}");
            }
        }
        _ => {}
    });
}

#[test]
fn era_tcp_is_not_better_under_loss() {
    // Averaged over seeds: the era stack (no scoreboard recovery) must not
    // beat modern SACK recovery. Individual seeds can go either way once
    // go-back-N is in play, so compare means with slack.
    let pp = workloads::pingpong::PingPongCfg { size: 300 * 1024, iters: 40 };
    let mean = |era: bool| -> f64 {
        (0..4)
            .map(|s| {
                let cfg = if era { MpiCfg::tcp_era(2, 0.02) } else { MpiCfg::tcp(2, 0.02) };
                workloads::pingpong::run(cfg.with_seed(16 + s), pp).throughput
            })
            .sum::<f64>()
            / 4.0
    };
    let modern = mean(false);
    let era = mean(true);
    // With go-back-N restart (present since 4.4BSD) the two recovery styles
    // land in the same ballpark; guard against either regressing badly.
    assert!(
        era <= modern * 3.0 && modern <= era * 3.0,
        "recovery styles diverged: era {era:.0} vs modern {modern:.0}"
    );
}

#[test]
fn probe_then_recv_sees_the_same_message() {
    mpirun(MpiCfg::sctp(2, 0.0).with_seed(17), |mpi| match mpi.rank() {
        0 => {
            let st = mpi.probe(Some(1), ANY_TAG);
            assert_eq!(st.tag, 42);
            assert_eq!(st.len, 512);
            // The message is still there — receive it.
            let (st2, msg) = mpi.recv(Some(1), Some(st.tag));
            assert_eq!(st2.len, st.len);
            assert_eq!(msg.len, 512);
        }
        1 => {
            mpi.compute(Dur::from_millis(5));
            mpi.send(0, 42, pattern(512, 1));
        }
        _ => {}
    });
}

#[test]
fn iprobe_is_nonblocking() {
    mpirun(MpiCfg::tcp(2, 0.0).with_seed(18), |mpi| match mpi.rank() {
        0 => {
            assert!(mpi.iprobe(Some(1), ANY_TAG).is_none(), "nothing sent yet");
            mpi.barrier();
            // After the barrier the message is definitely buffered.
            let st = mpi.probe(Some(1), Some(9));
            assert_eq!(st.len, 64);
            let _ = mpi.recv(Some(1), Some(9));
        }
        1 => {
            mpi.send(0, 9, pattern(64, 3));
            mpi.barrier();
        }
        _ => {}
    });
}

#[test]
fn option_a_race_fix_still_correct_just_slower() {
    // Option A (spin on the body write) must deliver identical results;
    // the concurrency loss shows as equal-or-worse runtime.
    fn go(fix: RaceFix, seed: u64) -> f64 {
        let mut m = MpiCfg::sctp(4, 0.0).with_seed(seed);
        m.transport =
            TransportSel::Sctp { streams: 10, race_fix: fix, ctx_map: ContextMap::StreamHash };
        let r = workloads::farm::run(m, workloads::farm::FarmCfg::small(300 * 1024, 10));
        assert_eq!(r.tasks_done, 200);
        r.secs
    }
    let b = go(RaceFix::OptionB, 19);
    let a = go(RaceFix::OptionA, 19);
    assert!(a >= b * 0.9, "Option A ({a:.3}) should not beat Option B ({b:.3})");
}
