//! End-to-end MPI middleware tests over both transports.

use bytes::Bytes;
use mpi_core::{mpirun, MpiCfg, ReduceOp, ANY_SOURCE, ANY_TAG};
use simcore::Dur;

fn both(loss: f64, seed: u64) -> Vec<(&'static str, MpiCfg)> {
    vec![
        ("tcp", MpiCfg::tcp(4, loss).with_seed(seed)),
        ("sctp", MpiCfg::sctp(4, loss).with_seed(seed)),
    ]
}

fn pattern(len: usize, tag: u8) -> Bytes {
    Bytes::from((0..len).map(|i| (i as u8).wrapping_mul(31).wrapping_add(tag)).collect::<Vec<u8>>())
}

#[test]
fn ping_pong_short_both_transports() {
    for (name, cfg) in both(0.0, 1) {
        let r = mpirun(cfg, |mpi| {
            let data = pattern(1000, 1);
            match mpi.rank() {
                0 => {
                    mpi.send(1, 7, data.clone());
                    let (st, msg) = mpi.recv(Some(1), Some(8));
                    assert_eq!(st.len, 1000);
                    assert_eq!(msg.to_vec(), &data[..]);
                }
                1 => {
                    let (st, msg) = mpi.recv(Some(0), Some(7));
                    assert_eq!((st.src, st.tag, st.len), (0, 7, 1000));
                    mpi.send(0, 8, Bytes::from(msg.to_vec()));
                }
                _ => {}
            }
        });
        assert!(r.secs() < 1.0, "{name}: ping-pong too slow: {}", r.secs());
    }
}

#[test]
fn long_message_uses_rendezvous_and_arrives_intact() {
    for (name, cfg) in both(0.0, 2) {
        let n = 300 * 1024; // > 64 KB eager limit
        mpirun(cfg, move |mpi| {
            let data = pattern(n, 3);
            match mpi.rank() {
                0 => mpi.send(1, 9, data.clone()),
                1 => {
                    let (st, msg) = mpi.recv(Some(0), Some(9));
                    assert_eq!(st.len as usize, n, "{name}");
                    assert_eq!(msg.to_vec(), &data[..], "{name}: long body corrupted");
                }
                _ => {}
            }
        });
    }
}

#[test]
fn ssend_completes_only_after_receiver_matches() {
    for (_name, cfg) in both(0.0, 3) {
        let r = mpirun(cfg, |mpi| {
            match mpi.rank() {
                0 => {
                    let t0 = mpi.now();
                    mpi.ssend(1, 1, pattern(100, 0));
                    // Receiver posts its receive after 50 ms of compute;
                    // the synchronous send cannot complete before that.
                    assert!(mpi.now().since(t0) >= Dur::from_millis(40));
                }
                1 => {
                    mpi.compute(Dur::from_millis(50));
                    let _ = mpi.recv(Some(0), Some(1));
                }
                _ => {}
            }
        });
        assert!(r.secs() >= 0.05);
    }
}

#[test]
fn wildcard_receive_any_source_any_tag() {
    for (_name, cfg) in both(0.0, 4) {
        mpirun(cfg, |mpi| {
            if mpi.rank() == 0 {
                let mut seen = std::collections::HashSet::new();
                for _ in 0..3 {
                    let (st, msg) = mpi.recv(ANY_SOURCE, ANY_TAG);
                    assert_eq!(st.tag as u16, st.src * 10, "tag encodes source");
                    assert_eq!(msg.len, 64 * st.src as usize);
                    assert!(seen.insert(st.src));
                }
            } else {
                let me = mpi.rank();
                mpi.send(0, (me * 10) as i32, pattern(64 * me as usize, me as u8));
            }
        });
    }
}

#[test]
fn non_overtaking_order_same_trc() {
    for (name, cfg) in both(0.01, 5) {
        mpirun(cfg, move |mpi| match mpi.rank() {
            0 => {
                for i in 0..50u8 {
                    mpi.send(1, 4, Bytes::from(vec![i; 100]));
                }
            }
            1 => {
                for i in 0..50u8 {
                    let (_, msg) = mpi.recv(Some(0), Some(4));
                    assert_eq!(msg.to_vec()[0], i, "{name}: same-TRC overtaking!");
                }
            }
            _ => {}
        });
    }
}

#[test]
fn waitany_returns_whichever_arrives_first() {
    // Rank 1 sends tag B immediately, tag A after a delay. Rank 0's
    // waitany must complete with B first — on SCTP even a *lost* A cannot
    // block B (different tags → different streams).
    for (_name, cfg) in both(0.0, 6) {
        mpirun(cfg, |mpi| match mpi.rank() {
            0 => {
                let ra = mpi.irecv(Some(1), Some(100));
                let rb = mpi.irecv(Some(1), Some(200));
                let (idx, st, _) = mpi.waitany(&[ra, rb]);
                assert_eq!(idx, 1, "tag-200 message must complete first");
                assert_eq!(st.tag, 200);
                let (st2, _) = mpi.wait(ra);
                assert_eq!(st2.tag, 100);
            }
            1 => {
                mpi.send(0, 200, pattern(128, 1));
                mpi.compute(Dur::from_millis(20));
                mpi.send(0, 100, pattern(128, 2));
            }
            _ => {}
        });
    }
}

#[test]
fn isend_irecv_waitall_bulk() {
    for (_name, cfg) in both(0.0, 7) {
        mpirun(cfg, |mpi| {
            let n = mpi.size();
            let me = mpi.rank();
            // Everyone exchanges with everyone (including self).
            let recvs: Vec<_> = (0..n).map(|p| mpi.irecv(Some(p), Some(me as i32))).collect();
            let sends: Vec<_> =
                (0..n).map(|p| mpi.isend(p, p as i32, pattern(2048, me as u8))).collect();
            let msgs = mpi.waitall(&recvs);
            for (p, (st, msg)) in msgs.iter().enumerate() {
                assert_eq!(st.src, p as u16);
                assert_eq!(msg.to_vec(), &pattern(2048, p as u8)[..]);
            }
            mpi.waitall(&sends);
        });
    }
}

#[test]
fn self_send_delivers_locally() {
    for (_name, cfg) in both(0.0, 8) {
        mpirun(cfg, |mpi| {
            let me = mpi.rank();
            mpi.send(me, 5, pattern(100, 9));
            let (st, msg) = mpi.recv(Some(me), Some(5));
            assert_eq!(st.src, me);
            assert_eq!(msg.to_vec(), &pattern(100, 9)[..]);
        });
    }
}

#[test]
fn collectives_barrier_bcast_reduce() {
    for (_name, cfg) in both(0.0, 9) {
        mpirun(cfg, |mpi| {
            mpi.barrier();
            // Bcast from rank 2.
            let data = if mpi.rank() == 2 { Some(pattern(5000, 7)) } else { None };
            let got = mpi.bcast(2, data);
            assert_eq!(&got[..], &pattern(5000, 7)[..]);
            // Reduce sum of [rank, rank*2].
            let v = [mpi.rank() as f64, mpi.rank() as f64 * 2.0];
            let r = mpi.reduce(0, ReduceOp::Sum, &v);
            if mpi.rank() == 0 {
                let r = r.unwrap();
                let n = mpi.size() as f64;
                let s = n * (n - 1.0) / 2.0;
                assert_eq!(r, vec![s, 2.0 * s]);
            } else {
                assert!(r.is_none());
            }
            // Allreduce max.
            let m = mpi.allreduce(ReduceOp::Max, &[mpi.rank() as f64]);
            assert_eq!(m, vec![(mpi.size() - 1) as f64]);
        });
    }
}

#[test]
fn collectives_gather_scatter_allgather_alltoall() {
    for (_name, cfg) in both(0.0, 10) {
        mpirun(cfg, |mpi| {
            let me = mpi.rank();
            let n = mpi.size();
            // Gather to 1.
            let g = mpi.gather(1, pattern(100 + me as usize, me as u8));
            if me == 1 {
                let g = g.unwrap();
                for (p, b) in g.iter().enumerate() {
                    assert_eq!(&b[..], &pattern(100 + p, p as u8)[..]);
                }
            }
            // Scatter from 0.
            let parts = if me == 0 {
                Some((0..n).map(|p| pattern(50, p as u8)).collect::<Vec<_>>())
            } else {
                None
            };
            let mine = mpi.scatter(0, parts);
            assert_eq!(&mine[..], &pattern(50, me as u8)[..]);
            // Allgather.
            let all = mpi.allgather(pattern(64, me as u8));
            for (p, b) in all.iter().enumerate() {
                assert_eq!(&b[..], &pattern(64, p as u8)[..]);
            }
            // Alltoall: data[p] = pattern tagged by (me, p).
            let data: Vec<Bytes> =
                (0..n).map(|p| pattern(32, me as u8 ^ (p as u8) << 4)).collect();
            let got = mpi.alltoall(data);
            for (p, b) in got.iter().enumerate() {
                assert_eq!(&b[..], &pattern(32, (p as u8) ^ (me as u8) << 4)[..]);
            }
        });
    }
}

#[test]
fn loss_does_not_corrupt_or_reorder_mpi_messages() {
    for (name, cfg) in both(0.02, 11) {
        let r = mpirun(cfg, move |mpi| match mpi.rank() {
            0 => {
                for i in 0..20u8 {
                    // Mix of short and long messages on several tags.
                    let len = if i % 3 == 0 { 100_000 } else { 8_000 };
                    mpi.send(1, (i % 4) as i32, pattern(len, i));
                }
            }
            1 => {
                let mut next = [0u8; 4];
                for _ in 0..20 {
                    let (st, msg) = mpi.recv(Some(0), ANY_TAG);
                    let t = st.tag as usize;
                    // Per-tag order must hold; find which i this is.
                    let i = msg.to_vec()[0].wrapping_sub(0); // first byte is tag'd pattern start
                    let _ = i;
                    let expect_i = next[t] * 4 + t as u8;
                    let len = if expect_i.is_multiple_of(3) { 100_000 } else { 8_000 };
                    assert_eq!(msg.len, len, "{name}: wrong message for tag {t}");
                    assert_eq!(msg.to_vec(), &pattern(len, expect_i)[..], "{name}");
                    next[t] += 1;
                }
            }
            _ => {}
        });
        assert!(r.net.drops_loss > 0, "{name}: loss must occur");
    }
}

#[test]
fn deterministic_runs() {
    fn once(seed: u64) -> (u64, u64) {
        let cfg = MpiCfg::sctp(4, 0.01).with_seed(seed);
        let r = mpirun(cfg, |mpi| {
            for _ in 0..5 {
                mpi.barrier();
                let _ = mpi.allreduce(ReduceOp::Sum, &[1.0]);
            }
        });
        (r.sim_time.as_nanos(), r.net.packets_offered)
    }
    assert_eq!(once(99), once(99));
}

#[test]
fn eight_rank_stress_mixed_traffic() {
    for (_name, cfg) in [("tcp", MpiCfg::tcp(8, 0.01).with_seed(12)), ("sctp", MpiCfg::sctp(8, 0.01).with_seed(12))] {
        mpirun(cfg, |mpi| {
            let me = mpi.rank();
            let n = mpi.size();
            for round in 0..3 {
                // Ring exchange with varying sizes.
                let next = (me + 1) % n;
                let prev = (me + n - 1) % n;
                let len = 1000 * (round + 1) * (me as usize + 1);
                let s = mpi.isend(next, round as i32, pattern(len, me as u8));
                let r = mpi.irecv(Some(prev), Some(round as i32));
                let done = mpi.waitall(&[s, r]);
                assert_eq!(done[1].1.len, 1000 * (round + 1) * (prev as usize + 1));
                mpi.barrier();
            }
            let total = mpi.allreduce(ReduceOp::Sum, &[me as f64]);
            assert_eq!(total[0] as u16, (n - 1) * n / 2);
        });
    }
}
