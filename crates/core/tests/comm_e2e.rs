//! Communicator tests: dup isolation, split semantics, collectives and
//! point-to-point within sub-communicators, on both transports.

use bytes::Bytes;
use mpi_core::{mpirun, MpiCfg, ReduceOp, COMM_WORLD};
use simcore::Dur;

#[test]
fn comm_world_accessors() {
    mpirun(MpiCfg::sctp(4, 0.0), |mpi| {
        assert_eq!(mpi.comm_rank(COMM_WORLD), mpi.rank());
        assert_eq!(mpi.comm_size(COMM_WORLD), mpi.size());
    });
}

#[test]
fn dup_gets_fresh_context_and_isolates_traffic() {
    for cfg in [MpiCfg::tcp(4, 0.0).with_seed(1), MpiCfg::sctp(4, 0.0).with_seed(1)] {
        mpirun(cfg, |mpi| {
            let dup = mpi.comm_dup(COMM_WORLD);
            assert_eq!(mpi.comm_size(dup), mpi.size());
            // A receive on the dup must not match a world send (same tag!).
            if mpi.rank() == 0 {
                let r_dup = mpi.irecv_on(dup, Some(1), Some(7));
                let (st, msg) = mpi.recv(Some(1), Some(7)); // world context
                assert_eq!(st.len, 3);
                assert_eq!(&msg.to_vec()[..], b"wld");
                assert!(mpi.test(r_dup).is_none(), "dup recv matched world traffic!");
                // Now the dup message arrives.
                let (_, msg) = mpi.wait(r_dup);
                assert_eq!(&msg.to_vec()[..], b"dup");
            } else if mpi.rank() == 1 {
                mpi.send(0, 7, Bytes::from_static(b"wld"));
                // Delay the dup-context message so rank 0 can observe that
                // the world message alone does not satisfy the dup receive.
                mpi.compute(Dur::from_millis(50));
                mpi.send_on(dup, 0, 7, Bytes::from_static(b"dup"));
            }
            mpi.barrier_on(dup);
        });
    }
}

#[test]
fn split_into_even_and_odd_halves() {
    for cfg in [MpiCfg::tcp(8, 0.0).with_seed(2), MpiCfg::sctp(8, 0.0).with_seed(2)] {
        mpirun(cfg, |mpi| {
            let me = mpi.rank();
            let half = mpi.comm_split(COMM_WORLD, Some((me % 2) as i32), me as i32).unwrap();
            assert_eq!(mpi.comm_size(half), 4);
            assert_eq!(mpi.comm_rank(half), me / 2, "ordered by key");
            // Sum of world ranks within the half.
            let s = mpi.allreduce_on(half, ReduceOp::Sum, &[me as f64]);
            let expect = if me % 2 == 0 { 0.0 + 2.0 + 4.0 + 6.0 } else { 1.0 + 3.0 + 5.0 + 7.0 };
            assert_eq!(s, vec![expect]);
            // Ring exchange within the half: local neighbors only.
            let local = mpi.comm_rank(half);
            let n = mpi.comm_size(half);
            let to = (local + 1) % n;
            let from = (local + n - 1) % n;
            let s1 = mpi.isend_on(half, to, 9, Bytes::from(vec![me as u8; 10]));
            let r1 = mpi.irecv_on(half, Some(from), Some(9));
            let done = mpi.waitall(&[s1, r1]);
            let got = done[1].1.to_vec()[0];
            assert_eq!(got % 2, me as u8 % 2, "message crossed the split!");
            mpi.waitall(&[]);
        });
    }
}

#[test]
fn split_with_undefined_color_excludes_rank() {
    mpirun(MpiCfg::sctp(5, 0.0).with_seed(3), |mpi| {
        let me = mpi.rank();
        // Rank 4 opts out.
        let color = if me == 4 { None } else { Some(0) };
        let sub = mpi.comm_split(COMM_WORLD, color, me as i32);
        if me == 4 {
            assert!(sub.is_none());
        } else {
            let sub = sub.unwrap();
            assert_eq!(mpi.comm_size(sub), 4);
            mpi.barrier_on(sub);
            let got = mpi.bcast_on(sub, 0, (mpi.comm_rank(sub) == 0).then(|| Bytes::from_static(b"sub")));
            assert_eq!(&got[..], b"sub");
        }
    });
}

#[test]
fn split_reverse_key_reverses_ranks() {
    mpirun(MpiCfg::tcp(6, 0.0).with_seed(4), |mpi| {
        let me = mpi.rank();
        let rev = mpi.comm_split(COMM_WORLD, Some(0), -(me as i32)).unwrap();
        assert_eq!(mpi.comm_rank(rev), mpi.size() - 1 - me);
    });
}

#[test]
fn nested_splits() {
    mpirun(MpiCfg::sctp(8, 0.0).with_seed(5), |mpi| {
        let me = mpi.rank();
        let half = mpi.comm_split(COMM_WORLD, Some((me / 4) as i32), me as i32).unwrap();
        let quarter = mpi.comm_split(half, Some((mpi.comm_rank(half) / 2) as i32), 0).unwrap();
        assert_eq!(mpi.comm_size(quarter), 2);
        let s = mpi.allreduce_on(quarter, ReduceOp::Sum, &[me as f64]);
        // Each quarter holds consecutive world ranks {2k, 2k+1}.
        let base = (me / 2) * 2;
        assert_eq!(s, vec![(base + base + 1) as f64]);
    });
}

#[test]
fn wildcard_recv_on_subcomm_translates_ranks() {
    mpirun(MpiCfg::sctp(6, 0.0).with_seed(6), |mpi| {
        let me = mpi.rank();
        let evens = mpi.comm_split(COMM_WORLD, Some((me % 2) as i32), 0).unwrap();
        let n = mpi.comm_size(evens);
        if mpi.comm_rank(evens) == 0 {
            for _ in 1..n {
                let (st, _) = mpi.recv_on(evens, None, Some(3));
                let local = mpi.world_to_comm_rank(evens, st.src).expect("sender in subcomm");
                assert!(local > 0 && local < n);
            }
        } else {
            mpi.send_on(evens, 0, 3, Bytes::from_static(b"hi"));
        }
    });
}
