//! Property-based tests for the matching engine: MPI's non-overtaking
//! guarantee and wildcard matching hold under arbitrary interleavings of
//! posts and arrivals.

use bytes::Bytes;
use proptest::prelude::*;

// The matching engine is pub; drive it directly.
use mpi_core::envelope::{EnvKind, Envelope};
use mpi_core::matching::Core;

#[derive(Debug, Clone)]
enum Op {
    /// Post a receive with optional wildcards (src is always rank 0 here).
    PostRecv { any_src: bool, tag: Option<i32> },
    /// An eager envelope + body arrives from rank 0 with this tag.
    Arrive { tag: i32 },
}

fn ops() -> impl Strategy<Value = Vec<Op>> {
    prop::collection::vec(
        prop_oneof![
            (any::<bool>(), prop_oneof![Just(None), (0i32..4).prop_map(Some)])
                .prop_map(|(any_src, tag)| Op::PostRecv { any_src, tag }),
            (0i32..4).prop_map(|tag| Op::Arrive { tag }),
        ],
        0..60,
    )
}

proptest! {
    /// Messages with the same (tag, rank, context) must be received in send
    /// order, no matter how receives interleave with arrivals.
    #[test]
    fn non_overtaking_per_trc(ops in ops()) {
        let mut c = Core::new(1, 2, 64 * 1024);
        let mut sent_seq_per_tag = [0u8; 4];
        let mut posted: Vec<mpi_core::matching::ReqId> = Vec::new();
        for op in ops {
            match op {
                Op::Arrive { tag } => {
                    let payload = vec![tag as u8, sent_seq_per_tag[tag as usize]];
                    sent_seq_per_tag[tag as usize] += 1;
                    let env = Envelope {
                        kind: EnvKind::Eager,
                        src: 0,
                        tag,
                        cxt: 0,
                        len: 2,
                        seq: 0,
                    };
                    let out = c.on_envelope(0, env);
                    let sink = out.sink.unwrap();
                    c.body_chunk(sink, Bytes::from(payload));
                    let _ = c.body_done(sink);
                }
                Op::PostRecv { any_src, tag } => {
                    let src = if any_src { None } else { Some(0) };
                    let (r, ctrl) = c.post_recv(src, tag, 0);
                    prop_assert!(ctrl.is_empty());
                    posted.push(r);
                }
            }
        }
        // Drain: take every completed receive and check per-tag ordering.
        let mut next_seen = [0u8; 4];
        for r in posted {
            if c.is_done(r) {
                let (st, data) = c.take_done(r);
                let body: Vec<u8> = data.iter().flat_map(|b| b.iter().copied()).collect();
                prop_assert_eq!(body.len(), 2);
                let tag = body[0] as usize;
                prop_assert_eq!(st.tag as usize, tag, "status tag mismatch");
                prop_assert_eq!(body[1], next_seen[tag], "overtaking on tag {}", tag);
                next_seen[tag] += 1;
            }
        }
    }

    /// Every arrived message is delivered exactly once when enough receives
    /// are posted afterwards.
    #[test]
    fn exactly_once_delivery(tags in prop::collection::vec(0i32..4, 0..30)) {
        let mut c = Core::new(1, 2, 64 * 1024);
        for (i, &tag) in tags.iter().enumerate() {
            let env = Envelope { kind: EnvKind::Eager, src: 0, tag, cxt: 0, len: 1, seq: i as u32 };
            let sink = c.on_envelope(0, env).sink.unwrap();
            c.body_chunk(sink, Bytes::from(vec![i as u8]));
            let _ = c.body_done(sink);
        }
        let mut seen = std::collections::HashSet::new();
        for _ in 0..tags.len() {
            let (r, _) = c.post_recv(None, None, 0);
            prop_assert!(c.is_done(r), "posted recv must match a buffered msg");
            let (_, data) = c.take_done(r);
            prop_assert!(seen.insert(data[0][0]), "duplicate delivery");
        }
        prop_assert_eq!(seen.len(), tags.len());
        // One more receive must NOT match anything.
        let (r, _) = c.post_recv(None, None, 0);
        prop_assert!(!c.is_done(r));
    }
}
