//! Property-based tests for the matching engine: MPI's non-overtaking
//! guarantee and wildcard matching hold under arbitrary interleavings of
//! posts and arrivals.

use bytes::Bytes;
use proptest::prelude::*;

// The matching engine is pub; drive it directly.
use mpi_core::envelope::{EnvKind, Envelope};
use mpi_core::matching::Core;

#[derive(Debug, Clone)]
enum Op {
    /// Post a receive with optional wildcards (src is always rank 0 here).
    PostRecv { any_src: bool, tag: Option<i32> },
    /// An eager envelope + body arrives from rank 0 with this tag.
    Arrive { tag: i32 },
}

fn ops() -> impl Strategy<Value = Vec<Op>> {
    prop::collection::vec(
        prop_oneof![
            (any::<bool>(), prop_oneof![Just(None), (0i32..4).prop_map(Some)])
                .prop_map(|(any_src, tag)| Op::PostRecv { any_src, tag }),
            (0i32..4).prop_map(|tag| Op::Arrive { tag }),
        ],
        0..60,
    )
}

proptest! {
    /// Messages with the same (tag, rank, context) must be received in send
    /// order, no matter how receives interleave with arrivals.
    #[test]
    fn non_overtaking_per_trc(ops in ops()) {
        let mut c = Core::new(1, 2, 64 * 1024);
        let mut sent_seq_per_tag = [0u8; 4];
        let mut posted: Vec<mpi_core::matching::ReqId> = Vec::new();
        for op in ops {
            match op {
                Op::Arrive { tag } => {
                    let payload = vec![tag as u8, sent_seq_per_tag[tag as usize]];
                    sent_seq_per_tag[tag as usize] += 1;
                    let env = Envelope {
                        kind: EnvKind::Eager,
                        src: 0,
                        tag,
                        cxt: 0,
                        len: 2,
                        seq: 0,
                    };
                    let out = c.on_envelope(0, env);
                    let sink = out.sink.unwrap();
                    c.body_chunk(sink, Bytes::from(payload));
                    let _ = c.body_done(sink);
                }
                Op::PostRecv { any_src, tag } => {
                    let src = if any_src { None } else { Some(0) };
                    let (r, ctrl) = c.post_recv(src, tag, 0);
                    prop_assert!(ctrl.is_empty());
                    posted.push(r);
                }
            }
        }
        // Drain: take every completed receive and check per-tag ordering.
        let mut next_seen = [0u8; 4];
        for r in posted {
            if c.is_done(r) {
                let (st, data) = c.take_done(r);
                let body: Vec<u8> = data.iter().flat_map(|b| b.iter().copied()).collect();
                prop_assert_eq!(body.len(), 2);
                let tag = body[0] as usize;
                prop_assert_eq!(st.tag as usize, tag, "status tag mismatch");
                prop_assert_eq!(body[1], next_seen[tag], "overtaking on tag {}", tag);
                next_seen[tag] += 1;
            }
        }
    }

    /// Every arrived message is delivered exactly once when enough receives
    /// are posted afterwards.
    #[test]
    fn exactly_once_delivery(tags in prop::collection::vec(0i32..4, 0..30)) {
        let mut c = Core::new(1, 2, 64 * 1024);
        for (i, &tag) in tags.iter().enumerate() {
            let env = Envelope { kind: EnvKind::Eager, src: 0, tag, cxt: 0, len: 1, seq: i as u32 };
            let sink = c.on_envelope(0, env).sink.unwrap();
            c.body_chunk(sink, Bytes::from(vec![i as u8]));
            let _ = c.body_done(sink);
        }
        let mut seen = std::collections::HashSet::new();
        for _ in 0..tags.len() {
            let (r, _) = c.post_recv(None, None, 0);
            prop_assert!(c.is_done(r), "posted recv must match a buffered msg");
            let (_, data) = c.take_done(r);
            prop_assert!(seen.insert(data[0][0]), "duplicate delivery");
        }
        prop_assert_eq!(seen.len(), tags.len());
        // One more receive must NOT match anything.
        let (r, _) = c.post_recv(None, None, 0);
        prop_assert!(!c.is_done(r));
    }
}

// ---------------------------------------------------------------------------
// Indexed matcher ≡ naive reference scan
// ---------------------------------------------------------------------------

/// One step of a multi-source, multi-context interleaving with wildcards.
#[derive(Debug, Clone)]
enum XOp {
    Arrive { src: u16, tag: i32, cxt: u32 },
    Post { src: Option<u16>, tag: Option<i32>, cxt: u32 },
    Probe { src: Option<u16>, tag: Option<i32>, cxt: u32 },
}

fn xops() -> impl Strategy<Value = Vec<XOp>> {
    let arrive = (0u16..3, 0i32..3, 0u32..2).prop_map(|(src, tag, cxt)| XOp::Arrive { src, tag, cxt });
    let filt = || {
        (
            prop_oneof![Just(None), (0u16..3).prop_map(Some)],
            prop_oneof![Just(None), (0i32..3).prop_map(Some)],
            0u32..2,
        )
    };
    let post = filt().prop_map(|(src, tag, cxt)| XOp::Post { src, tag, cxt });
    let probe = filt().prop_map(|(src, tag, cxt)| XOp::Probe { src, tag, cxt });
    prop::collection::vec(prop_oneof![arrive, post, probe], 0..80)
}

proptest! {
    /// The hash-indexed matcher must be observationally identical to the
    /// naive linear scan it replaced: same envelope→receive pairing, same
    /// delivery order, same probe answers, for every interleaving of
    /// arrivals and (wildcard) posts across sources, tags, and contexts.
    #[test]
    fn indexed_matcher_equals_naive_scan(ops in xops()) {
        let mut c = Core::new(1, 4, 64 * 1024);
        // Naive reference model: plain Vec scans in arrival/post order.
        // (src, tag, cxt, payload id, consumed)
        let mut m_unex: Vec<(u16, i32, u32, u8, bool)> = Vec::new();
        // (src filter, tag filter, cxt, result slot)
        let mut m_posted: Vec<(Option<u16>, Option<i32>, u32, usize)> = Vec::new();
        let mut m_result: Vec<Option<(u16, i32, u8)>> = Vec::new();
        let mut reqs: Vec<mpi_core::matching::ReqId> = Vec::new();
        let mut next_id = 0u8;
        for op in ops {
            match op {
                XOp::Arrive { src, tag, cxt } => {
                    let id = next_id;
                    next_id = next_id.wrapping_add(1);
                    let env = Envelope { kind: EnvKind::Eager, src, tag, cxt, len: 1, seq: 0 };
                    let sink = c.on_envelope(src, env).sink.unwrap();
                    c.body_chunk(sink, Bytes::from(vec![id]));
                    let _ = c.body_done(sink);
                    let hit = m_posted.iter().position(|&(s, t, cx, _)| {
                        cx == cxt && s.is_none_or(|s| s == src) && t.is_none_or(|t| t == tag)
                    });
                    if let Some(pos) = hit {
                        let (_, _, _, slot) = m_posted.remove(pos);
                        m_result[slot] = Some((src, tag, id));
                    } else {
                        m_unex.push((src, tag, cxt, id, false));
                    }
                }
                XOp::Post { src, tag, cxt } => {
                    let (r, _) = c.post_recv(src, tag, cxt);
                    reqs.push(r);
                    let slot = m_result.len();
                    m_result.push(None);
                    let hit = m_unex.iter_mut().find(|u| {
                        !u.4 && u.2 == cxt && src.is_none_or(|s| s == u.0) && tag.is_none_or(|t| t == u.1)
                    });
                    if let Some(u) = hit {
                        u.4 = true;
                        m_result[slot] = Some((u.0, u.1, u.3));
                    } else {
                        m_posted.push((src, tag, cxt, slot));
                    }
                }
                XOp::Probe { src, tag, cxt } => {
                    let got = c.probe_unexpected(src, tag, cxt).map(|st| (st.src, st.tag));
                    let want = m_unex
                        .iter()
                        .find(|u| {
                            !u.4 && u.2 == cxt
                                && src.is_none_or(|s| s == u.0)
                                && tag.is_none_or(|t| t == u.1)
                        })
                        .map(|u| (u.0, u.1));
                    prop_assert_eq!(got, want, "probe diverged from naive scan");
                }
            }
        }
        for (i, r) in reqs.iter().enumerate() {
            match m_result[i] {
                Some((src, tag, id)) => {
                    prop_assert!(c.is_done(*r), "post {} done in model, pending in engine", i);
                    let (st, data) = c.take_done(*r);
                    prop_assert_eq!((st.src, st.tag), (src, tag), "status diverged on post {}", i);
                    prop_assert_eq!(data[0][0], id, "wrong message delivered to post {}", i);
                }
                None => prop_assert!(!c.is_done(*r), "post {} pending in model, done in engine", i),
            }
        }
    }
}
