//! The §3.5.3 daemon plane: SCTP daemons boot, monitor an MPI job, and
//! halt cleanly when it ends.

use bytes::Bytes;
use mpi_core::{mpirun_monitored, MpiCfg, ReduceOp};

#[test]
fn daemons_observe_a_full_job() {
    let (report, table) = mpirun_monitored(MpiCfg::sctp(6, 0.0).with_seed(1), |mpi| {
        let _ = mpi.allreduce(ReduceOp::Sum, &[mpi.rank() as f64]);
        mpi.send((mpi.rank() + 1) % mpi.size(), 1, Bytes::from_static(b"hi"));
        let _ = mpi.recv(None, Some(1));
    });
    assert!(table.all_started(6), "every rank must have reported start: {table:?}");
    assert!(table.all_ended(6), "every rank must have reported end: {table:?}");
    for r in 0..6u16 {
        let e = &table.ranks[&r];
        assert_eq!(e.host, r, "rank r runs on host r");
        assert!(e.heartbeats >= 1, "final progress report missing for {r}");
        assert!(e.last_msgs_sent >= 1, "rank {r} sent messages; the report should say so");
    }
    assert!(report.secs() > 0.0);
}

#[test]
fn daemons_work_under_loss_and_with_tcp_rpi() {
    // The daemon plane is SCTP regardless of the RPI transport (that is the
    // paper's point: the *entire* environment moves to SCTP).
    let (_, table) = mpirun_monitored(MpiCfg::tcp(4, 0.01).with_seed(2), |mpi| {
        mpi.barrier();
    });
    assert!(table.all_started(4));
    assert!(table.all_ended(4));
}

#[test]
fn monitored_runs_are_deterministic() {
    let go = || {
        let (r, _) = mpirun_monitored(MpiCfg::sctp(4, 0.01).with_seed(3), |mpi| {
            mpi.barrier();
            let _ = mpi.allreduce(ReduceOp::Max, &[1.0]);
        });
        r.sim_time.as_nanos()
    };
    assert_eq!(go(), go());
}
