//! Collectives across awkward process counts (non-powers-of-two, size 1,
//! size 2) on both transports — binomial trees and rings must degrade
//! gracefully.

use bytes::Bytes;
use mpi_core::{mpirun, MpiCfg, ReduceOp};

fn cfgs(n: u16, seed: u64) -> Vec<MpiCfg> {
    vec![MpiCfg::tcp(n, 0.0).with_seed(seed), MpiCfg::sctp(n, 0.0).with_seed(seed)]
}

#[test]
fn barrier_all_sizes() {
    for n in [1u16, 2, 3, 5, 7, 8] {
        for cfg in cfgs(n, 1) {
            mpirun(cfg, |mpi| {
                for _ in 0..3 {
                    mpi.barrier();
                }
            });
        }
    }
}

#[test]
fn bcast_every_root_every_size() {
    for n in [1u16, 3, 6, 8] {
        for root in 0..n {
            let cfg = MpiCfg::sctp(n, 0.0).with_seed(root as u64 + 2);
            mpirun(cfg, move |mpi| {
                let data =
                    (mpi.rank() == root).then(|| Bytes::from(vec![root as u8 ^ 0x5A; 777]));
                let got = mpi.bcast(root, data);
                assert_eq!(got.len(), 777);
                assert!(got.iter().all(|&b| b == root as u8 ^ 0x5A));
            });
        }
    }
}

#[test]
fn reduce_sum_and_min_max_odd_sizes() {
    for n in [1u16, 3, 5, 7] {
        mpirun(MpiCfg::tcp(n, 0.0).with_seed(3), move |mpi| {
            let me = mpi.rank() as f64;
            let s = mpi.reduce(0, ReduceOp::Sum, &[me, 1.0]);
            if mpi.rank() == 0 {
                let n = mpi.size() as f64;
                assert_eq!(s.unwrap(), vec![n * (n - 1.0) / 2.0, n]);
            }
            let mx = mpi.allreduce(ReduceOp::Max, &[me]);
            assert_eq!(mx, vec![(mpi.size() - 1) as f64]);
            let mn = mpi.allreduce(ReduceOp::Min, &[me]);
            assert_eq!(mn, vec![0.0]);
        });
    }
}

#[test]
fn gather_scatter_roundtrip_odd_sizes() {
    for n in [2u16, 5, 7] {
        mpirun(MpiCfg::sctp(n, 0.0).with_seed(4), move |mpi| {
            let me = mpi.rank();
            // Scatter from the last rank, gather back to it, compare.
            let root = mpi.size() - 1;
            let parts = (me == root).then(|| {
                (0..mpi.size()).map(|p| Bytes::from(vec![p as u8; 64 + p as usize])).collect()
            });
            let mine = mpi.scatter(root, parts);
            assert_eq!(mine.len(), 64 + me as usize);
            assert!(mine.iter().all(|&b| b == me as u8));
            let back = mpi.gather(root, mine);
            if me == root {
                let back = back.unwrap();
                for (p, b) in back.iter().enumerate() {
                    assert_eq!(b.len(), 64 + p);
                    assert!(b.iter().all(|&x| x == p as u8));
                }
            }
        });
    }
}

#[test]
fn allgather_and_alltoall_agree_with_direct_exchange() {
    for n in [3u16, 4, 6] {
        mpirun(MpiCfg::sctp(n, 0.0).with_seed(5), move |mpi| {
            let me = mpi.rank();
            let all = mpi.allgather(Bytes::from(vec![me as u8; 10 + me as usize]));
            for (p, b) in all.iter().enumerate() {
                assert_eq!(b.len(), 10 + p);
                assert!(b.iter().all(|&x| x == p as u8));
            }
            let data: Vec<Bytes> =
                (0..n).map(|p| Bytes::from(vec![me as u8 * 16 + p as u8; 9])).collect();
            let got = mpi.alltoall(data);
            for (p, b) in got.iter().enumerate() {
                assert_eq!(b[0], (p as u8) * 16 + me as u8);
            }
        });
    }
}

#[test]
fn back_to_back_collectives_do_not_cross() {
    // Many collectives in a row with no intervening barrier; the per-call
    // sequence number in the tag must keep them separate.
    mpirun(MpiCfg::sctp(5, 0.0).with_seed(6), |mpi| {
        for round in 0..10u8 {
            let data = (mpi.rank() == (round % 5) as u16)
                .then(|| Bytes::from(vec![round; 100]));
            let got = mpi.bcast((round % 5) as u16, data);
            assert!(got.iter().all(|&b| b == round), "round {round} crossed");
        }
    });
}

#[test]
fn collectives_survive_loss() {
    mpirun(MpiCfg::sctp(6, 0.02).with_seed(7), |mpi| {
        for _ in 0..3 {
            let v = mpi.allreduce(ReduceOp::Sum, &[1.0; 8]);
            assert_eq!(v, vec![6.0; 8]);
            mpi.barrier();
        }
    });
}

#[test]
fn collectives_do_not_match_user_receives() {
    // A wildcard user receive posted before a barrier must not swallow
    // barrier traffic (reserved context).
    mpirun(MpiCfg::tcp(3, 0.0).with_seed(8), |mpi| {
        let r = mpi.irecv(mpi_core::ANY_SOURCE, mpi_core::ANY_TAG);
        mpi.barrier();
        // Nothing user-level was sent; the receive must still be pending.
        assert!(mpi.test(r).is_none(), "barrier traffic leaked into user context");
        // Satisfy it so the run terminates cleanly.
        let peer = (mpi.rank() + 1) % mpi.size();
        mpi.send(peer, 0, Bytes::from_static(b"x"));
        let _ = mpi.wait(r);
    });
}
