//! Request table and message-matching engine (transport-independent).
//!
//! Implements LAM's message-delivery protocol (paper §2.2.2):
//! * **short messages** (≤ 64 KB): eager — envelope + body; unmatched
//!   arrivals are buffered as *unexpected* messages;
//! * **long messages**: rendezvous — RndvReq envelope, receiver ACKs when a
//!   matching receive is posted, sender then ships RndvBody + body;
//! * **synchronous short messages**: eager body, but the send completes
//!   only when the receiver ACKs the match.
//!
//! Matching is on the (tag, rank, context) triple with `MPI_ANY_SOURCE` /
//! `MPI_ANY_TAG` wildcards; posted receives match in post order, unexpected
//! messages in arrival order.
//!
//! Both queues are hash-indexed so the hot paths — an arriving envelope
//! looking for a posted receive, and a posted receive looking for a
//! buffered unexpected message — cost a handful of map lookups instead of
//! a linear scan of every outstanding request. Order ties are broken by
//! monotonic sequence numbers (post order / arrival order), never by hash
//! iteration order, so results are identical to the naive scan.

use std::collections::VecDeque;

use simcore::fxhash::FxHashMap;

use bytes::Bytes;

use crate::envelope::{EnvKind, Envelope};

/// Handle to a request in the per-process table.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ReqId(pub usize);

/// Completed-receive metadata.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Status {
    pub src: u16,
    pub tag: i32,
    pub len: u32,
}

/// Where an incoming message body is being delivered.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Sink {
    Req(usize),
    Unex(usize),
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum ReqState {
    /// Send queued for the wire; completes when fully written (standard
    /// short) or advances (sync/long).
    SendQueued,
    /// Long send: RndvReq written, waiting for the receiver's ACK.
    SendWaitRndvAck,
    /// Long send: body queued; completes when fully written.
    SendBody,
    /// Sync send: body written, waiting for the receiver's SyncAck.
    SendWaitSyncAck,
    /// Receive posted, not yet matched.
    RecvPosted,
    /// Receive matched; body arriving.
    RecvArriving,
    Done,
}

#[derive(Debug)]
pub(crate) struct Request {
    pub state: ReqState,
    pub is_send: bool,
    /// Send: destination. Recv: source filter (None = ANY_SOURCE).
    pub peer: Option<u16>,
    /// Send: tag. Recv: tag filter (None = ANY_TAG).
    pub tag: Option<i32>,
    pub cxt: u32,
    /// Sender-side sequence number (pairs ACKs with requests).
    pub seq: u32,
    /// Send payload (retained until the wire has it / rendezvous fires).
    pub send_data: Vec<Bytes>,
    pub send_kind: EnvKind,
    /// Receive accumulation.
    pub data: Vec<Bytes>,
    pub got: u32,
    pub status: Option<Status>,
}

/// An unexpected message (envelope arrived before a matching receive).
#[derive(Debug)]
pub(crate) struct Unex {
    pub env: Envelope,
    pub data: Vec<Bytes>,
    pub got: u32,
    pub complete: bool,
    /// A receive matched this entry while its body was still arriving.
    pub claimed_by: Option<usize>,
    pub consumed: bool,
}

/// A control envelope the RPI must transmit to `peer`.
pub type CtrlOut = (u16, Envelope);

/// Result of processing an inbound envelope.
#[derive(Debug, Default)]
pub struct EnvOutcome {
    /// Body bytes that follow this envelope go here (None = no body).
    pub sink: Option<Sink>,
    /// Control envelopes to send back (rendezvous/sync ACKs).
    pub ctrl: Vec<CtrlOut>,
    /// A long-message body release: (send request, RndvBody envelope, body).
    pub body_send: Option<(ReqId, Envelope, Vec<Bytes>)>,
}

impl EnvOutcome {
    /// Did the envelope of `kind` find a posted receive (rather than landing
    /// in the unexpected queue)? Control kinds (ACKs, rendezvous bodies)
    /// always pair with a pending request.
    pub fn matched_posted(&self, kind: EnvKind) -> bool {
        match kind {
            EnvKind::Eager | EnvKind::SyncEager => matches!(self.sink, Some(Sink::Req(_))),
            EnvKind::RndvReq => !self.ctrl.is_empty(),
            _ => true,
        }
    }
}

/// The per-process matching state.
pub struct Core {
    pub rank: u16,
    pub size: u16,
    /// Eager/rendezvous switchover (LAM default 64 KB).
    pub short_limit: u32,
    pub(crate) reqs: Vec<Request>,
    /// Posted receives, bucketed by filter concreteness. Each queue holds
    /// `(post_seq, req idx)` in post order; an envelope checks at most four
    /// queue fronts and the minimum `post_seq` wins, which reproduces the
    /// post-order scan exactly.
    posted_st: FxHashMap<(u32, u16, i32), VecDeque<(u64, usize)>>,
    posted_s: FxHashMap<(u32, u16), VecDeque<(u64, usize)>>,
    posted_t: FxHashMap<(u32, i32), VecDeque<(u64, usize)>>,
    posted_any: FxHashMap<u32, VecDeque<(u64, usize)>>,
    next_post_seq: u64,
    /// Unexpected messages by arrival id (monotonic). An entry stays here
    /// while body bytes can still arrive for it; fully-consumed entries
    /// are released immediately, so the table never accumulates garbage.
    pub(crate) unexpected: FxHashMap<usize, Unex>,
    /// Unexpected arrival ids bucketed by every filter shape a receive or
    /// probe can ask with, each queue in arrival (= id) order — the mirror
    /// of the posted-receive index. A lookup reads exactly one queue front,
    /// whatever its wildcards; ids that were consumed or claimed since
    /// being pushed are popped lazily when they surface.
    ux_st: FxHashMap<(u32, u16, i32), VecDeque<usize>>,
    ux_s: FxHashMap<(u32, u16), VecDeque<usize>>,
    ux_t: FxHashMap<(u32, i32), VecDeque<usize>>,
    ux_any: FxHashMap<u32, VecDeque<usize>>,
    next_unex_id: usize,
    /// Unexpected entries not yet consumed (drives `unexpected_peak`).
    unex_live: usize,
    /// (peer, seq) → send request awaiting that peer's ACK.
    pub(crate) await_ack: FxHashMap<(u16, u32), usize>,
    /// (peer, seq) → recv request awaiting that long body.
    pub(crate) rndv_expect: FxHashMap<(u16, u32), usize>,
    next_seq: u32,
    /// Counters for diagnostics.
    pub unexpected_peak: usize,
}

impl Core {
    pub fn new(rank: u16, size: u16, short_limit: u32) -> Self {
        Core {
            rank,
            size,
            short_limit,
            reqs: Vec::new(),
            posted_st: FxHashMap::default(),
            posted_s: FxHashMap::default(),
            posted_t: FxHashMap::default(),
            posted_any: FxHashMap::default(),
            next_post_seq: 0,
            unexpected: FxHashMap::default(),
            ux_st: FxHashMap::default(),
            ux_s: FxHashMap::default(),
            ux_t: FxHashMap::default(),
            ux_any: FxHashMap::default(),
            next_unex_id: 0,
            unex_live: 0,
            await_ack: FxHashMap::default(),
            rndv_expect: FxHashMap::default(),
            next_seq: 0,
            unexpected_peak: 0,
        }
    }

    fn alloc(&mut self, r: Request) -> usize {
        self.reqs.push(r);
        self.reqs.len() - 1
    }

    pub fn is_done(&self, r: ReqId) -> bool {
        self.reqs[r.0].state == ReqState::Done
    }

    /// Did this receive find a buffered unexpected message at post time?
    /// (Any state other than freshly-posted means it matched something.)
    pub fn matched_at_post(&self, r: ReqId) -> bool {
        self.reqs[r.0].state != ReqState::RecvPosted
    }

    /// Take a completed request's payload + status. Panics if not done.
    pub fn take_done(&mut self, r: ReqId) -> (Status, Vec<Bytes>) {
        let req = &mut self.reqs[r.0];
        assert_eq!(req.state, ReqState::Done, "take_done on incomplete request");
        let status = req.status.unwrap_or(Status { src: req.peer.unwrap_or(0), tag: req.tag.unwrap_or(0), len: 0 });
        (status, std::mem::take(&mut req.data))
    }

    // -----------------------------------------------------------------
    // Send side
    // -----------------------------------------------------------------

    /// Create a send request. Returns the request, the envelope to write,
    /// and the body to attach (None for rendezvous requests).
    pub fn submit_send(
        &mut self,
        dst: u16,
        tag: i32,
        cxt: u32,
        data: Bytes,
        sync: bool,
    ) -> (ReqId, Envelope, Option<Vec<Bytes>>) {
        let len = data.len() as u32;
        let seq = self.next_seq;
        self.next_seq += 1;
        let long = len > self.short_limit;
        let kind = if long {
            EnvKind::RndvReq
        } else if sync {
            EnvKind::SyncEager
        } else {
            EnvKind::Eager
        };
        let env = Envelope { kind, src: self.rank, tag, cxt, len, seq };
        let state = if long { ReqState::SendWaitRndvAck } else { ReqState::SendQueued };
        let (retained, body) = if long { (vec![data], None) } else { (Vec::new(), Some(vec![data])) };
        let idx = self.alloc(Request {
            state,
            is_send: true,
            peer: Some(dst),
            tag: Some(tag),
            cxt,
            seq,
            send_data: retained,
            send_kind: kind,
            data: Vec::new(),
            got: 0,
            status: None,
        });
        if long || sync {
            self.await_ack.insert((dst, seq), idx);
        }
        (ReqId(idx), env, body)
    }

    /// The wire finished writing this send's envelope+body. Advances the
    /// state machine; standard sends complete here.
    pub fn send_written(&mut self, r: ReqId) {
        let req = &mut self.reqs[r.0];
        match (req.state, req.send_kind) {
            (ReqState::SendQueued, EnvKind::Eager) => req.state = ReqState::Done,
            (ReqState::SendQueued, EnvKind::SyncEager) => req.state = ReqState::SendWaitSyncAck,
            (ReqState::SendBody, _) => req.state = ReqState::Done,
            // RndvReq envelope written: still waiting for the ACK.
            (ReqState::SendWaitRndvAck, _) => {}
            (s, k) => unreachable!("send_written in state {s:?} kind {k:?}"),
        }
    }

    // -----------------------------------------------------------------
    // Receive side
    // -----------------------------------------------------------------

    /// Post a receive. May match (and consume) an unexpected message;
    /// returns control envelopes to transmit (rendezvous / sync ACKs).
    pub fn post_recv(&mut self, src: Option<u16>, tag: Option<i32>, cxt: u32) -> (ReqId, Vec<CtrlOut>) {
        let idx = self.alloc(Request {
            state: ReqState::RecvPosted,
            is_send: false,
            peer: src,
            tag,
            cxt,
            seq: 0,
            send_data: Vec::new(),
            send_kind: EnvKind::Eager,
            data: Vec::new(),
            got: 0,
            status: None,
        });
        let mut ctrl = Vec::new();

        // Earliest matching unexpected message, via the arrival index.
        let Some(ui) = self.find_unexpected(src, tag, cxt) else {
            self.index_posted(idx);
            return (ReqId(idx), ctrl);
        };
        let env = self.unexpected[&ui].env;
        match env.kind {
            EnvKind::Eager | EnvKind::SyncEager => {
                if self.unexpected[&ui].complete {
                    self.consume_unexpected(ui);
                    let u = self.unexpected.get_mut(&ui).unwrap();
                    let data = std::mem::take(&mut u.data);
                    let req = &mut self.reqs[idx];
                    req.data = data;
                    req.got = env.len;
                    req.status = Some(Status { src: env.src, tag: env.tag, len: env.len });
                    req.state = ReqState::Done;
                    if env.kind == EnvKind::SyncEager {
                        ctrl.push((env.src, sync_ack(self.rank, &env)));
                    }
                } else {
                    // Body still arriving: claim; completion transfers it.
                    self.unexpected.get_mut(&ui).unwrap().claimed_by = Some(idx);
                    self.reqs[idx].state = ReqState::RecvArriving;
                }
            }
            EnvKind::RndvReq => {
                // Clear-to-send; the body will arrive tagged with env.seq.
                self.consume_unexpected(ui);
                self.reqs[idx].state = ReqState::RecvArriving;
                self.reqs[idx].status = Some(Status { src: env.src, tag: env.tag, len: env.len });
                self.rndv_expect.insert((env.src, env.seq), idx);
                ctrl.push((env.src, rndv_ack(self.rank, &env)));
            }
            k => unreachable!("unexpected queue holds {k:?}"),
        }
        self.release_unexpected(ui);
        self.purge_unexpected_fronts(&env);
        (ReqId(idx), ctrl)
    }

    // -----------------------------------------------------------------
    // Inbound envelopes
    // -----------------------------------------------------------------

    /// Process an inbound envelope from `from`.
    pub fn on_envelope(&mut self, from: u16, env: Envelope) -> EnvOutcome {
        debug_assert_eq!(from, env.src, "envelope source mismatch");
        let mut out = EnvOutcome::default();
        match env.kind {
            EnvKind::Eager | EnvKind::SyncEager => {
                if let Some(p) = self.match_posted(&env) {
                    let req = &mut self.reqs[p];
                    req.state = ReqState::RecvArriving;
                    req.status = Some(Status { src: env.src, tag: env.tag, len: env.len });
                    // Sync ACK is emitted at body completion.
                    if env.kind == EnvKind::SyncEager {
                        req.seq = env.seq;
                        req.send_kind = EnvKind::SyncEager; // remember to ack
                    }
                    out.sink = Some(Sink::Req(p));
                } else {
                    out.sink = Some(Sink::Unex(self.push_unexpected(env)));
                }
            }
            EnvKind::RndvReq => {
                if let Some(p) = self.match_posted(&env) {
                    let req = &mut self.reqs[p];
                    req.state = ReqState::RecvArriving;
                    req.status = Some(Status { src: env.src, tag: env.tag, len: env.len });
                    self.rndv_expect.insert((env.src, env.seq), p);
                    out.ctrl.push((env.src, rndv_ack(self.rank, &env)));
                } else {
                    self.push_unexpected(env);
                }
            }
            EnvKind::RndvAck => {
                let idx = self
                    .await_ack
                    .remove(&(from, env.seq))
                    .expect("RndvAck for unknown send");
                let req = &mut self.reqs[idx];
                debug_assert_eq!(req.state, ReqState::SendWaitRndvAck);
                req.state = ReqState::SendBody;
                let body = std::mem::take(&mut req.send_data);
                let len: usize = body.iter().map(|b| b.len()).sum();
                let benv = Envelope {
                    kind: EnvKind::RndvBody,
                    src: self.rank,
                    tag: req.tag.unwrap_or(0),
                    cxt: req.cxt,
                    len: len as u32,
                    seq: env.seq,
                };
                out.body_send = Some((ReqId(idx), benv, body));
            }
            EnvKind::RndvBody => {
                let idx = self
                    .rndv_expect
                    .remove(&(from, env.seq))
                    .expect("RndvBody without prior ACK");
                out.sink = Some(Sink::Req(idx));
            }
            EnvKind::SyncAck => {
                let idx = self
                    .await_ack
                    .remove(&(from, env.seq))
                    .expect("SyncAck for unknown send");
                let req = &mut self.reqs[idx];
                debug_assert_eq!(req.state, ReqState::SendWaitSyncAck);
                req.state = ReqState::Done;
            }
        }
        out
    }

    /// Append body bytes to a sink.
    pub fn body_chunk(&mut self, sink: Sink, chunk: Bytes) {
        match sink {
            Sink::Req(i) => {
                self.reqs[i].got += chunk.len() as u32;
                self.reqs[i].data.push(chunk);
            }
            Sink::Unex(i) => {
                let u = self.unexpected.get_mut(&i).expect("body for released unexpected");
                u.got += chunk.len() as u32;
                u.data.push(chunk);
            }
        }
    }

    /// The body for `sink` is complete. Completes requests and emits any
    /// deferred ACKs.
    pub fn body_done(&mut self, sink: Sink) -> Vec<CtrlOut> {
        let mut ctrl = Vec::new();
        match sink {
            Sink::Req(i) => {
                let req = &mut self.reqs[i];
                debug_assert_eq!(req.state, ReqState::RecvArriving);
                req.state = ReqState::Done;
                let st = req.status.expect("status set at match");
                debug_assert_eq!(req.got, st.len, "body length mismatch");
                if req.send_kind == EnvKind::SyncEager && !req.is_send {
                    let env = Envelope {
                        kind: EnvKind::SyncEager,
                        src: st.src,
                        tag: st.tag,
                        cxt: req.cxt,
                        len: st.len,
                        seq: req.seq,
                    };
                    ctrl.push((st.src, sync_ack(self.rank, &env)));
                }
            }
            Sink::Unex(i) => {
                let u = self.unexpected.get_mut(&i).expect("body_done for released unexpected");
                u.complete = true;
                if let Some(ri) = u.claimed_by {
                    let env = u.env;
                    let data = std::mem::take(&mut u.data);
                    let got = u.got;
                    self.consume_unexpected(i);
                    let req = &mut self.reqs[ri];
                    req.data = data;
                    req.got = got;
                    req.status = Some(Status { src: env.src, tag: env.tag, len: env.len });
                    req.state = ReqState::Done;
                    if env.kind == EnvKind::SyncEager {
                        ctrl.push((env.src, sync_ack(self.rank, &env)));
                    }
                }
                self.release_unexpected(i);
            }
        }
        ctrl
    }

    /// Does any buffered unexpected message match `(src, tag, cxt)`?
    /// Returns its envelope metadata without consuming it (MPI_Iprobe).
    /// `&mut` only for lazy index maintenance; matching state is unchanged.
    pub fn probe_unexpected(&mut self, src: Option<u16>, tag: Option<i32>, cxt: u32) -> Option<Status> {
        self.find_unexpected(src, tag, cxt).map(|id| {
            let env = self.unexpected[&id].env;
            Status { src: env.src, tag: env.tag, len: env.len }
        })
    }

    /// Allocate a sequence number (self-sends).
    pub fn fresh_seq(&mut self) -> u32 {
        let s = self.next_seq;
        self.next_seq += 1;
        s
    }

    /// Create an already-complete send request (self-sends).
    pub fn mk_done_send(&mut self, dst: u16, tag: i32, cxt: u32) -> ReqId {
        let idx = self.alloc(Request {
            state: ReqState::Done,
            is_send: true,
            peer: Some(dst),
            tag: Some(tag),
            cxt,
            seq: 0,
            send_data: Vec::new(),
            send_kind: EnvKind::Eager,
            data: Vec::new(),
            got: 0,
            status: None,
        });
        ReqId(idx)
    }

    /// Any request still incomplete? (diagnostics)
    pub fn pending_requests(&self) -> usize {
        self.reqs.iter().filter(|r| r.state != ReqState::Done).count()
    }

    // -----------------------------------------------------------------
    // Internals
    // -----------------------------------------------------------------

    /// Add a posted receive to the queue matching its filter concreteness.
    fn index_posted(&mut self, idx: usize) {
        let r = &self.reqs[idx];
        let seq = self.next_post_seq;
        self.next_post_seq += 1;
        match (r.peer, r.tag) {
            (Some(s), Some(t)) => {
                self.posted_st.entry((r.cxt, s, t)).or_default().push_back((seq, idx))
            }
            (Some(s), None) => self.posted_s.entry((r.cxt, s)).or_default().push_back((seq, idx)),
            (None, Some(t)) => self.posted_t.entry((r.cxt, t)).or_default().push_back((seq, idx)),
            (None, None) => self.posted_any.entry(r.cxt).or_default().push_back((seq, idx)),
        }
    }

    /// Earliest posted receive matching `env`: at most four queue fronts
    /// compete, the oldest post wins.
    fn match_posted(&mut self, env: &Envelope) -> Option<usize> {
        let fronts = [
            self.posted_st.get(&(env.cxt, env.src, env.tag)).and_then(|q| q.front()),
            self.posted_s.get(&(env.cxt, env.src)).and_then(|q| q.front()),
            self.posted_t.get(&(env.cxt, env.tag)).and_then(|q| q.front()),
            self.posted_any.get(&env.cxt).and_then(|q| q.front()),
        ];
        let class =
            fronts.iter().enumerate().filter_map(|(i, f)| f.map(|&(s, _)| (s, i))).min()?.1;
        macro_rules! pop {
            ($map:expr, $key:expr) => {{
                let key = $key;
                let q = $map.get_mut(&key).unwrap();
                let (_, idx) = q.pop_front().unwrap();
                if q.is_empty() {
                    $map.remove(&key);
                }
                idx
            }};
        }
        Some(match class {
            0 => pop!(self.posted_st, (env.cxt, env.src, env.tag)),
            1 => pop!(self.posted_s, (env.cxt, env.src)),
            2 => pop!(self.posted_t, (env.cxt, env.tag)),
            _ => pop!(self.posted_any, env.cxt),
        })
    }

    /// Earliest matchable unexpected message for `(src, tag, cxt)`: one
    /// queue front, whichever wildcard shape the filter has. Ids are
    /// monotonic and every queue is pushed in arrival order, so a front is
    /// always the oldest match — hash iteration order is never consulted.
    fn find_unexpected(&mut self, src: Option<u16>, tag: Option<i32>, cxt: u32) -> Option<usize> {
        match (src, tag) {
            (Some(s), Some(t)) => front_matchable(&mut self.ux_st, (cxt, s, t), &self.unexpected),
            (Some(s), None) => front_matchable(&mut self.ux_s, (cxt, s), &self.unexpected),
            (None, Some(t)) => front_matchable(&mut self.ux_t, (cxt, t), &self.unexpected),
            (None, None) => front_matchable(&mut self.ux_any, cxt, &self.unexpected),
        }
    }

    fn push_unexpected(&mut self, env: Envelope) -> usize {
        let id = self.next_unex_id;
        self.next_unex_id += 1;
        self.unexpected.insert(
            id,
            Unex { env, data: Vec::new(), got: 0, complete: false, claimed_by: None, consumed: false },
        );
        self.ux_st.entry((env.cxt, env.src, env.tag)).or_default().push_back(id);
        self.ux_s.entry((env.cxt, env.src)).or_default().push_back(id);
        self.ux_t.entry((env.cxt, env.tag)).or_default().push_back(id);
        self.ux_any.entry(env.cxt).or_default().push_back(id);
        self.unex_live += 1;
        self.unexpected_peak = self.unexpected_peak.max(self.unex_live);
        id
    }

    /// After an entry is consumed or claimed, pop any newly-stale ids off
    /// the fronts of the four queues it lives in. Keeps queue memory
    /// proportional to live entries; stale ids deeper in a queue are popped
    /// when they surface in `front_matchable`.
    fn purge_unexpected_fronts(&mut self, env: &Envelope) {
        let _ = front_matchable(&mut self.ux_st, (env.cxt, env.src, env.tag), &self.unexpected);
        let _ = front_matchable(&mut self.ux_s, (env.cxt, env.src), &self.unexpected);
        let _ = front_matchable(&mut self.ux_t, (env.cxt, env.tag), &self.unexpected);
        let _ = front_matchable(&mut self.ux_any, env.cxt, &self.unexpected);
    }

    fn consume_unexpected(&mut self, id: usize) {
        let u = self.unexpected.get_mut(&id).unwrap();
        if !u.consumed {
            u.consumed = true;
            self.unex_live -= 1;
        }
    }

    /// Incremental GC: drop the entry as soon as no more body bytes can
    /// arrive for it — consumed and either body-complete or a rendezvous
    /// request (whose body travels separately). Replaces the old
    /// whole-queue sweep, which only freed memory once *every* entry was
    /// consumed and so grew without bound under constant churn.
    fn release_unexpected(&mut self, id: usize) {
        if let Some(u) = self.unexpected.get(&id) {
            if u.consumed && (u.complete || u.env.kind == EnvKind::RndvReq) {
                self.unexpected.remove(&id);
            }
        }
    }
}

/// Front of one unexpected-index queue, lazily popping ids that stopped
/// being matchable (consumed, claimed, or released) since they were pushed.
/// Drops the key when the queue empties. A free function over disjoint
/// `Core` fields so callers can hold `&self.unexpected` alongside the map.
fn front_matchable<K: Copy + Eq + std::hash::Hash>(
    map: &mut FxHashMap<K, VecDeque<usize>>,
    key: K,
    unexpected: &FxHashMap<usize, Unex>,
) -> Option<usize> {
    let q = map.get_mut(&key)?;
    while let Some(&id) = q.front() {
        if unexpected.get(&id).is_some_and(|u| !u.consumed && u.claimed_by.is_none()) {
            return Some(id);
        }
        q.pop_front();
    }
    map.remove(&key);
    None
}

fn rndv_ack(me: u16, req_env: &Envelope) -> Envelope {
    Envelope {
        kind: EnvKind::RndvAck,
        src: me,
        tag: req_env.tag,
        cxt: req_env.cxt,
        len: 0,
        seq: req_env.seq,
    }
}

fn sync_ack(me: u16, orig: &Envelope) -> Envelope {
    Envelope { kind: EnvKind::SyncAck, src: me, tag: orig.tag, cxt: orig.cxt, len: 0, seq: orig.seq }
}

#[cfg(test)]
mod tests {
    use super::*;

    const K64: u32 = 64 * 1024;

    fn bytes(n: usize) -> Bytes {
        Bytes::from(vec![7u8; n])
    }

    #[test]
    fn eager_send_completes_on_write() {
        let mut c = Core::new(0, 2, K64);
        let (r, env, body) = c.submit_send(1, 5, 0, bytes(100), false);
        assert_eq!(env.kind, EnvKind::Eager);
        assert_eq!(body.unwrap().len(), 1);
        assert!(!c.is_done(r));
        c.send_written(r);
        assert!(c.is_done(r));
    }

    #[test]
    fn long_send_uses_rendezvous() {
        let mut c = Core::new(0, 2, K64);
        let (r, env, body) = c.submit_send(1, 5, 0, bytes(100_000), false);
        assert_eq!(env.kind, EnvKind::RndvReq);
        assert!(body.is_none());
        c.send_written(r);
        assert!(!c.is_done(r), "rendezvous send waits for ACK");
        // Receiver's ACK arrives.
        let ack = Envelope { kind: EnvKind::RndvAck, src: 1, tag: 5, cxt: 0, len: 0, seq: env.seq };
        let out = c.on_envelope(1, ack);
        let (r2, benv, data) = out.body_send.unwrap();
        assert_eq!(r2, r);
        assert_eq!(benv.kind, EnvKind::RndvBody);
        assert_eq!(benv.len, 100_000);
        assert_eq!(data.iter().map(|b| b.len()).sum::<usize>(), 100_000);
        c.send_written(r);
        assert!(c.is_done(r));
    }

    #[test]
    fn posted_recv_matches_incoming_eager() {
        let mut c = Core::new(1, 2, K64);
        let (r, ctrl) = c.post_recv(Some(0), Some(5), 0);
        assert!(ctrl.is_empty());
        let env = Envelope { kind: EnvKind::Eager, src: 0, tag: 5, cxt: 0, len: 3, seq: 0 };
        let out = c.on_envelope(0, env);
        let sink = out.sink.unwrap();
        assert_eq!(sink, Sink::Req(r.0));
        c.body_chunk(sink, Bytes::from_static(b"abc"));
        let ctrl = c.body_done(sink);
        assert!(ctrl.is_empty());
        assert!(c.is_done(r));
        let (st, data) = c.take_done(r);
        assert_eq!((st.src, st.tag, st.len), (0, 5, 3));
        assert_eq!(&data[0][..], b"abc");
    }

    #[test]
    fn unexpected_eager_then_recv() {
        let mut c = Core::new(1, 2, K64);
        let env = Envelope { kind: EnvKind::Eager, src: 0, tag: 5, cxt: 0, len: 3, seq: 0 };
        let out = c.on_envelope(0, env);
        let sink = out.sink.unwrap();
        assert!(matches!(sink, Sink::Unex(_)));
        c.body_chunk(sink, Bytes::from_static(b"xyz"));
        c.body_done(sink);
        let (r, ctrl) = c.post_recv(Some(0), Some(5), 0);
        assert!(ctrl.is_empty());
        assert!(c.is_done(r));
        let (_, data) = c.take_done(r);
        assert_eq!(&data[0][..], b"xyz");
    }

    #[test]
    fn recv_claims_incomplete_unexpected() {
        let mut c = Core::new(1, 2, K64);
        let env = Envelope { kind: EnvKind::Eager, src: 0, tag: 5, cxt: 0, len: 6, seq: 0 };
        let sink = c.on_envelope(0, env).sink.unwrap();
        c.body_chunk(sink, Bytes::from_static(b"abc"));
        // Recv posted while body is mid-flight.
        let (r, _) = c.post_recv(Some(0), Some(5), 0);
        assert!(!c.is_done(r));
        c.body_chunk(sink, Bytes::from_static(b"def"));
        c.body_done(sink);
        assert!(c.is_done(r));
        let (st, data) = c.take_done(r);
        assert_eq!(st.len, 6);
        let all: Vec<u8> = data.iter().flat_map(|b| b.iter().copied()).collect();
        assert_eq!(&all, b"abcdef");
    }

    #[test]
    fn wildcards_match_any_source_and_tag() {
        let mut c = Core::new(3, 8, K64);
        let (r, _) = c.post_recv(None, None, 0);
        let env = Envelope { kind: EnvKind::Eager, src: 6, tag: 42, cxt: 0, len: 0, seq: 0 };
        let sink = c.on_envelope(6, env).sink.unwrap();
        c.body_done(sink);
        assert!(c.is_done(r));
        let (st, _) = c.take_done(r);
        assert_eq!((st.src, st.tag), (6, 42));
    }

    #[test]
    fn wrong_context_does_not_match() {
        let mut c = Core::new(1, 2, K64);
        let (r, _) = c.post_recv(None, None, 7);
        let env = Envelope { kind: EnvKind::Eager, src: 0, tag: 1, cxt: 0, len: 0, seq: 0 };
        let sink = c.on_envelope(0, env).sink.unwrap();
        assert!(matches!(sink, Sink::Unex(_)), "context 0 must not match posted cxt 7");
        c.body_done(sink);
        assert!(!c.is_done(r));
    }

    #[test]
    fn rndv_req_matched_emits_ack_and_expects_body() {
        let mut c = Core::new(1, 2, K64);
        let (r, _) = c.post_recv(Some(0), Some(9), 0);
        let env = Envelope { kind: EnvKind::RndvReq, src: 0, tag: 9, cxt: 0, len: 500_000, seq: 3 };
        let out = c.on_envelope(0, env);
        assert!(out.sink.is_none());
        assert_eq!(out.ctrl.len(), 1);
        assert_eq!(out.ctrl[0].1.kind, EnvKind::RndvAck);
        // Body arrives.
        let benv = Envelope { kind: EnvKind::RndvBody, src: 0, tag: 9, cxt: 0, len: 500_000, seq: 3 };
        let sink = c.on_envelope(0, benv).sink.unwrap();
        assert_eq!(sink, Sink::Req(r.0));
        c.body_chunk(sink, Bytes::from(vec![0u8; 500_000]));
        c.body_done(sink);
        assert!(c.is_done(r));
    }

    #[test]
    fn rndv_req_unexpected_acks_on_later_recv() {
        let mut c = Core::new(1, 2, K64);
        let env = Envelope { kind: EnvKind::RndvReq, src: 0, tag: 9, cxt: 0, len: 500_000, seq: 3 };
        let out = c.on_envelope(0, env);
        assert!(out.sink.is_none() && out.ctrl.is_empty());
        let (r, ctrl) = c.post_recv(Some(0), Some(9), 0);
        assert_eq!(ctrl.len(), 1);
        assert_eq!(ctrl[0].1.kind, EnvKind::RndvAck);
        assert_eq!(ctrl[0].1.seq, 3);
        assert!(!c.is_done(r));
    }

    #[test]
    fn sync_send_completes_only_on_ack() {
        let mut c = Core::new(0, 2, K64);
        let (r, env, _) = c.submit_send(1, 5, 0, bytes(10), true);
        assert_eq!(env.kind, EnvKind::SyncEager);
        c.send_written(r);
        assert!(!c.is_done(r), "ssend must wait for the ACK");
        let ack = Envelope { kind: EnvKind::SyncAck, src: 1, tag: 5, cxt: 0, len: 0, seq: env.seq };
        c.on_envelope(1, ack);
        assert!(c.is_done(r));
    }

    #[test]
    fn sync_recv_emits_ack_when_matched_after_arrival() {
        let mut c = Core::new(1, 2, K64);
        let env = Envelope { kind: EnvKind::SyncEager, src: 0, tag: 5, cxt: 0, len: 2, seq: 8 };
        let sink = c.on_envelope(0, env).sink.unwrap();
        c.body_chunk(sink, Bytes::from_static(b"hi"));
        let ctrl = c.body_done(sink);
        assert!(ctrl.is_empty(), "no ack until matched");
        let (_r, ctrl) = c.post_recv(Some(0), Some(5), 0);
        assert_eq!(ctrl.len(), 1);
        assert_eq!(ctrl[0].1.kind, EnvKind::SyncAck);
        assert_eq!(ctrl[0].1.seq, 8);
    }

    #[test]
    fn sync_recv_emits_ack_at_completion_when_prematched() {
        let mut c = Core::new(1, 2, K64);
        let (_r, _) = c.post_recv(Some(0), Some(5), 0);
        let env = Envelope { kind: EnvKind::SyncEager, src: 0, tag: 5, cxt: 0, len: 2, seq: 8 };
        let sink = c.on_envelope(0, env).sink.unwrap();
        c.body_chunk(sink, Bytes::from_static(b"hi"));
        let ctrl = c.body_done(sink);
        assert_eq!(ctrl.len(), 1);
        assert_eq!(ctrl[0].1.kind, EnvKind::SyncAck);
    }

    #[test]
    fn posted_receives_match_in_post_order() {
        let mut c = Core::new(1, 2, K64);
        let (r1, _) = c.post_recv(None, None, 0);
        let (r2, _) = c.post_recv(None, None, 0);
        let env = Envelope { kind: EnvKind::Eager, src: 0, tag: 1, cxt: 0, len: 0, seq: 0 };
        let sink = c.on_envelope(0, env).sink.unwrap();
        c.body_done(sink);
        assert!(c.is_done(r1), "first posted matches first");
        assert!(!c.is_done(r2));
    }

    #[test]
    fn unexpected_match_in_arrival_order() {
        let mut c = Core::new(1, 2, K64);
        for seq in 0..3 {
            let env = Envelope { kind: EnvKind::Eager, src: 0, tag: 1, cxt: 0, len: 1, seq };
            let sink = c.on_envelope(0, env).sink.unwrap();
            c.body_chunk(sink, Bytes::from(vec![seq as u8]));
            c.body_done(sink);
        }
        for expect in 0..3u8 {
            let (r, _) = c.post_recv(Some(0), Some(1), 0);
            let (_, data) = c.take_done(r);
            assert_eq!(data[0][0], expect, "MPI non-overtaking order");
        }
    }

    #[test]
    fn gc_clears_consumed_unexpected() {
        let mut c = Core::new(1, 2, K64);
        for _ in 0..10 {
            let env = Envelope { kind: EnvKind::Eager, src: 0, tag: 1, cxt: 0, len: 0, seq: 0 };
            let sink = c.on_envelope(0, env).sink.unwrap();
            c.body_done(sink);
            let (r, _) = c.post_recv(Some(0), Some(1), 0);
            assert!(c.is_done(r));
        }
        assert!(c.unexpected.is_empty(), "fully consumed queue must be GC'd");
        assert!(c.unexpected_peak >= 1);
    }
}
