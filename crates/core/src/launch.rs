//! `mpirun` — build a simulated cluster, spawn one virtual process per
//! rank, run the program, and collect a report.

use std::sync::Arc;

use netsim::{NetCfg, NetStats};
use simcore::{ProcEnv, Runtime, SimTime};
use transport::sctp::{AssocStats, SctpCfg};
use transport::tcp::{SockStats, TcpCfg};
use transport::World;

use crate::api::{Mpi, MpiProcCfg, TransportSel};
use crate::cost::CostCfg;
use crate::rpi_sctp::{ContextMap, RaceFix};

/// Full configuration of one MPI run.
#[derive(Debug, Clone)]
pub struct MpiCfg {
    pub nprocs: u16,
    pub transport: TransportSel,
    pub net: NetCfg,
    pub tcp: TcpCfg,
    pub sctp: SctpCfg,
    pub cost: CostCfg,
    pub seed: u64,
    /// Eager/rendezvous switchover (LAM default 64 KB).
    pub short_limit: u32,
    /// RPI-level long-message piece size for SCTP (§3.4).
    pub long_piece: u32,
    /// Enable the flight recorder (crates/trace) for this run. `TRACE=1`
    /// in the environment also turns it on; this flag lets tests toggle
    /// tracing in-process without env races. File sinks (traces/*.pcapng,
    /// traces/*.jsonl) are written only under `TRACE=1`.
    pub trace: bool,
    /// Scripted faults (bursty loss, link flaps, jitter, degradation)
    /// installed on the network before the run starts. The default empty
    /// plan is exactly equivalent to no fault plane at all — bit-identical
    /// figure output, zero extra RNG draws.
    pub fault_plan: netsim::FaultPlan,
}

impl MpiCfg {
    /// LAM-TCP over the paper's cluster at the given loss rate.
    pub fn tcp(nprocs: u16, loss: f64) -> Self {
        MpiCfg {
            nprocs,
            transport: TransportSel::Tcp,
            net: NetCfg::paper_cluster(loss),
            tcp: TcpCfg::default(),
            sctp: SctpCfg::default(),
            cost: CostCfg::default(),
            seed: 1,
            short_limit: 64 * 1024,
            long_piece: 64 * 1024,
            trace: false,
            fault_plan: netsim::FaultPlan::default(),
        }
    }

    /// LAM-TCP on an era-faithful stack: FreeBSD 5.3's SACK recovery was
    /// brand new and had no RFC 6675-style scoreboard retransmission, so
    /// multi-loss windows degenerate into RTO chains — the regime behind
    /// the paper's TCP loss numbers.
    pub fn tcp_era(nprocs: u16, loss: f64) -> Self {
        let mut c = MpiCfg::tcp(nprocs, loss);
        c.tcp.sack_hole_repair = false;
        c
    }

    /// LAM-SCTP (10-stream pool, Option B) over the paper's cluster.
    pub fn sctp(nprocs: u16, loss: f64) -> Self {
        MpiCfg {
            transport: TransportSel::Sctp {
                streams: 10,
                race_fix: RaceFix::OptionB,
                ctx_map: ContextMap::StreamHash,
            },
            ..MpiCfg::tcp(nprocs, loss)
        }
    }

    /// The single-stream SCTP variant used to isolate head-of-line
    /// blocking (paper §4.2.2 / Figure 12).
    pub fn sctp_single_stream(nprocs: u16, loss: f64) -> Self {
        MpiCfg {
            transport: TransportSel::Sctp {
                streams: 1,
                race_fix: RaceFix::OptionB,
                ctx_map: ContextMap::StreamHash,
            },
            ..MpiCfg::tcp(nprocs, loss)
        }
    }

    /// LAM-SCTP with the §2.3 PPID context mapping: the stream pool is
    /// keyed by tag alone and the context rides in the SCTP PPID field.
    pub fn sctp_ppid(nprocs: u16, loss: f64) -> Self {
        MpiCfg {
            transport: TransportSel::Sctp {
                streams: 10,
                race_fix: RaceFix::OptionB,
                ctx_map: ContextMap::Ppid,
            },
            ..MpiCfg::tcp(nprocs, loss)
        }
    }

    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Set the SCTP send/receive buffer sizes (bytes); the default is the
    /// paper testbed's 220 KB. The `cmt` figure sweeps this knob to check
    /// that the 3-path stripe stays BDP- rather than window-limited.
    pub fn with_sctp_bufs(mut self, sndbuf: u64, rcvbuf: u64) -> Self {
        self.sctp.sndbuf = sndbuf;
        self.sctp.rcvbuf = rcvbuf;
        self
    }

    /// Enable CMT (concurrent multipath transfer) on every association.
    pub fn with_cmt(mut self, cmt: bool) -> Self {
        self.sctp.cmt = cmt;
        self
    }

    /// Offer RFC 8260 message interleaving (I-DATA) on every association.
    /// Takes effect only when both peers offer it — which inside one
    /// simulated cluster means: always, when this flag is set.
    pub fn with_interleave(mut self, on: bool) -> Self {
        self.sctp.interleave = on;
        self
    }

    /// Select the sender-side stream scheduler (effective only with
    /// interleaving negotiated; without I-DATA the engine forces FCFS so
    /// fragments stay TSN-contiguous for the legacy reassembler).
    /// `weights` configures weighted-fair (stream id indexes it).
    pub fn with_scheduler(mut self, sched: transport::sctp::SchedKind, weights: &[u32]) -> Self {
        self.sctp.sched = sched;
        self.sctp.sched_weights = weights.to_vec();
        self
    }

    /// Offer RFC 3758 PR-SCTP and set a default per-message lifetime.
    /// Messages older than the lifetime when (re)transmission comes due
    /// are abandoned and skipped past with FORWARD-TSN. `None` lifetime
    /// offers the extension but sends everything reliably unless a send
    /// names its own lifetime.
    pub fn with_pr_lifetime(mut self, lifetime: Option<simcore::Dur>) -> Self {
        self.sctp.pr_sctp = true;
        self.sctp.pr_lifetime = lifetime;
        self
    }

    /// Apply the `SCTP_SCHED` env knob (garbage-tolerant: unknown values
    /// fall back to FCFS). Used by bench binaries so scheduler sweeps
    /// don't need a recompile.
    pub fn with_sched_from_env(mut self) -> Self {
        if let Ok(s) = std::env::var("SCTP_SCHED") {
            self.sctp.sched = transport::sctp::SchedKind::parse(&s);
        }
        self
    }

    fn validate(&self) {
        assert!(self.nprocs as usize <= self.net.hosts as usize, "more ranks than hosts");
        if let TransportSel::Sctp { streams, .. } = self.transport {
            assert!(streams >= 1);
        }
    }
}

/// Build the run's flight recorder: `cfg.trace` forces one on (tests);
/// otherwise `TRACE=1` decides. Returns None when tracing is off.
fn make_tracer(cfg: &MpiCfg) -> Option<trace::Tracer> {
    match trace::Tracer::from_env() {
        Some(t) => Some(t),
        None if cfg.trace => Some(trace::Tracer::new(trace::DEFAULT_CAP, trace::DEFAULT_SNAP)),
        None => None,
    }
}

/// Write the capture files after a run — only under `TRACE=1`, so runs that
/// trace in-process (cfg.trace) stay filesystem-silent. Nothing is printed:
/// figure stdout/stderr must stay bit-identical with tracing on or off.
fn flush_trace(tracer: &Option<trace::Tracer>, end: SimTime, seed: u64) {
    let Some(t) = tracer else { return };
    if !trace::Tracer::env_enabled() {
        return;
    }
    let dump = t.dump(end.as_nanos());
    let label = trace::run_label().unwrap_or_else(|| format!("run-{seed:#x}"));
    let name = trace::sanitize_label(&label);
    let dir = std::path::Path::new("traces");
    if std::fs::create_dir_all(dir).is_err() {
        return;
    }
    let _ = std::fs::write(dir.join(format!("{name}.pcapng")), dump.write_pcapng());
    let _ = std::fs::write(dir.join(format!("{name}.jsonl")), dump.write_jsonl());
}

/// Result of one MPI run.
#[derive(Debug, Clone)]
pub struct MpiReport {
    /// Simulated wall time until the last rank finished.
    pub sim_time: SimTime,
    /// Events fired (diagnostic).
    pub events: u64,
    /// Driver↔process ownership transfers performed by the runtime
    /// (diagnostic; wall-clock cost, no simulated-time meaning).
    pub handoffs: u64,
    /// Wakes coalesced away by the runtime fast path (diagnostic).
    pub wakes_coalesced: u64,
    /// Packet trains emitted through the burst path (diagnostic).
    pub bursts_total: u64,
    /// Packets fused inside those trains (each still counts in `events`).
    pub pkts_fused: u64,
    /// Timers that took the O(1) wheel insert (diagnostic).
    pub wheel_hits: u64,
    /// Timers beyond the wheel horizon (heap fallback).
    pub heap_falls: u64,
    pub net: NetStats,
    /// Aggregate TCP socket stats across hosts (zero for SCTP runs).
    pub tcp: SockStats,
    /// Aggregate SCTP association stats across hosts (zero for TCP runs).
    pub sctp: AssocStats,
}

impl MpiReport {
    /// Total run time in seconds (the farm figures' metric).
    pub fn secs(&self) -> f64 {
        self.sim_time.as_secs_f64()
    }
}

/// Like [`mpirun`], but with the paper's §3.5.3 environment: one SCTP
/// daemon per host (lamboot star rooted at host 0), ranks reporting
/// start / progress / end to their local daemon, and a clean `lamhalt`
/// when the job finishes. Returns the aggregated job table alongside the
/// report — what an `mpitask`-style monitor would have observed.
pub fn mpirun_monitored<F>(cfg: MpiCfg, f: F) -> (MpiReport, crate::daemon::JobTable)
where
    F: Fn(&mut Mpi) + Send + Sync + 'static,
{
    use crate::daemon::{daemon_main, DaemonClient, DaemonMsg, JobTable};
    cfg.validate();
    let mut sctp_cfg = cfg.sctp.clone();
    if let TransportSel::Sctp { streams, .. } = cfg.transport {
        sctp_cfg.out_streams = sctp_cfg.out_streams.max(streams);
    }
    let mut world = World::new(cfg.net, cfg.tcp, sctp_cfg);
    world.net.set_fault_plan(cfg.fault_plan.clone());
    let tracer = make_tracer(&cfg);
    if let Some(t) = &tracer {
        t.set_topology(world.net.hosts(), world.net.ifaces());
        world.net.tracer = Some(t.clone());
    }
    let mut rt = Runtime::new(world, cfg.seed);
    rt.set_tracer(tracer.clone());
    let f = Arc::new(f);
    let table = Arc::new(std::sync::Mutex::new(JobTable::default()));
    let proc_cfg = MpiProcCfg {
        size: cfg.nprocs,
        transport: cfg.transport,
        cost: cfg.cost,
        short_limit: cfg.short_limit,
        long_piece: cfg.long_piece,
    };
    let n = cfg.nprocs;
    for rank in 0..n {
        let f = Arc::clone(&f);
        rt.spawn(format!("rank{rank}"), move |env: ProcEnv<World>| {
            // Report to the local daemon over SCTP (stock LAM used UDP).
            let client = DaemonClient::connect(&env, rank, rank);
            client.report(&env, DaemonMsg::JobStart { rank });
            let mut mpi = Mpi::init(env, proc_cfg);
            f(&mut mpi);
            let sent = mpi.stats.sends as u32;
            client.report(mpi.proc_env(), DaemonMsg::Heartbeat { rank, msgs_sent: sent });
            client.report(mpi.proc_env(), DaemonMsg::JobEnd { rank });
            mpi.finalize();
        });
    }
    for host in 0..n {
        let table = Arc::clone(&table);
        rt.spawn(format!("lamd{host}"), move |env: ProcEnv<World>| {
            daemon_main(env, host, n, n, table);
        });
    }
    let out = rt.run();
    flush_trace(&tracer, out.sim_time, cfg.seed);
    let w = &out.world;
    let report = MpiReport {
        sim_time: out.sim_time,
        events: out.events,
        handoffs: out.handoffs,
        wakes_coalesced: out.wakes_coalesced,
        bursts_total: out.bursts_total,
        pkts_fused: out.pkts_fused,
        wheel_hits: out.wheel_hits,
        heap_falls: out.heap_falls,
        net: w.net.stats,
        tcp: w.hosts.iter().map(|h| h.tcp.total_stats()).fold(SockStats::default(), fold_tcp),
        sctp: w.hosts.iter().map(|h| h.sctp.total_stats()).fold(AssocStats::default(), fold_sctp),
    };
    let table = Arc::try_unwrap(table).expect("daemons exited").into_inner().unwrap();
    (report, table)
}

fn fold_tcp(mut a: SockStats, s: SockStats) -> SockStats {
    a.segs_out += s.segs_out;
    a.segs_in += s.segs_in;
    a.bytes_out += s.bytes_out;
    a.bytes_in += s.bytes_in;
    a.retransmits += s.retransmits;
    a.fast_retransmits += s.fast_retransmits;
    a.timeouts += s.timeouts;
    a.dup_acks_in += s.dup_acks_in;
    a
}

fn fold_sctp(mut a: AssocStats, s: AssocStats) -> AssocStats {
    a.packets_out += s.packets_out;
    a.packets_in += s.packets_in;
    a.data_chunks_out += s.data_chunks_out;
    a.data_chunks_in += s.data_chunks_in;
    a.bytes_out += s.bytes_out;
    a.bytes_in += s.bytes_in;
    a.retransmits += s.retransmits;
    a.fast_retransmits += s.fast_retransmits;
    a.timeouts += s.timeouts;
    a.dup_tsns_in += s.dup_tsns_in;
    a.sacks_out += s.sacks_out;
    a.sacks_in += s.sacks_in;
    a.msgs_delivered += s.msgs_delivered;
    a.failovers += s.failovers;
    for (i, &n) in s.per_path_pkts.iter().enumerate() {
        a.per_path_pkts[i] += n;
    }
    a.spurious_frtx += s.spurious_frtx;
    a.rescue_rtx += s.rescue_rtx;
    a.msgs_abandoned += s.msgs_abandoned;
    a.fwd_tsn_out += s.fwd_tsn_out;
    a.fwd_tsn_in += s.fwd_tsn_in;
    if s.first_failover_ns != 0
        && (a.first_failover_ns == 0 || s.first_failover_ns < a.first_failover_ns)
    {
        a.first_failover_ns = s.first_failover_ns;
    }
    a
}

/// Like [`mpirun`], but force the flight recorder on and hand the caller
/// the finished capture alongside the report. The bench binaries use this
/// to assert HOL accounting (e.g. "I-DATA strictly reduces sender-side
/// blocked time") in-process, without the TRACE=1 file sinks.
pub fn mpirun_traced<F>(mut cfg: MpiCfg, f: F) -> (MpiReport, trace::TraceDump)
where
    F: Fn(&mut Mpi) + Send + Sync + 'static,
{
    cfg.trace = true;
    let mut dump_slot: Option<trace::TraceDump> = None;
    let report = mpirun_inner(cfg, f, Some(&mut dump_slot));
    (report, dump_slot.expect("tracer was forced on"))
}

/// Run `f` as an `nprocs`-rank MPI program on the simulated cluster.
///
/// `f` is invoked once per rank with an initialized [`Mpi`] handle
/// (connections established, init barrier passed).
pub fn mpirun<F>(cfg: MpiCfg, f: F) -> MpiReport
where
    F: Fn(&mut Mpi) + Send + Sync + 'static,
{
    mpirun_inner(cfg, f, None)
}

fn mpirun_inner<F>(
    cfg: MpiCfg,
    f: F,
    dump_slot: Option<&mut Option<trace::TraceDump>>,
) -> MpiReport
where
    F: Fn(&mut Mpi) + Send + Sync + 'static,
{
    cfg.validate();
    let mut sctp_cfg = cfg.sctp.clone();
    if let TransportSel::Sctp { streams, .. } = cfg.transport {
        sctp_cfg.out_streams = sctp_cfg.out_streams.max(streams);
    }
    let mut world = World::new(cfg.net, cfg.tcp, sctp_cfg);
    world.net.set_fault_plan(cfg.fault_plan.clone());
    let tracer = make_tracer(&cfg);
    if let Some(t) = &tracer {
        t.set_topology(world.net.hosts(), world.net.ifaces());
        world.net.tracer = Some(t.clone());
    }
    let mut rt = Runtime::new(world, cfg.seed);
    rt.set_tracer(tracer.clone());
    let f = Arc::new(f);
    let proc_cfg = MpiProcCfg {
        size: cfg.nprocs,
        transport: cfg.transport,
        cost: cfg.cost,
        short_limit: cfg.short_limit,
        long_piece: cfg.long_piece,
    };
    for rank in 0..cfg.nprocs {
        let f = Arc::clone(&f);
        rt.spawn(format!("rank{rank}"), move |env: ProcEnv<World>| {
            let mut mpi = Mpi::init(env, proc_cfg);
            f(&mut mpi);
            mpi.finalize();
        });
    }
    // Debug aid: abort runaway simulations (panics with diagnostics).
    if let Ok(s) = std::env::var("SCTP_MPI_DEADLINE_SECS") {
        if let Ok(secs) = s.parse::<u64>() {
            rt.set_deadline(simcore::SimTime::ZERO + simcore::Dur::from_secs(secs));
        }
    }
    // Debug aid: dump transport state at a given simulated time.
    if let Ok(s) = std::env::var("SCTP_MPI_DUMP_AT_SECS") {
        if let Ok(secs) = s.parse::<u64>() {
            rt.schedule_at(simcore::SimTime::ZERO + simcore::Dur::from_secs(secs), |w, ctx| {
                eprintln!("=== watchdog dump at {} ===", ctx.now());
                transport::sctp::dump_all(w);
            });
        }
    }
    let out = rt.run();
    flush_trace(&tracer, out.sim_time, cfg.seed);
    if let Some(slot) = dump_slot {
        *slot = tracer.as_ref().map(|t| t.dump(out.sim_time.as_nanos()));
    }
    let w = &out.world;
    let tcp_total =
        w.hosts.iter().map(|h| h.tcp.total_stats()).fold(SockStats::default(), fold_tcp);
    let sctp_total =
        w.hosts.iter().map(|h| h.sctp.total_stats()).fold(AssocStats::default(), fold_sctp);
    MpiReport {
        sim_time: out.sim_time,
        events: out.events,
        handoffs: out.handoffs,
        wakes_coalesced: out.wakes_coalesced,
        bursts_total: out.bursts_total,
        pkts_fused: out.pkts_fused,
        wheel_hits: out.wheel_hits,
        heap_falls: out.heap_falls,
        net: w.net.stats,
        tcp: tcp_total,
        sctp: sctp_total,
    }
}
