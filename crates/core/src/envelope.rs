//! The LAM-style message envelope (paper Figure 2).
//!
//! Every message body is preceded by a fixed-size envelope carrying the
//! matching triple (context, source rank, tag), a flags field identifying
//! the protocol step, the body length, and a sender sequence number used to
//! pair rendezvous/synchronous ACKs with their send requests.

use bytes::Bytes;

/// Serialized envelope size on the wire.
pub const ENV_SIZE: usize = 24;

/// What kind of protocol message this envelope introduces.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EnvKind {
    /// Short message sent eagerly; `len` body bytes follow.
    Eager,
    /// Synchronous short message; body follows; receiver must ACK `seq`.
    SyncEager,
    /// Rendezvous request for a long message of `len` bytes; no body.
    RndvReq,
    /// Receiver's clear-to-send for the long message `seq`; no body.
    RndvAck,
    /// Long-message body announcement for `seq`; `len` body bytes follow.
    RndvBody,
    /// Completion ACK for a synchronous send `seq`; no body.
    SyncAck,
}

impl EnvKind {
    fn to_u16(self) -> u16 {
        match self {
            EnvKind::Eager => 1,
            EnvKind::SyncEager => 2,
            EnvKind::RndvReq => 3,
            EnvKind::RndvAck => 4,
            EnvKind::RndvBody => 5,
            EnvKind::SyncAck => 6,
        }
    }

    fn from_u16(v: u16) -> Option<Self> {
        Some(match v {
            1 => EnvKind::Eager,
            2 => EnvKind::SyncEager,
            3 => EnvKind::RndvReq,
            4 => EnvKind::RndvAck,
            5 => EnvKind::RndvBody,
            6 => EnvKind::SyncAck,
            _ => return None,
        })
    }

    /// Does a body follow this envelope on the wire?
    pub fn has_body(self) -> bool {
        matches!(self, EnvKind::Eager | EnvKind::SyncEager | EnvKind::RndvBody)
    }

    /// Stable lowercase name (flight-recorder event field).
    pub fn name(self) -> &'static str {
        match self {
            EnvKind::Eager => "eager",
            EnvKind::SyncEager => "sync_eager",
            EnvKind::RndvReq => "rndv_req",
            EnvKind::RndvAck => "rndv_ack",
            EnvKind::RndvBody => "rndv_body",
            EnvKind::SyncAck => "sync_ack",
        }
    }
}

/// A message envelope. `src` is the sender's rank.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Envelope {
    pub kind: EnvKind,
    pub src: u16,
    pub tag: i32,
    pub cxt: u32,
    pub len: u32,
    pub seq: u32,
}

impl Envelope {
    /// Serialize to the 24-byte wire format.
    pub fn to_bytes(&self) -> Bytes {
        let mut v = Vec::with_capacity(ENV_SIZE);
        v.extend_from_slice(&self.kind.to_u16().to_le_bytes());
        v.extend_from_slice(&self.src.to_le_bytes());
        v.extend_from_slice(&self.tag.to_le_bytes());
        v.extend_from_slice(&self.cxt.to_le_bytes());
        v.extend_from_slice(&self.len.to_le_bytes());
        v.extend_from_slice(&self.seq.to_le_bytes());
        v.extend_from_slice(&[0u8; 4]); // pad to 24
        Bytes::from(v)
    }

    /// Parse from exactly [`ENV_SIZE`] bytes.
    pub fn from_bytes(b: &[u8]) -> Envelope {
        assert!(b.len() >= ENV_SIZE, "short envelope: {} bytes", b.len());
        let u16le = |i: usize| u16::from_le_bytes([b[i], b[i + 1]]);
        let u32le = |i: usize| u32::from_le_bytes([b[i], b[i + 1], b[i + 2], b[i + 3]]);
        Envelope {
            kind: EnvKind::from_u16(u16le(0)).expect("bad envelope kind"),
            src: u16le(2),
            tag: u32le(4) as i32,
            cxt: u32le(8),
            len: u32le(12),
            seq: u32le(16),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_all_kinds() {
        for kind in [
            EnvKind::Eager,
            EnvKind::SyncEager,
            EnvKind::RndvReq,
            EnvKind::RndvAck,
            EnvKind::RndvBody,
            EnvKind::SyncAck,
        ] {
            let e = Envelope { kind, src: 7, tag: -42, cxt: 3, len: 123_456, seq: 99 };
            let b = e.to_bytes();
            assert_eq!(b.len(), ENV_SIZE);
            assert_eq!(Envelope::from_bytes(&b), e);
        }
    }

    #[test]
    fn body_presence_matches_protocol() {
        assert!(EnvKind::Eager.has_body());
        assert!(EnvKind::SyncEager.has_body());
        assert!(EnvKind::RndvBody.has_body());
        assert!(!EnvKind::RndvReq.has_body());
        assert!(!EnvKind::RndvAck.has_body());
        assert!(!EnvKind::SyncAck.has_body());
    }

    #[test]
    fn negative_tags_roundtrip() {
        let e = Envelope { kind: EnvKind::Eager, src: 0, tag: i32::MIN, cxt: 0, len: 0, seq: 0 };
        assert_eq!(Envelope::from_bytes(&e.to_bytes()).tag, i32::MIN);
    }
}
