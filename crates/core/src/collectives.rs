//! Collective operations, built on point-to-point messaging — exactly as
//! the paper notes for LAM-TCP (§2.2.2: "Collectives in the TCP module of
//! LAM are implemented on top of point-to-point communication").
//!
//! Every collective exists in two forms: over `MPI_COMM_WORLD` (the short
//! names) and over an explicit communicator (`*_on`). All collective
//! traffic runs in the communicator's *collective* context (its
//! point-to-point context + 1) so it can never match user receives, and
//! carries a per-communicator sequence number in the tag so back-to-back
//! collectives cannot cross.

use bytes::Bytes;

use crate::api::{Mpi, Msg};
use crate::comm::{Comm, CommView, COMM_WORLD};
use crate::matching::ReqId;

/// Reduction operators over `f64` vectors.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReduceOp {
    Sum,
    Max,
    Min,
}

impl ReduceOp {
    fn apply(self, acc: &mut [f64], other: &[f64]) {
        assert_eq!(acc.len(), other.len(), "reduce length mismatch");
        for (a, &b) in acc.iter_mut().zip(other) {
            match self {
                ReduceOp::Sum => *a += b,
                ReduceOp::Max => *a = a.max(b),
                ReduceOp::Min => *a = a.min(b),
            }
        }
    }
}

/// Encode an f64 slice for the wire.
pub fn f64s_to_bytes(v: &[f64]) -> Bytes {
    let mut out = Vec::with_capacity(v.len() * 8);
    for x in v {
        out.extend_from_slice(&x.to_le_bytes());
    }
    Bytes::from(out)
}

/// Decode an f64 vector from a received message.
pub fn msg_to_f64s(m: &Msg) -> Vec<f64> {
    let raw = m.to_vec();
    assert_eq!(raw.len() % 8, 0, "payload is not a vector of f64");
    raw.chunks_exact(8).map(|c| f64::from_le_bytes(c.try_into().unwrap())).collect()
}

impl Mpi {
    /// Next collective tag base for `comm` (sequence number in the high bits).
    fn coll_tag(&mut self, comm: Comm, op: u32) -> i32 {
        let seq = self.next_coll_seq(comm);
        ((seq << 4) | (op & 0xF)) as i32
    }

    fn coll_send(&mut self, view: &CommView, dst_local: u16, tag: i32, data: Bytes) -> ReqId {
        let world = view.world_of(dst_local);
        self.isend_cxt(world, tag, view.cxt + 1, data, false)
    }

    fn coll_recv(&mut self, view: &CommView, src_local: u16, tag: i32) -> ReqId {
        let world = view.world_of(src_local);
        self.irecv_cxt(Some(world), Some(tag), view.cxt + 1)
    }

    // -----------------------------------------------------------------
    // Barrier
    // -----------------------------------------------------------------

    /// Dissemination barrier over `comm`: ⌈log₂ n⌉ rounds of pairwise
    /// exchange.
    pub fn barrier_on(&mut self, comm: Comm) {
        let view = self.comm_view(comm);
        let n = view.size() as u32;
        let base = self.coll_tag(comm, 1);
        if n <= 1 {
            return;
        }
        let me = view.me as u32;
        let mut round = 0u32;
        let mut dist = 1u32;
        while dist < n {
            let tag = base + ((round as i32) << 16);
            let to = ((me + dist) % n) as u16;
            let from = ((me + n - dist) % n) as u16;
            let s = self.coll_send(&view, to, tag, Bytes::new());
            let r = self.coll_recv(&view, from, tag);
            self.waitall(&[s, r]);
            dist <<= 1;
            round += 1;
        }
    }

    pub fn barrier(&mut self) {
        self.barrier_on(COMM_WORLD)
    }

    // -----------------------------------------------------------------
    // Broadcast
    // -----------------------------------------------------------------

    /// Binomial-tree broadcast from `root` (comm-local rank). Every member
    /// returns the payload.
    pub fn bcast_on(&mut self, comm: Comm, root: u16, data: Option<Bytes>) -> Bytes {
        let view = self.comm_view(comm);
        let n = view.size() as u32;
        let tag = self.coll_tag(comm, 2);
        if n <= 1 {
            return data.expect("root must supply data");
        }
        let me = view.me as u32;
        let vrank = (me + n - root as u32) % n; // rotate so root is 0
        let payload = if vrank == 0 {
            data.expect("root must supply data")
        } else {
            // Receive from parent: clear the lowest set bit.
            let parent_v = vrank & (vrank - 1);
            let parent = ((parent_v + root as u32) % n) as u16;
            let r = self.coll_recv(&view, parent, tag);
            let (_, msg) = self.wait(r);
            Bytes::from(msg.to_vec())
        };
        // Forward to children: set bits above the lowest set bit of vrank.
        let lowbit = if vrank == 0 { n.next_power_of_two() } else { vrank & vrank.wrapping_neg() };
        let mut bit = 1u32;
        let mut pend = Vec::new();
        while bit < lowbit && bit < n.next_power_of_two() {
            let child_v = vrank | bit;
            if child_v < n && child_v != vrank {
                let child = ((child_v + root as u32) % n) as u16;
                pend.push(self.coll_send(&view, child, tag, payload.clone()));
            }
            bit <<= 1;
        }
        if !pend.is_empty() {
            self.waitall(&pend);
        }
        payload
    }

    pub fn bcast(&mut self, root: u16, data: Option<Bytes>) -> Bytes {
        self.bcast_on(COMM_WORLD, root, data)
    }

    // -----------------------------------------------------------------
    // Reductions
    // -----------------------------------------------------------------

    /// Binomial-tree reduction of an f64 vector to `root` (comm-local).
    pub fn reduce_on(&mut self, comm: Comm, root: u16, op: ReduceOp, data: &[f64]) -> Option<Vec<f64>> {
        let view = self.comm_view(comm);
        let n = view.size() as u32;
        let tag = self.coll_tag(comm, 3);
        let me = view.me as u32;
        let vrank = (me + n - root as u32) % n;
        let mut acc = data.to_vec();
        // Children are vrank | bit for bits below our low bit.
        let lowbit = if vrank == 0 { n.next_power_of_two() } else { vrank & vrank.wrapping_neg() };
        let mut bit = 1u32;
        while bit < lowbit {
            let child_v = vrank | bit;
            if child_v < n {
                let child = ((child_v + root as u32) % n) as u16;
                let r = self.coll_recv(&view, child, tag);
                let (_, msg) = self.wait(r);
                op.apply(&mut acc, &msg_to_f64s(&msg));
            }
            bit <<= 1;
        }
        if vrank != 0 {
            let parent_v = vrank & (vrank - 1);
            let parent = ((parent_v + root as u32) % n) as u16;
            let payload = f64s_to_bytes(&acc);
            let s = self.coll_send(&view, parent, tag, payload);
            self.wait(s);
            None
        } else {
            Some(acc)
        }
    }

    pub fn reduce(&mut self, root: u16, op: ReduceOp, data: &[f64]) -> Option<Vec<f64>> {
        self.reduce_on(COMM_WORLD, root, op, data)
    }

    /// Allreduce = reduce to local rank 0 + broadcast.
    pub fn allreduce_on(&mut self, comm: Comm, op: ReduceOp, data: &[f64]) -> Vec<f64> {
        let reduced = self.reduce_on(comm, 0, op, data);
        let payload = reduced.map(|v| f64s_to_bytes(&v));
        let out = self.bcast_on(comm, 0, payload);
        msg_to_f64s(&Msg { len: out.len(), chunks: vec![out] })
    }

    pub fn allreduce(&mut self, op: ReduceOp, data: &[f64]) -> Vec<f64> {
        self.allreduce_on(COMM_WORLD, op, data)
    }

    // -----------------------------------------------------------------
    // Gather / scatter / allgather / alltoall
    // -----------------------------------------------------------------

    /// Linear gather to `root`: returns payloads indexed by comm-local rank.
    pub fn gather_on(&mut self, comm: Comm, root: u16, data: Bytes) -> Option<Vec<Bytes>> {
        let view = self.comm_view(comm);
        let n = view.size();
        let tag = self.coll_tag(comm, 4);
        if view.me == root {
            let mut out: Vec<Option<Bytes>> = (0..n).map(|_| None).collect();
            out[root as usize] = Some(data);
            let reqs: Vec<(u16, ReqId)> = (0..n)
                .filter(|&p| p != root)
                .map(|p| (p, self.coll_recv(&view, p, tag)))
                .collect();
            for (p, r) in reqs {
                let (_, msg) = self.wait(r);
                out[p as usize] = Some(Bytes::from(msg.to_vec()));
            }
            Some(out.into_iter().map(|o| o.unwrap()).collect())
        } else {
            let s = self.coll_send(&view, root, tag, data);
            self.wait(s);
            None
        }
    }

    pub fn gather(&mut self, root: u16, data: Bytes) -> Option<Vec<Bytes>> {
        self.gather_on(COMM_WORLD, root, data)
    }

    /// Linear scatter from `root`: each member receives its slice.
    pub fn scatter_on(&mut self, comm: Comm, root: u16, data: Option<Vec<Bytes>>) -> Bytes {
        let view = self.comm_view(comm);
        let n = view.size();
        let tag = self.coll_tag(comm, 5);
        if view.me == root {
            let data = data.expect("root must supply data");
            assert_eq!(data.len(), n as usize);
            let mut mine = Bytes::new();
            let mut pend = Vec::new();
            for (p, d) in data.into_iter().enumerate() {
                if p as u16 == root {
                    mine = d;
                } else {
                    pend.push(self.coll_send(&view, p as u16, tag, d));
                }
            }
            self.waitall(&pend);
            mine
        } else {
            let r = self.coll_recv(&view, root, tag);
            let (_, msg) = self.wait(r);
            Bytes::from(msg.to_vec())
        }
    }

    pub fn scatter(&mut self, root: u16, data: Option<Vec<Bytes>>) -> Bytes {
        self.scatter_on(COMM_WORLD, root, data)
    }

    /// Ring allgather: everyone ends with all members' payloads.
    pub fn allgather_on(&mut self, comm: Comm, data: Bytes) -> Vec<Bytes> {
        let view = self.comm_view(comm);
        let n = view.size();
        let tag = self.coll_tag(comm, 6);
        let me = view.me;
        let mut out: Vec<Option<Bytes>> = (0..n).map(|_| None).collect();
        out[me as usize] = Some(data);
        if n == 1 {
            return out.into_iter().map(|o| o.unwrap()).collect();
        }
        let right = (me + 1) % n;
        let left = (me + n - 1) % n;
        // In each step pass along the ring the block received previously.
        let mut cur = me;
        for step in 0..(n - 1) {
            let tag_s = tag + ((step as i32) << 16);
            let block = out[cur as usize].clone().unwrap();
            let s = self.coll_send(&view, right, tag_s, block);
            let r = self.coll_recv(&view, left, tag_s);
            let done = self.waitall(&[s, r]);
            let incoming = Bytes::from(done[1].1.to_vec());
            cur = (cur + n - 1) % n;
            out[cur as usize] = Some(incoming);
        }
        out.into_iter().map(|o| o.unwrap()).collect()
    }

    pub fn allgather(&mut self, data: Bytes) -> Vec<Bytes> {
        self.allgather_on(COMM_WORLD, data)
    }

    /// All-to-all personalized exchange: `data[p]` goes to comm-local rank
    /// p; returns what each member sent here, indexed by source.
    pub fn alltoall_on(&mut self, comm: Comm, data: Vec<Bytes>) -> Vec<Bytes> {
        let view = self.comm_view(comm);
        let n = view.size();
        assert_eq!(data.len(), n as usize);
        let tag = self.coll_tag(comm, 7);
        let me = view.me;
        let mut out: Vec<Option<Bytes>> = (0..n).map(|_| None).collect();
        // Post all receives, then all sends, then wait (robust for any n).
        let recvs: Vec<(u16, ReqId)> =
            (0..n).filter(|&p| p != me).map(|p| (p, self.coll_recv(&view, p, tag))).collect();
        let mut sends = Vec::new();
        for (p, d) in data.into_iter().enumerate() {
            if p as u16 == me {
                out[p] = Some(d);
            } else {
                sends.push(self.coll_send(&view, p as u16, tag, d));
            }
        }
        for (p, r) in recvs {
            let (_, msg) = self.wait(r);
            out[p as usize] = Some(Bytes::from(msg.to_vec()));
        }
        self.waitall(&sends);
        out.into_iter().map(|o| o.unwrap()).collect()
    }

    pub fn alltoall(&mut self, data: Vec<Bytes>) -> Vec<Bytes> {
        self.alltoall_on(COMM_WORLD, data)
    }
}
