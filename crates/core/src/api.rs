//! The MPI-like user API: point-to-point sends/receives (blocking and
//! nonblocking), waits, and the progression loop that drives the RPI.

use bytes::Bytes;
use simcore::{Dur, ProcEnv, SimTime};
use transport::World;

use crate::comm::CommData;
use crate::cost::{CostCfg, CpuMeter};
use crate::matching::{Core, ReqId, Status};
use crate::rpi_sctp::{ContextMap, RaceFix, SctpRpi};
use crate::rpi_tcp::TcpRpi;

/// MPI_ANY_SOURCE.
pub const ANY_SOURCE: Option<u16> = None;
/// MPI_ANY_TAG.
pub const ANY_TAG: Option<i32> = None;

/// The user-data context (MPI_COMM_WORLD).
pub const CXT_WORLD: u32 = 0;
/// The collectives' reserved context (CXT_WORLD + 1; kept for reference —
/// collective contexts are always `comm.cxt + 1`).
#[allow(dead_code)]
pub(crate) const CXT_COLL: u32 = 1;

/// A received message: zero-copy chunks plus total length.
#[derive(Debug, Default)]
pub struct Msg {
    pub chunks: Vec<Bytes>,
    pub len: usize,
}

impl Msg {
    /// Flatten into one contiguous buffer (copies; tests/reductions only).
    pub fn to_vec(&self) -> Vec<u8> {
        let mut v = Vec::with_capacity(self.len);
        for c in &self.chunks {
            v.extend_from_slice(c);
        }
        v
    }
}

/// Which RPI this process runs on.
pub(crate) enum Rpi {
    Tcp(TcpRpi),
    Sctp(SctpRpi),
}

impl Rpi {
    fn progress(
        &mut self,
        w: &mut World,
        ctx: &mut transport::Wx,
        core: &mut Core,
        cost: &CostCfg,
        meter: &mut CpuMeter,
    ) -> bool {
        match self {
            Rpi::Tcp(r) => r.progress(w, ctx, core, cost, meter),
            Rpi::Sctp(r) => r.progress(w, ctx, core, cost, meter),
        }
    }

    fn register(&self, w: &mut World, me: simcore::ProcId) {
        match self {
            Rpi::Tcp(r) => r.register(w, me),
            Rpi::Sctp(r) => r.register(w, me),
        }
    }

    fn enqueue(
        &mut self,
        peer: u16,
        env: crate::envelope::Envelope,
        body: Vec<Bytes>,
        req: Option<ReqId>,
    ) {
        match self {
            Rpi::Tcp(r) => r.enqueue(peer, env, body, req),
            Rpi::Sctp(r) => r.enqueue(peer, env, body, req),
        }
    }

    fn has_pending_writes(&self) -> bool {
        match self {
            Rpi::Tcp(r) => r.has_pending_writes(),
            Rpi::Sctp(r) => r.has_pending_writes(),
        }
    }
}

/// Per-process middleware statistics.
#[derive(Debug, Default, Clone, Copy)]
pub struct MpiStats {
    pub sends: u64,
    pub recvs: u64,
    pub bytes_sent: u64,
    pub bytes_received: u64,
    /// Simulated time spent parked waiting for progress.
    pub blocked: Dur,
}

/// An MPI process handle: rank, middleware state, and the RPI.
pub struct Mpi {
    pub(crate) env: ProcEnv<World>,
    pub(crate) core: Core,
    pub(crate) rpi: Rpi,
    pub(crate) cost: CostCfg,
    pub(crate) meter: CpuMeter,
    pub(crate) comms: Vec<CommData>,
    pub(crate) coll_seqs: Vec<u32>,
    pub(crate) next_cxt: u32,
    pub stats: MpiStats,
}

/// Options for building an [`Mpi`] inside a process (used by
/// [`crate::launch::mpirun`]).
#[derive(Debug, Clone, Copy)]
pub struct MpiProcCfg {
    pub size: u16,
    pub transport: TransportSel,
    pub cost: CostCfg,
    pub short_limit: u32,
    pub long_piece: u32,
}

/// Transport selection for one run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TransportSel {
    /// LAM-TCP: one socket per peer.
    Tcp,
    /// LAM-SCTP with a stream pool of the given size (paper default 10).
    Sctp { streams: u16, race_fix: RaceFix, ctx_map: ContextMap },
}

impl Mpi {
    /// Initialize the middleware: establish the full interconnect, then
    /// barrier (the association-setup barrier of §3.4).
    pub(crate) fn init(env: ProcEnv<World>, cfg: MpiProcCfg) -> Mpi {
        let rank = env.id().0 as u16;
        let rpi = match cfg.transport {
            TransportSel::Tcp => Rpi::Tcp(TcpRpi::init(&env, rank, cfg.size)),
            TransportSel::Sctp { streams, race_fix, ctx_map } => Rpi::Sctp(SctpRpi::init(
                &env,
                rank,
                cfg.size,
                streams,
                cfg.long_piece as usize,
                race_fix,
                ctx_map,
            )),
        };
        let mut mpi = Mpi {
            env,
            core: Core::new(rank, cfg.size, cfg.short_limit),
            rpi,
            cost: cfg.cost,
            meter: CpuMeter::default(),
            comms: vec![CommData::world(rank, cfg.size)],
            coll_seqs: vec![0],
            next_cxt: 2,
            stats: MpiStats::default(),
        };
        mpi.barrier();
        mpi
    }

    /// This process's rank.
    pub fn rank(&self) -> u16 {
        self.core.rank
    }

    /// Number of processes.
    pub fn size(&self) -> u16 {
        self.core.size
    }

    /// Peak live length of this rank's unexpected-message queue so far
    /// (diagnostic; the farm workload asserts it stays bounded).
    pub fn unexpected_peak(&self) -> usize {
        self.core.unexpected_peak
    }

    /// Current simulated time.
    pub fn now(&self) -> SimTime {
        self.env.now()
    }

    /// Bump and return the per-communicator collective sequence number.
    pub(crate) fn next_coll_seq(&mut self, comm: crate::comm::Comm) -> u32 {
        if self.coll_seqs.len() <= comm.id {
            self.coll_seqs.resize(comm.id + 1, 0);
        }
        self.coll_seqs[comm.id] += 1;
        self.coll_seqs[comm.id]
    }

    /// Model local computation for `d` of simulated time.
    pub fn compute(&self, d: Dur) {
        self.env.sleep(d);
    }

    /// Direct access to the simulated world — fault injection (link
    /// failures, loss-rate changes) from inside a rank. Not an MPI call.
    pub fn with_world<R>(&self, f: impl FnOnce(&mut World) -> R) -> R {
        self.env.with(|w, _| f(w))
    }

    /// The underlying process environment (used by the daemon plane).
    pub fn proc_env(&self) -> &ProcEnv<World> {
        &self.env
    }

    // -----------------------------------------------------------------
    // Point-to-point
    // -----------------------------------------------------------------

    /// Nonblocking standard send (eager below 64 KB, rendezvous above).
    pub fn isend(&mut self, dst: u16, tag: i32, data: Bytes) -> ReqId {
        self.isend_cxt(dst, tag, CXT_WORLD, data, false)
    }

    /// Nonblocking synchronous send.
    pub fn issend(&mut self, dst: u16, tag: i32, data: Bytes) -> ReqId {
        self.isend_cxt(dst, tag, CXT_WORLD, data, true)
    }

    pub(crate) fn isend_cxt(&mut self, dst: u16, tag: i32, cxt: u32, data: Bytes, sync: bool) -> ReqId {
        assert!(dst < self.core.size, "rank {dst} out of range");
        self.stats.sends += 1;
        self.stats.bytes_sent += data.len() as u64;
        if dst == self.core.rank {
            return self.self_send(tag, cxt, data, sync);
        }
        let Mpi { env, core, rpi, cost, meter, .. } = self;
        let (req, charge) = env.with(|w, ctx| {
            let (req, envl, body) = core.submit_send(dst, tag, cxt, data, sync);
            rpi.enqueue(dst, envl, body.unwrap_or_default(), Some(req));
            rpi.progress(w, ctx, core, cost, meter);
            (req, meter.take())
        });
        self.env.sleep(charge);
        req
    }

    /// Nonblocking receive with optional source/tag wildcards.
    pub fn irecv(&mut self, src: Option<u16>, tag: Option<i32>) -> ReqId {
        self.irecv_cxt(src, tag, CXT_WORLD)
    }

    pub(crate) fn irecv_cxt(&mut self, src: Option<u16>, tag: Option<i32>, cxt: u32) -> ReqId {
        self.stats.recvs += 1;
        let Mpi { env, core, rpi, cost, meter, .. } = self;
        let (req, charge) = env.with(|w, ctx| {
            let (req, ctrl) = core.post_recv(src, tag, cxt);
            if ctx.tracing() {
                ctx.trace_emit(trace::Event::MpiPost(trace::MpiPostEv {
                    rank: core.rank,
                    src: src.map_or(-1, |s| s as i32),
                    tag: tag.unwrap_or(-1),
                    cxt,
                    matched: core.matched_at_post(req),
                }));
            }
            let have_ctrl = !ctrl.is_empty();
            for (peer, e) in ctrl {
                rpi.enqueue(peer, e, Vec::new(), None);
            }
            if have_ctrl {
                rpi.progress(w, ctx, core, cost, meter);
            }
            (req, meter.take())
        });
        self.env.sleep(charge);
        req
    }

    /// Blocking standard send.
    pub fn send(&mut self, dst: u16, tag: i32, data: Bytes) {
        let r = self.isend(dst, tag, data);
        self.wait(r);
    }

    /// Blocking synchronous send.
    pub fn ssend(&mut self, dst: u16, tag: i32, data: Bytes) {
        let r = self.issend(dst, tag, data);
        self.wait(r);
    }

    /// Blocking receive.
    pub fn recv(&mut self, src: Option<u16>, tag: Option<i32>) -> (Status, Msg) {
        let r = self.irecv(src, tag);
        self.wait(r)
    }

    /// Wait for one request.
    pub fn wait(&mut self, req: ReqId) -> (Status, Msg) {
        self.progress_until(|core| core.is_done(req));
        self.take(req)
    }

    /// Wait for any of `reqs` to complete; returns its index.
    pub fn waitany(&mut self, reqs: &[ReqId]) -> (usize, Status, Msg) {
        assert!(!reqs.is_empty());
        self.progress_until(|core| reqs.iter().any(|&r| core.is_done(r)));
        let idx = reqs.iter().position(|&r| self.core.is_done(r)).unwrap();
        let (st, msg) = self.take(reqs[idx]);
        (idx, st, msg)
    }

    /// Wait for all of `reqs`; returns statuses+messages in order.
    pub fn waitall(&mut self, reqs: &[ReqId]) -> Vec<(Status, Msg)> {
        self.progress_until(|core| reqs.iter().all(|&r| core.is_done(r)));
        reqs.iter().map(|&r| self.take(r)).collect()
    }

    /// Reap completed send requests from `reqs` (one progression pass, no
    /// blocking). Lets latency-tolerant programs keep many sends in flight.
    pub fn reap_sends(&mut self, reqs: &mut Vec<ReqId>) {
        self.progress_once();
        let core = &mut self.core;
        reqs.retain(|&r| {
            if core.is_done(r) {
                let _ = core.take_done(r);
                false
            } else {
                true
            }
        });
    }

    /// Nonblocking probe: is a matching message already here? Returns its
    /// envelope metadata without receiving it (MPI_Iprobe).
    pub fn iprobe(&mut self, src: Option<u16>, tag: Option<i32>) -> Option<Status> {
        self.progress_once();
        self.core.probe_unexpected(src, tag, CXT_WORLD)
    }

    /// Blocking probe: wait until a matching message is buffered, return
    /// its envelope metadata without receiving it (MPI_Probe).
    pub fn probe(&mut self, src: Option<u16>, tag: Option<i32>) -> Status {
        self.progress_until(|core| core.probe_unexpected(src, tag, CXT_WORLD).is_some());
        self.core.probe_unexpected(src, tag, CXT_WORLD).unwrap()
    }

    /// Nonblocking completion test.
    pub fn test(&mut self, req: ReqId) -> Option<(Status, Msg)> {
        self.progress_once();
        if self.core.is_done(req) {
            Some(self.take(req))
        } else {
            None
        }
    }

    fn take(&mut self, req: ReqId) -> (Status, Msg) {
        let (st, chunks) = self.core.take_done(req);
        self.stats.bytes_received += st.len as u64;
        (st, Msg { len: st.len as usize, chunks })
    }

    // -----------------------------------------------------------------
    // Progression
    // -----------------------------------------------------------------

    /// Drive the RPI until `cond` holds, parking when nothing can move.
    pub(crate) fn progress_until(&mut self, mut cond: impl FnMut(&mut Core) -> bool) {
        let me = self.env.id();
        // Simulated time only advances inside this loop through sleep/park,
        // so the blocked-time stat reads the clock lazily: a call whose
        // condition holds on the first pass with no CPU charge never locks
        // the world for `now()` at all.
        let mut block_start: Option<SimTime> = None;
        loop {
            let Mpi { env, core, rpi, cost, meter, .. } = self;
            let (done, progressed, charge) = env.with(|w, ctx| {
                let progressed = rpi.progress(w, ctx, core, cost, meter);
                (cond(core), progressed, meter.take())
            });
            // Pay CPU only for passes that did work; an idle poll models a
            // *blocking* select()/recvmsg, which burns no CPU. (Sleeping on
            // idle passes would also lose wakeups delivered mid-sleep.)
            if progressed && !charge.is_zero() {
                if block_start.is_none() {
                    block_start = Some(self.env.now());
                }
                self.env.sleep(charge);
            }
            if done {
                // Before returning, flush any control replies this pass
                // generated (e.g. a sync ACK emitted by the completing
                // receive) as far as the transport will take them. Stopping
                // at EAGAIN is fine — later calls or finalize drain it.
                if !progressed || !self.rpi.has_pending_writes() {
                    break;
                }
                continue;
            }
            if !progressed {
                // Nothing moved: wait for the transport to wake us.
                if block_start.is_none() {
                    block_start = Some(self.env.now());
                }
                let Mpi { env, rpi, .. } = self;
                env.with(|w, _| rpi.register(w, me));
                env.park();
            }
        }
        if let Some(start) = block_start {
            self.stats.blocked += self.env.now().since(start);
        }
    }

    /// Drain all queued outbound traffic (run by `mpirun` after the user
    /// program returns, like LAM's finalize, so late ACKs reach peers that
    /// are still waiting on them).
    pub(crate) fn finalize(&mut self) {
        self.progress_until(|_| true);
        let me = self.env.id();
        loop {
            let Mpi { env, core, rpi, cost, meter, .. } = self;
            if !rpi.has_pending_writes() {
                break;
            }
            let (progressed, charge) = env.with(|w, ctx| {
                let p = rpi.progress(w, ctx, core, cost, meter);
                (p, meter.take())
            });
            if progressed && !charge.is_zero() {
                self.env.sleep(charge);
            }
            if !progressed {
                let Mpi { env, rpi, .. } = self;
                env.with(|w, _| rpi.register(w, me));
                env.park();
            }
        }
    }

    /// One nonblocking progression pass.
    pub(crate) fn progress_once(&mut self) {
        let Mpi { env, core, rpi, cost, meter, .. } = self;
        let charge = env.with(|w, ctx| {
            rpi.progress(w, ctx, core, cost, meter);
            meter.take()
        });
        self.env.sleep(charge);
    }

    // -----------------------------------------------------------------
    // Self sends (loopback inside the middleware, as LAM does)
    // -----------------------------------------------------------------

    fn self_send(&mut self, tag: i32, cxt: u32, data: Bytes, _sync: bool) -> ReqId {
        // Deliver locally by synthesizing an eager arrival (any size): LAM
        // short-circuits self sends in the middleware too. A synchronous
        // self send completes immediately — the local delivery *is* the
        // receipt.
        use crate::envelope::{EnvKind, Envelope};
        let me = self.core.rank;
        let len = data.len() as u32;
        let seq = self.core.fresh_seq();
        let env = Envelope { kind: EnvKind::Eager, src: me, tag, cxt, len, seq };
        let out = self.core.on_envelope(me, env);
        if let Some(sink) = out.sink {
            if len > 0 {
                self.core.body_chunk(sink, data);
            }
            let ctrl = self.core.body_done(sink);
            debug_assert!(ctrl.is_empty());
        }
        self.core.mk_done_send(me, tag, cxt)
    }
}
