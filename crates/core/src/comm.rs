//! Communicators: groups of processes with private communication contexts.
//!
//! The paper (§2.3) leans on exactly this machinery: a *context* identifies
//! a set of processes that communicate, and context creation is dynamic —
//! which is why the authors rejected mapping sockets to contexts and used
//! the (context, tag) pair for stream selection instead (or, alternatively,
//! the SCTP PPID field). Contexts here are allocated in pairs: an even id
//! for point-to-point traffic and the odd id above it for collectives, so
//! collective rounds can never match user receives.

use std::sync::Arc;

use bytes::Bytes;

use crate::api::{Mpi, Msg};
use crate::matching::{ReqId, Status};

/// Handle to a communicator (cheap to copy; owned by the [`Mpi`] that
/// created it).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Comm {
    pub(crate) id: usize,
}

/// MPI_COMM_WORLD.
pub const COMM_WORLD: Comm = Comm { id: 0 };

#[derive(Debug, Clone)]
pub(crate) struct CommData {
    /// Point-to-point context (collectives use `cxt + 1`).
    pub cxt: u32,
    /// Local rank → world rank.
    pub group: Arc<Vec<u16>>,
    /// This process's rank within the group.
    pub my_local: u16,
}

impl CommData {
    pub(crate) fn world(rank: u16, size: u16) -> CommData {
        CommData {
            cxt: crate::api::CXT_WORLD,
            group: Arc::new((0..size).collect()),
            my_local: rank,
        }
    }
}

/// A borrowed view used internally by the collectives.
#[derive(Clone)]
pub(crate) struct CommView {
    pub cxt: u32,
    pub group: Arc<Vec<u16>>,
    pub me: u16,
}

impl CommView {
    pub fn size(&self) -> u16 {
        self.group.len() as u16
    }

    pub fn world_of(&self, local: u16) -> u16 {
        self.group[local as usize]
    }
}

impl Mpi {
    pub(crate) fn comm_data(&self, comm: Comm) -> &CommData {
        &self.comms[comm.id]
    }

    pub(crate) fn comm_view(&self, comm: Comm) -> CommView {
        let d = self.comm_data(comm);
        CommView { cxt: d.cxt, group: Arc::clone(&d.group), me: d.my_local }
    }

    /// This process's rank within `comm`.
    pub fn comm_rank(&self, comm: Comm) -> u16 {
        self.comm_data(comm).my_local
    }

    /// Number of processes in `comm`.
    pub fn comm_size(&self, comm: Comm) -> u16 {
        self.comm_data(comm).group.len() as u16
    }

    /// Agree on a fresh context pair across the members of `parent`.
    /// Collective over `parent`.
    fn allocate_context(&mut self, parent: Comm) -> u32 {
        let mine = self.next_cxt as f64;
        let agreed = self.allreduce_on(parent, crate::ReduceOp::Max, &[mine])[0] as u32;
        self.next_cxt = agreed + 2;
        agreed
    }

    /// Duplicate `comm`: same group, fresh context — traffic on the dup can
    /// never match receives on the original. Collective over `comm`.
    pub fn comm_dup(&mut self, comm: Comm) -> Comm {
        let cxt = self.allocate_context(comm);
        let d = self.comm_data(comm).clone();
        self.comms.push(CommData { cxt, group: d.group, my_local: d.my_local });
        Comm { id: self.comms.len() - 1 }
    }

    /// Split `comm` by color: processes with equal `color` end up in the
    /// same new communicator, ordered by `(key, old rank)`. `None` color
    /// returns `None` (MPI_UNDEFINED). Collective over `comm`.
    pub fn comm_split(&mut self, comm: Comm, color: Option<i32>, key: i32) -> Option<Comm> {
        let cxt = self.allocate_context(comm);
        // Exchange (color, key) triples via an allgather on the parent.
        let me_world = self.rank();
        let payload = {
            let mut v = Vec::with_capacity(12);
            v.extend_from_slice(&color.unwrap_or(i32::MIN).to_le_bytes());
            v.extend_from_slice(&key.to_le_bytes());
            v.extend_from_slice(&(me_world as u32).to_le_bytes());
            Bytes::from(v)
        };
        let all = self.allgather_on(comm, payload);
        let color = color?;
        let mut members: Vec<(i32, u16)> = all
            .iter()
            .filter_map(|b| {
                let c = i32::from_le_bytes(b[0..4].try_into().unwrap());
                let k = i32::from_le_bytes(b[4..8].try_into().unwrap());
                let w = u32::from_le_bytes(b[8..12].try_into().unwrap()) as u16;
                (c == color).then_some((k, w))
            })
            .collect();
        members.sort();
        let group: Vec<u16> = members.iter().map(|&(_, w)| w).collect();
        let my_local = group.iter().position(|&w| w == me_world).unwrap() as u16;
        self.comms.push(CommData { cxt, group: Arc::new(group), my_local });
        Some(Comm { id: self.comms.len() - 1 })
    }

    // -----------------------------------------------------------------
    // Point-to-point on a communicator (ranks are comm-local)
    // -----------------------------------------------------------------

    /// Nonblocking send to `dst` (a rank within `comm`).
    pub fn isend_on(&mut self, comm: Comm, dst: u16, tag: i32, data: Bytes) -> ReqId {
        let d = self.comm_data(comm);
        let (world, cxt) = (d.group[dst as usize], d.cxt);
        self.isend_cxt(world, tag, cxt, data, false)
    }

    /// Nonblocking receive from `src` within `comm` (None = any member).
    ///
    /// Note: with `ANY_SOURCE` the returned status's `src` is a world rank;
    /// use [`Mpi::world_to_comm_rank`] to translate.
    pub fn irecv_on(&mut self, comm: Comm, src: Option<u16>, tag: Option<i32>) -> ReqId {
        let d = self.comm_data(comm);
        let cxt = d.cxt;
        let world = src.map(|s| d.group[s as usize]);
        self.irecv_cxt(world, tag, cxt)
    }

    /// Blocking send within `comm`.
    pub fn send_on(&mut self, comm: Comm, dst: u16, tag: i32, data: Bytes) {
        let r = self.isend_on(comm, dst, tag, data);
        self.wait(r);
    }

    /// Blocking receive within `comm`.
    pub fn recv_on(&mut self, comm: Comm, src: Option<u16>, tag: Option<i32>) -> (Status, Msg) {
        let r = self.irecv_on(comm, src, tag);
        self.wait(r)
    }

    /// Translate a world rank (e.g. from a wildcard receive status) to its
    /// rank within `comm`, if it is a member.
    pub fn world_to_comm_rank(&self, comm: Comm, world: u16) -> Option<u16> {
        self.comm_data(comm).group.iter().position(|&w| w == world).map(|p| p as u16)
    }
}
