//! The SCTP request-progression module — the paper's contribution (§3).
//!
//! Design points reproduced from the paper:
//! * one **one-to-many socket** per process; associations map to peer ranks
//!   (§3.1), so there is no `select()` over N descriptors (§3.3);
//! * messages with different (tag, rank, context) map onto a fixed pool of
//!   **streams** (default 10) for independent delivery (§3.2.1) —
//!   eliminating head-of-line blocking between unrelated messages;
//! * two-level demultiplexing of arrivals: association → stream (§3.1);
//! * long messages are split into pieces no larger than the send buffer
//!   and re-framed at the RPI level, all on one stream (§3.4);
//! * the long-message race (Figure 6) is prevented with **Option B**
//!   (§3.4.2): writes to a (peer, stream) pair are strictly serialized —
//!   an ACK for a second message cannot interleave with an in-progress
//!   body. **Option A** (spin until the whole body is written) is also
//!   implemented for the A2 ablation;
//! * a single-stream mode isolates the head-of-line-blocking effect
//!   (Figure 12).

use std::collections::VecDeque;

use bytes::Bytes;
use simcore::ProcId;
use transport::sctp::{self, AssocId, AssocState, EpId, SendErr};
use transport::{World, Wx};

use crate::cost::{CostCfg, CpuMeter};
use crate::envelope::{Envelope, ENV_SIZE};
use crate::matching::{Core, CtrlOut, ReqId, Sink};

/// SCTP RPI port.
pub(crate) const SCTP_RPI_PORT: u16 = 5600;

/// How MPI contexts map onto SCTP (§2.3): either fold the context into the
/// stream hash (the paper's shipped design), or carry the context in the
/// packet's PPID field and hash only the tag onto the stream pool — the
/// alternative the paper notes "can be easily incorporated ... with minor
/// modifications", which supports dynamic context creation without extra
/// sockets.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ContextMap {
    /// stream = hash(context, tag) — the default.
    StreamHash,
    /// stream = hash(tag); PPID = context.
    Ppid,
}

/// How the long-message write race is avoided (§3.4).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RaceFix {
    /// Spin until the whole body is written (kills concurrency).
    OptionA,
    /// Serialize writes per (peer, stream) — the shipped design.
    OptionB,
}

/// One unit the writer can pass to `sctp_sendmsg`.
struct OutMsg {
    chunks: Vec<Bytes>,
    /// Advance this request when the final piece of its item is written.
    req: Option<ReqId>,
    /// Last piece of a multi-piece item?
    last: bool,
    /// Payload protocol id (carries the context in PPID mode).
    ppid: u32,
}

/// Inbound per-(peer, stream) state: an in-progress long body.
#[derive(Default)]
struct InBody {
    sink: Option<Sink>,
    remaining: usize,
}

pub(crate) struct SctpRpi {
    me: u16,
    ep: EpId,
    assocs: Vec<Option<AssocId>>,
    nstreams: u16,
    /// Outbound FIFO per (peer, stream): Option B serialization.
    wq: Vec<Vec<VecDeque<OutMsg>>>,
    /// Inbound body state per (peer, stream).
    rd: Vec<Vec<InBody>>,
    /// Long-message piece size (≤ SO_SNDBUF; LAM splits at the RPI level).
    piece: usize,
    race_fix: RaceFix,
    ctx_map: ContextMap,
    /// Total queued [`OutMsg`]s, so `has_pending_writes` (checked on every
    /// completing `progress_until` pass and in the finalize drain) is O(1).
    wq_total: usize,
    /// Queued [`OutMsg`]s per peer, so a progression pass skips the
    /// per-stream write scan for peers with nothing queued. Skipping empty
    /// peers cannot reorder anything: the relative order of non-empty
    /// (peer, stream) visits is unchanged.
    wq_peer: Vec<usize>,
    /// Option A only: the (peer, stream) whose long body must finish before
    /// any other write proceeds (§3.4.1's concurrency loss).
    a_lock: Option<(u16, u16)>,
}

impl SctpRpi {
    /// Establish associations with every peer: lower ranks initiate, higher
    /// ranks learn of the association on their one-to-many socket. A
    /// barrier at the end of setup is run by the caller (§3.4's second race).
    pub(crate) fn init(
        env: &simcore::ProcEnv<World>,
        me: u16,
        n: u16,
        nstreams: u16,
        piece: usize,
        race_fix: RaceFix,
        ctx_map: ContextMap,
    ) -> SctpRpi {
        let me_pid = env.id();
        let ep = env.with(|w, _| {
            let ep = sctp::socket(w, me, SCTP_RPI_PORT, true);
            sctp::listen(w, ep);
            ep
        });
        let mut assocs: Vec<Option<AssocId>> = vec![None; n as usize];
        for peer in (me + 1)..n {
            let a = env.with(|w, ctx| sctp::connect(w, ctx, ep, peer, SCTP_RPI_PORT));
            assocs[peer as usize] = Some(a);
        }
        for peer in 0..n {
            if peer == me {
                continue;
            }
            let a = env.block_on(|w, _| {
                let a = if peer > me {
                    assocs[peer as usize]
                } else {
                    sctp::lookup_peer(w, ep, peer, SCTP_RPI_PORT)
                };
                match a {
                    Some(a) if sctp::assoc_state(w, a) == AssocState::Established => Some(a),
                    Some(a) if sctp::assoc_state(w, a) == AssocState::Aborted => {
                        panic!("association with rank {peer} failed during init")
                    }
                    _ => {
                        sctp::register_reader(w, ep, me_pid);
                        sctp::register_writer(w, ep, me_pid);
                        None
                    }
                }
            });
            assocs[peer as usize] = Some(a);
        }
        let wq = (0..n).map(|_| (0..nstreams).map(|_| VecDeque::new()).collect()).collect();
        let rd = (0..n).map(|_| (0..nstreams).map(|_| InBody::default()).collect()).collect();
        let wq_peer = vec![0; n as usize];
        SctpRpi {
            me,
            ep,
            assocs,
            nstreams,
            wq,
            rd,
            piece,
            race_fix,
            ctx_map,
            wq_total: 0,
            wq_peer,
            a_lock: None,
        }
    }

    /// The paper's TRC→stream mapping: hash (context, tag) onto the pool —
    /// or, in PPID mode, hash the tag only (the context rides in the PPID).
    pub(crate) fn stream_of(&self, cxt: u32, tag: i32) -> u16 {
        let h = match self.ctx_map {
            ContextMap::StreamHash => {
                (cxt as u64).wrapping_mul(0x9E37_79B9).wrapping_add(tag as u32 as u64)
            }
            ContextMap::Ppid => tag as u32 as u64,
        };
        (h % self.nstreams as u64) as u16
    }

    /// The PPID to stamp on outbound messages for `cxt`.
    fn ppid_of(&self, cxt: u32) -> u32 {
        match self.ctx_map {
            ContextMap::StreamHash => 0,
            ContextMap::Ppid => cxt,
        }
    }

    /// Queue an envelope (+ inline short body) as one SCTP message.
    pub(crate) fn enqueue(&mut self, peer: u16, env: Envelope, body: Vec<Bytes>, req: Option<ReqId>) {
        let sid = self.stream_of(env.cxt, env.tag);
        let mut chunks = Vec::with_capacity(1 + body.len());
        chunks.push(env.to_bytes());
        chunks.extend(body.into_iter().filter(|b| !b.is_empty()));
        let ppid = self.ppid_of(env.cxt);
        self.wq[peer as usize][sid as usize].push_back(OutMsg { chunks, req, last: true, ppid });
        self.note_queued(peer, 1);
    }

    pub(crate) fn enqueue_ctrl(&mut self, ctrl: Vec<CtrlOut>) {
        for (peer, env) in ctrl {
            self.enqueue(peer, env, Vec::new(), None);
        }
    }

    /// Queue a long body: the RndvBody envelope, then pieces ≤ `piece`
    /// bytes, all on one stream (in-order), per §3.4.
    fn enqueue_body_send(&mut self, peer: u16, req: ReqId, env: Envelope, body: Vec<Bytes>) {
        let sid = self.stream_of(env.cxt, env.tag) as usize;
        let ppid = self.ppid_of(env.cxt);
        let q = &mut self.wq[peer as usize][sid];
        q.push_back(OutMsg { chunks: vec![env.to_bytes()], req: None, last: false, ppid });
        // Split at RPI level into sendmsg-sized pieces.
        let mut pieces: Vec<Vec<Bytes>> = Vec::new();
        let mut cur: Vec<Bytes> = Vec::new();
        let mut cur_len = 0usize;
        for chunk in body {
            let mut off = 0;
            while off < chunk.len() {
                let take = (self.piece - cur_len).min(chunk.len() - off);
                cur.push(chunk.slice(off..off + take));
                cur_len += take;
                off += take;
                if cur_len == self.piece {
                    pieces.push(std::mem::take(&mut cur));
                    cur_len = 0;
                }
            }
        }
        if !cur.is_empty() {
            pieces.push(cur);
        }
        let n = pieces.len();
        for (i, p) in pieces.into_iter().enumerate() {
            q.push_back(OutMsg { chunks: p, req: Some(req), last: i + 1 == n, ppid });
        }
        // env.to_bytes() header message + n body pieces.
        self.note_queued(peer, 1 + n);
    }

    fn note_queued(&mut self, peer: u16, n: usize) {
        self.wq_total += n;
        self.wq_peer[peer as usize] += n;
    }

    /// One progression pass: drain arrivals, then push queued writes on
    /// every (peer, stream). Returns true if anything moved.
    pub(crate) fn progress(
        &mut self,
        w: &mut World,
        ctx: &mut Wx,
        core: &mut Core,
        cost: &CostCfg,
        meter: &mut CpuMeter,
    ) -> bool {
        let mut progressed = false;
        // Reads first: sctp_recvmsg until EAGAIN (no select, §3.3).
        loop {
            let Some(mut msg) = sctp::recvmsg(w, ctx, self.ep) else { break };
            meter.charge(cost.syscall + cost.sctp_per_msg + cost.sctp_bytes(msg.len as usize));
            progressed = true;
            let peer = self.peer_of_assoc(msg.assoc);
            self.handle_message(ctx, core, peer, msg.stream, &mut msg.data, msg.len as usize);
            // The chunk list came from the transport's pool (reassembly);
            // its contents were consumed above, so retire the carrier.
            w.pool.put_bytes_vec(msg.data);
        }
        // Writes: every peer, every stream — a blocked stream does not
        // block the others (§3.2). Peers with nothing queued are skipped.
        if self.wq_total > 0 {
            for peer in 0..self.assocs.len() as u16 {
                if peer == self.me
                    || self.wq_peer[peer as usize] == 0
                    || self.assocs[peer as usize].is_none()
                {
                    continue;
                }
                progressed |= self.progress_writes(w, ctx, core, cost, meter, peer);
            }
        }
        progressed
    }

    fn peer_of_assoc(&self, a: AssocId) -> u16 {
        self.assocs
            .iter()
            .position(|x| *x == Some(a))
            .expect("message from unknown association") as u16
    }

    fn progress_writes(
        &mut self,
        w: &mut World,
        ctx: &mut Wx,
        core: &mut Core,
        cost: &CostCfg,
        meter: &mut CpuMeter,
        peer: u16,
    ) -> bool {
        let a = self.assocs[peer as usize].unwrap();
        let mut progressed = false;
        for sid in 0..self.nstreams {
            // Option A: while a long body is mid-write, no other
            // (peer, stream) may transmit — the concurrency loss §3.4.1
            // describes. (We still drain arrivals to stay deadlock-free.)
            if let Some(lock) = self.a_lock {
                if lock != (peer, sid) {
                    continue;
                }
            }
            while let Some(front) = self.wq[peer as usize][sid as usize].front() {
                let len: usize = front.chunks.iter().map(|c| c.len()).sum();
                match sctp::sendmsg_v(w, ctx, a, sid, front.ppid, &front.chunks) {
                    Ok(()) => {
                        meter.charge(cost.syscall + cost.sctp_per_msg + cost.sctp_bytes(len));
                        progressed = true;
                        let item = self.wq[peer as usize][sid as usize].pop_front().unwrap();
                        self.wq_total -= 1;
                        self.wq_peer[peer as usize] -= 1;
                        if self.race_fix == RaceFix::OptionA {
                            self.a_lock = if item.last { None } else { Some((peer, sid)) };
                        }
                        if item.last {
                            if let Some(r) = item.req {
                                core.send_written(r);
                            }
                        }
                    }
                    Err(SendErr::WouldBlock) => {
                        break; // this stream is blocked; try the next one
                    }
                    Err(e) => panic!("sctp sendmsg failed: {e:?}"),
                }
            }
        }
        progressed
    }

    /// Two-level demux (association → stream), then the per-stream state
    /// machine: either an in-progress long body or a fresh envelope.
    fn handle_message(
        &mut self,
        ctx: &Wx,
        core: &mut Core,
        peer: u16,
        sid: u16,
        data: &mut Vec<Bytes>,
        len: usize,
    ) {
        let st = &mut self.rd[peer as usize][sid as usize];
        if let Some(sink) = st.sink {
            // A long body is in flight on this stream: this message is the
            // next piece (Option B guarantees nothing interleaves).
            debug_assert!(len <= st.remaining, "piece overruns announced body");
            st.remaining -= len;
            let finished = st.remaining == 0;
            for c in data.drain(..) {
                core.body_chunk(sink, c);
            }
            if finished {
                st.sink = None;
                let ctrl = core.body_done(sink);
                self.enqueue_ctrl(ctrl);
            }
            return;
        }
        // Fresh message: envelope in the first chunk (sendmsg framing
        // preserves our chunk boundaries through fragmentation).
        debug_assert!(data[0].len() >= ENV_SIZE, "first chunk must hold the envelope");
        let env = Envelope::from_bytes(&data[0]);
        let out = core.on_envelope(peer, env);
        if ctx.tracing() {
            ctx.trace_emit(trace::Event::MpiMatch(trace::MpiMatchEv {
                rank: core.rank,
                src: env.src,
                tag: env.tag,
                cxt: env.cxt,
                len: env.len as u64,
                kind: env.kind.name(),
                posted: out.matched_posted(env.kind),
            }));
        }
        self.enqueue_ctrl(out.ctrl);
        if let Some((req, benv, body)) = out.body_send {
            self.enqueue_body_send(peer, req, benv, body);
        }
        if let Some(sink) = out.sink {
            match env.kind {
                crate::envelope::EnvKind::RndvBody => {
                    // Envelope-only message; pieces follow on this stream.
                    if env.len == 0 {
                        let ctrl = core.body_done(sink);
                        self.enqueue_ctrl(ctrl);
                    } else {
                        let st = &mut self.rd[peer as usize][sid as usize];
                        st.sink = Some(sink);
                        st.remaining = env.len as usize;
                    }
                }
                _ => {
                    // Short body rides in this same message after the
                    // envelope.
                    let mut got = 0usize;
                    for c in data.drain(..).skip(1) {
                        got += c.len();
                        core.body_chunk(sink, c);
                    }
                    debug_assert_eq!(got, env.len as usize, "eager body length mismatch");
                    let ctrl = core.body_done(sink);
                    self.enqueue_ctrl(ctrl);
                }
            }
        }
    }

    /// O(1) via `wq_total`.
    pub(crate) fn has_pending_writes(&self) -> bool {
        self.wq_total > 0
    }

    /// Register for wakeups: one endpoint covers every peer (§3.3).
    pub(crate) fn register(&self, w: &mut World, me: ProcId) {
        sctp::register_reader(w, self.ep, me);
        if self.has_pending_writes() {
            sctp::register_writer(w, self.ep, me);
        }
    }
}
