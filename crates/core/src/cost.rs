//! The middleware CPU cost model.
//!
//! The paper's Figure 8 crossover (TCP faster below ~22 KB, SCTP faster
//! above) is driven by host costs, not wire time: LAM-TCP re-frames the
//! byte stream in the middleware (envelope scan + copy through a staging
//! buffer, per byte), while `sctp_recvmsg` hands the middleware a framed
//! message — but the (then young) SCTP stack charges more fixed per-message
//! and per-call overhead. We model both mechanistically and charge them as
//! simulated CPU time on the calling process.
//!
//! The default constants are calibrated (see EXPERIMENTS.md E1) so the
//! no-loss ping-pong crossover lands near the paper's 22 KB. They are
//! configuration, not magic: the crossover *position* is a calibrated
//! output; the crossover's *existence* follows from the model shape.

use simcore::Dur;

/// Per-operation CPU costs charged to the calling process.
#[derive(Debug, Clone, Copy)]
pub struct CostCfg {
    /// Any socket syscall (read/write/sendmsg/recvmsg/accept/connect).
    pub syscall: Dur,
    /// `select()` base cost plus linear per-descriptor term (§3.3 cites the
    /// linear growth; LAM-TCP polls every socket).
    pub select_base: Dur,
    pub select_per_sock: Dur,
    /// TCP middleware per-byte framing/copy cost on receive (the stream
    /// must be scanned and copied out of the socket buffer).
    pub tcp_copy_rx_per_byte_ns: u64,
    /// TCP middleware per-byte cost on send (staging write).
    pub tcp_copy_tx_per_byte_ns: u64,
    /// LAM-TCP's *serial* re-framing cost, charged when a message body
    /// completes: the byte stream has to be scanned for boundaries and the
    /// body staged into the request buffer (§3.2.4 — `sctp_recvmsg`
    /// "frees us from having to look through the receive buffer to locate
    /// the message boundaries"). Unlike the incremental copy above, this
    /// cannot overlap reception of the same message.
    pub tcp_frame_per_byte_ns: u64,
    /// SCTP fixed extra cost per sendmsg/recvmsg (young-stack per-message
    /// overhead: chunk walk, control handling).
    pub sctp_per_msg: Dur,
    /// SCTP per-byte handling cost (lower: no middleware re-framing).
    pub sctp_per_byte_ns: u64,
    /// Modelled cost of matching/progressing one request (both stacks).
    pub progress_step: Dur,
}

impl Default for CostCfg {
    fn default() -> Self {
        CostCfg {
            syscall: Dur::from_nanos(1200),
            select_base: Dur::from_nanos(1500),
            select_per_sock: Dur::from_nanos(150),
            tcp_copy_rx_per_byte_ns: 4, // per 8 bytes — see tcp_rx_bytes
            tcp_copy_tx_per_byte_ns: 4,
            tcp_frame_per_byte_ns: 20,
            sctp_per_msg: Dur::from_micros(45),
            sctp_per_byte_ns: 4, // per 8 bytes — see sctp_bytes
            progress_step: Dur::from_nanos(300),
        }
    }
}

impl CostCfg {
    /// Cost of moving `n` payload bytes through the TCP middleware path.
    pub fn tcp_rx_bytes(&self, n: usize) -> Dur {
        Dur::from_nanos(n as u64 * self.tcp_copy_rx_per_byte_ns / 8)
    }

    pub fn tcp_tx_bytes(&self, n: usize) -> Dur {
        Dur::from_nanos(n as u64 * self.tcp_copy_tx_per_byte_ns / 8)
    }

    /// Serial message-completion re-framing cost (TCP only).
    pub fn tcp_frame_bytes(&self, n: usize) -> Dur {
        Dur::from_nanos(n as u64 * self.tcp_frame_per_byte_ns / 8)
    }

    /// Cost of moving `n` payload bytes through the SCTP middleware path.
    pub fn sctp_bytes(&self, n: usize) -> Dur {
        Dur::from_nanos(n as u64 * self.sctp_per_byte_ns / 8)
    }

    /// One `select()` call over `n` descriptors.
    pub fn select(&self, n: usize) -> Dur {
        self.select_base + self.select_per_sock * n as u64
    }

    /// A cost model with all charges zeroed (for tests that want pure
    /// protocol behaviour).
    pub fn free() -> Self {
        CostCfg {
            syscall: Dur::ZERO,
            select_base: Dur::ZERO,
            select_per_sock: Dur::ZERO,
            tcp_copy_rx_per_byte_ns: 0,
            tcp_copy_tx_per_byte_ns: 0,
            tcp_frame_per_byte_ns: 0,
            sctp_per_msg: Dur::ZERO,
            sctp_per_byte_ns: 0,
            progress_step: Dur::ZERO,
        }
    }
}

/// Mutable accumulator: RPI code running under the world lock adds charges
/// here; the blocking layer pays them with `env.sleep` after releasing it.
#[derive(Debug, Default, Clone, Copy)]
pub struct CpuMeter {
    pending: Dur,
}

impl CpuMeter {
    #[inline]
    pub fn charge(&mut self, d: Dur) {
        self.pending += d;
    }

    /// Take the accumulated charge, resetting to zero.
    #[inline]
    pub fn take(&mut self) -> Dur {
        std::mem::replace(&mut self.pending, Dur::ZERO)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn byte_costs_scale_linearly() {
        let c = CostCfg::default();
        assert_eq!(c.tcp_rx_bytes(8000), Dur::from_nanos(8000 * 4 / 8));
        assert_eq!(c.sctp_bytes(8000), Dur::from_nanos(8000 * 4 / 8));
        assert_eq!(c.tcp_frame_bytes(8000), Dur::from_nanos(8000 * 20 / 8));
        assert!(
            c.tcp_rx_bytes(1 << 20) + c.tcp_frame_bytes(1 << 20) > c.sctp_bytes(1 << 20),
            "TCP re-framing costs more per byte overall"
        );
    }

    #[test]
    fn select_grows_linearly_in_sockets() {
        let c = CostCfg::default();
        let d1 = c.select(1);
        let d64 = c.select(64);
        assert!(d64 > d1);
        assert_eq!(d64 - d1, c.select_per_sock * 63);
    }

    #[test]
    fn meter_accumulates_and_drains() {
        let mut m = CpuMeter::default();
        m.charge(Dur::from_nanos(5));
        m.charge(Dur::from_nanos(7));
        assert_eq!(m.take(), Dur::from_nanos(12));
        assert_eq!(m.take(), Dur::ZERO);
    }

    #[test]
    fn free_model_charges_nothing() {
        let c = CostCfg::free();
        assert_eq!(c.select(100), Dur::ZERO);
        assert_eq!(c.tcp_rx_bytes(1000), Dur::ZERO);
        assert_eq!(c.sctp_bytes(1000) + c.sctp_per_msg, Dur::ZERO);
    }
}
