//! `mpi-core` — MPI middleware with TCP and SCTP request-progression
//! modules: the Rust reproduction of the paper's LAM-MPI redesign.
//!
//! * [`api`] — the user-facing MPI surface: `send`/`recv`, `isend`/`irecv`,
//!   `wait`/`waitany`/`waitall`, wildcards, `compute` (modelled work);
//! * [`collectives`] — barrier, bcast, reduce, allreduce, gather, scatter,
//!   allgather, alltoall over point-to-point;
//! * [`matching`] — the request table and TRC matching engine with
//!   eager / rendezvous / synchronous protocols and the
//!   unexpected-message queue;
//! * [`rpi_tcp`] — LAM-TCP: socket-per-peer, `select()` polling;
//! * [`rpi_sctp`] — the paper's contribution: one-to-many socket,
//!   association→rank and (context, tag)→stream mapping, Option A/B long
//!   message race fixes, single-stream ablation;
//! * [`cost`] — the middleware CPU cost model behind Figure 8's crossover;
//! * [`launch`] — `mpirun` over the simulated cluster.

pub mod api;
pub mod collectives;
pub mod comm;
pub mod cost;
pub mod daemon;
pub mod envelope;
pub mod launch;
pub mod matching;
pub mod rpi_sctp;
pub mod rpi_tcp;

pub use api::{Mpi, MpiStats, Msg, TransportSel, ANY_SOURCE, ANY_TAG};
pub use comm::{Comm, COMM_WORLD};
pub use collectives::{f64s_to_bytes, msg_to_f64s, ReduceOp};
pub use cost::CostCfg;
pub use launch::{mpirun, mpirun_monitored, mpirun_traced, MpiCfg, MpiReport};
pub use matching::{ReqId, Status};
pub use rpi_sctp::{ContextMap, RaceFix};
