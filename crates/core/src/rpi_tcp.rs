//! The TCP request-progression module — a re-implementation of LAM's TCP
//! RPI (paper §2.2, §3.3).
//!
//! One socket per peer process (full mesh), `select()`-style readiness
//! polling with its linear per-descriptor cost, per-socket read/write state
//! machines over the byte stream, and strictly serialized writes per
//! socket (which is why TCP suffers head-of-line blocking at the
//! process-pair level).

use std::collections::VecDeque;

use bytes::Bytes;
use simcore::ProcId;
use transport::tcp::{self, SockId};
use transport::{World, Wx};

use crate::cost::{CostCfg, CpuMeter};
use crate::envelope::{Envelope, ENV_SIZE};
use crate::matching::{Core, CtrlOut, ReqId, Sink};

/// An outbound message: envelope + optional body, written as one byte run.
struct WriteItem {
    chunks: VecDeque<Bytes>,
    /// Send request to advance when the last byte is accepted by the wire.
    req: Option<ReqId>,
}

enum ReadState {
    /// Accumulating the fixed-size envelope.
    Env { buf: Vec<u8> },
    /// Streaming `remaining` of `total` body bytes into `sink`.
    Body { sink: Sink, remaining: usize, total: usize },
}

pub(crate) struct TcpRpi {
    me: u16,
    socks: Vec<Option<SockId>>,
    rd: Vec<ReadState>,
    wq: Vec<VecDeque<WriteItem>>,
    /// Total queued [`WriteItem`]s across all peers, so the hot
    /// `has_pending_writes` check (every `progress_until` done-pass and the
    /// finalize drain loop) is O(1) instead of a scan over all queues.
    wq_items: usize,
    /// The mesh is fixed after `init`, so the select() descriptor count the
    /// cost model charges per pass is a constant, not a per-pass scan.
    nlive: usize,
    /// Reused receive scratch: every readiness pass reads into this one
    /// list instead of allocating a fresh `Vec<Bytes>` per `recv` call.
    rd_scratch: Vec<Bytes>,
}

/// Listen port for the RPI mesh.
pub(crate) const TCP_RPI_PORT: u16 = 5500;

impl TcpRpi {
    /// Establish the full mesh: lower ranks connect to higher ranks.
    /// Blocking (runs inside process context via closures over `env`).
    pub(crate) fn init(env: &simcore::ProcEnv<World>, me: u16, n: u16) -> TcpRpi {
        let me_pid = env.id();
        env.with(|w, _| tcp::listen(w, me, TCP_RPI_PORT));
        let mut socks: Vec<Option<SockId>> = vec![None; n as usize];

        // Active opens toward higher ranks.
        for peer in (me + 1)..n {
            let s = env.with(|w, ctx| tcp::connect(w, ctx, me, peer, TCP_RPI_PORT));
            socks[peer as usize] = Some(s);
        }
        // Wait for all active opens.
        for peer in (me + 1)..n {
            let s = socks[peer as usize].unwrap();
            env.block_on(|w, _| {
                if tcp::is_established(w, s) {
                    Some(())
                } else {
                    assert!(!tcp::is_failed(w, s), "RPI connect failed");
                    tcp::register_writer(w, s, me_pid);
                    None
                }
            });
        }
        // Passive opens from lower ranks; identify peers by address.
        for _ in 0..me {
            let s = env.block_on(|w, _| match tcp::accept(w, me, TCP_RPI_PORT) {
                Some(s) => Some(s),
                None => {
                    tcp::register_acceptor(w, me, TCP_RPI_PORT, me_pid);
                    None
                }
            });
            let (peer, _) = env.with(|w, _| tcp::peer_of(w, s));
            assert!(socks[peer as usize].is_none(), "duplicate connection from {peer}");
            socks[peer as usize] = Some(s);
        }

        let rd = (0..n).map(|_| ReadState::Env { buf: Vec::with_capacity(ENV_SIZE) }).collect();
        let wq = (0..n).map(|_| VecDeque::new()).collect();
        let nlive = socks.iter().flatten().count();
        TcpRpi { me, socks, rd, wq, wq_items: 0, nlive, rd_scratch: Vec::new() }
    }

    /// Queue an envelope (+ body) to `peer`.
    pub(crate) fn enqueue(&mut self, peer: u16, env: Envelope, body: Vec<Bytes>, req: Option<ReqId>) {
        let mut chunks = VecDeque::with_capacity(1 + body.len());
        chunks.push_back(env.to_bytes());
        for b in body {
            if !b.is_empty() {
                chunks.push_back(b);
            }
        }
        self.wq[peer as usize].push_back(WriteItem { chunks, req });
        self.wq_items += 1;
    }

    pub(crate) fn enqueue_ctrl(&mut self, ctrl: Vec<CtrlOut>) {
        for (peer, env) in ctrl {
            self.enqueue(peer, env, Vec::new(), None);
        }
    }

    /// Queue the long-message body release produced by a RndvAck.
    fn enqueue_body_send(&mut self, peer: u16, req: ReqId, env: Envelope, body: Vec<Bytes>) {
        self.enqueue(peer, env, body, Some(req));
    }

    /// One full progression pass over every socket. Returns true if
    /// anything moved. CPU costs accumulate in `meter`.
    pub(crate) fn progress(
        &mut self,
        w: &mut World,
        ctx: &mut Wx,
        core: &mut Core,
        cost: &CostCfg,
        meter: &mut CpuMeter,
    ) -> bool {
        // LAM-TCP polls all descriptors; model the select() cost.
        meter.charge(cost.select(self.nlive));
        let mut progressed = false;
        for peer in 0..self.socks.len() as u16 {
            if self.socks[peer as usize].is_none() || peer == self.me {
                continue;
            }
            progressed |= self.progress_writes(w, ctx, core, cost, meter, peer);
            progressed |= self.progress_reads(w, ctx, core, cost, meter, peer);
        }
        progressed
    }

    fn progress_writes(
        &mut self,
        w: &mut World,
        ctx: &mut Wx,
        core: &mut Core,
        cost: &CostCfg,
        meter: &mut CpuMeter,
        peer: u16,
    ) -> bool {
        let s = self.socks[peer as usize].unwrap();
        let mut progressed = false;
        while let Some(front) = self.wq[peer as usize].front_mut() {
            let accepted = tcp::send(w, ctx, s, front.chunks.iter());
            if accepted == 0 {
                break; // EAGAIN
            }
            meter.charge(cost.syscall + cost.tcp_tx_bytes(accepted));
            progressed = true;
            advance_chunks(&mut front.chunks, accepted);
            if front.chunks.is_empty() {
                let done = self.wq[peer as usize].pop_front().unwrap();
                self.wq_items -= 1;
                if let Some(r) = done.req {
                    core.send_written(r);
                }
            }
        }
        progressed
    }

    fn progress_reads(
        &mut self,
        w: &mut World,
        ctx: &mut Wx,
        core: &mut Core,
        cost: &CostCfg,
        meter: &mut CpuMeter,
        peer: u16,
    ) -> bool {
        let s = self.socks[peer as usize].unwrap();
        let mut progressed = false;
        loop {
            let want = match &self.rd[peer as usize] {
                ReadState::Env { buf } => ENV_SIZE - buf.len(),
                ReadState::Body { remaining, .. } => (*remaining).min(220 * 1024),
            };
            tcp::recv_into(w, ctx, s, want, &mut self.rd_scratch);
            if self.rd_scratch.is_empty() {
                break; // EAGAIN
            }
            let got: usize = self.rd_scratch.iter().map(|c| c.len()).sum();
            meter.charge(cost.syscall + cost.tcp_rx_bytes(got));
            progressed = true;
            match &mut self.rd[peer as usize] {
                ReadState::Env { buf } => {
                    for c in self.rd_scratch.drain(..) {
                        buf.extend_from_slice(&c);
                    }
                    if buf.len() == ENV_SIZE {
                        let env = Envelope::from_bytes(buf);
                        self.handle_envelope(ctx, core, peer, env);
                    }
                }
                ReadState::Body { sink, remaining, total } => {
                    let sink = *sink;
                    let total = *total;
                    *remaining -= got;
                    let finished = *remaining == 0;
                    for c in self.rd_scratch.drain(..) {
                        core.body_chunk(sink, c);
                    }
                    if finished {
                        // Serial re-framing/staging copy at completion.
                        meter.charge(cost.tcp_frame_bytes(total));
                        let ctrl = core.body_done(sink);
                        self.enqueue_ctrl(ctrl);
                        self.rd[peer as usize] = ReadState::Env { buf: Vec::with_capacity(ENV_SIZE) };
                    }
                }
            }
        }
        progressed
    }

    fn handle_envelope(&mut self, ctx: &Wx, core: &mut Core, peer: u16, env: Envelope) {
        let out = core.on_envelope(peer, env);
        if ctx.tracing() {
            ctx.trace_emit(trace::Event::MpiMatch(trace::MpiMatchEv {
                rank: core.rank,
                src: env.src,
                tag: env.tag,
                cxt: env.cxt,
                len: env.len as u64,
                kind: env.kind.name(),
                posted: out.matched_posted(env.kind),
            }));
        }
        self.enqueue_ctrl(out.ctrl);
        if let Some((req, benv, body)) = out.body_send {
            self.enqueue_body_send(peer, req, benv, body);
        }
        let next = match out.sink {
            Some(sink) if env.kind.has_body() && env.len > 0 => {
                ReadState::Body { sink, remaining: env.len as usize, total: env.len as usize }
            }
            Some(sink) => {
                // Zero-length body completes immediately.
                let ctrl = core.body_done(sink);
                self.enqueue_ctrl(ctrl);
                ReadState::Env { buf: Vec::with_capacity(ENV_SIZE) }
            }
            None => ReadState::Env { buf: Vec::with_capacity(ENV_SIZE) },
        };
        self.rd[peer as usize] = next;
    }

    /// True if any outbound item is still queued. O(1) via `wq_items`.
    pub(crate) fn has_pending_writes(&self) -> bool {
        self.wq_items > 0
    }

    /// Register this process for wakeups on every socket.
    pub(crate) fn register(&self, w: &mut World, me: ProcId) {
        for (peer, s) in self.socks.iter().enumerate() {
            if let Some(s) = *s {
                tcp::register_reader(w, s, me);
                if !self.wq[peer].is_empty() {
                    tcp::register_writer(w, s, me);
                }
            }
        }
    }
}

/// Drop `n` bytes from the front of a chunk queue.
fn advance_chunks(q: &mut VecDeque<Bytes>, mut n: usize) {
    while n > 0 {
        let front = q.front_mut().expect("advance beyond queued bytes");
        if front.len() <= n {
            n -= front.len();
            q.pop_front();
        } else {
            let _ = front.split_to(n);
            n = 0;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn advance_chunks_handles_partials() {
        let mut q: VecDeque<Bytes> =
            [Bytes::from_static(b"abc"), Bytes::from_static(b"defgh")].into_iter().collect();
        advance_chunks(&mut q, 5);
        assert_eq!(q.len(), 1);
        assert_eq!(&q[0][..], b"fgh");
        advance_chunks(&mut q, 3);
        assert!(q.is_empty());
    }
}
