//! LAM-style daemons over SCTP (paper §3.5.3).
//!
//! LAM runs a user-level daemon on every node for job launch, external
//! monitoring of running jobs, remote I/O, and cleanup when a user aborts.
//! Stock LAM daemons speak **UDP**; the paper converts them to SCTP so that
//! "the entire execution now uses SCTP and all the components in the LAM
//! environment can take advantage of the features of SCTP".
//!
//! This module reproduces that environment:
//! * one daemon per host, listening on a one-to-many SCTP socket (its own
//!   port, out-of-band from RPI traffic);
//! * a star overlay rooted at host 0 (the `lamboot` topology): daemon 0
//!   connects to every other daemon and aggregates job status;
//! * MPI ranks report `JobStart` / periodic `Heartbeat` / `JobEnd` to their
//!   **local** daemon over a loopback SCTP association; local daemons
//!   forward summaries to daemon 0;
//! * `lamhalt`: daemon 0 broadcasts a halt and every daemon exits.
//!
//! The aggregated [`JobTable`] is exposed so tests (and the monitoring
//! example) can assert what an `mpitask`-style client would observe.

use std::collections::HashMap;
use std::sync::{Arc, Mutex};

use bytes::Bytes;
use simcore::ProcEnv;
use transport::sctp::{self, AssocId, AssocState, EpId};
use transport::World;

/// Daemon control port (out of band from the RPI ports).
pub const DAEMON_PORT: u16 = 5700;
/// Base port for rank-side daemon clients.
pub const CLIENT_PORT_BASE: u16 = 5800;

/// Messages on the daemon plane. 16-byte wire records.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DaemonMsg {
    /// A rank came up on this node.
    JobStart { rank: u16 },
    /// Periodic liveness + progress report.
    Heartbeat { rank: u16, msgs_sent: u32 },
    /// A rank finished cleanly.
    JobEnd { rank: u16 },
    /// Daemon-0 → all: shut down ("lamhalt").
    Halt,
    /// Local daemon → daemon 0: forwarded status for `rank` on `host`.
    Forward { host: u16, rank: u16, kind: u8, msgs_sent: u32 },
}

impl DaemonMsg {
    pub fn to_bytes(self) -> Bytes {
        let mut v = vec![0u8; 16];
        match self {
            DaemonMsg::JobStart { rank } => {
                v[0] = 1;
                v[2..4].copy_from_slice(&rank.to_le_bytes());
            }
            DaemonMsg::Heartbeat { rank, msgs_sent } => {
                v[0] = 2;
                v[2..4].copy_from_slice(&rank.to_le_bytes());
                v[4..8].copy_from_slice(&msgs_sent.to_le_bytes());
            }
            DaemonMsg::JobEnd { rank } => {
                v[0] = 3;
                v[2..4].copy_from_slice(&rank.to_le_bytes());
            }
            DaemonMsg::Halt => v[0] = 4,
            DaemonMsg::Forward { host, rank, kind, msgs_sent } => {
                v[0] = 5;
                v[1] = kind;
                v[2..4].copy_from_slice(&rank.to_le_bytes());
                v[4..8].copy_from_slice(&msgs_sent.to_le_bytes());
                v[8..10].copy_from_slice(&host.to_le_bytes());
            }
        }
        Bytes::from(v)
    }

    pub fn from_bytes(b: &[u8]) -> DaemonMsg {
        let rank = u16::from_le_bytes([b[2], b[3]]);
        let msgs = u32::from_le_bytes([b[4], b[5], b[6], b[7]]);
        match b[0] {
            1 => DaemonMsg::JobStart { rank },
            2 => DaemonMsg::Heartbeat { rank, msgs_sent: msgs },
            3 => DaemonMsg::JobEnd { rank },
            4 => DaemonMsg::Halt,
            5 => DaemonMsg::Forward {
                host: u16::from_le_bytes([b[8], b[9]]),
                rank,
                kind: b[1],
                msgs_sent: msgs,
            },
            k => panic!("bad daemon message kind {k}"),
        }
    }
}

/// What the monitoring plane knows about one rank.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct JobEntry {
    pub host: u16,
    pub started: bool,
    pub ended: bool,
    pub heartbeats: u32,
    pub last_msgs_sent: u32,
}

/// Aggregated job status at daemon 0 (what `mpitask` would print).
#[derive(Debug, Default)]
pub struct JobTable {
    pub ranks: HashMap<u16, JobEntry>,
}

impl JobTable {
    pub fn all_started(&self, n: u16) -> bool {
        (0..n).all(|r| self.ranks.get(&r).is_some_and(|e| e.started))
    }

    pub fn all_ended(&self, n: u16) -> bool {
        (0..n).all(|r| self.ranks.get(&r).is_some_and(|e| e.ended))
    }
}

type Env = ProcEnv<World>;

fn recv_blocking(env: &Env, ep: EpId) -> (u16, DaemonMsg) {
    let me = env.id();
    env.block_on(|w, ctx| match sctp::recvmsg(w, ctx, ep) {
        Some(m) => {
            // Identify the sending host from the association.
            let peer = sctp_peer_host(w, m.assoc);
            // Control messages almost always arrive as a single chunk;
            // parse in place and only flatten multi-chunk deliveries.
            let msg = match m.data.as_slice() {
                [one] => DaemonMsg::from_bytes(one),
                chunks => {
                    let raw: Vec<u8> = chunks.iter().flat_map(|b| b.iter().copied()).collect();
                    DaemonMsg::from_bytes(&raw)
                }
            };
            Some((peer, msg))
        }
        None => {
            sctp::register_reader(w, ep, me);
            None
        }
    })
}

fn sctp_peer_host(w: &World, a: AssocId) -> u16 {
    sctp::peer_addrs(w, a)[0].host
}

fn send_blocking(env: &Env, a: AssocId, msg: DaemonMsg) {
    let me = env.id();
    env.block_on(|w, ctx| match sctp::sendmsg(w, ctx, a, 0, 0, msg.to_bytes()) {
        Ok(()) => Some(()),
        Err(sctp::SendErr::WouldBlock) => {
            sctp::register_writer(w, a.endpoint(), me);
            None
        }
        Err(e) => panic!("daemon send failed: {e:?}"),
    })
}

fn connect_blocking(env: &Env, ep: EpId, host: u16, port: u16) -> AssocId {
    let a = env.with(|w, ctx| sctp::connect(w, ctx, ep, host, port));
    let me = env.id();
    env.block_on(|w, _| match sctp::assoc_state(w, a) {
        AssocState::Established => Some(()),
        AssocState::Aborted => panic!("daemon association failed"),
        _ => {
            sctp::register_writer(w, ep, me);
            sctp::register_reader(w, ep, me);
            None
        }
    });
    a
}

/// The daemon process for `host` (0 = the root/aggregator). Runs until a
/// `Halt` arrives (root: until all ranks ended, then self-halts and
/// broadcasts). `expected_local` ranks run on this host.
pub fn daemon_main(env: Env, host: u16, n_hosts: u16, n_ranks: u16, table: Arc<Mutex<JobTable>>) {
    let ep = env.with(|w, _| {
        let ep = sctp::socket(w, host, DAEMON_PORT, true);
        sctp::listen(w, ep);
        ep
    });
    if host == 0 {
        // lamboot: the root daemon dials every other daemon.
        let mut peers: Vec<AssocId> = Vec::new();
        for h in 1..n_hosts {
            peers.push(connect_blocking(&env, ep, h, DAEMON_PORT));
        }
        let mut ended = 0u16;
        loop {
            let (from, msg) = recv_blocking(&env, ep);
            let mut t = table.lock().unwrap();
            match msg {
                // Local ranks on host 0 report directly.
                DaemonMsg::JobStart { rank } => {
                    let e = t.ranks.entry(rank).or_default();
                    e.host = 0;
                    e.started = true;
                }
                DaemonMsg::Heartbeat { rank, msgs_sent } => {
                    let e = t.ranks.entry(rank).or_default();
                    e.heartbeats += 1;
                    e.last_msgs_sent = msgs_sent;
                }
                DaemonMsg::JobEnd { rank } => {
                    t.ranks.entry(rank).or_default().ended = true;
                    ended += 1;
                }
                // Remote daemons forward their ranks' reports.
                DaemonMsg::Forward { host, rank, kind, msgs_sent } => {
                    let e = t.ranks.entry(rank).or_default();
                    e.host = host;
                    match kind {
                        1 => e.started = true,
                        2 => {
                            e.heartbeats += 1;
                            e.last_msgs_sent = msgs_sent;
                        }
                        3 => {
                            e.ended = true;
                            ended += 1;
                        }
                        k => panic!("bad forward kind {k}"),
                    }
                }
                DaemonMsg::Halt => break,
            }
            drop(t);
            let _ = from;
            if ended == n_ranks {
                // lamhalt: job finished; stop the daemon plane.
                for &p in &peers {
                    send_blocking(&env, p, DaemonMsg::Halt);
                }
                break;
            }
        }
    } else {
        // Leaf daemon: wait for the root's lamboot association, then
        // forward every local report upward.
        let me = env.id();
        let root: AssocId = env.block_on(|w, _| match sctp::lookup_peer(w, ep, 0, DAEMON_PORT) {
            Some(a) if sctp::assoc_state(w, a) == AssocState::Established => Some(a),
            _ => {
                sctp::register_reader(w, ep, me);
                None
            }
        });
        loop {
            let (_from, msg) = recv_blocking(&env, ep);
            match msg {
                DaemonMsg::Halt => break,
                DaemonMsg::JobStart { rank } => {
                    send_blocking(&env, root, DaemonMsg::Forward { host, rank, kind: 1, msgs_sent: 0 });
                }
                DaemonMsg::Heartbeat { rank, msgs_sent } => {
                    send_blocking(&env, root, DaemonMsg::Forward { host, rank, kind: 2, msgs_sent });
                }
                DaemonMsg::JobEnd { rank } => {
                    send_blocking(&env, root, DaemonMsg::Forward { host, rank, kind: 3, msgs_sent: 0 });
                }
                DaemonMsg::Forward { .. } => panic!("leaf daemon received a forward"),
            }
        }
    }
}

/// Rank-side client: a tiny SCTP endpoint used to talk to the local daemon
/// (stock LAM would use UDP here; the paper's point is that it is SCTP).
pub struct DaemonClient {
    assoc: AssocId,
}

impl DaemonClient {
    /// Connect rank `rank` (on `host`) to its local daemon.
    pub fn connect(env: &Env, host: u16, rank: u16) -> DaemonClient {
        let ep = env.with(|w, _| sctp::socket(w, host, CLIENT_PORT_BASE + rank, true));
        let assoc = connect_blocking(env, ep, host, DAEMON_PORT);
        DaemonClient { assoc }
    }

    pub fn report(&self, env: &Env, msg: DaemonMsg) {
        send_blocking(env, self.assoc, msg);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn daemon_msgs_roundtrip() {
        for m in [
            DaemonMsg::JobStart { rank: 7 },
            DaemonMsg::Heartbeat { rank: 3, msgs_sent: 12345 },
            DaemonMsg::JobEnd { rank: 0 },
            DaemonMsg::Halt,
            DaemonMsg::Forward { host: 5, rank: 2, kind: 2, msgs_sent: 99 },
        ] {
            assert_eq!(DaemonMsg::from_bytes(&m.to_bytes()), m);
        }
    }

    #[test]
    fn job_table_queries() {
        let mut t = JobTable::default();
        t.ranks.insert(0, JobEntry { started: true, ..Default::default() });
        assert!(t.all_started(1));
        assert!(!t.all_started(2));
        assert!(!t.all_ended(1));
    }
}
