//! The fig8 ping-pong sweep over **real UDP sockets** on loopback.
//!
//! Two [`LiveNode`]s live in this process, each with its own [`World`],
//! standalone scheduler context, and nonblocking
//! [`transport::backend::udp::UdpBackend`] bound to `127.0.0.1:0`. Every
//! frame between them is a real datagram through the kernel: serialized by
//! `wire_bytes::encode_packet`, CRC32c/checksum-verified and decoded on the
//! far side, and dispatched into the *unmodified* TCP and SCTP engines.
//! Nothing here is deterministic — the kernel schedules the datagrams and
//! the wall clock drives the timers — which is exactly the point: it is the
//! repo's first datapoint that the simulated engines speak a coherent wire
//! protocol end to end.
//!
//! The sweep mirrors [`crate::fig8_metered`] (same sizes, same iteration
//! counts, same one-way-throughput metric, same BENCH report schema) so the
//! live and simulated curves land side by side in EXPERIMENTS.md.

use std::net::SocketAddr;
use std::time::{Duration, Instant};

use backend::LiveNode;
use bytes::Bytes;
use netsim::{IfAddr, NetCfg};
use transport::backend::udp::{UdpBackend, UdpStats};
use transport::sctp::{self, SctpCfg};
use transport::tcp::{self, TcpCfg};
use transport::World;

use crate::runner::{BenchReport, CellMeter};
use crate::{fig8_sizes, Fig8Row, Scale, SEED_BASE};

/// Engine-side port both endpoints use (the OS-side ports are ephemeral).
const PORT: u16 = 5000;

/// Per-cell wall-clock budget before the harness declares the pair wedged.
/// Generous: a healthy loopback cell finishes in well under a second.
const CELL_TIMEOUT: Duration = Duration::from_secs(30);

/// One ping-pong cell's outcome.
#[derive(Debug, Clone, Copy)]
pub struct LiveCell {
    /// One-way payload throughput, bytes/second (the fig8 metric).
    pub throughput: f64,
    /// Mean round-trip time per iteration, seconds.
    pub rtt: f64,
    /// Reactor events fired across both nodes (timers + deliveries).
    pub events: u64,
    /// Wall seconds the whole cell took (handshake + timed loop).
    pub wall_secs: f64,
    /// Virtual seconds the initiator's clock covered (tracks wall).
    pub sim_secs: f64,
    /// Combined socket-driver counters for both nodes.
    pub udp: UdpStats,
}

struct LivePair {
    a: LiveNode,
    b: LiveNode,
}

fn loopback() -> SocketAddr {
    "127.0.0.1:0".parse().expect("literal address")
}

/// Build two worlds wired to each other through real loopback sockets.
/// `wire_safe_ids` keeps the SCTP verification tags inside the wire's
/// 32-bit fields (see [`SctpCfg::wire_safe_ids`]); everything else is the
/// paper configuration both engines run under in the simulator.
fn live_pair(seed: u64, tracer: Option<&trace::Tracer>) -> LivePair {
    let sctp_cfg = SctpCfg { wire_safe_ids: true, ..SctpCfg::default() };
    let mut wa = World::new(NetCfg::paper_cluster(0.0), TcpCfg::default(), sctp_cfg.clone());
    let mut wb = World::new(NetCfg::paper_cluster(0.0), TcpCfg::default(), sctp_cfg);
    let mut ua = UdpBackend::bind(loopback()).expect("bind loopback");
    let mut ub = UdpBackend::bind(loopback()).expect("bind loopback");
    let addr_a = ua.local_addr().expect("bound");
    let addr_b = ub.local_addr().expect("bound");
    // Host 0 lives in world A, host 1 in world B; route every interface of
    // the peer host to its one socket (singlehomed runs use iface 0 only).
    for iface in 0..3u8 {
        ua.add_peer(IfAddr::new(1, iface), addr_b);
        ub.add_peer(IfAddr::new(0, iface), addr_a);
    }
    wa.install_backend(Box::new(ua));
    wb.install_backend(Box::new(ub));
    let mut a = LiveNode::new(wa, seed);
    let mut b = LiveNode::new(wb, seed + 1);
    // Trace parity with the sim: both nodes share one flight recorder, so
    // a live pcapng holds egress and ingress of both directions.
    if let Some(t) = tracer {
        t.set_topology(2, 1);
        a.ctx.install_tracer(Some(t.clone()));
        b.ctx.install_tracer(Some(t.clone()));
    }
    LivePair { a, b }
}

impl LivePair {
    /// Poll both reactors until `done` or the deadline. Returns whether
    /// `done` was reached.
    fn spin(&mut self, deadline: Instant, mut done: impl FnMut(&mut LivePair) -> bool) -> bool {
        loop {
            if done(self) {
                return true;
            }
            if Instant::now() >= deadline {
                return false;
            }
            let worked_a = self.a.poll();
            let worked_b = self.b.poll();
            if !worked_a && !worked_b {
                std::thread::yield_now();
            }
        }
    }

    fn events(&self) -> u64 {
        self.a.events_fired + self.b.events_fired
    }

    fn udp_stats(&mut self) -> UdpStats {
        let mut total = UdpStats::default();
        for node in [&mut self.a, &mut self.b] {
            let b = node.world.backend.as_mut().expect("backend installed");
            if let Some(u) = b.as_any().downcast_mut::<UdpBackend>() {
                let s = u.stats;
                total.tx_frames += s.tx_frames;
                total.tx_bytes += s.tx_bytes;
                total.tx_no_route += s.tx_no_route;
                total.tx_errors += s.tx_errors;
                total.rx_frames += s.rx_frames;
                total.rx_bytes += s.rx_bytes;
                total.rx_bad_crc += s.rx_bad_crc;
                total.rx_bad_frame += s.rx_bad_frame;
            }
        }
        total
    }
}

/// One live SCTP ping-pong cell: four-way handshake, then `iters` echoes of
/// a `size`-byte message on stream 0.
pub fn sctp_cell(size: usize, iters: u32, seed: u64, tracer: Option<&trace::Tracer>) -> LiveCell {
    let t_cell = Instant::now();
    let deadline = t_cell + CELL_TIMEOUT;
    let mut p = live_pair(seed, tracer);
    let ea = sctp::socket(&mut p.a.world, 0, PORT, false);
    let eb = sctp::socket(&mut p.b.world, 1, PORT, false);
    sctp::listen(&mut p.b.world, eb);
    let aa = sctp::connect(&mut p.a.world, &mut p.a.ctx, ea, 1, PORT);
    let ok = p.spin(deadline, |p| {
        matches!(sctp::assoc_state(&p.a.world, aa), sctp::AssocState::Established)
    });
    assert!(ok, "live SCTP handshake did not complete within {CELL_TIMEOUT:?}");
    let ab = sctp::lookup_peer(&p.b.world, eb, 0, PORT).expect("passive side established");

    let payload = Bytes::from(vec![0xA5u8; size]);
    let t0 = Instant::now();
    for i in 0..iters {
        sctp::sendmsg(&mut p.a.world, &mut p.a.ctx, aa, 0, 0, payload.clone())
            .unwrap_or_else(|e| panic!("ping {i} rejected: {e:?}"));
        let ok = p.spin(deadline, |p| sctp::readable(&p.b.world, eb));
        assert!(ok, "ping {i} never reached the echo side");
        let msg = sctp::recvmsg(&mut p.b.world, &mut p.b.ctx, eb).expect("readable");
        assert_eq!(msg.len as usize, size, "ping {i} arrived wrong-sized");
        sctp::sendmsg_v(&mut p.b.world, &mut p.b.ctx, ab, 0, 0, &msg.data)
            .unwrap_or_else(|e| panic!("echo {i} rejected: {e:?}"));
        let ok = p.spin(deadline, |p| sctp::readable(&p.a.world, ea));
        assert!(ok, "echo {i} never returned");
        let back = sctp::recvmsg(&mut p.a.world, &mut p.a.ctx, ea).expect("readable");
        assert_eq!(back.len as usize, size, "echo {i} returned wrong-sized");
    }
    let secs = t0.elapsed().as_secs_f64();
    LiveCell {
        throughput: size as f64 * iters as f64 / secs,
        rtt: secs / iters as f64,
        events: p.events(),
        wall_secs: t_cell.elapsed().as_secs_f64(),
        sim_secs: p.a.sim_secs(),
        udp: p.udp_stats(),
    }
}

/// One live TCP ping-pong cell: three-way handshake, then `iters` echoes of
/// `size` bytes each way over the byte stream.
pub fn tcp_cell(size: usize, iters: u32, seed: u64, tracer: Option<&trace::Tracer>) -> LiveCell {
    let t_cell = Instant::now();
    let deadline = t_cell + CELL_TIMEOUT;
    let mut p = live_pair(seed, tracer);
    tcp::listen(&mut p.b.world, 1, PORT);
    let sa = tcp::connect(&mut p.a.world, &mut p.a.ctx, 0, 1, PORT);
    let mut sb = None;
    let ok = p.spin(deadline, |p| {
        if sb.is_none() {
            sb = tcp::accept(&mut p.b.world, 1, PORT);
        }
        sb.is_some() && tcp::is_established(&p.a.world, sa)
    });
    assert!(ok, "live TCP handshake did not complete within {CELL_TIMEOUT:?}");
    let sb = sb.expect("accepted");

    let payload = Bytes::from(vec![0x5Au8; size]);
    let t0 = Instant::now();
    for i in 0..iters {
        // A → B: stream `size` bytes (retrying partial sends as the buffer
        // drains) while B swallows them.
        let (mut sent, mut got) = (0usize, 0usize);
        let ok = p.spin(deadline, |p| {
            if sent < size {
                let chunk = payload.slice(sent..size);
                sent += tcp::send(&mut p.a.world, &mut p.a.ctx, sa, std::iter::once(&chunk));
            }
            for b in tcp::recv(&mut p.b.world, &mut p.b.ctx, sb, size - got) {
                got += b.len();
            }
            got >= size
        });
        assert!(ok, "ping {i} never fully reached the echo side");
        // B → A: echo the same volume back.
        let (mut sent, mut got) = (0usize, 0usize);
        let ok = p.spin(deadline, |p| {
            if sent < size {
                let chunk = payload.slice(sent..size);
                sent += tcp::send(&mut p.b.world, &mut p.b.ctx, sb, std::iter::once(&chunk));
            }
            for b in tcp::recv(&mut p.a.world, &mut p.a.ctx, sa, size - got) {
                got += b.len();
            }
            got >= size
        });
        assert!(ok, "echo {i} never fully returned");
    }
    let secs = t0.elapsed().as_secs_f64();
    LiveCell {
        throughput: size as f64 * iters as f64 / secs,
        rtt: secs / iters as f64,
        events: p.events(),
        wall_secs: t_cell.elapsed().as_secs_f64(),
        sim_secs: p.a.sim_secs(),
        udp: p.udp_stats(),
    }
}

fn meter(label: String, c: &LiveCell, paths: u64) -> CellMeter {
    CellMeter {
        label,
        wall_secs: c.wall_secs,
        sim_secs: c.sim_secs,
        events_fired: c.events,
        events_per_sec: c.events as f64 / c.wall_secs.max(1e-9),
        handoffs_total: 0,
        wakes_coalesced: 0,
        us_per_event: c.wall_secs * 1e6 / c.events.max(1) as f64,
        bursts_total: 0,
        pkts_per_burst_avg: 0.0,
        wheel_hits: 0,
        heap_falls: 0,
        shards: 1,
        epochs_total: 0,
        cross_shard_pkts: 0,
        lookahead_ns: 0,
        paths,
        per_path_pkts: vec![c.udp.tx_frames, 0, 0, 0],
        spurious_frtx_total: 0,
        rescue_rtx_total: 0,
        scheduler: "fcfs".to_string(),
        msgs_abandoned: 0,
        fwd_tsn_total: 0,
        snd_hol_blocks: 0,
        snd_hol_ns: 0,
        allocs_total: 0,
        allocs_per_event: 0.0,
    }
}

/// The full fig8-style sweep over loopback: same sizes and iteration counts
/// as the sim's [`crate::fig8_metered`], TCP and SCTP cells per size, one
/// [`BenchReport`] in the standard schema (fig `pingpong_live`).
pub fn live_fig8(scale: Scale) -> (Vec<Fig8Row>, BenchReport) {
    let t0 = Instant::now();
    let iters = match scale {
        Scale::Paper => 200,
        Scale::Quick => 20,
    };
    let sizes = fig8_sizes(scale);
    let tracer = trace::Tracer::from_env();
    let mut rows = Vec::new();
    let mut cells = Vec::new();
    let mut events_total = 0u64;
    for (i, &size) in sizes.iter().enumerate() {
        let seed = SEED_BASE + 2 * i as u64;
        let t = tcp_cell(size, iters, seed, tracer.as_ref());
        let s = sctp_cell(size, iters, seed + 1, tracer.as_ref());
        for (label, c) in [("tcp", &t), ("sctp", &s)] {
            assert_eq!(c.udp.rx_bad_crc, 0, "loopback must not corrupt frames");
            assert_eq!(c.udp.rx_bad_frame, 0, "own frames must decode");
            events_total += c.events;
            cells.push(meter(
                format!("size={size} rpi={label} live"),
                c,
                if label == "sctp" { 1 } else { 0 },
            ));
        }
        rows.push(Fig8Row {
            size,
            tcp_tput: t.throughput,
            sctp_tput: s.throughput,
            normalized: s.throughput / t.throughput,
        });
    }
    if let Some(t) = &tracer {
        flush_live_trace(t);
    }
    let report = BenchReport {
        fig: "pingpong_live".to_string(),
        scale: match scale {
            Scale::Paper => "paper",
            Scale::Quick => "quick",
        },
        threads: 1,
        wall_secs_total: t0.elapsed().as_secs_f64(),
        events_total,
        fault_plan: None,
        cells,
    };
    (rows, report)
}

/// `TRACE=1` file sink for live runs, mirroring the sim launcher's:
/// `traces/pingpong_live.{pcapng,jsonl}`. `analyze` reads these exactly
/// like a simulated capture.
fn flush_live_trace(t: &trace::Tracer) {
    let end = std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map(|d| d.as_nanos() as u64)
        .unwrap_or(u64::MAX);
    let dump = t.dump(end);
    let dir = std::path::Path::new("traces");
    if std::fs::create_dir_all(dir).is_err() {
        return;
    }
    let _ = std::fs::write(dir.join("pingpong_live.pcapng"), dump.write_pcapng());
    let _ = std::fs::write(dir.join("pingpong_live.jsonl"), dump.write_jsonl());
}
