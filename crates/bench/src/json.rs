//! Tiny JSON emitter — replaces `serde`/`serde_json` for result files so
//! the workspace builds offline (see README "offline builds"). Emission
//! only, plus the schema-version sniff `BenchReport::save` uses to retire
//! pre-versioned result files instead of silently mixing schemas.

/// Schema version stamped into every `results/BENCH_*.json` roll-up.
///
/// * v1 (implicit): no `schema_version` field — reports through PR 3.
/// * v2: adds `schema_version`; cells carry the flight-recorder era's
///   meter set.
///
/// Bump this when a field changes meaning or disappears; adding fields is
/// backward-compatible and does not need a bump.
pub const SCHEMA_VERSION: u64 = 2;

/// Best-effort schema version of a previously written report.
///
/// Files that predate versioning (v1) have no `schema_version` key and
/// report 1. This is a sniff, not a parse: the writer only ever emits
/// `"schema_version": <int>` on its own line, so a substring scan is
/// exact for our own files and harmlessly approximate for foreign ones.
pub fn sniff_schema_version(text: &str) -> u64 {
    let Some(at) = text.find("\"schema_version\"") else { return 1 };
    let rest = &text[at + "\"schema_version\"".len()..];
    let digits: String = rest
        .chars()
        .skip_while(|c| *c == ':' || c.is_whitespace())
        .take_while(|c| c.is_ascii_digit())
        .collect();
    digits.parse().unwrap_or(1)
}

/// A JSON value.
#[derive(Debug, Clone)]
pub enum Json {
    Null,
    Bool(bool),
    /// Finite floats render as shortest-roundtrip; NaN/inf render as null.
    Num(f64),
    Int(i64),
    UInt(u64),
    Str(String),
    Arr(Vec<Json>),
    Obj(Vec<(&'static str, Json)>),
    /// Pre-rendered JSON embedded verbatim (no re-indentation). Used to
    /// splice a [`netsim::FaultPlan`]'s own serialization into a report so
    /// the plan text in `results/BENCH_*.json` is byte-for-byte what
    /// `FaultPlan::from_json` replays.
    Raw(String),
}

impl Json {
    /// Pretty-prints with 2-space indentation (what `serde_json::to_string_pretty`
    /// produced for the existing result files).
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.render_into(&mut out, 0);
        out
    }

    fn render_into(&self, out: &mut String, indent: usize) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Num(x) => {
                if x.is_finite() {
                    // Keep integral floats distinguishable from ints, as
                    // serde_json does (`1.0`, not `1`).
                    if *x == x.trunc() && x.abs() < 1e15 {
                        out.push_str(&format!("{x:.1}"));
                    } else {
                        out.push_str(&format!("{x}"));
                    }
                } else {
                    out.push_str("null");
                }
            }
            Json::Int(i) => out.push_str(&i.to_string()),
            Json::UInt(u) => out.push_str(&u.to_string()),
            Json::Raw(s) => out.push_str(s),
            Json::Str(s) => {
                out.push('"');
                for c in s.chars() {
                    match c {
                        '"' => out.push_str("\\\""),
                        '\\' => out.push_str("\\\\"),
                        '\n' => out.push_str("\\n"),
                        '\r' => out.push_str("\\r"),
                        '\t' => out.push_str("\\t"),
                        c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
                        c => out.push(c),
                    }
                }
                out.push('"');
            }
            Json::Arr(items) => {
                if items.is_empty() {
                    out.push_str("[]");
                    return;
                }
                out.push_str("[\n");
                for (i, item) in items.iter().enumerate() {
                    pad(out, indent + 1);
                    item.render_into(out, indent + 1);
                    if i + 1 < items.len() {
                        out.push(',');
                    }
                    out.push('\n');
                }
                pad(out, indent);
                out.push(']');
            }
            Json::Obj(fields) => {
                if fields.is_empty() {
                    out.push_str("{}");
                    return;
                }
                out.push_str("{\n");
                for (i, (k, v)) in fields.iter().enumerate() {
                    pad(out, indent + 1);
                    out.push_str(&format!("\"{k}\": "));
                    v.render_into(out, indent + 1);
                    if i + 1 < fields.len() {
                        out.push(',');
                    }
                    out.push('\n');
                }
                pad(out, indent);
                out.push('}');
            }
        }
    }
}

fn pad(out: &mut String, indent: usize) {
    for _ in 0..indent {
        out.push_str("  ");
    }
}

/// Conversion into [`Json`] — the replacement for `serde::Serialize` here.
pub trait ToJson {
    fn to_json(&self) -> Json;
}

impl ToJson for Json {
    fn to_json(&self) -> Json {
        self.clone()
    }
}

impl ToJson for f64 {
    fn to_json(&self) -> Json {
        Json::Num(*self)
    }
}

impl ToJson for bool {
    fn to_json(&self) -> Json {
        Json::Bool(*self)
    }
}

impl ToJson for String {
    fn to_json(&self) -> Json {
        Json::Str(self.clone())
    }
}

impl ToJson for &str {
    fn to_json(&self) -> Json {
        Json::Str((*self).to_string())
    }
}

macro_rules! impl_to_json_uint {
    ($($t:ty),*) => {$(
        impl ToJson for $t {
            fn to_json(&self) -> Json {
                Json::UInt(*self as u64)
            }
        }
    )*};
}
impl_to_json_uint!(u8, u16, u32, u64, usize);

macro_rules! impl_to_json_int {
    ($($t:ty),*) => {$(
        impl ToJson for $t {
            fn to_json(&self) -> Json {
                Json::Int(*self as i64)
            }
        }
    )*};
}
impl_to_json_int!(i8, i16, i32, i64, isize);

impl<T: ToJson> ToJson for Vec<T> {
    fn to_json(&self) -> Json {
        Json::Arr(self.iter().map(ToJson::to_json).collect())
    }
}

impl<T: ToJson> ToJson for [T] {
    fn to_json(&self) -> Json {
        Json::Arr(self.iter().map(ToJson::to_json).collect())
    }
}

impl<T: ToJson> ToJson for &T {
    fn to_json(&self) -> Json {
        (*self).to_json()
    }
}

/// Implements [`ToJson`] for a struct by listing its fields:
/// `impl_to_json!(Row { size, tput });`
#[macro_export]
macro_rules! impl_to_json {
    ($t:ty { $($field:ident),+ $(,)? }) => {
        impl $crate::json::ToJson for $t {
            fn to_json(&self) -> $crate::json::Json {
                $crate::json::Json::Obj(vec![
                    $((stringify!($field), $crate::json::ToJson::to_json(&self.$field))),+
                ])
            }
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_nested_pretty() {
        let v = Json::Obj(vec![
            ("name", Json::Str("fig\"8\"".into())),
            ("vals", Json::Arr(vec![Json::Int(1), Json::Num(2.5), Json::Num(3.0)])),
            ("empty", Json::Arr(vec![])),
        ]);
        let s = v.render();
        assert!(s.contains("\"name\": \"fig\\\"8\\\"\""));
        assert!(s.contains("2.5"));
        assert!(s.contains("3.0"), "integral float keeps decimal: {s}");
        assert!(s.contains("\"empty\": []"));
    }

    #[test]
    fn schema_sniff_reads_version_or_defaults_to_v1() {
        assert_eq!(sniff_schema_version("{\n  \"schema_version\": 2,\n  \"fig\": \"x\"\n}"), 2);
        assert_eq!(sniff_schema_version("{\"schema_version\":17}"), 17);
        // Pre-versioned files (through PR 3) have no key at all.
        assert_eq!(sniff_schema_version("{\n  \"fig\": \"fig10\"\n}"), 1);
        assert_eq!(sniff_schema_version(""), 1);
        // Garbage after the key degrades to v1, never panics.
        assert_eq!(sniff_schema_version("\"schema_version\": \"two\""), 1);
    }

    #[test]
    fn macro_derives_struct_shape() {
        struct R {
            size: usize,
            tput: f64,
        }
        impl_to_json!(R { size, tput });
        let s = R { size: 4096, tput: 1.5 }.to_json().render();
        assert!(s.contains("\"size\": 4096"));
        assert!(s.contains("\"tput\": 1.5"));
    }
}
