//! Tiny JSON emitter — replaces `serde`/`serde_json` for result files so
//! the workspace builds offline (see README "offline builds"). Emission
//! only; nothing in this repo parses JSON back.

/// A JSON value.
#[derive(Debug, Clone)]
pub enum Json {
    Null,
    Bool(bool),
    /// Finite floats render as shortest-roundtrip; NaN/inf render as null.
    Num(f64),
    Int(i64),
    UInt(u64),
    Str(String),
    Arr(Vec<Json>),
    Obj(Vec<(&'static str, Json)>),
}

impl Json {
    /// Pretty-prints with 2-space indentation (what `serde_json::to_string_pretty`
    /// produced for the existing result files).
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.render_into(&mut out, 0);
        out
    }

    fn render_into(&self, out: &mut String, indent: usize) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Num(x) => {
                if x.is_finite() {
                    // Keep integral floats distinguishable from ints, as
                    // serde_json does (`1.0`, not `1`).
                    if *x == x.trunc() && x.abs() < 1e15 {
                        out.push_str(&format!("{x:.1}"));
                    } else {
                        out.push_str(&format!("{x}"));
                    }
                } else {
                    out.push_str("null");
                }
            }
            Json::Int(i) => out.push_str(&i.to_string()),
            Json::UInt(u) => out.push_str(&u.to_string()),
            Json::Str(s) => {
                out.push('"');
                for c in s.chars() {
                    match c {
                        '"' => out.push_str("\\\""),
                        '\\' => out.push_str("\\\\"),
                        '\n' => out.push_str("\\n"),
                        '\r' => out.push_str("\\r"),
                        '\t' => out.push_str("\\t"),
                        c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
                        c => out.push(c),
                    }
                }
                out.push('"');
            }
            Json::Arr(items) => {
                if items.is_empty() {
                    out.push_str("[]");
                    return;
                }
                out.push_str("[\n");
                for (i, item) in items.iter().enumerate() {
                    pad(out, indent + 1);
                    item.render_into(out, indent + 1);
                    if i + 1 < items.len() {
                        out.push(',');
                    }
                    out.push('\n');
                }
                pad(out, indent);
                out.push(']');
            }
            Json::Obj(fields) => {
                if fields.is_empty() {
                    out.push_str("{}");
                    return;
                }
                out.push_str("{\n");
                for (i, (k, v)) in fields.iter().enumerate() {
                    pad(out, indent + 1);
                    out.push_str(&format!("\"{k}\": "));
                    v.render_into(out, indent + 1);
                    if i + 1 < fields.len() {
                        out.push(',');
                    }
                    out.push('\n');
                }
                pad(out, indent);
                out.push('}');
            }
        }
    }
}

fn pad(out: &mut String, indent: usize) {
    for _ in 0..indent {
        out.push_str("  ");
    }
}

/// Conversion into [`Json`] — the replacement for `serde::Serialize` here.
pub trait ToJson {
    fn to_json(&self) -> Json;
}

impl ToJson for Json {
    fn to_json(&self) -> Json {
        self.clone()
    }
}

impl ToJson for f64 {
    fn to_json(&self) -> Json {
        Json::Num(*self)
    }
}

impl ToJson for bool {
    fn to_json(&self) -> Json {
        Json::Bool(*self)
    }
}

impl ToJson for String {
    fn to_json(&self) -> Json {
        Json::Str(self.clone())
    }
}

impl ToJson for &str {
    fn to_json(&self) -> Json {
        Json::Str((*self).to_string())
    }
}

macro_rules! impl_to_json_uint {
    ($($t:ty),*) => {$(
        impl ToJson for $t {
            fn to_json(&self) -> Json {
                Json::UInt(*self as u64)
            }
        }
    )*};
}
impl_to_json_uint!(u8, u16, u32, u64, usize);

macro_rules! impl_to_json_int {
    ($($t:ty),*) => {$(
        impl ToJson for $t {
            fn to_json(&self) -> Json {
                Json::Int(*self as i64)
            }
        }
    )*};
}
impl_to_json_int!(i8, i16, i32, i64, isize);

impl<T: ToJson> ToJson for Vec<T> {
    fn to_json(&self) -> Json {
        Json::Arr(self.iter().map(ToJson::to_json).collect())
    }
}

impl<T: ToJson> ToJson for [T] {
    fn to_json(&self) -> Json {
        Json::Arr(self.iter().map(ToJson::to_json).collect())
    }
}

impl<T: ToJson> ToJson for &T {
    fn to_json(&self) -> Json {
        (*self).to_json()
    }
}

/// Implements [`ToJson`] for a struct by listing its fields:
/// `impl_to_json!(Row { size, tput });`
#[macro_export]
macro_rules! impl_to_json {
    ($t:ty { $($field:ident),+ $(,)? }) => {
        impl $crate::json::ToJson for $t {
            fn to_json(&self) -> $crate::json::Json {
                $crate::json::Json::Obj(vec![
                    $((stringify!($field), $crate::json::ToJson::to_json(&self.$field))),+
                ])
            }
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_nested_pretty() {
        let v = Json::Obj(vec![
            ("name", Json::Str("fig\"8\"".into())),
            ("vals", Json::Arr(vec![Json::Int(1), Json::Num(2.5), Json::Num(3.0)])),
            ("empty", Json::Arr(vec![])),
        ]);
        let s = v.render();
        assert!(s.contains("\"name\": \"fig\\\"8\\\"\""));
        assert!(s.contains("2.5"));
        assert!(s.contains("3.0"), "integral float keeps decimal: {s}");
        assert!(s.contains("\"empty\": []"));
    }

    #[test]
    fn macro_derives_struct_shape() {
        struct R {
            size: usize,
            tput: f64,
        }
        impl_to_json!(R { size, tput });
        let s = R { size: 4096, tput: 1.5 }.to_json().render();
        assert!(s.contains("\"size\": 4096"));
        assert!(s.contains("\"tput\": 1.5"));
    }
}
