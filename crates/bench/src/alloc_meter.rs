//! Counting global allocator: makes heap traffic a first-class meter.
//!
//! The whole harness (every figure binary, test, and Criterion bench in
//! this crate) runs under [`CountingAlloc`], a thin wrapper around the
//! system allocator. When metering is **off** (the default) the only cost
//! is one relaxed atomic load per allocation; when **on** (`ALLOC_METER=1`,
//! or [`enable`] from a test) every `alloc`/`alloc_zeroed`/`realloc` bumps
//! a process-wide counter. Frees are not counted: the meter tracks
//! *allocator pressure*, and the pools this PR adds eliminate the malloc,
//! not just the free.
//!
//! The counter is global rather than thread-local on purpose: farm ranks
//! are real OS threads, so a per-thread counter would miss exactly the
//! allocations the data plane makes. The flip side is that per-cell deltas
//! are only attributable when one cell runs at a time — the runner records
//! them for any `BENCH_THREADS`, but the numbers are meaningful (and the
//! regression test asserts) at `BENCH_THREADS=1`.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};

/// Wraps [`System`], counting allocation calls while metering is enabled.
pub struct CountingAlloc;

static ALLOCS: AtomicU64 = AtomicU64::new(0);
static ENABLED: AtomicBool = AtomicBool::new(false);

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        if ENABLED.load(Ordering::Relaxed) {
            let n = ALLOCS.fetch_add(1, Ordering::Relaxed);
            sample_backtrace(n, layout.size());
        }
        System.alloc(layout)
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        if ENABLED.load(Ordering::Relaxed) {
            ALLOCS.fetch_add(1, Ordering::Relaxed);
        }
        System.alloc_zeroed(layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        // A grow/shrink is fresh allocator pressure too (it may move).
        if ENABLED.load(Ordering::Relaxed) {
            ALLOCS.fetch_add(1, Ordering::Relaxed);
        }
        System.realloc(ptr, layout, new_size)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }
}

/// Regression triage: `ALLOC_SAMPLE=N` prints one backtrace per N counted
/// allocations to stderr, tagged with the allocation size — aggregate the
/// leaf frames to find which path started allocating when the
/// `alloc_threshold` gate trips. Costs nothing unless both `ALLOC_METER=1`
/// and `ALLOC_SAMPLE` are set.
fn sample_backtrace(n: u64, size: usize) {
    use std::cell::Cell;
    thread_local! { static IN_HOOK: Cell<bool> = const { Cell::new(false) }; }
    static PERIOD: AtomicU64 = AtomicU64::new(0);
    let mut p = PERIOD.load(Ordering::Relaxed);
    if p == 0 {
        p = IN_HOOK.with(|g| {
            if g.get() {
                return u64::MAX;
            }
            g.set(true);
            let v = std::env::var("ALLOC_SAMPLE")
                .ok()
                .and_then(|v| v.parse().ok())
                .unwrap_or(u64::MAX);
            g.set(false);
            v.max(1)
        });
        PERIOD.store(p, Ordering::Relaxed);
    }
    if p == u64::MAX || n % p != 0 {
        return;
    }
    IN_HOOK.with(|g| {
        if g.get() {
            return;
        }
        g.set(true);
        eprintln!("=== alloc sample #{n} size={size}\n{}", std::backtrace::Backtrace::force_capture());
        g.set(false);
    });
}

/// Turn metering on or off (idempotent; also flipped by `ALLOC_METER=1`).
pub fn enable(on: bool) {
    ENABLED.store(on, Ordering::Relaxed);
}

/// Is metering currently on?
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// `ALLOC_METER=1` in the environment requests metering.
pub fn env_enabled() -> bool {
    std::env::var("ALLOC_METER").map(|v| v == "1").unwrap_or(false)
}

/// Allocation calls counted so far (monotone; sample before/after a region
/// and subtract).
pub fn allocs() -> u64 {
    ALLOCS.load(Ordering::Relaxed)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_moves_only_while_enabled() {
        enable(false);
        let a0 = allocs();
        let v: Vec<u8> = Vec::with_capacity(4096);
        drop(v);
        assert_eq!(allocs(), a0, "disabled meter must not count");

        enable(true);
        let a1 = allocs();
        let v: Vec<u8> = Vec::with_capacity(4096);
        let a2 = allocs();
        drop(v);
        enable(false);
        assert!(a2 > a1, "enabled meter must count a fresh Vec");
    }
}
