//! Parallel, self-metering experiment runner.
//!
//! Every figure/table cell — one (message size × loss rate × transport ×
//! seed) combination — is an independent deterministic simulation, so the
//! harness fans cells across a `std::thread::scope` worker pool. Results
//! are written back by cell index, so output order (and therefore every
//! aggregate computed from it) is identical to a sequential run no matter
//! how threads interleave; only wall-clock changes.
//!
//! Each cell records wall-clock, simulated seconds, the simulator's
//! `events_fired` counter, and the runtime's handoff meters (driver↔process
//! transfers performed, wakes coalesced away, µs of wall clock per event).
//! The per-figure roll-up is persisted as `results/BENCH_<fig>.json`
//! (schema documented in EXPERIMENTS.md) so harness performance is
//! comparable across PRs.
//!
//! `SIM_CHECK=1` turns on shadow verification: every cell runs twice, first
//! under the reference wakeup discipline (pre-coalescing accounting), then
//! under the fast one, and the harness panics if any semantic output
//! (value, simulated seconds, events, aux) differs by even a bit. Only the
//! fast run is metered.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::Instant;

use crate::json::{Json, ToJson};
use crate::{impl_to_json, Scale};

/// What one cell's simulation reports back to the harness.
#[derive(Debug, Clone, Copy)]
pub struct Measured {
    /// The cell's metric (throughput, seconds, MOPS — figure-dependent).
    pub value: f64,
    /// Simulated seconds the run covered.
    pub sim_secs: f64,
    /// Simulator events fired during the run.
    pub events: u64,
    /// Figure-specific side channel (the farm figures report the peak
    /// unexpected-queue length here); 0 when unused.
    pub aux: u64,
    /// Runtime driver↔process handoffs performed (wall-clock diagnostic;
    /// excluded from `SIM_CHECK` comparison because the disciplines differ
    /// here by design).
    pub handoffs: u64,
    /// Wakes coalesced away by the runtime fast path (ditto).
    pub wakes_coalesced: u64,
    /// Packet trains emitted through the burst path (ditto; zero under the
    /// reference discipline by design).
    pub bursts_total: u64,
    /// Packets fused inside those trains (each still counts in `events`).
    pub pkts_fused: u64,
    /// Timers that took the O(1) wheel insert (ditto).
    pub wheel_hits: u64,
    /// Timers beyond the wheel horizon (heap fallback; ditto).
    pub heap_falls: u64,
    /// Worker shards the cell's simulation ran on (1 = sequential; ditto —
    /// the partition must not change semantic outputs, so it is not
    /// compared).
    pub shards: u64,
    /// Conservative epochs the sharded engine synchronized through (ditto).
    pub epochs_total: u64,
    /// Messages that crossed a shard boundary (partition-dependent; ditto).
    pub cross_shard_pkts: u64,
    /// Conservative lookahead the run executed under, in ns (0 when the
    /// cell did not use the sharded engine).
    pub lookahead_ns: u64,
    /// Destination addresses configured per association (1 = singlehomed;
    /// 0 when the cell's transport has no path notion, e.g. TCP).
    pub paths: u64,
    /// Packets sent per path index across the run — the CMT stripe balance
    /// (all zeros for TCP cells).
    pub per_path_pkts: [u64; 4],
    /// Fast retransmits a later SACK proved unnecessary (the reordering
    /// false-positive count CMT's SFR accounting drives to zero).
    pub spurious_frtx: u64,
    /// Chunks re-queued by the CMT rescue probe (tail-loss recovery that
    /// bypassed the RTO).
    pub rescue_rtx: u64,
    /// Sender-side stream scheduler the cell ran under ("fcfs" when the
    /// cell has no scheduler notion, e.g. TCP or non-interleaved SCTP).
    pub scheduler: &'static str,
    /// PR-SCTP messages abandoned past their lifetime.
    pub msgs_abandoned: u64,
    /// FORWARD-TSN chunks sent across the run.
    pub fwd_tsn_total: u64,
    /// Sender-side HOL blocks observed by the flight recorder (0 when the
    /// cell was not traced).
    pub snd_hol_blocks: u64,
    /// Total sender-side HOL blocked time, ns (ditto).
    pub snd_hol_ns: u64,
}

impl Measured {
    pub fn new(value: f64, sim_secs: f64, events: u64) -> Measured {
        Measured {
            value,
            sim_secs,
            events,
            aux: 0,
            handoffs: 0,
            wakes_coalesced: 0,
            bursts_total: 0,
            pkts_fused: 0,
            wheel_hits: 0,
            heap_falls: 0,
            shards: 1,
            epochs_total: 0,
            cross_shard_pkts: 0,
            lookahead_ns: 0,
            paths: 0,
            per_path_pkts: [0; 4],
            spurious_frtx: 0,
            rescue_rtx: 0,
            scheduler: "fcfs",
            msgs_abandoned: 0,
            fwd_tsn_total: 0,
            snd_hol_blocks: 0,
            snd_hol_ns: 0,
        }
    }

    /// Attach the runtime's handoff meters.
    pub fn with_runtime_meters(mut self, handoffs: u64, wakes_coalesced: u64) -> Measured {
        self.handoffs = handoffs;
        self.wakes_coalesced = wakes_coalesced;
        self
    }

    /// Attach the burst-path and timer-wheel meters.
    pub fn with_burst_meters(
        mut self,
        bursts_total: u64,
        pkts_fused: u64,
        wheel_hits: u64,
        heap_falls: u64,
    ) -> Measured {
        self.bursts_total = bursts_total;
        self.pkts_fused = pkts_fused;
        self.wheel_hits = wheel_hits;
        self.heap_falls = heap_falls;
        self
    }

    /// Attach the multipath (CMT) meters.
    pub fn with_path_meters(
        mut self,
        paths: u64,
        per_path_pkts: [u64; 4],
        spurious_frtx: u64,
        rescue_rtx: u64,
    ) -> Measured {
        self.paths = paths;
        self.per_path_pkts = per_path_pkts;
        self.spurious_frtx = spurious_frtx;
        self.rescue_rtx = rescue_rtx;
        self
    }

    /// Attach the stream-machinery meters (scheduler identity, PR-SCTP
    /// abandonment, and sender-side HOL accounting from a forced trace).
    pub fn with_stream_meters(
        mut self,
        scheduler: &'static str,
        msgs_abandoned: u64,
        fwd_tsn_total: u64,
        snd_hol_blocks: u64,
        snd_hol_ns: u64,
    ) -> Measured {
        self.scheduler = scheduler;
        self.msgs_abandoned = msgs_abandoned;
        self.fwd_tsn_total = fwd_tsn_total;
        self.snd_hol_blocks = snd_hol_blocks;
        self.snd_hol_ns = snd_hol_ns;
        self
    }

    /// Attach the sharded-engine meters.
    pub fn with_shard_meters(
        mut self,
        shards: u64,
        epochs_total: u64,
        cross_shard_pkts: u64,
        lookahead_ns: u64,
    ) -> Measured {
        self.shards = shards;
        self.epochs_total = epochs_total;
        self.cross_shard_pkts = cross_shard_pkts;
        self.lookahead_ns = lookahead_ns;
        self
    }
}

/// One unit of work: a label for the meter plus the simulation closure.
pub struct Cell<'a> {
    pub label: String,
    pub run: Box<dyn Fn() -> Measured + Send + Sync + 'a>,
}

impl<'a> Cell<'a> {
    pub fn new(label: String, run: impl Fn() -> Measured + Send + Sync + 'a) -> Cell<'a> {
        Cell { label, run: Box::new(run) }
    }
}

/// Per-cell self-metering record (one row of `results/BENCH_<fig>.json`).
#[derive(Debug, Clone)]
pub struct CellMeter {
    pub label: String,
    pub wall_secs: f64,
    pub sim_secs: f64,
    pub events_fired: u64,
    pub events_per_sec: f64,
    /// Driver↔process handoffs the runtime performed for this cell.
    pub handoffs_total: u64,
    /// Wakes coalesced away (suppressed spurious wakes + inline-advanced
    /// sleeps); under the reference discipline each of these would have
    /// been a handoff.
    pub wakes_coalesced: u64,
    /// Wall-clock microseconds per simulator event — the runtime-overhead
    /// trajectory the overhaul drives down.
    pub us_per_event: f64,
    /// Packet trains emitted through the burst path for this cell.
    pub bursts_total: u64,
    /// Mean packets per train (fused packets / trains; 0.0 when no trains).
    pub pkts_per_burst_avg: f64,
    /// Timers that took the O(1) wheel insert.
    pub wheel_hits: u64,
    /// Timers beyond the wheel horizon (heap fallback).
    pub heap_falls: u64,
    /// Worker shards the cell's simulation ran on (1 = sequential).
    pub shards: u64,
    /// Conservative epochs the sharded engine synchronized through.
    pub epochs_total: u64,
    /// Messages that crossed a shard boundary.
    pub cross_shard_pkts: u64,
    /// Conservative lookahead the run executed under, in ns.
    pub lookahead_ns: u64,
    /// Destination addresses per association (0 = no path notion).
    pub paths: u64,
    /// Packets sent per path index — the CMT stripe balance.
    pub per_path_pkts: Vec<u64>,
    /// Fast retransmits a later SACK proved unnecessary.
    pub spurious_frtx_total: u64,
    /// Chunks re-queued by the CMT rescue probe.
    pub rescue_rtx_total: u64,
    /// Sender-side stream scheduler the cell ran under.
    pub scheduler: String,
    /// PR-SCTP messages abandoned past their lifetime.
    pub msgs_abandoned: u64,
    /// FORWARD-TSN chunks sent across the run.
    pub fwd_tsn_total: u64,
    /// Sender-side HOL blocks observed by the flight recorder.
    pub snd_hol_blocks: u64,
    /// Total sender-side HOL blocked time, ns.
    pub snd_hol_ns: u64,
    /// Heap allocations during the metered run (`ALLOC_METER=1`; 0 when the
    /// counting allocator is off). Process-global, so attributable to this
    /// cell only at `BENCH_THREADS=1`.
    pub allocs_total: u64,
    /// Allocations per simulator event (the memory-plane trajectory this
    /// pass drives down; 0.0 when metering is off).
    pub allocs_per_event: f64,
}

impl_to_json!(CellMeter {
    label,
    wall_secs,
    sim_secs,
    events_fired,
    events_per_sec,
    handoffs_total,
    wakes_coalesced,
    us_per_event,
    bursts_total,
    pkts_per_burst_avg,
    wheel_hits,
    heap_falls,
    shards,
    epochs_total,
    cross_shard_pkts,
    lookahead_ns,
    paths,
    per_path_pkts,
    spurious_frtx_total,
    rescue_rtx_total,
    scheduler,
    msgs_abandoned,
    fwd_tsn_total,
    snd_hol_blocks,
    snd_hol_ns,
    allocs_total,
    allocs_per_event
});

/// Roll-up of one figure's harness run.
#[derive(Debug, Clone)]
pub struct BenchReport {
    pub fig: String,
    pub scale: &'static str,
    pub threads: usize,
    pub wall_secs_total: f64,
    pub events_total: u64,
    /// The fault plan every cell ran under, as [`netsim::FaultPlan::to_json`]
    /// text — present only for fault experiments. Replaying the report is
    /// `FaultPlan::from_json` on this string plus the cell label's seed.
    /// Adding this field is schema-compatible (see `SCHEMA_VERSION`).
    pub fault_plan: Option<String>,
    pub cells: Vec<CellMeter>,
}

impl ToJson for BenchReport {
    fn to_json(&self) -> Json {
        let mut fields = vec![
            ("schema_version", crate::json::SCHEMA_VERSION.to_json()),
            ("fig", self.fig.to_json()),
            ("scale", self.scale.to_json()),
            ("threads", self.threads.to_json()),
            ("wall_secs_total", self.wall_secs_total.to_json()),
            ("events_total", self.events_total.to_json()),
        ];
        if let Some(plan) = &self.fault_plan {
            fields.push(("fault_plan", Json::Raw(plan.clone())));
        }
        fields.push(("cells", self.cells.to_json()));
        Json::Obj(fields)
    }
}

impl BenchReport {
    /// Writes `results/BENCH_<fig>.json`.
    pub fn save(&self) {
        self.save_to(std::path::Path::new("results"));
    }

    /// [`BenchReport::save`] with an explicit directory (testable). A pre-existing file
    /// with a different `schema_version` is retired to `.bak` first, so a
    /// reader diffing result files across PRs never silently compares
    /// fields whose meaning changed between schemas.
    pub fn save_to(&self, dir: &std::path::Path) {
        if std::fs::create_dir_all(dir).is_err() {
            return;
        }
        let path = dir.join(format!("BENCH_{}.json", self.fig));
        if let Ok(old) = std::fs::read_to_string(&path) {
            if crate::json::sniff_schema_version(&old) != crate::json::SCHEMA_VERSION {
                let _ = std::fs::rename(&path, path.with_extension("json.bak"));
            }
        }
        let _ = std::fs::write(path, self.to_json().render() + "\n");
    }

    /// One-line harness summary for the binaries' stderr.
    pub fn summary(&self) -> String {
        format!(
            "[bench {}] {} cells on {} threads: {:.2}s wall, {} events ({:.0} ev/s)",
            self.fig,
            self.cells.len(),
            self.threads,
            self.wall_secs_total,
            self.events_total,
            self.events_total as f64 / self.wall_secs_total.max(1e-9),
        )
    }
}

/// Worker count: `BENCH_THREADS` env override (1 forces a sequential run),
/// else the machine's available parallelism.
pub fn pool_threads() -> usize {
    threads_from_env(std::env::var("BENCH_THREADS").ok().as_deref())
        .unwrap_or_else(|| std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1))
}

/// Parse a `BENCH_THREADS` override. `Some(n)` forces an `n`-worker pool —
/// clamped to at least one worker, so `BENCH_THREADS=0` means "sequential",
/// not "no workers ever run a cell". Unset or unparsable values mean "no
/// override" (fall back to machine parallelism).
fn threads_from_env(var: Option<&str>) -> Option<usize> {
    var.and_then(|v| v.parse::<usize>().ok()).map(|n| n.max(1))
}

/// `SIM_CHECK=1` enables per-cell shadow verification against the reference
/// wakeup discipline.
pub fn sim_check() -> bool {
    std::env::var("SIM_CHECK").map(|v| v == "1").unwrap_or(false)
}

/// Worker shards for the sharded-engine experiments: `SHARDS` env override,
/// default 1 (sequential). Results are bit-identical at any value; only
/// wall-clock changes.
pub fn shards() -> u32 {
    shards_from_env(std::env::var("SHARDS").ok().as_deref())
}

/// Parse a `SHARDS` override; unset, unparsable, or zero means sequential.
fn shards_from_env(var: Option<&str>) -> u32 {
    var.and_then(|v| v.parse::<u32>().ok()).map(|n| n.max(1)).unwrap_or(1)
}

/// Which packet driver `pingpong_live` runs on (see `BACKEND`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BackendKind {
    /// The deterministic simulator — the comparison path.
    Sim,
    /// Real UDP sockets over loopback.
    Udp,
}

/// Packet-driver selection for the live binaries: `BACKEND` env override,
/// default the real-socket driver (the binary exists to exercise it);
/// `BACKEND=sim` selects the simulated comparison path.
pub fn backend_kind() -> BackendKind {
    backend_from_env(std::env::var("BACKEND").ok().as_deref())
}

/// Parse a `BACKEND` override. Unset, empty, or unrecognized values fall
/// back to the default (udp) rather than erroring, the same
/// garbage-tolerant posture as `SHARDS`/`BENCH_THREADS`: an env knob must
/// never turn a benchmark run into a parse failure.
fn backend_from_env(var: Option<&str>) -> BackendKind {
    match var.map(|v| v.trim().to_ascii_lowercase()).as_deref() {
        Some("sim") => BackendKind::Sim,
        _ => BackendKind::Udp,
    }
}

/// Panics unless the reference-discipline and fast-discipline runs of one
/// cell agree bit for bit on every semantic output. Handoff meters are
/// excluded: coalescing exists precisely to change them.
fn assert_disciplines_agree(label: &str, reference: &Measured, fast: &Measured) {
    let same = reference.value.to_bits() == fast.value.to_bits()
        && reference.sim_secs.to_bits() == fast.sim_secs.to_bits()
        && reference.events == fast.events
        && reference.aux == fast.aux
        && reference.per_path_pkts == fast.per_path_pkts
        && reference.spurious_frtx == fast.spurious_frtx
        && reference.rescue_rtx == fast.rescue_rtx
        && reference.msgs_abandoned == fast.msgs_abandoned
        && reference.fwd_tsn_total == fast.fwd_tsn_total;
    assert!(
        same,
        "SIM_CHECK divergence in cell `{label}`: \
         reference (value={:?} sim_secs={:?} events={} aux={} paths={:?}) vs \
         fast (value={:?} sim_secs={:?} events={} aux={} paths={:?})",
        reference.value,
        reference.sim_secs,
        reference.events,
        reference.aux,
        reference.per_path_pkts,
        fast.value,
        fast.sim_secs,
        fast.events,
        fast.aux,
        fast.per_path_pkts,
    );
}

/// Runs all cells on the worker pool; returns per-cell measurements in
/// cell order plus the metering roll-up.
pub fn run_cells(fig: &str, scale: Scale, cells: Vec<Cell<'_>>) -> (Vec<Measured>, BenchReport) {
    run_cells_with_plan(fig, scale, cells, None)
}

/// [`run_cells`] for fault experiments: `plan_json` (the serialized
/// [`netsim::FaultPlan`] every cell ran under) is stamped into the report so
/// `results/BENCH_<fig>.json` carries everything needed to replay the run.
pub fn run_cells_with_plan(
    fig: &str,
    scale: Scale,
    cells: Vec<Cell<'_>>,
    plan_json: Option<String>,
) -> (Vec<Measured>, BenchReport) {
    let n = cells.len();
    let threads = pool_threads().min(n.max(1));
    let check = sim_check();
    if crate::alloc_meter::env_enabled() {
        crate::alloc_meter::enable(true);
    }
    let metering_allocs = crate::alloc_meter::enabled();
    let start = Instant::now();
    let slots: Vec<Mutex<Option<(Measured, CellMeter)>>> =
        (0..n).map(|_| Mutex::new(None)).collect();
    let next = AtomicUsize::new(0);
    std::thread::scope(|s| {
        for _ in 0..threads {
            s.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= n {
                    break;
                }
                let cell = &cells[i];
                // Name any flight-recorder capture after the cell, so a
                // `TRACE=1 fig10 --quick` run leaves one
                // `traces/<fig>_<label>.{pcapng,jsonl}` pair per cell. The
                // label is thread-local; clearing it keeps later non-cell
                // runs (e.g. Criterion) on the seed-derived default name.
                trace::set_run_label(Some(&format!("{fig} {}", cell.label)));
                // Shadow run first so the metered (fast) run below is
                // undisturbed. The discipline flag is thread-local, so
                // parallel workers shadow-check independently.
                let reference = check.then(|| {
                    simcore::set_reference_discipline(true);
                    let r = (cell.run)();
                    simcore::set_reference_discipline(false);
                    r
                });
                let a0 = metering_allocs.then(crate::alloc_meter::allocs);
                let t0 = Instant::now();
                let m = (cell.run)();
                let wall = t0.elapsed().as_secs_f64();
                let allocs_total =
                    a0.map_or(0, |a| crate::alloc_meter::allocs().saturating_sub(a));
                trace::set_run_label(None);
                if let Some(r) = &reference {
                    assert_disciplines_agree(&cell.label, r, &m);
                }
                let meter = CellMeter {
                    label: cell.label.clone(),
                    wall_secs: wall,
                    sim_secs: m.sim_secs,
                    events_fired: m.events,
                    events_per_sec: m.events as f64 / wall.max(1e-9),
                    handoffs_total: m.handoffs,
                    wakes_coalesced: m.wakes_coalesced,
                    us_per_event: wall * 1e6 / (m.events.max(1)) as f64,
                    bursts_total: m.bursts_total,
                    pkts_per_burst_avg: if m.bursts_total == 0 {
                        0.0
                    } else {
                        m.pkts_fused as f64 / m.bursts_total as f64
                    },
                    wheel_hits: m.wheel_hits,
                    heap_falls: m.heap_falls,
                    shards: m.shards,
                    epochs_total: m.epochs_total,
                    cross_shard_pkts: m.cross_shard_pkts,
                    lookahead_ns: m.lookahead_ns,
                    paths: m.paths,
                    per_path_pkts: m.per_path_pkts.to_vec(),
                    spurious_frtx_total: m.spurious_frtx,
                    rescue_rtx_total: m.rescue_rtx,
                    scheduler: m.scheduler.to_string(),
                    msgs_abandoned: m.msgs_abandoned,
                    fwd_tsn_total: m.fwd_tsn_total,
                    snd_hol_blocks: m.snd_hol_blocks,
                    snd_hol_ns: m.snd_hol_ns,
                    allocs_total,
                    allocs_per_event: allocs_total as f64 / (m.events.max(1)) as f64,
                };
                *slots[i].lock().unwrap() = Some((m, meter));
            });
        }
    });
    let wall_total = start.elapsed().as_secs_f64();
    let mut values = Vec::with_capacity(n);
    let mut meters = Vec::with_capacity(n);
    for slot in slots {
        let (v, m) = slot.into_inner().unwrap().expect("cell not run");
        values.push(v);
        meters.push(m);
    }
    let report = BenchReport {
        fig: scale.tag(fig),
        scale: match scale {
            Scale::Paper => "paper",
            Scale::Quick => "quick",
        },
        threads,
        wall_secs_total: wall_total,
        events_total: meters.iter().map(|m| m.events_fired).sum(),
        fault_plan: plan_json,
        cells: meters,
    };
    (values, report)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn results_are_in_cell_order_regardless_of_runtime() {
        // Cells finish in reverse submission order (later = faster), yet
        // values come back in cell order.
        let cells: Vec<Cell> = (0..16)
            .map(|i| {
                Cell::new(format!("cell{i}"), move || {
                    std::thread::sleep(std::time::Duration::from_millis(16 - i as u64));
                    Measured::new(i as f64, 0.0, i)
                })
            })
            .collect();
        let (values, report) = run_cells("test", Scale::Quick, cells);
        let got: Vec<f64> = values.iter().map(|m| m.value).collect();
        assert_eq!(got, (0..16).map(|i| i as f64).collect::<Vec<_>>());
        assert_eq!(report.cells.len(), 16);
        assert_eq!(report.cells[3].label, "cell3");
        assert_eq!(report.events_total, (0..16).sum::<u64>());
        assert!(report.wall_secs_total > 0.0);
    }

    #[test]
    fn thread_override_parsing_clamps_to_one_worker() {
        // No env var, or garbage: no override, harness picks parallelism.
        assert_eq!(threads_from_env(None), None);
        assert_eq!(threads_from_env(Some("")), None);
        assert_eq!(threads_from_env(Some("lots")), None);
        assert_eq!(threads_from_env(Some("-3")), None);
        // Explicit values force the pool size...
        assert_eq!(threads_from_env(Some("1")), Some(1));
        assert_eq!(threads_from_env(Some("8")), Some(8));
        // ...and zero clamps to one sequential worker instead of a pool
        // that would never run any cell.
        assert_eq!(threads_from_env(Some("0")), Some(1));
    }

    #[test]
    fn shards_override_parsing_defaults_to_sequential() {
        assert_eq!(shards_from_env(None), 1);
        assert_eq!(shards_from_env(Some("")), 1);
        assert_eq!(shards_from_env(Some("many")), 1);
        assert_eq!(shards_from_env(Some("0")), 1);
        assert_eq!(shards_from_env(Some("4")), 4);
    }

    #[test]
    fn backend_override_parsing_defaults_to_udp_on_bad_values() {
        assert_eq!(backend_from_env(None), BackendKind::Udp);
        assert_eq!(backend_from_env(Some("")), BackendKind::Udp);
        assert_eq!(backend_from_env(Some("tcp")), BackendKind::Udp);
        assert_eq!(backend_from_env(Some("0")), BackendKind::Udp);
        assert_eq!(backend_from_env(Some("udp")), BackendKind::Udp);
        assert_eq!(backend_from_env(Some(" UDP ")), BackendKind::Udp);
        assert_eq!(backend_from_env(Some("sim")), BackendKind::Sim);
        assert_eq!(backend_from_env(Some(" Sim ")), BackendKind::Sim);
    }

    #[test]
    fn bench_report_renders_schema() {
        let r = BenchReport {
            fig: "fig0".into(),
            scale: "quick",
            threads: 2,
            wall_secs_total: 0.5,
            events_total: 10,
            fault_plan: None,
            cells: vec![CellMeter {
                label: "a".into(),
                wall_secs: 0.25,
                sim_secs: 1.0,
                events_fired: 10,
                events_per_sec: 40.0,
                handoffs_total: 4,
                wakes_coalesced: 6,
                us_per_event: 25000.0,
                bursts_total: 3,
                pkts_per_burst_avg: 2.5,
                wheel_hits: 9,
                heap_falls: 1,
                shards: 4,
                epochs_total: 12,
                cross_shard_pkts: 7,
                lookahead_ns: 22_000,
                paths: 3,
                per_path_pkts: vec![5, 3, 2, 0],
                spurious_frtx_total: 1,
                rescue_rtx_total: 2,
                scheduler: "rr".into(),
                msgs_abandoned: 4,
                fwd_tsn_total: 2,
                snd_hol_blocks: 6,
                snd_hol_ns: 9_000,
                allocs_total: 123,
                allocs_per_event: 12.3,
            }],
        };
        let s = r.to_json().render();
        for key in [
            "\"schema_version\"",
            "\"fig\"",
            "\"threads\"",
            "\"cells\"",
            "\"events_fired\"",
            "\"label\"",
            "\"handoffs_total\"",
            "\"wakes_coalesced\"",
            "\"us_per_event\"",
            "\"bursts_total\"",
            "\"pkts_per_burst_avg\"",
            "\"wheel_hits\"",
            "\"heap_falls\"",
            "\"shards\"",
            "\"epochs_total\"",
            "\"cross_shard_pkts\"",
            "\"lookahead_ns\"",
            "\"paths\"",
            "\"per_path_pkts\"",
            "\"spurious_frtx_total\"",
            "\"rescue_rtx_total\"",
            "\"scheduler\"",
            "\"msgs_abandoned\"",
            "\"fwd_tsn_total\"",
            "\"snd_hol_blocks\"",
            "\"snd_hol_ns\"",
            "\"allocs_total\"",
            "\"allocs_per_event\"",
        ] {
            assert!(s.contains(key), "missing {key} in {s}");
        }
        assert!(
            s.contains(&format!("\"schema_version\": {}", crate::json::SCHEMA_VERSION)),
            "report must stamp the current schema: {s}"
        );
    }

    #[test]
    fn fault_plan_embeds_verbatim_and_replays() {
        let plan = netsim::FaultPlan {
            flaps: vec![netsim::FlapRule {
                scope: netsim::Scope::on_iface(0),
                from_ns: 50_000_000,
                until_ns: 10_000_000_000,
            }],
            ..Default::default()
        };
        let text = plan.to_json();
        let report = BenchReport {
            fig: "flap_quick".into(),
            scale: "quick",
            threads: 1,
            wall_secs_total: 0.1,
            events_total: 1,
            fault_plan: Some(text.clone()),
            cells: vec![],
        };
        let s = report.to_json().render();
        // Embedded verbatim — what the file carries is exactly what
        // `FaultPlan::from_json` replays.
        assert!(s.contains(&format!("\"fault_plan\": {text}")), "not verbatim: {s}");
        assert_eq!(netsim::FaultPlan::from_json(&text).unwrap(), plan);
    }

    #[test]
    fn save_retires_old_schema_files_to_bak() {
        let dir = std::env::temp_dir()
            .join(format!("bench-schema-test-{}-{:?}", std::process::id(), std::thread::current().id()));
        let _ = std::fs::remove_dir_all(&dir);
        let report = BenchReport {
            fig: "figtest".into(),
            scale: "quick",
            threads: 1,
            wall_secs_total: 0.1,
            events_total: 1,
            fault_plan: None,
            cells: vec![],
        };
        let path = dir.join("BENCH_figtest.json");
        let bak = dir.join("BENCH_figtest.json.bak");

        // Seed a pre-versioned (v1) file, as PR 3 and earlier wrote.
        std::fs::create_dir_all(&dir).unwrap();
        std::fs::write(&path, "{\n  \"fig\": \"figtest\"\n}\n").unwrap();
        report.save_to(&dir);
        assert!(bak.exists(), "v1 file must be retired, not overwritten");
        let new = std::fs::read_to_string(&path).unwrap();
        assert_eq!(crate::json::sniff_schema_version(&new), crate::json::SCHEMA_VERSION);

        // Same-schema overwrite keeps the old backup untouched.
        std::fs::write(&bak, "sentinel").unwrap();
        report.save_to(&dir);
        assert_eq!(std::fs::read_to_string(&bak).unwrap(), "sentinel");
        let _ = std::fs::remove_dir_all(&dir);
    }
}
