//! Shared experiment-harness machinery: each figure/table of the paper has
//! a row type, a generator, and a text renderer. The `fig*`/`table*`
//! binaries print the full paper-scale results; the Criterion benches in
//! `benches/` run scaled-down versions of the same generators.
//!
//! Every figure cell — one (message size × loss rate × transport × seed)
//! combination — is an independent deterministic simulation, so the
//! `*_metered` generators fan cells across a [`runner`] worker pool and
//! record per-cell self-metering into `results/BENCH_<fig>.json`
//! (schema in EXPERIMENTS.md). Aggregation happens in cell order, so the
//! figures are bit-identical to a sequential run.
//!
//! The `probe_*` binaries (`probe_nas`, `probe_farm`, `probe_era`) are
//! diagnostic tools: one workload, one transport, full transport counters —
//! used with the env-gated traces documented in the `transport` crate.

use mpi_core::{ContextMap, MpiCfg, RaceFix, TransportSel};
use workloads::farm::{self, FarmCfg};
use workloads::nas::{self, Class, Kernel};
use workloads::pingpong::{self, PingPongCfg};
use workloads::scale::{run_scale, ScaleCfg, ScaleResult};

pub mod alloc_meter;
pub mod json;
pub mod live;
pub mod runner;

use json::ToJson;
use runner::{BenchReport, Cell, Measured};

/// How much of the paper-scale workload to run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scale {
    /// Full paper-scale runs (the `fig*` binaries' default).
    Paper,
    /// Reduced iteration counts for CI / Criterion.
    Quick,
}

impl Scale {
    pub fn from_args() -> Scale {
        if std::env::args().any(|a| a == "--quick") {
            Scale::Quick
        } else {
            Scale::Paper
        }
    }

    /// Result-file stem for this scale: quick runs get a `_quick` suffix so
    /// they never overwrite the committed paper-scale `results/*.json`.
    pub fn tag(self, name: &str) -> String {
        match self {
            Scale::Paper => name.to_string(),
            Scale::Quick => format!("{name}_quick"),
        }
    }
}

/// The seed base every figure derives its per-run seeds from.
pub const SEED_BASE: u64 = 0xBA5E;

/// Averages `runs` deterministic runs over distinct seeds (the paper runs
/// each farm configuration six times and reports the mean).
pub fn mean_over_seeds(runs: u64, mut f: impl FnMut(u64) -> f64) -> f64 {
    let total: f64 = (0..runs).map(|s| f(SEED_BASE + s)).sum();
    total / runs as f64
}

fn mean(xs: &[Measured]) -> f64 {
    xs.iter().map(|m| m.value).sum::<f64>() / xs.len().max(1) as f64
}

// ---------------------------------------------------------------------------
// E1 — Figure 8: ping-pong throughput vs message size, no loss
// ---------------------------------------------------------------------------

#[derive(Debug, Clone)]
pub struct Fig8Row {
    pub size: usize,
    pub tcp_tput: f64,
    pub sctp_tput: f64,
    /// SCTP throughput normalized to TCP (the paper's y-axis).
    pub normalized: f64,
}

impl_to_json!(Fig8Row { size, tcp_tput, sctp_tput, normalized });

/// The paper sweeps message sizes 1 B .. 128 KB.
pub fn fig8_sizes(scale: Scale) -> Vec<usize> {
    let full = vec![
        1, 16, 64, 256, 1024, 4096, 8192, 16384, 22528, 32768, 49152, 65535, 98302, 131069,
    ];
    match scale {
        Scale::Paper => full,
        Scale::Quick => vec![64, 4096, 22528, 131069],
    }
}

/// `Measured` path meters for one ping-pong/stream result: path count from
/// the config (0 when the run wasn't SCTP — TCP has no path notion).
fn path_meters(cfg: &MpiCfg, r: &pingpong::PingPongResult) -> (u64, [u64; 4], u64, u64) {
    let paths = if matches!(cfg.transport, TransportSel::Sctp { .. }) {
        cfg.sctp.num_paths as u64
    } else {
        0
    };
    (paths, r.sctp.per_path_pkts, r.sctp.spurious_frtx, r.sctp.rescue_rtx)
}

fn pingpong_cell(label: String, cfg: MpiCfg, pp: PingPongCfg) -> Cell<'static> {
    Cell::new(label, move || {
        let r = pingpong::run(cfg.clone(), pp);
        let (paths, per_path, spur, rescue) = path_meters(&cfg, &r);
        Measured::new(r.throughput, r.secs, r.events)
            .with_runtime_meters(r.handoffs, r.wakes_coalesced)
            .with_burst_meters(r.bursts_total, r.pkts_fused, r.wheel_hits, r.heap_falls)
            .with_path_meters(paths, per_path, spur, rescue)
    })
}

pub fn fig8_metered(scale: Scale) -> (Vec<Fig8Row>, BenchReport) {
    let iters = match scale {
        Scale::Paper => 200,
        Scale::Quick => 20,
    };
    let sizes = fig8_sizes(scale);
    let mut cells = Vec::new();
    for &size in &sizes {
        let pp = PingPongCfg { size, iters };
        cells.push(pingpong_cell(format!("size={size} rpi=tcp"), MpiCfg::tcp(2, 0.0), pp));
        cells.push(pingpong_cell(format!("size={size} rpi=sctp"), MpiCfg::sctp(2, 0.0), pp));
    }
    let (vals, report) = runner::run_cells("fig8", scale, cells);
    let rows = sizes
        .iter()
        .zip(vals.chunks_exact(2))
        .map(|(&size, pair)| {
            let (tcp, sctp) = (pair[0].value, pair[1].value);
            Fig8Row { size, tcp_tput: tcp, sctp_tput: sctp, normalized: sctp / tcp }
        })
        .collect();
    (rows, report)
}

pub fn fig8(scale: Scale) -> Vec<Fig8Row> {
    fig8_metered(scale).0
}

/// The message size at which SCTP first matches TCP (paper: ≈ 22 KB).
pub fn fig8_crossover(rows: &[Fig8Row]) -> Option<usize> {
    rows.iter().find(|r| r.normalized >= 1.0).map(|r| r.size)
}

// ---------------------------------------------------------------------------
// E2 — Table 1: ping-pong under loss
// ---------------------------------------------------------------------------

#[derive(Debug, Clone)]
pub struct Table1Row {
    pub size: usize,
    pub loss: f64,
    pub sctp_tput: f64,
    pub tcp_tput: f64,
    /// TCP without scoreboard recovery (the paper-era stack).
    pub tcp_era_tput: f64,
    pub ratio: f64,
    pub ratio_era: f64,
}

impl_to_json!(Table1Row { size, loss, sctp_tput, tcp_tput, tcp_era_tput, ratio, ratio_era });

pub fn table1_metered(scale: Scale) -> (Vec<Table1Row>, BenchReport) {
    let iters = match scale {
        Scale::Paper => 120,
        Scale::Quick => 8,
    };
    let runs = match scale {
        Scale::Paper => 5, // the paper averages six runs; five keeps the
        // era-TCP cells (80+ simulated seconds each) tractable
        Scale::Quick => 1,
    };
    let mut cells = Vec::new();
    let mut keys = Vec::new();
    for &size in &[30 * 1024, 300 * 1024] {
        for &loss in &[0.01, 0.02] {
            keys.push((size, loss));
            let pp = PingPongCfg { size, iters };
            for (rpi, mk) in transports3() {
                for s in 0..runs {
                    let seed = SEED_BASE + s;
                    cells.push(pingpong_cell(
                        format!("size={size} loss={loss} rpi={rpi} seed={seed:#x}"),
                        mk(2, loss).with_seed(seed),
                        pp,
                    ));
                }
            }
        }
    }
    let (vals, report) = runner::run_cells("table1", scale, cells);
    let rows = keys
        .iter()
        .zip(vals.chunks_exact(3 * runs as usize))
        .map(|(&(size, loss), chunk)| {
            let (sctp, rest) = chunk.split_at(runs as usize);
            let (tcp, era) = rest.split_at(runs as usize);
            let (sctp, tcp, tcp_era) = (mean(sctp), mean(tcp), mean(era));
            Table1Row {
                size,
                loss,
                sctp_tput: sctp,
                tcp_tput: tcp,
                tcp_era_tput: tcp_era,
                ratio: sctp / tcp,
                ratio_era: sctp / tcp_era,
            }
        })
        .collect();
    (rows, report)
}

pub fn table1(scale: Scale) -> Vec<Table1Row> {
    table1_metered(scale).0
}

/// The three transports the loss experiments compare, in output order.
fn transports3() -> [(&'static str, fn(u16, f64) -> MpiCfg); 3] {
    [("sctp", MpiCfg::sctp), ("tcp", MpiCfg::tcp), ("tcp-era", MpiCfg::tcp_era)]
}

// ---------------------------------------------------------------------------
// E3 — Figure 9: NAS kernels, class B (plus the other classes)
// ---------------------------------------------------------------------------

#[derive(Debug, Clone)]
pub struct Fig9Row {
    pub kernel: &'static str,
    pub class: &'static str,
    pub sctp_mops: f64,
    pub tcp_mops: f64,
    pub ratio: f64,
}

impl_to_json!(Fig9Row { kernel, class, sctp_mops, tcp_mops, ratio });

pub fn fig9_metered(scale: Scale, class: Class) -> (Vec<Fig9Row>, BenchReport) {
    let class = match scale {
        Scale::Paper => class,
        Scale::Quick => Class::S,
    };
    let mut cells = Vec::new();
    for &k in Kernel::ALL.iter() {
        for (rpi, mk) in [("sctp", MpiCfg::sctp as fn(u16, f64) -> MpiCfg), ("tcp", MpiCfg::tcp)] {
            cells.push(Cell::new(format!("kernel={} rpi={rpi}", k.name()), move || {
                let r = nas::run(mk(8, 0.0), k, class);
                Measured::new(r.mops_per_sec, r.secs, r.events)
                    .with_runtime_meters(r.handoffs, r.wakes_coalesced)
                    .with_burst_meters(r.bursts_total, r.pkts_fused, r.wheel_hits, r.heap_falls)
            }));
        }
    }
    let (vals, report) = runner::run_cells("fig9", scale, cells);
    let rows = Kernel::ALL
        .iter()
        .zip(vals.chunks_exact(2))
        .map(|(&k, pair)| {
            let (sctp, tcp) = (pair[0].value, pair[1].value);
            Fig9Row {
                kernel: k.name(),
                class: class.name(),
                sctp_mops: sctp,
                tcp_mops: tcp,
                ratio: sctp / tcp,
            }
        })
        .collect();
    (rows, report)
}

pub fn fig9(scale: Scale, class: Class) -> Vec<Fig9Row> {
    fig9_metered(scale, class).0
}

// ---------------------------------------------------------------------------
// E4/E5 — Figures 10 & 11: the Bulk Processor Farm
// ---------------------------------------------------------------------------

#[derive(Debug, Clone)]
pub struct FarmRow {
    pub task_bytes: usize,
    pub fanout: u32,
    pub loss: f64,
    pub sctp_secs: f64,
    pub tcp_secs: f64,
    /// TCP without scoreboard recovery (the paper-era stack).
    pub tcp_era_secs: f64,
    pub ratio_tcp_over_sctp: f64,
    pub ratio_era: f64,
    /// Peak unexpected-queue length across all cells of this row — the
    /// matching layer must keep this bounded (independent of task count).
    pub unexpected_peak: u64,
}

impl_to_json!(FarmRow {
    task_bytes,
    fanout,
    loss,
    sctp_secs,
    tcp_secs,
    tcp_era_secs,
    ratio_tcp_over_sctp,
    ratio_era,
    unexpected_peak,
});

pub fn farm_cfg(scale: Scale, task_bytes: usize, fanout: u32) -> FarmCfg {
    match scale {
        // 2 000 of the paper's 10 000 tasks: run times scale ~linearly in
        // task count, so compare the paper's totals divided by 5; the
        // TCP/SCTP *ratios* are task-count invariant. (10 000 tasks of
        // era-TCP at 2 % loss would run for hours of wall time.)
        Scale::Paper => FarmCfg { num_tasks: 2_000, ..FarmCfg::paper(task_bytes, fanout) },
        Scale::Quick => FarmCfg::small(task_bytes, fanout),
    }
}

fn farm_cell(label: String, cfg: MpiCfg, farm: FarmCfg) -> Cell<'static> {
    Cell::new(label, move || {
        let r = farm::run(cfg.clone(), farm);
        let mut m = Measured::new(r.secs, r.secs, r.events)
            .with_runtime_meters(r.handoffs, r.wakes_coalesced)
            .with_burst_meters(r.bursts_total, r.pkts_fused, r.wheel_hits, r.heap_falls);
        m.aux = r.unexpected_peak as u64;
        m
    })
}

pub fn farm_figure_metered(scale: Scale, fanout: u32) -> (Vec<FarmRow>, BenchReport) {
    let runs = match scale {
        Scale::Paper => 3,
        Scale::Quick => 1,
    };
    let fig = if fanout == 1 { "fig10" } else { "fig11" };
    let mut cells = Vec::new();
    let mut keys = Vec::new();
    for &task_bytes in &[30 * 1024, 300 * 1024] {
        for &loss in &[0.0, 0.01, 0.02] {
            keys.push((task_bytes, loss));
            let cfg = farm_cfg(scale, task_bytes, fanout);
            for (rpi, mk) in transports3() {
                for s in 0..runs {
                    let seed = SEED_BASE + s;
                    cells.push(farm_cell(
                        format!("task={task_bytes} loss={loss} rpi={rpi} seed={seed:#x}"),
                        mk(8, loss).with_seed(seed),
                        cfg,
                    ));
                }
            }
        }
    }
    let (vals, report) = runner::run_cells(fig, scale, cells);
    let rows = keys
        .iter()
        .zip(vals.chunks_exact(3 * runs as usize))
        .map(|(&(task_bytes, loss), chunk)| {
            let (sctp, rest) = chunk.split_at(runs as usize);
            let (tcp, era) = rest.split_at(runs as usize);
            let peak = chunk.iter().map(|m| m.aux).max().unwrap_or(0);
            let (sctp, tcp, tcp_era) = (mean(sctp), mean(tcp), mean(era));
            FarmRow {
                task_bytes,
                fanout,
                loss,
                sctp_secs: sctp,
                tcp_secs: tcp,
                tcp_era_secs: tcp_era,
                ratio_tcp_over_sctp: tcp / sctp,
                ratio_era: tcp_era / sctp,
                unexpected_peak: peak,
            }
        })
        .collect();
    (rows, report)
}

pub fn farm_figure(scale: Scale, fanout: u32) -> Vec<FarmRow> {
    farm_figure_metered(scale, fanout).0
}

// ---------------------------------------------------------------------------
// E6 — Figure 12: 10 streams vs 1 stream (HOL isolation)
// ---------------------------------------------------------------------------

#[derive(Debug, Clone)]
pub struct Fig12Row {
    pub task_bytes: usize,
    pub loss: f64,
    pub streams10_secs: f64,
    pub stream1_secs: f64,
    pub ratio_1_over_10: f64,
}

impl_to_json!(Fig12Row { task_bytes, loss, streams10_secs, stream1_secs, ratio_1_over_10 });

pub fn fig12_metered(scale: Scale) -> (Vec<Fig12Row>, BenchReport) {
    let runs = match scale {
        Scale::Paper => 3,
        Scale::Quick => 1,
    };
    let fanout = 10;
    let mut cells = Vec::new();
    let mut keys = Vec::new();
    for &task_bytes in &[30 * 1024, 300 * 1024] {
        for &loss in &[0.0, 0.01, 0.02] {
            keys.push((task_bytes, loss));
            let cfg = farm_cfg(scale, task_bytes, fanout);
            for (label, mk) in [
                ("streams=10", MpiCfg::sctp as fn(u16, f64) -> MpiCfg),
                ("streams=1", MpiCfg::sctp_single_stream),
            ] {
                for s in 0..runs {
                    let seed = SEED_BASE + s;
                    cells.push(farm_cell(
                        format!("task={task_bytes} loss={loss} {label} seed={seed:#x}"),
                        mk(8, loss).with_seed(seed),
                        cfg,
                    ));
                }
            }
        }
    }
    let (vals, report) = runner::run_cells("fig12", scale, cells);
    let rows = keys
        .iter()
        .zip(vals.chunks_exact(2 * runs as usize))
        .map(|(&(task_bytes, loss), chunk)| {
            let (ten, one) = chunk.split_at(runs as usize);
            let (ten, one) = (mean(ten), mean(one));
            Fig12Row {
                task_bytes,
                loss,
                streams10_secs: ten,
                stream1_secs: one,
                ratio_1_over_10: one / ten,
            }
        })
        .collect();
    (rows, report)
}

pub fn fig12(scale: Scale) -> Vec<Fig12Row> {
    fig12_metered(scale).0
}

// ---------------------------------------------------------------------------
// E-interleave — RFC 8260 I-DATA + stream schedulers (mixed-size farm) and
// RFC 3758 PR-SCTP (media deadline workload)
// ---------------------------------------------------------------------------

/// One cell of the mixed-message-size table: a (config × loss) point of the
/// fig12-style sweep, with the per-side HOL accounting that explains it.
#[derive(Debug, Clone)]
pub struct InterleaveRow {
    /// "nointl-fcfs" (pre-8260 multistreaming), `intl-<sched>` (I-DATA
    /// negotiated, named sender scheduler).
    pub config: String,
    pub loss: f64,
    pub secs: f64,
    /// Sender-side HOL blocks and total blocked time — the metric I-DATA
    /// plus a non-FIFO scheduler exists to reduce.
    pub snd_hol_blocks: u64,
    pub snd_hol_ms: f64,
    /// Receiver-side (classic Figure 12) HOL blocked time, for contrast.
    pub rcv_hol_ms: f64,
}

impl_to_json!(InterleaveRow { config, loss, secs, snd_hol_blocks, snd_hol_ms, rcv_hol_ms });

/// One cell of the PR-SCTP deadline sweep (media workload).
#[derive(Debug, Clone)]
pub struct DeadlineRow {
    /// Per-frame lifetime, ms (0 = fully reliable source).
    pub lifetime_ms: u64,
    pub loss: f64,
    pub frames_delivered: u32,
    /// Frames dropped at the source because the send buffer was full.
    pub frames_skipped: u32,
    pub msgs_abandoned: u64,
    pub fwd_tsn_out: u64,
    pub max_staleness_ms: f64,
    pub mean_staleness_ms: f64,
    pub secs: f64,
}

impl_to_json!(DeadlineRow {
    lifetime_ms,
    loss,
    frames_delivered,
    frames_skipped,
    msgs_abandoned,
    fwd_tsn_out,
    max_staleness_ms,
    mean_staleness_ms,
    secs,
});

/// Both E-interleave tables as one harness run (`BENCH_interleave.json`).
#[derive(Debug, Clone)]
pub struct InterleaveResults {
    /// Mixed-size farm: scheduler comparison across loss rates.
    pub mixed: Vec<InterleaveRow>,
    /// Media deadline workload: PR-SCTP abandonment-rate sweep.
    pub deadline: Vec<DeadlineRow>,
}

use transport::sctp::SchedKind;
use workloads::media::{self, MediaCfg};
use workloads::mixed::{self, MixedCfg};

/// The sender-scheduler configurations the mixed table compares, in output
/// order. `None` = interleaving off (the pre-8260 baseline).
fn interleave_configs() -> [(&'static str, Option<SchedKind>); 5] {
    [
        ("nointl-fcfs", None),
        ("intl-fcfs", Some(SchedKind::Fcfs)),
        ("intl-rr", Some(SchedKind::RoundRobin)),
        ("intl-wfq", Some(SchedKind::WeightedFair)),
        ("intl-prio", Some(SchedKind::StrictPriority)),
    ]
}

/// Slack allowed over the configured lifetime before a delivered frame
/// counts as "unboundedly stale": abandonment happens lazily when a
/// (re)transmission comes due, so a frame stuck behind a loss the fast-rtx
/// machinery misses waits out one full T3 round (initial RTO 1 s) before
/// the FORWARD-TSN opens the receiver's ordered-delivery gate.
pub const STALENESS_SLACK: simcore::Dur = simcore::Dur::from_millis(1_500);

/// Runs the mixed-size farm grid and the deadline sweep, asserting the
/// acceptance shape in-process: I-DATA plus a non-FIFO scheduler strictly
/// reduces sender-side HOL blocked time vs non-interleaved multistreaming,
/// and finite lifetimes bound delivered-frame staleness.
pub fn interleave_metered(scale: Scale) -> (InterleaveResults, BenchReport) {
    use std::sync::Mutex;
    use workloads::mixed::TracedMixedResult;

    let tasks = match scale {
        Scale::Paper => 2_000,
        Scale::Quick => 200,
    };
    let frames = match scale {
        Scale::Paper => 2_000,
        Scale::Quick => 300,
    };
    let losses = [0.0, 0.01, 0.02];
    let mixed_cfg = MixedCfg::default_mix(tasks);
    // Seeds per mixed cell. One RTO-recovery window (initial RTO 1 s)
    // parks the whole association — a stall no scheduler can route
    // around, charged to whichever streams were waiting — so a single
    // seed's HOL total is noisy at paper scale; like the CMT grid, paper
    // scale averages 3 seeds per (config × loss) point and the acceptance
    // assertions compare those means.
    let seed_offsets: &[u64] = match scale {
        Scale::Paper => &[0, 1, 2],
        Scale::Quick => &[0],
    };
    // (lifetime ms, 0 = reliable) × one loss rate for the deadline sweep.
    let deadline_loss = 0.02;
    let lifetimes_ms: [u64; 4] = [0, 200, 50, 20];

    let mut specs: Vec<(&'static str, Option<SchedKind>, f64, u64)> = Vec::new();
    for &loss in &losses {
        for (name, sched) in interleave_configs() {
            for &s in seed_offsets {
                specs.push((name, sched, loss, s));
            }
        }
    }

    let slots: Vec<Mutex<Option<TracedMixedResult>>> =
        specs.iter().map(|_| Mutex::new(None)).collect();
    let media_slots: Vec<Mutex<Option<media::MediaResult>>> =
        lifetimes_ms.iter().map(|_| Mutex::new(None)).collect();
    let mut cells: Vec<Cell<'_>> = Vec::new();
    for (i, &(name, sched, loss, s)) in specs.iter().enumerate() {
        let slot = &slots[i];
        cells.push(Cell::new(format!("mixed config={name} loss={loss} seed={s}"), move || {
            let mut cfg = MpiCfg::sctp(8, loss).with_seed(SEED_BASE + s);
            if let Some(k) = sched {
                cfg = cfg.with_interleave(true).with_scheduler(k, &[]);
            }
            let r = mixed::run_traced(cfg, mixed_cfg);
            assert_eq!(r.result.tasks_done, mixed_cfg.num_tasks, "tasks lost in {name}");
            let mut m = Measured::new(r.result.secs, r.result.secs, r.result.events)
                .with_stream_meters(
                    sched.unwrap_or(SchedKind::Fcfs).name(),
                    r.result.msgs_abandoned,
                    r.result.fwd_tsn_out,
                    r.snd_hol_blocks,
                    r.snd_hol_ns,
                );
            m.aux = r.snd_hol_blocks;
            *slot.lock().unwrap() = Some(r);
            m
        }));
    }
    for (j, &ms) in lifetimes_ms.iter().enumerate() {
        let slot = &media_slots[j];
        cells.push(Cell::new(
            format!("media lifetime={ms}ms loss={deadline_loss}"),
            move || {
                let lifetime = (ms > 0).then(|| simcore::Dur::from_millis(ms));
                let r = media::run(MediaCfg::new(frames, lifetime, deadline_loss));
                let mut m = Measured::new(r.frames_delivered as f64, r.secs, r.events)
                    .with_stream_meters("fcfs", r.msgs_abandoned, r.fwd_tsn_out, 0, 0);
                m.aux = r.msgs_abandoned;
                *slot.lock().unwrap() = Some(r);
                m
            },
        ));
    }

    let (_, report) = runner::run_cells("interleave", scale, cells);

    // One row per (config × loss), averaged over the seeds that ran it.
    let n_seeds = seed_offsets.len() as f64;
    let mut mixed_rows: Vec<InterleaveRow> = Vec::new();
    for (&(name, _, loss, _), slot) in specs.iter().zip(&slots) {
        let r = slot.lock().unwrap().expect("cell not run");
        if let Some(row) =
            mixed_rows.iter_mut().find(|row| row.config == name && row.loss == loss)
        {
            row.secs += r.result.secs / n_seeds;
            row.snd_hol_blocks += r.snd_hol_blocks;
            row.snd_hol_ms += r.snd_hol_ns as f64 / 1e6 / n_seeds;
            row.rcv_hol_ms += r.rcv_hol_ns as f64 / 1e6 / n_seeds;
        } else {
            mixed_rows.push(InterleaveRow {
                config: name.to_string(),
                loss,
                secs: r.result.secs / n_seeds,
                snd_hol_blocks: r.snd_hol_blocks,
                snd_hol_ms: r.snd_hol_ns as f64 / 1e6 / n_seeds,
                rcv_hol_ms: r.rcv_hol_ns as f64 / 1e6 / n_seeds,
            });
        }
    }
    for row in &mut mixed_rows {
        row.snd_hol_blocks = (row.snd_hol_blocks as f64 / n_seeds).round() as u64;
    }
    let deadline_rows: Vec<DeadlineRow> = lifetimes_ms
        .iter()
        .zip(&media_slots)
        .map(|(&ms, slot)| {
            let r = slot.lock().unwrap().expect("cell not run");
            DeadlineRow {
                lifetime_ms: ms,
                loss: deadline_loss,
                frames_delivered: r.frames_delivered,
                frames_skipped: r.frames_skipped,
                msgs_abandoned: r.msgs_abandoned,
                fwd_tsn_out: r.fwd_tsn_out,
                max_staleness_ms: r.max_staleness_ns as f64 / 1e6,
                mean_staleness_ms: r.mean_staleness_ns as f64 / 1e6,
                secs: r.secs,
            }
        })
        .collect();

    // Acceptance shape. (1) Interleaving plus a non-FIFO scheduler must
    // strictly reduce sender-side blocked time against the pre-8260
    // baseline, at every loss rate.
    let get = |config: &str, loss: f64| {
        mixed_rows
            .iter()
            .find(|r| r.config == config && r.loss == loss)
            .expect("mixed cell present")
    };
    for &loss in &losses {
        let base = get("nointl-fcfs", loss);
        assert!(
            base.snd_hol_blocks > 0,
            "mixed sizes must produce sender-side HOL at loss={loss}: {base:?}"
        );
        for cfg in ["intl-rr", "intl-wfq"] {
            let intl = get(cfg, loss);
            assert!(
                intl.snd_hol_ms < base.snd_hol_ms,
                "{cfg} must strictly reduce sender-side HOL time at loss={loss}: \
                 {:.2} vs {:.2} ms",
                intl.snd_hol_ms,
                base.snd_hol_ms
            );
        }
    }
    // (2) The deadline sweep: tighter lifetimes abandon more and FORWARD-TSN
    // rides along; delivered frames stay within lifetime + slack of fresh.
    let reliable = &deadline_rows[0];
    for row in &deadline_rows[1..] {
        assert!(
            row.msgs_abandoned == 0 || row.fwd_tsn_out > 0,
            "abandonment must emit FORWARD-TSN: {row:?}"
        );
        let bound_ms = row.lifetime_ms as f64 + STALENESS_SLACK.as_nanos() as f64 / 1e6;
        assert!(
            row.max_staleness_ms <= bound_ms,
            "staleness must stay bounded by lifetime+slack: {row:?} (bound {bound_ms} ms)"
        );
    }
    let tightest = deadline_rows.last().expect("sweep non-empty");
    assert!(
        tightest.msgs_abandoned > 0,
        "the tightest lifetime under loss must abandon frames: {tightest:?}"
    );
    assert!(
        tightest.max_staleness_ms < reliable.max_staleness_ms,
        "deadlines must beat reliable on worst staleness: {:.2} vs {:.2} ms",
        tightest.max_staleness_ms,
        reliable.max_staleness_ms
    );

    (InterleaveResults { mixed: mixed_rows, deadline: deadline_rows }, report)
}

// ---------------------------------------------------------------------------
// E-faults — the farm under *bursty* loss (Gilbert–Elliott), matched to the
// Bernoulli figures' average rates, and the scripted link-flap timeline
// ---------------------------------------------------------------------------

/// One row of the bursty-loss farm figures (fig10burst / fig11burst): same
/// shape as [`FarmRow`] but the loss column is the Gilbert–Elliott chain's
/// long-run average, not a Bernoulli probability.
#[derive(Debug, Clone)]
pub struct FarmBurstRow {
    pub task_bytes: usize,
    pub fanout: u32,
    /// Long-run average loss rate of the chain (matched to the Bernoulli
    /// figures' 1 % / 2 % columns).
    pub avg_loss: f64,
    pub sctp_secs: f64,
    pub tcp_secs: f64,
    pub tcp_era_secs: f64,
    pub ratio_tcp_over_sctp: f64,
    pub ratio_era: f64,
}

impl_to_json!(FarmBurstRow {
    task_bytes,
    fanout,
    avg_loss,
    sctp_secs,
    tcp_secs,
    tcp_era_secs,
    ratio_tcp_over_sctp,
    ratio_era,
});

/// Mean loss-burst length used by the bursty-loss figures (packets). With
/// `loss_bad` = 0.25 a visit to the bad state clips a few packets out of a
/// train rather than sprinkling independent singles.
pub const BURST_MEAN_PKTS: f64 = 8.0;

/// Conditional loss rate inside the bad state for the bursty-loss figures.
pub const BURST_LOSS_BAD: f64 = 0.25;

/// The Gilbert–Elliott plan whose long-run average matches `avg_loss`.
pub fn burst_plan(avg_loss: f64) -> netsim::FaultPlan {
    netsim::FaultPlan {
        burst_loss: vec![netsim::BurstLossRule::matched(
            netsim::Scope::ALL,
            avg_loss,
            BURST_LOSS_BAD,
            BURST_MEAN_PKTS,
        )],
        ..Default::default()
    }
}

/// Figures 10/11 rerun under bursty loss at matched average rates: the
/// Bernoulli pipe is off (`loss = 0`) and a Gilbert–Elliott chain supplies
/// all the damage. Burstiness concentrates loss into fewer, deeper stalls —
/// how SCTP's SACK recovery and TCP's RTO chains each cope is the point.
pub fn farm_burst_figure_metered(scale: Scale, fanout: u32) -> (Vec<FarmBurstRow>, BenchReport) {
    let runs = match scale {
        Scale::Paper => 3,
        Scale::Quick => 1,
    };
    let fig = if fanout == 1 { "fig10burst" } else { "fig11burst" };
    let rates = [0.01, 0.02];
    let mut cells = Vec::new();
    let mut keys = Vec::new();
    for &task_bytes in &[30 * 1024, 300 * 1024] {
        for &avg in &rates {
            keys.push((task_bytes, avg));
            let cfg = farm_cfg(scale, task_bytes, fanout);
            for (rpi, mk) in transports3() {
                for s in 0..runs {
                    let seed = SEED_BASE + s;
                    let mut m = mk(8, 0.0).with_seed(seed);
                    m.fault_plan = burst_plan(avg);
                    cells.push(farm_cell(
                        format!("task={task_bytes} ge_avg={avg} rpi={rpi} seed={seed:#x}"),
                        m,
                        cfg,
                    ));
                }
            }
        }
    }
    // Both rate variants ride in the report as a JSON array, in `rates`
    // order — each element replays through `FaultPlan::from_json`.
    let plans = rates.map(|r| burst_plan(r).to_json()).join(",");
    let (vals, report) = runner::run_cells_with_plan(fig, scale, cells, Some(format!("[{plans}]")));
    let rows = keys
        .iter()
        .zip(vals.chunks_exact(3 * runs as usize))
        .map(|(&(task_bytes, avg_loss), chunk)| {
            let (sctp, rest) = chunk.split_at(runs as usize);
            let (tcp, era) = rest.split_at(runs as usize);
            let (sctp, tcp, tcp_era) = (mean(sctp), mean(tcp), mean(era));
            FarmBurstRow {
                task_bytes,
                fanout,
                avg_loss,
                sctp_secs: sctp,
                tcp_secs: tcp,
                tcp_era_secs: tcp_era,
                ratio_tcp_over_sctp: tcp / sctp,
                ratio_era: tcp_era / sctp,
            }
        })
        .collect();
    (rows, report)
}

/// One cell of the failover timeline.
#[derive(Debug, Clone)]
pub struct FlapRow {
    /// Transport / path configuration ("sctp-1path", "sctp-3path", "tcp").
    pub config: String,
    /// Did this cell run under the flap plan?
    pub flap: bool,
    /// Heartbeat interval, ms.
    pub hb_ms: u64,
    /// `path_max_retrans` for the run.
    pub pmr: u32,
    pub secs: f64,
    pub failovers: u64,
    /// First failover minus flap start, ms (0 when no failover happened) —
    /// the fault-detection latency.
    pub detect_ms: f64,
}

impl_to_json!(FlapRow { config, flap, hb_ms, pmr, secs, failovers, detect_ms });

/// Flap window start: late enough that connection setup is done.
pub const FLAP_FROM_NS: u64 = 50_000_000; // 50 ms
/// Flap window end: the primary network is down for just under 10 s.
pub const FLAP_UNTIL_NS: u64 = 10_000_000_000;

/// The failover-timeline plan: every host's interface 0 (the primary path)
/// goes down for the window.
pub fn flap_plan() -> netsim::FaultPlan {
    netsim::FaultPlan {
        flaps: vec![netsim::FlapRule {
            scope: netsim::Scope::on_iface(0),
            from_ns: FLAP_FROM_NS,
            until_ns: FLAP_UNTIL_NS,
        }],
        ..Default::default()
    }
}

/// The failover timeline (§3.5.1 under a *scripted* flap): the primary
/// network drops out for ~10 s mid-job. Multihomed SCTP detects the dead
/// path (`path_max_retrans` consecutive T3 expiries) and switches to an
/// alternate; singlehomed SCTP and TCP stall until the link returns. A
/// heartbeat-interval × path-max-retrans sweep shows the detection-latency
/// trade-off. Asserts the acceptance shape: the 3-path cell fails over at
/// least once and beats the 1-path cell, which cannot finish before the
/// flap ends.
pub fn flap_timeline_metered(scale: Scale) -> (Vec<FlapRow>, BenchReport) {
    use std::sync::Mutex;
    use workloads::farm::FaultFarmResult;

    let base_hb_ms: u64 = 500;
    let base_pmr: u32 = 2;
    let farm = farm_cfg(scale, 30 * 1024, 10);
    let mk_sctp = |paths: u8, hb_ms: u64, pmr: u32, flap: bool| {
        let mut m = MpiCfg::sctp(8, 0.0).with_seed(SEED_BASE);
        m.sctp.num_paths = paths;
        m.sctp.heartbeat_interval = Some(simcore::Dur::from_millis(hb_ms));
        m.sctp.path_max_retrans = pmr;
        if flap {
            m.fault_plan = flap_plan();
        }
        m
    };
    // (config, hb, pmr, flap, MpiCfg) — base cells first, then the sweep.
    let mut specs: Vec<(String, u64, u32, bool, MpiCfg)> = Vec::new();
    for flap in [false, true] {
        specs.push(("sctp-1path".into(), base_hb_ms, base_pmr, flap, mk_sctp(1, base_hb_ms, base_pmr, flap)));
        specs.push(("sctp-3path".into(), base_hb_ms, base_pmr, flap, mk_sctp(3, base_hb_ms, base_pmr, flap)));
        let mut tcp = MpiCfg::tcp(8, 0.0).with_seed(SEED_BASE);
        if flap {
            tcp.fault_plan = flap_plan();
        }
        specs.push(("tcp".into(), base_hb_ms, base_pmr, flap, tcp));
    }
    for &hb_ms in &[250u64, 1000] {
        specs.push(("sctp-3path".into(), hb_ms, base_pmr, true, mk_sctp(3, hb_ms, base_pmr, true)));
    }
    for &pmr in &[1u32, 4] {
        specs.push(("sctp-3path".into(), base_hb_ms, pmr, true, mk_sctp(3, base_hb_ms, pmr, true)));
    }

    // The runner's Measured can't carry the failover metrics, so each cell
    // also parks its full FaultFarmResult in a slot by index.
    let slots: Vec<Mutex<Option<FaultFarmResult>>> = specs.iter().map(|_| Mutex::new(None)).collect();
    let cells: Vec<Cell<'_>> = specs
        .iter()
        .enumerate()
        .map(|(i, (config, hb_ms, pmr, flap, m))| {
            let (m, farm) = (m.clone(), farm);
            let slot = &slots[i];
            Cell::new(format!("config={config} hb={hb_ms}ms pmr={pmr} flap={flap}"), move || {
                let r = farm::run_with_plan(m.clone(), farm);
                assert_eq!(r.tasks_done, farm.num_tasks, "tasks lost in the flap");
                *slot.lock().unwrap() = Some(r);
                Measured::new(r.secs, r.secs, r.events)
            })
        })
        .collect();
    let (_, report) =
        runner::run_cells_with_plan("flap", scale, cells, Some(flap_plan().to_json()));
    let rows: Vec<FlapRow> = specs
        .iter()
        .zip(&slots)
        .map(|((config, hb_ms, pmr, flap, _), slot)| {
            let r = slot.lock().unwrap().expect("cell not run");
            let detect_ms = if r.first_failover_ns == 0 {
                0.0
            } else {
                (r.first_failover_ns.saturating_sub(FLAP_FROM_NS)) as f64 / 1e6
            };
            FlapRow {
                config: config.clone(),
                flap: *flap,
                hb_ms: *hb_ms,
                pmr: *pmr,
                secs: r.secs,
                failovers: r.failovers,
                detect_ms,
            }
        })
        .collect();

    // Acceptance shape of the base cells.
    let find = |config: &str, flap: bool| {
        rows.iter()
            .find(|r| r.config == config && r.flap == flap && r.hb_ms == base_hb_ms && r.pmr == base_pmr)
            .expect("base cell present")
    };
    let one = find("sctp-1path", true);
    let three = find("sctp-3path", true);
    assert!(three.failovers >= 1, "3-path run must fail over: {three:?}");
    assert!(
        three.secs < one.secs,
        "failover must beat stalling through the flap: {three:?} vs {one:?}"
    );
    assert!(
        one.secs >= FLAP_UNTIL_NS as f64 / 1e9,
        "a singlehomed run cannot finish while its only path is down: {one:?}"
    );
    (rows, report)
}

// ---------------------------------------------------------------------------
// A5 — Concurrent Multipath Transfer (ROADMAP item 4): stripe one
// association's data across all three of the testbed's networks
// ---------------------------------------------------------------------------

/// One cell of the CMT figure: a (workload × path/CMT config × loss) point
/// with the transport counters that explain it.
#[derive(Debug, Clone)]
pub struct CmtRow {
    /// `"stream"` (one-way bulk, the paper-style CMT metric) or
    /// `"pingpong"` (strict alternation — the latency-bound view).
    pub workload: &'static str,
    pub paths: u8,
    pub cmt: bool,
    pub loss: f64,
    pub mb_per_s: f64,
    /// Packets per path — the stripe balance (SACKs ride the primary).
    pub per_path_pkts: Vec<u64>,
    pub timeouts: u64,
    pub fast_rtx: u64,
    /// Tail losses recovered by the ~2·SRTT rescue probe instead of RTO.
    pub rescue_rtx: u64,
    /// Fast retransmits a later SACK proved unnecessary — SFR keeps this ~0.
    pub spurious_frtx: u64,
}

impl_to_json!(CmtRow {
    workload,
    paths,
    cmt,
    loss,
    mb_per_s,
    per_path_pkts,
    timeouts,
    fast_rtx,
    rescue_rtx,
    spurious_frtx,
});

/// One cell of the send-buffer sweep: 3-path CMT bulk stream at 0 % loss.
#[derive(Debug, Clone)]
pub struct CmtBufRow {
    pub sndbuf_kb: u64,
    pub mb_per_s: f64,
}

impl_to_json!(CmtBufRow { sndbuf_kb, mb_per_s });

/// One cell of the fault-composition table: the bulk stream under
/// [`cmt_fault_plan`] with CMT on or off.
#[derive(Debug, Clone)]
pub struct CmtFaultRow {
    pub cmt: bool,
    pub secs: f64,
    pub mb_per_s: f64,
    pub failovers: u64,
    pub rescue_rtx: u64,
}

impl_to_json!(CmtFaultRow { cmt, secs, mb_per_s, failovers, rescue_rtx });

/// The three path configurations every CMT table compares, in output order.
const CMT_CONFIGS: [(u8, bool); 3] = [(1, false), (3, false), (3, true)];

/// Bulk-stream message size: just under the 64 KB eager threshold, so the
/// MPI layer hands messages straight to the transport and successive sends
/// pipeline. Rendezvous handshakes serialize message starts and cap the
/// 3-path aggregate near 2.5× no matter the buffer size.
pub const CMT_STREAM_MSG: usize = 64 * 1024 - 64;

/// Socket-buffer size for the CMT grid cells: the paper testbed's 220 KB.
/// The buffer sweep in [`cmt_metered`] measures the sensitivity and shows
/// the stripe is *not* window-limited from here up — in-flight data is
/// bounded by the 3-path BDP (~tens of KB), and oversizing the send buffer
/// only deepens the bottleneck queues until they tail-drop.
pub const CMT_BUFS: u64 = 220 * 1024;

/// Acceptance floor for 3-path CMT aggregation over one path at 0 % loss.
pub const CMT_AGG_MIN: f64 = 2.7;

/// The fault-composition plan for the CMT flap cell: Gilbert–Elliott
/// bursty loss at a 1 % long-run average on every link, plus the primary
/// network (interface 0) flapping down for 20–80 ms — early enough to
/// strand in-flight chunks on path 0 mid-stream.
pub const CMT_FLAP_FROM_NS: u64 = 20_000_000;
pub const CMT_FLAP_UNTIL_NS: u64 = 80_000_000;

pub fn cmt_fault_plan() -> netsim::FaultPlan {
    netsim::FaultPlan {
        burst_loss: vec![netsim::BurstLossRule::matched(
            netsim::Scope::ALL,
            0.01,
            BURST_LOSS_BAD,
            BURST_MEAN_PKTS,
        )],
        flaps: vec![netsim::FlapRule {
            scope: netsim::Scope::on_iface(0),
            from_ns: CMT_FLAP_FROM_NS,
            until_ns: CMT_FLAP_UNTIL_NS,
        }],
        ..Default::default()
    }
}

fn cmt_cfg(paths: u8, cmt: bool, loss: f64, seed: u64) -> MpiCfg {
    let mut m = MpiCfg::sctp(2, loss).with_seed(seed).with_sctp_bufs(CMT_BUFS, CMT_BUFS).with_cmt(cmt);
    m.sctp.num_paths = paths;
    m
}

/// All four CMT tables as one harness run (one `BENCH_cmt.json`).
#[derive(Debug, Clone)]
pub struct CmtResults {
    /// Bulk stream, loss sweep × path configs — the headline table.
    pub stream: Vec<CmtRow>,
    /// Strict ping-pong, the latency-bound view of the same configs.
    pub pingpong: Vec<CmtRow>,
    /// Send-buffer sweep (3-path CMT stream at 0 % loss).
    pub bufs: Vec<CmtBufRow>,
    /// Fault composition: bursty loss + a primary-path flap.
    pub fault: Vec<CmtFaultRow>,
}

/// Runs the CMT grids and asserts the acceptance shape on the stream
/// table: ≥ [`CMT_AGG_MIN`]× aggregation at 0 % loss, no inversion against
/// single-path at any loss rate, and SFR keeping spurious marks ~0.
pub fn cmt_metered(scale: Scale) -> (CmtResults, BenchReport) {
    use std::sync::Mutex;
    use workloads::pingpong::{PingPongResult, StreamCfg};

    // The stream cells need enough messages that one fast-recovery cycle
    // doesn't dominate the transfer: at 256 messages a lucky single-path
    // run can beat a striped run that absorbed one extra loss burst.
    let (count, iters, runs): (u32, u32, usize) = match scale {
        Scale::Paper => (4096, 200, 3),
        Scale::Quick => (1024, 40, 1),
    };
    let stream_losses = [0.0, 0.005, 0.01, 0.02];
    let pp_losses = [0.0, 0.01];
    let st = StreamCfg { size: CMT_STREAM_MSG, count };
    let pp = PingPongCfg { size: 220 * 1024 - 64, iters };
    let bufs_kb: [u64; 3] = [220, 512, 1024];

    let mut specs: Vec<(&'static str, u8, bool, f64)> = Vec::new();
    for &loss in &stream_losses {
        for (paths, cmt) in CMT_CONFIGS {
            specs.push(("stream", paths, cmt, loss));
        }
    }
    for &loss in &pp_losses {
        for (paths, cmt) in CMT_CONFIGS {
            specs.push(("pingpong", paths, cmt, loss));
        }
    }

    // Cells in table order; each also parks its full result in a slot so
    // the rows carry transport counters the runner's `Measured` can't.
    let n_cells = specs.len() * runs + bufs_kb.len() + 2;
    let slots: Vec<Mutex<Option<PingPongResult>>> =
        (0..n_cells).map(|_| Mutex::new(None)).collect();
    let mut cells: Vec<Cell<'_>> = Vec::new();
    fn cell<'a>(
        label: String,
        cfg: MpiCfg,
        workload: &'static str,
        st: StreamCfg,
        pp: PingPongCfg,
        slot: &'a Mutex<Option<PingPongResult>>,
    ) -> Cell<'a> {
        Cell::new(label, move || {
            let r = if workload == "stream" {
                pingpong::run_stream(cfg.clone(), st)
            } else {
                pingpong::run(cfg.clone(), pp)
            };
            *slot.lock().unwrap() = Some(r);
            let (paths, per_path, spur, rescue) = path_meters(&cfg, &r);
            Measured::new(r.throughput, r.secs, r.events)
                .with_runtime_meters(r.handoffs, r.wakes_coalesced)
                .with_burst_meters(r.bursts_total, r.pkts_fused, r.wheel_hits, r.heap_falls)
                .with_path_meters(paths, per_path, spur, rescue)
        })
    }
    for &(workload, paths, cmt, loss) in &specs {
        for s in 0..runs {
            let seed = SEED_BASE + s as u64;
            cells.push(cell(
                format!("{workload} paths={paths} cmt={cmt} loss={loss} seed={seed:#x}"),
                cmt_cfg(paths, cmt, loss, seed),
                workload,
                st,
                pp,
                &slots[cells.len()],
            ));
        }
    }
    for &kb in &bufs_kb {
        cells.push(cell(
            format!("bufsweep stream paths=3 cmt=true loss=0 sndbuf={kb}K"),
            cmt_cfg(3, true, 0.0, SEED_BASE).with_sctp_bufs(kb * 1024, kb * 1024),
            "stream",
            st,
            pp,
            &slots[cells.len()],
        ));
    }
    for cmt in [false, true] {
        let mut cfg = cmt_cfg(3, cmt, 0.0, SEED_BASE);
        cfg.fault_plan = cmt_fault_plan();
        cells.push(cell(
            format!("fault flap+ge stream paths=3 cmt={cmt}"),
            cfg,
            "stream",
            st,
            pp,
            &slots[cells.len()],
        ));
    }

    let (vals, report) =
        runner::run_cells_with_plan("cmt", scale, cells, Some(cmt_fault_plan().to_json()));

    // Grid rows: mean throughput over seeds, counters from the first seed
    // (each seed is independently replayable from its cell label).
    let mut stream: Vec<CmtRow> = Vec::new();
    let mut pingpong_rows: Vec<CmtRow> = Vec::new();
    for (i, &(workload, paths, cmt, loss)) in specs.iter().enumerate() {
        let base = i * runs;
        let tput = mean(&vals[base..base + runs]);
        let r = slots[base].lock().unwrap().expect("cell not run");
        let row = CmtRow {
            workload,
            paths,
            cmt,
            loss,
            mb_per_s: tput / 1e6,
            per_path_pkts: r.sctp.per_path_pkts[..paths as usize].to_vec(),
            timeouts: r.sctp.timeouts,
            fast_rtx: r.sctp.fast_retransmits,
            rescue_rtx: r.sctp.rescue_rtx,
            spurious_frtx: r.sctp.spurious_frtx,
        };
        if workload == "stream" {
            stream.push(row);
        } else {
            pingpong_rows.push(row);
        }
    }
    let gbase = specs.len() * runs;
    let bufs: Vec<CmtBufRow> = bufs_kb
        .iter()
        .enumerate()
        .map(|(j, &kb)| CmtBufRow { sndbuf_kb: kb, mb_per_s: vals[gbase + j].value / 1e6 })
        .collect();
    let fbase = gbase + bufs_kb.len();
    let fault: Vec<CmtFaultRow> = [false, true]
        .iter()
        .enumerate()
        .map(|(j, &cmt)| {
            let r = slots[fbase + j].lock().unwrap().expect("cell not run");
            CmtFaultRow {
                cmt,
                secs: r.secs,
                mb_per_s: r.throughput / 1e6,
                failovers: r.sctp.failovers,
                rescue_rtx: r.sctp.rescue_rtx,
            }
        })
        .collect();

    // Acceptance shape (A5): CMT must aggregate, and never invert.
    let get = |paths: u8, cmt: bool, loss: f64| {
        stream
            .iter()
            .find(|r| r.paths == paths && r.cmt == cmt && r.loss == loss)
            .expect("stream cell present")
    };
    for &loss in &stream_losses {
        let single = get(1, false, loss);
        let striped = get(3, true, loss);
        assert!(
            striped.mb_per_s >= single.mb_per_s,
            "CMT must never lose to single-path: loss={loss} {:.1} vs {:.1} MB/s",
            striped.mb_per_s,
            single.mb_per_s
        );
    }
    let agg = get(3, true, 0.0).mb_per_s / get(1, false, 0.0).mb_per_s;
    assert!(
        agg >= CMT_AGG_MIN,
        "3-path CMT must aggregate ≥{CMT_AGG_MIN}× at 0% loss, got {agg:.2}×"
    );
    for r in &stream {
        // SFR quality: cross-path reordering must not masquerade as loss.
        assert!(
            r.spurious_frtx <= r.fast_rtx / 4 + 4,
            "spurious fast-rtx out of band: {r:?}"
        );
    }
    for &loss in &pp_losses {
        let (single, striped) = (
            pingpong_rows.iter().find(|r| r.paths == 1 && r.loss == loss).unwrap(),
            pingpong_rows.iter().find(|r| r.cmt && r.loss == loss).unwrap(),
        );
        assert!(
            striped.mb_per_s >= single.mb_per_s,
            "ping-pong CMT inversion at loss={loss}: {:.1} vs {:.1} MB/s",
            striped.mb_per_s,
            single.mb_per_s
        );
    }

    (CmtResults { stream, pingpong: pingpong_rows, bufs, fault }, report)
}

// ---------------------------------------------------------------------------
// E-scale — incast fan-in and many-tenant fabrics on the sharded engine
// ---------------------------------------------------------------------------

/// One row of the incast figure: N synchronized senders into one victim.
#[derive(Debug, Clone)]
pub struct IncastRow {
    pub senders: u32,
    pub block_kb: u64,
    /// Aggregate goodput over the run, Mb/s (1 Gb/s downlink is the ceiling).
    pub goodput_mbps: f64,
    /// Completion instant of the last flow, ms.
    pub last_done_ms: f64,
    /// Tail drops at the victim downlink — the collapse signal.
    pub drops_queue: u64,
    pub timeouts: u64,
    pub retrans: u64,
    pub fast_rtx: u64,
}

impl_to_json!(IncastRow {
    senders,
    block_kb,
    goodput_mbps,
    last_done_ms,
    drops_queue,
    timeouts,
    retrans,
    fast_rtx,
});

/// One row of the many-tenant figure.
#[derive(Debug, Clone)]
pub struct TenantRow {
    pub tenants: u32,
    pub servers: u32,
    pub block_kb: u64,
    pub completion_p50_ms: f64,
    pub completion_p99_ms: f64,
    pub goodput_mbps: f64,
    pub drops_queue: u64,
    pub timeouts: u64,
}

impl_to_json!(TenantRow {
    tenants,
    servers,
    block_kb,
    completion_p50_ms,
    completion_p99_ms,
    goodput_mbps,
    drops_queue,
    timeouts,
});

/// Wrap one `run_scale` invocation as a harness cell, parking the full
/// [`ScaleResult`] in `slot` (the row builders need counters the runner's
/// `Measured` can't carry). `value` = aggregate goodput, `aux` = queue
/// drops — both partition-invariant, so `SIM_CHECK=1` (which forces the
/// reference run onto one shard) cross-checks the sharded engine against
/// the sequential discipline bit for bit.
fn scale_cell<'a>(
    label: String,
    cfg: ScaleCfg,
    shards: usize,
    payload_bytes: u64,
    expect_flows: u32,
    slot: &'a std::sync::Mutex<Option<ScaleResult>>,
) -> Cell<'a> {
    Cell::new(label, move || {
        let r = run_scale(cfg.clone(), shards);
        assert_eq!(r.completed, expect_flows, "every flow must complete");
        let mut m = Measured::new(r.goodput_mbps(payload_bytes), r.end_ns as f64 / 1e9, r.events)
            .with_burst_meters(0, 0, r.wheel_hits, r.heap_falls)
            .with_shard_meters(r.shards as u64, r.epochs, r.cross_shard_pkts, r.lookahead_ns);
        m.aux = r.drops_queue;
        *slot.lock().unwrap() = Some(r);
        m
    })
}

/// Percentile (nearest-rank) over per-flow completion instants, ms.
fn completion_pct_ms(done_ns: &[u64], pct: f64) -> f64 {
    let mut v: Vec<u64> = done_ns.to_vec();
    v.sort_unstable();
    if v.is_empty() {
        return 0.0;
    }
    let ix = ((pct / 100.0 * v.len() as f64).ceil() as usize).clamp(1, v.len()) - 1;
    v[ix] as f64 / 1e6
}

/// The incast sweep: synchronized N→1 fan-in at 1 Gb/s, N up to 1024.
/// Worker count comes from the `SHARDS` env var (default sequential);
/// results are bit-identical at any value.
pub fn incast_metered(scale: Scale) -> (Vec<IncastRow>, BenchReport) {
    use std::sync::Mutex;
    let shards = runner::shards() as usize;
    let (sweep, block): (Vec<u32>, u64) = match scale {
        Scale::Paper => (vec![64, 256, 1024], 256 * 1024),
        Scale::Quick => (vec![64, 256, 1024], 16 * 1024),
    };
    let slots: Vec<Mutex<Option<ScaleResult>>> = sweep.iter().map(|_| Mutex::new(None)).collect();
    let cells: Vec<Cell<'_>> = sweep
        .iter()
        .zip(&slots)
        .map(|(&n, slot)| {
            scale_cell(
                format!("senders={n} block={block} shards={shards}"),
                ScaleCfg::incast(n, block, SEED_BASE),
                shards,
                n as u64 * block,
                n,
                slot,
            )
        })
        .collect();
    let (_, report) = runner::run_cells("incast", scale, cells);
    let rows = sweep
        .iter()
        .zip(&slots)
        .map(|(&n, slot)| {
            let r = slot.lock().unwrap().take().expect("cell not run");
            IncastRow {
                senders: n,
                block_kb: block / 1024,
                goodput_mbps: r.goodput_mbps(n as u64 * block),
                last_done_ms: r.last_done_ns as f64 / 1e6,
                drops_queue: r.drops_queue,
                timeouts: r.timeouts,
                retrans: r.retrans,
                fast_rtx: r.fast_rtx,
            }
        })
        .collect();
    (rows, report)
}

pub fn incast(scale: Scale) -> Vec<IncastRow> {
    incast_metered(scale).0
}

/// The many-tenant sweep: T staggered flows share S receivers round-robin.
pub fn tenants_metered(scale: Scale) -> (Vec<TenantRow>, BenchReport) {
    use std::sync::Mutex;
    let shards = runner::shards() as usize;
    let (sweep, servers, block): (Vec<u32>, u32, u64) = match scale {
        Scale::Paper => (vec![256, 1024], 32, 128 * 1024),
        Scale::Quick => (vec![64, 256], 8, 16 * 1024),
    };
    let stagger = simcore::Dur::from_micros(50);
    let slots: Vec<Mutex<Option<ScaleResult>>> = sweep.iter().map(|_| Mutex::new(None)).collect();
    let cells: Vec<Cell<'_>> = sweep
        .iter()
        .zip(&slots)
        .map(|(&t, slot)| {
            scale_cell(
                format!("tenants={t} servers={servers} block={block} shards={shards}"),
                ScaleCfg::tenants(t, servers, block, stagger, SEED_BASE),
                shards,
                t as u64 * block,
                t,
                slot,
            )
        })
        .collect();
    let (_, report) = runner::run_cells("tenants", scale, cells);
    let rows = sweep
        .iter()
        .zip(&slots)
        .map(|(&t, slot)| {
            let r = slot.lock().unwrap().take().expect("cell not run");
            TenantRow {
                tenants: t,
                servers,
                block_kb: block / 1024,
                completion_p50_ms: completion_pct_ms(&r.flow_done_ns, 50.0),
                completion_p99_ms: completion_pct_ms(&r.flow_done_ns, 99.0),
                goodput_mbps: r.goodput_mbps(t as u64 * block),
                drops_queue: r.drops_queue,
                timeouts: r.timeouts,
            }
        })
        .collect();
    (rows, report)
}

pub fn tenants(scale: Scale) -> Vec<TenantRow> {
    tenants_metered(scale).0
}

// ---------------------------------------------------------------------------
// A2 — Option A vs Option B (long-message race fixes, §3.4)
// ---------------------------------------------------------------------------

#[derive(Debug, Clone)]
pub struct RaceRow {
    pub loss: f64,
    pub option_a_secs: f64,
    pub option_b_secs: f64,
}

impl_to_json!(RaceRow { loss, option_a_secs, option_b_secs });

pub fn ablate_race_metered(scale: Scale) -> (Vec<RaceRow>, BenchReport) {
    let mut cells = Vec::new();
    let losses = [0.0, 0.01];
    for &loss in &losses {
        let cfg = farm_cfg(scale, 300 * 1024, 10);
        for (name, fix) in [("A", RaceFix::OptionA), ("B", RaceFix::OptionB)] {
            let mut m = MpiCfg::sctp(8, loss).with_seed(SEED_BASE);
            m.transport =
                TransportSel::Sctp { streams: 10, race_fix: fix, ctx_map: ContextMap::StreamHash };
            cells.push(farm_cell(format!("loss={loss} option={name}"), m, cfg));
        }
    }
    let (vals, report) = runner::run_cells("ablate_race", scale, cells);
    let rows = losses
        .iter()
        .zip(vals.chunks_exact(2))
        .map(|(&loss, pair)| RaceRow {
            loss,
            option_a_secs: pair[0].value,
            option_b_secs: pair[1].value,
        })
        .collect();
    (rows, report)
}

pub fn ablate_race(scale: Scale) -> Vec<RaceRow> {
    ablate_race_metered(scale).0
}

// ---------------------------------------------------------------------------
// Rendering + result persistence
// ---------------------------------------------------------------------------

/// Render a text table: header + rows of equal arity.
pub fn render_table(title: &str, header: &[&str], rows: &[Vec<String>]) -> String {
    let mut widths: Vec<usize> = header.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            widths[i] = widths[i].max(cell.len());
        }
    }
    let mut out = String::new();
    out.push_str(&format!("== {title} ==\n"));
    let line = |cells: Vec<String>, widths: &[usize]| {
        let mut s = String::new();
        for (i, c) in cells.iter().enumerate() {
            s.push_str(&format!("{:>w$}  ", c, w = widths[i]));
        }
        s.trim_end().to_string() + "\n"
    };
    out.push_str(&line(header.iter().map(|s| s.to_string()).collect(), &widths));
    for row in rows {
        out.push_str(&line(row.clone(), &widths));
    }
    out
}

/// Write a JSON record of the experiment next to the binary output.
pub fn save_json<T: ToJson + ?Sized>(name: &str, rows: &T) {
    let dir = std::path::Path::new("results");
    if std::fs::create_dir_all(dir).is_ok() {
        let path = dir.join(format!("{name}.json"));
        let _ = std::fs::write(path, rows.to_json().render() + "\n");
    }
}

/// Human-readable byte sizes for table cells.
pub fn human_size(n: usize) -> String {
    if n >= 1024 && n.is_multiple_of(1024) {
        format!("{}K", n / 1024)
    } else {
        format!("{n}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn render_table_aligns_columns() {
        let t = render_table(
            "T",
            &["a", "bbbb"],
            &[vec!["1".into(), "2".into()], vec!["333".into(), "4".into()]],
        );
        assert!(t.contains("== T =="));
        let lines: Vec<&str> = t.lines().collect();
        assert_eq!(lines.len(), 4);
        assert_eq!(lines[1].len(), lines[2].len());
    }

    #[test]
    fn crossover_finder() {
        let rows = vec![
            Fig8Row { size: 1, tcp_tput: 2.0, sctp_tput: 1.0, normalized: 0.5 },
            Fig8Row { size: 1000, tcp_tput: 2.0, sctp_tput: 2.2, normalized: 1.1 },
        ];
        assert_eq!(fig8_crossover(&rows), Some(1000));
        assert_eq!(fig8_crossover(&rows[..1]), None);
    }

    #[test]
    fn human_sizes() {
        assert_eq!(human_size(30 * 1024), "30K");
        assert_eq!(human_size(100), "100");
    }

    #[test]
    fn completion_percentiles() {
        let v = [4_000_000u64, 1_000_000, 3_000_000, 2_000_000];
        assert_eq!(completion_pct_ms(&v, 50.0), 2.0);
        assert_eq!(completion_pct_ms(&v, 99.0), 4.0);
        assert_eq!(completion_pct_ms(&v, 100.0), 4.0);
        assert_eq!(completion_pct_ms(&[], 50.0), 0.0);
    }

    #[test]
    fn row_types_serialize() {
        let row = FarmRow {
            task_bytes: 30720,
            fanout: 10,
            loss: 0.01,
            sctp_secs: 1.0,
            tcp_secs: 2.0,
            tcp_era_secs: 3.0,
            ratio_tcp_over_sctp: 2.0,
            ratio_era: 3.0,
            unexpected_peak: 7,
        };
        let s = vec![row].to_json().render();
        assert!(s.contains("\"unexpected_peak\": 7"));
        assert!(s.contains("\"loss\": 0.01"));
    }
}
