//! Shared experiment-harness machinery: each figure/table of the paper has
//! a row type, a generator, and a text renderer. The `fig*`/`table*`
//! binaries print the full paper-scale results; the Criterion benches in
//! `benches/` run scaled-down versions of the same generators.
//!
//! The `probe_*` binaries (`probe_nas`, `probe_farm`, `probe_era`) are
//! diagnostic tools: one workload, one transport, full transport counters —
//! used with the env-gated traces documented in the `transport` crate.

use mpi_core::{ContextMap, MpiCfg, RaceFix, TransportSel};
use serde::Serialize;
use workloads::farm::{self, FarmCfg};
use workloads::nas::{self, Class, Kernel};
use workloads::pingpong::{self, PingPongCfg};

/// How much of the paper-scale workload to run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scale {
    /// Full paper-scale runs (the `fig*` binaries' default).
    Paper,
    /// Reduced iteration counts for CI / Criterion.
    Quick,
}

impl Scale {
    pub fn from_args() -> Scale {
        if std::env::args().any(|a| a == "--quick") {
            Scale::Quick
        } else {
            Scale::Paper
        }
    }
}

/// Averages `runs` deterministic runs over distinct seeds (the paper runs
/// each farm configuration six times and reports the mean).
pub fn mean_over_seeds(runs: u64, mut f: impl FnMut(u64) -> f64) -> f64 {
    let total: f64 = (0..runs).map(|s| f(0xBA5E + s)).sum();
    total / runs as f64
}

// ---------------------------------------------------------------------------
// E1 — Figure 8: ping-pong throughput vs message size, no loss
// ---------------------------------------------------------------------------

#[derive(Debug, Clone, Serialize)]
pub struct Fig8Row {
    pub size: usize,
    pub tcp_tput: f64,
    pub sctp_tput: f64,
    /// SCTP throughput normalized to TCP (the paper's y-axis).
    pub normalized: f64,
}

/// The paper sweeps message sizes 1 B .. 128 KB.
pub fn fig8_sizes(scale: Scale) -> Vec<usize> {
    let full = vec![
        1, 16, 64, 256, 1024, 4096, 8192, 16384, 22528, 32768, 49152, 65535, 98302, 131069,
    ];
    match scale {
        Scale::Paper => full,
        Scale::Quick => vec![64, 4096, 22528, 131069],
    }
}

pub fn fig8(scale: Scale) -> Vec<Fig8Row> {
    let iters = match scale {
        Scale::Paper => 200,
        Scale::Quick => 20,
    };
    fig8_sizes(scale)
        .into_iter()
        .map(|size| {
            let pp = PingPongCfg { size, iters };
            let tcp = pingpong::run(MpiCfg::tcp(2, 0.0), pp).throughput;
            let sctp = pingpong::run(MpiCfg::sctp(2, 0.0), pp).throughput;
            Fig8Row { size, tcp_tput: tcp, sctp_tput: sctp, normalized: sctp / tcp }
        })
        .collect()
}

/// The message size at which SCTP first matches TCP (paper: ≈ 22 KB).
pub fn fig8_crossover(rows: &[Fig8Row]) -> Option<usize> {
    rows.iter().find(|r| r.normalized >= 1.0).map(|r| r.size)
}

// ---------------------------------------------------------------------------
// E2 — Table 1: ping-pong under loss
// ---------------------------------------------------------------------------

#[derive(Debug, Clone, Serialize)]
pub struct Table1Row {
    pub size: usize,
    pub loss: f64,
    pub sctp_tput: f64,
    pub tcp_tput: f64,
    /// TCP without scoreboard recovery (the paper-era stack).
    pub tcp_era_tput: f64,
    pub ratio: f64,
    pub ratio_era: f64,
}

pub fn table1(scale: Scale) -> Vec<Table1Row> {
    let iters = match scale {
        Scale::Paper => 120,
        Scale::Quick => 8,
    };
    let runs = match scale {
        Scale::Paper => 5, // the paper averages six runs; five keeps the
        // era-TCP cells (80+ simulated seconds each) tractable
        Scale::Quick => 1,
    };
    let mut rows = Vec::new();
    for &size in &[30 * 1024, 300 * 1024] {
        for &loss in &[0.01, 0.02] {
            let pp = PingPongCfg { size, iters };
            let sctp = mean_over_seeds(runs, |s| {
                pingpong::run(MpiCfg::sctp(2, loss).with_seed(s), pp).throughput
            });
            let tcp = mean_over_seeds(runs, |s| {
                pingpong::run(MpiCfg::tcp(2, loss).with_seed(s), pp).throughput
            });
            let tcp_era = mean_over_seeds(runs, |s| {
                pingpong::run(MpiCfg::tcp_era(2, loss).with_seed(s), pp).throughput
            });
            rows.push(Table1Row {
                size,
                loss,
                sctp_tput: sctp,
                tcp_tput: tcp,
                tcp_era_tput: tcp_era,
                ratio: sctp / tcp,
                ratio_era: sctp / tcp_era,
            });
        }
    }
    rows
}

// ---------------------------------------------------------------------------
// E3 — Figure 9: NAS kernels, class B (plus the other classes)
// ---------------------------------------------------------------------------

#[derive(Debug, Clone, Serialize)]
pub struct Fig9Row {
    pub kernel: &'static str,
    pub class: &'static str,
    pub sctp_mops: f64,
    pub tcp_mops: f64,
    pub ratio: f64,
}

pub fn fig9(scale: Scale, class: Class) -> Vec<Fig9Row> {
    let class = match scale {
        Scale::Paper => class,
        Scale::Quick => Class::S,
    };
    Kernel::ALL
        .iter()
        .map(|&k| {
            let sctp = nas::run(MpiCfg::sctp(8, 0.0), k, class).mops_per_sec;
            let tcp = nas::run(MpiCfg::tcp(8, 0.0), k, class).mops_per_sec;
            Fig9Row {
                kernel: k.name(),
                class: class.name(),
                sctp_mops: sctp,
                tcp_mops: tcp,
                ratio: sctp / tcp,
            }
        })
        .collect()
}

// ---------------------------------------------------------------------------
// E4/E5 — Figures 10 & 11: the Bulk Processor Farm
// ---------------------------------------------------------------------------

#[derive(Debug, Clone, Serialize)]
pub struct FarmRow {
    pub task_bytes: usize,
    pub fanout: u32,
    pub loss: f64,
    pub sctp_secs: f64,
    pub tcp_secs: f64,
    /// TCP without scoreboard recovery (the paper-era stack).
    pub tcp_era_secs: f64,
    pub ratio_tcp_over_sctp: f64,
    pub ratio_era: f64,
}

pub fn farm_cfg(scale: Scale, task_bytes: usize, fanout: u32) -> FarmCfg {
    match scale {
        // 2 000 of the paper's 10 000 tasks: run times scale ~linearly in
        // task count, so compare the paper's totals divided by 5; the
        // TCP/SCTP *ratios* are task-count invariant. (10 000 tasks of
        // era-TCP at 2 % loss would run for hours of wall time.)
        Scale::Paper => FarmCfg { num_tasks: 2_000, ..FarmCfg::paper(task_bytes, fanout) },
        Scale::Quick => FarmCfg::small(task_bytes, fanout),
    }
}

pub fn farm_figure(scale: Scale, fanout: u32) -> Vec<FarmRow> {
    let runs = match scale {
        Scale::Paper => 3,
        Scale::Quick => 1,
    };
    let mut rows = Vec::new();
    for &task_bytes in &[30 * 1024, 300 * 1024] {
        for &loss in &[0.0, 0.01, 0.02] {
            let cfg = farm_cfg(scale, task_bytes, fanout);
            eprintln!("[farm fanout={fanout}] task={task_bytes} loss={loss}: sctp...");
            let sctp = mean_over_seeds(runs, |s| {
                farm::run(MpiCfg::sctp(8, loss).with_seed(s), cfg).secs
            });
            eprintln!("[farm fanout={fanout}] task={task_bytes} loss={loss}: tcp...");
            let tcp = mean_over_seeds(runs, |s| {
                farm::run(MpiCfg::tcp(8, loss).with_seed(s), cfg).secs
            });
            eprintln!("[farm fanout={fanout}] task={task_bytes} loss={loss}: tcp-era...");
            let tcp_era = mean_over_seeds(runs, |s| {
                farm::run(MpiCfg::tcp_era(8, loss).with_seed(s), cfg).secs
            });
            rows.push(FarmRow {
                task_bytes,
                fanout,
                loss,
                sctp_secs: sctp,
                tcp_secs: tcp,
                tcp_era_secs: tcp_era,
                ratio_tcp_over_sctp: tcp / sctp,
                ratio_era: tcp_era / sctp,
            });
        }
    }
    rows
}

// ---------------------------------------------------------------------------
// E6 — Figure 12: 10 streams vs 1 stream (HOL isolation)
// ---------------------------------------------------------------------------

#[derive(Debug, Clone, Serialize)]
pub struct Fig12Row {
    pub task_bytes: usize,
    pub loss: f64,
    pub streams10_secs: f64,
    pub stream1_secs: f64,
    pub ratio_1_over_10: f64,
}

pub fn fig12(scale: Scale) -> Vec<Fig12Row> {
    let runs = match scale {
        Scale::Paper => 3,
        Scale::Quick => 1,
    };
    let fanout = 10;
    let mut rows = Vec::new();
    for &task_bytes in &[30 * 1024, 300 * 1024] {
        for &loss in &[0.0, 0.01, 0.02] {
            let cfg = farm_cfg(scale, task_bytes, fanout);
            let ten = mean_over_seeds(runs, |s| {
                farm::run(MpiCfg::sctp(8, loss).with_seed(s), cfg).secs
            });
            let one = mean_over_seeds(runs, |s| {
                farm::run(MpiCfg::sctp_single_stream(8, loss).with_seed(s), cfg).secs
            });
            rows.push(Fig12Row {
                task_bytes,
                loss,
                streams10_secs: ten,
                stream1_secs: one,
                ratio_1_over_10: one / ten,
            });
        }
    }
    rows
}

// ---------------------------------------------------------------------------
// A2 — Option A vs Option B (long-message race fixes, §3.4)
// ---------------------------------------------------------------------------

#[derive(Debug, Clone, Serialize)]
pub struct RaceRow {
    pub loss: f64,
    pub option_a_secs: f64,
    pub option_b_secs: f64,
}

pub fn ablate_race(scale: Scale) -> Vec<RaceRow> {
    let mut rows = Vec::new();
    for &loss in &[0.0, 0.01] {
        let cfg = farm_cfg(scale, 300 * 1024, 10);
        let mk = |fix: RaceFix, seed: u64| {
            let mut m = MpiCfg::sctp(8, loss).with_seed(seed);
            m.transport = TransportSel::Sctp { streams: 10, race_fix: fix, ctx_map: ContextMap::StreamHash };
            farm::run(m, cfg).secs
        };
        rows.push(RaceRow {
            loss,
            option_a_secs: mk(RaceFix::OptionA, 0xBA5E),
            option_b_secs: mk(RaceFix::OptionB, 0xBA5E),
        });
    }
    rows
}

// ---------------------------------------------------------------------------
// Rendering + result persistence
// ---------------------------------------------------------------------------

/// Render a text table: header + rows of equal arity.
pub fn render_table(title: &str, header: &[&str], rows: &[Vec<String>]) -> String {
    let mut widths: Vec<usize> = header.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            widths[i] = widths[i].max(cell.len());
        }
    }
    let mut out = String::new();
    out.push_str(&format!("== {title} ==\n"));
    let line = |cells: Vec<String>, widths: &[usize]| {
        let mut s = String::new();
        for (i, c) in cells.iter().enumerate() {
            s.push_str(&format!("{:>w$}  ", c, w = widths[i]));
        }
        s.trim_end().to_string() + "\n"
    };
    out.push_str(&line(header.iter().map(|s| s.to_string()).collect(), &widths));
    for row in rows {
        out.push_str(&line(row.clone(), &widths));
    }
    out
}

/// Write a JSON record of the experiment next to the binary output.
pub fn save_json<T: Serialize>(name: &str, rows: &T) {
    let dir = std::path::Path::new("results");
    if std::fs::create_dir_all(dir).is_ok() {
        let path = dir.join(format!("{name}.json"));
        if let Ok(s) = serde_json::to_string_pretty(rows) {
            let _ = std::fs::write(path, s);
        }
    }
}

/// Human-readable byte sizes for table cells.
pub fn human_size(n: usize) -> String {
    if n >= 1024 && n.is_multiple_of(1024) {
        format!("{}K", n / 1024)
    } else {
        format!("{n}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn render_table_aligns_columns() {
        let t = render_table(
            "T",
            &["a", "bbbb"],
            &[vec!["1".into(), "2".into()], vec!["333".into(), "4".into()]],
        );
        assert!(t.contains("== T =="));
        let lines: Vec<&str> = t.lines().collect();
        assert_eq!(lines.len(), 4);
        assert_eq!(lines[1].len(), lines[2].len());
    }

    #[test]
    fn crossover_finder() {
        let rows = vec![
            Fig8Row { size: 1, tcp_tput: 2.0, sctp_tput: 1.0, normalized: 0.5 },
            Fig8Row { size: 1000, tcp_tput: 2.0, sctp_tput: 2.2, normalized: 1.1 },
        ];
        assert_eq!(fig8_crossover(&rows), Some(1000));
        assert_eq!(fig8_crossover(&rows[..1]), None);
    }

    #[test]
    fn human_sizes() {
        assert_eq!(human_size(30 * 1024), "30K");
        assert_eq!(human_size(100), "100");
    }
}
