//! **Ablation A1** — the SCTP congestion-control features §4.1.1 credits
//! for its loss resilience: unlimited SACK gap blocks and byte-counting
//! cwnd growth. Each variant runs the lossy ping-pong of Table 1.
//!
//! Usage: `ablate_cc [--quick]`

use bench_harness::{mean_over_seeds, render_table, save_json, Scale};
use mpi_core::MpiCfg;
use workloads::pingpong::{run, PingPongCfg};

struct Row {
    variant: &'static str,
    loss: f64,
    tput: f64,
}

bench_harness::impl_to_json!(Row { variant, loss, tput });

fn main() {
    let scale = Scale::from_args();
    let (iters, runs) = match scale {
        Scale::Paper => (150, 4),
        Scale::Quick => (10, 1),
    };
    let pp = PingPongCfg { size: 300 * 1024, iters };
    let mut rows = Vec::new();
    for loss in [0.01, 0.02] {
        for (variant, gaps, byte_cc, crc) in [
            ("full SCTP", usize::MAX, true, false),
            ("3 gap blocks (TCP-like SACK)", 3usize, true, false),
            ("ack-counting cwnd", usize::MAX, false, false),
            ("both limits", 3, false, false),
            ("CRC32c enabled (SW checksum, §3.6)", usize::MAX, true, true),
        ] {
            let tput = mean_over_seeds(runs, |s| {
                let mut m = MpiCfg::sctp(2, loss).with_seed(s);
                m.sctp.max_gap_blocks = gaps;
                m.sctp.byte_counting_cc = byte_cc;
                m.sctp.crc_enabled = crc;
                run(m, pp).throughput
            });
            rows.push(Row { variant, loss, tput });
        }
    }
    let table: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![r.variant.to_string(), format!("{:.0}%", r.loss * 100.0), format!("{:.0}", r.tput)]
        })
        .collect();
    print!(
        "{}",
        render_table(
            "Ablation A1: SCTP CC features under loss (300K ping-pong, B/s)",
            &["variant", "loss", "throughput"],
            &table,
        )
    );
    println!("note: effects are modest and workload-dependent in this reproduction — the");
    println!("      headline SCTP wins come from HOL elimination and recovery structure");
    save_json(&scale.tag("ablate_cc"), &rows);
}
