//! **E-scale** — many-tenant fabric sharing on the sharded engine: T
//! staggered flows (up to 1024 tenants) share S server downlinks
//! round-robin. The tail of the completion distribution — p99 vs p50 —
//! is the multi-tenant interference signal.
//!
//! `SHARDS=<n>` partitions the nodes across n worker threads; output is
//! bit-identical at any value (`SIM_CHECK=1` cross-checks against the
//! sequential discipline).
//!
//! Usage: `[SHARDS=n] tenants [--quick]`

use bench_harness::{render_table, save_json, tenants_metered, Scale};

fn main() {
    let scale = Scale::from_args();
    let (rows, bench) = tenants_metered(scale);
    let table: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.tenants.to_string(),
                r.servers.to_string(),
                format!("{}K", r.block_kb),
                format!("{:.2}", r.completion_p50_ms),
                format!("{:.2}", r.completion_p99_ms),
                format!("{:.1}", r.goodput_mbps),
                r.drops_queue.to_string(),
                r.timeouts.to_string(),
            ]
        })
        .collect();
    print!(
        "{}",
        render_table(
            "E-scale: many-tenant sharing, T flows over S servers",
            &["tenants", "servers", "block", "p50 ms", "p99 ms", "goodput Mb/s", "qdrops", "RTOs"],
            &table,
        )
    );
    println!("expected: the p99/p50 gap widens with tenant count (queue-share interference)");
    save_json(&scale.tag("tenants"), &rows);
    bench.save();
    eprintln!("{}", bench.summary());
}
