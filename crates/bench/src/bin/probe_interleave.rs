//! Diagnostic probe: the mixed-size farm with full stream-machinery stats.
//!
//! Runs the sender-HOL study workload once with the flight recorder forced
//! on and prints the per-side HOL accounting plus the PR-SCTP counters.
//! The scheduler comes from the `SCTP_SCHED` env knob (`fcfs` | `rr` |
//! `wfq` | `prio`; unknown values fall back to FCFS), so one shell loop
//! compares all four:
//!
//! ```sh
//! for s in fcfs rr wfq prio; do SCTP_SCHED=$s probe_interleave 0.01; done
//! ```
//!
//! Usage: `probe_interleave [loss] [tasks] [--nointl]`

use mpi_core::MpiCfg;
use workloads::mixed::{self, MixedCfg};

fn main() {
    let loss: f64 = std::env::args().nth(1).and_then(|s| s.parse().ok()).unwrap_or(0.0);
    let tasks: u32 = std::env::args().nth(2).and_then(|s| s.parse().ok()).unwrap_or(500);
    let interleave = !std::env::args().any(|a| a == "--nointl");
    let seed: u64 =
        std::env::var("FARM_SEED").ok().and_then(|x| x.parse().ok()).unwrap_or(7);

    let cfg = MpiCfg::sctp(8, loss)
        .with_seed(seed)
        .with_interleave(interleave)
        .with_sched_from_env();
    let sched = cfg.sctp.sched.name();
    let r = mixed::run_traced(cfg, MixedCfg::default_mix(tasks));

    println!(
        "mixed farm: loss={loss} tasks={tasks} interleave={interleave} sched={sched}"
    );
    println!(
        "  sim={:.3}s events={} tasks_done={}",
        r.result.secs, r.result.events, r.result.tasks_done
    );
    println!(
        "  hol snd: {} blocks {:.3} ms | hol rcv: {} blocks {:.3} ms",
        r.snd_hol_blocks,
        r.snd_hol_ns as f64 / 1e6,
        r.rcv_hol_blocks,
        r.rcv_hol_ns as f64 / 1e6,
    );
    println!(
        "  pr-sctp: abandoned={} fwd_tsn_out={}",
        r.result.msgs_abandoned, r.result.fwd_tsn_out
    );
}
