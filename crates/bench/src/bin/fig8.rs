//! **Figure 8** — MPBench ping-pong throughput, no loss, SCTP normalized
//! to TCP, message sizes 1 B … 128 KB. Paper: TCP wins below ≈ 22 KB, SCTP
//! wins above.
//!
//! Usage: `fig8 [--quick]`

use bench_harness::{fig8_crossover, fig8_metered, human_size, render_table, save_json, Scale};

fn main() {
    let scale = Scale::from_args();
    let (rows, bench) = fig8_metered(scale);
    let table: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                human_size(r.size),
                format!("{:.0}", r.tcp_tput),
                format!("{:.0}", r.sctp_tput),
                format!("{:.3}", r.normalized),
            ]
        })
        .collect();
    print!(
        "{}",
        render_table(
            "Figure 8: ping-pong throughput, 0% loss (SCTP normalized to TCP)",
            &["size", "TCP B/s", "SCTP B/s", "SCTP/TCP"],
            &table,
        )
    );
    match fig8_crossover(&rows) {
        Some(size) => println!("crossover (SCTP >= TCP) at ~{} (paper: ~22K)", human_size(size)),
        None => println!("no crossover found in the sweep (paper: ~22K)"),
    }
    save_json(&scale.tag("fig8"), &rows);
    bench.save();
    eprintln!("{}", bench.summary());
}
