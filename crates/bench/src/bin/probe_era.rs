//! Diagnostic: era-TCP ping-pong and farm under loss.
use mpi_core::MpiCfg;
use workloads::pingpong::{run, PingPongCfg};

fn main() {
    if std::env::args().any(|a| a == "--burst-sweep") {
        for burst in [4u32, 8, 12, 16, u32::MAX] {
            let mut m = MpiCfg::sctp(2, 0.0);
            m.sctp.max_burst = burst;
            let r = run(m, PingPongCfg { size: 22528, iters: 100 });
            let mut m2 = MpiCfg::sctp(2, 0.0);
            m2.sctp.max_burst = burst;
            let r2 = run(m2.with_seed(3), PingPongCfg { size: 131069, iters: 100 });
            let mut mf = MpiCfg::sctp(8, 0.01).with_seed(0xBA5E);
            mf.sctp.max_burst = burst;
            let f = workloads::farm::run(mf, workloads::farm::FarmCfg::small(307200, 10));
            let mut mf0 = MpiCfg::sctp(8, 0.0).with_seed(0xBA5E);
            mf0.sctp.max_burst = burst;
            let f0 = workloads::farm::run(mf0, workloads::farm::FarmCfg::small(307200, 10));
            println!("burst={burst:>10}: pp22K={:.1}MB/s pp128K={:.1}MB/s farm-long@1%={:.2}s farm-long@0%={:.2}s",
                r.throughput / 1e6, r2.throughput / 1e6, f.secs, f0.secs);
        }
        return;
    }
    let loss: f64 = std::env::args().nth(1).and_then(|s| s.parse().ok()).unwrap_or(0.02);
    let size: usize = std::env::args().nth(2).and_then(|s| s.parse().ok()).unwrap_or(300 * 1024);
    if std::env::args().any(|a| a == "--farm") {
        let fanout: u32 = std::env::args().nth(3).and_then(|s| s.parse().ok()).unwrap_or(1);
        let cfg = workloads::farm::FarmCfg::small(size, fanout);
        let r = workloads::farm::run(MpiCfg::tcp_era(8, loss).with_seed(0xBA5E), cfg);
        println!("era farm {size}@{loss} fanout{fanout}: {:.3}s tasks={}", r.secs, r.tasks_done);
        return;
    }
    let r = run(MpiCfg::tcp_era(2, loss).with_seed(0xBA5E), PingPongCfg { size, iters: 20 });
    println!("era pingpong {size}@{loss}: {:.3}s tput={:.0}", r.secs, r.throughput);
}
