//! Diagnostic probe: one CMT bulk-stream (or ping-pong) cell with full
//! transport counters — the companion to `cmt` for dissecting a single
//! grid point. Stalls show up as a large gap between `sim` seconds and
//! `bytes/rate`; `SCTP_TRACE=1` prints the per-path timer/recovery edges.
//!
//! Usage: `probe_cmt [loss] [paths] [count] [seed] [bufs_kb]` plus flags:
//! `--nocmt` (multihomed without striping), `--pingpong` (strict
//! alternation instead of the one-way stream), `--flap` (run under the
//! `cmt` figure's fault-composition plan).

use bench_harness::{cmt_fault_plan, CMT_BUFS, CMT_STREAM_MSG};
use mpi_core::MpiCfg;
use workloads::pingpong::{run, run_stream, PingPongCfg, StreamCfg};

fn main() {
    let arg = |n: usize| std::env::args().nth(n);
    let loss: f64 = arg(1).and_then(|s| s.parse().ok()).unwrap_or(0.0);
    let paths: u8 = arg(2).and_then(|s| s.parse().ok()).unwrap_or(3);
    let count: u32 = arg(3).and_then(|s| s.parse().ok()).unwrap_or(256);
    let seed: u64 = arg(4).and_then(|s| s.parse().ok()).unwrap_or(bench_harness::SEED_BASE);
    let bufs: u64 = arg(5).and_then(|s| s.parse().ok()).map_or(CMT_BUFS, |kb: u64| kb * 1024);
    let cmt = !std::env::args().any(|a| a == "--nocmt") && paths > 1;

    let mut m = MpiCfg::sctp(2, loss).with_seed(seed).with_sctp_bufs(bufs, bufs).with_cmt(cmt);
    m.sctp.num_paths = paths;
    if std::env::args().any(|a| a == "--flap") {
        m.fault_plan = cmt_fault_plan();
    }
    let r = if std::env::args().any(|a| a == "--pingpong") {
        run(m, PingPongCfg { size: 220 * 1024 - 64, iters: count })
    } else {
        run_stream(m, StreamCfg { size: CMT_STREAM_MSG, count })
    };
    println!(
        "loss={loss} paths={paths} cmt={cmt} count={count} seed={seed:#x}: \
         {:.1} MB/s over {:.4}s sim ({} events)",
        r.throughput / 1e6,
        r.secs,
        r.events
    );
    println!(
        "  pkts/path={:?} rtx={} fast={} rescue={} spurious={} to={} failovers={}",
        r.sctp.per_path_pkts,
        r.sctp.retransmits,
        r.sctp.fast_retransmits,
        r.sctp.rescue_rtx,
        r.sctp.spurious_frtx,
        r.sctp.timeouts,
        r.sctp.failovers,
    );
    println!(
        "  dup_tsns_in={} sacks_in={} drops: loss={} queue={} down={}",
        r.sctp.dup_tsns_in,
        r.sctp.sacks_in,
        r.net.drops_loss,
        r.net.drops_queue,
        r.net.drops_down,
    );
}
