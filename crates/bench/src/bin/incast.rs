//! **E-scale** — synchronized incast fan-in on the sharded engine: N
//! senders (up to 1024) each push one block at the same instant into a
//! single 1 Gb/s victim downlink. The FIFO overflows, synchronized windows
//! collapse into RTO stalls, and goodput craters — the classic data-centre
//! incast signature, here at a rank count the sequential engine cannot
//! sweep in reasonable wall time.
//!
//! `SHARDS=<n>` partitions the nodes across n worker threads; the figure
//! output and every semantic counter are bit-identical at any value
//! (`SIM_CHECK=1` cross-checks against the sequential discipline).
//!
//! Usage: `[SHARDS=n] incast [--quick]`

use bench_harness::{incast_metered, render_table, save_json, Scale};

fn main() {
    let scale = Scale::from_args();
    let (rows, bench) = incast_metered(scale);
    let table: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.senders.to_string(),
                format!("{}K", r.block_kb),
                format!("{:.1}", r.goodput_mbps),
                format!("{:.2}", r.last_done_ms),
                r.drops_queue.to_string(),
                r.timeouts.to_string(),
                r.retrans.to_string(),
                r.fast_rtx.to_string(),
            ]
        })
        .collect();
    print!(
        "{}",
        render_table(
            "E-scale: incast fan-in, N -> 1 at 1 Gb/s",
            &["senders", "block", "goodput Mb/s", "done ms", "qdrops", "RTOs", "retrans", "fastrtx"],
            &table,
        )
    );
    println!("expected: goodput falls away from the 1 Gb/s line as N grows (incast collapse)");
    save_json(&scale.tag("incast"), &rows);
    bench.save();
    eprintln!("{}", bench.summary());
}
