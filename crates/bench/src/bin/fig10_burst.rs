//! **E-faults** — Figure 10 rerun under *bursty* loss: a Gilbert–Elliott
//! chain matched to the Bernoulli figure's 1 % / 2 % average rates
//! (bad-state loss 25 %, mean burst 8 packets) replaces the uniform pipe.
//! Compare against `results/fig10.json` at the same average rate to see
//! what loss *correlation* alone does to each transport.
//!
//! Usage: `fig10_burst [--quick]`

use bench_harness::{farm_burst_figure_metered, human_size, render_table, save_json, Scale};

fn main() {
    let scale = Scale::from_args();
    let (rows, bench) = farm_burst_figure_metered(scale, 1);
    let table: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                human_size(r.task_bytes),
                format!("{:.0}%", r.avg_loss * 100.0),
                format!("{:.1}", r.sctp_secs),
                format!("{:.1}", r.tcp_secs),
                format!("{:.1}", r.tcp_era_secs),
                format!("{:.2}x", r.ratio_tcp_over_sctp),
                format!("{:.2}x", r.ratio_era),
            ]
        })
        .collect();
    print!(
        "{}",
        render_table(
            "Fig 10 under bursty loss (GE, matched avg rate; total run time, s)",
            &["task", "avg", "SCTP s", "TCP s", "TCPera s", "TCP/SCTP", "era/SCTP"],
            &table,
        )
    );
    println!("compare: results/fig10.json rows at loss 1%/2% (independent losses)");
    save_json(&scale.tag("fig10_burst"), &rows);
    bench.save();
    eprintln!("{}", bench.summary());
}
