//! **Figure 10** — Bulk Processor Farm, Fanout 1: total run time for short
//! (30 KB) and long (300 KB) tasks at 0/1/2 % loss.
//!
//! Paper: short 5.9/79.9/131.5 s (TCP) vs 6.8/7.7/11.2 s (SCTP);
//!        long  83/2080/4311 s (TCP) vs 114/804/1595 s (SCTP).
//!
//! Usage: `fig10 [--quick]`

use bench_harness::{farm_figure_metered, human_size, render_table, save_json, Scale};

fn main() {
    let scale = Scale::from_args();
    let (rows, bench) = farm_figure_metered(scale, 1);
    let table: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                human_size(r.task_bytes),
                format!("{:.0}%", r.loss * 100.0),
                format!("{:.1}", r.sctp_secs),
                format!("{:.1}", r.tcp_secs),
                format!("{:.1}", r.tcp_era_secs),
                format!("{:.2}x", r.ratio_tcp_over_sctp),
                format!("{:.2}x", r.ratio_era),
            ]
        })
        .collect();
    print!(
        "{}",
        render_table(
            "Figure 10: Bulk Processor Farm, Fanout 1 (total run time, s)",
            &["task", "loss", "SCTP s", "TCP s", "TCPera s", "TCP/SCTP", "era/SCTP"],
            &table,
        )
    );
    println!("paper (short): TCP/SCTP = 0.87x @0%, 10.4x @1%, 11.7x @2%");
    println!("paper (long):  TCP/SCTP = 0.73x @0%, 2.59x @1%, 2.70x @2%");
    save_json(&scale.tag("fig10"), &rows);
    bench.save();
    eprintln!("{}", bench.summary());
}
