//! **Figure 9** — NAS-like kernels, class B, 8 processes, Mop/s for SCTP
//! and TCP. Paper: comparable overall; TCP slightly ahead on MG and BT.
//!
//! Usage: `fig9 [--quick] [--class S|W|A|B]`

use bench_harness::{fig9_metered, render_table, save_json, Scale};
use workloads::nas::Class;

fn main() {
    let scale = Scale::from_args();
    let class = std::env::args()
        .skip_while(|a| a != "--class")
        .nth(1)
        .map(|c| match c.as_str() {
            "S" => Class::S,
            "W" => Class::W,
            "A" => Class::A,
            _ => Class::B,
        })
        .unwrap_or(Class::B);
    let (rows, bench) = fig9_metered(scale, class);
    let table: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.kernel.to_string(),
                r.class.to_string(),
                format!("{:.0}", r.sctp_mops),
                format!("{:.0}", r.tcp_mops),
                format!("{:.3}", r.ratio),
            ]
        })
        .collect();
    print!(
        "{}",
        render_table(
            "Figure 9: NAS kernels (Mop/s total)",
            &["kernel", "class", "SCTP", "TCP", "SCTP/TCP"],
            &table,
        )
    );
    println!("paper: SCTP ~ TCP on average; TCP slightly ahead on MG and BT");
    save_json(&scale.tag("fig9"), &rows);
    bench.save();
    eprintln!("{}", bench.summary());
}
