//! **Live fig8** — the MPBench ping-pong sweep over real UDP sockets on
//! loopback (`BACKEND=udp`, the default), or the deterministic simulator
//! for comparison (`BACKEND=sim`). Same sizes, same iteration counts, same
//! throughput metric, same BENCH json schema as the sim's `fig8` binary.
//!
//! Usage: `[BACKEND=udp|sim] pingpong_live [--quick]`

use bench_harness::runner::{backend_kind, BackendKind};
use bench_harness::{fig8_metered, human_size, live, render_table, save_json, Scale};

fn main() {
    let scale = Scale::from_args();
    let (title, tag, rows, bench) = match backend_kind() {
        BackendKind::Udp => {
            let (rows, bench) = live::live_fig8(scale);
            ("Live ping-pong over UDP loopback (SCTP normalized to TCP)", "pingpong_live", rows, bench)
        }
        BackendKind::Sim => {
            let (rows, bench) = fig8_metered(scale);
            ("Simulated ping-pong, 0% loss (SCTP normalized to TCP)", "pingpong_sim", rows, bench)
        }
    };
    let table: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                human_size(r.size),
                format!("{:.0}", r.tcp_tput),
                format!("{:.0}", r.sctp_tput),
                format!("{:.3}", r.normalized),
            ]
        })
        .collect();
    print!("{}", render_table(title, &["size", "TCP B/s", "SCTP B/s", "SCTP/TCP"], &table));
    save_json(&scale.tag(tag), &rows);
    bench.save();
    eprintln!("{}", bench.summary());
}
