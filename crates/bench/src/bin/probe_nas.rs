//! Diagnostic: one NAS kernel, one transport, with stats.
use mpi_core::MpiCfg;
use workloads::nas::{run, Class, Kernel};

fn main() {
    let k = match std::env::args().nth(1).as_deref() {
        Some("IS") => Kernel::IS,
        Some("MG") => Kernel::MG,
        Some("BT") => Kernel::BT,
        Some("LU") => Kernel::LU,
        Some("CG") => Kernel::CG,
        Some("SP") => Kernel::SP,
        _ => Kernel::EP,
    };
    let c = match std::env::args().nth(2).as_deref() {
        Some("S") => Class::S,
        Some("W") => Class::W,
        Some("A") => Class::A,
        _ => Class::B,
    };
    let tcp = std::env::args().any(|a| a == "--tcp");
    let cfg = if tcp { MpiCfg::tcp(8, 0.0) } else { MpiCfg::sctp(8, 0.0) };
    let r = run(cfg, k, c);
    println!("{} {} {}: {:.3}s -> {:.0} Mop/s", k.name(), c.name(), if tcp {"tcp"} else {"sctp"}, r.secs, r.mops_per_sec);
}
