//! **E-faults** — Figure 11 (fanout 10) rerun under *bursty* loss, matched
//! to the Bernoulli figure's average rates. See `fig10_burst` for the
//! chain parameters; fanout 10 gives the farm more concurrency to hide the
//! deeper, rarer stalls bursty loss produces.
//!
//! Usage: `fig11_burst [--quick]`

use bench_harness::{farm_burst_figure_metered, human_size, render_table, save_json, Scale};

fn main() {
    let scale = Scale::from_args();
    let (rows, bench) = farm_burst_figure_metered(scale, 10);
    let table: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                human_size(r.task_bytes),
                format!("{:.0}%", r.avg_loss * 100.0),
                format!("{:.1}", r.sctp_secs),
                format!("{:.1}", r.tcp_secs),
                format!("{:.1}", r.tcp_era_secs),
                format!("{:.2}x", r.ratio_tcp_over_sctp),
                format!("{:.2}x", r.ratio_era),
            ]
        })
        .collect();
    print!(
        "{}",
        render_table(
            "Fig 11 under bursty loss (GE, matched avg rate; total run time, s)",
            &["task", "avg", "SCTP s", "TCP s", "TCPera s", "TCP/SCTP", "era/SCTP"],
            &table,
        )
    );
    println!("compare: results/fig11.json rows at loss 1%/2% (independent losses)");
    save_json(&scale.tag("fig11_burst"), &rows);
    bench.save();
    eprintln!("{}", bench.summary());
}
