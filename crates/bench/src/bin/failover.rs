//! **A3** — multihoming failover experiment (paper §3.5.1): the farm keeps
//! running when the primary network dies mid-job, at the cost of a brief
//! failover stall (a few retransmission timeouts, then full speed on the
//! alternate path).
//!
//! Usage: `failover [--quick]`

use bench_harness::{render_table, save_json, Scale};
use mpi_core::MpiCfg;
use simcore::Dur;
use workloads::farm::{run_with_fault, FarmCfg};

struct Row {
    kill_primary: bool,
    secs: f64,
    failovers: u64,
}

bench_harness::impl_to_json!(Row { kill_primary, secs, failovers });

fn main() {
    let scale = Scale::from_args();
    let cfg = match scale {
        Scale::Paper => FarmCfg { num_tasks: 2_000, ..FarmCfg::paper(30 * 1024, 10) },
        Scale::Quick => FarmCfg::small(30 * 1024, 10),
    };
    let mut rows = Vec::new();
    for kill in [false, true] {
        let mut m = MpiCfg::sctp(8, 0.0).with_seed(11);
        m.sctp.num_paths = 3;
        m.sctp.heartbeat_interval = Some(Dur::from_secs(2));
        m.sctp.path_max_retrans = 2;
        let kill_at = kill.then_some(cfg.num_tasks / cfg.fanout / 4);
        let r = run_with_fault(m, cfg, kill_at);
        assert_eq!(r.tasks_done, cfg.num_tasks, "all tasks must survive the failure");
        rows.push(Row { kill_primary: kill, secs: r.secs, failovers: r.failovers });
    }
    let table: Vec<Vec<String>> = rows
        .iter()
        .map(|r| vec![r.kill_primary.to_string(), format!("{:.2}", r.secs), r.failovers.to_string()])
        .collect();
    print!(
        "{}",
        render_table(
            "A3: SCTP multihoming failover (farm, primary network killed mid-run)",
            &["kill", "secs", "failovers"],
            &table,
        )
    );
    println!("expected: the killed run completes with failovers >= 1 and a modest slowdown");
    save_json(&scale.tag("failover"), &rows);
}
