//! **Table 1** — ping-pong throughput under 1% and 2% loss, 30 KB and
//! 300 KB messages. Paper: SCTP far ahead of TCP, larger factor for short
//! messages.
//!
//! Usage: `table1 [--quick]`

use bench_harness::{human_size, render_table, save_json, table1_metered, Scale};

fn main() {
    let scale = Scale::from_args();
    let (rows, bench) = table1_metered(scale);
    let table: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                human_size(r.size),
                format!("{:.0}%", r.loss * 100.0),
                format!("{:.0}", r.sctp_tput),
                format!("{:.0}", r.tcp_tput),
                format!("{:.0}", r.tcp_era_tput),
                format!("{:.2}x", r.ratio),
                format!("{:.2}x", r.ratio_era),
            ]
        })
        .collect();
    print!(
        "{}",
        render_table(
            "Table 1: ping-pong throughput under loss (bytes/second)",
            &["size", "loss", "SCTP", "TCP", "TCP-era", "SCTP/TCP", "SCTP/TCP-era"],
            &table,
        )
    );
    println!("paper: 30K: 28.5x @1%, 43.3x @2%; 300K: 3.2x @1%, 3.2x @2%");
    save_json(&scale.tag("table1"), &rows);
    bench.save();
    eprintln!("{}", bench.summary());
}
