//! **A5 — Concurrent Multipath Transfer** (the paper's §2.1/§5 forward
//! pointer to Iyengar et al.): stripe an association's data across all
//! three of the testbed's networks. A bulk transfer should approach N×
//! single-path throughput; the same transfer under loss shows CMT's
//! resilience (per-path congestion state).
//!
//! Usage: `cmt [--quick]`

use bench_harness::{mean_over_seeds, render_table, save_json, Scale};
use mpi_core::MpiCfg;
use workloads::pingpong::{run, PingPongCfg};

struct Row {
    paths: u8,
    cmt: bool,
    loss: f64,
    mb_per_s: f64,
}

bench_harness::impl_to_json!(Row { paths, cmt, loss, mb_per_s });

fn main() {
    let scale = Scale::from_args();
    let (iters, runs) = match scale {
        Scale::Paper => (200, 3),
        Scale::Quick => (20, 1),
    };
    // One-way bulk: use a big-message ping-pong (dominated by the data leg).
    let pp = PingPongCfg { size: 220 * 1024 - 64, iters };
    let mut rows = Vec::new();
    for (paths, cmt) in [(1u8, false), (3, false), (3, true)] {
        for loss in [0.0, 0.01] {
            let tput = mean_over_seeds(runs, |s| {
                let mut m = MpiCfg::sctp(2, loss).with_seed(s);
                m.sctp.num_paths = paths;
                m.sctp.cmt = cmt;
                run(m, pp).throughput
            });
            rows.push(Row { paths, cmt, loss, mb_per_s: tput / 1e6 });
        }
    }
    let table: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.paths.to_string(),
                r.cmt.to_string(),
                format!("{:.0}%", r.loss * 100.0),
                format!("{:.1}", r.mb_per_s),
            ]
        })
        .collect();
    print!(
        "{}",
        render_table(
            "A5: Concurrent Multipath Transfer (bulk ping-pong, MB/s)",
            &["paths", "CMT", "loss", "MB/s"],
            &table,
        )
    );
    println!("expected: CMT over 3 paths beats single-path; multihoming without CMT does not");
    save_json(&scale.tag("cmt"), &rows);
}
