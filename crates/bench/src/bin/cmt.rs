//! **A5 — Concurrent Multipath Transfer** (the paper's §2.1/§5 forward
//! pointer to Iyengar et al.): stripe an association's data across all
//! three of the testbed's networks. A one-way bulk stream approaches N×
//! single-path throughput; the same stream under loss shows CMT's
//! resilience (per-path congestion state, SFR accounting, rescue probes).
//! The strict ping-pong view, the send-buffer sweep, and a fault-plane
//! composition (bursty loss + a primary flap) ride in the same run.
//!
//! Usage: `cmt [--quick]`

use bench_harness::{cmt_metered, render_table, save_json, Scale, CMT_AGG_MIN};

fn main() {
    let scale = Scale::from_args();
    let (results, report) = cmt_metered(scale);

    let grid = |rows: &[bench_harness::CmtRow]| -> Vec<Vec<String>> {
        rows.iter()
            .map(|r| {
                vec![
                    r.paths.to_string(),
                    r.cmt.to_string(),
                    format!("{:.1}%", r.loss * 100.0),
                    format!("{:.1}", r.mb_per_s),
                    format!("{:?}", r.per_path_pkts),
                    r.timeouts.to_string(),
                    r.fast_rtx.to_string(),
                    r.rescue_rtx.to_string(),
                    r.spurious_frtx.to_string(),
                ]
            })
            .collect()
    };
    let hdr = ["paths", "CMT", "loss", "MB/s", "pkts/path", "RTO", "frtx", "rescue", "spurious"];
    print!(
        "{}",
        render_table("A5: CMT bulk stream (one-way, 64K eager messages)", &hdr, &grid(&results.stream))
    );
    print!(
        "{}",
        render_table("A5: CMT strict ping-pong (220K rendezvous messages)", &hdr, &grid(&results.pingpong))
    );
    let buf_rows: Vec<Vec<String>> = results
        .bufs
        .iter()
        .map(|r| vec![format!("{}K", r.sndbuf_kb), format!("{:.1}", r.mb_per_s)])
        .collect();
    print!(
        "{}",
        render_table("send-buffer sweep (3-path CMT stream, 0% loss)", &["sndbuf", "MB/s"], &buf_rows)
    );
    let fault_rows: Vec<Vec<String>> = results
        .fault
        .iter()
        .map(|r| {
            vec![
                r.cmt.to_string(),
                format!("{:.3}", r.secs),
                format!("{:.1}", r.mb_per_s),
                r.failovers.to_string(),
                r.rescue_rtx.to_string(),
            ]
        })
        .collect();
    print!(
        "{}",
        render_table(
            "fault composition: GE bursty loss (1% avg) + 20-80ms primary flap",
            &["CMT", "secs", "MB/s", "failovers", "rescue"],
            &fault_rows,
        )
    );
    println!(
        "expected: CMT over 3 paths aggregates >={CMT_AGG_MIN}x a single path at 0% loss \
         and never loses to it under loss; multihoming without CMT does not aggregate"
    );

    save_json(&scale.tag("cmt"), &results.stream);
    save_json(&scale.tag("cmt_pingpong"), &results.pingpong);
    save_json(&scale.tag("cmt_bufs"), &results.bufs);
    save_json(&scale.tag("cmt_fault"), &results.fault);
    report.save();
    eprintln!("{}", report.summary());
}
