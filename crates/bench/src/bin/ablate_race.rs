//! **Ablation A2** — the §3.4 long-message race fixes: Option A (spin on
//! the body write, no other sends progress) vs Option B (per-stream write
//! serialization, the shipped design).
//!
//! Usage: `ablate_race [--quick]`

use bench_harness::{ablate_race_metered, render_table, save_json, Scale};

fn main() {
    let scale = Scale::from_args();
    let (rows, bench) = ablate_race_metered(scale);
    let table: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                format!("{:.0}%", r.loss * 100.0),
                format!("{:.1}", r.option_a_secs),
                format!("{:.1}", r.option_b_secs),
                format!("{:.2}x", r.option_a_secs / r.option_b_secs),
            ]
        })
        .collect();
    print!(
        "{}",
        render_table(
            "Ablation A2: long-message race fix, farm 300K fanout 10 (s)",
            &["loss", "Option A", "Option B", "A/B"],
            &table,
        )
    );
    println!("expected: Option A >= Option B (serializing everything costs concurrency)");
    save_json(&scale.tag("ablate_race"), &rows);
    bench.save();
    eprintln!("{}", bench.summary());
}
