//! **Trace analyzer** — turns flight-recorder captures into the transport
//! accounting the paper argues from (§4): per-stream HOL-block time,
//! recovery time split fast-rtx vs RTO, cwnd evolution, and a per-cell
//! "where did the bytes stall" table explaining the Table 1 magnitude gap.
//!
//! Usage: `analyze [TRACES_DIR] [--expect-hol] [--expect-hol-split] [--markdown]`
//!
//! * `TRACES_DIR` defaults to `traces/` (where `TRACE=1 fig10 --quick`
//!   leaves one `<fig>_<cell>.jsonl` per cell).
//! * `--expect-hol` makes the exit status assert the captures contain at
//!   least one head-of-line block (the CI trace job uses this: a lossy
//!   SCTP run whose captures show zero HOL blocks means the recorder's
//!   receive-side hooks are broken).
//! * `--expect-hol-split` additionally asserts both *sender*-side and
//!   *receiver*-side HOL blocks appear across the captures (the
//!   interleave-smoke CI job uses this: an interleave experiment whose
//!   traces never distinguish the two sides means the RFC 8260 sender-HOL
//!   hooks are broken).
//! * `--markdown` renders the stall summary as a Markdown table (the
//!   EXPERIMENTS.md "E-trace" section is generated this way).

use std::collections::BTreeMap;
use std::process::ExitCode;

use bench_harness::render_table;
use trace::analyze::{self, bucket_labels, cwnd_curves, fault_windows, hol_rows, recovery, stall};
use trace::jsonl::parse_lines;

fn ms(ns: u64) -> String {
    format!("{:.2}", ns as f64 / 1e6)
}

fn mean_ms(total_ns: u64, count: u64) -> String {
    if count == 0 {
        "-".into()
    } else {
        format!("{:.2}", total_ns as f64 / count as f64 / 1e6)
    }
}

/// One capture = one figure cell's JSONL file.
struct Capture {
    name: String,
    events: Vec<trace::json::JVal>,
}

fn load_captures(dir: &std::path::Path) -> Result<Vec<Capture>, String> {
    let rd = std::fs::read_dir(dir).map_err(|e| format!("{}: {e}", dir.display()))?;
    let mut names: Vec<_> = rd
        .filter_map(|e| e.ok())
        .map(|e| e.path())
        .filter(|p| p.extension().is_some_and(|x| x == "jsonl"))
        .collect();
    names.sort();
    let mut out = Vec::new();
    for path in names {
        let text =
            std::fs::read_to_string(&path).map_err(|e| format!("{}: {e}", path.display()))?;
        let events = parse_lines(&text).map_err(|e| format!("{}: {e}", path.display()))?;
        let name = path.file_stem().map(|s| s.to_string_lossy().into_owned()).unwrap_or_default();
        out.push(Capture { name, events });
    }
    Ok(out)
}

/// Returns (total blocks, snd-side blocks, rcv-side blocks).
fn print_hol(cap: &Capture) -> (u64, u64, u64) {
    let rows = hol_rows(&cap.events);
    if rows.is_empty() {
        return (0, 0, 0);
    }
    let (mut blocks, mut snd, mut rcv) = (0, 0, 0);
    let table: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            blocks += r.blocks;
            if r.side == "snd" {
                snd += r.blocks;
            } else {
                rcv += r.blocks;
            }
            let mut row = vec![
                format!("{}<-{}", r.host, r.peer),
                r.stream.to_string(),
                r.side.clone(),
                r.blocks.to_string(),
                ms(r.total_ns),
                ms(r.max_ns),
                r.released.to_string(),
            ];
            row.extend(r.hist.iter().map(|h| h.to_string()));
            row
        })
        .collect();
    let mut header = vec!["host<-peer", "stream", "side", "blocks", "total ms", "max ms", "msgs"];
    header.extend(bucket_labels());
    print!("{}", render_table(&format!("HOL blocks: {}", cap.name), &header, &table));
    (blocks, snd, rcv)
}

fn print_recovery(cap: &Capture) {
    let r = recovery(&cap.events);
    if r.fast.count + r.rto.count + r.unrecovered + r.ctl_drops == 0 {
        return;
    }
    let row = |name: &str, c: &analyze::RecoveryClass| {
        vec![name.to_string(), c.count.to_string(), ms(c.total_ns), mean_ms(c.total_ns, c.count), ms(c.max_ns)]
    };
    let table = vec![
        row("fast-rtx", &r.fast),
        row("rto", &r.rto),
        vec!["unrecovered".into(), r.unrecovered.to_string(), "-".into(), "-".into(), "-".into()],
        vec!["ctl-drop".into(), r.ctl_drops.to_string(), "-".into(), "-".into(), "-".into()],
    ];
    print!(
        "{}",
        render_table(
            &format!("Loss recovery: {}", cap.name),
            &["class", "losses", "total ms", "mean ms", "max ms"],
            &table,
        )
    );
}

fn print_cwnd(cap: &Capture) {
    let curves = cwnd_curves(&cap.events);
    if curves.is_empty() {
        return;
    }
    let table: Vec<Vec<String>> = curves
        .iter()
        .map(|c| {
            vec![
                c.proto.clone(),
                format!("{}->{}", c.host, c.peer),
                c.path.to_string(),
                c.samples.to_string(),
                c.min.to_string(),
                c.max.to_string(),
                c.last.to_string(),
                c.collapses.to_string(),
            ]
        })
        .collect();
    print!(
        "{}",
        render_table(
            &format!("Cwnd evolution: {}", cap.name),
            &["proto", "flow", "path", "samples", "min B", "max B", "last B", "collapses"],
            &table,
        )
    );
}

/// Fault windows (from the fault plane's trace edges) correlated with the
/// drops and timer expiries that landed inside them.
fn print_faults(cap: &Capture) {
    let ws = fault_windows(&cap.events);
    if ws.is_empty() {
        return;
    }
    let table: Vec<Vec<String>> = ws
        .iter()
        .map(|w| {
            vec![
                w.kind.clone(),
                w.rule.to_string(),
                ms(w.from_ns),
                ms(w.until_ns),
                ms(w.until_ns - w.from_ns),
                w.drops.to_string(),
                w.rto_fires.to_string(),
            ]
        })
        .collect();
    print!(
        "{}",
        render_table(
            &format!("Fault windows: {}", cap.name),
            &["fault", "rule", "from ms", "until ms", "span ms", "drops", "rto fires"],
            &table,
        )
    );
}

/// The cross-capture roll-up: one row per cell, stall time by cause.
fn stall_summary(caps: &[Capture], markdown: bool) -> String {
    let header = [
        "cell", "makespan ms", "pkts", "drops", "rcv hol blk", "rcv hol ms", "snd hol blk",
        "snd hol ms", "fast rtx", "fast ms", "rto fires", "rto ms", "unexp msgs", "faults",
    ];
    let rows: Vec<Vec<String>> = caps
        .iter()
        .map(|cap| {
            let st = stall(&cap.events);
            vec![
                cap.name.clone(),
                ms(st.makespan_ns),
                st.pkts.to_string(),
                (st.drops_loss + st.drops_queue + st.drops_down).to_string(),
                st.hol_blocks.to_string(),
                ms(st.hol_ns),
                st.snd_hol_blocks.to_string(),
                ms(st.snd_hol_ns),
                st.fast_rtx.to_string(),
                ms(st.fast_recovery_ns),
                st.rto_fires.to_string(),
                ms(st.rto_recovery_ns),
                st.mpi_unexpected.to_string(),
                st.fault_edges.to_string(),
            ]
        })
        .collect();
    if markdown {
        let mut out = String::new();
        out.push_str(&format!("| {} |\n", header.join(" | ")));
        out.push_str(&format!("|{}\n", "---|".repeat(header.len())));
        for row in &rows {
            out.push_str(&format!("| {} |\n", row.join(" | ")));
        }
        out
    } else {
        render_table("Where did the bytes stall (per cell)", &header, &rows)
    }
}

fn main() -> ExitCode {
    let mut dir = String::from("traces");
    let mut expect_hol = false;
    let mut expect_split = false;
    let mut markdown = false;
    for a in std::env::args().skip(1) {
        match a.as_str() {
            "--expect-hol" => expect_hol = true,
            "--expect-hol-split" => expect_split = true,
            "--markdown" => markdown = true,
            other if !other.starts_with('-') => dir = other.to_string(),
            other => {
                eprintln!("unknown flag {other}; usage: analyze [TRACES_DIR] [--expect-hol] [--expect-hol-split] [--markdown]");
                return ExitCode::from(2);
            }
        }
    }
    let caps = match load_captures(std::path::Path::new(&dir)) {
        Ok(c) => c,
        Err(e) => {
            eprintln!("analyze: {e}");
            return ExitCode::from(2);
        }
    };
    if caps.is_empty() {
        eprintln!("analyze: no .jsonl captures in {dir}/ (run a figure with TRACE=1 first)");
        return ExitCode::from(2);
    }

    let mut hol_blocks_total: BTreeMap<String, u64> = BTreeMap::new();
    let (mut snd_total, mut rcv_total) = (0u64, 0u64);
    for cap in &caps {
        let (blocks, snd, rcv) = print_hol(cap);
        if blocks > 0 {
            hol_blocks_total.insert(cap.name.clone(), blocks);
        }
        snd_total += snd;
        rcv_total += rcv;
        print_recovery(cap);
        print_cwnd(cap);
        print_faults(cap);
    }
    print!("{}", stall_summary(&caps, markdown));
    println!(
        "{} captures, {} with HOL blocks ({} blocks total: {} snd-side, {} rcv-side)",
        caps.len(),
        hol_blocks_total.len(),
        hol_blocks_total.values().sum::<u64>(),
        snd_total,
        rcv_total,
    );
    if expect_hol && hol_blocks_total.is_empty() {
        eprintln!("analyze: --expect-hol set but no capture contains a HOL block");
        return ExitCode::FAILURE;
    }
    if expect_split && (snd_total == 0 || rcv_total == 0) {
        eprintln!(
            "analyze: --expect-hol-split set but captures show {snd_total} snd-side / \
             {rcv_total} rcv-side HOL blocks (need both > 0)"
        );
        return ExitCode::FAILURE;
    }
    ExitCode::SUCCESS
}
