//! **Figure 12** — head-of-line-blocking isolation: SCTP with 10 streams
//! vs SCTP with a single stream, farm with Fanout 10.
//!
//! Paper: long tasks ~25% slower on one stream under loss; short tasks
//! ~35% slower at 2% loss.
//!
//! Usage: `fig12 [--quick]`

use bench_harness::{fig12_metered, human_size, render_table, save_json, Scale};

fn main() {
    let scale = Scale::from_args();
    let (rows, bench) = fig12_metered(scale);
    let table: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                human_size(r.task_bytes),
                format!("{:.0}%", r.loss * 100.0),
                format!("{:.1}", r.streams10_secs),
                format!("{:.1}", r.stream1_secs),
                format!("{:.2}x", r.ratio_1_over_10),
            ]
        })
        .collect();
    print!(
        "{}",
        render_table(
            "Figure 12: SCTP 10 streams vs 1 stream, farm Fanout 10 (s)",
            &["task", "loss", "10 streams", "1 stream", "1/10 ratio"],
            &table,
        )
    );
    println!("paper (short): 1.07x @0%, 0.94x @1%, 1.35x @2%");
    println!("paper (long):  1.00x @0%, 1.27x @1%, 1.23x @2%");
    save_json(&scale.tag("fig12"), &rows);
    bench.save();
    eprintln!("{}", bench.summary());
}
