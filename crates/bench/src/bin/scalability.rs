//! **A4 — §3.3 scalability**: LAM-TCP maintains one socket per peer and
//! polls them all with `select()`, whose cost grows linearly in the number
//! of descriptors; the SCTP module's single one-to-many socket pays O(1).
//!
//! The experiment isolates the select()-attributable cost: each process
//! count runs a ring-exchange program twice on TCP — once with the
//! modelled per-descriptor select cost, once with it zeroed — and reports
//! the delta. The SCTP column (no select at all) is the reference.
//!
//! Usage: `scalability [--quick]`

use bench_harness::{render_table, save_json, Scale};
use bytes::Bytes;
use mpi_core::{mpirun, MpiCfg};
use netsim::NetCfg;

struct Row {
    nprocs: u16,
    tcp_us: f64,
    tcp_noselect_us: f64,
    select_share_pct: f64,
    sctp_us: f64,
}

bench_harness::impl_to_json!(Row { nprocs, tcp_us, tcp_noselect_us, select_share_pct, sctp_us });

fn ring(mpi: &mut mpi_core::Mpi, iters: u32, bytes: usize) {
    let n = mpi.size();
    let me = mpi.rank();
    let to = (me + 1) % n;
    let from = (me + n - 1) % n;
    for it in 0..iters {
        let s = mpi.isend(to, it as i32, Bytes::from(vec![0u8; bytes]));
        let r = mpi.irecv(Some(from), Some(it as i32));
        mpi.waitall(&[s, r]);
    }
}

fn run_one(mut cfg: MpiCfg, n: u16, iters: u32) -> f64 {
    cfg.nprocs = n;
    cfg.net = NetCfg { hosts: n, ..NetCfg::paper_cluster(0.0) };
    let report = mpirun(cfg, move |mpi| ring(mpi, iters, 16 * 1024));
    report.secs() / iters as f64 * 1e6
}

fn main() {
    let scale = Scale::from_args();
    let (sizes, iters): (&[u16], u32) = match scale {
        Scale::Paper => (&[2, 4, 8, 16, 32, 64, 96], 60),
        Scale::Quick => (&[2, 8, 24], 10),
    };
    let mut rows = Vec::new();
    for &n in sizes {
        let tcp = run_one(MpiCfg::tcp(n, 0.0), n, iters);
        let mut no_sel = MpiCfg::tcp(n, 0.0);
        no_sel.cost.select_base = simcore::Dur::ZERO;
        no_sel.cost.select_per_sock = simcore::Dur::ZERO;
        let tcp_ns = run_one(no_sel, n, iters);
        let sctp = run_one(MpiCfg::sctp(n, 0.0), n, iters);
        rows.push(Row {
            nprocs: n,
            tcp_us: tcp,
            tcp_noselect_us: tcp_ns,
            select_share_pct: (tcp - tcp_ns) / tcp * 100.0,
            sctp_us: sctp,
        });
    }
    let table: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.nprocs.to_string(),
                format!("{:.1}", r.tcp_us),
                format!("{:.1}", r.tcp_noselect_us),
                format!("{:.1}%", r.select_share_pct),
                format!("{:.1}", r.sctp_us),
            ]
        })
        .collect();
    print!(
        "{}",
        render_table(
            "A4: ring exchange cost vs process count (us/iteration, 16K msgs)",
            &["procs", "TCP", "TCP no-select", "select share", "SCTP"],
            &table,
        )
    );
    println!("expected: the select() share grows with the process count (§3.3)");
    save_json(&scale.tag("scalability"), &rows);
}
