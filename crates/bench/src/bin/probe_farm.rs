//! Diagnostic probe: farm run with full transport stats.

use mpi_core::MpiCfg;
use workloads::farm::FarmCfg;

fn main() {
    let loss: f64 = std::env::args().nth(1).and_then(|s| s.parse().ok()).unwrap_or(0.0);
    let fanout: u32 = std::env::args().nth(2).and_then(|s| s.parse().ok()).unwrap_or(1);
    let task: usize = std::env::args().nth(3).and_then(|s| s.parse().ok()).unwrap_or(300 * 1024);
    let mut cfg = FarmCfg::small(task, fanout);
    if std::env::args().any(|a| a == "--nocompute") {
        cfg.compute_per_task = simcore::Dur::ZERO;
    }
    let big_q = std::env::args().any(|a| a == "--bigq");
    for (name, mut m) in [("tcp", MpiCfg::tcp(8, loss)), ("sctp", MpiCfg::sctp(8, loss))] {
        if big_q {
            m.net.link.queue_cap_bytes = 4 << 20;
        }
        if std::env::args().any(|a| a == "--noburst") {
            m.sctp.max_burst = u32::MAX;
        }
        let blocked = std::sync::Arc::new(std::sync::Mutex::new((0.0f64, 0.0f64)));
        let b2 = blocked.clone();
        let rep = mpi_core::mpirun(m.with_seed(std::env::var("FARM_SEED").ok().and_then(|x| x.parse().ok()).unwrap_or(7)), move |mpi| {
            workloads::farm::run_inline(mpi, cfg);
            let mut g = b2.lock().unwrap();
            if mpi.rank() == 0 {
                g.0 = mpi.stats.blocked.as_secs_f64();
            } else if mpi.rank() == 1 {
                g.1 = mpi.stats.blocked.as_secs_f64();
            }
        });
        let (mb, wb) = *blocked.lock().unwrap();
        println!("  manager blocked {mb:.3}s; worker1 blocked {wb:.3}s");
        println!(
            "{name}: sim={:.3}s events={} tcp[rtx={} fast={} to={}] sctp[rtx={} fast={} to={}] drops={}",
            rep.secs(),
            rep.events,
            rep.tcp.retransmits,
            rep.tcp.fast_retransmits,
            rep.tcp.timeouts,
            rep.sctp.retransmits,
            rep.sctp.fast_retransmits,
            rep.sctp.timeouts,
            rep.net.drops_loss,
        );
        println!("  queue_drops={} delivered={} offered={}", rep.net.drops_queue, rep.net.packets_delivered, rep.net.packets_offered);
    }
}
