//! **E-interleave** — RFC 8260 message interleaving and RFC 3758 PR-SCTP.
//!
//! Part A (mixed-size farm): the Figure 12 farm rerun with unequal task
//! sizes. Multistreaming alone leaves the association's outbound queue a
//! single FIFO, so a 60 KB bulk task starting to fragment blocks every
//! urgent task queued behind it — *sender-side* HOL blocking, invisible to
//! Figure 12's receiver-side accounting. I-DATA plus a non-FIFO stream
//! scheduler interleaves the urgent fragments into the bulk transmission;
//! the run asserts the blocked time strictly drops.
//!
//! Part B (media deadline workload): a fixed-cadence frame source under
//! loss, swept over per-frame lifetimes. Finite lifetimes abandon stale
//! frames (FORWARD-TSN), bounding delivered-frame staleness where the
//! reliable run lets it grow with the retransmission backlog.
//!
//! Usage: `interleave [--quick]`

use bench_harness::{interleave_metered, render_table, save_json, Scale};

fn main() {
    let scale = Scale::from_args();
    let (results, bench) = interleave_metered(scale);

    let table: Vec<Vec<String>> = results
        .mixed
        .iter()
        .map(|r| {
            vec![
                r.config.clone(),
                format!("{:.0}%", r.loss * 100.0),
                format!("{:.2}", r.secs),
                format!("{}", r.snd_hol_blocks),
                format!("{:.2}", r.snd_hol_ms),
                format!("{:.2}", r.rcv_hol_ms),
            ]
        })
        .collect();
    print!(
        "{}",
        render_table(
            "E-interleave A: mixed-size farm, I-DATA schedulers vs FIFO",
            &["config", "loss", "secs", "snd blk", "snd hol ms", "rcv hol ms"],
            &table,
        )
    );

    let table: Vec<Vec<String>> = results
        .deadline
        .iter()
        .map(|r| {
            vec![
                if r.lifetime_ms == 0 {
                    "reliable".to_string()
                } else {
                    format!("{} ms", r.lifetime_ms)
                },
                format!("{:.0}%", r.loss * 100.0),
                format!("{}", r.frames_delivered),
                format!("{}", r.frames_skipped),
                format!("{}", r.msgs_abandoned),
                format!("{}", r.fwd_tsn_out),
                format!("{:.1}", r.max_staleness_ms),
                format!("{:.1}", r.mean_staleness_ms),
            ]
        })
        .collect();
    print!(
        "{}",
        render_table(
            "E-interleave B: PR-SCTP lifetime sweep, media source under loss",
            &["lifetime", "loss", "delivered", "skipped", "abandoned", "fwd-tsn", "max stale ms", "mean stale ms"],
            &table,
        )
    );

    save_json(&scale.tag("interleave_mixed"), &results.mixed);
    save_json(&scale.tag("interleave_deadline"), &results.deadline);
    bench.save();
    eprintln!("{}", bench.summary());
}
