//! **E-faults** — the failover timeline: a scripted link flap takes every
//! host's primary interface down from 50 ms to 10 s into the run. Multihomed
//! SCTP (3 paths) detects the dead path after `path_max_retrans` consecutive
//! T3 expiries and keeps the farm moving on an alternate; singlehomed SCTP
//! and TCP stall until the link returns. The trailing rows sweep
//! heartbeat-interval × path-max-retrans to show the detection-latency
//! trade-off.
//!
//! The same plan + seed is byte-identical across runs; `TRACE=1` captures
//! the flap edges (`ev=fault`) alongside every packet for `analyze`.
//!
//! Usage: `flap [--quick]`

use bench_harness::{flap_timeline_metered, render_table, save_json, Scale};

fn main() {
    let scale = Scale::from_args();
    let (rows, bench) = flap_timeline_metered(scale);
    let table: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.config.clone(),
                r.flap.to_string(),
                format!("{}", r.hb_ms),
                format!("{}", r.pmr),
                format!("{:.2}", r.secs),
                r.failovers.to_string(),
                if r.failovers == 0 { "-".into() } else { format!("{:.0}", r.detect_ms) },
            ]
        })
        .collect();
    print!(
        "{}",
        render_table(
            "E-faults: failover timeline (primary-path flap 0.05 s .. 10 s)",
            &["config", "flap", "hb_ms", "pmr", "secs", "failovers", "detect_ms"],
            &table,
        )
    );
    println!("expected: 3-path fails over and finishes; 1-path and tcp stall past the flap end");
    save_json(&scale.tag("flap"), &rows);
    bench.save();
    eprintln!("{}", bench.summary());
}
