//! **Figure 11** — Bulk Processor Farm, Fanout 10 (more head-of-line
//! blocking opportunity for TCP).
//!
//! Paper: short 6.2/88.1/154.7 s (TCP) vs 8.7/11.7/16.0 s (SCTP);
//!        long  79/3103/6414 s (TCP) vs 129/786/1585 s (SCTP).
//!
//! Usage: `fig11 [--quick]`

use bench_harness::{farm_figure_metered, human_size, render_table, save_json, Scale};

fn main() {
    let scale = Scale::from_args();
    let (rows, bench) = farm_figure_metered(scale, 10);
    let table: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                human_size(r.task_bytes),
                format!("{:.0}%", r.loss * 100.0),
                format!("{:.1}", r.sctp_secs),
                format!("{:.1}", r.tcp_secs),
                format!("{:.1}", r.tcp_era_secs),
                format!("{:.2}x", r.ratio_tcp_over_sctp),
                format!("{:.2}x", r.ratio_era),
            ]
        })
        .collect();
    print!(
        "{}",
        render_table(
            "Figure 11: Bulk Processor Farm, Fanout 10 (total run time, s)",
            &["task", "loss", "SCTP s", "TCP s", "TCPera s", "TCP/SCTP", "era/SCTP"],
            &table,
        )
    );
    println!("paper (short): TCP/SCTP = 0.71x @0%, 7.5x @1%, 9.7x @2%");
    println!("paper (long):  TCP/SCTP = 0.61x @0%, 3.9x @1%, 4.0x @2%");
    save_json(&scale.tag("fig11"), &rows);
    bench.save();
    eprintln!("{}", bench.summary());
}
