//! The fault plane's hard invariant: an empty (or all-zero, i.e. no-op)
//! [`netsim::FaultPlan`] is *exactly* no fault plane — any fig10 `--quick`
//! cell run with such a plan installed must be bit-identical to the same
//! cell without one: same figure stdout, same events fired, same every
//! runtime meter, zero extra RNG draws.
//!
//! This is what keeps PR-less figure output stable: installing the fault
//! machinery cost nothing unless a plan actually does something.

use proptest::prelude::*;

use bench_harness::{farm_cfg, flap_plan, Scale, SEED_BASE};
use mpi_core::MpiCfg;
use netsim::{BurstLossRule, DegradeRule, FaultPlan, FlapRule, JitterRule, Scope};
use workloads::farm;

/// A plan whose every rule is a no-op: zero-probability chain, empty flap
/// window, zero jitter, non-degrading factor. Must prune to the empty fast
/// path, not merely "draw and never act".
fn all_zero_plan() -> FaultPlan {
    FaultPlan {
        burst_loss: vec![BurstLossRule {
            scope: Scope::ALL,
            p_gb: 0.0,
            p_bg: 0.5,
            loss_good: 0.0,
            loss_bad: 0.0,
        }],
        flaps: vec![FlapRule { scope: Scope::ALL, from_ns: 700, until_ns: 700 }],
        jitter: vec![JitterRule { scope: Scope::ALL, max_jitter_ns: 0, reorder_bound: 4 }],
        degrade: vec![DegradeRule { scope: Scope::ALL, from_ns: 0, until_ns: 1 << 40, factor: 1.0 }],
    }
}

/// The full fig10 `--quick` cell space: task size × loss × transport ×
/// seed, exactly as `farm_figure_metered(Quick, 1)` enumerates it.
fn cell_space() -> impl Strategy<Value = (usize, f64, u8, u64)> {
    (
        prop_oneof![Just(30 * 1024usize), Just(300 * 1024)],
        prop_oneof![Just(0.0f64), Just(0.01), Just(0.02)],
        0u8..3,
        0u64..3,
    )
}

fn mk_cfg(rpi: u8, loss: f64, seed: u64, plan: FaultPlan) -> MpiCfg {
    let mk = [MpiCfg::sctp, MpiCfg::tcp, MpiCfg::tcp_era][rpi as usize];
    let mut cfg = mk(8, loss).with_seed(SEED_BASE + seed);
    cfg.fault_plan = plan;
    cfg
}

/// Renders the cell the way `bin/fig10.rs` renders its column.
fn cell_stdout(r: &farm::FarmResult) -> String {
    format!("{:.1}", r.secs)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn fig10_quick_cells_are_bit_identical_under_noop_plan(cell in cell_space()) {
        let (task, loss, rpi, seed) = cell;
        let farm = farm_cfg(Scale::Quick, task, 1);
        let off = farm::run(mk_cfg(rpi, loss, seed, FaultPlan::default()), farm);
        let empty = farm::run(mk_cfg(rpi, loss, seed, FaultPlan::default()), farm);
        let zeroed = farm::run(mk_cfg(rpi, loss, seed, all_zero_plan()), farm);
        // Determinism baseline: two identical runs agree...
        prop_assert_eq!(format!("{off:?}"), format!("{empty:?}"));
        // ...and the all-zero plan is indistinguishable from no plan on the
        // whole report (FarmResult is Copy + Debug: the format is
        // exhaustive) and on the rendered figure column.
        prop_assert_eq!(format!("{off:?}"), format!("{zeroed:?}"));
        prop_assert_eq!(off.secs.to_bits(), zeroed.secs.to_bits());
        prop_assert_eq!(off.events, zeroed.events);
        prop_assert_eq!(cell_stdout(&off), cell_stdout(&zeroed));
    }
}

#[test]
fn fig10_quick_figure_is_bit_identical_under_noop_plan() {
    // End to end over the exact fig10 --quick cell grid.
    let mut totals = [0u64; 2];
    let mut tables = [String::new(), String::new()];
    for (i, zeroed) in [false, true].into_iter().enumerate() {
        for &task in &[30 * 1024, 300 * 1024] {
            for &loss in &[0.0, 0.01, 0.02] {
                for rpi in 0u8..3 {
                    let plan = if zeroed { all_zero_plan() } else { FaultPlan::default() };
                    let r = farm::run(mk_cfg(rpi, loss, 0, plan), farm_cfg(Scale::Quick, task, 1));
                    totals[i] += r.events;
                    tables[i].push_str(&format!("{} {loss} {rpi} {}\n", task, cell_stdout(&r)));
                }
            }
        }
    }
    assert_eq!(tables[0], tables[1], "fig10 --quick cell table differs under a no-op plan");
    assert_eq!(totals[0], totals[1], "events_total differs under a no-op plan");
}

#[test]
fn flap_runs_are_replayable() {
    // Same plan + same seed ⇒ byte-identical results, run to run. This is
    // the replay contract the BENCH-json `fault_plan` field relies on.
    let farm = farm_cfg(Scale::Quick, 30 * 1024, 10);
    let mk = || {
        let mut m = MpiCfg::sctp(8, 0.0).with_seed(SEED_BASE);
        m.sctp.num_paths = 3;
        m.sctp.heartbeat_interval = Some(simcore::Dur::from_millis(500));
        m.sctp.path_max_retrans = 2;
        m.fault_plan = flap_plan();
        m
    };
    let a = farm::run_with_plan(mk(), farm);
    let b = farm::run_with_plan(mk(), farm);
    assert_eq!(format!("{a:?}"), format!("{b:?}"), "flap runs must replay byte-identically");
    assert!(a.failovers >= 1, "the flap must force a failover: {a:?}");
    // And the plan itself replays through its JSON form.
    let plan = flap_plan();
    let back = netsim::FaultPlan::from_json(&plan.to_json()).unwrap();
    assert_eq!(plan, back);
}
