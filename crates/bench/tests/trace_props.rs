//! The flight recorder's hard invariant: tracing is observation, never
//! participation. Any fig10 `--quick` cell run with the recorder on must
//! produce results bit-identical to the same cell with it off — same
//! figure stdout, same `events_total`, same every runtime meter.
//!
//! The recorder is toggled through `MpiCfg::trace` (not the `TRACE` env
//! var) so parallel test threads cannot race on process environment, and
//! so no file sinks are written (those are additionally gated on
//! `TRACE=1`).

use proptest::prelude::*;

use bench_harness::{farm_cfg, Scale, SEED_BASE};
use mpi_core::MpiCfg;
use workloads::farm;

/// The full fig10 `--quick` cell space: task size × loss × transport ×
/// seed, exactly as `farm_figure_metered(Quick, 1)` enumerates it (plus
/// the extra seeds paper-scale would use).
fn cell_space() -> impl Strategy<Value = (usize, f64, u8, u64)> {
    (
        prop_oneof![Just(30 * 1024usize), Just(300 * 1024)],
        prop_oneof![Just(0.0f64), Just(0.01), Just(0.02)],
        0u8..3,
        0u64..3,
    )
}

fn mk_cfg(rpi: u8, loss: f64, seed: u64, trace: bool) -> MpiCfg {
    let mk = [MpiCfg::sctp, MpiCfg::tcp, MpiCfg::tcp_era][rpi as usize];
    let mut cfg = mk(8, loss).with_seed(SEED_BASE + seed);
    cfg.trace = trace;
    cfg
}

/// Renders the cell the way `bin/fig10.rs` renders its column, so "bit-
/// identical stdout" is asserted on the actual displayed string, not just
/// the underlying float.
fn cell_stdout(r: &farm::FarmResult) -> String {
    format!("{:.1}", r.secs)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn fig10_quick_cells_are_bit_identical_with_tracing_on(cell in cell_space()) {
        let (task, loss, rpi, seed) = cell;
        let farm = farm_cfg(Scale::Quick, task, 1);
        let off = farm::run(mk_cfg(rpi, loss, seed, false), farm);
        let on = farm::run(mk_cfg(rpi, loss, seed, true), farm);
        // The whole report — simulated seconds, events fired, every
        // runtime/burst meter, unexpected-queue peak — must agree bit for
        // bit (FarmResult is Copy + Debug: the format is exhaustive).
        prop_assert_eq!(format!("{off:?}"), format!("{on:?}"));
        prop_assert_eq!(off.secs.to_bits(), on.secs.to_bits());
        prop_assert_eq!(off.events, on.events);
        prop_assert_eq!(cell_stdout(&off), cell_stdout(&on));
    }
}

#[test]
fn fig10_quick_figure_is_bit_identical_with_tracing_on() {
    // End to end over the exact fig10 --quick cell grid: the rendered
    // per-cell strings and the event totals must not notice the recorder.
    let mut totals = [0u64; 2];
    let mut tables = [String::new(), String::new()];
    for (i, traced) in [false, true].into_iter().enumerate() {
        for &task in &[30 * 1024, 300 * 1024] {
            for &loss in &[0.0, 0.01, 0.02] {
                for rpi in 0u8..3 {
                    let r = farm::run(mk_cfg(rpi, loss, 0, traced), farm_cfg(Scale::Quick, task, 1));
                    totals[i] += r.events;
                    tables[i].push_str(&format!("{} {loss} {rpi} {}\n", task, cell_stdout(&r)));
                }
            }
        }
    }
    assert_eq!(tables[0], tables[1], "fig10 --quick cell table differs with tracing on");
    assert_eq!(totals[0], totals[1], "events_total differs with tracing on");
}
