//! Allocation-budget regression gate for the packet plane.
//!
//! The slab pools (`transport::pool`) exist so the steady state allocates
//! nothing per packet: payload lists, SACK blocks, chunk bundles, trains
//! and wake lists are all recycled. This test runs the Figure-10 farm at
//! `--quick` scale under the counting allocator and fails if allocations
//! per simulator event creep back up.
//!
//! Lives alone in its own integration-test binary: the counter is
//! process-global, so no other test may share the process, and the runner
//! is pinned to one worker thread so every allocation is attributable to
//! the metered cells.
//!
//! Budget: the pre-pool harness measured ~5.5 allocs/event on this exact
//! workload; the pooled plane measures ~0.55. The gate sits at 1.2 —
//! loose enough for allocator noise and rustc codegen drift, tight enough
//! that losing any one pool (payloads, gap lists, trains, wake lists)
//! trips it.

use bench_harness::{alloc_meter, farm_figure_metered, Scale};

const MAX_ALLOCS_PER_EVENT: f64 = 1.2;

#[test]
fn farm_quick_stays_within_alloc_budget() {
    // One worker: the counting allocator is process-global, so parallel
    // cells would still meter correctly in aggregate, but the per-cell
    // deltas (and this test's determinism) want a single thread.
    std::env::set_var("BENCH_THREADS", "1");
    alloc_meter::enable(true);

    let (_rows, bench) = farm_figure_metered(Scale::Quick, 1);

    let allocs: u64 = bench.cells.iter().map(|c| c.allocs_total).sum();
    let events = bench.events_total;
    assert!(events > 0, "farm run fired no events");
    let per_event = allocs as f64 / events as f64;
    eprintln!("allocs={allocs} events={events} allocs/event={per_event:.4}");
    assert!(
        per_event <= MAX_ALLOCS_PER_EVENT,
        "allocation regression: {per_event:.3} allocs/event exceeds budget \
         {MAX_ALLOCS_PER_EVENT} (pooled baseline ~0.55; pre-pool harness ~5.5). \
         A packet-plane path is allocating per packet again — check that \
         take_*/put_* pairs in transport::pool still cover the hot paths."
    );
}
