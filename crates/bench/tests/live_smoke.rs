//! Tier-2 loopback smoke test (`--features live-tests`).
//!
//! Opens real UDP sockets on 127.0.0.1, so it is feature-gated out of the
//! hermetic tier-1 `cargo test`. CI's `live-smoke` job runs it. Covers the
//! three live-path promises: the quick fig8 sweep completes over real
//! sockets, per-iteration latency is sane for loopback, and the emitted
//! BENCH record round-trips through the schema_version sniffer.

#![cfg(feature = "live-tests")]

use bench_harness::json::{sniff_schema_version, SCHEMA_VERSION};
use bench_harness::live;
use bench_harness::Scale;

#[test]
fn quick_sweep_completes_over_real_sockets() {
    let (rows, report) = live::live_fig8(Scale::Quick);
    assert_eq!(rows.len(), 4, "quick scale sweeps 4 sizes");
    for r in &rows {
        assert!(r.tcp_tput > 0.0 && r.sctp_tput > 0.0, "size {}: zero throughput", r.size);
    }
    // Larger messages must move more bytes per second than tiny ones — the
    // shape every ping-pong curve (sim or live) has.
    assert!(
        rows.last().unwrap().sctp_tput > rows.first().unwrap().sctp_tput,
        "throughput did not grow with message size"
    );
    assert_eq!(report.cells.len(), 2 * rows.len(), "one TCP and one SCTP cell per size");

    // The record must survive the schema sniffer: same version the sim
    // harness writes, so `results/` diffing treats live and sim runs alike.
    let dir = std::env::temp_dir().join(format!("live_smoke_{}", std::process::id()));
    report.save_to(&dir);
    let path = dir.join("BENCH_pingpong_live.json");
    let text = std::fs::read_to_string(&path).expect("report written");
    assert_eq!(sniff_schema_version(&text), SCHEMA_VERSION);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn loopback_latency_is_sane() {
    // One small-message SCTP cell: the full four-way handshake plus 20
    // echoes of 64 bytes. Loopback RTT through two userspace reactors is
    // tens of microseconds; 50 ms of slack absorbs any CI scheduling noise
    // while still catching a stuck timer pump (which would cost a 200 ms
    // delayed-SACK or a 1 s RTO per iteration).
    let c = live::sctp_cell(64, 20, 0xC0FFEE, None);
    assert!(c.rtt > 0.0, "rtt must be measurable");
    assert!(c.rtt < 0.050, "loopback rtt {:.6}s looks wedged", c.rtt);
    assert_eq!(c.udp.rx_bad_crc, 0);
    assert_eq!(c.udp.rx_bad_frame, 0);
    assert!(c.udp.tx_frames > 0, "frames must actually cross the socket");
}

#[test]
fn live_frames_flow_through_the_pcapng_sink() {
    // Trace parity: packets the UDP backend sends and receives must land in
    // the same flight recorder the sim uses, and the pcapng sink must
    // accept the capture — so `analyze` works on live runs too.
    let tracer = trace::Tracer::new(trace::DEFAULT_CAP, trace::DEFAULT_SNAP);
    let c = live::sctp_cell(4096, 5, 0xBEEF, Some(&tracer));
    let dump = tracer.dump(u64::MAX);
    let pkts = dump
        .recs
        .iter()
        .filter(|r| matches!(r.ev, trace::Event::Pkt(_)))
        .count() as u64;
    // Egress on one node + ingress mirror on the other: every datagram that
    // crossed the socket appears at least twice in the shared recorder.
    assert!(
        pkts >= c.udp.tx_frames + c.udp.rx_frames,
        "expected >= {} pkt records, got {pkts}",
        c.udp.tx_frames + c.udp.rx_frames
    );
    let pcap = dump.write_pcapng();
    assert!(pcap.len() > 1024, "pcapng capture looks empty: {} bytes", pcap.len());
    assert!(!dump.write_jsonl().is_empty());
}
