//! Property tests for the CMT multipath scheduler.
//!
//! Three contracts, each load-bearing for the `cmt` figure:
//!
//! 1. **Determinism** — a CMT run is a pure function of its config + seed.
//!    The stripe rotation, per-path timers, and rescue probes all draw
//!    from the per-run RNG; re-running the same cell must reproduce every
//!    counter bit-for-bit, or the parallel harness (and `SIM_CHECK`)
//!    would be unsound.
//! 2. **Discipline equivalence** — the reference event discipline (strict
//!    heap order) and the fast discipline (wheel + burst paths) must
//!    agree on CMT runs exactly as they do on single-path runs; the
//!    per-destination timer plane must not depend on pop order.
//! 3. **`cmt: false` isolation** — multihoming without CMT keeps the
//!    original failover-only engine: at zero loss every packet stays on
//!    the primary path and the run is bit-identical to a single-homed
//!    association. New-data striping must be gated on the knob alone.
//!
//! The process-global discipline flag means these tests must not
//! interleave; they serialize on one mutex.

use std::sync::Mutex;

use mpi_core::MpiCfg;
use proptest::prelude::*;
use workloads::pingpong::{run, run_stream, PingPongCfg, PingPongResult, StreamCfg};

/// Serializes every test in this binary: `set_reference_discipline` is
/// process-global, so a determinism case running concurrently with a
/// discipline flip would observe a mid-run switch.
static DISCIPLINE_LOCK: Mutex<()> = Mutex::new(());

fn cfg(paths: u8, cmt: bool, loss: f64, seed: u64) -> MpiCfg {
    let mut m = MpiCfg::sctp(2, loss)
        .with_seed(seed)
        .with_sctp_bufs(220 * 1024, 220 * 1024)
        .with_cmt(cmt);
    m.sctp.num_paths = paths;
    m
}

/// Full-fidelity fingerprint: every public field, float bits included
/// (Debug prints enough digits to round-trip f64).
fn fingerprint(r: &PingPongResult) -> String {
    format!("{r:?}")
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 8, ..ProptestConfig::default() })]

    /// Contract 1: same config + seed ⇒ bit-identical run, with the
    /// CMT machinery (striping, SFR, rescue probes) fully engaged.
    #[test]
    fn cmt_stream_is_deterministic(
        loss in prop_oneof![Just(0.0), Just(0.005), Just(0.02)],
        paths in 2u8..=3,
        seed in any::<u64>(),
    ) {
        let _g = DISCIPLINE_LOCK.lock().unwrap();
        let c = StreamCfg { size: 8 * 1024, count: 64 };
        let a = run_stream(cfg(paths, true, loss, seed), c);
        let b = run_stream(cfg(paths, true, loss, seed), c);
        prop_assert_eq!(fingerprint(&a), fingerprint(&b));
    }

    /// Contract 2: reference (strict heap) and fast (wheel/burst) event
    /// disciplines agree on CMT runs — the per-destination timer plane
    /// must not depend on pop order.
    #[test]
    fn cmt_matches_reference_discipline(
        loss in prop_oneof![Just(0.0), Just(0.01)],
        cmt in any::<bool>(),
        seed in any::<u64>(),
    ) {
        let _g = DISCIPLINE_LOCK.lock().unwrap();
        let c = StreamCfg { size: 8 * 1024, count: 48 };
        let fast = run_stream(cfg(3, cmt, loss, seed), c);
        simcore::set_reference_discipline(true);
        let reference = run_stream(cfg(3, cmt, loss, seed), c);
        simcore::set_reference_discipline(false);
        // Wall-clock-free fields only live in PingPongResult, so the full
        // fingerprint is comparable — but wheel_hits/heap_falls genuinely
        // differ between disciplines, so compare the simulation-visible
        // outcome instead.
        prop_assert_eq!(fast.secs.to_bits(), reference.secs.to_bits());
        prop_assert_eq!(fast.throughput.to_bits(), reference.throughput.to_bits());
        prop_assert_eq!(format!("{:?}", fast.sctp), format!("{:?}", reference.sctp));
        prop_assert_eq!(format!("{:?}", fast.net), format!("{:?}", reference.net));
    }

    /// Contract 3: without CMT, a 3-homed association at zero loss is the
    /// old failover engine — all data on the primary, simulation-visible
    /// outcome identical to single-homing. Striping is gated on the knob.
    #[test]
    fn cmt_off_is_failover_only(seed in any::<u64>()) {
        let _g = DISCIPLINE_LOCK.lock().unwrap();
        let c = StreamCfg { size: 8 * 1024, count: 64 };
        let multi = run_stream(cfg(3, false, 0.0, seed), c);
        let single = run_stream(cfg(1, false, 0.0, seed), c);
        prop_assert_eq!(multi.sctp.per_path_pkts[1], 0);
        prop_assert_eq!(multi.sctp.per_path_pkts[2], 0);
        prop_assert_eq!(multi.secs.to_bits(), single.secs.to_bits());
        prop_assert_eq!(multi.throughput.to_bits(), single.throughput.to_bits());
    }

    /// Contract 1 again on the rendezvous path: strict ping-pong with
    /// messages above the eager threshold exercises the CTS round-trip
    /// under striping.
    #[test]
    fn cmt_rendezvous_is_deterministic(
        loss in prop_oneof![Just(0.0), Just(0.01)],
        seed in any::<u64>(),
    ) {
        let _g = DISCIPLINE_LOCK.lock().unwrap();
        let c = PingPongCfg { size: 96 * 1024, iters: 6 };
        let a = run(cfg(3, true, loss, seed), c);
        let b = run(cfg(3, true, loss, seed), c);
        prop_assert_eq!(fingerprint(&a), fingerprint(&b));
    }
}
