//! Wall-clock regression gate for the simulator hot path.
//!
//! The allocation gate (`alloc_threshold.rs`) catches pools falling out of
//! the packet plane; this gate catches everything else that makes events
//! slower — a timer landing back on the heap, a SACK scan going quadratic,
//! an accidental per-packet clone. It runs the Figure-10 farm at `--quick`
//! scale on one worker thread and fails if microseconds per simulator
//! event creep past the budget.
//!
//! Lives alone in its own integration-test binary so no sibling test's
//! CPU time pollutes the wall-clock measurement.
//!
//! Budget: the pooled plane measures ~0.7 µs/event on this workload in
//! release mode (the pre-pool harness was ~4.9). The gate sits at 4.0 —
//! wide enough for a loaded CI box and codegen drift, tight enough that
//! regressing back to the pre-pool cost profile trips it.

use bench_harness::{farm_figure_metered, Scale};

const MAX_US_PER_EVENT: f64 = 4.0;

#[test]
fn farm_quick_stays_within_time_budget() {
    // Wall-clock budgets are meaningless without optimization; the
    // debug-mode tier-1 run still builds this binary but only the CI
    // `--release` invocation enforces the gate.
    if cfg!(debug_assertions) {
        eprintln!("perf gate skipped: debug build (run with --release to enforce)");
        return;
    }
    // One worker: parallel cells would divide wall-clock by the thread
    // count and hide a per-event regression behind idle cores.
    std::env::set_var("BENCH_THREADS", "1");

    let (_rows, bench) = farm_figure_metered(Scale::Quick, 1);

    assert!(bench.events_total > 0, "farm run fired no events");
    let us_per_event = bench.wall_secs_total * 1e6 / bench.events_total as f64;
    eprintln!(
        "wall={:.3}s events={} us/event={us_per_event:.4}",
        bench.wall_secs_total, bench.events_total
    );
    assert!(
        us_per_event <= MAX_US_PER_EVENT,
        "performance regression: {us_per_event:.3} µs/event exceeds budget \
         {MAX_US_PER_EVENT} (pooled baseline ~0.7; pre-pool harness ~4.9). \
         Profile with `cargo bench -p bench-harness --bench hot_paths` and \
         check the timer wheel, SACK fast paths, and pool coverage first."
    );
}
