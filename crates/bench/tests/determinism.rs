//! Same seed ⇒ same trace. The parallel harness is only sound because every
//! cell is an independent deterministic simulation; these tests pin that
//! property down for both RPIs, with loss enabled so the retransmission
//! machinery (the code the SACK fast paths rewrote) is on the trace.

use bytes::Bytes;
use mpi_core::{mpirun, MpiCfg};

use bench_harness::{farm_figure_metered, fig8_metered, human_size, render_table, Scale};

/// One fig8-style ping-pong exchange, returning the full run report
/// (events fired + every transport counter).
fn pingpong_report(cfg: MpiCfg, size: usize, iters: u32) -> String {
    let report = mpirun(cfg, move |mpi| {
        let data = Bytes::from(vec![0u8; size]);
        match mpi.rank() {
            0 => {
                for _ in 0..iters {
                    mpi.send(1, 0, data.clone());
                    let _ = mpi.recv(Some(1), Some(0));
                }
            }
            1 => {
                for _ in 0..iters {
                    let _ = mpi.recv(Some(0), Some(0));
                    mpi.send(0, 0, data.clone());
                }
            }
            _ => {}
        }
    });
    format!("{report:?}")
}

#[test]
fn same_seed_same_trace_for_tcp_and_sctp() {
    // 2% loss exercises SACK gap blocks, fast retransmit, and T3 — the
    // paths whose bookkeeping moved onto the O(1) aggregates.
    for (name, cfg) in [("tcp", MpiCfg::tcp(2, 0.02)), ("sctp", MpiCfg::sctp(2, 0.02))] {
        let a = pingpong_report(cfg.clone().with_seed(0xBA5E), 30 * 1024, 10);
        let b = pingpong_report(cfg.with_seed(0xBA5E), 30 * 1024, 10);
        assert_eq!(a, b, "{name}: identical seeds must give identical reports");
    }
}

#[test]
fn different_seeds_change_the_trace_under_loss() {
    // Sanity check that the comparison above is not vacuous: loss draws
    // come from the seeded RNG, so a different seed perturbs the trace.
    let a = pingpong_report(MpiCfg::sctp(2, 0.02).with_seed(1), 30 * 1024, 10);
    let b = pingpong_report(MpiCfg::sctp(2, 0.02).with_seed(2), 30 * 1024, 10);
    assert_ne!(a, b);
}

/// Renders fig10's stdout table exactly as `bin/fig10.rs` does, so the
/// assertion below really is "the figure the user sees is byte-identical".
fn fig10_quick_table(threads: &str) -> (String, u64) {
    std::env::set_var("BENCH_THREADS", threads);
    let (rows, bench) = farm_figure_metered(Scale::Quick, 1);
    std::env::remove_var("BENCH_THREADS");
    let table: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                human_size(r.task_bytes),
                format!("{:.0}%", r.loss * 100.0),
                format!("{:.1}", r.sctp_secs),
                format!("{:.1}", r.tcp_secs),
                format!("{:.1}", r.tcp_era_secs),
                format!("{:.2}x", r.ratio_tcp_over_sctp),
                format!("{:.2}x", r.ratio_era),
            ]
        })
        .collect();
    let out = render_table(
        "Figure 10: Bulk Processor Farm, Fanout 1 (total run time, s)",
        &["task", "loss", "SCTP s", "TCP s", "TCPera s", "TCP/SCTP", "era/SCTP"],
        &table,
    );
    (out, bench.events_total)
}

#[test]
fn fig10_quick_stdout_is_thread_count_invariant() {
    // The overhaul's hard constraint: handoff/coalescing changes may move
    // wall-clock, never results. A sequential run and a 4-worker run must
    // produce byte-identical figure output and identical event totals.
    let (seq, ev_seq) = fig10_quick_table("1");
    let (par, ev_par) = fig10_quick_table("4");
    assert_eq!(seq, par, "fig10 --quick stdout differs between BENCH_THREADS=1 and 4");
    assert_eq!(ev_seq, ev_par);
}

#[test]
fn fig8_quick_rows_and_metering_are_reproducible() {
    let (rows_a, bench_a) = fig8_metered(Scale::Quick);
    let (rows_b, bench_b) = fig8_metered(Scale::Quick);
    assert_eq!(rows_a.len(), rows_b.len());
    for (a, b) in rows_a.iter().zip(&rows_b) {
        assert_eq!(a.size, b.size);
        // Bit-exact: aggregation happens in cell order regardless of how
        // the worker pool interleaved the cells.
        assert_eq!(a.tcp_tput.to_bits(), b.tcp_tput.to_bits(), "size={}", a.size);
        assert_eq!(a.sctp_tput.to_bits(), b.sctp_tput.to_bits(), "size={}", a.size);
    }
    // Wall-clock differs run to run; the simulation-side meters must not.
    for (ca, cb) in bench_a.cells.iter().zip(&bench_b.cells) {
        assert_eq!(ca.label, cb.label);
        assert_eq!(ca.events_fired, cb.events_fired, "cell {}", ca.label);
        assert_eq!(ca.sim_secs.to_bits(), cb.sim_secs.to_bits(), "cell {}", ca.label);
    }
    assert_eq!(bench_a.events_total, bench_b.events_total);
}
