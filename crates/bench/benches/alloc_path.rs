//! Microbenchmarks for the memory-plane work: the slab pools that make the
//! packet path allocation-free, and the batched timer rearm that replaced
//! the abandon-and-reschedule pattern.
//!
//! * `pool_cycle` — build-and-retire a representative packet's worth of
//!   temporaries (payload list, gap list, chunk bundle) through the pool
//!   against allocating them fresh each round, at steady state where the
//!   pool always hits its freelists.
//! * `rearm` — a SACK-storm-shaped timer workload: one live RTO timer
//!   rearmed thousands of times, batched (`reschedule_in`, ghost-counted
//!   cancel) versus the open-coded cancel + schedule pair.
//! * `end_to_end` — the Figure-10 farm cell the alloc gate meters, as a
//!   whole-plane regression anchor.
//!
//! Run with `cargo bench --offline -p bench-harness --bench alloc_path`.

use bytes::Bytes;
use criterion::{black_box, criterion_group, criterion_main, Criterion};

use bench_harness::{farm_cfg, Scale};
use simcore::{Dur, ProcEnv, Runtime};
use workloads::farm;

fn pool_cycle(c: &mut Criterion) {
    let chunk = Bytes::from_static(&[0u8; 1452]);

    // A window's worth of temporaries per round: a 16-chunk payload list
    // (one cwnd of segments) and an 8-block gap list, the shapes the TCP
    // output and SACK paths build per burst.
    const CHUNKS: usize = 16;
    const GAPS: u64 = 8;

    // Steady state: the freelists are warm, every take is a pop and the
    // buffer arrives with its high-water capacity already grown.
    c.bench_function("pool_cycle/pooled", |b| {
        let mut pool = transport::pool::Pools::default();
        b.iter(|| {
            let mut payload = pool.take_bytes_vec();
            for _ in 0..CHUNKS {
                payload.push(chunk.clone());
            }
            let mut gaps = pool.take_gap_vec();
            for g in 0..GAPS {
                gaps.push((3 * g, 3 * g + 1));
            }
            black_box((&payload, &gaps));
            pool.put_bytes_vec(payload);
            pool.put_gap_vec(gaps);
        })
    });

    // What the same round cost before pooling: fresh Vecs growing through
    // the doubling reallocs, dropped (freed) at end of round.
    c.bench_function("pool_cycle/fresh_alloc", |b| {
        b.iter(|| {
            let mut payload: Vec<Bytes> = Vec::new();
            for _ in 0..CHUNKS {
                payload.push(chunk.clone());
            }
            let mut gaps: Vec<(u64, u64)> = Vec::new();
            for g in 0..GAPS {
                gaps.push((3 * g, 3 * g + 1));
            }
            black_box((&payload, &gaps));
        })
    });
}

fn rearm(c: &mut Criterion) {
    // One timer rearmed per "ack": the per-SACK RTO pattern. The measured
    // difference is one combined call (ghost push, one seq draw) against
    // the cancel + schedule pair.
    const REARMS: u64 = 4_000;

    fn run_storm(batched: bool) -> u64 {
        #[derive(Default)]
        struct W {
            pending: Option<simcore::TimerId>,
            fired: u64,
        }
        let mut rt = Runtime::new(W::default(), 0xF17E);
        rt.spawn("storm", move |env: ProcEnv<W>| {
            env.with(|w, ctx| {
                w.pending = Some(ctx.schedule_in(Dur::from_micros(500), |w: &mut W, _| {
                    w.fired += 1;
                }));
                for i in 0..REARMS {
                    ctx.schedule_in(Dur::from_nanos(100 * (i + 1)), move |w: &mut W, ctx| {
                        let prev = w.pending.take();
                        let f = |w: &mut W, _: &mut simcore::Ctx<W>| w.fired += 1;
                        let id = if batched {
                            ctx.reschedule_in(prev, Dur::from_micros(500), f)
                        } else {
                            if let Some(p) = prev {
                                ctx.cancel_counted(p);
                            }
                            ctx.schedule_in(Dur::from_micros(500), f)
                        };
                        w.pending = Some(id);
                    });
                }
            });
            env.sleep(Dur::from_millis(10));
        });
        rt.run().events
    }

    c.bench_function("rearm/batched", |b| b.iter(|| black_box(run_storm(true))));
    c.bench_function("rearm/cancel_then_schedule", |b| b.iter(|| black_box(run_storm(false))));
}

fn end_to_end(c: &mut Criterion) {
    // The smallest fig10 cell: the workload the CI alloc gate meters.
    c.bench_function("end_to_end/farm_30k_loss0", |b| {
        let cfg = farm_cfg(Scale::Quick, 30 * 1024, 1);
        b.iter(|| {
            let r = farm::run(mpi_core::MpiCfg::sctp(8, 0.0).with_seed(1), cfg);
            black_box(r.secs)
        })
    });
}

criterion_group!(alloc_path, pool_cycle, rearm, end_to_end);
criterion_main!(alloc_path);
