//! Microbenchmarks for the two hot paths the indexed rewrites target:
//!
//! * `sack_storm` — SCTP streaming a large window through 2% loss, so every
//!   SACK carries gap blocks and the sender's ack/mark bookkeeping (cum-ack
//!   prefix drop, rtx-queue maintenance, missing-report strikes) dominates.
//! * `matching_churn` — a farm-style flood of unexpected messages from many
//!   sources drained by wildcard receives, plus the farm workload itself,
//!   so the `(cxt, src, tag)`-indexed matcher and its incremental GC are on
//!   the measured path.
//!
//! * `park_wake` — the runtime handoff primitives themselves: a full
//!   driver↔process round trip, and a burst of uncontended CPU charges the
//!   sleep fast path folds into inline clock advances (zero handoffs).
//!
//! Run with `cargo bench --offline -p bench-harness --bench hot_paths`.

use bytes::Bytes;
use criterion::{black_box, criterion_group, criterion_main, Criterion};

use mpi_core::envelope::{EnvKind, Envelope};
use mpi_core::matching::Core;
use mpi_core::MpiCfg;
use simcore::{Dur, ProcEnv, ProcId, Runtime};
use workloads::farm::{self, FarmCfg};
use workloads::pingpong::{self, PingPongCfg};

fn sack_storm(c: &mut Criterion) {
    // 300 KB messages keep tens of chunks outstanding; 2% loss makes every
    // SACK a gap report and triggers fast retransmit + T3 regularly.
    c.bench_function("sack_storm/sctp_300k_loss2", |b| {
        b.iter(|| {
            let r = pingpong::run(
                MpiCfg::sctp(2, 0.02).with_seed(0xBA5E),
                PingPongCfg { size: 300 * 1024, iters: 4 },
            );
            black_box(r.throughput)
        })
    });
    c.bench_function("sack_storm/tcp_300k_loss2", |b| {
        b.iter(|| {
            let r = pingpong::run(
                MpiCfg::tcp(2, 0.02).with_seed(0xBA5E),
                PingPongCfg { size: 300 * 1024, iters: 4 },
            );
            black_box(r.throughput)
        })
    });
}

fn matching_churn(c: &mut Criterion) {
    // Pure matcher churn, farm-shaped: bursts of eager messages from many
    // sources pile up unexpected, then wildcard receives drain them in
    // arrival order. With the naive scan this is quadratic per round.
    c.bench_function("matching_churn/unexpected_flood", |b| {
        b.iter(|| {
            let mut core = Core::new(0, 64, 64 * 1024);
            let mut delivered = 0u64;
            for round in 0..8u32 {
                for src in 0..63u16 {
                    for k in 0..4u32 {
                        let env = Envelope {
                            kind: EnvKind::Eager,
                            src,
                            tag: (k % 3) as i32,
                            cxt: 0,
                            len: 1,
                            seq: round * 4 + k,
                        };
                        let sink = core.on_envelope(src, env).sink.unwrap();
                        core.body_chunk(sink, Bytes::from_static(b"x"));
                        let _ = core.body_done(sink);
                    }
                }
                // Drain with the farm manager's filter: ANY_SOURCE, one tag.
                for tag in 0..3i32 {
                    loop {
                        let (r, _) = core.post_recv(None, Some(tag), 0);
                        if !core.is_done(r) {
                            break;
                        }
                        let _ = core.take_done(r);
                        delivered += 1;
                    }
                }
            }
            black_box(delivered)
        })
    });
    // The real workload the flood models, end to end.
    c.bench_function("matching_churn/farm_small_sctp", |b| {
        b.iter(|| {
            let r = farm::run(MpiCfg::sctp(8, 0.0), FarmCfg::small(30 * 1024, 1));
            black_box((r.secs, r.unexpected_peak))
        })
    });
}

fn park_wake(c: &mut Criterion) {
    // Two processes ping-pong through park/wake 256 times: each exchange is
    // one deposit + wake + block_on, i.e. one full token handoff round trip
    // in each direction. The measured per-iteration cost divided by the
    // reported handoff count is the round-trip price the overhaul targets.
    c.bench_function("park_wake/round_trip_x256", |b| {
        b.iter(|| {
            #[derive(Default)]
            struct W {
                a: u32,
                b: u32,
            }
            const N: u32 = 256;
            let mut rt = Runtime::new(W::default(), 1);
            rt.spawn("a", |env: ProcEnv<W>| {
                for i in 0..N {
                    env.with(|w, ctx| {
                        w.b += 1;
                        ctx.wake(ProcId(1));
                    });
                    env.block_on(move |w, _| (w.a > i).then_some(()));
                }
            });
            rt.spawn("b", |env: ProcEnv<W>| {
                for i in 0..N {
                    env.block_on(move |w, _| (w.b > i).then_some(()));
                    env.with(|w, ctx| {
                        w.a += 1;
                        ctx.wake(ProcId(0));
                    });
                }
            });
            black_box(rt.run().handoffs)
        })
    });
    // 64 consecutive uncontended CPU charges: under the reference
    // discipline each is a timer park + wake; the fast path advances the
    // clock inline and performs zero handoffs for the whole batch.
    c.bench_function("park_wake/charge_batch_x64", |b| {
        b.iter(|| {
            let mut rt = Runtime::new((), 1);
            rt.spawn("p", |env: ProcEnv<()>| {
                for _ in 0..64 {
                    env.sleep(Dur::from_nanos(100));
                }
            });
            let out = rt.run();
            black_box((out.events, out.wakes_coalesced))
        })
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = sack_storm, matching_churn, park_wake
}
criterion_main!(benches);
