//! Microbenchmarks for the two hot paths the indexed rewrites target:
//!
//! * `sack_storm` — SCTP streaming a large window through 2% loss, so every
//!   SACK carries gap blocks and the sender's ack/mark bookkeeping (cum-ack
//!   prefix drop, rtx-queue maintenance, missing-report strikes) dominates.
//! * `matching_churn` — a farm-style flood of unexpected messages from many
//!   sources drained by wildcard receives, plus the farm workload itself,
//!   so the `(cxt, src, tag)`-indexed matcher and its incremental GC are on
//!   the measured path.
//!
//! * `park_wake` — the runtime handoff primitives themselves: a full
//!   driver↔process round trip, and a burst of uncontended CPU charges the
//!   sleep fast path folds into inline clock advances (zero handoffs).
//!
//! * `burst_path` — packet-train fusion: one `transmit_burst` call against
//!   the equivalent per-packet `transmit` loop on the raw network model, and
//!   a fusion-heavy end-to-end transfer whose deliveries ride fused train
//!   events.
//!
//! Run with `cargo bench --offline -p bench-harness --bench hot_paths`.

use bytes::Bytes;
use criterion::{black_box, criterion_group, criterion_main, Criterion};

use mpi_core::envelope::{EnvKind, Envelope};
use mpi_core::matching::Core;
use mpi_core::MpiCfg;
use simcore::{Dur, ProcEnv, ProcId, Runtime};
use workloads::farm::{self, FarmCfg};
use workloads::pingpong::{self, PingPongCfg};

fn sack_storm(c: &mut Criterion) {
    // 300 KB messages keep tens of chunks outstanding; 2% loss makes every
    // SACK a gap report and triggers fast retransmit + T3 regularly.
    c.bench_function("sack_storm/sctp_300k_loss2", |b| {
        b.iter(|| {
            let r = pingpong::run(
                MpiCfg::sctp(2, 0.02).with_seed(0xBA5E),
                PingPongCfg { size: 300 * 1024, iters: 4 },
            );
            black_box(r.throughput)
        })
    });
    c.bench_function("sack_storm/tcp_300k_loss2", |b| {
        b.iter(|| {
            let r = pingpong::run(
                MpiCfg::tcp(2, 0.02).with_seed(0xBA5E),
                PingPongCfg { size: 300 * 1024, iters: 4 },
            );
            black_box(r.throughput)
        })
    });
}

fn matching_churn(c: &mut Criterion) {
    // Pure matcher churn, farm-shaped: bursts of eager messages from many
    // sources pile up unexpected, then wildcard receives drain them in
    // arrival order. With the naive scan this is quadratic per round.
    c.bench_function("matching_churn/unexpected_flood", |b| {
        b.iter(|| {
            let mut core = Core::new(0, 64, 64 * 1024);
            let mut delivered = 0u64;
            for round in 0..8u32 {
                for src in 0..63u16 {
                    for k in 0..4u32 {
                        let env = Envelope {
                            kind: EnvKind::Eager,
                            src,
                            tag: (k % 3) as i32,
                            cxt: 0,
                            len: 1,
                            seq: round * 4 + k,
                        };
                        let sink = core.on_envelope(src, env).sink.unwrap();
                        core.body_chunk(sink, Bytes::from_static(b"x"));
                        let _ = core.body_done(sink);
                    }
                }
                // Drain with the farm manager's filter: ANY_SOURCE, one tag.
                for tag in 0..3i32 {
                    loop {
                        let (r, _) = core.post_recv(None, Some(tag), 0);
                        if !core.is_done(r) {
                            break;
                        }
                        let _ = core.take_done(r);
                        delivered += 1;
                    }
                }
            }
            black_box(delivered)
        })
    });
    // The real workload the flood models, end to end.
    c.bench_function("matching_churn/farm_small_sctp", |b| {
        b.iter(|| {
            let r = farm::run(MpiCfg::sctp(8, 0.0), FarmCfg::small(30 * 1024, 1));
            black_box((r.secs, r.unexpected_peak))
        })
    });
}

fn park_wake(c: &mut Criterion) {
    // Two processes ping-pong through park/wake 256 times: each exchange is
    // one deposit + wake + block_on, i.e. one full token handoff round trip
    // in each direction. The measured per-iteration cost divided by the
    // reported handoff count is the round-trip price the overhaul targets.
    c.bench_function("park_wake/round_trip_x256", |b| {
        b.iter(|| {
            #[derive(Default)]
            struct W {
                a: u32,
                b: u32,
            }
            const N: u32 = 256;
            let mut rt = Runtime::new(W::default(), 1);
            rt.spawn("a", |env: ProcEnv<W>| {
                for i in 0..N {
                    env.with(|w, ctx| {
                        w.b += 1;
                        ctx.wake(ProcId(1));
                    });
                    env.block_on(move |w, _| (w.a > i).then_some(()));
                }
            });
            rt.spawn("b", |env: ProcEnv<W>| {
                for i in 0..N {
                    env.block_on(move |w, _| (w.b > i).then_some(()));
                    env.with(|w, ctx| {
                        w.a += 1;
                        ctx.wake(ProcId(0));
                    });
                }
            });
            black_box(rt.run().handoffs)
        })
    });
    // 64 consecutive uncontended CPU charges: under the reference
    // discipline each is a timer park + wake; the fast path advances the
    // clock inline and performs zero handoffs for the whole batch.
    c.bench_function("park_wake/charge_batch_x64", |b| {
        b.iter(|| {
            let mut rt = Runtime::new((), 1);
            rt.spawn("p", |env: ProcEnv<()>| {
                for _ in 0..64 {
                    env.sleep(Dur::from_nanos(100));
                }
            });
            let out = rt.run();
            black_box((out.events, out.wakes_coalesced))
        })
    });
}

fn burst_path(c: &mut Criterion) {
    use netsim::{IfAddr, Net, NetCfg};
    use simcore::derive_rng;
    use simcore::SimTime;

    // The raw network model: one 32-segment train offered in a single
    // burst call versus the 32 sequential transmits it replaces. Same
    // verdicts, same RNG draws — the delta is pure per-call overhead.
    let sizes = [1500u32; 32];
    c.bench_function("burst_path/transmit_burst_x32", |b| {
        b.iter(|| {
            let mut net = Net::new(NetCfg::paper_cluster(0.01));
            let mut rng = derive_rng(0xB0, 0);
            let v = net.transmit_burst(
                SimTime::ZERO,
                IfAddr::new(0, 0),
                IfAddr::new(1, 0),
                black_box(&sizes),
                &mut rng,
            );
            black_box(v.len())
        })
    });
    c.bench_function("burst_path/transmit_seq_x32", |b| {
        b.iter(|| {
            let mut net = Net::new(NetCfg::paper_cluster(0.01));
            let mut rng = derive_rng(0xB0, 0);
            let mut n = 0usize;
            for &sz in black_box(&sizes).iter() {
                let _ = net.transmit(SimTime::ZERO, IfAddr::new(0, 0), IfAddr::new(1, 0), sz, &mut rng);
                n += 1;
            }
            black_box(n)
        })
    });
    // End to end: a lossless 300 KB ping-pong streams congestion-window
    // bursts back to back, so most deliveries ride fused train events.
    c.bench_function("burst_path/pingpong_300k_fused", |b| {
        b.iter(|| {
            let r = pingpong::run(
                MpiCfg::sctp(2, 0.0).with_seed(0xF05E),
                PingPongCfg { size: 300 * 1024, iters: 4 },
            );
            black_box((r.throughput, r.bursts_total, r.pkts_fused))
        })
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = sack_storm, matching_churn, park_wake, burst_path
}
criterion_main!(benches);
