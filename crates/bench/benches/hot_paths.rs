//! Microbenchmarks for the two hot paths the indexed rewrites target:
//!
//! * `sack_storm` — SCTP streaming a large window through 2% loss, so every
//!   SACK carries gap blocks and the sender's ack/mark bookkeeping (cum-ack
//!   prefix drop, rtx-queue maintenance, missing-report strikes) dominates.
//! * `matching_churn` — a farm-style flood of unexpected messages from many
//!   sources drained by wildcard receives, plus the farm workload itself,
//!   so the `(cxt, src, tag)`-indexed matcher and its incremental GC are on
//!   the measured path.
//!
//! Run with `cargo bench --offline -p bench-harness --bench hot_paths`.

use bytes::Bytes;
use criterion::{black_box, criterion_group, criterion_main, Criterion};

use mpi_core::envelope::{EnvKind, Envelope};
use mpi_core::matching::Core;
use mpi_core::MpiCfg;
use workloads::farm::{self, FarmCfg};
use workloads::pingpong::{self, PingPongCfg};

fn sack_storm(c: &mut Criterion) {
    // 300 KB messages keep tens of chunks outstanding; 2% loss makes every
    // SACK a gap report and triggers fast retransmit + T3 regularly.
    c.bench_function("sack_storm/sctp_300k_loss2", |b| {
        b.iter(|| {
            let r = pingpong::run(
                MpiCfg::sctp(2, 0.02).with_seed(0xBA5E),
                PingPongCfg { size: 300 * 1024, iters: 4 },
            );
            black_box(r.throughput)
        })
    });
    c.bench_function("sack_storm/tcp_300k_loss2", |b| {
        b.iter(|| {
            let r = pingpong::run(
                MpiCfg::tcp(2, 0.02).with_seed(0xBA5E),
                PingPongCfg { size: 300 * 1024, iters: 4 },
            );
            black_box(r.throughput)
        })
    });
}

fn matching_churn(c: &mut Criterion) {
    // Pure matcher churn, farm-shaped: bursts of eager messages from many
    // sources pile up unexpected, then wildcard receives drain them in
    // arrival order. With the naive scan this is quadratic per round.
    c.bench_function("matching_churn/unexpected_flood", |b| {
        b.iter(|| {
            let mut core = Core::new(0, 64, 64 * 1024);
            let mut delivered = 0u64;
            for round in 0..8u32 {
                for src in 0..63u16 {
                    for k in 0..4u32 {
                        let env = Envelope {
                            kind: EnvKind::Eager,
                            src,
                            tag: (k % 3) as i32,
                            cxt: 0,
                            len: 1,
                            seq: round * 4 + k,
                        };
                        let sink = core.on_envelope(src, env).sink.unwrap();
                        core.body_chunk(sink, Bytes::from_static(b"x"));
                        let _ = core.body_done(sink);
                    }
                }
                // Drain with the farm manager's filter: ANY_SOURCE, one tag.
                for tag in 0..3i32 {
                    loop {
                        let (r, _) = core.post_recv(None, Some(tag), 0);
                        if !core.is_done(r) {
                            break;
                        }
                        let _ = core.take_done(r);
                        delivered += 1;
                    }
                }
            }
            black_box(delivered)
        })
    });
    // The real workload the flood models, end to end.
    c.bench_function("matching_churn/farm_small_sctp", |b| {
        b.iter(|| {
            let r = farm::run(MpiCfg::sctp(8, 0.0), FarmCfg::small(30 * 1024, 1));
            black_box((r.secs, r.unexpected_peak))
        })
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = sack_storm, matching_churn
}
criterion_main!(benches);
