//! Criterion benches: one per table/figure, exercising every experiment
//! path at miniature scale. These measure the *simulator's* wall-clock
//! cost; the scientific (simulated-time) numbers come from the `fig*`
//! binaries. Keeping every experiment in `cargo bench` guards the whole
//! pipeline against performance regressions.

use criterion::{criterion_group, criterion_main, Criterion};

use bytes::Bytes;
use mpi_core::{mpirun, MpiCfg, ReduceOp};
use simcore::Dur;
use workloads::farm::{run as farm_run, run_with_fault, FarmCfg};
use workloads::nas::{run as nas_run, Class, Kernel};
use workloads::pingpong::{run as pp_run, PingPongCfg};

fn tiny_farm(task: usize, fanout: u32) -> FarmCfg {
    FarmCfg { num_tasks: 60, ..FarmCfg::small(task, fanout) }
}

/// Figure 8: the no-loss ping-pong pair at three sizes.
fn bench_fig8(c: &mut Criterion) {
    c.bench_function("fig8_pingpong_sweep", |b| {
        b.iter(|| {
            for size in [1024usize, 22528, 131069] {
                let pp = PingPongCfg { size, iters: 10 };
                pp_run(MpiCfg::tcp(2, 0.0), pp);
                pp_run(MpiCfg::sctp(2, 0.0), pp);
            }
        });
    });
}

/// Table 1: lossy ping-pong, both transports.
fn bench_table1(c: &mut Criterion) {
    c.bench_function("table1_lossy_pingpong", |b| {
        b.iter(|| {
            let pp = PingPongCfg { size: 30 * 1024, iters: 10 };
            pp_run(MpiCfg::sctp(2, 0.01).with_seed(1), pp);
            pp_run(MpiCfg::tcp(2, 0.01).with_seed(1), pp);
        });
    });
}

/// Figure 9: two representative NAS kernels at class S.
fn bench_fig9(c: &mut Criterion) {
    c.bench_function("fig9_nas_kernels", |b| {
        b.iter(|| {
            for k in [Kernel::CG, Kernel::MG] {
                nas_run(MpiCfg::sctp(8, 0.0), k, Class::S);
                nas_run(MpiCfg::tcp(8, 0.0), k, Class::S);
            }
        });
    });
}

/// Figure 10: farm fanout 1 under loss, both transports.
fn bench_fig10(c: &mut Criterion) {
    c.bench_function("fig10_farm_fanout1", |b| {
        b.iter(|| {
            let cfg = tiny_farm(30 * 1024, 1);
            farm_run(MpiCfg::sctp(8, 0.01).with_seed(2), cfg);
            farm_run(MpiCfg::tcp(8, 0.01).with_seed(2), cfg);
        });
    });
}

/// Figure 11: farm fanout 10 under loss.
fn bench_fig11(c: &mut Criterion) {
    c.bench_function("fig11_farm_fanout10", |b| {
        b.iter(|| {
            let cfg = tiny_farm(30 * 1024, 10);
            farm_run(MpiCfg::sctp(8, 0.01).with_seed(3), cfg);
            farm_run(MpiCfg::tcp(8, 0.01).with_seed(3), cfg);
        });
    });
}

/// Figure 12: 10 streams vs 1 stream.
fn bench_fig12(c: &mut Criterion) {
    c.bench_function("fig12_hol_isolation", |b| {
        b.iter(|| {
            let cfg = tiny_farm(30 * 1024, 10);
            farm_run(MpiCfg::sctp(8, 0.02).with_seed(4), cfg);
            farm_run(MpiCfg::sctp_single_stream(8, 0.02).with_seed(4), cfg);
        });
    });
}

/// Ablation A2: Option A vs Option B.
fn bench_ablate_race(c: &mut Criterion) {
    use mpi_core::{ContextMap, RaceFix, TransportSel};
    c.bench_function("ablate_race_options", |b| {
        b.iter(|| {
            for fix in [RaceFix::OptionA, RaceFix::OptionB] {
                let mut m = MpiCfg::sctp(8, 0.0).with_seed(5);
                m.transport = TransportSel::Sctp {
                    streams: 10,
                    race_fix: fix,
                    ctx_map: ContextMap::StreamHash,
                };
                farm_run(m, tiny_farm(300 * 1024, 10));
            }
        });
    });
}

/// A3: multihoming failover.
fn bench_failover(c: &mut Criterion) {
    c.bench_function("failover_farm", |b| {
        b.iter(|| {
            let mut m = MpiCfg::sctp(8, 0.0).with_seed(6);
            m.sctp.num_paths = 3;
            m.sctp.heartbeat_interval = Some(Dur::from_secs(2));
            m.sctp.path_max_retrans = 2;
            run_with_fault(m, tiny_farm(30 * 1024, 10), Some(2))
        });
    });
}

/// A5: CMT bulk transfer.
fn bench_cmt(c: &mut Criterion) {
    c.bench_function("cmt_bulk", |b| {
        b.iter(|| {
            let mut m = MpiCfg::sctp(2, 0.0).with_seed(7);
            m.sctp.num_paths = 3;
            m.sctp.cmt = true;
            pp_run(m, PingPongCfg { size: 200 * 1024, iters: 10 })
        });
    });
}

/// The collectives layer end to end (also covers communicators).
fn bench_collectives(c: &mut Criterion) {
    c.bench_function("collectives_allreduce", |b| {
        b.iter(|| {
            mpirun(MpiCfg::sctp(8, 0.0).with_seed(8), |mpi| {
                for _ in 0..5 {
                    let _ = mpi.allreduce(ReduceOp::Sum, &[1.0; 16]);
                    mpi.barrier();
                }
                let _ = mpi.bcast(0, (mpi.rank() == 0).then(|| Bytes::from(vec![0u8; 100_000])));
            })
        });
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_fig8, bench_table1, bench_fig9, bench_fig10, bench_fig11,
              bench_fig12, bench_ablate_race, bench_failover, bench_cmt,
              bench_collectives
}
criterion_main!(benches);
