//! Single-threaded reactor that runs the transport engines in real time.
//!
//! Inside the simulator, a [`simcore::Runtime`] owns the clock: events fire
//! in (time, seq) order and virtual time jumps instant to instant. On real
//! sockets nobody owns the clock — datagrams arrive whenever the kernel
//! says so. This crate bridges the two with the smallest possible loop:
//!
//! 1. advance virtual time to "wall nanoseconds since start", firing every
//!    timer that came due ([`simcore::Ctx::run_due`] — the same timer
//!    wheel, heap fallback and all, that the sim uses);
//! 2. drain the installed [`transport::backend::Backend`]'s ingress queue
//!    and dispatch the decoded packets into the engines
//!    ([`transport::backend::pump_ingress`]);
//! 3. fire anything those deliveries armed that is already due.
//!
//! A [`LiveNode`] owns one [`World`] + standalone [`Wx`] pair and maps the
//! virtual clock 1:1 onto a monotonic wall clock, so RTO, delayed-SACK,
//! heartbeat and persist timers all run at their configured real durations
//! without the engines knowing anything changed. Several nodes can live in
//! one process (each is its own little host), or one per process across a
//! network — the node only talks through its backend's socket.

#![warn(missing_docs)]

use std::time::{Duration, Instant};

use simcore::rng::derive_rng;
use simcore::SimTime;
use transport::backend::{pump_ingress, Backend};
use transport::{World, Wx};

/// One live endpoint: a world, a standalone scheduler context, and the
/// wall-clock origin their shared virtual clock is anchored to.
pub struct LiveNode {
    /// The node's protocol world (stacks + installed backend).
    pub world: World,
    /// Standalone scheduler context: timer wheel + RNG, no processes.
    pub ctx: Wx,
    t0: Instant,
    /// Total events fired across every poll (timers and deliveries).
    pub events_fired: u64,
    /// Total ingress packets dispatched into the engines.
    pub ingress_delivered: u64,
}

impl LiveNode {
    /// Wrap `world` (with its backend already installed) into a live node.
    /// `seed` derives the node's RNG — give each node its own.
    pub fn new(world: World, seed: u64) -> Self {
        LiveNode {
            world,
            ctx: Wx::standalone(derive_rng(seed, 0)),
            t0: Instant::now(),
            events_fired: 0,
            ingress_delivered: 0,
        }
    }

    /// Swap in a backend (e.g. a configured
    /// [`transport::backend::udp::UdpBackend`]); returns the old one.
    pub fn install_backend(&mut self, b: Box<dyn Backend>) -> Box<dyn Backend> {
        self.world.install_backend(b)
    }

    /// Wall nanoseconds since the node was created, as virtual time.
    pub fn wall(&self) -> SimTime {
        SimTime::from_nanos(self.t0.elapsed().as_nanos() as u64)
    }

    /// One reactor tick against the wall clock: timers → ingress → timers.
    /// Returns true if anything fired or arrived (callers can back off when
    /// a whole sweep over their nodes reports false).
    pub fn poll(&mut self) -> bool {
        let bound = self.wall();
        let worked = self.poll_at(bound);
        // Deliveries may arm zero-delay work (SACK bundling, more output);
        // fire what is already due so a reply leaves within this tick.
        let bound = self.wall();
        let tail = self.ctx.run_due(&mut self.world, bound);
        self.events_fired += tail;
        worked || tail > 0
    }

    /// [`LiveNode::poll`] against an explicit virtual bound instead of the
    /// wall clock — the deterministic variant tests drive.
    pub fn poll_at(&mut self, bound: SimTime) -> bool {
        let fired = self.ctx.run_due(&mut self.world, bound);
        let arrived = pump_ingress(&mut self.world, &mut self.ctx);
        let tail = self.ctx.run_due(&mut self.world, bound);
        self.events_fired += fired + tail;
        self.ingress_delivered += arrived as u64;
        fired + tail > 0 || arrived > 0
    }

    /// How long the node may sleep before its next timer is due (None = no
    /// timers armed; sleep until the socket turns readable). A reactor
    /// driving several nodes sleeps the minimum across them, capped so
    /// ingress latency stays bounded.
    pub fn idle_for(&self) -> Option<Duration> {
        let next = {
            let b = self.world.backend.as_ref().expect("backend installed");
            b.next_deadline(&self.ctx)?
        };
        let now = self.wall();
        Some(Duration::from_nanos(next.as_nanos().saturating_sub(now.as_nanos())))
    }

    /// Virtual seconds this node has run (== wall seconds, by construction).
    pub fn sim_secs(&self) -> f64 {
        self.ctx.now().as_nanos() as f64 / 1e9
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bytes::Bytes;
    use transport::sctp;

    /// The reactor pump is exercised hermetically: both "hosts" live in one
    /// world over the *sim* backend, and `poll_at` plays the role the wall
    /// clock plays live — every scheduled delivery and timer fires through
    /// the same run_due path `pingpong_live` uses with real sockets.
    #[test]
    fn reactor_pump_completes_a_handshake_and_a_message_round_trip() {
        let mut node = LiveNode::new(World::paper_cluster(0.0), 7);
        let ea = sctp::socket(&mut node.world, 0, 5000, false);
        let eb = sctp::socket(&mut node.world, 1, 5000, false);
        sctp::listen(&mut node.world, eb);
        let a = sctp::connect(&mut node.world, &mut node.ctx, ea, 1, 5000);

        // Drive virtual time forward in 100 µs reactor ticks.
        let mut t = 0u64;
        while !matches!(sctp::assoc_state(&node.world, a), sctp::AssocState::Established) {
            t += 100_000;
            assert!(t < 10_000_000_000, "handshake did not complete");
            node.poll_at(SimTime::from_nanos(t));
        }

        sctp::sendmsg(&mut node.world, &mut node.ctx, a, 0, 0, Bytes::from(vec![0xAB; 3000]))
            .expect("send fits the buffer");
        while !sctp::readable(&node.world, eb) {
            t += 100_000;
            assert!(t < 10_000_000_000, "message never arrived");
            node.poll_at(SimTime::from_nanos(t));
        }
        let msg = sctp::recvmsg(&mut node.world, &mut node.ctx, eb).expect("readable");
        assert_eq!(msg.len, 3000);
        assert!(node.events_fired > 0);
    }
}
