//! Property-based tests for the network model.

use netsim::{IfAddr, LinkCfg, Net, NetCfg, Verdict};
use proptest::prelude::*;
use simcore::{derive_rng, Dur, SimTime};

proptest! {
    /// FIFO invariant: packets offered to the same path in time order are
    /// delivered in time order (no reordering inside one network).
    #[test]
    fn links_never_reorder(
        sizes in prop::collection::vec(40u32..1500, 1..60),
        gaps in prop::collection::vec(0u64..20_000, 1..60),
    ) {
        let mut net = Net::new(NetCfg::paper_cluster(0.0));
        let mut rng = derive_rng(1, 1);
        let mut now = SimTime::ZERO;
        let mut last_arrival = SimTime::ZERO;
        for (i, &sz) in sizes.iter().enumerate() {
            now += Dur::from_nanos(*gaps.get(i).unwrap_or(&0));
            match net.transmit(now, IfAddr::new(0, 0), IfAddr::new(1, 0), sz, &mut rng) {
                Verdict::Deliver { at } => {
                    prop_assert!(at >= last_arrival, "reordered: {} < {}", at, last_arrival);
                    prop_assert!(at > now, "arrival not after send");
                    last_arrival = at;
                }
                Verdict::Drop(_) => {} // tail drop is fine; order still holds
            }
        }
    }

    /// Latency lower bound: nothing arrives faster than serialization on
    /// two hops plus propagation plus switch latency.
    #[test]
    fn latency_never_beats_physics(sz in 40u32..1500) {
        let cfg = NetCfg::paper_cluster(0.0);
        let mut net = Net::new(cfg);
        let mut rng = derive_rng(2, 2);
        let now = SimTime::from_nanos(1_000_000);
        if let Verdict::Deliver { at } =
            net.transmit(now, IfAddr::new(2, 1), IfAddr::new(5, 1), sz, &mut rng)
        {
            let ser = simcore::transmission_time(sz as u64, cfg.link.bandwidth_bps);
            let floor = ser + ser + cfg.link.prop_delay + cfg.link.prop_delay + cfg.switch_latency;
            prop_assert!(at.since(now) >= floor);
        }
    }

    /// Full loss drops everything; zero loss (uncongested) drops nothing.
    #[test]
    fn loss_extremes(sz in 40u32..1500, t in 0u64..1_000_000) {
        let mut rng = derive_rng(3, 3);
        let mut all = Net::new(NetCfg::paper_cluster(1.0));
        let v = all.transmit(SimTime::from_nanos(t), IfAddr::new(0, 0), IfAddr::new(1, 0), sz, &mut rng);
        let dropped = matches!(v, Verdict::Drop(netsim::DropReason::Loss));
        prop_assert!(dropped);
        let mut none = Net::new(NetCfg::paper_cluster(0.0));
        let v = none.transmit(SimTime::from_nanos(t), IfAddr::new(0, 0), IfAddr::new(1, 0), sz, &mut rng);
        let delivered = matches!(v, Verdict::Deliver { .. });
        prop_assert!(delivered);
    }

    /// Stats bookkeeping: offered = delivered + dropped, always.
    #[test]
    fn stats_balance(ops in prop::collection::vec((0u16..8, 0u16..8, 40u32..1500), 0..100)) {
        let mut cfg = NetCfg::paper_cluster(0.3);
        cfg.link = LinkCfg { queue_cap_bytes: 5_000, ..LinkCfg::default() };
        let mut net = Net::new(cfg);
        let mut rng = derive_rng(4, 4);
        for (src, dst, sz) in ops {
            let _ = net.transmit(
                SimTime::ZERO,
                IfAddr::new(src, 0),
                IfAddr::new(dst, 0),
                sz,
                &mut rng,
            );
        }
        let s = net.stats;
        prop_assert_eq!(
            s.packets_offered,
            s.packets_delivered + s.drops_loss + s.drops_queue + s.drops_down
        );
    }
}

proptest! {
    /// Burst-path equivalence: offering K packets through `transmit_burst`
    /// produces exactly the per-packet verdicts, the same stats, and leaves
    /// the loss RNG at the same stream position as K sequential `transmit`
    /// calls. Loss probability, queue pressure, and packet sizes are all
    /// randomized so every verdict arm (deliver, loss, queue-full) is hit.
    #[test]
    fn burst_matches_per_packet(
        sizes in prop::collection::vec(40u32..1500, 1..40),
        loss_pm in 0u32..200,
        cap in 2_000u32..60_000,
        t in 0u64..1_000_000,
        seed in 0u64..32,
        loopback in any::<bool>(),
    ) {
        let mut cfg = NetCfg::paper_cluster(loss_pm as f64 / 1000.0);
        cfg.link = LinkCfg { queue_cap_bytes: cap as u64, ..LinkCfg::default() };
        let mut ref_net = Net::new(cfg);
        let mut burst_net = ref_net.clone();
        let mut ref_rng = derive_rng(7, seed);
        let mut burst_rng = ref_rng.clone();
        let now = SimTime::from_nanos(t);
        let (src, dst) = if loopback {
            (IfAddr::new(3, 0), IfAddr::new(3, 1))
        } else {
            (IfAddr::new(0, 0), IfAddr::new(1, 0))
        };

        let expected: Vec<Verdict> = sizes
            .iter()
            .map(|&sz| ref_net.transmit(now, src, dst, sz, &mut ref_rng))
            .collect();
        let got = burst_net.transmit_burst(now, src, dst, &sizes, &mut burst_rng);

        prop_assert_eq!(&got, &expected);
        prop_assert_eq!(burst_net.stats, ref_net.stats);
        // Same stream position: the next draw from each generator agrees.
        use rand::Rng;
        prop_assert_eq!(burst_rng.gen::<u64>(), ref_rng.gen::<u64>());
    }

    /// Burst-path equivalence holds under an installed fault plan too: the
    /// per-packet fault sequence (flap → Gilbert–Elliott → Bernoulli →
    /// degraded links → jitter) draws from the RNG in the same order on
    /// both paths, and all per-rule state (chain phase, jitter reorder
    /// window) advances identically.
    #[test]
    fn burst_matches_per_packet_under_fault_plan(
        sizes in prop::collection::vec(40u32..1500, 1..40),
        loss_pm in 0u32..100,
        p_gb in 0.0f64..0.2,
        p_bg in 0.05f64..1.0,
        loss_bad in 0.1f64..1.0,
        flap_from in 0u64..800_000,
        flap_len in 0u64..600_000,
        jitter_ns in 0u64..40_000,
        bound in 0u32..6,
        factor in 0.2f64..1.0,
        t in 0u64..1_000_000,
        seed in 0u64..32,
    ) {
        use netsim::{BurstLossRule, DegradeRule, FaultPlan, FlapRule, JitterRule, Scope};
        let mut cfg = NetCfg::paper_cluster(loss_pm as f64 / 1000.0);
        cfg.link = LinkCfg { queue_cap_bytes: 20_000, ..LinkCfg::default() };
        let plan = FaultPlan {
            burst_loss: vec![BurstLossRule { scope: Scope::ALL, p_gb, p_bg, loss_good: 0.0, loss_bad }],
            flaps: vec![FlapRule { scope: Scope::on_iface(0), from_ns: flap_from, until_ns: flap_from + flap_len }],
            jitter: vec![JitterRule { scope: Scope::ALL, max_jitter_ns: jitter_ns, reorder_bound: bound }],
            degrade: vec![DegradeRule { scope: Scope::ALL, from_ns: 200_000, until_ns: 900_000, factor }],
        };
        let mut ref_net = Net::new(cfg);
        ref_net.set_fault_plan(plan.clone());
        let mut burst_net = Net::new(cfg);
        burst_net.set_fault_plan(plan);
        let mut ref_rng = derive_rng(13, seed);
        let mut burst_rng = ref_rng.clone();
        let now = SimTime::from_nanos(t);
        let (src, dst) = (IfAddr::new(0, 0), IfAddr::new(1, 0));

        let expected: Vec<Verdict> = sizes
            .iter()
            .map(|&sz| ref_net.transmit(now, src, dst, sz, &mut ref_rng))
            .collect();
        let got = burst_net.transmit_burst(now, src, dst, &sizes, &mut burst_rng);

        prop_assert_eq!(&got, &expected);
        prop_assert_eq!(burst_net.stats, ref_net.stats);
        use rand::Rng;
        prop_assert_eq!(burst_rng.gen::<u64>(), ref_rng.gen::<u64>());
    }
}
