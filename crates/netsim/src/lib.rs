//! `netsim` — the simulated cluster network for the `sctp-mpi` reproduction.
//!
//! Models the paper's testbed: eight hosts, three independent 1 Gb/s
//! switched Ethernet networks (one per interface), and Dummynet-style
//! configurable per-path packet loss.
//!
//! This crate is *pure*: it never schedules events. [`Net::transmit`] is a
//! function from (time, packet) to a delivery instant or a drop verdict; the
//! transport layer above turns delivery instants into scheduler events. That
//! keeps the network unit-testable without a running simulation.
//!
//! Beyond the uniform Bernoulli pipe, the [`fault`] module scripts
//! deterministic failure scenarios — bursty Gilbert–Elliott loss, scheduled
//! link flaps, bounded-reordering delay jitter, and bandwidth-degradation
//! windows — installed per-[`Net`] via [`Net::set_fault_plan`].

#![warn(missing_docs)]

pub mod addr;
pub mod fault;
pub mod link;
pub mod net;
pub mod shardnet;

pub use addr::{HostId, IfAddr};
pub use fault::{BurstLossRule, DegradeRule, FaultPlan, FlapRule, JitterRule, Scope};
pub use link::{DropReason, LinkCfg, LinkStats};
pub use net::{Net, NetCfg, NetStats, Verdict};
pub use shardnet::{NicStats, NodeNic, SendVerdict, ShardNetCfg};
