//! Addressing: hosts and interfaces.
//!
//! The testbed in the paper is eight hosts, each with three gigabit NICs on
//! three *independent* switched networks (one per interface index). An
//! address is therefore `(host, iface)`; interface `i` of every host sits on
//! network `i`, and a packet travels between same-indexed interfaces.

use std::fmt;

/// A simulated host (one MPI node).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct HostId(pub u16);

/// An interface address: `(host, iface)` — the simulator's analogue of an
/// IP address bound to one NIC.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct IfAddr {
    /// Host index within the cluster.
    pub host: u16,
    /// Interface index on that host (= network index).
    pub iface: u8,
}

impl IfAddr {
    /// Address of interface `iface` on host `host`.
    pub const fn new(host: u16, iface: u8) -> Self {
        IfAddr { host, iface }
    }

    /// The host this interface belongs to.
    pub const fn host_id(self) -> HostId {
        HostId(self.host)
    }

    /// The same host's address on another network (used by SCTP failover).
    pub const fn on_iface(self, iface: u8) -> IfAddr {
        IfAddr { host: self.host, iface }
    }
}

impl fmt::Display for IfAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "h{}.{}", self.host, self.iface)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn on_iface_keeps_host() {
        let a = IfAddr::new(3, 0);
        assert_eq!(a.on_iface(2), IfAddr::new(3, 2));
        assert_eq!(a.host_id(), HostId(3));
        assert_eq!(format!("{a}"), "h3.0");
    }
}
