//! Shard-aware star network for the scale experiments (incast, tenants).
//!
//! [`crate::net::Net`] owns every link in one struct — perfect for an
//! 8-host sequential run, useless for a sharded one where no single thread
//! may own the whole network. This module splits the same star topology
//! into per-node NICs so each piece lives on the shard that owns its node:
//!
//! * The **uplink** (node → switch) belongs to the *sending* node: the
//!   sender serializes, evaluates the fault plane, draws loss and jitter
//!   from its own per-node RNG stream, and stamps the packet's arrival
//!   instant at the destination's downlink input — all from sender-owned
//!   state, so the stamp is independent of the shard partition.
//! * The **switch** is a fixed store-and-forward latency (contention in an
//!   incast lives at the victim's downlink, not in the fabric).
//! * The **downlink** (switch → node) belongs to the *receiving* node and
//!   is updated in the engine's merged `(at, src, sseq)` arrival order, so
//!   its FIFO occupancy — and therefore *which* packet tail-drops during
//!   incast collapse — is bit-identical at any shard count.
//!
//! The minimum cross-node latency is `prop_delay + switch_latency`; that is
//! the conservative lookahead bound the sharded engine runs under
//! ([`ShardNetCfg::lookahead`]). Serialization time does not count toward
//! it (a zero-byte packet serializes in zero time), and jitter only ever
//! delays, so the bound is safe with every fault rule active.

use rand::rngs::SmallRng;
use rand::Rng;
use simcore::{derive_rng, Dur, SimTime};

use crate::addr::IfAddr;
use crate::fault::{FaultPlan, FaultState};
use crate::link::{DropReason, Link, LinkCfg, LinkDrop};

/// Parameters of the sharded star network.
#[derive(Debug, Clone)]
pub struct ShardNetCfg {
    /// Node count. Bounded by the fault plane's 16-bit host addressing.
    pub nodes: u32,
    /// Uplink/downlink parameters (rate, propagation delay, FIFO capacity).
    pub link: LinkCfg,
    /// Store-and-forward latency of the switch fabric.
    pub switch_latency: Dur,
    /// Bernoulli loss probability, applied once per path at the source.
    pub loss_prob: f64,
    /// Fault plan, instantiated per source node (GE chains, flap windows,
    /// jitter state all advance on the owning shard).
    pub fault_plan: Option<FaultPlan>,
    /// Smallest wire size (bytes) the model ever offers to a NIC. Its
    /// full-rate serialization time is a latency every packet pays on the
    /// uplink, so it legally widens the lookahead bound. Zero (the default)
    /// claims nothing and keeps the bound at `prop + switch`.
    pub min_wire_bytes: u32,
}

impl Default for ShardNetCfg {
    fn default() -> Self {
        ShardNetCfg {
            nodes: 2,
            link: LinkCfg::default(),
            switch_latency: Dur::from_micros(2),
            loss_prob: 0.0,
            fault_plan: None,
            min_wire_bytes: 0,
        }
    }
}

impl ShardNetCfg {
    /// The conservative lookahead bound: no packet sent at `t` can reach
    /// another node's downlink input before
    /// `t + ser(min_wire_bytes) + prop + switch`. The serialization term
    /// uses the configured line rate; fault-plane degradation only slows
    /// links down, and jitter only delays, so the bound survives every
    /// fault rule.
    ///
    /// Panics when that bound is zero — a zero-latency path admits no
    /// conservative window, so the sharded engine rejects the topology.
    pub fn lookahead(&self) -> Dur {
        let ser = simcore::transmission_time(self.min_wire_bytes as u64, self.link.bandwidth_bps);
        let l = ser + self.link.prop_delay + self.switch_latency;
        assert!(
            l > Dur::ZERO,
            "zero-latency links are not shardable: prop_delay + switch_latency must be positive"
        );
        l
    }
}

/// RNG stream namespace for per-node NIC draws, so a model using
/// `derive_rng(seed, node)` for its own purposes never collides.
const NIC_STREAM: u64 = 0x4E49_4300; // "NIC\0"

/// What happened to a packet offered to the source NIC.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SendVerdict {
    /// Accepted; hand the instant to the engine's mailbox.
    InFlight {
        /// When the last bit reaches the destination's downlink input.
        at_dst: SimTime,
    },
    /// Dropped before reaching the destination (loss pipe, flap window,
    /// uplink queue overflow).
    Dropped(DropReason),
}

/// Per-source drop/accept counters (the downlink keeps its own in
/// [`Link::stats`]).
#[derive(Debug, Clone, Copy, Default)]
pub struct NicStats {
    /// Packets dropped by the Bernoulli pipe or a Gilbert–Elliott chain.
    pub drops_loss: u64,
    /// Packets refused while inside a flap window.
    pub drops_down: u64,
}

/// One node's network attachment: its uplink, its downlink, its RNG stream
/// and its fault-plane state. Lives in the owning shard's world.
#[derive(Debug, Clone)]
pub struct NodeNic {
    node: u32,
    /// Uplink to the switch (touched only by this node's sends).
    pub up: Link,
    /// Downlink from the switch (touched only in merged arrival order).
    pub down: Link,
    switch_latency: Dur,
    loss_prob: f64,
    rng: SmallRng,
    fault: FaultState,
    /// Source-side drop counters.
    pub stats: NicStats,
}

impl NodeNic {
    /// NIC for `node` under `cfg`, with its RNG stream derived from the
    /// master `seed` and the node id (partition-invariant by construction).
    pub fn new(cfg: &ShardNetCfg, node: u32, seed: u64) -> NodeNic {
        assert!(node < cfg.nodes, "node {node} outside the configured {} nodes", cfg.nodes);
        assert!(cfg.nodes <= u16::MAX as u32 + 1, "fault-plane addressing is 16-bit");
        let mut fault = FaultState::default();
        if let Some(plan) = &cfg.fault_plan {
            fault.install(plan.clone());
        }
        NodeNic {
            node,
            up: Link::new(cfg.link),
            down: Link::new(cfg.link),
            switch_latency: cfg.switch_latency,
            loss_prob: cfg.loss_prob,
            rng: derive_rng(seed ^ NIC_STREAM, node as u64),
            fault,
            stats: NicStats::default(),
        }
    }

    /// This NIC's node id.
    pub fn node(&self) -> u32 {
        self.node
    }

    /// Offer `wire_bytes` to the uplink at `now`, headed for `dst`. The
    /// fault order (flap → GE chain → Bernoulli → degraded rate → queue →
    /// jitter) matches [`crate::net::Net::transmit`] exactly.
    pub fn send(&mut self, now: SimTime, dst: u32, wire_bytes: u32) -> SendVerdict {
        let src_if = IfAddr::new(self.node as u16, 0);
        let dst_if = IfAddr::new(dst as u16, 0);
        let faulted = self.fault.active();
        if faulted {
            if self.fault.flap_blocks(&None, now, src_if, dst_if) {
                self.stats.drops_down += 1;
                return SendVerdict::Dropped(DropReason::LinkDown);
            }
            if self.fault.bursty_drop(&None, now, src_if, dst_if, &mut self.rng) {
                self.stats.drops_loss += 1;
                return SendVerdict::Dropped(DropReason::Loss);
            }
        }
        if self.loss_prob > 0.0 && self.rng.gen_bool(self.loss_prob) {
            self.stats.drops_loss += 1;
            return SendVerdict::Dropped(DropReason::Loss);
        }
        let bps = if faulted {
            self.fault.degraded_bps(&None, now, src_if, dst_if, self.up.cfg.bandwidth_bps)
        } else {
            self.up.cfg.bandwidth_bps
        };
        match self.up.transmit_at_rate(now, wire_bytes, bps) {
            Ok(at_switch) => {
                let mut at_dst = at_switch + self.switch_latency;
                if faulted {
                    at_dst = self.fault.jitter_arrival(at_dst, src_if, dst_if, &mut self.rng);
                }
                SendVerdict::InFlight { at_dst }
            }
            Err(e) => SendVerdict::Dropped(e.into()),
        }
    }

    /// A packet reached this node's downlink input at `t_in` (a merged
    /// mailbox arrival). Returns the delivery instant at the node, or the
    /// tail-drop verdict — the incast-collapse signal.
    pub fn recv(&mut self, t_in: SimTime, wire_bytes: u32) -> Result<SimTime, LinkDrop> {
        self.down.transmit(t_in, wire_bytes)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg(nodes: u32) -> ShardNetCfg {
        ShardNetCfg { nodes, ..ShardNetCfg::default() }
    }

    #[test]
    fn lookahead_is_prop_plus_switch() {
        let c = cfg(4);
        assert_eq!(c.lookahead(), Dur::from_micros(22));
    }

    #[test]
    fn min_wire_serialization_widens_lookahead() {
        // 64 bytes at 1 Gb/s serialize in 512 ns; every packet pays at
        // least that on the uplink, so the conservative bound grows by it.
        let c = ShardNetCfg { min_wire_bytes: 64, ..cfg(4) };
        assert_eq!(c.lookahead(), Dur::from_micros(22) + Dur::from_nanos(512));
    }

    #[test]
    #[should_panic(expected = "not shardable")]
    fn zero_latency_rejected() {
        let mut c = cfg(2);
        c.link.prop_delay = Dur::ZERO;
        c.switch_latency = Dur::ZERO;
        let _ = c.lookahead();
    }

    #[test]
    fn send_respects_lookahead() {
        let c = cfg(2);
        let mut nic = NodeNic::new(&c, 0, 7);
        match nic.send(SimTime::ZERO, 1, 1500) {
            SendVerdict::InFlight { at_dst } => {
                // 12 µs serialization + 20 µs prop + 2 µs switch.
                assert_eq!(at_dst, SimTime::ZERO + Dur::from_micros(34));
                assert!(at_dst.since(SimTime::ZERO) >= c.lookahead());
            }
            v => panic!("unexpected {v:?}"),
        }
    }

    #[test]
    fn downlink_serializes_fifo() {
        let c = cfg(2);
        let mut nic = NodeNic::new(&c, 1, 7);
        let t0 = SimTime::ZERO + Dur::from_micros(100);
        let a = nic.recv(t0, 1500).unwrap();
        let b = nic.recv(t0, 1500).unwrap();
        assert_eq!(b.since(a), Dur::from_micros(12), "second packet queues behind the first");
    }

    #[test]
    fn incast_overflows_the_victim_downlink() {
        let mut c = cfg(64);
        c.link.queue_cap_bytes = 8 * 1500;
        let mut victim = NodeNic::new(&c, 0, 7);
        let t0 = SimTime::ZERO;
        let mut dropped = 0;
        for _ in 0..64 {
            if victim.recv(t0, 1500).is_err() {
                dropped += 1;
            }
        }
        assert!(dropped > 0, "64 synchronized arrivals must overflow an 8-packet FIFO");
        assert_eq!(victim.down.stats.drops_queue, dropped);
    }

    #[test]
    fn loss_draws_come_from_the_node_stream() {
        let mut c = cfg(2);
        c.loss_prob = 0.5;
        let run = |seed: u64| {
            let mut nic = NodeNic::new(&c, 0, seed);
            (0..64)
                .map(|i| {
                    let now = SimTime::from_nanos(i * 50_000);
                    matches!(nic.send(now, 1, 100), SendVerdict::Dropped(_))
                })
                .collect::<Vec<_>>()
        };
        assert_eq!(run(1), run(1), "same seed, same loss pattern");
        assert_ne!(run(1), run(2), "different seed, different pattern");
    }
}
