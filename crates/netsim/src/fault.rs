//! Deterministic fault-injection plane.
//!
//! A [`FaultPlan`] scripts *when and where the network misbehaves*, beyond
//! the uniform Bernoulli pipe of [`crate::NetCfg::loss_prob`]. Four fault
//! models compose, each as a list of scoped rules:
//!
//! - **Bursty loss** ([`BurstLossRule`]): a Gilbert–Elliott two-state Markov
//!   chain per rule. In the *good* state packets drop with `loss_good`
//!   (usually 0); in the *bad* state with `loss_bad` (usually high). The
//!   chain moves good→bad with probability `p_gb` and bad→good with `p_bg`
//!   per offered packet, producing correlated loss bursts whose long-run
//!   average can be matched to a Bernoulli rate (see
//!   [`BurstLossRule::matched`]).
//! - **Link flaps** ([`FlapRule`]): a scheduled `[from, until)` window during
//!   which every matching packet is refused with
//!   [`DropReason::LinkDown`](crate::DropReason::LinkDown) — the same
//!   verdict an administratively downed interface produces, so the
//!   transports' failover machinery is exercised end to end.
//! - **Delay jitter** ([`JitterRule`]): adds `U[0, max_jitter_ns]` to each
//!   matching delivery instant, with reordering bounded so that no packet is
//!   overtaken by more than `reorder_bound` later packets.
//! - **Bandwidth degradation** ([`DegradeRule`]): a scheduled window during
//!   which matching links serialize at `factor` × their configured rate.
//!
//! # Determinism contract
//!
//! All randomness comes from the caller-supplied sequential RNG — the same
//! one the Bernoulli pipe uses — with a *fixed draw order per offered
//! packet*: every matching burst-loss rule draws exactly twice (state
//! transition, then loss), in plan order, whether or not an earlier rule
//! already dropped the packet; then the Bernoulli pipe draws (if
//! configured); then every matching jitter rule draws once, in plan order,
//! but only if the packet survived to delivery. Flaps and degradation draw
//! nothing. Because [`Net::transmit`](crate::Net::transmit) and
//! [`Net::transmit_burst`](crate::Net::transmit_burst) follow the identical
//! sequence per packet, burst-equivalence holds under any plan.
//!
//! An **empty plan is free**: [`FaultState::install`] prunes rules that can
//! provably never act (zero probabilities, empty windows, zero jitter,
//! factor ≥ 1), and when nothing survives pruning the per-packet fast path
//! is a single boolean test — no RNG draws, no verdict changes. Figure
//! output is therefore bit-identical to a build without the fault plane,
//! which the `fault_props` proptest pins down.
//!
//! # Replay
//!
//! Plans serialize to a small hand-rolled JSON form ([`FaultPlan::to_json`]
//! / [`FaultPlan::from_json`]) that the bench harness embeds in its
//! `results/BENCH_*.json` reports, so any faulted experiment can be re-run
//! bit-exactly from the report alone.
//!
//! # Observability
//!
//! Every rule-state *edge* (chain enters/leaves the bad state, flap window
//! opens/closes, degradation window opens/closes) is emitted into the
//! flight recorder as a [`trace::FaultKind`] event. Edges are detected
//! lazily at packet-offer time — the fault plane, like the rest of
//! `netsim`, never schedules events of its own.

use std::collections::VecDeque;

use rand::rngs::SmallRng;
use rand::Rng;
use simcore::SimTime;
use trace::{FaultEv, FaultKind};

use crate::addr::IfAddr;

/// Which paths a fault rule applies to. `None` fields are wildcards.
///
/// A path `src → dst` matches when `iface` (if set) equals the path's
/// network index and `host` (if set) equals either endpoint's host — so a
/// scope can pin a fault to one network, one host's links, or one specific
/// attachment point.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Scope {
    /// Restrict to paths touching this host (either endpoint).
    pub host: Option<u16>,
    /// Restrict to this network (interface index).
    pub iface: Option<u8>,
}

impl Scope {
    /// Every path on every network.
    pub const ALL: Scope = Scope { host: None, iface: None };

    /// Every path on network `iface`.
    pub fn on_iface(iface: u8) -> Scope {
        Scope { host: None, iface: Some(iface) }
    }

    /// Paths touching `host` on network `iface`.
    pub fn on_link(host: u16, iface: u8) -> Scope {
        Scope { host: Some(host), iface: Some(iface) }
    }

    /// Does the path `src → dst` fall under this scope? (`src.iface ==
    /// dst.iface` is guaranteed by the caller — networks are independent.)
    pub fn matches(&self, src: IfAddr, dst: IfAddr) -> bool {
        self.iface.is_none_or(|i| i == src.iface)
            && self.host.is_none_or(|h| h == src.host || h == dst.host)
    }

    fn host_i32(&self) -> i32 {
        self.host.map_or(-1, |h| h as i32)
    }

    fn iface_i32(&self) -> i32 {
        self.iface.map_or(-1, |i| i as i32)
    }
}

/// Gilbert–Elliott bursty-loss rule. See the module docs for the chain
/// definition; the chain starts in the good state at install time.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BurstLossRule {
    /// Paths the chain observes and acts on.
    pub scope: Scope,
    /// Per-packet probability of moving good → bad.
    pub p_gb: f64,
    /// Per-packet probability of moving bad → good.
    pub p_bg: f64,
    /// Loss probability while in the good state.
    pub loss_good: f64,
    /// Loss probability while in the bad state.
    pub loss_bad: f64,
}

impl BurstLossRule {
    /// Build a chain whose **long-run average loss rate** equals `avg_loss`
    /// while losses arrive in bursts of `mean_burst_pkts` expected length:
    /// the stationary bad-state fraction is `avg_loss / loss_bad` (the good
    /// state is lossless), `p_bg = 1 / mean_burst_pkts`, and `p_gb` follows
    /// from stationarity. This is how the bursty fig10/fig11 variants match
    /// the paper's 1 % / 2 % Bernoulli cells.
    pub fn matched(scope: Scope, avg_loss: f64, loss_bad: f64, mean_burst_pkts: f64) -> BurstLossRule {
        assert!(avg_loss >= 0.0 && loss_bad > 0.0 && avg_loss < loss_bad, "need avg_loss < loss_bad");
        assert!(mean_burst_pkts >= 1.0, "a burst is at least one packet");
        let pi_bad = avg_loss / loss_bad;
        let p_bg = 1.0 / mean_burst_pkts;
        let p_gb = p_bg * pi_bad / (1.0 - pi_bad);
        BurstLossRule { scope, p_gb, p_bg, loss_good: 0.0, loss_bad }
    }

    /// Stationary long-run average loss rate of this chain.
    pub fn avg_loss(&self) -> f64 {
        if self.p_gb + self.p_bg == 0.0 {
            return self.loss_good; // chain never leaves its initial (good) state
        }
        let pi_bad = self.p_gb / (self.p_gb + self.p_bg);
        pi_bad * self.loss_bad + (1.0 - pi_bad) * self.loss_good
    }

    fn is_noop(&self) -> bool {
        // Starting good: if the chain can never leave the good state and the
        // good state never drops, the rule can never act.
        (self.p_gb == 0.0 && self.loss_good == 0.0)
            || (self.loss_good == 0.0 && self.loss_bad == 0.0)
    }
}

/// Scheduled link flap: matching paths refuse everything during
/// `[from, until)` with a `LinkDown` verdict.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FlapRule {
    /// Paths taken down during the window.
    pub scope: Scope,
    /// Window start (inclusive), nanoseconds of simulated time.
    pub from_ns: u64,
    /// Window end (exclusive), nanoseconds of simulated time.
    pub until_ns: u64,
}

impl FlapRule {
    fn is_noop(&self) -> bool {
        self.from_ns >= self.until_ns
    }

    fn covers(&self, now_ns: u64) -> bool {
        (self.from_ns..self.until_ns).contains(&now_ns)
    }
}

/// Per-packet delay jitter with bounded reordering: each matching delivery
/// is delayed by `U[0, max_jitter_ns]`, clamped so that no packet is
/// overtaken by more than `reorder_bound` packets offered after it.
/// `reorder_bound = 0` jitters latency but preserves FIFO order.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct JitterRule {
    /// Paths whose deliveries are jittered.
    pub scope: Scope,
    /// Maximum added delay, nanoseconds (uniform).
    pub max_jitter_ns: u64,
    /// Maximum number of later packets that may overtake any given packet.
    pub reorder_bound: u32,
}

impl JitterRule {
    fn is_noop(&self) -> bool {
        self.max_jitter_ns == 0
    }
}

/// Time-windowed bandwidth degradation: during `[from, until)`, matching
/// links serialize at `factor` × the configured rate (`0 < factor < 1`).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DegradeRule {
    /// Paths degraded during the window.
    pub scope: Scope,
    /// Window start (inclusive), nanoseconds of simulated time.
    pub from_ns: u64,
    /// Window end (exclusive), nanoseconds of simulated time.
    pub until_ns: u64,
    /// Bandwidth multiplier in `(0, 1)`.
    pub factor: f64,
}

impl DegradeRule {
    fn is_noop(&self) -> bool {
        self.from_ns >= self.until_ns || self.factor >= 1.0
    }

    fn covers(&self, now_ns: u64) -> bool {
        (self.from_ns..self.until_ns).contains(&now_ns)
    }
}

/// A complete fault script: four rule lists, all empty by default. See the
/// module docs for the per-packet evaluation order and determinism
/// contract.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct FaultPlan {
    /// Gilbert–Elliott bursty-loss chains.
    pub burst_loss: Vec<BurstLossRule>,
    /// Scheduled link up/down windows.
    pub flaps: Vec<FlapRule>,
    /// Delay-jitter rules.
    pub jitter: Vec<JitterRule>,
    /// Bandwidth-degradation windows.
    pub degrade: Vec<DegradeRule>,
}

impl FaultPlan {
    /// True when the plan holds no rules at all.
    pub fn is_empty(&self) -> bool {
        self.burst_loss.is_empty()
            && self.flaps.is_empty()
            && self.jitter.is_empty()
            && self.degrade.is_empty()
    }

    /// True when no rule can ever change a verdict, a delivery instant, or
    /// the RNG stream — i.e. installing this plan is provably equivalent to
    /// installing an empty one.
    pub fn is_noop(&self) -> bool {
        self.burst_loss.iter().all(|r| r.is_noop())
            && self.flaps.iter().all(|r| r.is_noop())
            && self.jitter.iter().all(|r| r.is_noop())
            && self.degrade.iter().all(|r| r.is_noop())
    }

    /// Serialize to the compact JSON form embedded in BENCH reports.
    /// Window bounds round-trip exactly up to 2^53 ns (~104 days of
    /// simulated time); use a large-but-representable sentinel, not
    /// `u64::MAX`, for "forever".
    pub fn to_json(&self) -> String {
        fn scope(s: &mut String, sc: Scope) {
            s.push_str(&format!("{{\"host\":{},\"iface\":{}}}", sc.host_i32(), sc.iface_i32()));
        }
        let mut s = String::from("{\"burst_loss\":[");
        for (i, r) in self.burst_loss.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            s.push_str("{\"scope\":");
            scope(&mut s, r.scope);
            s.push_str(&format!(
                ",\"p_gb\":{},\"p_bg\":{},\"loss_good\":{},\"loss_bad\":{}}}",
                r.p_gb, r.p_bg, r.loss_good, r.loss_bad
            ));
        }
        s.push_str("],\"flaps\":[");
        for (i, r) in self.flaps.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            s.push_str("{\"scope\":");
            scope(&mut s, r.scope);
            s.push_str(&format!(",\"from_ns\":{},\"until_ns\":{}}}", r.from_ns, r.until_ns));
        }
        s.push_str("],\"jitter\":[");
        for (i, r) in self.jitter.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            s.push_str("{\"scope\":");
            scope(&mut s, r.scope);
            s.push_str(&format!(
                ",\"max_jitter_ns\":{},\"reorder_bound\":{}}}",
                r.max_jitter_ns, r.reorder_bound
            ));
        }
        s.push_str("],\"degrade\":[");
        for (i, r) in self.degrade.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            s.push_str("{\"scope\":");
            scope(&mut s, r.scope);
            s.push_str(&format!(
                ",\"from_ns\":{},\"until_ns\":{},\"factor\":{}}}",
                r.from_ns, r.until_ns, r.factor
            ));
        }
        s.push_str("]}");
        s
    }

    /// Parse the form produced by [`FaultPlan::to_json`]. Round-trips
    /// exactly for every finite plan.
    pub fn from_json(text: &str) -> Result<FaultPlan, String> {
        let v = trace::json::parse(text)?;
        fn scope_of(v: &trace::json::JVal) -> Result<Scope, String> {
            let sc = v.get("scope").ok_or("rule missing scope")?;
            let host = sc.get("host").and_then(|h| h.as_i64()).ok_or("scope missing host")?;
            let iface = sc.get("iface").and_then(|i| i.as_i64()).ok_or("scope missing iface")?;
            Ok(Scope {
                host: (host >= 0).then_some(host as u16),
                iface: (iface >= 0).then_some(iface as u8),
            })
        }
        fn f64_of(v: &trace::json::JVal, key: &str) -> Result<f64, String> {
            v.get(key).and_then(|x| x.as_f64()).ok_or_else(|| format!("missing {key}"))
        }
        fn u64_of(v: &trace::json::JVal, key: &str) -> Result<u64, String> {
            v.get(key).and_then(|x| x.as_u64()).ok_or_else(|| format!("missing {key}"))
        }
        let mut plan = FaultPlan::default();
        for r in v.get("burst_loss").and_then(|a| a.as_arr()).ok_or("missing burst_loss")? {
            plan.burst_loss.push(BurstLossRule {
                scope: scope_of(r)?,
                p_gb: f64_of(r, "p_gb")?,
                p_bg: f64_of(r, "p_bg")?,
                loss_good: f64_of(r, "loss_good")?,
                loss_bad: f64_of(r, "loss_bad")?,
            });
        }
        for r in v.get("flaps").and_then(|a| a.as_arr()).ok_or("missing flaps")? {
            plan.flaps.push(FlapRule {
                scope: scope_of(r)?,
                from_ns: u64_of(r, "from_ns")?,
                until_ns: u64_of(r, "until_ns")?,
            });
        }
        for r in v.get("jitter").and_then(|a| a.as_arr()).ok_or("missing jitter")? {
            plan.jitter.push(JitterRule {
                scope: scope_of(r)?,
                max_jitter_ns: u64_of(r, "max_jitter_ns")?,
                reorder_bound: u64_of(r, "reorder_bound")? as u32,
            });
        }
        for r in v.get("degrade").and_then(|a| a.as_arr()).ok_or("missing degrade")? {
            plan.degrade.push(DegradeRule {
                scope: scope_of(r)?,
                from_ns: u64_of(r, "from_ns")?,
                until_ns: u64_of(r, "until_ns")?,
                factor: f64_of(r, "factor")?,
            });
        }
        Ok(plan)
    }
}

/// Runtime state of an installed plan: the plan's *active* rules plus each
/// rule's mutable state (chain state, lazily-observed window phase, jitter
/// reorder window). Owned by [`crate::Net`]; not constructed directly.
#[derive(Debug, Clone, Default)]
pub struct FaultState {
    plan: FaultPlan,
    /// Per burst-loss rule: is the chain in the bad state?
    ge_bad: Vec<bool>,
    /// Per flap rule: last observed in-window status (for edge events).
    flap_on: Vec<bool>,
    /// Per degrade rule: last observed in-window status (for edge events).
    degrade_on: Vec<bool>,
    /// Per jitter rule: last `reorder_bound + 1` assigned arrival instants
    /// plus the monotone floor of everything older (see `jitter_arrival`).
    jit_recent: Vec<VecDeque<u64>>,
    jit_floor: Vec<u64>,
    active: bool,
}

fn emit_fault(tracer: &Option<trace::Tracer>, now: SimTime, kind: FaultKind, rule: u32, scope: Scope) {
    if let Some(t) = tracer {
        t.emit(
            now.as_nanos(),
            trace::Event::Fault(FaultEv { kind, rule, host: scope.host_i32(), iface: scope.iface_i32() }),
        );
    }
}

impl FaultState {
    /// Install `plan`, resetting all rule state. No-op rules are pruned so
    /// an all-zero plan degenerates to the empty fast path (see the module
    /// docs' determinism contract).
    pub fn install(&mut self, plan: FaultPlan) {
        let mut plan = plan;
        plan.burst_loss.retain(|r| !r.is_noop());
        plan.flaps.retain(|r| !r.is_noop());
        plan.jitter.retain(|r| !r.is_noop());
        plan.degrade.retain(|r| !r.is_noop());
        self.ge_bad = vec![false; plan.burst_loss.len()];
        self.flap_on = vec![false; plan.flaps.len()];
        self.degrade_on = vec![false; plan.degrade.len()];
        self.jit_recent = plan.jitter.iter().map(|_| VecDeque::new()).collect();
        self.jit_floor = vec![0; plan.jitter.len()];
        self.active = !plan.is_empty();
        self.plan = plan;
    }

    /// One-branch fast path: false means every hook below is skipped.
    #[inline]
    pub fn active(&self) -> bool {
        self.active
    }

    /// The active (post-pruning) plan.
    pub fn plan(&self) -> &FaultPlan {
        &self.plan
    }

    /// Is `src → dst` inside any matching flap window at `now`? Emits
    /// window-edge events on the first matching packet that observes a
    /// phase change. Draws nothing from the RNG.
    pub(crate) fn flap_blocks(
        &mut self,
        tracer: &Option<trace::Tracer>,
        now: SimTime,
        src: IfAddr,
        dst: IfAddr,
    ) -> bool {
        let mut blocked = false;
        for (i, r) in self.plan.flaps.iter().enumerate() {
            if !r.scope.matches(src, dst) {
                continue;
            }
            let on = r.covers(now.as_nanos());
            if on != self.flap_on[i] {
                self.flap_on[i] = on;
                let kind = if on { FaultKind::FlapDown } else { FaultKind::FlapUp };
                emit_fault(tracer, now, kind, i as u32, r.scope);
            }
            blocked |= on;
        }
        blocked
    }

    /// Advance every matching Gilbert–Elliott chain by one packet and
    /// return whether any chain drops it. Exactly two RNG draws per
    /// matching rule, always, so the draw sequence is data-independent.
    pub(crate) fn bursty_drop(
        &mut self,
        tracer: &Option<trace::Tracer>,
        now: SimTime,
        src: IfAddr,
        dst: IfAddr,
        rng: &mut SmallRng,
    ) -> bool {
        let mut dropped = false;
        for (i, r) in self.plan.burst_loss.iter().enumerate() {
            if !r.scope.matches(src, dst) {
                continue;
            }
            let bad = self.ge_bad[i];
            let flip = rng.gen_bool(if bad { r.p_bg } else { r.p_gb });
            if flip {
                self.ge_bad[i] = !bad;
                let kind = if bad { FaultKind::GeGood } else { FaultKind::GeBad };
                emit_fault(tracer, now, kind, i as u32, r.scope);
            }
            let loss_p = if self.ge_bad[i] { r.loss_bad } else { r.loss_good };
            dropped |= rng.gen_bool(loss_p);
        }
        dropped
    }

    /// Effective link rate for `src → dst` at `now`: the configured
    /// `base_bps` scaled by the smallest matching in-window degradation
    /// factor. Emits window-edge events; draws nothing.
    pub(crate) fn degraded_bps(
        &mut self,
        tracer: &Option<trace::Tracer>,
        now: SimTime,
        src: IfAddr,
        dst: IfAddr,
        base_bps: u64,
    ) -> u64 {
        let mut factor = 1.0f64;
        for (i, r) in self.plan.degrade.iter().enumerate() {
            if !r.scope.matches(src, dst) {
                continue;
            }
            let on = r.covers(now.as_nanos());
            if on != self.degrade_on[i] {
                self.degrade_on[i] = on;
                let kind = if on { FaultKind::DegradeOn } else { FaultKind::DegradeOff };
                emit_fault(tracer, now, kind, i as u32, r.scope);
            }
            if on {
                factor = factor.min(r.factor);
            }
        }
        if factor >= 1.0 {
            base_bps
        } else {
            ((base_bps as f64 * factor) as u64).max(1)
        }
    }

    /// Jitter a delivery instant. One RNG draw per matching rule. The
    /// reordering bound is enforced with a sliding window per rule: before
    /// assigning instant `a_i`, the instant assigned `reorder_bound + 1`
    /// packets ago is folded into a monotone floor, and `a_i` is clamped to
    /// it — so `a_i ≥ a_j` whenever `i − j > reorder_bound`, i.e. at most
    /// `reorder_bound` later packets can overtake any given packet. Jitter
    /// only ever *delays* (`a_i ≥ at`), so causality is preserved.
    pub(crate) fn jitter_arrival(
        &mut self,
        at: SimTime,
        src: IfAddr,
        dst: IfAddr,
        rng: &mut SmallRng,
    ) -> SimTime {
        let mut out = at;
        for (i, r) in self.plan.jitter.iter().enumerate() {
            if !r.scope.matches(src, dst) {
                continue;
            }
            let d = rng.gen_range(0..=r.max_jitter_ns);
            let mut a = out.as_nanos().saturating_add(d);
            let win = &mut self.jit_recent[i];
            if win.len() > r.reorder_bound as usize {
                let oldest = win.pop_front().unwrap();
                self.jit_floor[i] = self.jit_floor[i].max(oldest);
            }
            a = a.max(self.jit_floor[i]);
            win.push_back(a);
            out = SimTime::from_nanos(a);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Net, NetCfg, Verdict};
    use simcore::derive_rng;

    fn path() -> (IfAddr, IfAddr) {
        (IfAddr::new(0, 0), IfAddr::new(1, 0))
    }

    /// Offer `n` far-apart packets (no queueing) and count drops.
    fn drop_rate(net: &mut Net, rng: &mut SmallRng, n: u64) -> f64 {
        let (src, dst) = path();
        let mut drops = 0u64;
        for k in 0..n {
            // Spread offers out so links never queue.
            let now = SimTime::from_nanos(k * 1_000_000);
            if matches!(net.transmit(now, src, dst, 100, rng), Verdict::Drop(_)) {
                drops += 1;
            }
        }
        drops as f64 / n as f64
    }

    #[test]
    fn gilbert_elliott_long_run_average_converges() {
        for &(avg, burst) in &[(0.01, 10.0), (0.02, 25.0), (0.05, 5.0)] {
            let rule = BurstLossRule::matched(Scope::ALL, avg, 0.5, burst);
            assert!((rule.avg_loss() - avg).abs() < 1e-12, "stationary rate mismatch");
            let mut net = Net::new(NetCfg::paper_cluster(0.0));
            net.set_fault_plan(FaultPlan { burst_loss: vec![rule], ..Default::default() });
            let mut rng = derive_rng(7, 7);
            let measured = drop_rate(&mut net, &mut rng, 400_000);
            assert!(
                (measured - avg).abs() < avg * 0.25,
                "GE measured {measured}, expected ~{avg} (burst {burst})"
            );
        }
    }

    #[test]
    fn gilbert_elliott_losses_are_bursty() {
        // Same average rate, very different clustering: the GE chain must
        // produce longer runs of consecutive drops than Bernoulli would.
        let avg = 0.02;
        let rule = BurstLossRule::matched(Scope::ALL, avg, 1.0, 20.0);
        let mut net = Net::new(NetCfg::paper_cluster(0.0));
        net.set_fault_plan(FaultPlan { burst_loss: vec![rule], ..Default::default() });
        let (src, dst) = path();
        let mut rng = derive_rng(3, 1);
        let (mut run, mut max_run) = (0u32, 0u32);
        for k in 0..200_000u64 {
            let now = SimTime::from_nanos(k * 1_000_000);
            if matches!(net.transmit(now, src, dst, 100, &mut rng), Verdict::Drop(_)) {
                run += 1;
                max_run = max_run.max(run);
            } else {
                run = 0;
            }
        }
        // With loss_bad = 1.0 and mean burst 20 pkts, runs of 10+ are
        // routine; Bernoulli at 2% reaches ~3 in a trace this long.
        assert!(max_run >= 10, "longest loss run {max_run}, expected bursty (>= 10)");
    }

    #[test]
    fn flap_window_drops_then_recovers() {
        let mut net = Net::new(NetCfg::paper_cluster(0.0));
        net.set_fault_plan(FaultPlan {
            flaps: vec![FlapRule { scope: Scope::on_iface(0), from_ns: 1_000, until_ns: 2_000 }],
            ..Default::default()
        });
        let (src, dst) = path();
        let mut rng = derive_rng(1, 1);
        let before = net.transmit(SimTime::from_nanos(0), src, dst, 100, &mut rng);
        assert!(matches!(before, Verdict::Deliver { .. }));
        let during = net.transmit(SimTime::from_nanos(1_500), src, dst, 100, &mut rng);
        assert_eq!(during, Verdict::Drop(crate::DropReason::LinkDown));
        // Another network is unaffected.
        let other =
            net.transmit(SimTime::from_nanos(1_500), IfAddr::new(0, 1), IfAddr::new(1, 1), 100, &mut rng);
        assert!(matches!(other, Verdict::Deliver { .. }));
        let after = net.transmit(SimTime::from_nanos(2_000), src, dst, 100, &mut rng);
        assert!(matches!(after, Verdict::Deliver { .. }));
        assert_eq!(net.stats.drops_down, 1);
    }

    #[test]
    fn jitter_respects_reorder_bound_and_causality() {
        for &bound in &[0u32, 1, 4, 16] {
            let mut st = FaultState::default();
            st.install(FaultPlan {
                jitter: vec![JitterRule { scope: Scope::ALL, max_jitter_ns: 50_000, reorder_bound: bound }],
                ..Default::default()
            });
            let (src, dst) = path();
            let mut rng = derive_rng(9, bound as u64);
            let mut assigned = Vec::new();
            for k in 0..5_000u64 {
                let at = SimTime::from_nanos(k * 1_000);
                let a = st.jitter_arrival(at, src, dst, &mut rng);
                assert!(a >= at, "jitter must never deliver early");
                assigned.push(a.as_nanos());
            }
            for (j, &aj) in assigned.iter().enumerate() {
                let overtakers =
                    assigned[j + 1..].iter().filter(|&&ai| ai < aj).count();
                assert!(
                    overtakers <= bound as usize,
                    "packet {j} overtaken by {overtakers} > bound {bound}"
                );
            }
            if bound == 0 {
                for w in assigned.windows(2) {
                    assert!(w[0] <= w[1], "bound 0 must preserve FIFO order");
                }
            }
        }
    }

    #[test]
    fn degrade_window_slows_serialization() {
        let mut net = Net::new(NetCfg::paper_cluster(0.0));
        let (src, dst) = path();
        let mut rng = derive_rng(2, 2);
        let t0 = SimTime::from_nanos(0);
        let Verdict::Deliver { at: base } = net.transmit(t0, src, dst, 1500, &mut rng) else {
            panic!("delivery expected")
        };
        // Half-rate window: serialization doubles (12us -> 24us per hop).
        let mut net2 = Net::new(NetCfg::paper_cluster(0.0));
        net2.set_fault_plan(FaultPlan {
            degrade: vec![DegradeRule { scope: Scope::ALL, from_ns: 0, until_ns: u64::MAX, factor: 0.5 }],
            ..Default::default()
        });
        let Verdict::Deliver { at: slow } = net2.transmit(t0, src, dst, 1500, &mut rng) else {
            panic!("delivery expected")
        };
        // 1500 B at 500 Mb/s = 24 us per hop instead of 12: +12 us per hop.
        assert_eq!(slow.since(base), simcore::Dur::from_micros(24));
    }

    #[test]
    fn all_zero_plan_is_pruned_to_empty() {
        let mut st = FaultState::default();
        st.install(FaultPlan {
            burst_loss: vec![BurstLossRule { scope: Scope::ALL, p_gb: 0.0, p_bg: 0.0, loss_good: 0.0, loss_bad: 0.9 }],
            flaps: vec![FlapRule { scope: Scope::ALL, from_ns: 5, until_ns: 5 }],
            jitter: vec![JitterRule { scope: Scope::ALL, max_jitter_ns: 0, reorder_bound: 3 }],
            degrade: vec![DegradeRule { scope: Scope::ALL, from_ns: 0, until_ns: 100, factor: 1.0 }],
        });
        assert!(!st.active(), "all-zero plan must degenerate to the empty fast path");
    }

    #[test]
    fn empty_plan_leaves_rng_and_verdicts_untouched() {
        let cfg = NetCfg::paper_cluster(0.02);
        let mut plain = Net::new(cfg);
        let mut planned = Net::new(cfg);
        planned.set_fault_plan(FaultPlan::default());
        let (src, dst) = path();
        let mut rng_a = derive_rng(11, 4);
        let mut rng_b = derive_rng(11, 4);
        for k in 0..20_000u64 {
            let now = SimTime::from_nanos(k * 10_000);
            let va = plain.transmit(now, src, dst, 1500, &mut rng_a);
            let vb = planned.transmit(now, src, dst, 1500, &mut rng_b);
            assert_eq!(va, vb);
        }
        assert_eq!(plain.stats, planned.stats);
        // The RNG streams must still be in lockstep afterwards.
        assert_eq!(rng_a.gen_range(0..u64::MAX), rng_b.gen_range(0..u64::MAX));
    }

    #[test]
    fn plan_json_round_trips() {
        let plan = FaultPlan {
            burst_loss: vec![BurstLossRule::matched(Scope::on_iface(1), 0.01, 0.25, 12.0)],
            flaps: vec![FlapRule { scope: Scope::on_link(3, 0), from_ns: 50_000_000, until_ns: 4_000_000_000 }],
            jitter: vec![JitterRule { scope: Scope::ALL, max_jitter_ns: 30_000, reorder_bound: 3 }],
            degrade: vec![DegradeRule { scope: Scope { host: Some(0), iface: None }, from_ns: 1, until_ns: 2, factor: 0.25 }],
        };
        let text = plan.to_json();
        let back = FaultPlan::from_json(&text).expect("parse");
        assert_eq!(plan, back);
        assert_eq!(FaultPlan::from_json(&FaultPlan::default().to_json()).unwrap(), FaultPlan::default());
    }
}
