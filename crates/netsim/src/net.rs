//! The cluster network: N hosts × K interfaces, one switched network per
//! interface index, and a Dummynet-style loss pipe on every path.
//!
//! Topology (matching the paper's testbed):
//!
//! ```text
//!   host a ── uplink ──▶ switch[iface] ── downlink ──▶ host b
//! ```
//!
//! Each network `i` is a star: every host's interface `i` has a full-duplex
//! link to switch `i`. A packet from `(a, i)` to `(b, i)` serializes on a's
//! uplink, crosses the switch (store-and-forward, small fixed latency), then
//! serializes on b's downlink. Random loss is applied **once per path**, like
//! a Dummynet pipe configured between each pair of nodes, so a configured
//! loss rate of 1 % means 1 % of packets end-to-end — not 1 % per hop.

use rand::rngs::SmallRng;
use rand::Rng;
use simcore::{Dur, SimTime};

use crate::addr::IfAddr;
use crate::fault::{FaultPlan, FaultState};
use crate::link::{DropReason, Link, LinkCfg, LinkDrop, LinkStats};

/// Network-wide configuration.
#[derive(Debug, Clone, Copy)]
pub struct NetCfg {
    /// Number of hosts in the cluster.
    pub hosts: u16,
    /// Interfaces per host = number of independent networks.
    pub ifaces_per_host: u8,
    /// Parameters shared by every link.
    pub link: LinkCfg,
    /// Store-and-forward latency of the switch.
    pub switch_latency: Dur,
    /// Dummynet pipe loss probability (applied once per packet per path).
    pub loss_prob: f64,
    /// Loopback delivery delay for self-addressed packets.
    pub loopback_delay: Dur,
}

impl Default for NetCfg {
    fn default() -> Self {
        NetCfg {
            hosts: 8,
            ifaces_per_host: 3,
            link: LinkCfg::default(),
            switch_latency: Dur::from_micros(2),
            loss_prob: 0.0,
            loopback_delay: Dur::from_micros(5),
        }
    }
}

impl NetCfg {
    /// The paper's testbed: 8 nodes, 3 × 1 Gb/s interfaces, given loss rate.
    pub fn paper_cluster(loss_prob: f64) -> Self {
        NetCfg { loss_prob, ..Default::default() }
    }
}

/// Outcome of offering a packet to the network.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Verdict {
    /// The last bit arrives at the destination interface at this instant.
    Deliver {
        /// Arrival instant of the last bit.
        at: SimTime,
    },
    /// The packet will never arrive, for this reason.
    Drop(DropReason),
}

/// Aggregate counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct NetStats {
    /// Packets offered to [`Net::transmit`] / [`Net::transmit_burst`].
    pub packets_offered: u64,
    /// Packets that will arrive at their destination.
    pub packets_delivered: u64,
    /// Wire bytes of all delivered packets.
    pub bytes_delivered: u64,
    /// Drops from random loss (Bernoulli pipe or bursty-loss chains).
    pub drops_loss: u64,
    /// Drops from full link queues.
    pub drops_queue: u64,
    /// Drops from administratively/fault-plane downed paths.
    pub drops_down: u64,
}

/// The simulated cluster network.
#[derive(Debug, Clone)]
pub struct Net {
    /// Topology and loss configuration.
    pub cfg: NetCfg,
    /// `links[host][iface]` = (uplink to switch, downlink from switch).
    links: Vec<Vec<(Link, Link)>>,
    /// Network-wide counters.
    pub stats: NetStats,
    /// Flight recorder for link-level drop events; observation only, never
    /// consulted for any verdict.
    pub tracer: Option<trace::Tracer>,
    /// Installed fault-injection plan and its per-rule runtime state (see
    /// [`crate::fault`]). Empty by default — and an empty plan costs one
    /// branch per packet and draws nothing from the RNG.
    fault: FaultState,
}

impl Net {
    /// Build the cluster: `hosts × ifaces` link pairs, all idle and up.
    pub fn new(cfg: NetCfg) -> Self {
        let links = (0..cfg.hosts)
            .map(|_| {
                (0..cfg.ifaces_per_host)
                    .map(|_| (Link::new(cfg.link), Link::new(cfg.link)))
                    .collect()
            })
            .collect();
        Net { cfg, links, stats: NetStats::default(), tracer: None, fault: FaultState::default() }
    }

    /// Install a fault-injection plan, replacing any previous one and
    /// resetting all rule state. Installing an empty (or all-no-op) plan is
    /// exactly equivalent to never calling this at all — verdicts, delivery
    /// instants, and the RNG stream are untouched.
    pub fn set_fault_plan(&mut self, plan: FaultPlan) {
        self.fault.install(plan);
    }

    /// The active (post-pruning) fault plan.
    pub fn fault_plan(&self) -> &FaultPlan {
        self.fault.plan()
    }

    fn trace_drop(
        tracer: &Option<trace::Tracer>,
        now: SimTime,
        src: IfAddr,
        dst: IfAddr,
        wire_bytes: u32,
        reason: DropReason,
        backlog_ns: u64,
    ) {
        if let Some(t) = tracer {
            let reason = match reason {
                DropReason::Loss => trace::DropKind::Loss,
                DropReason::QueueFull => trace::DropKind::QueueFull,
                DropReason::LinkDown => trace::DropKind::LinkDown,
            };
            t.emit(
                now.as_nanos(),
                trace::Event::LinkDrop(trace::LinkDropEv {
                    src_host: src.host,
                    src_if: src.iface,
                    dst_host: dst.host,
                    wire_bytes,
                    reason,
                    backlog_ns,
                }),
            );
        }
    }

    /// Number of hosts.
    pub fn hosts(&self) -> u16 {
        self.cfg.hosts
    }

    /// Number of interfaces per host.
    pub fn ifaces(&self) -> u8 {
        self.cfg.ifaces_per_host
    }

    fn check_addr(&self, a: IfAddr) {
        assert!(
            a.host < self.cfg.hosts && a.iface < self.cfg.ifaces_per_host,
            "address {a} outside topology ({} hosts x {} ifaces)",
            self.cfg.hosts,
            self.cfg.ifaces_per_host
        );
    }

    /// Offer a packet at `now`. `src.iface` and `dst.iface` must match (the
    /// networks are independent); self-addressed packets go via loopback.
    pub fn transmit(
        &mut self,
        now: SimTime,
        src: IfAddr,
        dst: IfAddr,
        wire_bytes: u32,
        rng: &mut SmallRng,
    ) -> Verdict {
        self.check_addr(src);
        self.check_addr(dst);
        self.stats.packets_offered += 1;

        if src.host == dst.host {
            // Loopback: no loss, no queueing.
            self.stats.packets_delivered += 1;
            self.stats.bytes_delivered += wire_bytes as u64;
            return Verdict::Deliver { at: now + self.cfg.loopback_delay };
        }

        assert_eq!(
            src.iface, dst.iface,
            "networks are independent: cannot route {src} -> {dst}"
        );

        // Fault plane, stage 1: scheduled flap windows (no RNG) and bursty
        // Gilbert–Elliott chains (fixed two draws per matching rule). The
        // evaluation order here — flap, chains, Bernoulli, links, jitter —
        // is part of the determinism contract and must stay identical to
        // `transmit_burst`'s per-packet loop.
        let faulted = self.fault.active();
        if faulted {
            if self.fault.flap_blocks(&self.tracer, now, src, dst) {
                Self::trace_drop(&self.tracer, now, src, dst, wire_bytes, DropReason::LinkDown, 0);
                return self.record_drop(LinkDrop::LinkDown);
            }
            if self.fault.bursty_drop(&self.tracer, now, src, dst, rng) {
                self.stats.drops_loss += 1;
                if self.tracer.is_some() {
                    let backlog = self.links[src.host as usize][src.iface as usize].0.backlog_ns(now);
                    Self::trace_drop(&self.tracer, now, src, dst, wire_bytes, DropReason::Loss, backlog);
                }
                return Verdict::Drop(DropReason::Loss);
            }
        }

        // Dummynet pipe: one Bernoulli trial per packet per path. Loss is
        // decided here, before any link is touched — the link layer can only
        // report congestion or down (see [`LinkDrop`]).
        if self.cfg.loss_prob > 0.0 && rng.gen_bool(self.cfg.loss_prob) {
            self.stats.drops_loss += 1;
            if self.tracer.is_some() {
                let backlog = self.links[src.host as usize][src.iface as usize].0.backlog_ns(now);
                Self::trace_drop(&self.tracer, now, src, dst, wire_bytes, DropReason::Loss, backlog);
            }
            return Verdict::Drop(DropReason::Loss);
        }

        // Fault plane, stage 2: time-windowed bandwidth degradation (no RNG).
        let bps = if faulted {
            self.fault.degraded_bps(&self.tracer, now, src, dst, self.cfg.link.bandwidth_bps)
        } else {
            self.cfg.link.bandwidth_bps
        };

        // Uplink: src host -> switch.
        let up = &mut self.links[src.host as usize][src.iface as usize].0;
        let backlog = if self.tracer.is_some() { up.backlog_ns(now) } else { 0 };
        let at_switch = match up.transmit_at_rate(now, wire_bytes, bps) {
            Ok(t) => t,
            Err(r) => {
                Self::trace_drop(&self.tracer, now, src, dst, wire_bytes, r.into(), backlog);
                return self.record_drop(r);
            }
        };

        // Downlink: switch -> dst host (store-and-forward).
        let start = at_switch + self.cfg.switch_latency;
        let down = &mut self.links[dst.host as usize][dst.iface as usize].1;
        let backlog = if self.tracer.is_some() { down.backlog_ns(start) } else { 0 };
        match down.transmit_at_rate(start, wire_bytes, bps) {
            Ok(t) => {
                // Fault plane, stage 3: delay jitter on the delivered instant
                // (one draw per matching rule; only survivors draw).
                let t = if faulted { self.fault.jitter_arrival(t, src, dst, rng) } else { t };
                self.stats.packets_delivered += 1;
                self.stats.bytes_delivered += wire_bytes as u64;
                Verdict::Deliver { at: t }
            }
            Err(r) => {
                Self::trace_drop(&self.tracer, now, src, dst, wire_bytes, r.into(), backlog);
                self.record_drop(r)
            }
        }
    }

    /// The single place link-refused packets are charged to the network-wide
    /// counters. Takes [`LinkDrop`], not [`DropReason`]: loss never reaches
    /// the links, and the compiler now enforces there is no such arm here.
    fn record_drop(&mut self, r: LinkDrop) -> Verdict {
        match r {
            LinkDrop::QueueFull => self.stats.drops_queue += 1,
            LinkDrop::LinkDown => self.stats.drops_down += 1,
        }
        Verdict::Drop(r.into())
    }

    /// Offer a train of back-to-back packets at `now`, all `src` → `dst`.
    ///
    /// Exactly equivalent to `wire_bytes.len()` sequential [`Net::transmit`]
    /// calls: the per-packet Bernoulli loss trials are drawn in the same RNG
    /// order, the delivery instants come from the same `busy_until`
    /// recurrence, and the returned verdicts are identical element-wise —
    /// but the links are borrowed once, the stats are updated once, and the
    /// caller pays one call for the whole train. (The burst-equivalence
    /// proptests pin this down.)
    pub fn transmit_burst(
        &mut self,
        now: SimTime,
        src: IfAddr,
        dst: IfAddr,
        wire_bytes: &[u32],
        rng: &mut SmallRng,
    ) -> Vec<Verdict> {
        let mut out = Vec::with_capacity(wire_bytes.len());
        self.transmit_burst_into(now, src, dst, wire_bytes, rng, &mut out);
        out
    }

    /// [`transmit_burst`](Self::transmit_burst) appending verdicts into a
    /// caller-provided (usually pooled) buffer — one verdict per offered
    /// packet, in offer order.
    pub fn transmit_burst_into(
        &mut self,
        now: SimTime,
        src: IfAddr,
        dst: IfAddr,
        wire_bytes: &[u32],
        rng: &mut SmallRng,
        out: &mut Vec<Verdict>,
    ) {
        self.check_addr(src);
        self.check_addr(dst);
        let n = wire_bytes.len();
        self.stats.packets_offered += n as u64;

        if src.host == dst.host {
            // Loopback: no loss, no queueing.
            self.stats.packets_delivered += n as u64;
            self.stats.bytes_delivered += wire_bytes.iter().map(|&b| b as u64).sum::<u64>();
            let at = now + self.cfg.loopback_delay;
            out.extend(std::iter::repeat(Verdict::Deliver { at }).take(n));
            return;
        }

        assert_eq!(
            src.iface, dst.iface,
            "networks are independent: cannot route {src} -> {dst}"
        );

        // Distinct hosts: split the host axis so the uplink and downlink can
        // be borrowed simultaneously for the whole train.
        let (a, b) = (src.host as usize, dst.host as usize);
        let (up, down) = if a < b {
            let (lo, hi) = self.links.split_at_mut(b);
            (&mut lo[a][src.iface as usize].0, &mut hi[0][dst.iface as usize].1)
        } else {
            let (lo, hi) = self.links.split_at_mut(a);
            (&mut hi[0][src.iface as usize].0, &mut lo[b][dst.iface as usize].1)
        };

        let mut delivered = 0u64;
        let mut bytes = 0u64;
        let mut loss = 0u64;
        let mut queue = 0u64;
        let mut down_drops = 0u64;
        out.reserve(n);
        // The links are borrowed out of `self.links` for the whole train;
        // the tracer and fault state are disjoint fields, so hooks stay
        // borrow-compatible.
        let tracer = &self.tracer;
        let fault = &mut self.fault;
        let faulted = fault.active();
        for &wb in wire_bytes {
            // Identical per-packet fault sequence to `transmit`: flap, GE
            // chains, Bernoulli, (degraded) links, jitter — same RNG draws
            // in the same order, so burst-equivalence holds under any plan.
            if faulted {
                if fault.flap_blocks(tracer, now, src, dst) {
                    down_drops += 1;
                    Self::trace_drop(tracer, now, src, dst, wb, DropReason::LinkDown, 0);
                    out.push(Verdict::Drop(DropReason::LinkDown));
                    continue;
                }
                if fault.bursty_drop(tracer, now, src, dst, rng) {
                    loss += 1;
                    if tracer.is_some() {
                        Self::trace_drop(tracer, now, src, dst, wb, DropReason::Loss, up.backlog_ns(now));
                    }
                    out.push(Verdict::Drop(DropReason::Loss));
                    continue;
                }
            }
            if self.cfg.loss_prob > 0.0 && rng.gen_bool(self.cfg.loss_prob) {
                loss += 1;
                if tracer.is_some() {
                    Self::trace_drop(tracer, now, src, dst, wb, DropReason::Loss, up.backlog_ns(now));
                }
                out.push(Verdict::Drop(DropReason::Loss));
                continue;
            }
            let bps = if faulted {
                fault.degraded_bps(tracer, now, src, dst, self.cfg.link.bandwidth_bps)
            } else {
                self.cfg.link.bandwidth_bps
            };
            let backlog = if tracer.is_some() { up.backlog_ns(now) } else { 0 };
            let v = up.transmit_at_rate(now, wb, bps).and_then(|at_switch| {
                down.transmit_at_rate(at_switch + self.cfg.switch_latency, wb, bps)
            });
            out.push(match v {
                Ok(at) => {
                    let at = if faulted { fault.jitter_arrival(at, src, dst, rng) } else { at };
                    delivered += 1;
                    bytes += wb as u64;
                    Verdict::Deliver { at }
                }
                Err(r) => {
                    match r {
                        LinkDrop::QueueFull => queue += 1,
                        LinkDrop::LinkDown => down_drops += 1,
                    }
                    Self::trace_drop(tracer, now, src, dst, wb, r.into(), backlog);
                    Verdict::Drop(r.into())
                }
            });
        }
        self.stats.packets_delivered += delivered;
        self.stats.bytes_delivered += bytes;
        self.stats.drops_loss += loss;
        self.stats.drops_queue += queue;
        self.stats.drops_down += down_drops;
    }

    /// Administratively set one interface (both directions) up or down —
    /// used by the multihoming failover experiments.
    pub fn set_iface_up(&mut self, addr: IfAddr, up: bool) {
        self.check_addr(addr);
        let (ul, dl) = &mut self.links[addr.host as usize][addr.iface as usize];
        ul.up = up;
        dl.up = up;
    }

    /// Take down network `iface` for every host (switch failure).
    pub fn set_network_up(&mut self, iface: u8, up: bool) {
        for h in 0..self.cfg.hosts {
            self.set_iface_up(IfAddr::new(h, iface), up);
        }
    }

    /// Change the path loss probability mid-run.
    pub fn set_loss(&mut self, loss_prob: f64) {
        assert!((0.0..=1.0).contains(&loss_prob));
        self.cfg.loss_prob = loss_prob;
    }

    /// Per-link stats of one interface: (uplink, downlink).
    pub fn iface_stats(&self, addr: IfAddr) -> (LinkStats, LinkStats) {
        self.check_addr(addr);
        let (ul, dl) = &self.links[addr.host as usize][addr.iface as usize];
        (ul.stats, dl.stats)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use simcore::derive_rng;

    fn net(loss: f64) -> (Net, SmallRng) {
        (Net::new(NetCfg::paper_cluster(loss)), derive_rng(1, 2))
    }

    #[test]
    fn end_to_end_latency_is_two_hops_plus_switch() {
        let (mut n, mut rng) = net(0.0);
        let v = n.transmit(SimTime::ZERO, IfAddr::new(0, 0), IfAddr::new(1, 0), 1500, &mut rng);
        // uplink 12us ser + 20us prop, switch 2us, downlink 12us ser + 20us prop
        assert_eq!(v, Verdict::Deliver { at: SimTime::ZERO + Dur::from_micros(66) });
    }

    #[test]
    fn loopback_is_fast_and_lossless() {
        let (mut n, mut rng) = net(1.0); // even at 100% loss
        let v = n.transmit(SimTime::ZERO, IfAddr::new(2, 0), IfAddr::new(2, 0), 1500, &mut rng);
        assert!(matches!(v, Verdict::Deliver { .. }));
    }

    #[test]
    fn loss_rate_is_statistically_right() {
        let (mut n, mut rng) = net(0.01);
        let trials = 200_000;
        let mut dropped = 0;
        for _ in 0..trials {
            // Use a far-future `now` each time so queues never interfere.
            let v = n.transmit(
                SimTime::from_nanos(u64::MAX / 2),
                IfAddr::new(0, 0),
                IfAddr::new(1, 0),
                100,
                &mut rng,
            );
            if matches!(v, Verdict::Drop(DropReason::Loss)) {
                dropped += 1;
            }
        }
        let rate = dropped as f64 / trials as f64;
        assert!((rate - 0.01).abs() < 0.002, "measured loss {rate}, expected ~0.01");
        assert_eq!(n.stats.drops_loss, dropped);
    }

    #[test]
    fn independent_networks_cannot_cross() {
        let (mut n, mut rng) = net(0.0);
        let r = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            n.transmit(SimTime::ZERO, IfAddr::new(0, 0), IfAddr::new(1, 1), 100, &mut rng)
        }));
        assert!(r.is_err(), "routing across networks must be rejected");
    }

    #[test]
    fn downed_interface_drops() {
        let (mut n, mut rng) = net(0.0);
        n.set_iface_up(IfAddr::new(0, 1), false);
        let v = n.transmit(SimTime::ZERO, IfAddr::new(0, 1), IfAddr::new(1, 1), 100, &mut rng);
        assert_eq!(v, Verdict::Drop(DropReason::LinkDown));
        // Other networks unaffected.
        let v = n.transmit(SimTime::ZERO, IfAddr::new(0, 0), IfAddr::new(1, 0), 100, &mut rng);
        assert!(matches!(v, Verdict::Deliver { .. }));
        // Receiving side down also drops.
        n.set_iface_up(IfAddr::new(1, 2), false);
        let v = n.transmit(SimTime::ZERO, IfAddr::new(0, 2), IfAddr::new(1, 2), 100, &mut rng);
        assert_eq!(v, Verdict::Drop(DropReason::LinkDown));
    }

    #[test]
    fn congestion_fills_destination_downlink() {
        // Two senders blast the same destination; the shared downlink must
        // eventually tail-drop.
        let (mut n, mut rng) = net(0.0);
        let mut drops = 0;
        for _ in 0..400 {
            for src in [0u16, 2] {
                let v = n.transmit(
                    SimTime::ZERO,
                    IfAddr::new(src, 0),
                    IfAddr::new(1, 0),
                    1500,
                    &mut rng,
                );
                if matches!(v, Verdict::Drop(DropReason::QueueFull)) {
                    drops += 1;
                }
            }
        }
        assert!(drops > 0, "overload must cause queue drops");
        assert_eq!(n.stats.drops_queue, drops);
    }

    #[test]
    fn bandwidth_is_shared_fifo() {
        // 10 packets back-to-back: last arrives ~ 10 serialization times after
        // the first, since the uplink is the bottleneck.
        let (mut n, mut rng) = net(0.0);
        let mut last = SimTime::ZERO;
        for _ in 0..10 {
            if let Verdict::Deliver { at } =
                n.transmit(SimTime::ZERO, IfAddr::new(0, 0), IfAddr::new(1, 0), 1500, &mut rng)
            {
                last = at;
            }
        }
        // first arrives at 66us; each subsequent +12us
        assert_eq!(last, SimTime::ZERO + Dur::from_micros(66 + 9 * 12));
    }
}
