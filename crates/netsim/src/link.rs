//! A unidirectional link with serialization delay, propagation delay, and a
//! bounded FIFO queue.
//!
//! The queue is *virtual*: rather than holding packet objects and scheduling
//! departure events, the link tracks `busy_until` — the instant its
//! transmitter frees up. A packet offered at `now` starts serializing at
//! `max(now, busy_until)`; the backlog in bytes is implied by
//! `busy_until - now` and the link rate, which is exactly the occupancy a
//! real FIFO would have. Tail drop happens when that implied occupancy plus
//! the new packet would exceed the configured capacity.

use simcore::{transmission_time, Dur, SimTime};

/// Static link parameters.
#[derive(Debug, Clone, Copy)]
pub struct LinkCfg {
    /// Line rate in bits per second (paper: 1 Gb/s).
    pub bandwidth_bps: u64,
    /// One-way propagation delay.
    pub prop_delay: Dur,
    /// FIFO capacity in bytes (switch/NIC buffer).
    pub queue_cap_bytes: u64,
}

impl Default for LinkCfg {
    fn default() -> Self {
        LinkCfg {
            bandwidth_bps: 1_000_000_000,
            prop_delay: Dur::from_micros(20),
            // 256 KB per port: generous for a LAN switch of the era.
            queue_cap_bytes: 256 * 1024,
        }
    }
}

/// Why a packet did not make it onto / across the link.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DropReason {
    /// Random loss (the Dummynet pipe).
    Loss,
    /// FIFO overflow (congestion).
    QueueFull,
    /// Interface or path administratively down (failover experiments).
    LinkDown,
}

/// Why a *link* refused a packet. A strict subset of [`DropReason`]: random
/// loss is decided by the network's Dummynet pipe before any link is
/// touched, so a link can only ever report congestion or being down — the
/// type makes a `Loss` verdict from the link layer unrepresentable.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LinkDrop {
    /// FIFO overflow (congestion).
    QueueFull,
    /// Interface or path administratively down.
    LinkDown,
}

impl From<LinkDrop> for DropReason {
    fn from(d: LinkDrop) -> DropReason {
        match d {
            LinkDrop::QueueFull => DropReason::QueueFull,
            LinkDrop::LinkDown => DropReason::LinkDown,
        }
    }
}

/// Per-link counters. Drop counts are charged by [`Link::transmit`], the
/// single point where a link refuses a packet.
#[derive(Debug, Clone, Copy, Default)]
pub struct LinkStats {
    /// Packets accepted onto the link.
    pub packets: u64,
    /// Bytes accepted onto the link.
    pub bytes: u64,
    /// Packets tail-dropped at a full queue.
    pub drops_queue: u64,
    /// Packets refused while the link was down.
    pub drops_down: u64,
}

/// Mutable link state.
#[derive(Debug, Clone)]
pub struct Link {
    /// Static parameters (rate, delay, queue capacity).
    pub cfg: LinkCfg,
    /// Administrative status; a down link refuses every packet.
    pub up: bool,
    busy_until: SimTime,
    /// Accept/drop counters.
    pub stats: LinkStats,
}

impl Link {
    /// A fresh, idle, up link.
    pub fn new(cfg: LinkCfg) -> Self {
        Link { cfg, up: true, busy_until: SimTime::ZERO, stats: LinkStats::default() }
    }

    /// Time until the transmitter frees up, in nanoseconds — the queueing
    /// delay a packet offered at `now` would see. The flight recorder stamps
    /// this on drop events to distinguish congestion from bad luck.
    pub fn backlog_ns(&self, now: SimTime) -> u64 {
        self.busy_until.since(now).as_nanos()
    }

    /// Bytes currently backlogged in the (virtual) queue at `now`.
    pub fn backlog_bytes(&self, now: SimTime) -> u64 {
        let backlog = self.busy_until.since(now);
        // bytes = time * bps / 8e9 (ns)
        (backlog.as_nanos() as u128 * self.cfg.bandwidth_bps as u128 / 8_000_000_000) as u64
    }

    /// Offer a packet of `wire_bytes` to the link at `now`. On success,
    /// returns the instant the last bit arrives at the far end.
    pub fn transmit(&mut self, now: SimTime, wire_bytes: u32) -> Result<SimTime, LinkDrop> {
        self.transmit_at_rate(now, wire_bytes, self.cfg.bandwidth_bps)
    }

    /// Like [`Link::transmit`] but serializing at `bandwidth_bps` instead
    /// of the configured line rate — the fault plane's bandwidth-degradation
    /// windows slow a link down without mutating its configuration. The
    /// implied queue occupancy is measured at the same effective rate, so a
    /// degraded link also tail-drops sooner.
    pub fn transmit_at_rate(
        &mut self,
        now: SimTime,
        wire_bytes: u32,
        bandwidth_bps: u64,
    ) -> Result<SimTime, LinkDrop> {
        if !self.up {
            self.stats.drops_down += 1;
            return Err(LinkDrop::LinkDown);
        }
        let backlog = self.busy_until.since(now);
        let backlog_bytes = (backlog.as_nanos() as u128 * bandwidth_bps as u128 / 8_000_000_000) as u64;
        if backlog_bytes + wire_bytes as u64 > self.cfg.queue_cap_bytes {
            self.stats.drops_queue += 1;
            return Err(LinkDrop::QueueFull);
        }
        let start = self.busy_until.max(now);
        let depart = start + transmission_time(wire_bytes as u64, bandwidth_bps);
        self.busy_until = depart;
        self.stats.packets += 1;
        self.stats.bytes += wire_bytes as u64;
        Ok(depart + self.cfg.prop_delay)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn gig_link() -> Link {
        Link::new(LinkCfg {
            bandwidth_bps: 1_000_000_000,
            prop_delay: Dur::from_micros(20),
            queue_cap_bytes: 10_000,
        })
    }

    #[test]
    fn single_packet_timing() {
        let mut l = gig_link();
        // 1500 B at 1 Gb/s = 12 us serialization + 20 us propagation.
        let arrive = l.transmit(SimTime::ZERO, 1500).unwrap();
        assert_eq!(arrive, SimTime::ZERO + Dur::from_micros(32));
    }

    #[test]
    fn back_to_back_packets_queue_behind_each_other() {
        let mut l = gig_link();
        let a1 = l.transmit(SimTime::ZERO, 1500).unwrap();
        let a2 = l.transmit(SimTime::ZERO, 1500).unwrap();
        assert_eq!(a2.since(a1), Dur::from_micros(12), "second waits for first");
    }

    #[test]
    fn queue_drains_over_time() {
        let mut l = gig_link();
        l.transmit(SimTime::ZERO, 1500).unwrap();
        assert!(l.backlog_bytes(SimTime::ZERO) > 0);
        assert_eq!(l.backlog_bytes(SimTime::ZERO + Dur::from_micros(12)), 0);
    }

    #[test]
    fn tail_drop_when_full() {
        let mut l = gig_link(); // 10_000 B capacity
        for _ in 0..6 {
            l.transmit(SimTime::ZERO, 1500).unwrap(); // 9000 B backlog
        }
        assert_eq!(l.transmit(SimTime::ZERO, 1500), Err(LinkDrop::QueueFull));
        assert_eq!(l.stats.drops_queue, 1);
        // After the backlog drains, transmission works again.
        let later = SimTime::ZERO + Dur::from_millis(1);
        assert!(l.transmit(later, 1500).is_ok());
    }

    #[test]
    fn down_link_drops_everything() {
        let mut l = gig_link();
        l.up = false;
        assert_eq!(l.transmit(SimTime::ZERO, 100), Err(LinkDrop::LinkDown));
        assert_eq!(l.stats.drops_down, 1);
        l.up = true;
        assert!(l.transmit(SimTime::ZERO, 100).is_ok());
    }
}
