//! `transport` — full TCP and SCTP protocol implementations over [`netsim`].
//!
//! This crate provides the two transports the paper compares:
//!
//! * [`tcp`] — a 4.4BSD-lineage TCP: 3-way handshake, sliding window with
//!   advertised-window flow control, delayed ACKs, Nagle (disabled by
//!   default, as in the paper's LAM-TCP), NewReno congestion control with
//!   limited SACK (≤ 3 blocks per ACK — the option-space limit the paper
//!   cites), RFC 6298 RTO with coarse timer granularity, zero-window
//!   persist probing, and orderly close including the half-closed state.
//! * [`sctp`] — a KAME-style SCTP: one-to-one and one-to-many sockets,
//!   four-way cookie handshake with signed cookies and verification tags,
//!   multiple streams per association (SSN/TSN sequencing), message
//!   fragmentation and chunk bundling to PMTU, delayed SACKs with unlimited
//!   gap-ack blocks, byte-counting congestion control with the
//!   full-PMTU-at-one-byte rule, fast retransmit, per-destination
//!   congestion state, multihoming with heartbeats and path failover, and
//!   autoclose.
//!
//! The shared [`World`] owns the network and one protocol stack per host;
//! MPI middleware and workloads run against this world inside a
//! [`simcore::Runtime`].
//!
//! Diagnostics (all env-gated, printing to stderr): `TCP_TRACE=1` traces
//! TCP timeouts and hole repairs; `SCTP_TRACE=1` traces SCTP T3 expiries
//! and receive-window drops; `SCTP_CHECK=1` verifies the per-path flight
//! invariant after every SACK; `SCTP_TS_TRACE=1` traces the send gate of
//! one association.

#![warn(missing_docs)]

pub mod backend;
pub mod buf;
pub mod crc32c;
pub mod ip;
pub mod pool;
pub mod ranges;
pub mod rto;
pub mod sctp;
pub mod tcp;
pub mod wire_bytes;

use netsim::{Net, NetCfg};
use simcore::Ctx;

/// Scheduler context specialized to the transport world.
pub type Wx = Ctx<World>;

/// Per-host protocol state.
pub struct Host {
    /// The host's TCP stack.
    pub tcp: tcp::TcpHost,
    /// The host's SCTP stack.
    pub sctp: sctp::SctpHost,
}

/// The complete simulated system below the middleware: network + stacks.
pub struct World {
    /// The simulated cluster network.
    pub net: Net,
    /// One protocol stack per host, indexed by host id.
    pub hosts: Vec<Host>,
    /// Recycled packet-plane buffers (see [`pool`]).
    pub pool: pool::Pools,
    /// The network driver every `ip::send` dispatches through. Always
    /// `Some` between dispatches; `ip::send` takes it out for the duration
    /// of one backend call (see [`backend`]).
    pub backend: Option<Box<dyn backend::Backend>>,
}

impl World {
    /// Build a world over `net_cfg` with per-host TCP and SCTP stacks.
    pub fn new(net_cfg: NetCfg, tcp_cfg: tcp::TcpCfg, sctp_cfg: sctp::SctpCfg) -> Self {
        let hosts = (0..net_cfg.hosts)
            .map(|_| Host {
                tcp: tcp::TcpHost::new(tcp_cfg),
                sctp: sctp::SctpHost::new(sctp_cfg.clone()),
            })
            .collect();
        World {
            net: Net::new(net_cfg),
            hosts,
            pool: pool::Pools::default(),
            backend: Some(Box::new(backend::SimBackend)),
        }
    }

    /// Swap the network driver (e.g. for a [`backend::udp::UdpBackend`]).
    /// Returns the previous one.
    pub fn install_backend(&mut self, b: Box<dyn backend::Backend>) -> Box<dyn backend::Backend> {
        self.backend.replace(b).expect("backend slot empty outside a dispatch")
    }

    /// Convenience: default configs at a given loss rate (the paper's
    /// cluster).
    pub fn paper_cluster(loss: f64) -> Self {
        World::new(NetCfg::paper_cluster(loss), tcp::TcpCfg::default(), sctp::SctpCfg::default())
    }
}
