//! The engine↔network seam: one trait, two drivers.
//!
//! Every packet the TCP and SCTP engines emit funnels through
//! [`crate::ip::send`] / [`crate::ip::send_train`], which dispatch to the
//! [`Backend`] installed in the [`World`]:
//!
//! * [`SimBackend`] — the deterministic simulator. Egress asks [`netsim`]
//!   for a verdict and schedules the delivery event; ingress *is* those
//!   scheduled events, so [`Backend::poll_ingress`] has nothing to do. This
//!   is the default backend and is bit-identical to the pre-trait code:
//!   same RNG draws, same (time, seq) event positions, same `events_fired`.
//! * [`UdpBackend`](udp::UdpBackend) — real sockets. Egress serializes the
//!   frame ([`crate::wire_bytes::encode_packet`]) and writes it as one UDP
//!   datagram (RFC 6951-style encapsulation); ingress drains the socket,
//!   verifies checksums, and hands decoded packets back for dispatch into
//!   the same unmodified engines.
//!
//! What is shared between the two backends: the protocol engines (CC, RTO,
//! SACK, bundling, CMT), the timer wheel, the flight recorder. What is not:
//! the loss/latency model (the real network supplies its own) and
//! determinism (wall-clock arrival order is not replayable).
//!
//! Dispatch discipline: the backend is `take()`n out of the world for the
//! duration of one trait call and restored immediately after — a backend
//! method must never re-enter `ip::send` (both drivers are leaves: the sim
//! path only *schedules* deliveries, the UDP path only writes datagrams).
//! Ingress dispatch happens with the backend back in place, so input
//! handlers are free to transmit replies.

pub mod udp;

use simcore::SimTime;

use crate::ip::Packet;
use crate::{ip, World, Wx};

/// A network driver under the transport engines. See the module docs for
/// the dispatch discipline.
pub trait Backend: Send {
    /// Egress one packet.
    fn send(&mut self, w: &mut World, ctx: &mut Wx, pkt: Packet);

    /// Egress a train of back-to-back packets to one peer. The sim backend
    /// fuses these into one delivery event; a socket backend just writes
    /// K datagrams.
    fn send_train(&mut self, w: &mut World, ctx: &mut Wx, pkts: Vec<Packet>);

    /// Drain ingress: frames that arrived since the last poll, decoded into
    /// engine packets (in arrival order). The sim backend returns nothing —
    /// its deliveries ride scheduled events. The caller dispatches the
    /// result via [`ip::deliver_now`] with the backend back in place.
    fn poll_ingress(&mut self, _ctx: &mut Wx) -> Vec<Packet> {
        Vec::new()
    }

    /// The next instant the driver loop must wake for: the earliest queued
    /// timer by default. A socket backend's reactor sleeps until this (or
    /// until the socket turns readable).
    fn next_deadline(&self, ctx: &Wx) -> Option<SimTime> {
        ctx.next_event_time()
    }

    /// The clock packets are stamped with: virtual time under the sim,
    /// wall-derived time under a socket backend (whose reactor keeps the
    /// virtual clock tracking it).
    fn now(&self, ctx: &Wx) -> SimTime {
        ctx.now()
    }

    /// Implementation-specific escape hatch: lets the driver's owner
    /// recover concrete state (e.g. [`udp::UdpStats`]) through the trait
    /// object after a run.
    fn as_any(&mut self) -> &mut dyn std::any::Any;
}

/// Drain the installed backend's ingress queue and dispatch every decoded
/// packet into the protocol input routines. Returns how many were
/// dispatched. The poll runs with the backend taken out (so it can't
/// re-enter the engines); dispatch runs with it restored (so input handlers
/// can transmit replies). This is the reactor's per-tick ingress pump; on
/// the sim backend it is a no-op.
pub fn pump_ingress(w: &mut World, ctx: &mut Wx) -> usize {
    let mut b = w.backend.take().expect("backend re-entered pump_ingress from its own dispatch");
    let pkts = b.poll_ingress(ctx);
    w.backend = Some(b);
    let n = pkts.len();
    for pkt in pkts {
        ip::deliver_now(w, ctx, pkt);
    }
    n
}

/// The deterministic simulator driver: the exact egress path every figure
/// in EXPERIMENTS.md was measured under, now behind the trait.
#[derive(Debug, Default)]
pub struct SimBackend;

impl Backend for SimBackend {
    fn send(&mut self, w: &mut World, ctx: &mut Wx, pkt: Packet) {
        ip::sim_send(w, ctx, pkt);
    }

    fn send_train(&mut self, w: &mut World, ctx: &mut Wx, pkts: Vec<Packet>) {
        ip::sim_send_train(w, ctx, pkts);
    }

    fn as_any(&mut self) -> &mut dyn std::any::Any {
        self
    }
}
