//! Sender-side stream schedulers for RFC 8260 message interleaving.
//!
//! With I-DATA negotiated, fragments of different user messages may
//! interleave on the wire, so "which stream supplies the next chunk?"
//! becomes a real policy question. This module defines the
//! [`StreamScheduler`] trait the engine consults once per chunk slot, plus
//! the four deterministic policies the experiments compare
//! (first-come-first-served, round-robin, weighted-fair, strict-priority).
//!
//! # Determinism contract
//!
//! Schedulers run inside the discrete-event simulation, so every
//! implementation MUST be a pure function of its own explicit state and the
//! candidate list: no RNG, no `HashMap` iteration order, no wall-clock
//! reads. Ties MUST break toward the lowest stream id. The engine
//! guarantees the candidate slice is sorted by ascending stream id and
//! non-empty.
//!
//! # Peek/pop consistency
//!
//! The engine calls [`StreamScheduler::pick`] (a `&self` peek) while
//! deciding whether the next chunk fits the congestion window, and only
//! after committing to transmit calls [`StreamScheduler::on_send`] (the
//! `&mut self` state update). A `pick` therefore MUST NOT mutate: the
//! engine may peek several times (cwnd gate, rwnd gate, budget gate)
//! before one pop, and repeated peeks must agree.

/// One schedulable stream, as presented to [`StreamScheduler::pick`].
#[derive(Debug, Clone, Copy)]
pub struct SchedCandidate {
    /// Stream id with at least one queued fragment.
    pub sid: u16,
    /// Global enqueue sequence number of the stream's front fragment
    /// (monotone across the association; FCFS order).
    pub front_seq: u64,
    /// Payload length of the stream's front fragment, bytes.
    pub front_len: u32,
}

/// A sender-side stream scheduling policy (RFC 8260 §4 / SCTP_SS_* socket
/// options in usrsctp).
///
/// The engine keeps one boxed scheduler per association and consults it
/// once per chunk-transmission slot.
pub trait StreamScheduler: Send {
    /// Choose which candidate stream supplies the next chunk. Returns an
    /// index into `candidates`. Must be deterministic and side-effect free
    /// (see the module docs for the peek/pop contract).
    fn pick(&self, candidates: &[SchedCandidate]) -> usize;

    /// Record that `bytes` of stream `sid`'s front fragment were committed
    /// for transmission. Called exactly once per popped fragment.
    fn on_send(&mut self, sid: u16, bytes: u32);
}

/// Which scheduler policy an association uses. Parsed from the
/// `SCTP_SCHED` env knob or set via `MpiCfg`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SchedKind {
    /// First-come-first-served: pop fragments in global enqueue order.
    /// This reproduces the pre-interleaving single-FIFO wire order exactly
    /// (fragments of one message stay contiguous), and is the forced
    /// fallback when the peer did not negotiate interleaving.
    #[default]
    Fcfs,
    /// Round-robin over streams with queued data, one fragment per turn.
    RoundRobin,
    /// Weighted-fair: pick the stream with the least `bytes_sent / weight`
    /// virtual time. Unconfigured streams weigh 1.
    WeightedFair,
    /// Strict priority: lowest stream id always wins.
    StrictPriority,
}

impl SchedKind {
    /// Parse an env-knob string. Unrecognized or empty values fall back to
    /// [`SchedKind::Fcfs`] (garbage-tolerant, like the other env knobs).
    pub fn parse(s: &str) -> SchedKind {
        match s.trim().to_ascii_lowercase().as_str() {
            "rr" | "round-robin" | "round_robin" | "roundrobin" => SchedKind::RoundRobin,
            "wfq" | "fair" | "weighted-fair" | "weighted_fair" => SchedKind::WeightedFair,
            "prio" | "priority" | "strict-priority" | "strict_priority" => {
                SchedKind::StrictPriority
            }
            _ => SchedKind::Fcfs,
        }
    }

    /// Short stable name, used in BENCH json and table headers.
    pub fn name(self) -> &'static str {
        match self {
            SchedKind::Fcfs => "fcfs",
            SchedKind::RoundRobin => "rr",
            SchedKind::WeightedFair => "wfq",
            SchedKind::StrictPriority => "prio",
        }
    }

    /// Build a fresh scheduler instance for an association with
    /// `out_streams` outbound streams. `weights` configures
    /// [`SchedKind::WeightedFair`] (stream id indexes it; missing entries
    /// and zeros weigh 1) and is ignored by the other policies.
    pub fn build(self, out_streams: u16, weights: &[u32]) -> Box<dyn StreamScheduler> {
        match self {
            SchedKind::Fcfs => Box::new(Fcfs),
            SchedKind::RoundRobin => Box::new(RoundRobin { last: None }),
            SchedKind::WeightedFair => {
                let n = out_streams as usize;
                let mut w = vec![1u32; n];
                for (i, &wi) in weights.iter().take(n).enumerate() {
                    w[i] = wi.max(1);
                }
                Box::new(WeightedFair { sent: vec![0; n], weights: w })
            }
            SchedKind::StrictPriority => Box::new(StrictPriority),
        }
    }
}

/// FCFS: lowest global enqueue sequence first — the single-FIFO order.
#[derive(Debug)]
pub struct Fcfs;

impl StreamScheduler for Fcfs {
    fn pick(&self, candidates: &[SchedCandidate]) -> usize {
        let mut best = 0;
        for (i, c) in candidates.iter().enumerate().skip(1) {
            if c.front_seq < candidates[best].front_seq {
                best = i;
            }
        }
        best
    }

    fn on_send(&mut self, _sid: u16, _bytes: u32) {}
}

/// Round-robin: the next stream (by id, wrapping) after the last-served
/// one. A fresh association starts at the lowest candidate.
#[derive(Debug)]
pub struct RoundRobin {
    last: Option<u16>,
}

impl StreamScheduler for RoundRobin {
    fn pick(&self, candidates: &[SchedCandidate]) -> usize {
        match self.last {
            None => 0,
            Some(last) => {
                // First candidate with sid strictly above the cursor, else
                // wrap to the lowest (candidates are sorted by sid).
                candidates.iter().position(|c| c.sid > last).unwrap_or(0)
            }
        }
    }

    fn on_send(&mut self, sid: u16, _bytes: u32) {
        self.last = Some(sid);
    }
}

/// Weighted-fair queueing: serve the stream with the smallest
/// `bytes_sent / weight`, compared exactly via cross-multiplication (no
/// floats in the simulation).
#[derive(Debug)]
pub struct WeightedFair {
    sent: Vec<u64>,
    weights: Vec<u32>,
}

impl WeightedFair {
    fn vt_lt(&self, a: u16, b: u16) -> bool {
        let (sa, wa) = (self.sent[a as usize] as u128, self.weights[a as usize] as u128);
        let (sb, wb) = (self.sent[b as usize] as u128, self.weights[b as usize] as u128);
        // sa/wa < sb/wb  ⇔  sa·wb < sb·wa
        sa * wb < sb * wa
    }
}

impl StreamScheduler for WeightedFair {
    fn pick(&self, candidates: &[SchedCandidate]) -> usize {
        let mut best = 0;
        for (i, c) in candidates.iter().enumerate().skip(1) {
            if self.vt_lt(c.sid, candidates[best].sid) {
                best = i;
            }
        }
        best
    }

    fn on_send(&mut self, sid: u16, bytes: u32) {
        self.sent[sid as usize] += bytes as u64;
    }
}

/// Strict priority: the lowest stream id with queued data always wins
/// (stream id doubles as priority level; 0 is most urgent).
#[derive(Debug)]
pub struct StrictPriority;

impl StreamScheduler for StrictPriority {
    fn pick(&self, _candidates: &[SchedCandidate]) -> usize {
        0 // candidates are sorted by ascending sid
    }

    fn on_send(&mut self, _sid: u16, _bytes: u32) {}
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cands(v: &[(u16, u64, u32)]) -> Vec<SchedCandidate> {
        v.iter()
            .map(|&(sid, front_seq, front_len)| SchedCandidate { sid, front_seq, front_len })
            .collect()
    }

    #[test]
    fn fcfs_follows_global_sequence() {
        let s = Fcfs;
        let c = cands(&[(0, 9, 100), (3, 2, 100), (7, 5, 100)]);
        assert_eq!(s.pick(&c), 1);
    }

    #[test]
    fn round_robin_cycles_and_wraps() {
        let mut s = RoundRobin { last: None };
        let c = cands(&[(1, 0, 10), (4, 1, 10), (9, 2, 10)]);
        let mut order = Vec::new();
        for _ in 0..6 {
            let i = s.pick(&c);
            order.push(c[i].sid);
            s.on_send(c[i].sid, 10);
        }
        assert_eq!(order, vec![1, 4, 9, 1, 4, 9]);
    }

    #[test]
    fn round_robin_skips_empty_streams() {
        let mut s = RoundRobin { last: Some(4) };
        // Stream 4 vanished from the candidates; next above 4 is 9.
        let c = cands(&[(1, 0, 10), (9, 2, 10)]);
        assert_eq!(c[s.pick(&c)].sid, 9);
        s.on_send(9, 10);
        assert_eq!(c[s.pick(&c)].sid, 1, "wraps past the top");
    }

    #[test]
    fn weighted_fair_respects_weights() {
        // Stream 0 weight 3, stream 1 weight 1: over 8 sends stream 0
        // should get ~6.
        let mut s = WeightedFair { sent: vec![0, 0], weights: vec![3, 1] };
        let c = cands(&[(0, 0, 10), (1, 1, 10)]);
        let mut count0 = 0;
        for _ in 0..8 {
            let i = s.pick(&c);
            if c[i].sid == 0 {
                count0 += 1;
            }
            s.on_send(c[i].sid, 10);
        }
        assert_eq!(count0, 6);
    }

    #[test]
    fn strict_priority_starves_high_ids() {
        let s = StrictPriority;
        let c = cands(&[(2, 50, 10), (5, 1, 10)]);
        assert_eq!(c[s.pick(&c)].sid, 2);
    }

    #[test]
    fn parse_is_garbage_tolerant() {
        assert_eq!(SchedKind::parse("rr"), SchedKind::RoundRobin);
        assert_eq!(SchedKind::parse(" Weighted-Fair "), SchedKind::WeightedFair);
        assert_eq!(SchedKind::parse("prio"), SchedKind::StrictPriority);
        assert_eq!(SchedKind::parse("fcfs"), SchedKind::Fcfs);
        assert_eq!(SchedKind::parse("banana"), SchedKind::Fcfs);
        assert_eq!(SchedKind::parse(""), SchedKind::Fcfs);
    }
}
