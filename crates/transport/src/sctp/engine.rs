//! The SCTP protocol engine: handshake, data transfer, SACK processing,
//! congestion control, retransmission, multihoming, and shutdown.

use bytes::Bytes;
use netsim::IfAddr;
use rand::Rng;
use simcore::{Dur, ProcId};

use crate::ip::{self, Packet, Proto};
use crate::{World, Wx};

use super::assoc::{
    Assoc, AssocId, AssocState, AssocStats, Endpoint, EpId, InStream, PathState, PendingChunk,
    RecvMsg, SctpCfg, SentChunk, MAX_PATHS,
};
use super::wire::{Chunk, Cookie, DataChunk, IDataChunk, SctpPacket};

// ---------------------------------------------------------------------------
// Accessors
// ---------------------------------------------------------------------------

fn cfg_of(w: &World, host: u16) -> SctpCfg {
    w.hosts[host as usize].sctp.cfg.clone()
}

fn ep_mut(w: &mut World, e: EpId) -> &mut Endpoint {
    &mut w.hosts[e.host as usize].sctp.eps[e.idx as usize]
}

fn ep_ref(w: &World, e: EpId) -> &Endpoint {
    &w.hosts[e.host as usize].sctp.eps[e.idx as usize]
}

fn assoc_mut(w: &mut World, a: AssocId) -> &mut Assoc {
    &mut w.hosts[a.host as usize].sctp.eps[a.ep as usize].assocs[a.idx as usize]
}

fn assoc_ref(w: &World, a: AssocId) -> &Assoc {
    &w.hosts[a.host as usize].sctp.eps[a.ep as usize].assocs[a.idx as usize]
}

/// Split borrow: the association *and* the world's buffer pools, so hot
/// paths can recycle buffers while mutating association state.
fn assoc_pool_mut(w: &mut World, a: AssocId) -> (&mut Assoc, &mut crate::pool::Pools) {
    let World { hosts, pool, .. } = w;
    (&mut hosts[a.host as usize].sctp.eps[a.ep as usize].assocs[a.idx as usize], pool)
}

/// Draw a verification tag: full-width under the sim (historical stream,
/// bit-identical figures), u32-range when `wire_safe_ids` is set so the
/// tag survives the wire's 32-bit field (see [`SctpCfg::wire_safe_ids`]).
fn draw_tag(ctx: &mut Wx, cfg: &SctpCfg) -> u64 {
    if cfg.wire_safe_ids {
        ctx.rng.gen_range(1..u32::MAX as u64)
    } else {
        ctx.rng.gen_range(1..u64::MAX)
    }
}

/// Draw a heartbeat nonce, width-gated like [`draw_tag`].
fn draw_nonce(ctx: &mut Wx, cfg: &SctpCfg) -> u64 {
    if cfg.wire_safe_ids {
        ctx.rng.gen::<u32>() as u64
    } else {
        ctx.rng.gen()
    }
}

fn host_secret(w: &mut World, ctx: &mut Wx, host: u16) -> u64 {
    let sh = &mut w.hosts[host as usize].sctp;
    *sh.secret.get_or_insert_with(|| ctx.rng.gen())
}

/// Flight-recorder snapshot of one path's congestion state. Callers guard
/// with `ctx.tracing()` so the off path costs one branch.
fn trace_cwnd(ctx: &Wx, host: u16, peer: u16, path: u8, ps: &PathState) {
    ctx.trace_emit(trace::Event::Cwnd(trace::CwndEv {
        proto: trace::Proto8::Sctp,
        host,
        peer,
        path,
        cwnd: ps.cwnd,
        ssthresh: ps.ssthresh,
        flight: ps.flight,
    }));
}

// ---------------------------------------------------------------------------
// CMT (Concurrent Multipath Transfer, Iyengar et al.)
// ---------------------------------------------------------------------------

/// CMT stripe: rotate over the active paths *with congestion-window
/// headroom*, starting after the last assignment (Iyengar's scheduler).
///
/// Why not simply "the path with the most open window"? Because cwnd only
/// grows where data flows, that rule is bistable: whichever path pulls
/// ahead offers the most free bytes, attracts the whole stripe, grows
/// further, and CMT degenerates to one effective path (measured: a
/// 200-iteration A5 run collapses to a 1:32:32 data split). Rotation keeps
/// equal paths in a 1/N split, while the headroom gate still steers around
/// paths whose cwnd is closed by loss recovery — that is the cwnd-aware
/// part. Falls back to the most open window (ties toward lower SRTT, then
/// lower index) when every path is saturated, and to the primary when
/// every path is down; all picks are fully deterministic.
fn cmt_pick_path(ak: &Assoc) -> u8 {
    cmt_pick_path_burst(ak, &[0; MAX_PATHS], u32::MAX)
}

/// [`cmt_pick_path`] with Max.Burst awareness: paths that already emitted
/// `max_burst` packets this send opportunity are skipped, because CMT
/// applies the burst limit per *destination* — one association-wide gate
/// would let a 3-path stripe open its ack clock no faster than one path.
fn cmt_pick_path_burst(ak: &Assoc, burst_on: &[u32; MAX_PATHS], max_burst: u32) -> u8 {
    let n = ak.paths.len();
    let start = (ak.cmt_last_path as usize + 1) % n;
    for k in 0..n {
        let i = (start + k) % n;
        let ps = &ak.paths[i];
        if ps.active && ps.flight < ps.cwnd && burst_on[i] < max_burst {
            return i as u8;
        }
    }
    ak.paths
        .iter()
        .enumerate()
        .filter(|(i, ps)| ps.active && burst_on[*i] < max_burst)
        .min_by_key(|(i, ps)| {
            let free = ps.cwnd.saturating_sub(ps.flight);
            let srtt = ps.rto.srtt().map_or(u64::MAX, |d| d.as_nanos());
            (std::cmp::Reverse(free), srtt, *i)
        })
        .map(|(i, _)| i as u8)
        .unwrap_or(ak.primary)
}

/// CMT retransmission policy (RTX-SAME): resend on the chunk's own path so
/// the per-path pseudo-cumack and SFR accounting stay truthful; fall back
/// to the most-open active path only when that path is down.
fn cmt_rtx_target(ak: &Assoc, chunk_path: u8) -> u8 {
    if ak.paths[chunk_path as usize].active {
        chunk_path
    } else {
        cmt_pick_path(ak)
    }
}

/// Record that `tsn` now rides `path`: the path's pseudo-cumack (earliest
/// outstanding TSN) and its rescan cursor may move down. Called at every
/// chunk→path (re)assignment when CMT is on.
fn cmt_note_assign(ak: &mut Assoc, path: u8, tsn: u64) {
    ak.cmt_last_path = path;
    let ps = &mut ak.paths[path as usize];
    ps.pseudo_cumack = ps.pseudo_cumack.min(tsn);
    ps.cumack_floor = ps.cumack_floor.min(tsn);
}

/// Earliest unacked TSN currently assigned to path `p`, advancing the
/// path's scan cursor past the settled prefix so repeated per-SACK rescans
/// stay amortized-cheap (`acked` never reverts; assignments below the
/// cursor go through [`cmt_note_assign`]).
fn cmt_earliest_on(ak: &mut Assoc, p: usize) -> Option<u64> {
    let floor = ak.paths[p].cumack_floor;
    let hit = ak
        .sent
        .range(floor..)
        .find_map(|(&tsn, c)| (!c.acked && c.path as usize == p).then_some(tsn));
    match hit {
        Some(tsn) => ak.paths[p].cumack_floor = tsn,
        None => ak.paths[p].cumack_floor = ak.next_tsn,
    }
    hit
}

// ---------------------------------------------------------------------------
// Public API
// ---------------------------------------------------------------------------

/// Errors from [`sendmsg`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SendErr {
    /// Send buffer full — retry after a writable wake (EAGAIN).
    WouldBlock,
    /// Message exceeds the send buffer; split it (the `sctp_sendmsg` limit
    /// the paper works around in §3.4/§3.6).
    MsgTooBig,
    /// Association not in a sendable state.
    NotConnected,
    /// Stream id out of range.
    BadStream,
}

/// Create an SCTP socket bound to `port`.
pub fn socket(w: &mut World, host: u16, port: u16, one_to_many: bool) -> EpId {
    let sh = &mut w.hosts[host as usize].sctp;
    assert!(!sh.by_port.contains_key(&port), "port {port} in use on host {host}");
    let idx = sh.eps.len() as u32;
    sh.eps.push(Endpoint {
        port,
        one_to_many,
        listening: false,
        assocs: Vec::new(),
        by_peer: std::collections::HashMap::new(),
        deliver_q: std::collections::VecDeque::new(),
        readers: Vec::new(),
        writers: Vec::new(),
        bad_vtag_drops: 0,
        stale_cookie_drops: 0,
        bad_mac_drops: 0,
    });
    sh.by_port.insert(port, idx);
    EpId { host, idx }
}

/// Accept inbound associations on this endpoint.
pub fn listen(w: &mut World, e: EpId) {
    ep_mut(w, e).listening = true;
}

/// Start the four-way handshake toward `(dst_host, dst_port)`.
pub fn connect(w: &mut World, ctx: &mut Wx, e: EpId, dst_host: u16, dst_port: u16) -> AssocId {
    let cfg = cfg_of(w, e.host);
    let local_tag: u64 = draw_tag(ctx, &cfg);
    let port = ep_ref(w, e).port;
    let mut assoc = Assoc::new(&cfg, port, dst_host, dst_port, local_tag, AssocState::CookieWait, 1);
    assoc.last_traffic = ctx.now();
    let ep = ep_mut(w, e);
    let idx = ep.assocs.len() as u32;
    ep.assocs.push(assoc);
    ep.by_peer.insert((dst_host, dst_port), idx);
    let a = AssocId { host: e.host, ep: e.idx, idx };
    send_init(w, ctx, a);
    a
}

/// Find the association for a given peer, if any (one-to-many sockets learn
/// of inbound associations this way).
pub fn lookup_peer(w: &World, e: EpId, peer_host: u16, peer_port: u16) -> Option<AssocId> {
    let ep = ep_ref(w, e);
    ep.by_peer.get(&(peer_host, peer_port)).map(|&idx| AssocId { host: e.host, ep: e.idx, idx })
}

/// Current association state.
pub fn assoc_state(w: &World, a: AssocId) -> AssocState {
    assoc_ref(w, a).state
}

/// Current primary path index.
pub fn primary_path(w: &World, a: AssocId) -> u8 {
    assoc_ref(w, a).primary
}

/// The peer's addresses, primary first.
pub fn peer_addrs(w: &World, a: AssocId) -> Vec<IfAddr> {
    let ak = assoc_ref(w, a);
    let mut v: Vec<IfAddr> = ak.paths.iter().map(|p| IfAddr::new(ak.peer_host, p.iface)).collect();
    v.swap(0, ak.primary as usize);
    v
}

/// Association counters.
pub fn stats(w: &World, a: AssocId) -> AssocStats {
    assoc_ref(w, a).stats
}

/// Would a `len`-byte message be accepted right now?
pub fn can_send(w: &World, a: AssocId, len: u32) -> bool {
    let cfg = &w.hosts[a.host as usize].sctp.cfg;
    let ak = assoc_ref(w, a);
    sendable_state(ak.state) && ak.snd_space(cfg.sndbuf) >= len as u64
}

fn sendable_state(s: AssocState) -> bool {
    matches!(s, AssocState::CookieWait | AssocState::CookieEchoed | AssocState::Established)
}

/// Queue one user message on `stream`. All-or-nothing, like `sctp_sendmsg`.
pub fn sendmsg(
    w: &mut World,
    ctx: &mut Wx,
    a: AssocId,
    stream: u16,
    ppid: u32,
    data: Bytes,
) -> Result<(), SendErr> {
    sendmsg_impl(w, ctx, a, stream, ppid, std::slice::from_ref(&data), None)
}

/// Like [`sendmsg`] but the message body is a list of chunks (zero-copy for
/// callers that frame an envelope in front of a payload). Fragment
/// boundaries respect both the PMTU chunk limit and the input chunk
/// boundaries. Borrows the chunk list so a caller retrying after
/// `WouldBlock` never clones it.
pub fn sendmsg_v(
    w: &mut World,
    ctx: &mut Wx,
    a: AssocId,
    stream: u16,
    ppid: u32,
    data: &[Bytes],
) -> Result<(), SendErr> {
    sendmsg_impl(w, ctx, a, stream, ppid, data, None)
}

/// [`sendmsg`] with an explicit PR-SCTP lifetime: `Some(d)` abandons the
/// message if not delivered within `d` of queueing (RFC 3758 timed
/// reliability); `None` forces full reliability even when
/// [`SctpCfg::pr_lifetime`] sets a default — deadline workloads use that
/// for their end-of-run sentinel, which must never be abandoned.
pub fn sendmsg_pr(
    w: &mut World,
    ctx: &mut Wx,
    a: AssocId,
    stream: u16,
    ppid: u32,
    data: Bytes,
    lifetime: Option<Dur>,
) -> Result<(), SendErr> {
    sendmsg_impl(w, ctx, a, stream, ppid, std::slice::from_ref(&data), Some(lifetime))
}

/// Shared body of the `sendmsg*` family. `lifetime` is two-level: `None`
/// applies the config default, `Some(None)` is explicitly reliable,
/// `Some(Some(d))` an explicit deadline.
fn sendmsg_impl(
    w: &mut World,
    ctx: &mut Wx,
    a: AssocId,
    stream: u16,
    ppid: u32,
    data: &[Bytes],
    lifetime: Option<Option<Dur>>,
) -> Result<(), SendErr> {
    let cfg = cfg_of(w, a.host);
    {
        let ak = assoc_mut(w, a);
        if !sendable_state(ak.state) {
            return Err(SendErr::NotConnected);
        }
        if stream >= cfg.out_streams {
            return Err(SendErr::BadStream);
        }
        let len: u64 = data.iter().map(|c| c.len() as u64).sum();
        if len > cfg.sndbuf {
            return Err(SendErr::MsgTooBig);
        }
        if ak.snd_space(cfg.sndbuf) < len {
            return Err(SendErr::WouldBlock);
        }
        let expires = lifetime.unwrap_or(cfg.pr_lifetime).map(|d| ctx.now() + d);
        // Flight recorder, sender side: the message starts life blocked if
        // it is at the head of its own stream (nothing of `stream` queued
        // ahead — waiting behind one's own predecessors is FIFO
        // self-queueing, the same under any scheduler) while fragments of
        // *other* streams hold the wire — the condition I-DATA + a
        // non-FIFO scheduler exists to break. The matching un-block is
        // emitted when this stream's begin fragment reaches the wire (see
        // the phase-2 pop in `try_send_inner`).
        if let Some(t) = ctx.tracer() {
            if ak.other_stream_queued(stream) && !ak.own_stream_queued(stream) {
                t.hol_update(
                    ctx.now().as_nanos(),
                    a.host,
                    ak.peer_host,
                    stream,
                    trace::HolSide::Snd,
                    true,
                    0,
                );
            }
        }
        // Fragment into DATA chunks, all on `stream` with one SSN (the SSN
        // doubles as the RFC 8260 MID on the I-DATA path).
        let ssn = ak.out_ssn[stream as usize];
        ak.out_ssn[stream as usize] += 1;
        let max = if cfg.interleave {
            cfg.max_chunk_data_idata() as usize
        } else {
            cfg.max_chunk_data() as usize
        };
        if len == 0 {
            let seq = ak.msg_seq;
            ak.msg_seq += 1;
            ak.q_push(PendingChunk {
                stream,
                ssn,
                begin: true,
                end: true,
                unordered: false,
                ppid,
                data: Bytes::new(),
                fsn: 0,
                seq,
                expires,
            });
        } else {
            let mut remaining = len;
            let mut fsn = 0u32;
            for chunk in data {
                let total: usize = chunk.len();
                let mut off = 0;
                while off < total {
                    let take = max.min(total - off);
                    let begin = remaining == len;
                    remaining -= take as u64;
                    let seq = ak.msg_seq;
                    ak.msg_seq += 1;
                    ak.q_push(PendingChunk {
                        stream,
                        ssn,
                        begin,
                        end: remaining == 0,
                        unordered: false,
                        ppid,
                        data: chunk.slice(off..off + take),
                        fsn,
                        seq,
                        expires,
                    });
                    fsn += 1;
                    off += take;
                }
            }
        }
        ak.pending_bytes += len;
        ak.last_traffic = ctx.now();
    }
    try_send(w, ctx, a);
    Ok(())
}

/// Receive the next complete message delivered on this endpoint, in arrival
/// order across all associations and streams (§3.1 of the paper). `None` =
/// would block.
pub fn recvmsg(w: &mut World, ctx: &mut Wx, e: EpId) -> Option<RecvMsg> {
    let cfg = cfg_of(w, e.host);
    let msg = ep_mut(w, e).deliver_q.pop_front()?;
    let a = msg.assoc;
    let send_update = {
        let ak = assoc_mut(w, a);
        let before = ak.a_rwnd(cfg.rcvbuf);
        ak.rcvbuf_used = ak.rcvbuf_used.saturating_sub(msg.len as u64);
        ak.last_traffic = ctx.now();
        // Window-update SACK if we were pinching the sender.
        before < cfg.pmtu as u64 && ak.a_rwnd(cfg.rcvbuf) >= cfg.pmtu as u64
    };
    if send_update && assoc_ref(w, a).state == AssocState::Established {
        send_sack_now(w, ctx, a);
    }
    Some(msg)
}

/// Is a message ready on this endpoint?
pub fn readable(w: &World, e: EpId) -> bool {
    !ep_ref(w, e).deliver_q.is_empty()
}

/// Register `p` to be woken when a message arrives on this endpoint.
pub fn register_reader(w: &mut World, e: EpId, p: ProcId) {
    let ep = ep_mut(w, e);
    if !ep.readers.contains(&p) {
        ep.readers.push(p);
    }
}

/// Register `p` to be woken when send space frees or association state
/// changes on this endpoint.
pub fn register_writer(w: &mut World, e: EpId, p: ProcId) {
    let ep = ep_mut(w, e);
    if !ep.writers.contains(&p) {
        ep.writers.push(p);
    }
}

/// Graceful shutdown (no half-closed state: both directions end, §3.5.2).
pub fn shutdown(w: &mut World, ctx: &mut Wx, a: AssocId) {
    let state = assoc_ref(w, a).state;
    if state != AssocState::Established {
        return;
    }
    assoc_mut(w, a).state = AssocState::ShutdownPending;
    maybe_progress_shutdown(w, ctx, a);
}

/// Dump every association's state to stderr (debug watchdog).
pub fn dump_all(w: &World) {
    for (h, host) in w.hosts.iter().enumerate() {
        for (e, ep) in host.sctp.eps.iter().enumerate() {
            for (i, ak) in ep.assocs.iter().enumerate() {
                let frag_bytes: u64 = ak
                    .in_streams
                    .iter()
                    .map(|st| {
                        st.frags.values().map(|c| c.data.len() as u64).sum::<u64>()
                            + st.ready.values().map(|(_, _, l)| *l as u64).sum::<u64>()
                    })
                    .sum();
                let ready: usize = ak.in_streams.iter().map(|st| st.ready.len()).sum();
                let frags: usize = ak.in_streams.iter().map(|st| st.frags.len()).sum();
                eprintln!(
                    "h{h} ep{e} a{i} -> peer{} state={:?} out={} pend={}({}B) rwnd={} rcvused={} dq={} frags={frags} ready={ready} gated={frag_bytes}B t3={} cum={} have={:?}",
                    ak.peer_host,
                    ak.state,
                    ak.outstanding_bytes,
                    ak.pending.len(),
                    ak.pending_bytes,
                    ak.peer_rwnd,
                    ak.rcvbuf_used,
                    ep.deliver_q.len(),
                    ak.t3_armed,
                    ak.cum_tsn,
                    ak.rcv_have.iter().take(4).collect::<Vec<_>>(),
                );
            }
        }
    }
}

/// Manually set the primary path (sockopt equivalent).
pub fn set_primary(w: &mut World, a: AssocId, path: u8) {
    let ak = assoc_mut(w, a);
    assert!((path as usize) < ak.paths.len());
    ak.primary = path;
}

// ---------------------------------------------------------------------------
// Packet construction / transmission
// ---------------------------------------------------------------------------

/// Build the wire packet for `chunks` and charge the per-packet sender
/// stats; emission is the caller's business (immediate, CRC-delayed, or
/// buffered into a train).
fn build_packet(w: &mut World, ctx: &mut Wx, a: AssocId, path: u8, vtag: u64, chunks: Vec<Chunk>) -> Packet {
    let ak = assoc_mut(w, a);
    ak.stats.packets_out += 1;
    ak.stats.per_path_pkts[(path as usize).min(MAX_PATHS - 1)] += 1;
    let src = ak.local_addr(a.host, path);
    let dst = ak.peer_addr(path);
    let (sp, dp) = (ak.local_port, ak.peer_port);
    ak.paths[path as usize].last_used = ctx.now();
    Packet { src, dst, body: Proto::Sctp(SctpPacket { src_port: sp, dst_port: dp, vtag, chunks }) }
}

fn send_packet(w: &mut World, ctx: &mut Wx, a: AssocId, path: u8, vtag: u64, chunks: Vec<Chunk>) {
    let cfg = cfg_of(w, a.host);
    let pkt = build_packet(w, ctx, a, path, vtag, chunks);
    if cfg.crc_enabled {
        // Model the CRC32c CPU cost (§3.6): sender computes, receiver
        // verifies — charge both as added latency proportional to size.
        let bytes = match &pkt.body {
            Proto::Sctp(p) => p.wire_len() as u64,
            _ => unreachable!(),
        };
        let delay = Dur::from_nanos(2 * bytes); // ~1 ns/B each side
        ctx.schedule_in(delay, move |w: &mut World, ctx: &mut Wx| ip::send(w, ctx, pkt));
    } else {
        ip::send(w, ctx, pkt);
    }
}

/// Build a SACK chunk from receiver state. The gap-block list comes from
/// the world's pool (the receiver of the SACK retires it).
fn make_sack(
    ctx: &mut Wx,
    ak: &mut Assoc,
    pool: &mut crate::pool::Pools,
    rcvbuf: u64,
    max_gaps: usize,
) -> Chunk {
    let mut gaps = pool.take_gap_vec();
    gaps.extend(ak.rcv_have.iter().take(max_gaps));
    ak.sack_pending_pkts = 0;
    ak.sack_immediate = false;
    let dups = ak.dup_since_sack;
    ak.dup_since_sack = 0;
    ak.sack_gen += 1; // cancels pending sack timer
    ak.sack_armed = false;
    if let Some(id) = ak.sack_timer.take() {
        ctx.cancel_counted(id);
    }
    ak.last_advertised_rwnd = ak.a_rwnd(rcvbuf);
    ak.stats.sacks_out += 1;
    Chunk::Sack { cum_tsn: ak.cum_tsn, a_rwnd: ak.last_advertised_rwnd, gaps, dup_count: dups }
}

fn send_sack_now(w: &mut World, ctx: &mut Wx, a: AssocId) {
    let cfg = cfg_of(w, a.host);
    let (sack, path, vtag) = {
        let (ak, pool) = assoc_pool_mut(w, a);
        let path = ak.last_data_path();
        (make_sack(ctx, ak, pool, cfg.rcvbuf, cfg.max_gap_blocks), path, ak.peer_tag)
    };
    let mut chunks = w.pool.take_chunk_vec();
    chunks.push(sack);
    send_packet(w, ctx, a, path, vtag, chunks);
}

impl Assoc {
    /// The path to send SACKs on: where the peer's data last arrived, else
    /// the primary.
    fn last_data_path(&self) -> u8 {
        self.primary
    }
}

/// Transmit retransmissions first, then new data, bundling to PMTU,
/// respecting per-path cwnd and the peer's rwnd. Implements the
/// "full PMTU at one byte of cwnd space" rule (§4.1.1).
///
/// The packets of one send opportunity leave back-to-back for one peer, so
/// they are accumulated into a train and offered to the network in one
/// [`ip::send_train`] call. Equivalence with per-packet emission: nothing
/// between two emissions in this loop touches the network or the RNG, so
/// the batched loss trials and `busy_until` arithmetic happen in the same
/// order at the same instant; a path change flushes (a train must not span
/// interfaces); and the CRC-delay model falls back to per-packet emission
/// (each packet needs its own delay event). The T3 timer armed mid-loop
/// orders after the whole train in the seq stream where the reference
/// discipline puts it after the first packet, but its deadline is RTO-far
/// (≥ 1 s) while train arrivals are queue-bounded (≪ 1 s), so no
/// (time, seq) tie between them is possible and fire order is unchanged.
fn try_send(w: &mut World, ctx: &mut Wx, a: AssocId) {
    let pr = assoc_ref(w, a).pr_active();
    let abandoned_before = if pr { assoc_ref(w, a).stats.msgs_abandoned } else { 0 };
    if pr {
        // PR-SCTP housekeeping rides the send path: reap queued fragments
        // whose lifetime lapsed before first transmission (lazily,
        // front-of-queue only), then advance the peer past anything
        // abandoned so far.
        let now = ctx.now();
        reap_expired(assoc_mut(w, a), now);
        maybe_send_forward_tsn(w, ctx, a);
    }
    let crc = cfg_of(w, a.host).crc_enabled;
    let pending_before =
        if ctx.tracer().is_some() { assoc_ref(w, a).pending_bytes } else { 0 };
    let mut train = w.pool.take_packet_vec();
    let mut train_path = 0u8;
    try_send_inner(w, ctx, a, crc, &mut train, &mut train_path);
    ip::send_train(w, ctx, train);
    // Flight recorder, sender side: gate the HOL clocks on transmission
    // progress. A pass that moved no queued fragment while fragments
    // remain is a stall (cwnd full / zero rwnd / RTO recovery) — freeze
    // the open sender-HOL episodes so window-closure time is not charged
    // to stream scheduling; a pass that shipped something restarts them.
    if let Some(t) = ctx.tracer() {
        let ak = assoc_ref(w, a);
        let pending_after = ak.pending_bytes;
        if pending_after < pending_before {
            t.hol_snd_stall(ctx.now().as_nanos(), a.host, ak.peer_host, false);
        } else if pending_after > 0 {
            t.hol_snd_stall(ctx.now().as_nanos(), a.host, ak.peer_host, true);
        }
    }
    if pr {
        // Retransmission-time abandonment inside the loop above may have
        // moved the Advanced.Peer.Ack.Point; tell the peer now rather than
        // waiting for the next send opportunity.
        maybe_send_forward_tsn(w, ctx, a);
        wake_writers_after_abandon(w, ctx, a, abandoned_before);
    }
}

/// PR-SCTP: abandonment frees send-buffer space without any SACK arriving
/// to trigger the usual writer wake in `process_sack` — a sender blocked on
/// a full buffer would sleep forever while heartbeats keep the association
/// (and the simulation) alive. Wake blocked writers whenever a call
/// abandoned anything; a spurious wake is benign (a still-blocked sender
/// re-checks and re-registers).
fn wake_writers_after_abandon(w: &mut World, ctx: &mut Wx, a: AssocId, abandoned_before: u64) {
    if assoc_ref(w, a).stats.msgs_abandoned == abandoned_before {
        return;
    }
    let ep = ep_mut(w, a.endpoint());
    ctx.wake_all(&ep.writers);
    ep.writers.clear();
}

fn try_send_inner(
    w: &mut World,
    ctx: &mut Wx,
    a: AssocId,
    crc: bool,
    train: &mut Vec<Packet>,
    train_path: &mut u8,
) {
    let cfg = cfg_of(w, a.host);
    let mut burst = 0u32;
    // CMT: Max.Burst is accounted per destination (see
    // [`cmt_pick_path_burst`]); the association-wide `burst` counter still
    // runs but its gate widens to paths × Max.Burst.
    let mut burst_on = [0u32; MAX_PATHS];
    let burst_cap = if cfg.cmt { cfg.max_burst * cfg.num_paths.max(1) as u32 } else { cfg.max_burst };
    loop {
        // Max.Burst (RFC 4960 §6.1): at most this many packets per send
        // opportunity; the next SACK re-opens the gate (ACK clocking).
        if burst >= burst_cap {
            return;
        }
        let mut packet = w.pool.take_chunk_vec();
        let path;
        let vtag;
        {
            let (ak, pool) = assoc_pool_mut(w, a);
            if !matches!(
                ak.state,
                AssocState::Established | AssocState::ShutdownPending | AssocState::ShutdownReceived
            ) {
                return;
            }
            vtag = ak.peer_tag;
            let mut budget = cfg.packet_budget();

            // Piggyback a pending SACK on outbound data.
            let want_sack = ak.sack_immediate || ak.sack_pending_pkts > 0;

            // Phase 1: marked retransmissions (cwnd-limited on the rtx path).
            // CMT keeps each retransmission on the chunk's own path
            // (RTX-SAME): moving chunks between paths would corrupt the
            // per-path pseudo-cumack and SFR accounting the scheduler
            // depends on, so one burst iteration serves one path and later
            // iterations (or the next SACK) pick up the rest.
            let rtx_path = if cfg.cmt {
                ak.rtx_queue
                    .first()
                    .map(|&t| cmt_rtx_target(ak, ak.sent[&t].path))
                    .unwrap_or(ak.primary)
            } else {
                ak.rtx_path(cfg.rtx_alternate)
            };
            let has_marked = !ak.rtx_queue.is_empty()
                && (!cfg.cmt || burst_on[rtx_path as usize] < cfg.max_burst);
            if has_marked && ak.paths[rtx_path as usize].flight < ak.paths[rtx_path as usize].cwnd {
                path = rtx_path;
                if want_sack {
                    budget -= make_sack_placeholder_len(ak);
                    let sack = make_sack(ctx, ak, pool, cfg.rcvbuf, cfg.max_gap_blocks);
                    packet.push(sack);
                }
                let now = ctx.now();
                let interleave = ak.interleaving();
                let pr = ak.pr_active();
                // `rtx_queue` holds exactly the marked, unacked TSNs, so no
                // scan of `sent` is needed; snapshot it because the loop
                // removes entries as chunks go back on the wire.
                let tsns: Vec<u64> = ak.rtx_queue.iter().copied().collect();
                for tsn in tsns {
                    if !ak.rtx_queue.contains(&tsn) {
                        // Removed since the snapshot: an earlier iteration
                        // abandoned its whole message (PR-SCTP).
                        continue;
                    }
                    if cfg.cmt && cmt_rtx_target(ak, ak.sent[&tsn].path) != path {
                        continue; // another path's retransmission burst
                    }
                    // PR-SCTP: lifetime lapsed while queued for
                    // retransmission → abandon the message, never resend.
                    if pr && ak.sent[&tsn].expires.is_some_and(|e| now > e) {
                        let (s, n) = (ak.sent[&tsn].stream, ak.sent[&tsn].ssn);
                        abandon_message(ak, s, n);
                        continue;
                    }
                    let c = ak.sent.get_mut(&tsn).unwrap();
                    let hdr: u32 = if interleave { 20 } else { 16 };
                    let clen = hdr + (c.data.len() as u32).div_ceil(4) * 4;
                    if clen > budget {
                        break;
                    }
                    budget -= clen;
                    c.marked_rtx = false;
                    c.missing = 0;
                    c.txcount += 1;
                    c.sent_at = now;
                    // The chunk left the flight when it was marked; it
                    // re-enters on the retransmission path.
                    let len = c.data.len() as u64;
                    c.path = path;
                    ak.rtx_queue.remove(&tsn);
                    ak.stats.retransmits += 1;
                    if cfg.cmt {
                        cmt_note_assign(ak, path, tsn);
                    }
                    let data = ak.sent.get(&tsn).unwrap();
                    packet.push(data_chunk_for(interleave, tsn, data));
                    ak.paths[path as usize].flight += len;
                    ak.rtt_probe = None; // Karn
                }
            } else if !ak.q_is_empty() {
                // Phase 2: new data. Normally on the primary path; with CMT
                // enabled, pick the active path with the most free cwnd,
                // striping the association's data across all networks.
                path = if cfg.cmt {
                    cmt_pick_path_burst(ak, &burst_on, cfg.max_burst)
                } else {
                    ak.primary
                };
                // Peek the scheduler's next fragment before borrowing the
                // path (`q_front` needs `&mut` for the candidate scratch).
                let front_len = ak.q_front().map(|(_, pc)| pc.data.len() as u64).unwrap_or(0);
                let p = &ak.paths[path as usize];
                let cwnd_ok = p.flight < p.cwnd; // the 1-byte rule
                // RFC 4960 §6.1.A: regardless of rwnd, one DATA chunk may
                // always be in flight — the probe that recovers from a
                // window-update SACK lost in transit.
                let probe_ok = ak.outstanding_bytes == 0;
                let rwnd_ok = ak.peer_rwnd >= front_len;
                if std::env::var("SCTP_TS_TRACE").is_ok() && a.host == 0 && a.idx == 2 {
                    eprintln!(
                        "[{}] try_send h0a2 pend={} out={} flight={} cwnd={} rwnd={} burst={} -> send={}",
                        ctx.now(), ak.pending.len(), ak.outstanding_bytes,
                        p.flight, p.cwnd, ak.peer_rwnd, burst,
                        cwnd_ok && (rwnd_ok || probe_ok)
                    );
                }
                if !cwnd_ok || !(rwnd_ok || probe_ok) {
                    return;
                }
                if want_sack {
                    budget -= make_sack_placeholder_len(ak);
                    let sack = make_sack(ctx, ak, pool, cfg.rcvbuf, cfg.max_gap_blocks);
                    packet.push(sack);
                }
                let now = ctx.now();
                let interleave = ak.interleaving();
                let mut sent_any_probe = false;
                loop {
                    let (qsid, len, clen) = {
                        let Some((qsid, front)) = ak.q_front() else { break };
                        let hdr: u32 = if interleave { 20 } else { 16 };
                        (qsid, front.data.len() as u64, hdr + (front.data.len() as u32).div_ceil(4) * 4)
                    };
                    if clen > budget {
                        break;
                    }
                    if ak.peer_rwnd < len && (ak.outstanding_bytes != 0 || sent_any_probe) {
                        break;
                    }
                    let pc = ak.q_pop(qsid).unwrap();
                    // Flight recorder, sender side: this stream got its
                    // turn on the wire — close any open sender-HOL episode
                    // (message-granular: begin fragments only).
                    if pc.begin {
                        if let Some(t) = ctx.tracer() {
                            t.hol_update(
                                now.as_nanos(),
                                a.host,
                                ak.peer_host,
                                pc.stream,
                                trace::HolSide::Snd,
                                false,
                                0,
                            );
                        }
                    }
                    let tsn = ak.next_tsn;
                    ak.next_tsn += 1;
                    budget -= clen;
                    ak.pending_bytes -= len;
                    ak.outstanding_bytes += len;
                    ak.peer_rwnd = ak.peer_rwnd.saturating_sub(len);
                    ak.paths[path as usize].flight += len;
                    if ak.peer_rwnd == 0 {
                        sent_any_probe = true;
                    }
                    if ak.rtt_probe.is_none() {
                        ak.rtt_probe = Some(tsn);
                    }
                    ak.stats.data_chunks_out += 1;
                    ak.stats.bytes_out += len;
                    packet.push(if interleave {
                        Chunk::IData(IDataChunk {
                            tsn,
                            stream: pc.stream,
                            mid: pc.ssn as u64,
                            fsn: pc.fsn,
                            begin: pc.begin,
                            end: pc.end,
                            unordered: pc.unordered,
                            ppid: pc.ppid,
                            data: pc.data.clone(),
                        })
                    } else {
                        Chunk::Data(DataChunk {
                            tsn,
                            stream: pc.stream,
                            ssn: pc.ssn,
                            begin: pc.begin,
                            end: pc.end,
                            unordered: pc.unordered,
                            ppid: pc.ppid,
                            data: pc.data.clone(),
                        })
                    });
                    ak.sent.insert(
                        tsn,
                        SentChunk {
                            stream: pc.stream,
                            ssn: pc.ssn,
                            begin: pc.begin,
                            end: pc.end,
                            unordered: pc.unordered,
                            ppid: pc.ppid,
                            data: pc.data,
                            path,
                            sent_at: now,
                            txcount: 1,
                            missing: 0,
                            acked: false,
                            marked_rtx: false,
                            fsn: pc.fsn,
                            expires: pc.expires,
                            abandoned: false,
                        },
                    );
                    if cfg.cmt {
                        cmt_note_assign(ak, path, tsn);
                    }
                    // Stop bundling if cwnd exhausted (1-byte rule applies
                    // per packet, not per chunk beyond the first).
                    if ak.paths[path as usize].flight >= ak.paths[path as usize].cwnd {
                        break;
                    }
                }
            } else {
                return;
            }
            if packet.iter().all(|c| !matches!(c, Chunk::Data(_) | Chunk::IData(_))) {
                // Nothing fit; don't emit a data-less packet from here.
                if !packet.is_empty() {
                    // We consumed the SACK state; send it standalone.
                } else {
                    return;
                }
            }
        }
        let has_data = packet.iter().any(|c| matches!(c, Chunk::Data(_) | Chunk::IData(_)));
        if packet.is_empty() {
            w.pool.put_chunk_vec(packet);
            return;
        }
        if crc {
            // CRC cost model delays each packet individually; no fusion.
            send_packet(w, ctx, a, path, vtag, packet);
        } else {
            if !train.is_empty() && *train_path != path {
                let flush = std::mem::replace(train, w.pool.take_packet_vec());
                ip::send_train(w, ctx, flush);
            }
            let pkt = build_packet(w, ctx, a, path, vtag, packet);
            *train_path = path;
            train.push(pkt);
        }
        burst += 1;
        burst_on[(path as usize).min(MAX_PATHS - 1)] += 1;
        if has_data {
            if cfg.cmt {
                if !assoc_ref(w, a).paths[path as usize].t3_armed {
                    arm_t3_cmt(w, ctx, a, path, true);
                }
            } else if !assoc_ref(w, a).t3_armed {
                arm_t3(w, ctx, a);
            }
        }
        // A SACK-only packet can happen when the pending SACK's budget
        // reservation leaves no room for a full-size DATA chunk: flush the
        // SACK and loop — the next packet carries the data. Returning here
        // would strand the pending queue with nothing left to re-trigger
        // this function.
        if !has_data {
            continue;
        }
    }
}

fn make_sack_placeholder_len(ak: &Assoc) -> u32 {
    16 + 4 * ak.rcv_have.num_ranges() as u32
}

/// Rebuild the wire chunk for a sent fragment: I-DATA when interleaving was
/// negotiated, classic DATA otherwise (the `Bytes` clone is a refcount
/// bump, not a copy).
fn data_chunk_for(interleave: bool, tsn: u64, c: &SentChunk) -> Chunk {
    if interleave {
        Chunk::IData(IDataChunk {
            tsn,
            stream: c.stream,
            mid: c.ssn as u64,
            fsn: c.fsn,
            begin: c.begin,
            end: c.end,
            unordered: c.unordered,
            ppid: c.ppid,
            data: c.data.clone(),
        })
    } else {
        Chunk::Data(DataChunk {
            tsn,
            stream: c.stream,
            ssn: c.ssn,
            begin: c.begin,
            end: c.end,
            unordered: c.unordered,
            ppid: c.ppid,
            data: c.data.clone(),
        })
    }
}

/// PR-SCTP: abandon every fragment of message `(stream, ssn)`. Sent chunks
/// become `acked && abandoned` — acked so the flight/rtx-queue/floor
/// invariants hold without a special case anywhere in SACK processing,
/// abandoned so `adv_peer_ack` knows to put them in a FORWARD-TSN's skip
/// list.
///
/// Queued (never-sent) fragments leave the send queue but are *assigned
/// TSNs* and recorded as `acked && abandoned` phantoms (RFC 3758 §3.5 C2:
/// unsent fragments of an abandoned message still consume sequence space).
/// The message's SSN was consumed at `sendmsg` time — without a TSN the
/// FORWARD-TSN machinery could never tell the peer to skip that SSN, and
/// the peer's ordered-delivery gate would wait on it forever.
fn abandon_message(ak: &mut Assoc, stream: u16, ssn: u32) {
    let Assoc {
        sent,
        rtx_queue,
        paths,
        outstanding_bytes,
        pending,
        out_q,
        pending_bytes,
        per_stream_q,
        next_tsn,
        stats,
        ..
    } = ak;
    for (tsn, c) in sent.iter_mut() {
        if c.stream != stream || c.ssn != ssn || c.abandoned {
            continue;
        }
        if !c.acked {
            let len = c.data.len() as u64;
            *outstanding_bytes = outstanding_bytes.saturating_sub(len);
            if c.marked_rtx {
                rtx_queue.remove(tsn);
            } else {
                paths[c.path as usize].flight = paths[c.path as usize].flight.saturating_sub(len);
            }
            c.acked = true;
            c.marked_rtx = false;
        }
        c.abandoned = true;
    }
    let mut dropped = 0u64;
    let mut phantom = |pc: &PendingChunk| {
        dropped += pc.data.len() as u64;
        let tsn = *next_tsn;
        *next_tsn += 1;
        sent.insert(
            tsn,
            SentChunk {
                stream: pc.stream,
                ssn: pc.ssn,
                begin: pc.begin,
                end: pc.end,
                unordered: pc.unordered,
                ppid: pc.ppid,
                data: bytes::Bytes::new(), // never transmitted
                path: 0,
                sent_at: simcore::SimTime::ZERO,
                txcount: 0,
                missing: 0,
                acked: true,
                marked_rtx: false,
                fsn: pc.fsn,
                expires: pc.expires,
                abandoned: true,
            },
        );
    };
    if *per_stream_q {
        if let Some(q) = out_q.get_mut(stream as usize) {
            q.retain(|pc| {
                if pc.ssn == ssn {
                    phantom(pc);
                    false
                } else {
                    true
                }
            });
        }
    } else {
        pending.retain(|pc| {
            if pc.stream == stream && pc.ssn == ssn {
                phantom(pc);
                false
            } else {
                true
            }
        });
    }
    drop(phantom);
    *pending_bytes = pending_bytes.saturating_sub(dropped);
    stats.msgs_abandoned += 1;
}

/// PR-SCTP: abandon queued messages whose lifetime lapsed before their
/// first transmission. Lazy and front-of-queue only — O(streams) per send
/// opportunity; a fragment buried deeper gets the same check when it
/// reaches the front (or, once sent, at retransmission time).
fn reap_expired(ak: &mut Assoc, now: simcore::SimTime) {
    if !ak.pr_active() {
        return;
    }
    if ak.per_stream_q {
        for sid in 0..ak.out_q.len() {
            while let Some((s, n)) = ak.out_q[sid]
                .front()
                .filter(|pc| pc.expires.is_some_and(|e| now > e))
                .map(|pc| (pc.stream, pc.ssn))
            {
                abandon_message(ak, s, n);
            }
        }
    } else {
        while let Some((s, n)) = ak
            .pending
            .front()
            .filter(|pc| pc.expires.is_some_and(|e| now > e))
            .map(|pc| (pc.stream, pc.ssn))
        {
            abandon_message(ak, s, n);
        }
    }
}

/// Emit a FORWARD-TSN when the Advanced.Peer.Ack.Point (RFC 3758 §3.5)
/// moved past the last one sent. With nothing else outstanding the T3
/// timer is armed to guard the chunk itself — its loss leaves no data in
/// flight to clock a resend (see the retry branch in `on_t3`). Under CMT
/// the per-path timers don't take over that duty — a documented
/// limitation; the PR-SCTP workloads run single-path.
fn maybe_send_forward_tsn(w: &mut World, ctx: &mut Wx, a: AssocId) {
    let cfg = cfg_of(w, a.host);
    let (chunk, vtag, path) = {
        let ak = assoc_mut(w, a);
        if !ak.pr_active()
            || !matches!(
                ak.state,
                AssocState::Established | AssocState::ShutdownPending | AssocState::ShutdownReceived
            )
        {
            return;
        }
        let Some((point, skips)) = ak.adv_peer_ack() else { return };
        if point <= ak.fwd_sent {
            return;
        }
        ak.fwd_sent = point;
        ak.stats.fwd_tsn_out += 1;
        (Chunk::ForwardTsn { new_cum: point, skips }, ak.peer_tag, ak.primary)
    };
    send_packet(w, ctx, a, path, vtag, vec![chunk]);
    if !cfg.cmt {
        let need_arm = {
            let ak = assoc_ref(w, a);
            ak.outstanding_bytes == 0 && !ak.t3_armed
        };
        if need_arm {
            arm_t3(w, ctx, a);
        }
    }
}

// ---------------------------------------------------------------------------
// Timers
// ---------------------------------------------------------------------------

/// Path of the earliest unacked chunk. Advances `unacked_floor` past the
/// acked prefix while looking, so repeated calls skip already-scanned TSNs:
/// `acked` never reverts, which keeps the cursor monotone and the total
/// scan work across an association's lifetime linear in chunks sent.
fn earliest_outstanding_path(ak: &mut Assoc) -> u8 {
    let hit = ak.sent.range(ak.unacked_floor..).find(|(_, c)| !c.acked);
    match hit {
        Some((&tsn, c)) => {
            ak.unacked_floor = tsn;
            c.path
        }
        None => {
            ak.unacked_floor = ak.next_tsn;
            ak.primary
        }
    }
}

fn arm_t3(w: &mut World, ctx: &mut Wx, a: AssocId) {
    let ak = assoc_mut(w, a);
    ak.t3_gen += 1;
    ak.t3_armed = true;
    let gen = ak.t3_gen;
    let old = ak.t3_timer.take();
    let path = earliest_outstanding_path(ak);
    let d = ak.paths[path as usize].rto.current();
    if ctx.tracing() {
        let rto = &ak.paths[path as usize].rto;
        ctx.trace_emit(trace::Event::RtoArm(trace::RtoArmEv {
            proto: trace::Proto8::Sctp,
            host: a.host,
            peer: ak.peer_host,
            path,
            rto_ns: d.as_nanos(),
            srtt_ns: rto.srtt().map_or(-1, |x| x.as_nanos() as i64),
            rttvar_ns: rto.rttvar().as_nanos() as i64,
        }));
    }
    let id = ctx.reschedule_in(old, d, move |w: &mut World, ctx: &mut Wx| on_t3(w, ctx, a, gen));
    assoc_mut(w, a).t3_timer = Some(id);
}

fn on_t3(w: &mut World, ctx: &mut Wx, a: AssocId, gen: u64) {
    let cfg = cfg_of(w, a.host);
    // PR-SCTP: nothing outstanding but an unconfirmed FORWARD-TSN — its
    // loss leaves no data in flight to clock a resend, so the timer is the
    // only recovery. Reset the dedup point and re-emit (`try_send` arms a
    // fresh T3 via `maybe_send_forward_tsn`). No cwnd or error penalty:
    // the path carried no data to lose.
    {
        let ak = assoc_mut(w, a);
        if ak.t3_gen != gen || !ak.t3_armed {
            return;
        }
        if ak.outstanding_bytes == 0
            && ak.pr_active()
            && ak.adv_peer_ack().is_some_and(|(p, _)| p > ak.peer_cum)
        {
            ak.t3_armed = false;
            ak.fwd_sent = 0;
        } else if ak.outstanding_bytes == 0 {
            ak.t3_armed = false;
            return;
        }
    }
    if !assoc_ref(w, a).t3_armed {
        try_send(w, ctx, a);
        return;
    }
    let mut failed = false;
    {
        let ak = assoc_mut(w, a);
        if ak.outstanding_bytes == 0 {
            ak.t3_armed = false;
            return;
        }
        if std::env::var("SCTP_TRACE").is_ok() {
            let first = ak
                .sent
                .range(ak.unacked_floor..)
                .find(|(_, c)| !c.acked)
                .map(|(&t, c)| (t, c.data.len()));
            eprintln!("[{}] T3 h{} assoc({},{}) errors={} outstanding={} pending={} first_unacked={:?} rwnd={}",
                ctx.now(), a.host, a.ep, a.idx, ak.assoc_errors, ak.outstanding_bytes, ak.pending.len(), first, ak.peer_rwnd);
        }
        ak.stats.timeouts += 1;
        ak.assoc_errors += 1;
        let p = earliest_outstanding_path(ak);
        let path = &mut ak.paths[p as usize];
        path.rto.backoff();
        path.error_count = (path.error_count + 1).min(cfg.path_max_retrans + 1);
        path.ssthresh = (path.cwnd / 2).max(4 * cfg.pmtu as u64);
        path.cwnd = cfg.pmtu as u64;
        path.partial_bytes_acked = 0;
        if path.error_count > cfg.path_max_retrans && path.active {
            path.active = false;
            if ak.primary == p {
                // Failover: move the primary to an active alternate.
                if let Some((np, _)) =
                    ak.paths.iter().enumerate().find(|(i, ps)| *i as u8 != p && ps.active)
                {
                    ak.primary = np as u8;
                    ak.stats.failovers += 1;
                    if ak.stats.first_failover_ns == 0 {
                        ak.stats.first_failover_ns = ctx.now().as_nanos();
                    }
                }
            }
        }
        if ak.assoc_errors > cfg.assoc_max_retrans {
            failed = true;
        } else {
            // Mark everything outstanding for retransmission; marked
            // chunks leave the flight so the cwnd=1·PMTU restart can
            // actually retransmit them.
            // Everything below the floor is already acked, so the walk
            // starts at the cursor instead of the window's base.
            // (CMT associations never reach here — their timers are per
            // destination, see `on_t3_cmt`.)
            let floor = ak.unacked_floor;
            let mut marked = 0u32;
            for (&tsn, c) in ak.sent.range_mut(floor..) {
                if !c.acked && !c.marked_rtx {
                    ak.paths[c.path as usize].flight = ak.paths[c.path as usize]
                        .flight
                        .saturating_sub(c.data.len() as u64);
                }
                if !c.acked {
                    c.marked_rtx = true;
                    c.missing = 0;
                    ak.rtx_queue.insert(tsn);
                    marked += 1;
                }
            }
            ak.in_fast_recovery = false;
            ak.rtt_probe = None;
            if ctx.tracing() {
                ctx.trace_emit(trace::Event::RtoFire(trace::RtoFireEv {
                    proto: trace::Proto8::Sctp,
                    host: a.host,
                    peer: ak.peer_host,
                    path: p,
                    backoff: ak.paths[p as usize].rto.backoff_shift(),
                    marked,
                }));
                trace_cwnd(ctx, a.host, ak.peer_host, p, &ak.paths[p as usize]);
            }
        }
    }
    if failed {
        fail_assoc(w, ctx, a);
        return;
    }
    check_flight(assoc_ref(w, a), "on_t3", ctx.now());
    try_send(w, ctx, a); // retransmits the first PMTU immediately (cwnd = 1 PMTU)
    arm_t3(w, ctx, a);
}

/// Floor on the CMT rescue-probe deadline: keeps micro-RTT jitter from
/// re-arming the probe every few microseconds.
const RESCUE_PTO_FLOOR: simcore::Dur = simcore::Dur::from_micros(200);

/// CMT: arm the T3-rtx timer guarding destination `p`. Retransmission
/// timers are per destination under CMT — a timeout is a *path* event, and
/// concurrent losses on different paths must recover in parallel instead of
/// serialising behind one association-wide timer's exponential backoff.
///
/// A `fresh` arm (new data sent, or the path's pseudo-cumack advanced)
/// schedules a *rescue probe* at ~2·SRTT rather than the full RTO: a
/// ping-pong tail loss has no later same-path traffic to generate SFR
/// strikes, so without the probe it can only wait out RTO.min (a full
/// second on a 40 µs LAN). `fresh = false` rearms preserve the current
/// phase — after a probe fires, the next deadline is the real RTO.
fn arm_t3_cmt(w: &mut World, ctx: &mut Wx, a: AssocId, p: u8, fresh: bool) {
    let (gen, old, d) = {
        let ak = assoc_mut(w, a);
        // A path that has not produced an RTT sample yet (first chunks of
        // slow start) borrows the smallest sibling estimate, the way MPTCP
        // subflows share one smoothed RTT: a loss there would otherwise sit
        // out the full 3 s initial RTO while the reordering window fills
        // rwnd and stalls every other path behind it.
        let borrowed = ak
            .paths
            .iter()
            .filter_map(|q| q.rto.srtt().map(|s| (s, q.rto.rttvar())))
            .min_by_key(|(s, _)| s.as_nanos());
        let ps = &mut ak.paths[p as usize];
        ps.t3_gen += 1;
        ps.t3_armed = true;
        if fresh {
            ps.t3_rescue = true;
        }
        let rto = ps.rto.current();
        let own = ps.rto.srtt().map(|s| (s, ps.rto.rttvar()));
        let d = match (ps.t3_rescue, own.or(borrowed)) {
            (true, Some((srtt, rttvar))) => {
                ((srtt * 2 + rttvar * 4).max(RESCUE_PTO_FLOOR)).min(rto)
            }
            _ => rto,
        };
        (ps.t3_gen, ps.t3_timer.take(), d)
    };
    if ctx.tracing() {
        let ak = assoc_ref(w, a);
        let rto = &ak.paths[p as usize].rto;
        ctx.trace_emit(trace::Event::RtoArm(trace::RtoArmEv {
            proto: trace::Proto8::Sctp,
            host: a.host,
            peer: ak.peer_host,
            path: p,
            rto_ns: d.as_nanos(),
            srtt_ns: rto.srtt().map_or(-1, |x| x.as_nanos() as i64),
            rttvar_ns: rto.rttvar().as_nanos() as i64,
        }));
    }
    let id =
        ctx.reschedule_in(old, d, move |w: &mut World, ctx: &mut Wx| on_t3_cmt(w, ctx, a, p, gen));
    assoc_mut(w, a).paths[p as usize].t3_timer = Some(id);
}

/// CMT per-path T3 expiry: penalise and re-mark only `p`'s stripe. The
/// other destinations' flights are healthy — yanking them (as the
/// association-wide timeout does) would collapse the whole aggregate on
/// every single-path incident, and serialising their recovery behind this
/// path's backed-off timer is exactly the failure mode per-path timers
/// exist to avoid.
fn on_t3_cmt(w: &mut World, ctx: &mut Wx, a: AssocId, p: u8, gen: u64) {
    let cfg = cfg_of(w, a.host);
    let mut failed = false;
    {
        let ak = assoc_mut(w, a);
        if ak.paths[p as usize].t3_gen != gen || !ak.paths[p as usize].t3_armed {
            return;
        }
        // Lazily disarm when the stripe drained: chunks leave a path by
        // being re-striped elsewhere, which no SACK tells this timer about.
        let earliest = cmt_earliest_on(ak, p as usize);
        ak.paths[p as usize].pseudo_cumack = earliest.unwrap_or(u64::MAX);
        if earliest.is_none() {
            ak.paths[p as usize].t3_armed = false;
            return;
        }
        if ak.paths[p as usize].t3_rescue {
            // Rescue probe: re-queue this path's aged chunks for
            // retransmission with NO cwnd collapse, backoff, or error
            // counting — the path is presumed healthy and the loss random.
            // Chunks already transmitted twice are left to the real RTO so
            // a dead receiver can't turn the probe into a 2·SRTT resend
            // storm.
            // Like TCP's tail-loss probe, exactly ONE segment is probed —
            // the path's lowest outstanding TSN. If its retransmission is
            // SACKed, the pseudo-cumack advances and re-arms a fresh probe
            // for the next hole; marking the whole aged flight here instead
            // turns one stall into a duplicate-retransmission burst that
            // overflows bottleneck queues.
            let now = ctx.now();
            let srtt = ak.paths[p as usize].rto.srtt().unwrap_or(simcore::Dur::ZERO);
            let floor = ak.paths[p as usize].cumack_floor;
            let mut marked = 0u64;
            for (&tsn, c) in ak.sent.range_mut(floor..) {
                if c.path != p || c.acked || c.marked_rtx || c.txcount > 2 {
                    continue;
                }
                if now.since(c.sent_at).as_nanos() <= srtt.as_nanos() {
                    break;
                }
                ak.paths[p as usize].flight =
                    ak.paths[p as usize].flight.saturating_sub(c.data.len() as u64);
                c.marked_rtx = true;
                c.missing = 0;
                ak.rtx_queue.insert(tsn);
                marked += 1;
                break;
            }
            ak.stats.rescue_rtx += marked;
            // Probe spent (even if nothing qualified): the next deadline on
            // this path is the real RTO. A SACK that advances the
            // pseudo-cumack re-arms fresh and re-enables the probe.
            ak.paths[p as usize].t3_rescue = false;
        } else {
            rto_expire_cmt(ak, ctx, a, p, &cfg, &mut failed);
        }
    }
    if failed {
        fail_assoc(w, ctx, a);
        return;
    }
    check_flight(assoc_ref(w, a), "on_t3_cmt", ctx.now());
    try_send(w, ctx, a); // retransmits the first PMTU immediately (cwnd = 1 PMTU)
    arm_t3_cmt(w, ctx, a, p, false);
}

/// The full-RTO half of [`on_t3_cmt`]: penalise path `p` and re-mark its
/// stripe (the probe half, by contrast, touches neither cwnd nor RTO).
fn rto_expire_cmt(ak: &mut Assoc, ctx: &mut Wx, a: AssocId, p: u8, cfg: &SctpCfg, failed: &mut bool) {
    {
        if std::env::var("SCTP_TRACE").is_ok() {
            eprintln!(
                "[{}] T3-CMT h{} assoc({},{}) path={} errors={} outstanding={} pending={} first_unacked={:?} rwnd={}",
                ctx.now(), a.host, a.ep, a.idx, p, ak.assoc_errors, ak.outstanding_bytes,
                ak.pending.len(), ak.paths[p as usize].pseudo_cumack, ak.peer_rwnd
            );
        }
        ak.stats.timeouts += 1;
        ak.assoc_errors += 1;
        let path = &mut ak.paths[p as usize];
        path.rto.backoff();
        path.error_count = (path.error_count + 1).min(cfg.path_max_retrans + 1);
        path.ssthresh = (path.cwnd / 2).max(4 * cfg.pmtu as u64);
        path.cwnd = cfg.pmtu as u64;
        path.partial_bytes_acked = 0;
        path.in_fast_recovery = false;
        if path.error_count > cfg.path_max_retrans && path.active {
            path.active = false;
            if ak.primary == p {
                // Failover: move the primary to an active alternate.
                if let Some((np, _)) =
                    ak.paths.iter().enumerate().find(|(i, ps)| *i as u8 != p && ps.active)
                {
                    ak.primary = np as u8;
                    ak.stats.failovers += 1;
                    if ak.stats.first_failover_ns == 0 {
                        ak.stats.first_failover_ns = ctx.now().as_nanos();
                    }
                }
            }
        }
        if ak.assoc_errors > cfg.assoc_max_retrans {
            *failed = true;
        } else {
            // Mark only this path's stripe; the walk starts at the path's
            // own rescan floor (everything below it is acked).
            let floor = ak.paths[p as usize].cumack_floor;
            let mut marked = 0u32;
            for (&tsn, c) in ak.sent.range_mut(floor..) {
                if c.path != p || c.acked {
                    continue;
                }
                if !c.marked_rtx {
                    ak.paths[p as usize].flight =
                        ak.paths[p as usize].flight.saturating_sub(c.data.len() as u64);
                }
                c.marked_rtx = true;
                c.missing = 0;
                ak.rtx_queue.insert(tsn);
                marked += 1;
            }
            ak.rtt_probe = None;
            if ctx.tracing() {
                ctx.trace_emit(trace::Event::RtoFire(trace::RtoFireEv {
                    proto: trace::Proto8::Sctp,
                    host: a.host,
                    peer: ak.peer_host,
                    path: p,
                    backoff: ak.paths[p as usize].rto.backoff_shift(),
                    marked,
                }));
                trace_cwnd(ctx, a.host, ak.peer_host, p, &ak.paths[p as usize]);
            }
        }
    }
}

fn arm_sack_timer(w: &mut World, ctx: &mut Wx, a: AssocId) {
    let cfg = cfg_of(w, a.host);
    let ak = assoc_mut(w, a);
    if ak.sack_armed {
        return;
    }
    ak.sack_gen += 1;
    ak.sack_armed = true;
    let gen = ak.sack_gen;
    let old = ak.sack_timer.take();
    let id = ctx.reschedule_in(old, cfg.sack_delay, move |w: &mut World, ctx: &mut Wx| {
        let ak = assoc_mut(w, a);
        if ak.sack_gen != gen || !ak.sack_armed {
            return;
        }
        ak.sack_armed = false;
        if ak.sack_pending_pkts > 0 {
            send_sack_now(w, ctx, a);
        }
    });
    assoc_mut(w, a).sack_timer = Some(id);
}

fn arm_heartbeat(w: &mut World, ctx: &mut Wx, a: AssocId, path: u8) {
    let cfg = cfg_of(w, a.host);
    let Some(interval) = cfg.heartbeat_interval else { return };
    let ak = assoc_mut(w, a);
    let ps = &mut ak.paths[path as usize];
    ps.hb_gen += 1;
    let gen = ps.hb_gen;
    ctx.schedule_in(interval, move |w: &mut World, ctx: &mut Wx| on_heartbeat(w, ctx, a, path, gen));
}

fn on_heartbeat(w: &mut World, ctx: &mut Wx, a: AssocId, path: u8, gen: u64) {
    let cfg = cfg_of(w, a.host);
    let nonce: u64 = draw_nonce(ctx, &cfg);
    let send;
    let vtag;
    {
        let ak = assoc_mut(w, a);
        if ak.paths[path as usize].hb_gen != gen {
            return;
        }
        if !matches!(ak.state, AssocState::Established) {
            return;
        }
        let primary = ak.primary;
        {
            let ps = &mut ak.paths[path as usize];
            // Previous heartbeat unanswered → path error.
            if ps.hb_nonce.is_some() {
                ps.error_count = (ps.error_count + 1).min(cfg.path_max_retrans + 1);
                if ps.error_count > cfg.path_max_retrans && ps.active {
                    ps.active = false;
                }
            }
            ps.hb_nonce = Some(nonce);
            send = true;
            vtag = ak.peer_tag;
        }
        if !ak.paths[primary as usize].active {
            if let Some((np, _)) = ak.paths.iter().enumerate().find(|(_, ps)| ps.active) {
                if ak.primary != np as u8 {
                    ak.primary = np as u8;
                    ak.stats.failovers += 1;
                    if ak.stats.first_failover_ns == 0 {
                        ak.stats.first_failover_ns = ctx.now().as_nanos();
                    }
                }
            }
        }
    }
    if send {
        send_packet(w, ctx, a, path, vtag, vec![Chunk::Heartbeat { path, nonce }]);
    }
    arm_heartbeat(w, ctx, a, path);
}

fn arm_autoclose(w: &mut World, ctx: &mut Wx, a: AssocId) {
    let cfg = cfg_of(w, a.host);
    let Some(d) = cfg.autoclose else { return };
    let ak = assoc_mut(w, a);
    ak.autoclose_gen += 1;
    let gen = ak.autoclose_gen;
    ctx.schedule_in(d, move |w: &mut World, ctx: &mut Wx| {
        let cfg = cfg_of(w, a.host);
        let d = cfg.autoclose.unwrap();
        let (expired, rearm) = {
            let ak = assoc_mut(w, a);
            if ak.autoclose_gen != gen || ak.state != AssocState::Established {
                return;
            }
            let idle = ctx.now().since(ak.last_traffic);
            (idle >= d && ak.outstanding_bytes == 0 && ak.q_is_empty(), idle < d)
        };
        if expired {
            shutdown(w, ctx, a);
        } else {
            let _ = rearm;
            arm_autoclose(w, ctx, a);
        }
    });
}

// ---------------------------------------------------------------------------
// Handshake
// ---------------------------------------------------------------------------

fn send_init(w: &mut World, ctx: &mut Wx, a: AssocId) {
    let cfg = cfg_of(w, a.host);
    let (chunk, path) = {
        let ak = assoc_mut(w, a);
        (
            Chunk::Init {
                init_tag: ak.local_tag,
                a_rwnd: cfg.rcvbuf,
                out_streams: cfg.out_streams,
                in_streams: cfg.out_streams,
                init_tsn: 1,
                ext_flags: cfg.ext_offer(),
            },
            ak.primary,
        )
    };
    {
        let ak = assoc_mut(w, a);
        ak.hs_sent_at = if ak.init_retries == 0 { Some(ctx.now()) } else { None };
    }
    // INIT goes out with vtag 0.
    send_packet(w, ctx, a, path, 0, vec![chunk]);
    arm_init_timer(w, ctx, a);
}

fn send_cookie_echo(w: &mut World, ctx: &mut Wx, a: AssocId) {
    let (cookie, vtag, path) = {
        let ak = assoc_mut(w, a);
        ak.hs_sent_at = if ak.init_retries == 0 { Some(ctx.now()) } else { None };
        (ak.cookie.expect("cookie present in CookieEchoed"), ak.peer_tag, ak.primary)
    };
    send_packet(w, ctx, a, path, vtag, vec![Chunk::CookieEcho { cookie }]);
    arm_init_timer(w, ctx, a);
}

fn arm_init_timer(w: &mut World, ctx: &mut Wx, a: AssocId) {
    let ak = assoc_mut(w, a);
    ak.init_gen += 1;
    let gen = ak.init_gen;
    let d = ak.paths[ak.primary as usize].rto.current();
    ctx.schedule_in(d, move |w: &mut World, ctx: &mut Wx| {
        let cfg = cfg_of(w, a.host);
        let state = {
            let ak = assoc_mut(w, a);
            if ak.init_gen != gen {
                return;
            }
            if !matches!(ak.state, AssocState::CookieWait | AssocState::CookieEchoed) {
                return;
            }
            ak.init_retries += 1;
            if ak.init_retries > cfg.max_init_retrans {
                AssocState::Aborted
            } else {
                let p = ak.primary;
                ak.paths[p as usize].rto.backoff();
                ak.state
            }
        };
        match state {
            AssocState::Aborted => fail_assoc(w, ctx, a),
            AssocState::CookieWait => send_init(w, ctx, a),
            AssocState::CookieEchoed => send_cookie_echo(w, ctx, a),
            _ => {}
        }
    });
}

/// A passive listener received an INIT: reply statelessly with a signed
/// cookie (no resources reserved — §3.5.2).
#[allow(clippy::too_many_arguments)]
fn handle_init(
    w: &mut World,
    ctx: &mut Wx,
    e: EpId,
    src: IfAddr,
    src_port: u16,
    init_tag: u64,
    a_rwnd: u64,
    out_streams: u16,
    init_tsn: u64,
    peer_ext: u8,
) {
    let cfg = cfg_of(w, e.host);
    let secret = host_secret(w, ctx, e.host);
    let port = ep_ref(w, e).port;
    let local_tag: u64 = draw_tag(ctx, &cfg);
    let cookie = Cookie {
        peer_host: src.host,
        peer_port: src_port,
        local_port: port,
        peer_tag: init_tag,
        local_tag,
        peer_rwnd: a_rwnd,
        peer_init_tsn: init_tsn,
        my_init_tsn: 1,
        out_streams,
        in_streams: cfg.out_streams,
        created_at: ctx.now(),
        // The negotiated set: what the peer offered AND we support. Rides
        // the cookie so the association created at COOKIE-ECHO time knows
        // it without extra listener state.
        ext_flags: peer_ext & cfg.ext_offer(),
        mac: 0,
    }
    .sign(secret);
    let reply = SctpPacket {
        src_port: port,
        dst_port: src_port,
        vtag: init_tag,
        chunks: vec![Chunk::InitAck {
            init_tag: local_tag,
            a_rwnd: cfg.rcvbuf,
            out_streams: cfg.out_streams,
            in_streams: out_streams,
            init_tsn: 1,
            ext_flags: cfg.ext_offer(),
            cookie,
        }],
    };
    // Stateless reply: addressed straight back to the INIT's source.
    let dst = src;
    let from = IfAddr::new(e.host, src.iface);
    ip::send(w, ctx, Packet { src: from, dst, body: Proto::Sctp(reply) });
}

fn handle_init_ack(
    w: &mut World,
    ctx: &mut Wx,
    a: AssocId,
    init_tag: u64,
    a_rwnd: u64,
    init_tsn: u64,
    peer_ext: u8,
    cookie: Cookie,
) {
    let cfg = cfg_of(w, a.host);
    {
        let ak = assoc_mut(w, a);
        if ak.state != AssocState::CookieWait {
            return; // duplicate INIT-ACK
        }
        // Extensions usable on this association: peer's offer ∩ ours.
        ak.ext_flags = peer_ext & cfg.ext_offer();
        // Handshake RTT sample (unretransmitted INITs only).
        if let Some(t0) = ak.hs_sent_at.take() {
            let now = ctx.now();
            let p = ak.primary as usize;
            ak.paths[p].rto.sample(now.since(t0));
        }
        ak.peer_tag = init_tag;
        ak.peer_rwnd = a_rwnd;
        ak.cum_tsn = init_tsn - 1;
        ak.rcv_have.clear();
        ak.cookie = Some(cookie);
        ak.state = AssocState::CookieEchoed;
        ak.init_retries = 0;
    }
    send_cookie_echo(w, ctx, a);
}

fn handle_cookie_echo(w: &mut World, ctx: &mut Wx, e: EpId, src: IfAddr, src_port: u16, cookie: Cookie) {
    let cfg = cfg_of(w, e.host);
    let secret = host_secret(w, ctx, e.host);
    // Verify the signature, then staleness.
    if !cookie.verify(secret) {
        ep_mut(w, e).bad_mac_drops += 1;
        return;
    }
    if ctx.now().since(cookie.created_at) > cfg.cookie_lifetime {
        ep_mut(w, e).stale_cookie_drops += 1;
        return;
    }
    // Duplicate COOKIE-ECHO for an existing association: re-ack.
    if let Some(a) = lookup_peer(w, e, src.host, src_port) {
        let (vtag, path) = {
            let ak = assoc_ref(w, a);
            (ak.peer_tag, ak.primary)
        };
        send_packet(w, ctx, a, path, vtag, vec![Chunk::CookieAck]);
        return;
    }
    // Create the association from cookie contents alone.
    let mut ak = Assoc::new(
        &cfg,
        cookie.local_port,
        src.host,
        src_port,
        cookie.local_tag,
        AssocState::Established,
        cookie.my_init_tsn,
    );
    ak.peer_tag = cookie.peer_tag;
    ak.peer_rwnd = cookie.peer_rwnd;
    ak.cum_tsn = cookie.peer_init_tsn - 1;
    ak.ext_flags = cookie.ext_flags;
    ak.last_traffic = ctx.now();
    let ep = ep_mut(w, e);
    let idx = ep.assocs.len() as u32;
    ep.assocs.push(ak);
    ep.by_peer.insert((src.host, src_port), idx);
    ctx.wake_all(&ep.readers);
    ep.readers.clear();
    let a = AssocId { host: e.host, ep: e.idx, idx };
    let (vtag, path) = {
        let ak = assoc_ref(w, a);
        (ak.peer_tag, ak.primary)
    };
    send_packet(w, ctx, a, path, vtag, vec![Chunk::CookieAck]);
    for p in 0..cfg.num_paths {
        arm_heartbeat(w, ctx, a, p);
    }
    arm_autoclose(w, ctx, a);
}

fn handle_cookie_ack(w: &mut World, ctx: &mut Wx, a: AssocId) {
    let cfg = cfg_of(w, a.host);
    {
        let ak = assoc_mut(w, a);
        if ak.state != AssocState::CookieEchoed {
            return;
        }
        ak.state = AssocState::Established;
        ak.init_gen += 1; // cancel init timer
        ak.init_retries = 0;
        // COOKIE-ECHO → COOKIE-ACK round trip as an RTT sample.
        if let Some(t0) = ak.hs_sent_at.take() {
            let now = ctx.now();
            let p = ak.primary as usize;
            ak.paths[p].rto.sample(now.since(t0));
        }
        ak.last_traffic = ctx.now();
    }
    // Wake connect() pollers and flush any data queued before establishment.
    let e = a.endpoint();
    let ep = ep_mut(w, e);
    ctx.wake_all(&ep.writers);
    ep.writers.clear();
    for p in 0..cfg.num_paths {
        arm_heartbeat(w, ctx, a, p);
    }
    arm_autoclose(w, ctx, a);
    try_send(w, ctx, a);
}

fn fail_assoc(w: &mut World, ctx: &mut Wx, a: AssocId) {
    assoc_mut(w, a).state = AssocState::Aborted;
    let e = a.endpoint();
    let ep = ep_mut(w, e);
    ctx.wake_all(&ep.readers);
    ctx.wake_all(&ep.writers);
    ep.readers.clear();
    ep.writers.clear();
}

// ---------------------------------------------------------------------------
// Input
// ---------------------------------------------------------------------------

/// Entry point from the IP layer.
pub fn input(w: &mut World, ctx: &mut Wx, src: IfAddr, dst: IfAddr, pkt: SctpPacket) {
    let host = dst.host;
    let Some(&ep_idx) = w.hosts[host as usize].sctp.by_port.get(&pkt.dst_port) else {
        return; // no socket on this port
    };
    let e = EpId { host, idx: ep_idx };
    let assoc = lookup_peer(w, e, src.host, pkt.src_port);

    // Association-setup chunks travel alone at the head of a packet and
    // are handled before verification-tag checks.
    match pkt.chunks.first() {
        Some(Chunk::Init { init_tag, a_rwnd, out_streams, init_tsn, ext_flags, .. }) => {
            if pkt.vtag == 0 && ep_ref(w, e).listening && assoc.is_none() {
                handle_init(
                    w, ctx, e, src, pkt.src_port, *init_tag, *a_rwnd, *out_streams, *init_tsn,
                    *ext_flags,
                );
            }
            return;
        }
        Some(Chunk::CookieEcho { cookie }) => {
            // Tag must match the one we placed in the cookie.
            if pkt.vtag == cookie.local_tag {
                handle_cookie_echo(w, ctx, e, src, pkt.src_port, *cookie);
            } else {
                ep_mut(w, e).bad_vtag_drops += 1;
            }
            return;
        }
        _ => {}
    }

    let Some(a) = assoc else { return };

    // Verification-tag check (§3.5.2: blocks blind injection and packets
    // from stale associations).
    {
        let ak = assoc_ref(w, a);
        let expect = ak.local_tag;
        if pkt.vtag != expect {
            ep_mut(w, e).bad_vtag_drops += 1;
            return;
        }
    }
    assoc_mut(w, a).stats.packets_in += 1;

    let mut saw_data = false;
    let mut chunks = pkt.chunks;
    for chunk in chunks.drain(..) {
        match chunk {
            Chunk::Init { .. } | Chunk::CookieEcho { .. } => {}
            Chunk::InitAck { init_tag, a_rwnd, init_tsn, ext_flags, cookie, .. } => {
                handle_init_ack(w, ctx, a, init_tag, a_rwnd, init_tsn, ext_flags, cookie);
            }
            Chunk::CookieAck => handle_cookie_ack(w, ctx, a),
            Chunk::Data(d) => {
                saw_data = true;
                handle_data(w, ctx, a, src, d);
            }
            Chunk::IData(d) => {
                saw_data = true;
                handle_idata(w, ctx, a, src, d);
            }
            Chunk::ForwardTsn { new_cum, skips } => {
                // Rides the SACK decision machinery: it moves the receive
                // window like data does.
                saw_data = true;
                handle_forward_tsn(w, ctx, a, new_cum, skips);
            }
            Chunk::Sack { cum_tsn, a_rwnd, gaps, .. } => {
                process_sack(w, ctx, a, cum_tsn, a_rwnd, &gaps);
                w.pool.put_gap_vec(gaps);
            }
            Chunk::Heartbeat { path, nonce } => {
                let (vtag, reply_path) = {
                    let ak = assoc_ref(w, a);
                    (ak.peer_tag, path.min(ak.paths.len() as u8 - 1))
                };
                send_packet(w, ctx, a, reply_path, vtag, vec![Chunk::HeartbeatAck { path, nonce }]);
            }
            Chunk::HeartbeatAck { path, nonce } => {
                let ak = assoc_mut(w, a);
                if let Some(ps) = ak.paths.get_mut(path as usize) {
                    if ps.hb_nonce == Some(nonce) {
                        ps.hb_nonce = None;
                        ps.error_count = 0;
                        ps.active = true;
                        ak.assoc_errors = 0;
                    }
                }
            }
            Chunk::Shutdown { cum_tsn } => {
                process_sack(w, ctx, a, cum_tsn, u64::MAX / 2, &[]);
                handle_shutdown(w, ctx, a);
            }
            Chunk::ShutdownAck => handle_shutdown_ack(w, ctx, a),
            Chunk::ShutdownComplete => {
                let ak = assoc_mut(w, a);
                if ak.state == AssocState::ShutdownAckSent {
                    ak.state = AssocState::Closed;
                    ak.shutdown_gen += 1; // cancel resend timer
                    wake_endpoint(w, ctx, a.endpoint());
                }
            }
            Chunk::Abort => fail_assoc(w, ctx, a),
        }
    }
    w.pool.put_chunk_vec(chunks);

    if saw_data {
        decide_sack(w, ctx, a);
    }
}

// ---------------------------------------------------------------------------
// Data receive path
// ---------------------------------------------------------------------------

fn handle_data(w: &mut World, ctx: &mut Wx, a: AssocId, _src: IfAddr, d: DataChunk) {
    let cfg = cfg_of(w, a.host);
    let mut delivered = w.pool.take_msg_vec();
    {
        let (ak, pool) = assoc_pool_mut(w, a);
        if !matches!(
            ak.state,
            AssocState::Established | AssocState::ShutdownPending | AssocState::ShutdownSent
        ) {
            pool.put_msg_vec(delivered);
            return;
        }
        ak.last_traffic = ctx.now();
        let len = d.data.len() as u64;
        if d.tsn <= ak.cum_tsn || ak.rcv_have.contains(d.tsn) {
            ak.stats.dup_tsns_in += 1;
            ak.dup_since_sack += 1;
            ak.sack_immediate = true;
            pool.put_msg_vec(delivered);
            return;
        }
        // A chunk that fills a gap below the highest TSN seen must be
        // accepted even when the buffer is nominally full: the space was
        // promised when the surrounding window was advertised, and dropping
        // it would wedge reassembly forever (the sender would retransmit
        // into the same full buffer until the association died).
        let fills_gap = ak.rcv_have.max_end().is_some_and(|e| d.tsn < e);
        // Accept a one-PMTU overrun: the §6.1.A probe chunk arrives when the
        // advertised window is (or looks) closed; dropping it would turn
        // every stale-window episode into an RTO ladder. KAME applies the
        // same slop.
        let cap = cfg.rcvbuf + cfg.pmtu as u64;
        if ak.rcvbuf_used + len > cap && !fills_gap {
            if std::env::var("SCTP_TRACE").is_ok() {
                eprintln!("[{}] RXFULL h{} assoc({},{}) tsn={} len={} used={} cum={}",
                    ctx.now(), a.host, a.ep, a.idx, d.tsn, len, ak.rcvbuf_used, ak.cum_tsn);
            }
            // No receive window: silently drop (the sender's rwnd tracking
            // or its probe logic will retry).
            ak.sack_immediate = true;
            pool.put_msg_vec(delivered);
            return;
        }
        ak.rcv_have.insert_point(d.tsn);
        // Advance the cumulative TSN over any now-contiguous prefix.
        let first_missing = ak.rcv_have.first_missing_from(ak.cum_tsn + 1);
        if first_missing > ak.cum_tsn + 1 {
            ak.cum_tsn = first_missing - 1;
            ak.rcv_have.remove_below(ak.cum_tsn + 1);
        }
        ak.rcvbuf_used += len;
        ak.stats.data_chunks_in += 1;
        ak.stats.bytes_in += len;

        let sid = d.stream;
        let aid = a;
        let peer = ak.peer_host;
        let st = ak.in_stream_mut(sid);
        st.frags.insert(d.tsn, d);
        // Assemble complete fragment runs; gate ordered messages on SSN.
        loop {
            let Some((ssn, ppid, unordered, data, mlen)) = try_assemble(st, pool) else { break };
            if unordered {
                delivered.push(RecvMsg { assoc: aid, stream: sid, ssn, ppid, data, len: mlen });
            } else if ssn == st.next_ssn {
                st.next_ssn += 1;
                delivered.push(RecvMsg { assoc: aid, stream: sid, ssn, ppid, data, len: mlen });
                // Drain any queued successors.
                while let Some((p2, d2, l2)) = st.ready.remove(&st.next_ssn) {
                    delivered.push(RecvMsg {
                        assoc: aid,
                        stream: sid,
                        ssn: st.next_ssn,
                        ppid: p2,
                        data: d2,
                        len: l2,
                    });
                    st.next_ssn += 1;
                }
            } else {
                st.ready.insert(ssn, (ppid, data, mlen));
            }
        }
        // Flight recorder: a stream is head-of-line blocked while complete
        // messages sit in `ready`, gated on an earlier SSN whose message is
        // still missing data. Fragments mid-reassembly (`frags`) alone are
        // ordinary transmission latency, not HOL — counting them would
        // charge every multi-chunk message as a block even at zero loss.
        // Edge detection lives in the tracer.
        if let Some(t) = ctx.tracer() {
            let blocked = !st.ready.is_empty();
            t.hol_update(
                ctx.now().as_nanos(),
                a.host,
                peer,
                sid,
                trace::HolSide::Rcv,
                blocked,
                delivered.len() as u32,
            );
        }
        ak.stats.msgs_delivered += delivered.len() as u64;
    }
    if !delivered.is_empty() {
        let e = a.endpoint();
        let ep = ep_mut(w, e);
        for m in delivered.drain(..) {
            ep.deliver_q.push_back(m);
        }
        ctx.wake_all(&ep.readers);
        ep.readers.clear();
    }
    w.pool.put_msg_vec(delivered);
}

/// RFC 8260 receive path: per-(stream, MID) reassembly. Fragments of
/// different messages interleave in TSN space, so each message's fragments
/// are keyed by FSN under their MID and reassemble independently — an
/// incomplete message never blocks a complete one from assembling (ordered
/// *delivery* is still gated on the MID sequence, which is the semantic
/// stream order, not a reassembly artifact).
fn handle_idata(w: &mut World, ctx: &mut Wx, a: AssocId, _src: IfAddr, d: IDataChunk) {
    let cfg = cfg_of(w, a.host);
    let mut delivered = w.pool.take_msg_vec();
    {
        let (ak, pool) = assoc_pool_mut(w, a);
        if !matches!(
            ak.state,
            AssocState::Established | AssocState::ShutdownPending | AssocState::ShutdownSent
        ) {
            pool.put_msg_vec(delivered);
            return;
        }
        ak.last_traffic = ctx.now();
        let len = d.data.len() as u64;
        // TSN-level duplicate / window checks: identical to DATA.
        if d.tsn <= ak.cum_tsn || ak.rcv_have.contains(d.tsn) {
            ak.stats.dup_tsns_in += 1;
            ak.dup_since_sack += 1;
            ak.sack_immediate = true;
            pool.put_msg_vec(delivered);
            return;
        }
        let fills_gap = ak.rcv_have.max_end().is_some_and(|e| d.tsn < e);
        let cap = cfg.rcvbuf + cfg.pmtu as u64;
        if ak.rcvbuf_used + len > cap && !fills_gap {
            ak.sack_immediate = true;
            pool.put_msg_vec(delivered);
            return;
        }
        ak.rcv_have.insert_point(d.tsn);
        let first_missing = ak.rcv_have.first_missing_from(ak.cum_tsn + 1);
        if first_missing > ak.cum_tsn + 1 {
            ak.cum_tsn = first_missing - 1;
            ak.rcv_have.remove_below(ak.cum_tsn + 1);
        }
        ak.rcvbuf_used += len;
        ak.stats.data_chunks_in += 1;
        ak.stats.bytes_in += len;

        let sid = d.stream;
        let mid = d.mid;
        let aid = a;
        let peer = ak.peer_host;
        let st = ak.in_stream_mut(sid);
        st.i_frags.entry(mid).or_default().insert(d.fsn, d);
        // Complete when FSNs 0..=last are all present and `last` carries
        // the E bit (distinct keys ≤ last with count last+1 ⇒ no holes).
        let complete = {
            let m = &st.i_frags[&mid];
            m.last_key_value().is_some_and(|(&last, c)| c.end && m.len() as u64 == last as u64 + 1)
                && m.contains_key(&0)
        };
        if complete {
            let m = st.i_frags.remove(&mid).unwrap();
            let mut data = pool.take_bytes_vec();
            let mut mlen = 0u32;
            let (mut ppid, mut unordered) = (0u32, false);
            for (_, c) in m {
                ppid = c.ppid;
                unordered = c.unordered;
                mlen += c.data.len() as u32;
                data.push(c.data);
            }
            // The MID doubles as the SSN: both count messages per stream,
            // so ordered delivery gates on the same counter.
            let ssn = mid as u32;
            if unordered {
                delivered.push(RecvMsg { assoc: aid, stream: sid, ssn, ppid, data, len: mlen });
            } else if ssn == st.next_ssn {
                st.next_ssn += 1;
                delivered.push(RecvMsg { assoc: aid, stream: sid, ssn, ppid, data, len: mlen });
                while let Some((p2, d2, l2)) = st.ready.remove(&st.next_ssn) {
                    delivered.push(RecvMsg {
                        assoc: aid,
                        stream: sid,
                        ssn: st.next_ssn,
                        ppid: p2,
                        data: d2,
                        len: l2,
                    });
                    st.next_ssn += 1;
                }
            } else {
                st.ready.insert(ssn, (ppid, data, mlen));
            }
        }
        // Flight recorder: same receiver-side HOL definition as DATA —
        // complete messages gated in `ready` behind a missing earlier MID.
        if let Some(t) = ctx.tracer() {
            let blocked = !st.ready.is_empty();
            t.hol_update(
                ctx.now().as_nanos(),
                a.host,
                peer,
                sid,
                trace::HolSide::Rcv,
                blocked,
                delivered.len() as u32,
            );
        }
        ak.stats.msgs_delivered += delivered.len() as u64;
    }
    if !delivered.is_empty() {
        let e = a.endpoint();
        let ep = ep_mut(w, e);
        for m in delivered.drain(..) {
            ep.deliver_q.push_back(m);
        }
        ctx.wake_all(&ep.readers);
        ep.readers.clear();
    }
    w.pool.put_msg_vec(delivered);
}

/// RFC 3758 receive path: the peer abandoned messages; jump the cumulative
/// TSN over their chunks and drop any partial reassembly state they left,
/// then un-gate ordered delivery on each skipped (stream, MID).
fn handle_forward_tsn(w: &mut World, ctx: &mut Wx, a: AssocId, new_cum: u64, skips: Vec<(u16, u64)>) {
    let mut delivered = w.pool.take_msg_vec();
    {
        let (ak, pool) = assoc_pool_mut(w, a);
        if !matches!(
            ak.state,
            AssocState::Established | AssocState::ShutdownPending | AssocState::ShutdownSent
        ) {
            pool.put_msg_vec(delivered);
            return;
        }
        ak.last_traffic = ctx.now();
        ak.stats.fwd_tsn_in += 1;
        if new_cum > ak.cum_tsn {
            ak.cum_tsn = new_cum;
            ak.rcv_have.remove_below(ak.cum_tsn + 1);
            // Chunks above the jump may now be contiguous with it.
            let first_missing = ak.rcv_have.first_missing_from(ak.cum_tsn + 1);
            if first_missing > ak.cum_tsn + 1 {
                ak.cum_tsn = first_missing - 1;
                ak.rcv_have.remove_below(ak.cum_tsn + 1);
            }
        }
        let aid = a;
        for &(sid, mid) in &skips {
            let ssn = mid as u32;
            let mut freed = 0u64;
            let st = ak.in_stream_mut(sid);
            // Drop the abandoned message's partial reassembly state — and
            // ONLY its own: other messages' fragments at TSNs at or below
            // the jump may belong to complete-but-unacked messages and
            // must survive.
            if let Some(m) = st.i_frags.remove(&mid) {
                for c in m.values() {
                    freed += c.data.len() as u64;
                }
            }
            let drop_tsns: Vec<u64> =
                st.frags.iter().filter(|(_, c)| c.ssn == ssn).map(|(&t, _)| t).collect();
            for t in drop_tsns {
                if let Some(c) = st.frags.remove(&t) {
                    freed += c.data.len() as u64;
                }
            }
            // Un-gate ordered delivery: hand over anything the abandoned
            // message was blocking (in order), then skip past it.
            if ssn >= st.next_ssn {
                while let Some((&k, _)) = st.ready.first_key_value() {
                    if k > ssn {
                        break;
                    }
                    let (p2, d2, l2) = st.ready.remove(&k).unwrap();
                    delivered.push(RecvMsg { assoc: aid, stream: sid, ssn: k, ppid: p2, data: d2, len: l2 });
                }
                st.next_ssn = ssn + 1;
                while let Some((p2, d2, l2)) = st.ready.remove(&st.next_ssn) {
                    delivered.push(RecvMsg {
                        assoc: aid,
                        stream: sid,
                        ssn: st.next_ssn,
                        ppid: p2,
                        data: d2,
                        len: l2,
                    });
                    st.next_ssn += 1;
                }
            }
            ak.rcvbuf_used = ak.rcvbuf_used.saturating_sub(freed);
        }
        // Ack the jump promptly so the sender stops re-emitting it.
        ak.sack_immediate = true;
        ak.stats.msgs_delivered += delivered.len() as u64;
    }
    if !delivered.is_empty() {
        let e = a.endpoint();
        let ep = ep_mut(w, e);
        for m in delivered.drain(..) {
            ep.deliver_q.push_back(m);
        }
        ctx.wake_all(&ep.readers);
        ep.readers.clear();
    }
    w.pool.put_msg_vec(delivered);
}

/// Try to assemble one complete message from a stream's fragment map.
/// Fragments of a message occupy consecutive TSNs bracketed by B/E bits.
/// The chunk list comes from the pool; the middleware retires it after
/// consuming the message.
fn try_assemble(
    st: &mut InStream,
    pool: &mut crate::pool::Pools,
) -> Option<(u32, u32, bool, Vec<Bytes>, u32)> {
    let mut run_start: Option<u64> = None;
    let mut prev_tsn: Option<u64> = None;
    let mut complete: Option<(u64, u64)> = None;
    for (&tsn, c) in st.frags.iter() {
        let contiguous = prev_tsn.map(|p| p + 1 == tsn).unwrap_or(true);
        if c.begin {
            run_start = Some(tsn);
        } else if !contiguous {
            run_start = None;
        }
        if let Some(s) = run_start {
            if c.end {
                complete = Some((s, tsn));
                break;
            }
        }
        prev_tsn = Some(tsn);
    }
    let (s, e) = complete?;
    let mut data = pool.take_bytes_vec();
    let mut len = 0u32;
    let (mut ssn, mut ppid, mut unordered) = (0u32, 0u32, false);
    for tsn in s..=e {
        let c = st.frags.remove(&tsn).expect("complete run present");
        ssn = c.ssn;
        ppid = c.ppid;
        unordered = c.unordered;
        len += c.data.len() as u32;
        data.push(c.data);
    }
    Some((ssn, ppid, unordered, data, len))
}

/// Per-packet SACK decision: immediate when there are gaps or duplicates
/// (the fast gap reporting §4.1.1 credits), else delayed (every 2nd packet
/// or 200 ms).
fn decide_sack(w: &mut World, ctx: &mut Wx, a: AssocId) {
    let cfg = cfg_of(w, a.host);
    let send_now = {
        let ak = assoc_mut(w, a);
        let gaps_exist = !ak.rcv_have.is_empty();
        if ak.sack_immediate || gaps_exist {
            true
        } else {
            ak.sack_pending_pkts += 1;
            ak.sack_pending_pkts >= cfg.sack_every
        }
    };
    if send_now {
        send_sack_now(w, ctx, a);
    } else {
        arm_sack_timer(w, ctx, a);
    }
}

// ---------------------------------------------------------------------------
// SACK processing (sender side)
// ---------------------------------------------------------------------------

/// Debug invariants: per-path flight equals the sum of unacked, unmarked
/// sent chunks on that path, and the O(1) aggregates (`rtx_queue`,
/// `unacked_floor`) agree with a full rescan of `sent`.
fn check_flight(ak: &Assoc, whence: &str, now: simcore::SimTime) {
    if std::env::var("SCTP_CHECK").is_err() {
        return;
    }
    let mut per_path = vec![0u64; ak.paths.len()];
    let mut rtx_expect = std::collections::BTreeSet::new();
    for (&tsn, c) in &ak.sent {
        if !c.acked && !c.marked_rtx {
            per_path[c.path as usize] += c.data.len() as u64;
        }
        if c.marked_rtx && !c.acked {
            rtx_expect.insert(tsn);
        }
    }
    for (i, ps) in ak.paths.iter().enumerate() {
        if ps.flight != per_path[i] {
            panic!(
                "[{now}] FLIGHT DRIFT at {whence}: path {i} flight={} actual={} (assoc to peer{})",
                ps.flight, per_path[i], ak.peer_host
            );
        }
    }
    if rtx_expect != ak.rtx_queue {
        panic!(
            "[{now}] RTX QUEUE DRIFT at {whence}: aggregate={:?} actual={:?} (assoc to peer{})",
            ak.rtx_queue, rtx_expect, ak.peer_host
        );
    }
    if let Some((&tsn, _)) = ak.sent.range(..ak.unacked_floor).find(|(_, c)| !c.acked) {
        panic!(
            "[{now}] FLOOR DRIFT at {whence}: unacked tsn {tsn} below floor {} (assoc to peer{})",
            ak.unacked_floor, ak.peer_host
        );
    }
    // CMT cursors: no unacked chunk assigned to a path may sit below that
    // path's pseudo-cumack rescan floor.
    for (i, ps) in ak.paths.iter().enumerate() {
        if let Some((&tsn, _)) = ak
            .sent
            .range(..ps.cumack_floor)
            .find(|(_, c)| !c.acked && c.path as usize == i)
        {
            panic!(
                "[{now}] CMT FLOOR DRIFT at {whence}: unacked tsn {tsn} on path {i} below floor {} (assoc to peer{})",
                ps.cumack_floor, ak.peer_host
            );
        }
    }
}

fn process_sack(w: &mut World, ctx: &mut Wx, a: AssocId, cum: u64, a_rwnd: u64, gaps: &[(u64, u64)]) {
    let cfg = cfg_of(w, a.host);
    let pmtu = cfg.pmtu as u64;
    let now = ctx.now();
    let mut do_fast_rtx = false;
    let wake_writers;
    {
        let (ak, pool) = assoc_pool_mut(w, a);
        ak.stats.sacks_in += 1;
        // PR-SCTP: the peer's cumulative ack is the FORWARD-TSN baseline
        // (Advanced.Peer.Ack.Point walks upward from here).
        ak.peer_cum = ak.peer_cum.max(cum);
        let n_paths = ak.paths.len();
        let mut newly_acked = pool.take_u64_vec();
        newly_acked.resize(n_paths, 0);
        let mut cum_advanced = false;
        // SFR: highest TSN newly acked per destination path by THIS SACK
        // (0 = none; TSNs start at 1). With CMT, a missing report may only
        // be charged to a chunk when a later TSN on the *same* path was
        // acked — cross-path reordering then never trips the threshold.
        let mut hna = [0u64; MAX_PATHS];

        // Cumulative ack: split the acked prefix off in one O(log n)
        // tree operation instead of walking (and re-balancing per key)
        // everything at or below `cum`.
        if ak.sent.first_key_value().is_some_and(|(&t, _)| t <= cum) {
            let rest = ak.sent.split_off(&cum.saturating_add(1));
            let acked_prefix = std::mem::replace(&mut ak.sent, rest);
            for (tsn, c) in acked_prefix {
                cum_advanced = true;
                if c.marked_rtx && !c.acked {
                    ak.rtx_queue.remove(&tsn);
                    // Acked while queued for retransmission: the mark was
                    // spurious (reordering, not loss).
                    ak.stats.spurious_frtx += 1;
                }
                if !c.acked {
                    let len = c.data.len() as u64;
                    // Chunks marked for retransmission already left the flight.
                    if !c.marked_rtx {
                        ak.paths[c.path as usize].flight =
                            ak.paths[c.path as usize].flight.saturating_sub(len);
                    }
                    ak.outstanding_bytes -= len;
                    newly_acked[c.path as usize] += len;
                    hna[c.path as usize] = hna[c.path as usize].max(tsn);
                    if ak.rtt_probe == Some(tsn) && c.txcount == 1 {
                        ak.paths[c.path as usize].rto.sample(now.since(c.sent_at));
                        ak.rtt_probe = None;
                    }
                }
            }
            // Nothing at or below `cum` remains, so the earliest-unacked
            // cursor can never point below it.
            ak.unacked_floor = ak.unacked_floor.max(cum.saturating_add(1));
        }
        // Gap acks: walk each reported block in place.
        for &(g0, g1) in gaps {
            for (&tsn, c) in ak.sent.range_mut(g0..g1) {
                if !c.acked {
                    c.acked = true;
                    let was_marked = c.marked_rtx;
                    c.marked_rtx = false;
                    let len = c.data.len() as u64;
                    let p = c.path as usize;
                    if was_marked {
                        ak.rtx_queue.remove(&tsn);
                        ak.stats.spurious_frtx += 1;
                    }
                    if ak.rtt_probe == Some(tsn) && c.txcount == 1 {
                        ak.paths[p].rto.sample(now.since(c.sent_at));
                        ak.rtt_probe = None;
                    }
                    if !was_marked {
                        ak.paths[p].flight = ak.paths[p].flight.saturating_sub(len);
                    }
                    ak.outstanding_bytes -= len;
                    newly_acked[p] += len;
                    hna[p] = hna[p].max(tsn);
                }
            }
        }

        // CMT CUC (cwnd update for CMT): recompute each SACKed path's
        // pseudo-cumack — the earliest TSN still outstanding on it. The
        // association-wide cumulative ack stalls behind the slowest path,
        // so per-path growth (below) is gated on the pseudo-cumack's
        // advance instead. A pseudo-cumack passing the path's recovery
        // exit point also ends that path's fast recovery.
        let mut pseudo_advanced = [false; MAX_PATHS];
        if cfg.cmt {
            for p in 0..n_paths {
                if newly_acked[p] == 0 {
                    continue;
                }
                let old = ak.paths[p].pseudo_cumack;
                let new_e = cmt_earliest_on(ak, p);
                pseudo_advanced[p] = old != u64::MAX && new_e.map_or(true, |e| e > old);
                let ps = &mut ak.paths[p];
                ps.pseudo_cumack = new_e.unwrap_or(u64::MAX);
                if ps.in_fast_recovery && new_e.map_or(true, |e| e > ps.fast_recovery_exit) {
                    ps.in_fast_recovery = false;
                }
            }
        }

        // Missing reports → fast retransmit marking (strike count).
        let highest = gaps.iter().map(|&(_, g1)| g1).max().unwrap_or(0);
        if highest > 0 {
            let mut newly_marked = false;
            let mut first_marked_path = ak.primary;
            let mut first_marked_tsn = 0u64;
            let mut n_marked = 0u32;
            // CMT: marks grouped per destination path for per-path recovery.
            let mut marked_on = [0u32; MAX_PATHS];
            let mut first_tsn_on = [0u64; MAX_PATHS];
            // Entries below the earliest-unacked cursor are all acked, so
            // the strike walk starts there, not at the window's base.
            let floor = ak.unacked_floor;
            for (&tsn, c) in ak.sent.range_mut(floor..highest) {
                // A chunk may be *fast*-retransmitted only once (RFC 4960
                // §7.2.4); after that, only T3 resends it. Without this,
                // the per-packet gap SACKs re-mark it every few reports
                // and the retransmission storm congests the path further.
                if !c.acked && !c.marked_rtx && c.txcount == 1 {
                    // SFR (split fast retransmit): only an ack above this
                    // chunk on its OWN path is evidence of loss there —
                    // acks of later TSNs striped onto other paths are just
                    // reordering.
                    if cfg.cmt && hna[c.path as usize] <= tsn {
                        continue;
                    }
                    c.missing += 1;
                    if c.missing >= cfg.missing_thresh {
                        c.marked_rtx = true;
                        // Marked chunks leave the flight (RFC 4960 §6.2.1/7.2.4)
                        // so the retransmission fits inside the new cwnd.
                        ak.paths[c.path as usize].flight = ak.paths[c.path as usize]
                            .flight
                            .saturating_sub(c.data.len() as u64);
                        ak.rtx_queue.insert(tsn);
                        if !newly_marked {
                            first_marked_path = c.path;
                            first_marked_tsn = tsn;
                        }
                        if marked_on[c.path as usize] == 0 {
                            first_tsn_on[c.path as usize] = tsn;
                        }
                        marked_on[c.path as usize] += 1;
                        newly_marked = true;
                        n_marked += 1;
                    }
                }
            }
            if newly_marked {
                if cfg.cmt {
                    // Fast recovery is a per-path episode: halve only the
                    // paths with fresh marks, and only when they are not
                    // already recovering — a single reordering burst must
                    // not cascade into repeated multiplicative decreases
                    // across the stripe.
                    let exit = ak.next_tsn.saturating_sub(1);
                    for p in 0..n_paths {
                        if marked_on[p] == 0 || ak.paths[p].in_fast_recovery {
                            continue;
                        }
                        {
                            let ps = &mut ak.paths[p];
                            ps.in_fast_recovery = true;
                            ps.fast_recovery_exit = exit;
                            ps.ssthresh = (ps.cwnd / 2).max(4 * pmtu);
                            ps.cwnd = ps.ssthresh;
                            ps.partial_bytes_acked = 0;
                        }
                        ak.stats.fast_retransmits += 1;
                        if ctx.tracing() {
                            ctx.trace_emit(trace::Event::FastRtx(trace::FastRtxEv {
                                proto: trace::Proto8::Sctp,
                                host: a.host,
                                peer: ak.peer_host,
                                path: p as u8,
                                tsn: first_tsn_on[p],
                                count: marked_on[p],
                            }));
                            trace_cwnd(ctx, a.host, ak.peer_host, p as u8, &ak.paths[p]);
                        }
                    }
                } else if !ak.in_fast_recovery {
                    ak.in_fast_recovery = true;
                    ak.fast_recovery_exit = ak.next_tsn.saturating_sub(1);
                    ak.stats.fast_retransmits += 1;
                    let ps = &mut ak.paths[first_marked_path as usize];
                    ps.ssthresh = (ps.cwnd / 2).max(4 * pmtu);
                    ps.cwnd = ps.ssthresh;
                    ps.partial_bytes_acked = 0;
                    if ctx.tracing() {
                        ctx.trace_emit(trace::Event::FastRtx(trace::FastRtxEv {
                            proto: trace::Proto8::Sctp,
                            host: a.host,
                            peer: ak.peer_host,
                            path: first_marked_path,
                            tsn: first_marked_tsn,
                            count: n_marked,
                        }));
                        let ps = &ak.paths[first_marked_path as usize];
                        trace_cwnd(ctx, a.host, ak.peer_host, first_marked_path, ps);
                    }
                }
                do_fast_rtx = true;
            }
        }
        if ak.in_fast_recovery && cum >= ak.fast_recovery_exit {
            ak.in_fast_recovery = false;
        }

        // Congestion window growth (byte counting — §4.1.1). Under CMT the
        // gates are per path (CUC): this path's pseudo-cumack must have
        // advanced and this path must not be in fast recovery — the
        // association-wide cumulative ack says nothing about which path
        // delivered.
        let peer = ak.peer_host;
        for (p, &acked) in newly_acked.iter().enumerate() {
            if acked == 0 {
                continue;
            }
            {
                let ps = &mut ak.paths[p];
                ps.error_count = 0;
                ps.active = true;
            }
            ak.assoc_errors = 0;
            let in_fr = if cfg.cmt { ak.paths[p].in_fast_recovery } else { ak.in_fast_recovery };
            if in_fr {
                continue;
            }
            let advanced = if cfg.cmt { pseudo_advanced[p] } else { cum_advanced };
            if advanced {
                let ps = &mut ak.paths[p];
                if ps.cwnd <= ps.ssthresh {
                    if cfg.byte_counting_cc {
                        // Slow start: grow by bytes acked, at most one PMTU.
                        ps.cwnd += acked.min(pmtu);
                    } else {
                        // Ablation A1: TCP-style per-ACK counting. With the
                        // every-2nd-packet delayed SACK this halves slow
                        // start growth, like delayed-ACK TCP (§4.1.1).
                        ps.cwnd += pmtu / 2;
                    }
                } else {
                    ps.partial_bytes_acked += acked;
                    if ps.partial_bytes_acked >= ps.cwnd && ps.flight >= ps.cwnd {
                        ps.partial_bytes_acked -= ps.cwnd;
                        ps.cwnd += pmtu;
                    }
                }
                ps.cwnd = ps.cwnd.min(cfg.sndbuf * 4);
                if ctx.tracing() {
                    trace_cwnd(ctx, a.host, peer, p as u8, &ak.paths[p]);
                }
            }
        }
        if ak.outstanding_bytes == 0 {
            for ps in &mut ak.paths {
                ps.partial_bytes_acked = 0;
            }
        }

        // Peer receive window: advertised minus what is still in flight.
        ak.peer_rwnd = a_rwnd.saturating_sub(ak.outstanding_bytes);

        // Retransmission timer management. CMT keeps one T3 per
        // destination: stop a path's timer when its stripe drained, restart
        // it fresh when its pseudo-cumack advanced (the association-wide
        // cumulative ack says nothing about which path delivered).
        if cfg.cmt {
            for p in 0..n_paths {
                if newly_acked[p] == 0 {
                    continue;
                }
                if ak.paths[p].pseudo_cumack == u64::MAX {
                    let ps = &mut ak.paths[p];
                    ps.t3_gen += 1;
                    ps.t3_armed = false;
                    if let Some(id) = ps.t3_timer.take() {
                        ctx.cancel_counted(id);
                    }
                } else if pseudo_advanced[p] {
                    ak.paths[p].t3_armed = false; // re-armed fresh below
                }
            }
        } else if ak.outstanding_bytes == 0 {
            ak.t3_gen += 1;
            ak.t3_armed = false;
            if let Some(id) = ak.t3_timer.take() {
                ctx.cancel_counted(id);
            }
        } else if cum_advanced {
            ak.t3_armed = false; // re-armed fresh below
        }

        // Send space freed → wake endpoint writers.
        wake_writers = newly_acked.iter().any(|&x| x > 0);
        pool.put_u64_vec(newly_acked);
        check_flight(ak, "process_sack", now);
    }
    if wake_writers {
        let ep = ep_mut(w, a.endpoint());
        ctx.wake_all(&ep.writers);
        ep.writers.clear();
    }
    if do_fast_rtx {
        fast_retransmit_burst(w, ctx, a);
    }
    try_send(w, ctx, a);
    if cfg.cmt {
        for p in 0..MAX_PATHS as u8 {
            let needs_arm = {
                let ak = assoc_ref(w, a);
                (p as usize) < ak.paths.len()
                    && ak.paths[p as usize].pseudo_cumack != u64::MAX
                    && !ak.paths[p as usize].t3_armed
            };
            if needs_arm {
                arm_t3_cmt(w, ctx, a, p, true);
            }
        }
    } else {
        let ak = assoc_ref(w, a);
        if ak.outstanding_bytes > 0 && !ak.t3_armed {
            arm_t3(w, ctx, a);
        }
    }
    maybe_progress_shutdown(w, ctx, a);
}

/// RFC 4960 §7.2.4: on entering fast retransmit, send one packet with as
/// many marked chunks as fit, ignoring cwnd. Remaining marked chunks go out
/// through the normal cwnd-limited path. Under CMT the episode is per
/// *path*: one cwnd-ignoring packet per destination path, each carrying its
/// own path's marked chunks (RTX-SAME keeps the per-path accounting true).
fn fast_retransmit_burst(w: &mut World, ctx: &mut Wx, a: AssocId) {
    let cfg = cfg_of(w, a.host);
    let abandoned_before = assoc_ref(w, a).stats.msgs_abandoned;
    let mut packets: Vec<(u8, Vec<Chunk>)> = Vec::new();
    let vtag;
    {
        let ak = assoc_mut(w, a);
        vtag = ak.peer_tag;
        let now = ctx.now();
        // `rtx_queue` is exactly the marked, unacked TSNs; snapshot it
        // because the loops remove entries as they go on the wire.
        let tsns: Vec<u64> = ak.rtx_queue.iter().copied().collect();
        let interleave = ak.interleaving();
        let pr = ak.pr_active();
        let targets: Vec<u8> = if cfg.cmt {
            (0..ak.paths.len() as u8).collect()
        } else {
            vec![ak.rtx_path(cfg.rtx_alternate)]
        };
        for path in targets {
            let mut budget = cfg.packet_budget();
            let mut packet = Vec::new();
            for &tsn in &tsns {
                if !ak.rtx_queue.contains(&tsn) {
                    continue; // already resent for an earlier target (or abandoned)
                }
                if cfg.cmt && cmt_rtx_target(ak, ak.sent[&tsn].path) != path {
                    continue;
                }
                // PR-SCTP: expired at retransmission time → abandon.
                if pr && ak.sent[&tsn].expires.is_some_and(|e| now > e) {
                    let (s, n) = (ak.sent[&tsn].stream, ak.sent[&tsn].ssn);
                    abandon_message(ak, s, n);
                    continue;
                }
                let c = ak.sent.get_mut(&tsn).unwrap();
                let hdr: u32 = if interleave { 20 } else { 16 };
                let clen = hdr + (c.data.len() as u32).div_ceil(4) * 4;
                if clen > budget {
                    break;
                }
                budget -= clen;
                c.marked_rtx = false;
                c.missing = 0;
                c.txcount += 1;
                c.sent_at = now;
                let len = c.data.len() as u64;
                c.path = path;
                ak.rtx_queue.remove(&tsn);
                ak.stats.retransmits += 1;
                ak.rtt_probe = None;
                if cfg.cmt {
                    cmt_note_assign(ak, path, tsn);
                }
                let c = ak.sent.get(&tsn).unwrap();
                packet.push(data_chunk_for(interleave, tsn, c));
                ak.paths[path as usize].flight += len;
            }
            if !packet.is_empty() {
                packets.push((path, packet));
            }
        }
    }
    let sent_any = !packets.is_empty();
    let sent_paths: Vec<u8> = packets.iter().map(|&(p, _)| p).collect();
    for (path, packet) in packets {
        send_packet(w, ctx, a, path, vtag, packet);
    }
    if cfg.cmt {
        for p in sent_paths {
            if !assoc_ref(w, a).paths[p as usize].t3_armed {
                arm_t3_cmt(w, ctx, a, p, true);
            }
        }
    } else if sent_any && !assoc_ref(w, a).t3_armed {
        arm_t3(w, ctx, a);
    }
    wake_writers_after_abandon(w, ctx, a, abandoned_before);
}

// ---------------------------------------------------------------------------
// Shutdown
// ---------------------------------------------------------------------------

/// Wake every process blocked on this endpoint (state changes).
fn wake_endpoint(w: &mut World, ctx: &mut Wx, e: EpId) {
    let ep = ep_mut(w, e);
    ctx.wake_all(&ep.readers);
    ctx.wake_all(&ep.writers);
    ep.readers.clear();
    ep.writers.clear();
}

fn maybe_progress_shutdown(w: &mut World, ctx: &mut Wx, a: AssocId) {
    let (state, drained) = {
        let ak = assoc_ref(w, a);
        (ak.state, ak.outstanding_bytes == 0 && ak.q_is_empty())
    };
    match (state, drained) {
        (AssocState::ShutdownPending, true) => {
            let (cum, vtag, path) = {
                let ak = assoc_mut(w, a);
                ak.state = AssocState::ShutdownSent;
                (ak.cum_tsn, ak.peer_tag, ak.primary)
            };
            send_packet(w, ctx, a, path, vtag, vec![Chunk::Shutdown { cum_tsn: cum }]);
            arm_shutdown_timer(w, ctx, a);
            wake_endpoint(w, ctx, a.endpoint());
        }
        (AssocState::ShutdownReceived, true) => {
            let (vtag, path) = {
                let ak = assoc_mut(w, a);
                ak.state = AssocState::ShutdownAckSent;
                (ak.peer_tag, ak.primary)
            };
            send_packet(w, ctx, a, path, vtag, vec![Chunk::ShutdownAck]);
            arm_shutdown_timer(w, ctx, a);
            wake_endpoint(w, ctx, a.endpoint());
        }
        _ => {}
    }
}

fn handle_shutdown(w: &mut World, ctx: &mut Wx, a: AssocId) {
    {
        let ak = assoc_mut(w, a);
        match ak.state {
            AssocState::Established | AssocState::ShutdownPending => {
                ak.state = AssocState::ShutdownReceived;
            }
            AssocState::ShutdownSent => {
                // Simultaneous shutdown: answer with SHUTDOWN-ACK.
                ak.state = AssocState::ShutdownReceived;
            }
            _ => return,
        }
    }
    wake_endpoint(w, ctx, a.endpoint());
    maybe_progress_shutdown(w, ctx, a);
}

fn handle_shutdown_ack(w: &mut World, ctx: &mut Wx, a: AssocId) {
    let (vtag, path, proceed) = {
        let ak = assoc_mut(w, a);
        let ok = matches!(ak.state, AssocState::ShutdownSent | AssocState::ShutdownAckSent);
        if ok {
            ak.state = AssocState::Closed;
            ak.shutdown_gen += 1;
        }
        (ak.peer_tag, ak.primary, ok)
    };
    if proceed {
        send_packet(w, ctx, a, path, vtag, vec![Chunk::ShutdownComplete]);
        wake_endpoint(w, ctx, a.endpoint());
    }
}

fn arm_shutdown_timer(w: &mut World, ctx: &mut Wx, a: AssocId) {
    let ak = assoc_mut(w, a);
    ak.shutdown_gen += 1;
    let gen = ak.shutdown_gen;
    let d = ak.paths[ak.primary as usize].rto.current();
    ctx.schedule_in(d, move |w: &mut World, ctx: &mut Wx| {
        let cfg = cfg_of(w, a.host);
        let (resend, vtag, path, cum, state) = {
            let ak = assoc_mut(w, a);
            if ak.shutdown_gen != gen {
                return;
            }
            ak.init_retries += 1;
            if ak.init_retries > cfg.assoc_max_retrans {
                (false, 0, 0, 0, ak.state)
            } else {
                let p = ak.primary;
                ak.paths[p as usize].rto.backoff();
                (true, ak.peer_tag, p, ak.cum_tsn, ak.state)
            }
        };
        if !resend {
            // Give up: close unilaterally.
            assoc_mut(w, a).state = AssocState::Closed;
            return;
        }
        match state {
            AssocState::ShutdownSent => {
                send_packet(w, ctx, a, path, vtag, vec![Chunk::Shutdown { cum_tsn: cum }]);
                arm_shutdown_timer(w, ctx, a);
            }
            AssocState::ShutdownAckSent => {
                send_packet(w, ctx, a, path, vtag, vec![Chunk::ShutdownAck]);
                arm_shutdown_timer(w, ctx, a);
            }
            _ => {}
        }
    });
}
