//! SCTP: a KAME-style implementation (the transport under the paper's
//! LAM-SCTP module). See crate docs and DESIGN.md S6 for the inventory.

mod assoc;
mod engine;
pub mod sched;
mod wire;

pub use assoc::{AssocId, AssocState, AssocStats, EpId, PathState, RecvMsg, SctpCfg, SctpHost};
pub use engine::{
    assoc_state, can_send, connect, dump_all, input, listen, lookup_peer, peer_addrs, primary_path,
    readable, recvmsg, register_reader, register_writer, sendmsg, sendmsg_pr, sendmsg_v,
    set_primary, shutdown, socket, stats, SendErr,
};
pub use sched::{SchedCandidate, SchedKind, StreamScheduler};
pub use wire::{
    Chunk, Cookie, DataChunk, IDataChunk, SctpPacket, COMMON_HEADER, COOKIE_WIRE_LEN,
    EXT_INTERLEAVE, EXT_PR_SCTP,
};
