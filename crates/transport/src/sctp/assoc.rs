//! SCTP association, endpoint, and per-path state.

use std::collections::{BTreeMap, BTreeSet, HashMap, VecDeque};

use bytes::Bytes;
use netsim::IfAddr;
use simcore::{Dur, ProcId, SimTime};

use crate::ranges::RangeSet;
use crate::rto::{RtoCfg, RtoEstimator};

use super::sched::{SchedCandidate, SchedKind, StreamScheduler};
use super::wire::{DataChunk, IDataChunk, EXT_INTERLEAVE, EXT_PR_SCTP};

/// Handle to an SCTP endpoint (socket) on a host.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct EpId {
    /// Host the endpoint lives on.
    pub host: u16,
    /// Endpoint slot within the host.
    pub idx: u32,
}

/// Handle to an association within an endpoint.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct AssocId {
    /// Host the association lives on.
    pub host: u16,
    /// Owning endpoint slot.
    pub ep: u32,
    /// Association slot within the endpoint.
    pub idx: u32,
}

impl AssocId {
    /// The endpoint this association belongs to.
    pub fn endpoint(self) -> EpId {
        EpId { host: self.host, idx: self.ep }
    }
}

/// SCTP configuration.
#[derive(Debug, Clone)]
pub struct SctpCfg {
    /// Path MTU (IP packet size ceiling).
    pub pmtu: u32,
    /// Send buffer: pending + outstanding user bytes per association.
    pub sndbuf: u64,
    /// Receive buffer per association (a_rwnd base).
    pub rcvbuf: u64,
    /// Outbound streams requested per association (the paper's pool of 10).
    pub out_streams: u16,
    /// Delayed-SACK timeout (RFC: 200 ms).
    pub sack_delay: Dur,
    /// SACK at least every N packets.
    pub sack_every: u32,
    /// Missing-report threshold for fast retransmit (RFC 2960 said 4; the
    /// KAME implementation of the era used 3, like TCP's dup-ACK rule).
    pub missing_thresh: u32,
    /// RTO parameters.
    pub rto: RtoCfg,
    /// Initial cwnd in PMTUs (RFC 4960 §7.2.1 ≈ min(4·MTU, max(2·MTU, 4380))).
    pub init_cwnd_mtu: u32,
    /// Send retransmissions to an alternate active path when available
    /// (RFC 4960 §6.4.1; the paper §4.1.1 notes this aids throughput).
    pub rtx_alternate: bool,
    /// Consecutive timeouts before a path is marked inactive.
    pub path_max_retrans: u32,
    /// Consecutive timeouts before the whole association fails.
    pub assoc_max_retrans: u32,
    /// INIT / COOKIE-ECHO retransmission limit.
    pub max_init_retrans: u32,
    /// Signed-cookie lifetime (staleness check).
    pub cookie_lifetime: Dur,
    /// Heartbeat interval for idle/inactive paths (None = off).
    pub heartbeat_interval: Option<Dur>,
    /// Close idle associations after this long (None = off). §3.5.2.
    pub autoclose: Option<Dur>,
    /// How many interfaces to bind (1 = singlehomed, as in the paper's main
    /// experiments; 3 = the testbed's full multihoming).
    pub num_paths: u8,
    /// Charge CRC32c per-byte CPU cost (paper's setup §4 item 5 disables it).
    pub crc_enabled: bool,
    /// Max gap-ack blocks per SACK. SCTP's PMTU-bounded default is
    /// effectively unlimited; setting 3 mimics TCP's option-space limit
    /// (ablation A1, §4.1.1).
    pub max_gap_blocks: usize,
    /// Byte-counting cwnd growth (RFC 4960). `false` switches to TCP-style
    /// per-SACK growth (ablation A1).
    pub byte_counting_cc: bool,
    /// Max.Burst (RFC 4960 §6.1): packets transmitted per send opportunity;
    /// restores ACK clocking after idle or bulk submissions. The RFC's
    /// suggested 4 throttles mid-size messages hard; 12 keeps single-burst
    /// messages at wire speed while still damping retransmission storms.
    pub max_burst: u32,
    /// Concurrent Multipath Transfer (Iyengar et al., referenced in §2.1
    /// and §5 of the paper as upcoming work): stripe *new* data across all
    /// active paths instead of using only the primary. The scheduler picks
    /// the path with the most open cwnd; SACK accounting is made
    /// reordering-robust with Iyengar's three algorithms — CUC (per-path
    /// pseudo-cumack gates per-path cwnd growth), SFR (missing reports
    /// counted per destination path so cross-path reordering never trips
    /// the dup-ack threshold), and per-path fast recovery with RTX-SAME
    /// retransmission. `false` leaves the single-path engine bit-identical
    /// to the pre-CMT code.
    pub cmt: bool,
    /// Draw verification tags and heartbeat nonces in the u32 range the
    /// wire can carry, so a frame decoded off a real socket reproduces the
    /// tag the engine drew. The sim default keeps the full-width u64 draws
    /// — same RNG call sites, same stream, bit-identical results — because
    /// inside the simulator tags never cross a serialization boundary.
    /// Live backends must set this: a truncated tag would make every
    /// decoded packet fail vtag validation.
    pub wire_safe_ids: bool,
    /// Offer RFC 8260 user-message interleaving (I-DATA). When both ends
    /// offer it, senders queue per stream, a [`SchedKind`] scheduler picks
    /// the next chunk's stream, and receivers reassemble per (stream, MID).
    /// `false` leaves the engine bit-identical to the pre-I-DATA code.
    pub interleave: bool,
    /// Offer RFC 3758 timed reliability (PR-SCTP): expired messages are
    /// abandoned and a FORWARD-TSN walks the peer's cumulative ack past
    /// their TSNs.
    pub pr_sctp: bool,
    /// Default per-message lifetime applied by `sendmsg` when PR-SCTP is
    /// on (`None` = fully reliable unless `sendmsg_pr` sets a lifetime).
    pub pr_lifetime: Option<Dur>,
    /// Sender-side stream scheduler (only consulted when interleaving was
    /// negotiated; otherwise FCFS order is forced to keep each message's
    /// fragments TSN-contiguous for the peer's sequential reassembler).
    pub sched: SchedKind,
    /// Per-stream weights for [`SchedKind::WeightedFair`] (stream id
    /// indexes it; missing entries weigh 1).
    pub sched_weights: Vec<u32>,
}

impl Default for SctpCfg {
    fn default() -> Self {
        SctpCfg {
            pmtu: 1500,
            sndbuf: 220 * 1024,
            rcvbuf: 220 * 1024,
            out_streams: 10,
            sack_delay: Dur::from_millis(200),
            sack_every: 2,
            missing_thresh: 3,
            rto: RtoCfg::kame_sctp(),
            init_cwnd_mtu: 3,
            rtx_alternate: true,
            path_max_retrans: 5,
            assoc_max_retrans: 10,
            max_init_retrans: 8,
            cookie_lifetime: Dur::from_secs(60),
            heartbeat_interval: Some(Dur::from_secs(30)),
            autoclose: None,
            num_paths: 1,
            crc_enabled: false,
            max_gap_blocks: usize::MAX,
            byte_counting_cc: true,
            max_burst: 12,
            cmt: false,
            wire_safe_ids: false,
            interleave: false,
            pr_sctp: false,
            pr_lifetime: None,
            sched: SchedKind::Fcfs,
            sched_weights: Vec::new(),
        }
    }
}

impl SctpCfg {
    /// User data bytes that fit in one DATA chunk:
    /// PMTU − IP(20) − common(12) − DATA header(16).
    pub fn max_chunk_data(&self) -> u32 {
        self.pmtu - 20 - 12 - 16
    }

    /// User data bytes that fit in one I-DATA chunk: the RFC 8260 header
    /// is 4 bytes longer than DATA's (MID u32 + FSN u32 replace SSN u16 +
    /// 2 reserved, plus the 32-bit PPID/FSN union).
    pub fn max_chunk_data_idata(&self) -> u32 {
        self.pmtu - 20 - 12 - 20
    }

    /// Chunk budget per packet (bytes available for chunks).
    pub fn packet_budget(&self) -> u32 {
        self.pmtu - 20 - 12
    }

    /// Extension bits this host offers in INIT / INIT-ACK.
    pub(crate) fn ext_offer(&self) -> u8 {
        (if self.interleave { EXT_INTERLEAVE } else { 0 })
            | (if self.pr_sctp { EXT_PR_SCTP } else { 0 })
    }
}

/// Association lifecycle states (RFC 4960 §4).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AssocState {
    /// INIT sent, waiting for INIT-ACK.
    CookieWait,
    /// COOKIE-ECHO sent, waiting for COOKIE-ACK.
    CookieEchoed,
    /// Four-way handshake complete; data flows.
    Established,
    /// Local close requested; draining the send queue first.
    ShutdownPending,
    /// SHUTDOWN sent, waiting for SHUTDOWN-ACK.
    ShutdownSent,
    /// Peer's SHUTDOWN received; draining before SHUTDOWN-ACK.
    ShutdownReceived,
    /// SHUTDOWN-ACK sent, waiting for SHUTDOWN-COMPLETE.
    ShutdownAckSent,
    /// Fully closed (orderly).
    Closed,
    /// Failed (ABORT or too many retransmissions).
    Aborted,
}

/// A user message fragment queued for (re)transmission.
#[derive(Debug)]
pub(crate) struct PendingChunk {
    pub stream: u16,
    /// Stream sequence number; doubles as the RFC 8260 MID when the
    /// fragment goes out as I-DATA (both count messages per stream).
    pub ssn: u32,
    pub begin: bool,
    pub end: bool,
    pub unordered: bool,
    pub ppid: u32,
    pub data: Bytes,
    /// RFC 8260 fragment sequence number within the message (0-based).
    pub fsn: u32,
    /// Global enqueue sequence — FCFS scheduling key; fragments of one
    /// message hold consecutive values.
    pub seq: u64,
    /// PR-SCTP: abandon the whole message if still unsent/unacked past
    /// this instant (`None` = fully reliable).
    pub expires: Option<SimTime>,
}

/// An outstanding (sent, not cumulatively acked) chunk.
#[derive(Debug)]
pub(crate) struct SentChunk {
    pub stream: u16,
    pub ssn: u32,
    pub begin: bool,
    pub end: bool,
    pub unordered: bool,
    pub ppid: u32,
    pub data: Bytes,
    pub path: u8,
    pub sent_at: SimTime,
    pub txcount: u32,
    /// Missing reports accumulated (fast-retransmit strikes).
    pub missing: u32,
    /// Gap-acked by the peer (will not be retransmitted).
    pub acked: bool,
    /// Queued for retransmission.
    pub marked_rtx: bool,
    /// RFC 8260 fragment sequence number (I-DATA retransmissions rebuild
    /// the chunk from here).
    pub fsn: u32,
    /// PR-SCTP lifetime deadline, checked at retransmission time.
    pub expires: Option<SimTime>,
    /// PR-SCTP: message abandoned; treated as acked for congestion and
    /// retransmission accounting, skipped over by FORWARD-TSN.
    pub abandoned: bool,
}

/// Most destination paths any association tracks in fixed-size per-path
/// stats arrays. The testbed topology is 3 interfaces; 4 leaves headroom.
pub const MAX_PATHS: usize = 4;

/// Per-destination-path state: SCTP keeps congestion control, RTO, and
/// error counts per path (§4.1.1 of the paper).
#[derive(Debug)]
pub struct PathState {
    /// Interface/network index this path runs over.
    pub iface: u8,
    /// Congestion window, bytes.
    pub cwnd: u64,
    /// Slow-start threshold, bytes.
    pub ssthresh: u64,
    /// Bytes acked toward the next congestion-avoidance cwnd increment.
    pub partial_bytes_acked: u64,
    /// Bytes outstanding on this path.
    pub flight: u64,
    /// Per-path RTO estimator.
    pub rto: RtoEstimator,
    /// Consecutive unanswered retransmissions/heartbeats.
    pub error_count: u32,
    /// False once `error_count` exceeds `path_max_retrans` (failover).
    pub active: bool,
    /// Nonce of the outstanding heartbeat, if any.
    pub hb_nonce: Option<u64>,
    /// Heartbeat generation counter (stale ACK rejection).
    pub hb_gen: u64,
    /// Last instant this path carried data (heartbeat scheduling).
    pub last_used: SimTime,
    /// CMT (Iyengar's CUC): earliest TSN still outstanding on this path —
    /// the per-path pseudo-cumack. `u64::MAX` = nothing outstanding here.
    /// Cwnd growth on this path is gated on SACKs that advance it, because
    /// with striping the association-wide cumulative ack stalls behind the
    /// slowest path even when *this* path is delivering perfectly.
    pub pseudo_cumack: u64,
    /// Monotone scan cursor for recomputing `pseudo_cumack`: every TSN
    /// below it is acked or assigned to another path, so the per-SACK
    /// rescan skips the settled prefix. Lowered only when a
    /// retransmission re-homes an old TSN onto this path.
    pub cumack_floor: u64,
    /// CMT: this path (not the association) is in fast recovery.
    pub in_fast_recovery: bool,
    /// CMT: leave per-path fast recovery once `pseudo_cumack` passes this.
    pub fast_recovery_exit: u64,
    /// CMT: per-path T3-rtx generation (stale-fire rejection).
    pub t3_gen: u64,
    /// CMT: per-path T3-rtx timer is armed. CMT retransmission timers are
    /// per destination — a timeout on one path must not stall or re-mark
    /// the others, and concurrent losses recover in parallel.
    pub t3_armed: bool,
    /// CMT: live per-path T3-rtx timer (ghost-cancelled on rearm).
    pub t3_timer: Option<simcore::TimerId>,
    /// CMT: the armed timer is a *rescue probe* (~2·SRTT), not the full
    /// RTO. The probe re-queues this path's aged chunks without cwnd
    /// collapse or backoff — ping-pong tail losses otherwise sit a whole
    /// RTO because SFR (correctly) refuses cross-path strike evidence and
    /// no later same-path data exists to strike with. After one probe the
    /// timer falls back to the real RTO.
    pub t3_rescue: bool,
}

impl PathState {
    pub(crate) fn new(iface: u8, cfg: &SctpCfg) -> Self {
        PathState {
            iface,
            cwnd: cfg.init_cwnd_mtu as u64 * cfg.pmtu as u64,
            ssthresh: u64::MAX / 2,
            partial_bytes_acked: 0,
            flight: 0,
            rto: RtoEstimator::new(cfg.rto),
            error_count: 0,
            active: true,
            hb_nonce: None,
            hb_gen: 0,
            last_used: SimTime::ZERO,
            pseudo_cumack: u64::MAX,
            cumack_floor: 0,
            in_fast_recovery: false,
            fast_recovery_exit: 0,
            t3_gen: 0,
            t3_armed: false,
            t3_timer: None,
            t3_rescue: false,
        }
    }
}

/// Inbound stream state: SSN ordering plus fragment reassembly.
#[derive(Debug, Default)]
pub(crate) struct InStream {
    pub next_ssn: u32,
    /// Fragments awaiting reassembly, keyed by TSN (fragments of one
    /// message occupy consecutive TSNs). DATA path only.
    pub frags: BTreeMap<u64, DataChunk>,
    /// RFC 8260 reassembly: fragments keyed (MID, FSN) — fragments of
    /// different messages interleave freely in TSN space, so each message
    /// reassembles independently. I-DATA path only.
    pub i_frags: BTreeMap<u64, BTreeMap<u32, IDataChunk>>,
    /// Complete messages waiting for their SSN (or MID) turn.
    pub ready: BTreeMap<u32, (u32, Vec<Bytes>, u32)>, // ssn -> (ppid, data, len)
}

/// A message delivered to the application by `sctp_recvmsg`.
#[derive(Debug)]
pub struct RecvMsg {
    /// Association the message arrived on.
    pub assoc: AssocId,
    /// Stream id.
    pub stream: u16,
    /// Stream sequence number.
    pub ssn: u32,
    /// Payload protocol identifier (opaque to SCTP).
    pub ppid: u32,
    /// Message payload, one `Bytes` per fragment.
    pub data: Vec<Bytes>,
    /// Total payload length.
    pub len: u32,
}

/// Association counters.
#[derive(Debug, Clone, Copy, Default)]
pub struct AssocStats {
    /// Packets sent.
    pub packets_out: u64,
    /// Packets received.
    pub packets_in: u64,
    /// DATA chunks sent (including retransmissions).
    pub data_chunks_out: u64,
    /// DATA chunks received.
    pub data_chunks_in: u64,
    /// Payload bytes sent.
    pub bytes_out: u64,
    /// Payload bytes received.
    pub bytes_in: u64,
    /// DATA chunks retransmitted (any cause).
    pub retransmits: u64,
    /// DATA chunks retransmitted via fast retransmit.
    pub fast_retransmits: u64,
    /// T3-rtx expirations.
    pub timeouts: u64,
    /// Duplicate TSNs received.
    pub dup_tsns_in: u64,
    /// SACKs sent.
    pub sacks_out: u64,
    /// SACKs received.
    pub sacks_in: u64,
    /// Messages handed to the application.
    pub msgs_delivered: u64,
    /// Primary-path switches after path failure.
    pub failovers: u64,
    /// Instant of the first failover, ns (0 = never) — the failover
    /// experiments' detection-latency measurement.
    pub first_failover_ns: u64,
    /// Packets sent per destination path (first `MAX_PATHS` paths) — the
    /// CMT stripe's balance, measurable from artifacts.
    pub per_path_pkts: [u64; MAX_PATHS],
    /// Chunks acked while still queued for retransmission: the mark was
    /// unnecessary (cross-path reordering masquerading as loss). CMT's SFR
    /// accounting exists to drive this to ~0.
    pub spurious_frtx: u64,
    /// Chunks re-queued by a CMT rescue probe (~2·SRTT tail-loss probe)
    /// instead of waiting out the full RTO.
    pub rescue_rtx: u64,
    /// PR-SCTP: user messages abandoned past their lifetime.
    pub msgs_abandoned: u64,
    /// FORWARD-TSN chunks sent.
    pub fwd_tsn_out: u64,
    /// FORWARD-TSN chunks received.
    pub fwd_tsn_in: u64,
}

pub(crate) struct Assoc {
    pub state: AssocState,
    pub local_port: u16,
    pub peer_port: u16,
    pub peer_host: u16,
    pub local_tag: u64,
    pub peer_tag: u64,
    pub paths: Vec<PathState>,
    pub primary: u8,

    // ---- transmit ----
    pub next_tsn: u64,
    pub out_ssn: Vec<u32>,
    pub pending: VecDeque<PendingChunk>,
    pub pending_bytes: u64,
    // ---- stream machinery (I-DATA / schedulers / PR-SCTP) ----
    /// Negotiated extension bits: intersection of both ends' offers
    /// (EXT_INTERLEAVE | EXT_PR_SCTP). 0 until the handshake settles.
    pub ext_flags: u8,
    /// Structural queue mode, fixed at creation from `cfg.interleave`:
    /// fragments queue per stream in `out_q` instead of the single
    /// `pending` FIFO. If the peer then fails to negotiate interleaving,
    /// picks are forced FCFS so wire order matches the FIFO exactly.
    pub per_stream_q: bool,
    /// Per-stream send queues (`per_stream_q` mode; indexed by stream id).
    pub out_q: Vec<VecDeque<PendingChunk>>,
    /// Sender-side stream scheduler (consulted only when interleaving was
    /// actually negotiated).
    pub sched: Box<dyn StreamScheduler>,
    /// Global fragment enqueue counter — FCFS key; fragments of one
    /// message take consecutive values.
    pub msg_seq: u64,
    /// Reused candidate buffer so per-chunk scheduling stays alloc-free.
    pub sched_scratch: Vec<SchedCandidate>,
    /// Peer's cumulative ack as of the last SACK processed — the
    /// FORWARD-TSN baseline.
    pub peer_cum: u64,
    /// Highest FORWARD-TSN cum point already emitted (dedup between SACKs).
    pub fwd_sent: u64,
    pub sent: BTreeMap<u64, SentChunk>,
    pub outstanding_bytes: u64,
    // ---- O(1) SACK accounting: running aggregates over `sent` ----
    /// TSNs queued for retransmission — exactly the `sent` entries with
    /// `marked_rtx && !acked`. Lets the flush path find (and count)
    /// retransmittable chunks without scanning the whole window.
    pub rtx_queue: BTreeSet<u64>,
    /// Monotone cursor: every TSN below it is gap-acked or no longer in
    /// `sent`, so earliest-unacked lookups skip the acked prefix and are
    /// amortized O(1) (`acked` never reverts to false).
    pub unacked_floor: u64,
    pub peer_rwnd: u64,
    /// CMT: destination of the most recent chunk assignment — the stripe's
    /// round-robin rotation cursor. Scheduling purely by "most open
    /// window" is bistable (cwnd only grows where data flows, so the
    /// leader absorbs the whole stripe); rotating over paths *with*
    /// headroom keeps equal paths in a 1/N split while still skipping
    /// paths whose cwnd is closed by recovery.
    pub cmt_last_path: u8,
    /// Consecutive unanswered timeouts/heartbeats across the whole
    /// association; reset by any acknowledged progress (RFC 4960 §8.1).
    pub assoc_errors: u32,
    pub t3_gen: u64,
    pub t3_armed: bool,
    /// Live T3-rtx timer, if one is scheduled. Rearms go through
    /// `Ctx::reschedule_in` so the superseded timer is ghost-cancelled (one
    /// wheel tombstone) instead of firing later as a checked no-op.
    pub t3_timer: Option<simcore::TimerId>,
    pub in_fast_recovery: bool,
    pub fast_recovery_exit: u64,
    /// RTT probe (tsn, never retransmitted) per Karn.
    pub rtt_probe: Option<u64>,

    // ---- receive ----
    pub cum_tsn: u64,
    pub rcv_have: RangeSet,
    pub in_streams: Vec<InStream>,
    pub rcvbuf_used: u64,
    pub sack_pending_pkts: u32,
    pub sack_immediate: bool,
    pub dup_since_sack: u32,
    pub sack_gen: u64,
    pub sack_armed: bool,
    /// Live delayed-SACK timer, ghost-cancelled when a SACK preempts it.
    pub sack_timer: Option<simcore::TimerId>,
    pub last_advertised_rwnd: u64,

    // ---- handshake / lifecycle ----
    pub init_retries: u32,
    pub init_gen: u64,
    /// When the (unretransmitted) INIT / COOKIE-ECHO went out.
    pub hs_sent_at: Option<SimTime>,
    pub cookie: Option<super::wire::Cookie>,
    pub shutdown_gen: u64,
    pub autoclose_gen: u64,
    pub last_traffic: SimTime,

    pub stats: AssocStats,
}

impl Assoc {
    pub(crate) fn new(
        cfg: &SctpCfg,
        local_port: u16,
        peer_host: u16,
        peer_port: u16,
        local_tag: u64,
        state: AssocState,
        init_tsn: u64,
    ) -> Self {
        assert!(
            cfg.num_paths as usize <= MAX_PATHS,
            "num_paths {} exceeds MAX_PATHS {MAX_PATHS}",
            cfg.num_paths
        );
        let paths = (0..cfg.num_paths).map(|i| PathState::new(i, cfg)).collect();
        let per_stream_q = cfg.interleave;
        let out_q = if per_stream_q {
            (0..cfg.out_streams).map(|_| VecDeque::new()).collect()
        } else {
            Vec::new()
        };
        Assoc {
            state,
            local_port,
            peer_port,
            peer_host,
            local_tag,
            peer_tag: 0,
            paths,
            primary: 0,
            next_tsn: init_tsn,
            out_ssn: vec![0; cfg.out_streams as usize],
            pending: VecDeque::new(),
            pending_bytes: 0,
            ext_flags: 0,
            per_stream_q,
            out_q,
            sched: cfg.sched.build(cfg.out_streams, &cfg.sched_weights),
            msg_seq: 0,
            sched_scratch: Vec::new(),
            peer_cum: init_tsn.saturating_sub(1),
            fwd_sent: 0,
            sent: BTreeMap::new(),
            outstanding_bytes: 0,
            rtx_queue: BTreeSet::new(),
            unacked_floor: init_tsn,
            peer_rwnd: cfg.rcvbuf,
            cmt_last_path: 0,
            assoc_errors: 0,
            t3_gen: 0,
            t3_armed: false,
            t3_timer: None,
            in_fast_recovery: false,
            fast_recovery_exit: 0,
            rtt_probe: None,
            cum_tsn: 0, // set when peer's init_tsn learned
            rcv_have: RangeSet::new(),
            in_streams: Vec::new(),
            rcvbuf_used: 0,
            sack_pending_pkts: 0,
            sack_immediate: false,
            dup_since_sack: 0,
            sack_gen: 0,
            sack_armed: false,
            sack_timer: None,
            last_advertised_rwnd: cfg.rcvbuf,
            init_retries: 0,
            init_gen: 0,
            hs_sent_at: None,
            cookie: None,
            shutdown_gen: 0,
            autoclose_gen: 0,
            last_traffic: SimTime::ZERO,
            stats: AssocStats::default(),
        }
    }

    /// Local address of path `p`.
    pub(crate) fn local_addr(&self, host: u16, p: u8) -> IfAddr {
        IfAddr::new(host, self.paths[p as usize].iface)
    }

    /// Peer address of path `p` (same-index interface; the networks are
    /// independent).
    pub(crate) fn peer_addr(&self, p: u8) -> IfAddr {
        IfAddr::new(self.peer_host, self.paths[p as usize].iface)
    }

    /// Receive window to advertise.
    pub(crate) fn a_rwnd(&self, rcvbuf: u64) -> u64 {
        rcvbuf.saturating_sub(self.rcvbuf_used)
    }

    /// Free send-buffer space.
    pub(crate) fn snd_space(&self, sndbuf: u64) -> u64 {
        sndbuf.saturating_sub(self.pending_bytes + self.outstanding_bytes)
    }

    /// Pick the retransmission path: an active alternate if allowed and
    /// available, else the primary.
    pub(crate) fn rtx_path(&self, rtx_alternate: bool) -> u8 {
        if rtx_alternate && self.paths.len() > 1 {
            if let Some((i, _)) = self
                .paths
                .iter()
                .enumerate()
                .find(|(i, p)| *i as u8 != self.primary && p.active)
            {
                return i as u8;
            }
        }
        self.primary
    }

    /// Interleaving was negotiated with this peer (I-DATA on the wire,
    /// scheduler live).
    pub(crate) fn interleaving(&self) -> bool {
        self.ext_flags & EXT_INTERLEAVE != 0
    }

    /// PR-SCTP was negotiated with this peer.
    pub(crate) fn pr_active(&self) -> bool {
        self.ext_flags & EXT_PR_SCTP != 0
    }

    /// True when no user fragment is queued for first transmission (both
    /// queue modes).
    pub(crate) fn q_is_empty(&self) -> bool {
        self.pending.is_empty() && self.out_q.iter().all(|q| q.is_empty())
    }

    /// Enqueue a fragment in whichever queue structure this association
    /// uses.
    pub(crate) fn q_push(&mut self, pc: PendingChunk) {
        if self.per_stream_q {
            let sid = pc.stream as usize;
            if self.out_q.len() <= sid {
                self.out_q.resize_with(sid + 1, VecDeque::new);
            }
            self.out_q[sid].push_back(pc);
        } else {
            self.pending.push_back(pc);
        }
    }

    /// Which stream the scheduler would serve next (`per_stream_q` mode).
    /// Deterministic and repeatable: queues unchanged ⇒ same answer, so
    /// the engine can gate (peek) several times before one pop. When the
    /// peer did not negotiate interleaving, FCFS is forced regardless of
    /// the configured policy so each message's fragments stay
    /// TSN-contiguous for the peer's sequential reassembler.
    pub(crate) fn sched_pick(&mut self) -> Option<u16> {
        self.sched_scratch.clear();
        for (sid, q) in self.out_q.iter().enumerate() {
            if let Some(front) = q.front() {
                self.sched_scratch.push(SchedCandidate {
                    sid: sid as u16,
                    front_seq: front.seq,
                    front_len: front.data.len() as u32,
                });
            }
        }
        if self.sched_scratch.is_empty() {
            return None;
        }
        let i = if self.interleaving() {
            self.sched.pick(&self.sched_scratch)
        } else {
            let mut best = 0;
            for (j, c) in self.sched_scratch.iter().enumerate().skip(1) {
                if c.front_seq < self.sched_scratch[best].front_seq {
                    best = j;
                }
            }
            best
        };
        Some(self.sched_scratch[i].sid)
    }

    /// Front fragment the next pop would take, with its stream id
    /// (`None` stream = legacy FIFO mode).
    pub(crate) fn q_front(&mut self) -> Option<(Option<u16>, &PendingChunk)> {
        if self.per_stream_q {
            let sid = self.sched_pick()?;
            self.out_q[sid as usize].front().map(|pc| (Some(sid), pc))
        } else {
            self.pending.front().map(|pc| (None, pc))
        }
    }

    /// Pop the fragment previously peeked via `q_front` and update the
    /// scheduler's accounting.
    pub(crate) fn q_pop(&mut self, sid: Option<u16>) -> Option<PendingChunk> {
        match sid {
            Some(s) => {
                let pc = self.out_q[s as usize].pop_front();
                if let Some(ref pc) = pc {
                    if self.interleaving() {
                        self.sched.on_send(s, pc.data.len() as u32);
                    }
                }
                pc
            }
            None => self.pending.pop_front(),
        }
    }

    /// Any fragment of a *different* stream currently queued? (The
    /// sender-side head-of-line condition at enqueue time; only evaluated
    /// when a tracer is attached.)
    pub(crate) fn other_stream_queued(&self, sid: u16) -> bool {
        if self.per_stream_q {
            self.out_q.iter().enumerate().any(|(i, q)| i != sid as usize && !q.is_empty())
        } else {
            self.pending.iter().any(|pc| pc.stream != sid)
        }
    }

    /// Any fragment of `sid` itself currently queued? A message enqueued
    /// behind its *own* stream's backlog waits the same under any
    /// scheduler (delivery is FIFO within a stream), so that wait is
    /// self-queueing, not head-of-line blocking — the sender-HOL trace
    /// only opens an episode for head-of-stream messages, where the wait
    /// is purely other streams' fragments holding the wire.
    pub(crate) fn own_stream_queued(&self, sid: u16) -> bool {
        if self.per_stream_q {
            !self.out_q[sid as usize].is_empty()
        } else {
            self.pending.iter().any(|pc| pc.stream == sid)
        }
    }

    /// PR-SCTP Advanced.Peer.Ack.Point: walk the contiguous `sent` prefix
    /// above the peer's cumulative ack while chunks are abandoned or
    /// already gap-acked. Returns the new cum point plus the (stream, MID)
    /// skip list — `None` unless at least one abandoned chunk makes a
    /// FORWARD-TSN worth sending.
    pub(crate) fn adv_peer_ack(&self) -> Option<(u64, Vec<(u16, u64)>)> {
        let mut point = self.peer_cum;
        let mut skips: Vec<(u16, u64)> = Vec::new();
        let mut any_abandoned = false;
        for (&tsn, c) in self.sent.range(self.peer_cum + 1..) {
            if tsn != point + 1 || !(c.abandoned || c.acked) {
                break;
            }
            point = tsn;
            if c.abandoned {
                any_abandoned = true;
                let entry = (c.stream, c.ssn as u64);
                if skips.last() != Some(&entry) && !skips.contains(&entry) {
                    skips.push(entry);
                }
            }
        }
        if any_abandoned && point > self.peer_cum {
            Some((point, skips))
        } else {
            None
        }
    }

    /// Ensure the inbound stream table covers `sid`.
    pub(crate) fn in_stream_mut(&mut self, sid: u16) -> &mut InStream {
        let need = sid as usize + 1;
        if self.in_streams.len() < need {
            self.in_streams.resize_with(need, InStream::default);
        }
        &mut self.in_streams[sid as usize]
    }
}

pub(crate) struct Endpoint {
    pub port: u16,
    #[allow(dead_code)] // kept for API parity with the socket styles (§2.1)
    pub one_to_many: bool,
    pub listening: bool,
    pub assocs: Vec<Assoc>,
    /// (peer_host, peer_port) → assoc index.
    pub by_peer: HashMap<(u16, u16), u32>,
    /// Endpoint-level delivery queue: messages in arrival order across all
    /// associations (the one-to-many receive model, §3.1 of the paper).
    pub deliver_q: VecDeque<RecvMsg>,
    pub readers: Vec<ProcId>,
    pub writers: Vec<ProcId>,
    pub bad_vtag_drops: u64,
    pub stale_cookie_drops: u64,
    pub bad_mac_drops: u64,
}

/// All SCTP state on one host.
pub struct SctpHost {
    /// Host-wide SCTP tuning (shared by every association).
    pub cfg: SctpCfg,
    pub(crate) eps: Vec<Endpoint>,
    pub(crate) by_port: HashMap<u16, u32>,
    /// Cookie-MAC secret (lazily drawn from the simulation RNG).
    pub(crate) secret: Option<u64>,
}

impl SctpHost {
    /// A host-wide SCTP stack with no endpoints yet.
    pub fn new(cfg: SctpCfg) -> Self {
        SctpHost { cfg, eps: Vec::new(), by_port: HashMap::new(), secret: None }
    }

    /// Aggregate stats across every association on this host.
    pub fn total_stats(&self) -> AssocStats {
        let mut t = AssocStats::default();
        for ep in &self.eps {
            for a in &ep.assocs {
                let s = a.stats;
                t.packets_out += s.packets_out;
                t.packets_in += s.packets_in;
                t.data_chunks_out += s.data_chunks_out;
                t.data_chunks_in += s.data_chunks_in;
                t.bytes_out += s.bytes_out;
                t.bytes_in += s.bytes_in;
                t.retransmits += s.retransmits;
                t.fast_retransmits += s.fast_retransmits;
                t.timeouts += s.timeouts;
                t.dup_tsns_in += s.dup_tsns_in;
                t.sacks_out += s.sacks_out;
                t.sacks_in += s.sacks_in;
                t.msgs_delivered += s.msgs_delivered;
                t.failovers += s.failovers;
                for (i, &n) in s.per_path_pkts.iter().enumerate() {
                    t.per_path_pkts[i] += n;
                }
                t.spurious_frtx += s.spurious_frtx;
                t.rescue_rtx += s.rescue_rtx;
                t.msgs_abandoned += s.msgs_abandoned;
                t.fwd_tsn_out += s.fwd_tsn_out;
                t.fwd_tsn_in += s.fwd_tsn_in;
                if s.first_failover_ns != 0
                    && (t.first_failover_ns == 0 || s.first_failover_ns < t.first_failover_ns)
                {
                    t.first_failover_ns = s.first_failover_ns;
                }
            }
        }
        t
    }

    /// Total verification-tag / cookie drops (security counters).
    pub fn security_drops(&self) -> (u64, u64, u64) {
        let mut v = (0, 0, 0);
        for ep in &self.eps {
            v.0 += ep.bad_vtag_drops;
            v.1 += ep.bad_mac_drops;
            v.2 += ep.stale_cookie_drops;
        }
        v
    }
}
