//! SCTP wire format: the common header, chunks, and the signed state
//! cookie (RFC 4960 §3, §5.1.3).
//!
//! Sizes are modelled faithfully (common header 12 B, DATA chunk header
//! 16 B, etc.) so that bundling and PMTU behaviour match the real protocol;
//! field encodings are kept as typed Rust values rather than byte blobs —
//! the simulator never needs to parse untrusted bytes, only to account for
//! them. TSNs and tags are widened to `u64` (no wraparound bookkeeping;
//! orthogonal to everything the paper measures).

use bytes::Bytes;
use simcore::SimTime;

/// A DATA chunk: one fragment of one user message on one stream.
#[derive(Debug, Clone)]
pub struct DataChunk {
    /// Transmission sequence number.
    pub tsn: u64,
    /// Stream the fragment belongs to.
    pub stream: u16,
    /// Stream sequence number (u32: the real u16 wraps, we don't).
    pub ssn: u32,
    /// First fragment of its user message (B bit).
    pub begin: bool,
    /// Last fragment of its user message (E bit).
    pub end: bool,
    /// Unordered delivery (U bit).
    pub unordered: bool,
    /// Payload protocol identifier — passed through opaquely (the paper
    /// §2.3 suggests mapping MPI contexts onto it).
    pub ppid: u32,
    /// Fragment payload.
    pub data: Bytes,
}

/// An I-DATA chunk (RFC 8260): one fragment of one user message on one
/// stream, interleavable with fragments of *other* messages because the
/// fragment sequence number (FSN) — not TSN adjacency — names its position
/// within the message.
#[derive(Debug, Clone)]
pub struct IDataChunk {
    /// Transmission sequence number.
    pub tsn: u64,
    /// Stream the fragment belongs to.
    pub stream: u16,
    /// Message identifier: replaces the SSN for ordering; per-stream,
    /// assigned at `sendmsg` time (u64: the real u32 wraps, we don't).
    pub mid: u64,
    /// Fragment sequence number within the message (0 for the first
    /// fragment; the real chunk carries the PPID in this slot when B=1).
    pub fsn: u32,
    /// First fragment of its user message (B bit).
    pub begin: bool,
    /// Last fragment of its user message (E bit).
    pub end: bool,
    /// Unordered delivery (U bit).
    pub unordered: bool,
    /// Payload protocol identifier — carried on the B fragment.
    pub ppid: u32,
    /// Fragment payload.
    pub data: Bytes,
}

/// Extension bit: peer supports RFC 8260 I-DATA (negotiated via the INIT /
/// INIT-ACK supported-extensions parameter).
pub const EXT_INTERLEAVE: u8 = 0x01;
/// Extension bit: peer supports RFC 3758 PR-SCTP (FORWARD-TSN).
pub const EXT_PR_SCTP: u8 = 0x02;

/// The state cookie carried in INIT-ACK and echoed in COOKIE-ECHO. Signed
/// with the listener's secret so that no state is allocated until the
/// initiator proves reachability (§3.5.2 of the paper).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Cookie {
    /// Initiator's host.
    pub peer_host: u16,
    /// Initiator's port.
    pub peer_port: u16,
    /// Listener's port.
    pub local_port: u16,
    /// Tag the initiator chose (we send packets to it with this tag).
    pub peer_tag: u64,
    /// Tag we chose for ourselves.
    pub local_tag: u64,
    /// Initiator's advertised receive window.
    pub peer_rwnd: u64,
    /// Initiator's initial TSN.
    pub peer_init_tsn: u64,
    /// Listener's initial TSN.
    pub my_init_tsn: u64,
    /// Negotiated outbound stream count.
    pub out_streams: u16,
    /// Negotiated inbound stream count.
    pub in_streams: u16,
    /// Issue instant (staleness check).
    pub created_at: SimTime,
    /// Negotiated extension set ([`EXT_INTERLEAVE`] | [`EXT_PR_SCTP`]):
    /// the intersection of both sides' supported-extensions offers, packed
    /// into the cookie's existing wire padding (COOKIE_WIRE_LEN unchanged).
    pub ext_flags: u8,
    /// MAC over all fields under the listener's secret.
    pub mac: u64,
}

impl Cookie {
    /// Compute the MAC for this cookie's fields under `secret`.
    pub fn compute_mac(&self, secret: u64) -> u64 {
        // A simple keyed mix — stands in for HMAC; unforgeable within the
        // simulation because the secret never leaves the host.
        let mut h = secret ^ 0x6a09_e667_f3bc_c908;
        for v in [
            self.peer_host as u64,
            self.peer_port as u64,
            self.local_port as u64,
            self.peer_tag,
            self.local_tag,
            self.peer_rwnd,
            self.peer_init_tsn,
            self.my_init_tsn,
            self.out_streams as u64,
            self.in_streams as u64,
            self.created_at.as_nanos(),
        ] {
            h ^= v.wrapping_mul(0x9E37_79B9_7F4A_7C15);
            h = h.rotate_left(23).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        }
        // Mixed only when an extension is negotiated: legacy cookies (and
        // the goldens capturing them) keep their exact MAC bytes.
        if self.ext_flags != 0 {
            h ^= (self.ext_flags as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15);
            h = h.rotate_left(23).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        }
        h
    }

    /// Sign the cookie under `secret`, filling `mac`.
    pub fn sign(mut self, secret: u64) -> Cookie {
        self.mac = 0;
        self.mac = self.compute_mac(secret);
        self
    }

    /// Check `mac` against `secret`.
    pub fn verify(&self, secret: u64) -> bool {
        let mut c = *self;
        c.mac = 0;
        c.compute_mac(secret) == self.mac
    }
}

/// An SCTP chunk.
#[derive(Debug, Clone)]
pub enum Chunk {
    /// A DATA chunk (one message fragment).
    Data(DataChunk),
    /// An I-DATA chunk (RFC 8260 interleavable fragment).
    IData(IDataChunk),
    /// FORWARD-TSN (RFC 3758 / RFC 8260 §2.3.1 I-FORWARD-TSN): tells the
    /// receiver to advance its cumulative TSN past abandoned chunks, with
    /// per-stream skip entries naming the highest abandoned MID (or SSN in
    /// non-interleaved mode) so partial reassemblies can be discarded.
    ForwardTsn {
        /// New cumulative TSN the receiver should jump to.
        new_cum: u64,
        /// Per-stream skips: (stream id, highest abandoned MID/SSN).
        skips: Vec<(u16, u64)>,
    },
    /// Selective acknowledgment.
    Sack {
        /// Cumulative TSN ack.
        cum_tsn: u64,
        /// Advertised receiver window.
        a_rwnd: u64,
        /// Gap-ack blocks, absolute `[start, end)` — unlike TCP's SACK
        /// option, the count is bounded only by the PMTU (§4.1.1).
        gaps: Vec<(u64, u64)>,
        /// Count of duplicate TSNs seen since the last SACK.
        dup_count: u32,
    },
    /// Association initiation (first handshake leg).
    Init {
        /// Tag the peer must echo in every packet to us.
        init_tag: u64,
        /// Our advertised receive window.
        a_rwnd: u64,
        /// Outbound streams we request.
        out_streams: u16,
        /// Inbound streams we accept.
        in_streams: u16,
        /// Our initial TSN.
        init_tsn: u64,
        /// Extensions we support ([`EXT_INTERLEAVE`] | [`EXT_PR_SCTP`]);
        /// 0 = legacy INIT with no supported-extensions parameter (and the
        /// exact pre-extension wire size).
        ext_flags: u8,
    },
    /// Listener's reply to INIT (second handshake leg).
    InitAck {
        /// Tag the initiator must echo back to the listener.
        init_tag: u64,
        /// Listener's advertised receive window.
        a_rwnd: u64,
        /// Outbound streams granted.
        out_streams: u16,
        /// Inbound streams granted.
        in_streams: u16,
        /// Listener's initial TSN.
        init_tsn: u64,
        /// Extensions the listener supports (see [`EXT_INTERLEAVE`]).
        ext_flags: u8,
        /// Signed state cookie (no listener state allocated yet).
        cookie: Cookie,
    },
    /// Initiator echoes the cookie (third handshake leg).
    CookieEcho {
        /// The cookie from INIT-ACK, returned verbatim.
        cookie: Cookie,
    },
    /// Listener confirms the cookie (fourth handshake leg).
    CookieAck,
    /// Path liveness probe.
    Heartbeat {
        /// Path index being probed.
        path: u8,
        /// Random nonce echoed by the ACK.
        nonce: u64,
    },
    /// Heartbeat reply.
    HeartbeatAck {
        /// Path index probed.
        path: u8,
        /// Nonce from the heartbeat.
        nonce: u64,
    },
    /// Orderly shutdown request.
    Shutdown {
        /// Sender's cumulative TSN ack.
        cum_tsn: u64,
    },
    /// Shutdown acknowledgment.
    ShutdownAck,
    /// Final leg of orderly shutdown.
    ShutdownComplete,
    /// Unrecoverable error; association torn down.
    Abort,
}

impl Chunk {
    /// Wire size of this chunk (header + value, 4-byte padded).
    pub fn wire_len(&self) -> u32 {
        let raw = match self {
            Chunk::Data(d) => 16 + d.data.len() as u32,
            // RFC 8260 §2.1: I-DATA header is 20 B (TSN, sid, reserved,
            // MID, then PPID/FSN) vs DATA's 16.
            Chunk::IData(d) => 20 + d.data.len() as u32,
            // Type/flags/len (4) + new cum TSN (4) + 8 B per skip entry
            // (sid, reserved, MID — the I-FORWARD-TSN layout).
            Chunk::ForwardTsn { skips, .. } => 8 + 8 * skips.len() as u32,
            Chunk::Sack { gaps, .. } => 16 + 4 * gaps.len() as u32,
            // A supported-extensions parameter adds 8 B — only when the
            // sender actually offers extensions, so legacy INITs keep
            // their exact pre-extension size.
            Chunk::Init { ext_flags, .. } => 20 + if *ext_flags != 0 { 8 } else { 0 },
            Chunk::InitAck { ext_flags, .. } => {
                20 + COOKIE_WIRE_LEN + if *ext_flags != 0 { 8 } else { 0 }
            }
            Chunk::CookieEcho { .. } => 4 + COOKIE_WIRE_LEN,
            Chunk::CookieAck => 4,
            Chunk::Heartbeat { .. } | Chunk::HeartbeatAck { .. } => 4 + 8,
            Chunk::Shutdown { .. } => 8,
            Chunk::ShutdownAck | Chunk::ShutdownComplete | Chunk::Abort => 4,
        };
        raw.div_ceil(4) * 4
    }
}

/// Serialized size of the state cookie.
pub const COOKIE_WIRE_LEN: u32 = 76;

/// SCTP common header size.
pub const COMMON_HEADER: u32 = 12;

/// An SCTP packet: common header + bundled chunks.
#[derive(Debug)]
pub struct SctpPacket {
    /// Sending port.
    pub src_port: u16,
    /// Receiving port.
    pub dst_port: u16,
    /// Verification tag: must equal the receiver's local tag (except INIT).
    pub vtag: u64,
    /// Bundled chunks, control before data.
    pub chunks: Vec<Chunk>,
}

impl SctpPacket {
    /// Wire size: common header plus every bundled chunk.
    pub fn wire_len(&self) -> u32 {
        COMMON_HEADER + self.chunks.iter().map(|c| c.wire_len()).sum::<u32>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cookie() -> Cookie {
        Cookie {
            peer_host: 1,
            peer_port: 7000,
            local_port: 7000,
            peer_tag: 0xAAAA,
            local_tag: 0xBBBB,
            peer_rwnd: 220 * 1024,
            peer_init_tsn: 1,
            my_init_tsn: 1,
            out_streams: 10,
            in_streams: 10,
            created_at: SimTime::from_nanos(42),
            ext_flags: 0,
            mac: 0,
        }
    }

    #[test]
    fn cookie_sign_verify_roundtrip() {
        let c = cookie().sign(123);
        assert!(c.verify(123));
        assert!(!c.verify(124), "wrong secret must fail");
    }

    #[test]
    fn cookie_tamper_detected() {
        let mut c = cookie().sign(123);
        c.peer_tag ^= 1;
        assert!(!c.verify(123), "forged field must invalidate the MAC");
    }

    #[test]
    fn chunk_sizes_padded_to_four() {
        let d = Chunk::Data(DataChunk {
            tsn: 1,
            stream: 0,
            ssn: 0,
            begin: true,
            end: true,
            unordered: false,
            ppid: 0,
            data: Bytes::from_static(b"xyz"),
        });
        assert_eq!(d.wire_len(), 20, "16 hdr + 3 data padded to 20");
        assert_eq!(Chunk::CookieAck.wire_len(), 4);
        let s = Chunk::Sack { cum_tsn: 5, a_rwnd: 1, gaps: vec![(7, 9), (12, 13)], dup_count: 0 };
        assert_eq!(s.wire_len(), 24);
    }

    #[test]
    fn idata_and_fwd_tsn_sizes() {
        let i = Chunk::IData(IDataChunk {
            tsn: 1,
            stream: 0,
            mid: 0,
            fsn: 0,
            begin: true,
            end: true,
            unordered: false,
            ppid: 0,
            data: Bytes::from_static(b"xyz"),
        });
        assert_eq!(i.wire_len(), 24, "20 hdr + 3 data padded to 24");
        let f = Chunk::ForwardTsn { new_cum: 9, skips: vec![(0, 3), (2, 1)] };
        assert_eq!(f.wire_len(), 8 + 16);
        assert_eq!(Chunk::ForwardTsn { new_cum: 9, skips: vec![] }.wire_len(), 8);
    }

    #[test]
    fn ext_flags_grow_init_only_when_offered() {
        let legacy = Chunk::Init {
            init_tag: 1,
            a_rwnd: 1,
            out_streams: 10,
            in_streams: 10,
            init_tsn: 1,
            ext_flags: 0,
        };
        assert_eq!(legacy.wire_len(), 20, "no extensions: pre-8260 size");
        let ext = Chunk::Init {
            init_tag: 1,
            a_rwnd: 1,
            out_streams: 10,
            in_streams: 10,
            init_tsn: 1,
            ext_flags: EXT_INTERLEAVE | EXT_PR_SCTP,
        };
        assert_eq!(ext.wire_len(), 28, "supported-extensions param adds 8");
    }

    #[test]
    fn cookie_mac_ignores_zero_ext_flags() {
        // A zero ext_flags cookie must keep the exact legacy MAC: mixing
        // the new field unconditionally would invalidate golden captures.
        let c = cookie().sign(123);
        let mut with_ext = cookie();
        with_ext.ext_flags = EXT_INTERLEAVE;
        let with_ext = with_ext.sign(123);
        assert!(c.verify(123));
        assert!(with_ext.verify(123));
        assert_ne!(c.mac, with_ext.mac, "flags participate when nonzero");
    }

    #[test]
    fn packet_size_sums_chunks() {
        let p = SctpPacket {
            src_port: 1,
            dst_port: 2,
            vtag: 9,
            chunks: vec![Chunk::CookieAck, Chunk::ShutdownAck],
        };
        assert_eq!(p.wire_len(), 12 + 4 + 4);
    }
}
