//! The IP layer: turns protocol segments into scheduled network deliveries.
//!
//! `send` asks the network for a delivery verdict and, on success, schedules
//! the matching `deliver` event, which demultiplexes on protocol back into
//! the TCP or SCTP input routines.
//!
//! `send_train` is the burst path: K back-to-back packets to one peer are
//! offered to the network in one [`netsim::Net::transmit_burst`] call and the
//! survivors delivered through **one** scheduled event that walks the train,
//! advancing the clock inline between per-packet arrival instants
//! ([`simcore::Ctx::try_advance_to`]). The fusion is invisible to the
//! protocols: packet j's delivery runs at exactly its arrival time, under
//! exactly the (time, seq) fire-order position its own per-packet event
//! would have had — the head event reserves one sequence number per
//! surviving packet, and whenever an inline advance would reorder against a
//! foreign event or a wake, the rest of the train falls back to a real
//! event carrying its reserved seq. Under the reference discipline
//! (`SIM_CHECK=1`) trains degrade to per-packet sends outright.

use std::collections::VecDeque;

use netsim::{DropReason, IfAddr, Verdict};
use simcore::SimTime;

use crate::{sctp, tcp, wire_bytes, World, Wx};

/// Offer `pkt` to the installed [`crate::backend::Backend`].
///
/// The backend is moved out of the world for the duration of the call (a
/// pointer move, not an allocation) so the driver gets `&mut World` without
/// aliasing itself; it is restored before returning. Backends are leaves —
/// they never re-enter this function — so the take can only fail on a
/// misbehaving driver, which is a programming error worth a loud stop.
pub fn send(w: &mut World, ctx: &mut Wx, pkt: Packet) {
    let mut b = w.backend.take().expect("backend re-entered ip::send from its own dispatch");
    b.send(w, ctx, pkt);
    w.backend = Some(b);
}

/// Offer a train of back-to-back packets (one source, one destination) to
/// the installed backend. Same take/restore discipline as [`send`].
pub fn send_train(w: &mut World, ctx: &mut Wx, pkts: Vec<Packet>) {
    let mut b = w.backend.take().expect("backend re-entered ip::send_train from its own dispatch");
    b.send_train(w, ctx, pkts);
    w.backend = Some(b);
}

/// Dispatch an already-arrived packet straight into the protocol input
/// routines, bypassing the network. This is the ingress half of a real-I/O
/// backend: the reactor polls decoded frames out of the driver and feeds
/// them here, with the backend back in the world so input handlers can
/// transmit replies.
pub fn deliver_now(w: &mut World, ctx: &mut Wx, pkt: Packet) {
    deliver(w, ctx, pkt);
}

/// IPv4 header size (no options).
pub const IP_HEADER: u32 = 20;

/// A protocol payload inside an IP packet.
#[derive(Debug)]
pub enum Proto {
    /// A TCP segment.
    Tcp(tcp::TcpSegment),
    /// An SCTP packet (common header + bundled chunks).
    Sctp(sctp::SctpPacket),
}

impl Proto {
    fn wire_len(&self) -> u32 {
        match self {
            Proto::Tcp(s) => s.wire_len(),
            Proto::Sctp(p) => p.wire_len(),
        }
    }
}

/// An IP packet in flight.
#[derive(Debug)]
pub struct Packet {
    /// Sending interface.
    pub src: IfAddr,
    /// Receiving interface (same network index as `src`).
    pub dst: IfAddr,
    /// Protocol payload.
    pub body: Proto,
}

/// Flight-recorder capture of one packet, built *before* the network's
/// verdict so the serialized frame reflects exactly what was offered.
pub(crate) struct PktCapture {
    frame: Vec<u8>,
    frame_orig_len: u32,
    proto: trace::Proto8,
    kind: trace::PktKind,
    tsn: u64,
    ntsn: u32,
    stream: i32,
}

pub(crate) fn capture(ctx: &Wx, pkt: &Packet) -> Option<PktCapture> {
    let tracer = ctx.tracer()?;
    let (frame, frame_orig_len) = wire_bytes::capture_frame(pkt, ctx.now().as_nanos(), tracer.snaplen());
    let (proto, kind, tsn, ntsn, stream) = wire_bytes::pkt_meta(&pkt.body);
    Some(PktCapture { frame, frame_orig_len, proto, kind, tsn, ntsn, stream })
}

pub(crate) fn emit_pkt(ctx: &Wx, src: IfAddr, dst: IfAddr, wire_len: u32, verdict: Verdict, cap: PktCapture) {
    let verdict = match verdict {
        Verdict::Deliver { at } => trace::PktVerdict::Deliver { at_ns: at.as_nanos() },
        Verdict::Drop(DropReason::Loss) => trace::PktVerdict::Drop(trace::DropKind::Loss),
        Verdict::Drop(DropReason::QueueFull) => trace::PktVerdict::Drop(trace::DropKind::QueueFull),
        Verdict::Drop(DropReason::LinkDown) => trace::PktVerdict::Drop(trace::DropKind::LinkDown),
    };
    ctx.trace_emit(trace::Event::Pkt(trace::PktEv {
        src_host: src.host,
        src_if: src.iface,
        dst_host: dst.host,
        dst_if: dst.iface,
        proto: cap.proto,
        kind: cap.kind,
        wire_len,
        verdict,
        tsn: cap.tsn,
        ntsn: cap.ntsn,
        stream: cap.stream,
        frame: cap.frame,
        frame_orig_len: cap.frame_orig_len,
    }));
}

/// Offer `pkt` to the simulated network; schedule delivery if it survives.
/// This is [`crate::backend::SimBackend`]'s egress path — the pre-backend
/// `ip::send`, verbatim.
pub(crate) fn sim_send(w: &mut World, ctx: &mut Wx, pkt: Packet) {
    let size = IP_HEADER + pkt.body.wire_len();
    let cap = capture(ctx, &pkt);
    let verdict = w.net.transmit(ctx.now(), pkt.src, pkt.dst, size, &mut ctx.rng);
    if let Some(cap) = cap {
        emit_pkt(ctx, pkt.src, pkt.dst, size, verdict, cap);
    }
    match verdict {
        Verdict::Deliver { at } => {
            ctx.schedule_at(at, move |w: &mut World, ctx: &mut Wx| deliver(w, ctx, pkt));
        }
        Verdict::Drop(_) => { /* the network recorded the drop */ }
    }
}

fn deliver(w: &mut World, ctx: &mut Wx, pkt: Packet) {
    match pkt.body {
        Proto::Tcp(seg) => tcp::input(w, ctx, pkt.src, pkt.dst, seg),
        Proto::Sctp(p) => sctp::input(w, ctx, pkt.src, pkt.dst, p),
    }
}

/// Offer a train of back-to-back packets (one source, one destination) to
/// the network and schedule delivery of the survivors as one fused event.
///
/// Exactly equivalent to `pkts.len()` sequential [`sim_send`] calls: same
/// RNG draw order, same verdicts, same per-packet delivery instants, same
/// (time, seq) fire positions, same `events_fired` count.
pub(crate) fn sim_send_train(w: &mut World, ctx: &mut Wx, mut pkts: Vec<Packet>) {
    if pkts.len() < 2 || ctx.is_reference() {
        for pkt in pkts.drain(..) {
            sim_send(w, ctx, pkt);
        }
        w.pool.put_packet_vec(pkts);
        return;
    }
    let (src, dst) = (pkts[0].src, pkts[0].dst);
    debug_assert!(
        pkts.iter().all(|p| p.src == src && p.dst == dst),
        "a train must not cross a peer boundary"
    );
    let mut sizes = w.pool.take_size_vec();
    sizes.extend(pkts.iter().map(|p| IP_HEADER + p.body.wire_len()));
    let caps: Option<Vec<PktCapture>> = if ctx.tracing() {
        Some(pkts.iter().map(|p| capture(ctx, p).expect("tracer present")).collect())
    } else {
        None
    };
    let mut verdicts = w.pool.take_verdict_vec();
    w.net.transmit_burst_into(ctx.now(), src, dst, &sizes, &mut ctx.rng, &mut verdicts);
    if let Some(caps) = caps {
        for ((cap, &v), &size) in caps.into_iter().zip(&verdicts).zip(&sizes) {
            emit_pkt(ctx, src, dst, size, v, cap);
        }
    }
    let mut train = w.pool.take_train();
    for (pkt, v) in pkts.drain(..).zip(verdicts.iter()) {
        match *v {
            Verdict::Deliver { at } => train.push_back((at, pkt)),
            Verdict::Drop(_) => {} // the network recorded the drop
        }
    }
    w.pool.put_size_vec(sizes);
    w.pool.put_verdict_vec(verdicts);
    w.pool.put_packet_vec(pkts);
    // A fault boundary splits the train: delay jitter can hand later train
    // members *earlier* arrival instants, and the fused walk below requires
    // monotone arrivals. Degrading to one event per survivor is exactly what
    // per-packet `send` would have scheduled (same order, same seq draws).
    if train.iter().zip(train.iter().skip(1)).any(|(a, b)| b.0 < a.0) {
        for (at, pkt) in train.drain(..) {
            ctx.schedule_at(at, move |w: &mut World, ctx: &mut Wx| deliver(w, ctx, pkt));
        }
        w.pool.put_train(train);
        return;
    }
    match train.len() {
        0 | 1 => {
            if let Some((at, pkt)) = train.pop_front() {
                ctx.schedule_at(at, move |w: &mut World, ctx: &mut Wx| deliver(w, ctx, pkt));
            }
            w.pool.put_train(train);
        }
        k => {
            ctx.note_burst(k as u64);
            // The head event owns the first survivor's seq and reserves one
            // more per remaining survivor — the seqs k per-packet
            // `schedule_at` calls would have drawn (drops allocate none).
            let at0 = train.front().unwrap().0;
            let base = ctx.next_seq();
            let got = ctx.schedule_train_at(at0, (k - 1) as u64, move |w, ctx| {
                deliver_train(w, ctx, train, base)
            });
            debug_assert_eq!(got, base);
        }
    }
}

/// Deliver the train's packets in sequence, each at its own arrival instant,
/// advancing the clock inline when legal and falling back to a real event
/// (with the packet's reserved seq) when not. `seq` is the front packet's
/// reserved sequence number.
fn deliver_train(w: &mut World, ctx: &mut Wx, mut train: VecDeque<(SimTime, Packet)>, mut seq: u64) {
    while let Some((_, pkt)) = train.pop_front() {
        deliver(w, ctx, pkt);
        seq += 1;
        let Some(&(next_at, _)) = train.front() else { break };
        if !ctx.try_advance_to(next_at, seq) {
            // A wake or an earlier-ordered event intervenes: the rest of the
            // train becomes a real event in its reserved fire position.
            ctx.schedule_at_seq(next_at, seq, move |w: &mut World, ctx: &mut Wx| {
                deliver_train(w, ctx, train, seq)
            });
            return;
        }
    }
    w.pool.put_train(train);
}
