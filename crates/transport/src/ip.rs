//! The IP layer: turns protocol segments into scheduled network deliveries.
//!
//! `send` asks the network for a delivery verdict and, on success, schedules
//! the matching `deliver` event, which demultiplexes on protocol back into
//! the TCP or SCTP input routines.

use netsim::{IfAddr, Verdict};

use crate::{sctp, tcp, World, Wx};

/// IPv4 header size (no options).
pub const IP_HEADER: u32 = 20;

/// A protocol payload inside an IP packet.
#[derive(Debug)]
pub enum Proto {
    Tcp(tcp::TcpSegment),
    Sctp(sctp::SctpPacket),
}

impl Proto {
    fn wire_len(&self) -> u32 {
        match self {
            Proto::Tcp(s) => s.wire_len(),
            Proto::Sctp(p) => p.wire_len(),
        }
    }
}

/// An IP packet in flight.
#[derive(Debug)]
pub struct Packet {
    pub src: IfAddr,
    pub dst: IfAddr,
    pub body: Proto,
}

/// Offer `pkt` to the network; schedule delivery if it survives.
pub fn send(w: &mut World, ctx: &mut Wx, pkt: Packet) {
    let size = IP_HEADER + pkt.body.wire_len();
    match w.net.transmit(ctx.now(), pkt.src, pkt.dst, size, &mut ctx.rng) {
        Verdict::Deliver { at } => {
            ctx.schedule_at(at, move |w: &mut World, ctx: &mut Wx| deliver(w, ctx, pkt));
        }
        Verdict::Drop(_) => { /* the network recorded the drop */ }
    }
}

fn deliver(w: &mut World, ctx: &mut Wx, pkt: Packet) {
    match pkt.body {
        Proto::Tcp(seg) => tcp::input(w, ctx, pkt.src, pkt.dst, seg),
        Proto::Sctp(p) => sctp::input(w, ctx, pkt.src, pkt.dst, p),
    }
}
