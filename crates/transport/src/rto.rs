//! Retransmission-timeout estimation (RFC 6298 / RFC 4960 §6.3).
//!
//! Both TCP and SCTP use the same SRTT/RTTVAR estimator; they differ in the
//! parameters: minimum/initial/maximum RTO and — crucially for the era the
//! paper measures — *timer granularity*. 4.4BSD-lineage TCP kept its
//! retransmit timer on a coarse tick, which quantizes RTO upward; the KAME
//! SCTP stack used fine-grained timers. Both effects are modelled here.

use simcore::Dur;

/// Estimator parameters.
#[derive(Debug, Clone, Copy)]
pub struct RtoCfg {
    /// RTO before the first RTT sample (RFC 6298: 1 s; era stacks: 3 s).
    pub initial: Dur,
    /// Lower clamp on the computed RTO.
    pub min: Dur,
    /// Upper clamp on the computed RTO.
    pub max: Dur,
    /// RTO values are rounded up to a multiple of this (0 = exact timers).
    pub granularity: Dur,
    /// RTT *samples* are rounded up to a multiple of this before feeding
    /// the estimator — 4.4BSD-lineage stacks measured RTT in coarse timer
    /// ticks, which inflates SRTT/RTTVAR (and hence RTO) on a LAN.
    pub rtt_quantum: Dur,
}

impl RtoCfg {
    /// Era BSD TCP: RTO.init 3 s, min 1 s, max 64 s, 500 ms ticks.
    pub fn bsd_tcp() -> Self {
        RtoCfg {
            initial: Dur::from_secs(3),
            min: Dur::from_secs(1),
            max: Dur::from_secs(64),
            granularity: Dur::from_millis(500),
            rtt_quantum: Dur::from_millis(500),
        }
    }

    /// KAME SCTP: RTO.init 3 s, RTO.min 1 s, RTO.max 60 s, fine timers.
    pub fn kame_sctp() -> Self {
        RtoCfg {
            initial: Dur::from_secs(3),
            min: Dur::from_secs(1),
            max: Dur::from_secs(60),
            granularity: Dur::from_millis(10),
            rtt_quantum: Dur::ZERO,
        }
    }
}

/// SRTT/RTTVAR state plus exponential backoff.
#[derive(Debug, Clone, Copy)]
pub struct RtoEstimator {
    cfg: RtoCfg,
    srtt: Option<Dur>,
    rttvar: Dur,
    rto: Dur,
    backoff_shift: u32,
}

impl RtoEstimator {
    /// A fresh estimator with no RTT samples yet.
    pub fn new(cfg: RtoCfg) -> Self {
        RtoEstimator { cfg, srtt: None, rttvar: Dur::ZERO, rto: cfg.initial, backoff_shift: 0 }
    }

    /// Feed a round-trip measurement from a *never-retransmitted* segment
    /// (Karn's rule: callers must not sample retransmissions). Clears any
    /// backoff.
    pub fn sample(&mut self, rtt: Dur) {
        let rtt = rtt.round_up_to(self.cfg.rtt_quantum);
        match self.srtt {
            None => {
                self.srtt = Some(rtt);
                self.rttvar = rtt / 2;
            }
            Some(srtt) => {
                // RTTVAR = 3/4 RTTVAR + 1/4 |SRTT - RTT|
                let err = if srtt > rtt { srtt - rtt } else { rtt - srtt };
                self.rttvar = self.rttvar * 3 / 4 + err / 4;
                // SRTT = 7/8 SRTT + 1/8 RTT
                self.srtt = Some(srtt * 7 / 8 + rtt / 8);
            }
        }
        let srtt = self.srtt.unwrap();
        // RTO = SRTT + max(G, 4*RTTVAR); we fold G in via rounding below.
        self.rto = srtt + self.rttvar * 4;
        self.backoff_shift = 0;
    }

    /// Double the RTO after a timeout (Karn's backoff), capped at max.
    pub fn backoff(&mut self) {
        if self.backoff_shift < 16 {
            self.backoff_shift += 1;
        }
    }

    /// Number of consecutive backoffs applied since the last valid sample.
    pub fn backoff_shift(&self) -> u32 {
        self.backoff_shift
    }

    /// The RTO to arm a retransmission timer with, after clamping, backoff,
    /// and granularity rounding.
    pub fn current(&self) -> Dur {
        let base = self.rto.max(self.cfg.min).min(self.cfg.max);
        let backed = base.saturating_mul(1u64 << self.backoff_shift.min(16)).min(self.cfg.max);
        backed.round_up_to(self.cfg.granularity)
    }

    /// True if no RTT sample has been taken yet.
    pub fn is_initial(&self) -> bool {
        self.srtt.is_none()
    }

    /// Smoothed RTT, if measured (diagnostics).
    pub fn srtt(&self) -> Option<Dur> {
        self.srtt
    }

    /// Smoothed RTT variance (diagnostics).
    pub fn rttvar(&self) -> Dur {
        self.rttvar
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn initial_rto_is_configured() {
        let e = RtoEstimator::new(RtoCfg::bsd_tcp());
        assert_eq!(e.current(), Dur::from_secs(3));
        assert!(e.is_initial());
    }

    #[test]
    fn first_sample_sets_srtt() {
        let mut e = RtoEstimator::new(RtoCfg::kame_sctp());
        e.sample(Dur::from_millis(100));
        assert_eq!(e.srtt(), Some(Dur::from_millis(100)));
        // RTO = 100ms + 4*50ms = 300ms, clamped up to min 1s.
        assert_eq!(e.current(), Dur::from_secs(1));
    }

    #[test]
    fn lan_rtts_clamp_to_min() {
        let mut e = RtoEstimator::new(RtoCfg::kame_sctp());
        for _ in 0..50 {
            e.sample(Dur::from_micros(120));
        }
        assert_eq!(e.current(), Dur::from_secs(1), "RTO.min dominates on a LAN");
    }

    #[test]
    fn backoff_doubles_and_caps() {
        let mut e = RtoEstimator::new(RtoCfg::kame_sctp());
        e.sample(Dur::from_millis(100)); // rto -> 1s after clamping
        e.backoff();
        assert_eq!(e.current(), Dur::from_secs(2));
        e.backoff();
        assert_eq!(e.current(), Dur::from_secs(4));
        for _ in 0..10 {
            e.backoff();
        }
        assert_eq!(e.current(), Dur::from_secs(60), "capped at RTO.max");
        // A fresh sample clears the backoff (Karn).
        e.sample(Dur::from_millis(100));
        assert_eq!(e.current(), Dur::from_secs(1));
    }

    #[test]
    fn coarse_granularity_rounds_up() {
        let mut e = RtoEstimator::new(RtoCfg::bsd_tcp());
        // Make srtt large enough to exceed min: 1.2s + 4*~0.6s ≈ > 1s.
        e.sample(Dur::from_millis(1100));
        let rto = e.current();
        assert_eq!(rto.as_nanos() % Dur::from_millis(500).as_nanos(), 0);
        assert!(rto >= Dur::from_secs(1));
    }

    #[test]
    fn bsd_rtt_quantization_inflates_lan_rto() {
        // A 200 us LAN RTT rounds up to a full 500 ms tick. Early in the
        // connection (high RTTVAR) the effective RTO sits at 1.5 s; with a
        // long run of stable samples the variance decays and it settles on
        // the 1 s floor like SCTP — the era cost is paid on young and
        // jittery connections.
        let mut e = RtoEstimator::new(RtoCfg::bsd_tcp());
        e.sample(Dur::from_micros(200));
        assert!(e.current() >= Dur::from_millis(1500), "young: got {}", e.current());
        for _ in 0..50 {
            e.sample(Dur::from_micros(200));
        }
        assert!(e.current() >= Dur::from_secs(1), "settled: got {}", e.current());
        // SCTP's fine timers sit at the floor from the first sample.
        let mut k = RtoEstimator::new(RtoCfg::kame_sctp());
        k.sample(Dur::from_micros(200));
        assert_eq!(k.current(), Dur::from_secs(1));
    }

    #[test]
    fn variance_grows_rto() {
        let mut e = RtoEstimator::new(RtoCfg::kame_sctp());
        e.sample(Dur::from_millis(500));
        e.sample(Dur::from_millis(1500));
        e.sample(Dur::from_millis(500));
        assert!(e.current() > Dur::from_secs(1), "jittery RTTs inflate RTO");
    }
}
