//! On-wire byte serialization for the flight recorder's pcapng sink.
//!
//! The simulator keeps segments and chunks as typed Rust values; this module
//! renders them into the real RFC encodings — IPv4 (no options), TCP with
//! MSS/timestamp/SACK options and a correct ones-complement checksum, SCTP
//! per RFC 4960 with a correct CRC32c — so the captures dissect cleanly in
//! wireshark/tshark. Only the tracer calls this, and only when tracing is
//! on; nothing in the simulation reads these bytes back.
//!
//! Fidelity notes, where the model is wider than the wire:
//! - TSNs, tags, sequence numbers are `u64` in the model and truncate to
//!   `u32` here (runs never get near wraparound).
//! - The model charges unpadded TCP option sizes; real headers pad to a
//!   32-bit boundary, so a serialized TCP frame can be up to 2 bytes longer
//!   than the simulated wire size. The capture records both lengths.
//! - SACK gap-ack blocks clamp to the RFC's 16-bit offsets.

use crate::crc32c::crc32c;
use crate::ip::{Packet, Proto, IP_HEADER};
use crate::sctp::{Chunk, Cookie, SctpPacket};
use crate::tcp::{Flags, TcpSegment};

/// Trace metadata extracted from a packet: (proto, kind, first payload
/// unit, payload extent, stream id).
pub fn pkt_meta(body: &Proto) -> (trace::Proto8, trace::PktKind, u64, u32, i32) {
    match body {
        Proto::Tcp(seg) => {
            let kind = if seg.payload_len > 0 {
                trace::PktKind::Data
            } else if seg.flags.contains(Flags::SYN) || seg.flags.contains(Flags::FIN) || seg.flags.contains(Flags::RST) || seg.probe {
                trace::PktKind::Ctl
            } else {
                trace::PktKind::Ack
            };
            (trace::Proto8::Tcp, kind, seg.seq, seg.payload_len, -1)
        }
        Proto::Sctp(p) => {
            let mut first_data: Option<(u64, u16)> = None;
            let mut ndata = 0u32;
            let mut has_sack = false;
            for c in &p.chunks {
                match c {
                    Chunk::Data(d) => {
                        if first_data.is_none() {
                            first_data = Some((d.tsn, d.stream));
                        }
                        ndata += 1;
                    }
                    Chunk::Sack { .. } => has_sack = true,
                    _ => {}
                }
            }
            match first_data {
                Some((tsn, stream)) => (trace::Proto8::Sctp, trace::PktKind::Data, tsn, ndata, stream as i32),
                None if has_sack => (trace::Proto8::Sctp, trace::PktKind::Sack, 0, 0, -1),
                None => (trace::Proto8::Sctp, trace::PktKind::Ctl, 0, 0, -1),
            }
        }
    }
}

/// Serialize a packet to a raw-IPv4 frame and snap it: returns
/// `(snapped_frame, full_frame_len)`.
pub fn capture_frame(pkt: &Packet, now_ns: u64, snaplen: usize) -> (Vec<u8>, u32) {
    let mut frame = encode_packet(pkt, now_ns);
    let full = frame.len() as u32;
    frame.truncate(snaplen);
    (frame, full)
}

/// The full serialized frame: IPv4 header + TCP segment or SCTP packet.
pub fn encode_packet(pkt: &Packet, now_ns: u64) -> Vec<u8> {
    let src_ip = host_ip(pkt.src.host, pkt.src.iface);
    let dst_ip = host_ip(pkt.dst.host, pkt.dst.iface);
    let (proto_num, body) = match &pkt.body {
        Proto::Tcp(seg) => (6u8, encode_tcp(seg, src_ip, dst_ip, now_ns)),
        Proto::Sctp(p) => (132u8, encode_sctp(p)),
    };
    let total_len = IP_HEADER as usize + body.len();
    let mut out = Vec::with_capacity(total_len);
    out.push(0x45); // version 4, IHL 5
    out.push(0); // TOS
    out.extend_from_slice(&(total_len as u16).to_be_bytes());
    out.extend_from_slice(&0u16.to_be_bytes()); // identification
    out.extend_from_slice(&0x4000u16.to_be_bytes()); // DF, fragment offset 0
    out.push(64); // TTL
    out.push(proto_num);
    out.extend_from_slice(&0u16.to_be_bytes()); // checksum placeholder
    out.extend_from_slice(&src_ip);
    out.extend_from_slice(&dst_ip);
    let cks = ones_complement_sum(&out[..IP_HEADER as usize], 0);
    out[10..12].copy_from_slice(&(!cks).to_be_bytes());
    out.extend_from_slice(&body);
    out
}

/// Addressing scheme for the capture: interface `i` of host `h` is
/// `10.i.(h >> 8).(h & 0xff)` — one /16 per simulated network.
pub fn host_ip(host: u16, iface: u8) -> [u8; 4] {
    [10, iface, (host >> 8) as u8, (host & 0xff) as u8]
}

/// Ones-complement sum over `data` (big-endian 16-bit words), folded.
fn ones_complement_sum(data: &[u8], init: u32) -> u16 {
    let mut sum = init;
    let mut chunks = data.chunks_exact(2);
    for w in &mut chunks {
        sum += u16::from_be_bytes([w[0], w[1]]) as u32;
    }
    if let [b] = chunks.remainder() {
        sum += (*b as u32) << 8;
    }
    while sum > 0xffff {
        sum = (sum & 0xffff) + (sum >> 16);
    }
    sum as u16
}

fn encode_tcp(seg: &TcpSegment, src_ip: [u8; 4], dst_ip: [u8; 4], now_ns: u64) -> Vec<u8> {
    // Options, kept 32-bit aligned as a real stack would emit them.
    let mut opts = Vec::new();
    if seg.flags.contains(Flags::SYN) {
        opts.extend_from_slice(&[2, 4]); // MSS
        opts.extend_from_slice(&1460u16.to_be_bytes());
    }
    // Timestamps (always on, as the model's 12-byte charge assumes).
    opts.extend_from_slice(&[1, 1, 8, 10]);
    opts.extend_from_slice(&((now_ns / 1_000_000) as u32).to_be_bytes()); // TSval (ms ticks)
    opts.extend_from_slice(&0u32.to_be_bytes()); // TSecr
    if !seg.sack.is_empty() {
        opts.extend_from_slice(&[1, 1, 5, (2 + 8 * seg.sack.len()) as u8]);
        for &(lo, hi) in &seg.sack {
            opts.extend_from_slice(&(lo as u32).to_be_bytes());
            opts.extend_from_slice(&(hi as u32).to_be_bytes());
        }
    }
    while opts.len() % 4 != 0 {
        opts.push(1); // NOP
    }
    let header_len = 20 + opts.len();

    let mut flags = 0u8;
    if seg.flags.contains(Flags::FIN) {
        flags |= 0x01;
    }
    if seg.flags.contains(Flags::SYN) {
        flags |= 0x02;
    }
    if seg.flags.contains(Flags::RST) {
        flags |= 0x04;
    }
    if seg.payload_len > 0 {
        flags |= 0x08; // PSH
    }
    if seg.flags.contains(Flags::ACK) {
        flags |= 0x10;
    }

    let mut out = Vec::with_capacity(header_len + seg.payload_len as usize);
    out.extend_from_slice(&seg.src_port.to_be_bytes());
    out.extend_from_slice(&seg.dst_port.to_be_bytes());
    out.extend_from_slice(&(seg.seq as u32).to_be_bytes());
    out.extend_from_slice(&(seg.ack as u32).to_be_bytes());
    out.push(((header_len / 4) as u8) << 4);
    out.push(flags);
    out.extend_from_slice(&(seg.wnd.min(u16::MAX as u64) as u16).to_be_bytes());
    out.extend_from_slice(&0u16.to_be_bytes()); // checksum placeholder
    out.extend_from_slice(&0u16.to_be_bytes()); // urgent pointer
    out.extend_from_slice(&opts);
    for b in &seg.payload {
        out.extend_from_slice(b);
    }

    // Pseudo-header checksum: src, dst, zero/proto, TCP length.
    let mut pseudo = 0u32;
    pseudo += u16::from_be_bytes([src_ip[0], src_ip[1]]) as u32;
    pseudo += u16::from_be_bytes([src_ip[2], src_ip[3]]) as u32;
    pseudo += u16::from_be_bytes([dst_ip[0], dst_ip[1]]) as u32;
    pseudo += u16::from_be_bytes([dst_ip[2], dst_ip[3]]) as u32;
    pseudo += 6; // protocol
    pseudo += out.len() as u32;
    let cks = ones_complement_sum(&out, pseudo);
    out[16..18].copy_from_slice(&(!cks).to_be_bytes());
    out
}

fn encode_sctp(p: &SctpPacket) -> Vec<u8> {
    let mut out = Vec::with_capacity(p.wire_len() as usize);
    out.extend_from_slice(&p.src_port.to_be_bytes());
    out.extend_from_slice(&p.dst_port.to_be_bytes());
    out.extend_from_slice(&(p.vtag as u32).to_be_bytes());
    out.extend_from_slice(&0u32.to_be_bytes()); // CRC32c placeholder
    for c in &p.chunks {
        encode_chunk(&mut out, c);
    }
    // RFC 4960 Appendix B: compute CRC32c with the checksum field zeroed and
    // transmit the result least-significant byte first.
    let crc = crc32c(&out);
    out[8..12].copy_from_slice(&crc.to_le_bytes());
    out
}

fn put_chunk_header(out: &mut Vec<u8>, ty: u8, flags: u8, len: u16) {
    out.push(ty);
    out.push(flags);
    out.extend_from_slice(&len.to_be_bytes());
}

fn pad4(out: &mut Vec<u8>, start: usize) {
    while (out.len() - start) % 4 != 0 {
        out.push(0);
    }
}

/// Gap-ack block offsets relative to `cum`, clamped to the RFC's u16.
fn gap_offsets(cum: u64, lo: u64, hi: u64) -> (u16, u16) {
    let start = lo.saturating_sub(cum).min(u16::MAX as u64) as u16;
    let end = (hi - 1).saturating_sub(cum).min(u16::MAX as u64) as u16;
    (start, end)
}

fn encode_chunk(out: &mut Vec<u8>, c: &Chunk) {
    let start = out.len();
    match c {
        Chunk::Data(d) => {
            let mut flags = 0u8;
            if d.end {
                flags |= 0x01;
            }
            if d.begin {
                flags |= 0x02;
            }
            if d.unordered {
                flags |= 0x04;
            }
            put_chunk_header(out, 0, flags, (16 + d.data.len()) as u16);
            out.extend_from_slice(&(d.tsn as u32).to_be_bytes());
            out.extend_from_slice(&d.stream.to_be_bytes());
            out.extend_from_slice(&(d.ssn as u16).to_be_bytes());
            out.extend_from_slice(&d.ppid.to_be_bytes());
            out.extend_from_slice(&d.data);
        }
        Chunk::Sack { cum_tsn, a_rwnd, gaps, dup_count: _ } => {
            put_chunk_header(out, 3, 0, (16 + 4 * gaps.len()) as u16);
            out.extend_from_slice(&(*cum_tsn as u32).to_be_bytes());
            out.extend_from_slice(&((*a_rwnd).min(u32::MAX as u64) as u32).to_be_bytes());
            out.extend_from_slice(&(gaps.len() as u16).to_be_bytes());
            out.extend_from_slice(&0u16.to_be_bytes()); // dup TSNs carried: none
            for &(lo, hi) in gaps {
                let (s, e) = gap_offsets(*cum_tsn, lo, hi);
                out.extend_from_slice(&s.to_be_bytes());
                out.extend_from_slice(&e.to_be_bytes());
            }
        }
        Chunk::Init { init_tag, a_rwnd, out_streams, in_streams, init_tsn } => {
            put_chunk_header(out, 1, 0, 20);
            put_init_body(out, *init_tag, *a_rwnd, *out_streams, *in_streams, *init_tsn);
        }
        Chunk::InitAck { init_tag, a_rwnd, out_streams, in_streams, init_tsn, cookie } => {
            put_chunk_header(out, 2, 0, 96);
            put_init_body(out, *init_tag, *a_rwnd, *out_streams, *in_streams, *init_tsn);
            // State cookie parameter: 4-byte header + 72-byte padded value.
            out.extend_from_slice(&7u16.to_be_bytes());
            out.extend_from_slice(&76u16.to_be_bytes());
            let vstart = out.len();
            put_cookie(out, cookie);
            while out.len() - vstart < 72 {
                out.push(0);
            }
        }
        Chunk::CookieEcho { cookie } => {
            put_chunk_header(out, 10, 0, 80);
            let vstart = out.len();
            put_cookie(out, cookie);
            while out.len() - vstart < 76 {
                out.push(0);
            }
        }
        Chunk::CookieAck => put_chunk_header(out, 11, 0, 4),
        Chunk::Heartbeat { path, nonce } => {
            put_chunk_header(out, 4, 0, 12);
            put_hb_info(out, *path, *nonce);
        }
        Chunk::HeartbeatAck { path, nonce } => {
            put_chunk_header(out, 5, 0, 12);
            put_hb_info(out, *path, *nonce);
        }
        Chunk::Shutdown { cum_tsn } => {
            put_chunk_header(out, 7, 0, 8);
            out.extend_from_slice(&(*cum_tsn as u32).to_be_bytes());
        }
        Chunk::ShutdownAck => put_chunk_header(out, 8, 0, 4),
        Chunk::ShutdownComplete => put_chunk_header(out, 14, 0, 4),
        Chunk::Abort => put_chunk_header(out, 6, 0, 4),
    }
    pad4(out, start);
}

fn put_init_body(out: &mut Vec<u8>, init_tag: u64, a_rwnd: u64, out_streams: u16, in_streams: u16, init_tsn: u64) {
    out.extend_from_slice(&(init_tag as u32).to_be_bytes());
    out.extend_from_slice(&(a_rwnd.min(u32::MAX as u64) as u32).to_be_bytes());
    out.extend_from_slice(&out_streams.to_be_bytes());
    out.extend_from_slice(&in_streams.to_be_bytes());
    out.extend_from_slice(&(init_tsn as u32).to_be_bytes());
}

/// Heartbeat info parameter (type 1): the nonce, truncated to 4 bytes —
/// enough for the dissector; `path` is implicit in the addresses.
fn put_hb_info(out: &mut Vec<u8>, _path: u8, nonce: u64) {
    out.extend_from_slice(&1u16.to_be_bytes());
    out.extend_from_slice(&8u16.to_be_bytes());
    out.extend_from_slice(&(nonce as u32).to_be_bytes());
}

/// The cookie's 66-byte field serialization (padded by callers to the
/// modelled [`crate::sctp::wire::COOKIE_WIRE_LEN`]).
fn put_cookie(out: &mut Vec<u8>, c: &Cookie) {
    out.extend_from_slice(&c.peer_host.to_be_bytes());
    out.extend_from_slice(&c.peer_port.to_be_bytes());
    out.extend_from_slice(&c.local_port.to_be_bytes());
    out.extend_from_slice(&c.peer_tag.to_be_bytes());
    out.extend_from_slice(&c.local_tag.to_be_bytes());
    out.extend_from_slice(&c.peer_rwnd.to_be_bytes());
    out.extend_from_slice(&c.peer_init_tsn.to_be_bytes());
    out.extend_from_slice(&c.my_init_tsn.to_be_bytes());
    out.extend_from_slice(&c.out_streams.to_be_bytes());
    out.extend_from_slice(&c.in_streams.to_be_bytes());
    out.extend_from_slice(&c.created_at.as_nanos().to_be_bytes());
    out.extend_from_slice(&c.mac.to_be_bytes());
}

#[cfg(test)]
mod tests {
    use super::*;
    use bytes::Bytes;
    use netsim::IfAddr;
    use crate::sctp::DataChunk;

    fn sctp_packet() -> Packet {
        Packet {
            src: IfAddr::new(0, 1),
            dst: IfAddr::new(3, 1),
            body: Proto::Sctp(SctpPacket {
                src_port: 5600,
                dst_port: 5600,
                vtag: 0xDEAD_BEEF,
                chunks: vec![
                    Chunk::Data(DataChunk {
                        tsn: 42,
                        stream: 3,
                        ssn: 7,
                        begin: true,
                        end: false,
                        unordered: false,
                        ppid: 9,
                        data: Bytes::from_static(b"hello world"),
                    }),
                    Chunk::Sack { cum_tsn: 41, a_rwnd: 220 * 1024, gaps: vec![(44, 46)], dup_count: 1 },
                ],
            }),
        }
    }

    #[test]
    fn sctp_frame_layout_and_lengths() {
        let pkt = sctp_packet();
        let frame = encode_packet(&pkt, 5_000_000);
        // IPv4 header.
        assert_eq!(frame[0], 0x45);
        assert_eq!(frame[9], 132, "IP proto = SCTP");
        assert_eq!(&frame[12..16], &[10, 1, 0, 0], "src 10.1.0.0");
        assert_eq!(&frame[16..20], &[10, 1, 0, 3], "dst 10.1.0.3");
        assert_eq!(
            u16::from_be_bytes([frame[2], frame[3]]) as usize,
            frame.len(),
            "IP total length matches"
        );
        // SCTP common header at offset 20.
        assert_eq!(u16::from_be_bytes([frame[20], frame[21]]), 5600);
        assert_eq!(u32::from_be_bytes([frame[24], frame[25], frame[26], frame[27]]), 0xDEAD_BEEF);
        // Chunk sizes: DATA 16 + 11 = 27 padded 28; SACK 16 + 4 = 20.
        let body = &pkt.body;
        assert_eq!(frame.len() as u32, IP_HEADER + body_wire_len(body));
        // DATA chunk header at offset 32: type 0, flags B=0x02.
        assert_eq!(frame[32], 0);
        assert_eq!(frame[33], 0x02);
        assert_eq!(u16::from_be_bytes([frame[34], frame[35]]), 27, "unpadded chunk length");
        // SACK at 32 + 28 = 60: type 3, one gap block [3, 4] rel cum 41.
        assert_eq!(frame[60], 3);
        assert_eq!(u32::from_be_bytes([frame[64], frame[65], frame[66], frame[67]]), 41, "cum TSN");
        assert_eq!(u16::from_be_bytes([frame[72], frame[73]]), 1, "one gap block");
        assert_eq!(u16::from_be_bytes([frame[76], frame[77]]), 3, "gap start offset");
        assert_eq!(u16::from_be_bytes([frame[78], frame[79]]), 4, "gap end offset");
    }

    fn body_wire_len(b: &Proto) -> u32 {
        match b {
            Proto::Tcp(s) => s.wire_len(),
            Proto::Sctp(p) => p.wire_len(),
        }
    }

    #[test]
    fn sctp_crc32c_round_trips() {
        // The stored checksum must equal crc32c over the SCTP bytes with the
        // checksum field zeroed — the round-trip the satellite task pins to
        // `transport/src/crc32c.rs`.
        let frame = encode_packet(&sctp_packet(), 0);
        let sctp = &frame[IP_HEADER as usize..];
        let stored = u32::from_le_bytes([sctp[8], sctp[9], sctp[10], sctp[11]]);
        let mut zeroed = sctp.to_vec();
        zeroed[8..12].fill(0);
        assert_eq!(stored, crc32c(&zeroed));
        // And it is a real CRC: flipping any byte breaks it.
        zeroed[0] ^= 0xFF;
        assert_ne!(stored, crc32c(&zeroed));
    }

    #[test]
    fn ip_header_checksum_is_valid() {
        let frame = encode_packet(&sctp_packet(), 0);
        // Summing the full header including the stored checksum yields 0xFFFF.
        assert_eq!(ones_complement_sum(&frame[..20], 0), 0xFFFF);
    }

    #[test]
    fn tcp_frame_checksum_and_options() {
        let seg = TcpSegment {
            src_port: 5700,
            dst_port: 5700,
            flags: Flags::ACK,
            seq: 1000,
            ack: 2000,
            wnd: 220 * 1024, // larger than u16: clamps on the wire
            sack: vec![(3000, 4460)],
            probe: false,
            payload: vec![Bytes::from_static(&[0xAB; 16])],
            payload_len: 16,
        };
        let pkt = Packet { src: IfAddr::new(1, 0), dst: IfAddr::new(2, 0), body: Proto::Tcp(seg) };
        let frame = encode_packet(&pkt, 12_000_000);
        assert_eq!(frame[9], 6, "IP proto = TCP");
        let tcp = &frame[20..];
        assert_eq!(u32::from_be_bytes([tcp[4], tcp[5], tcp[6], tcp[7]]), 1000);
        let header_len = (tcp[12] >> 4) as usize * 4;
        // 20 base + 12 ts + (2 NOP + 10 sack) = 44.
        assert_eq!(header_len, 44);
        assert_eq!(tcp[13] & 0x10, 0x10, "ACK set");
        assert_eq!(u16::from_be_bytes([tcp[14], tcp[15]]), u16::MAX, "window clamped");
        // Verify the transport checksum over the pseudo-header.
        let src_ip = [10, 0, 0, 1];
        let dst_ip = [10, 0, 0, 2];
        let mut pseudo = 0u32;
        pseudo += u16::from_be_bytes([src_ip[0], src_ip[1]]) as u32;
        pseudo += u16::from_be_bytes([src_ip[2], src_ip[3]]) as u32;
        pseudo += u16::from_be_bytes([dst_ip[0], dst_ip[1]]) as u32;
        pseudo += u16::from_be_bytes([dst_ip[2], dst_ip[3]]) as u32;
        pseudo += 6 + tcp.len() as u32;
        assert_eq!(ones_complement_sum(tcp, pseudo), 0xFFFF, "checksum validates");
    }

    #[test]
    fn meta_classifies_packets() {
        let (proto, kind, tsn, ntsn, stream) = pkt_meta(&sctp_packet().body);
        assert_eq!(proto, trace::Proto8::Sctp);
        assert_eq!(kind, trace::PktKind::Data);
        assert_eq!((tsn, ntsn, stream), (42, 1, 3));

        let ack = Proto::Tcp(TcpSegment {
            src_port: 1,
            dst_port: 1,
            flags: Flags::ACK,
            seq: 0,
            ack: 10,
            wnd: 1000,
            sack: vec![],
            probe: false,
            payload: vec![],
            payload_len: 0,
        });
        let (proto, kind, ..) = pkt_meta(&ack);
        assert_eq!(proto, trace::Proto8::Tcp);
        assert_eq!(kind, trace::PktKind::Ack);
    }

    #[test]
    fn capture_snaps_but_reports_full_length() {
        let pkt = sctp_packet();
        let full = encode_packet(&pkt, 0).len() as u32;
        let (frame, orig) = capture_frame(&pkt, 0, 40);
        assert_eq!(frame.len(), 40);
        assert_eq!(orig, full);
    }
}
