//! On-wire byte serialization for the flight recorder's pcapng sink.
//!
//! The simulator keeps segments and chunks as typed Rust values; this module
//! renders them into the real RFC encodings — IPv4 (no options), TCP with
//! MSS/timestamp/SACK options and a correct ones-complement checksum, SCTP
//! per RFC 4960 with a correct CRC32c — so the captures dissect cleanly in
//! wireshark/tshark. Only the tracer calls this, and only when tracing is
//! on; nothing in the simulation reads these bytes back.
//!
//! Fidelity notes, where the model is wider than the wire:
//! - TSNs, tags, sequence numbers are `u64` in the model and truncate to
//!   `u32` here (runs never get near wraparound).
//! - The model charges unpadded TCP option sizes; real headers pad to a
//!   32-bit boundary, so a serialized TCP frame can be up to 2 bytes longer
//!   than the simulated wire size. The capture records both lengths.
//! - SACK gap-ack blocks clamp to the RFC's 16-bit offsets.
//!
//! Since the real-socket backend landed this module also **decodes**:
//! [`decode_packet`] parses a frame produced by [`encode_packet`] (or by any
//! peer speaking the same encodings) back into engine values, verifying the
//! IP header checksum, the TCP ones-complement checksum, and the SCTP CRC32c
//! on the way in. Decoding is a right inverse of encoding: for every frame
//! `f` this module emits, `encode(decode(f)) == f` byte for byte (the
//! round-trip property suite pins this). Fields the wire cannot carry
//! (SACK `dup_count`, the TCP `probe` flag) decode to their neutral values;
//! heartbeat `path` is recovered from the addressing.

use bytes::Bytes;
use netsim::IfAddr;

use crate::crc32c::crc32c;
use crate::ip::{Packet, Proto, IP_HEADER};
use crate::sctp::{Chunk, Cookie, DataChunk, IDataChunk, SctpPacket};
use crate::tcp::{Flags, TcpSegment};

/// Trace metadata extracted from a packet: (proto, kind, first payload
/// unit, payload extent, stream id).
pub fn pkt_meta(body: &Proto) -> (trace::Proto8, trace::PktKind, u64, u32, i32) {
    match body {
        Proto::Tcp(seg) => {
            let kind = if seg.payload_len > 0 {
                trace::PktKind::Data
            } else if seg.flags.contains(Flags::SYN) || seg.flags.contains(Flags::FIN) || seg.flags.contains(Flags::RST) || seg.probe {
                trace::PktKind::Ctl
            } else {
                trace::PktKind::Ack
            };
            (trace::Proto8::Tcp, kind, seg.seq, seg.payload_len, -1)
        }
        Proto::Sctp(p) => {
            let mut first_data: Option<(u64, u16)> = None;
            let mut ndata = 0u32;
            let mut has_sack = false;
            for c in &p.chunks {
                match c {
                    Chunk::Data(d) => {
                        if first_data.is_none() {
                            first_data = Some((d.tsn, d.stream));
                        }
                        ndata += 1;
                    }
                    Chunk::IData(d) => {
                        if first_data.is_none() {
                            first_data = Some((d.tsn, d.stream));
                        }
                        ndata += 1;
                    }
                    Chunk::Sack { .. } => has_sack = true,
                    _ => {}
                }
            }
            match first_data {
                Some((tsn, stream)) => (trace::Proto8::Sctp, trace::PktKind::Data, tsn, ndata, stream as i32),
                None if has_sack => (trace::Proto8::Sctp, trace::PktKind::Sack, 0, 0, -1),
                None => (trace::Proto8::Sctp, trace::PktKind::Ctl, 0, 0, -1),
            }
        }
    }
}

/// Serialize a packet to a raw-IPv4 frame and snap it: returns
/// `(snapped_frame, full_frame_len)`.
pub fn capture_frame(pkt: &Packet, now_ns: u64, snaplen: usize) -> (Vec<u8>, u32) {
    let mut frame = encode_packet(pkt, now_ns);
    let full = frame.len() as u32;
    frame.truncate(snaplen);
    (frame, full)
}

/// The full serialized frame: IPv4 header + TCP segment or SCTP packet.
pub fn encode_packet(pkt: &Packet, now_ns: u64) -> Vec<u8> {
    let src_ip = host_ip(pkt.src.host, pkt.src.iface);
    let dst_ip = host_ip(pkt.dst.host, pkt.dst.iface);
    let (proto_num, body) = match &pkt.body {
        Proto::Tcp(seg) => (6u8, encode_tcp(seg, src_ip, dst_ip, now_ns)),
        Proto::Sctp(p) => (132u8, encode_sctp(p)),
    };
    let total_len = IP_HEADER as usize + body.len();
    let mut out = Vec::with_capacity(total_len);
    out.push(0x45); // version 4, IHL 5
    out.push(0); // TOS
    out.extend_from_slice(&(total_len as u16).to_be_bytes());
    out.extend_from_slice(&0u16.to_be_bytes()); // identification
    out.extend_from_slice(&0x4000u16.to_be_bytes()); // DF, fragment offset 0
    out.push(64); // TTL
    out.push(proto_num);
    out.extend_from_slice(&0u16.to_be_bytes()); // checksum placeholder
    out.extend_from_slice(&src_ip);
    out.extend_from_slice(&dst_ip);
    let cks = ones_complement_sum(&out[..IP_HEADER as usize], 0);
    out[10..12].copy_from_slice(&(!cks).to_be_bytes());
    out.extend_from_slice(&body);
    out
}

/// Addressing scheme for the capture: interface `i` of host `h` is
/// `10.i.(h >> 8).(h & 0xff)` — one /16 per simulated network.
pub fn host_ip(host: u16, iface: u8) -> [u8; 4] {
    [10, iface, (host >> 8) as u8, (host & 0xff) as u8]
}

/// Ones-complement sum over `data` (big-endian 16-bit words), folded.
fn ones_complement_sum(data: &[u8], init: u32) -> u16 {
    let mut sum = init;
    let mut chunks = data.chunks_exact(2);
    for w in &mut chunks {
        sum += u16::from_be_bytes([w[0], w[1]]) as u32;
    }
    if let [b] = chunks.remainder() {
        sum += (*b as u32) << 8;
    }
    while sum > 0xffff {
        sum = (sum & 0xffff) + (sum >> 16);
    }
    sum as u16
}

fn encode_tcp(seg: &TcpSegment, src_ip: [u8; 4], dst_ip: [u8; 4], now_ns: u64) -> Vec<u8> {
    // Options, kept 32-bit aligned as a real stack would emit them.
    let mut opts = Vec::new();
    if seg.flags.contains(Flags::SYN) {
        opts.extend_from_slice(&[2, 4]); // MSS
        opts.extend_from_slice(&1460u16.to_be_bytes());
    }
    // Timestamps (always on, as the model's 12-byte charge assumes).
    opts.extend_from_slice(&[1, 1, 8, 10]);
    opts.extend_from_slice(&((now_ns / 1_000_000) as u32).to_be_bytes()); // TSval (ms ticks)
    opts.extend_from_slice(&0u32.to_be_bytes()); // TSecr
    if !seg.sack.is_empty() {
        opts.extend_from_slice(&[1, 1, 5, (2 + 8 * seg.sack.len()) as u8]);
        for &(lo, hi) in &seg.sack {
            opts.extend_from_slice(&(lo as u32).to_be_bytes());
            opts.extend_from_slice(&(hi as u32).to_be_bytes());
        }
    }
    while opts.len() % 4 != 0 {
        opts.push(1); // NOP
    }
    let header_len = 20 + opts.len();

    let mut flags = 0u8;
    if seg.flags.contains(Flags::FIN) {
        flags |= 0x01;
    }
    if seg.flags.contains(Flags::SYN) {
        flags |= 0x02;
    }
    if seg.flags.contains(Flags::RST) {
        flags |= 0x04;
    }
    if seg.payload_len > 0 {
        flags |= 0x08; // PSH
    }
    if seg.flags.contains(Flags::ACK) {
        flags |= 0x10;
    }

    let mut out = Vec::with_capacity(header_len + seg.payload_len as usize);
    out.extend_from_slice(&seg.src_port.to_be_bytes());
    out.extend_from_slice(&seg.dst_port.to_be_bytes());
    out.extend_from_slice(&(seg.seq as u32).to_be_bytes());
    out.extend_from_slice(&(seg.ack as u32).to_be_bytes());
    out.push(((header_len / 4) as u8) << 4);
    out.push(flags);
    out.extend_from_slice(&(seg.wnd.min(u16::MAX as u64) as u16).to_be_bytes());
    out.extend_from_slice(&0u16.to_be_bytes()); // checksum placeholder
    out.extend_from_slice(&0u16.to_be_bytes()); // urgent pointer
    out.extend_from_slice(&opts);
    for b in &seg.payload {
        out.extend_from_slice(b);
    }

    // Pseudo-header checksum: src, dst, zero/proto, TCP length.
    let mut pseudo = 0u32;
    pseudo += u16::from_be_bytes([src_ip[0], src_ip[1]]) as u32;
    pseudo += u16::from_be_bytes([src_ip[2], src_ip[3]]) as u32;
    pseudo += u16::from_be_bytes([dst_ip[0], dst_ip[1]]) as u32;
    pseudo += u16::from_be_bytes([dst_ip[2], dst_ip[3]]) as u32;
    pseudo += 6; // protocol
    pseudo += out.len() as u32;
    let cks = ones_complement_sum(&out, pseudo);
    out[16..18].copy_from_slice(&(!cks).to_be_bytes());
    out
}

fn encode_sctp(p: &SctpPacket) -> Vec<u8> {
    let mut out = Vec::with_capacity(p.wire_len() as usize);
    out.extend_from_slice(&p.src_port.to_be_bytes());
    out.extend_from_slice(&p.dst_port.to_be_bytes());
    out.extend_from_slice(&(p.vtag as u32).to_be_bytes());
    out.extend_from_slice(&0u32.to_be_bytes()); // CRC32c placeholder
    for c in &p.chunks {
        encode_chunk(&mut out, c);
    }
    // RFC 4960 Appendix B: compute CRC32c with the checksum field zeroed and
    // transmit the result least-significant byte first.
    let crc = crc32c(&out);
    out[8..12].copy_from_slice(&crc.to_le_bytes());
    out
}

fn put_chunk_header(out: &mut Vec<u8>, ty: u8, flags: u8, len: u16) {
    out.push(ty);
    out.push(flags);
    out.extend_from_slice(&len.to_be_bytes());
}

fn pad4(out: &mut Vec<u8>, start: usize) {
    while (out.len() - start) % 4 != 0 {
        out.push(0);
    }
}

/// Gap-ack block offsets relative to `cum`, clamped to the RFC's u16.
fn gap_offsets(cum: u64, lo: u64, hi: u64) -> (u16, u16) {
    let start = lo.saturating_sub(cum).min(u16::MAX as u64) as u16;
    let end = (hi - 1).saturating_sub(cum).min(u16::MAX as u64) as u16;
    (start, end)
}

fn encode_chunk(out: &mut Vec<u8>, c: &Chunk) {
    let start = out.len();
    match c {
        Chunk::Data(d) => {
            let mut flags = 0u8;
            if d.end {
                flags |= 0x01;
            }
            if d.begin {
                flags |= 0x02;
            }
            if d.unordered {
                flags |= 0x04;
            }
            put_chunk_header(out, 0, flags, (16 + d.data.len()) as u16);
            out.extend_from_slice(&(d.tsn as u32).to_be_bytes());
            out.extend_from_slice(&d.stream.to_be_bytes());
            out.extend_from_slice(&(d.ssn as u16).to_be_bytes());
            out.extend_from_slice(&d.ppid.to_be_bytes());
            out.extend_from_slice(&d.data);
        }
        Chunk::Sack { cum_tsn, a_rwnd, gaps, dup_count: _ } => {
            put_chunk_header(out, 3, 0, (16 + 4 * gaps.len()) as u16);
            out.extend_from_slice(&(*cum_tsn as u32).to_be_bytes());
            out.extend_from_slice(&((*a_rwnd).min(u32::MAX as u64) as u32).to_be_bytes());
            out.extend_from_slice(&(gaps.len() as u16).to_be_bytes());
            out.extend_from_slice(&0u16.to_be_bytes()); // dup TSNs carried: none
            for &(lo, hi) in gaps {
                let (s, e) = gap_offsets(*cum_tsn, lo, hi);
                out.extend_from_slice(&s.to_be_bytes());
                out.extend_from_slice(&e.to_be_bytes());
            }
        }
        Chunk::IData(d) => {
            let mut flags = 0u8;
            if d.end {
                flags |= 0x01;
            }
            if d.begin {
                flags |= 0x02;
            }
            if d.unordered {
                flags |= 0x04;
            }
            put_chunk_header(out, 64, flags, (20 + d.data.len()) as u16);
            out.extend_from_slice(&(d.tsn as u32).to_be_bytes());
            out.extend_from_slice(&d.stream.to_be_bytes());
            out.extend_from_slice(&0u16.to_be_bytes()); // reserved
            out.extend_from_slice(&(d.mid as u32).to_be_bytes());
            // RFC 8260 §2.1: the fourth word carries the PPID on the first
            // fragment (B=1, FSN implicitly 0) and the FSN otherwise.
            if d.begin {
                out.extend_from_slice(&d.ppid.to_be_bytes());
            } else {
                out.extend_from_slice(&d.fsn.to_be_bytes());
            }
            out.extend_from_slice(&d.data);
        }
        Chunk::ForwardTsn { new_cum, skips } => {
            // I-FORWARD-TSN (RFC 8260 §2.3.1): new cum TSN + per-stream
            // (sid, reserved, MID) skip entries.
            put_chunk_header(out, 194, 0, (8 + 8 * skips.len()) as u16);
            out.extend_from_slice(&(*new_cum as u32).to_be_bytes());
            for &(sid, mid) in skips {
                out.extend_from_slice(&sid.to_be_bytes());
                out.extend_from_slice(&0u16.to_be_bytes()); // flags/reserved
                out.extend_from_slice(&(mid as u32).to_be_bytes());
            }
        }
        Chunk::Init { init_tag, a_rwnd, out_streams, in_streams, init_tsn, ext_flags } => {
            let len = 20 + if *ext_flags != 0 { 8 } else { 0 };
            put_chunk_header(out, 1, 0, len);
            put_init_body(out, *init_tag, *a_rwnd, *out_streams, *in_streams, *init_tsn);
            put_ext_param(out, *ext_flags);
        }
        Chunk::InitAck { init_tag, a_rwnd, out_streams, in_streams, init_tsn, ext_flags, cookie } => {
            let len = 96 + if *ext_flags != 0 { 8 } else { 0 };
            put_chunk_header(out, 2, 0, len);
            put_init_body(out, *init_tag, *a_rwnd, *out_streams, *in_streams, *init_tsn);
            put_ext_param(out, *ext_flags);
            // State cookie parameter: 4-byte header + 72-byte padded value.
            out.extend_from_slice(&7u16.to_be_bytes());
            out.extend_from_slice(&76u16.to_be_bytes());
            let vstart = out.len();
            put_cookie(out, cookie);
            while out.len() - vstart < 72 {
                out.push(0);
            }
        }
        Chunk::CookieEcho { cookie } => {
            put_chunk_header(out, 10, 0, 80);
            let vstart = out.len();
            put_cookie(out, cookie);
            while out.len() - vstart < 76 {
                out.push(0);
            }
        }
        Chunk::CookieAck => put_chunk_header(out, 11, 0, 4),
        Chunk::Heartbeat { path, nonce } => {
            put_chunk_header(out, 4, 0, 12);
            put_hb_info(out, *path, *nonce);
        }
        Chunk::HeartbeatAck { path, nonce } => {
            put_chunk_header(out, 5, 0, 12);
            put_hb_info(out, *path, *nonce);
        }
        Chunk::Shutdown { cum_tsn } => {
            put_chunk_header(out, 7, 0, 8);
            out.extend_from_slice(&(*cum_tsn as u32).to_be_bytes());
        }
        Chunk::ShutdownAck => put_chunk_header(out, 8, 0, 4),
        Chunk::ShutdownComplete => put_chunk_header(out, 14, 0, 4),
        Chunk::Abort => put_chunk_header(out, 6, 0, 4),
    }
    pad4(out, start);
}

fn put_init_body(out: &mut Vec<u8>, init_tag: u64, a_rwnd: u64, out_streams: u16, in_streams: u16, init_tsn: u64) {
    out.extend_from_slice(&(init_tag as u32).to_be_bytes());
    out.extend_from_slice(&(a_rwnd.min(u32::MAX as u64) as u32).to_be_bytes());
    out.extend_from_slice(&out_streams.to_be_bytes());
    out.extend_from_slice(&in_streams.to_be_bytes());
    out.extend_from_slice(&(init_tsn as u32).to_be_bytes());
}

/// Supported-extensions parameter (type 0x8008): the offered extension
/// bitmask in one value byte, padded to the 8 bytes the model charges.
/// Omitted entirely when no extensions are offered (legacy wire size).
fn put_ext_param(out: &mut Vec<u8>, ext_flags: u8) {
    if ext_flags == 0 {
        return;
    }
    out.extend_from_slice(&0x8008u16.to_be_bytes());
    out.extend_from_slice(&5u16.to_be_bytes());
    out.push(ext_flags);
    out.extend_from_slice(&[0, 0, 0]); // pad to a 4-byte boundary
}

/// Heartbeat info parameter (type 1): the nonce, truncated to 4 bytes —
/// enough for the dissector; `path` is implicit in the addresses.
fn put_hb_info(out: &mut Vec<u8>, _path: u8, nonce: u64) {
    out.extend_from_slice(&1u16.to_be_bytes());
    out.extend_from_slice(&8u16.to_be_bytes());
    out.extend_from_slice(&(nonce as u32).to_be_bytes());
}

/// The cookie's 66-byte field serialization (padded by callers to the
/// modelled [`crate::sctp::wire::COOKIE_WIRE_LEN`]).
fn put_cookie(out: &mut Vec<u8>, c: &Cookie) {
    out.extend_from_slice(&c.peer_host.to_be_bytes());
    out.extend_from_slice(&c.peer_port.to_be_bytes());
    out.extend_from_slice(&c.local_port.to_be_bytes());
    out.extend_from_slice(&c.peer_tag.to_be_bytes());
    out.extend_from_slice(&c.local_tag.to_be_bytes());
    out.extend_from_slice(&c.peer_rwnd.to_be_bytes());
    out.extend_from_slice(&c.peer_init_tsn.to_be_bytes());
    out.extend_from_slice(&c.my_init_tsn.to_be_bytes());
    out.extend_from_slice(&c.out_streams.to_be_bytes());
    out.extend_from_slice(&c.in_streams.to_be_bytes());
    out.extend_from_slice(&c.created_at.as_nanos().to_be_bytes());
    out.extend_from_slice(&c.mac.to_be_bytes());
    // Negotiated extension set, packed into what used to be padding (after
    // the mac, so every pre-extension field keeps its offset and legacy
    // frames — zero padding here — decode to ext_flags 0).
    out.push(c.ext_flags);
}

// ---------------------------------------------------------------------------
// Decoding (ingress path of the real-socket backend)
// ---------------------------------------------------------------------------

/// Why a received frame failed to parse. Ingress drops carry this so the
/// live backend can count (and a test can assert) the reject reason.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DecodeError {
    /// Frame shorter than a header or a declared length.
    Truncated,
    /// Not IPv4 with a 20-byte header (the only shape this module emits).
    BadIpHeader,
    /// IP header checksum did not validate.
    BadIpChecksum,
    /// Source or destination address outside the simulator's 10.x/8 plan.
    BadAddress,
    /// IP protocol number is neither TCP (6) nor SCTP (132).
    UnknownProto(u8),
    /// SCTP CRC32c mismatch: (stored, computed).
    BadCrc(u32, u32),
    /// TCP ones-complement checksum did not validate.
    BadTcpChecksum,
    /// Unknown or malformed SCTP chunk of this type.
    BadChunk(u8),
}

impl std::fmt::Display for DecodeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DecodeError::Truncated => write!(f, "truncated frame"),
            DecodeError::BadIpHeader => write!(f, "not a plain IPv4 header"),
            DecodeError::BadIpChecksum => write!(f, "IP header checksum mismatch"),
            DecodeError::BadAddress => write!(f, "address outside the 10.x/8 plan"),
            DecodeError::UnknownProto(p) => write!(f, "unknown IP protocol {p}"),
            DecodeError::BadCrc(s, c) => {
                write!(f, "SCTP CRC32c mismatch: stored {s:#010x}, computed {c:#010x}")
            }
            DecodeError::BadTcpChecksum => write!(f, "TCP checksum mismatch"),
            DecodeError::BadChunk(t) => write!(f, "bad SCTP chunk type {t}"),
        }
    }
}

/// Invert [`host_ip`]: recover `(host, iface)` from a capture address.
pub fn addr_of_ip(ip: [u8; 4]) -> Result<IfAddr, DecodeError> {
    if ip[0] != 10 {
        return Err(DecodeError::BadAddress);
    }
    Ok(IfAddr::new(((ip[2] as u16) << 8) | ip[3] as u16, ip[1]))
}

fn be16(b: &[u8], at: usize) -> u16 {
    u16::from_be_bytes([b[at], b[at + 1]])
}

fn be32(b: &[u8], at: usize) -> u32 {
    u32::from_be_bytes([b[at], b[at + 1], b[at + 2], b[at + 3]])
}

fn be64(b: &[u8], at: usize) -> u64 {
    u64::from_be_bytes([
        b[at], b[at + 1], b[at + 2], b[at + 3], b[at + 4], b[at + 5], b[at + 6], b[at + 7],
    ])
}

/// Parse a full IPv4 frame (as produced by [`encode_packet`]) back into a
/// [`Packet`], verifying every checksum on the way. Snapped captures do not
/// decode — the frame must carry its full declared length.
pub fn decode_packet(frame: &[u8]) -> Result<Packet, DecodeError> {
    if frame.len() < IP_HEADER as usize {
        return Err(DecodeError::Truncated);
    }
    if frame[0] != 0x45 {
        return Err(DecodeError::BadIpHeader);
    }
    if be16(frame, 2) as usize != frame.len() {
        return Err(DecodeError::Truncated);
    }
    if ones_complement_sum(&frame[..IP_HEADER as usize], 0) != 0xFFFF {
        return Err(DecodeError::BadIpChecksum);
    }
    let src_ip = [frame[12], frame[13], frame[14], frame[15]];
    let dst_ip = [frame[16], frame[17], frame[18], frame[19]];
    let src = addr_of_ip(src_ip)?;
    let dst = addr_of_ip(dst_ip)?;
    let body = &frame[IP_HEADER as usize..];
    let body = match frame[9] {
        6 => Proto::Tcp(decode_tcp(body, src_ip, dst_ip)?),
        132 => {
            let mut p = decode_sctp(body)?;
            // The heartbeat `path` index is not on the wire ("implicit in
            // the addresses"): path i runs over interface i on both ends,
            // so the sending interface recovers it.
            for c in &mut p.chunks {
                match c {
                    Chunk::Heartbeat { path, .. } | Chunk::HeartbeatAck { path, .. } => {
                        *path = src.iface;
                    }
                    _ => {}
                }
            }
            Proto::Sctp(p)
        }
        other => return Err(DecodeError::UnknownProto(other)),
    };
    Ok(Packet { src, dst, body })
}

/// Parse an SCTP packet (common header + chunks), verifying the CRC32c
/// stored per RFC 4960 Appendix B (little-endian, computed with the
/// checksum field zeroed).
pub fn decode_sctp(b: &[u8]) -> Result<SctpPacket, DecodeError> {
    if b.len() < 12 {
        return Err(DecodeError::Truncated);
    }
    let stored = u32::from_le_bytes([b[8], b[9], b[10], b[11]]);
    let mut zeroed = b.to_vec();
    zeroed[8..12].fill(0);
    let computed = crc32c(&zeroed);
    if stored != computed {
        return Err(DecodeError::BadCrc(stored, computed));
    }
    let mut p = SctpPacket {
        src_port: be16(b, 0),
        dst_port: be16(b, 2),
        vtag: be32(b, 4) as u64,
        chunks: Vec::new(),
    };
    let mut off = 12usize;
    while off < b.len() {
        if off + 4 > b.len() {
            return Err(DecodeError::Truncated);
        }
        let ty = b[off];
        let flags = b[off + 1];
        let len = be16(b, off + 2) as usize;
        if len < 4 || off + len > b.len() {
            return Err(DecodeError::Truncated);
        }
        let v = &b[off + 4..off + len];
        p.chunks.push(decode_chunk(ty, flags, v)?);
        off += len.div_ceil(4) * 4;
    }
    Ok(p)
}

fn decode_chunk(ty: u8, flags: u8, v: &[u8]) -> Result<Chunk, DecodeError> {
    let short = || DecodeError::BadChunk(ty);
    Ok(match ty {
        0 => {
            if v.len() < 12 {
                return Err(short());
            }
            Chunk::Data(DataChunk {
                tsn: be32(v, 0) as u64,
                stream: be16(v, 4),
                ssn: be16(v, 6) as u32,
                ppid: be32(v, 8),
                begin: flags & 0x02 != 0,
                end: flags & 0x01 != 0,
                unordered: flags & 0x04 != 0,
                data: Bytes::copy_from_slice(&v[12..]),
            })
        }
        3 => {
            if v.len() < 12 {
                return Err(short());
            }
            let cum_tsn = be32(v, 0) as u64;
            let ngaps = be16(v, 8) as usize;
            if v.len() < 12 + 4 * ngaps {
                return Err(short());
            }
            let gaps = (0..ngaps)
                .map(|i| {
                    let s = be16(v, 12 + 4 * i) as u64;
                    let e = be16(v, 14 + 4 * i) as u64;
                    (cum_tsn + s, cum_tsn + e + 1)
                })
                .collect();
            // The wire carries the number of duplicate-TSN entries (the
            // encoder writes none); the model's "duplicates seen since the
            // last SACK" count decodes to its neutral zero.
            Chunk::Sack { cum_tsn, a_rwnd: be32(v, 4) as u64, gaps, dup_count: 0 }
        }
        1 => {
            if v.len() < 16 {
                return Err(short());
            }
            let (init_tag, a_rwnd, out_streams, in_streams, init_tsn) = decode_init_body(v);
            let ext_flags = decode_ext_param(v, 16);
            Chunk::Init { init_tag, a_rwnd, out_streams, in_streams, init_tsn, ext_flags }
        }
        2 => {
            // INIT body + optional supported-extensions parameter + the
            // state-cookie parameter (type 7).
            if v.len() < 16 {
                return Err(short());
            }
            let (init_tag, a_rwnd, out_streams, in_streams, init_tsn) = decode_init_body(v);
            let ext_flags = decode_ext_param(v, 16);
            let coff = if ext_flags != 0 { 24 } else { 16 };
            if v.len() < coff + 4 + COOKIE_BYTES || be16(v, coff) != 7 {
                return Err(short());
            }
            let cookie = decode_cookie(&v[coff + 4..coff + 4 + COOKIE_BYTES]);
            Chunk::InitAck { init_tag, a_rwnd, out_streams, in_streams, init_tsn, ext_flags, cookie }
        }
        10 => {
            if v.len() < COOKIE_BYTES {
                return Err(short());
            }
            Chunk::CookieEcho { cookie: decode_cookie(&v[..COOKIE_BYTES]) }
        }
        11 => Chunk::CookieAck,
        4 | 5 => {
            // Heartbeat info parameter: the nonce, u32 on the wire. The
            // path index is fixed up from the addressing by the caller.
            if v.len() < 8 || be16(v, 0) != 1 {
                return Err(short());
            }
            let nonce = be32(v, 4) as u64;
            if ty == 4 {
                Chunk::Heartbeat { path: 0, nonce }
            } else {
                Chunk::HeartbeatAck { path: 0, nonce }
            }
        }
        7 => {
            if v.len() < 4 {
                return Err(short());
            }
            Chunk::Shutdown { cum_tsn: be32(v, 0) as u64 }
        }
        8 => Chunk::ShutdownAck,
        14 => Chunk::ShutdownComplete,
        6 => Chunk::Abort,
        64 => {
            if v.len() < 16 {
                return Err(short());
            }
            let begin = flags & 0x02 != 0;
            let slot = be32(v, 12);
            Chunk::IData(IDataChunk {
                tsn: be32(v, 0) as u64,
                stream: be16(v, 4),
                mid: be32(v, 8) as u64,
                // The shared word: PPID on the B fragment (whose FSN is 0
                // by definition), FSN elsewhere (whose PPID rides on the B
                // fragment) — each decodes to its neutral value otherwise.
                fsn: if begin { 0 } else { slot },
                ppid: if begin { slot } else { 0 },
                begin,
                end: flags & 0x01 != 0,
                unordered: flags & 0x04 != 0,
                data: Bytes::copy_from_slice(&v[16..]),
            })
        }
        194 => {
            if v.len() < 4 || (v.len() - 4) % 8 != 0 {
                return Err(short());
            }
            let new_cum = be32(v, 0) as u64;
            let skips = (0..(v.len() - 4) / 8)
                .map(|i| (be16(v, 4 + 8 * i), be32(v, 8 + 8 * i) as u64))
                .collect();
            Chunk::ForwardTsn { new_cum, skips }
        }
        other => return Err(DecodeError::BadChunk(other)),
    })
}

/// Parse a supported-extensions parameter (type 0x8008) at `off`, if
/// present; absent (legacy frame) decodes to no extensions.
fn decode_ext_param(v: &[u8], off: usize) -> u8 {
    if v.len() >= off + 8 && be16(v, off) == 0x8008 && be16(v, off + 2) == 5 {
        v[off + 4]
    } else {
        0
    }
}

fn decode_init_body(v: &[u8]) -> (u64, u64, u16, u16, u64) {
    (be32(v, 0) as u64, be32(v, 4) as u64, be16(v, 8), be16(v, 10), be32(v, 12) as u64)
}

/// Bytes [`put_cookie`] writes before padding: every field full-width, so
/// the cookie (and its MAC) round-trips exactly.
const COOKIE_BYTES: usize = 67;

fn decode_cookie(v: &[u8]) -> Cookie {
    debug_assert!(v.len() >= COOKIE_BYTES);
    Cookie {
        ext_flags: v[66],
        peer_host: be16(v, 0),
        peer_port: be16(v, 2),
        local_port: be16(v, 4),
        peer_tag: be64(v, 6),
        local_tag: be64(v, 14),
        peer_rwnd: be64(v, 22),
        peer_init_tsn: be64(v, 30),
        my_init_tsn: be64(v, 38),
        out_streams: be16(v, 46),
        in_streams: be16(v, 48),
        created_at: simcore::SimTime::from_nanos(be64(v, 50)),
        mac: be64(v, 58),
    }
}

/// Parse a TCP segment, verifying the ones-complement checksum over the
/// pseudo-header. Fields the wire cannot carry come back neutral: `probe`
/// is false, the payload arrives as one contiguous slice.
pub fn decode_tcp(b: &[u8], src_ip: [u8; 4], dst_ip: [u8; 4]) -> Result<TcpSegment, DecodeError> {
    if b.len() < 20 {
        return Err(DecodeError::Truncated);
    }
    let mut pseudo = 0u32;
    pseudo += u16::from_be_bytes([src_ip[0], src_ip[1]]) as u32;
    pseudo += u16::from_be_bytes([src_ip[2], src_ip[3]]) as u32;
    pseudo += u16::from_be_bytes([dst_ip[0], dst_ip[1]]) as u32;
    pseudo += u16::from_be_bytes([dst_ip[2], dst_ip[3]]) as u32;
    pseudo += 6 + b.len() as u32;
    if ones_complement_sum(b, pseudo) != 0xFFFF {
        return Err(DecodeError::BadTcpChecksum);
    }
    let header_len = (b[12] >> 4) as usize * 4;
    if header_len < 20 || header_len > b.len() {
        return Err(DecodeError::Truncated);
    }
    let wire_flags = b[13];
    let mut flags = Flags::EMPTY;
    if wire_flags & 0x01 != 0 {
        flags = flags | Flags::FIN;
    }
    if wire_flags & 0x02 != 0 {
        flags = flags | Flags::SYN;
    }
    if wire_flags & 0x04 != 0 {
        flags = flags | Flags::RST;
    }
    if wire_flags & 0x10 != 0 {
        flags = flags | Flags::ACK;
    }
    let mut sack = Vec::new();
    let opts = &b[20..header_len];
    let mut i = 0usize;
    while i < opts.len() {
        match opts[i] {
            0 => break,    // end of options
            1 => i += 1,   // NOP
            kind => {
                if i + 1 >= opts.len() {
                    return Err(DecodeError::Truncated);
                }
                let olen = opts[i + 1] as usize;
                if olen < 2 || i + olen > opts.len() {
                    return Err(DecodeError::Truncated);
                }
                if kind == 5 {
                    let blocks = &opts[i + 2..i + olen];
                    for w in blocks.chunks_exact(8) {
                        sack.push((be32(w, 0) as u64, be32(w, 4) as u64));
                    }
                }
                i += olen;
            }
        }
    }
    let payload_bytes = &b[header_len..];
    let payload_len = payload_bytes.len() as u32;
    let payload =
        if payload_bytes.is_empty() { vec![] } else { vec![Bytes::copy_from_slice(payload_bytes)] };
    Ok(TcpSegment {
        src_port: be16(b, 0),
        dst_port: be16(b, 2),
        flags,
        seq: be32(b, 4) as u64,
        ack: be32(b, 8) as u64,
        wnd: be16(b, 14) as u64,
        sack,
        probe: false,
        payload,
        payload_len,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use bytes::Bytes;
    use netsim::IfAddr;
    use crate::sctp::DataChunk;

    fn sctp_packet() -> Packet {
        Packet {
            src: IfAddr::new(0, 1),
            dst: IfAddr::new(3, 1),
            body: Proto::Sctp(SctpPacket {
                src_port: 5600,
                dst_port: 5600,
                vtag: 0xDEAD_BEEF,
                chunks: vec![
                    Chunk::Data(DataChunk {
                        tsn: 42,
                        stream: 3,
                        ssn: 7,
                        begin: true,
                        end: false,
                        unordered: false,
                        ppid: 9,
                        data: Bytes::from_static(b"hello world"),
                    }),
                    Chunk::Sack { cum_tsn: 41, a_rwnd: 220 * 1024, gaps: vec![(44, 46)], dup_count: 1 },
                ],
            }),
        }
    }

    #[test]
    fn sctp_frame_layout_and_lengths() {
        let pkt = sctp_packet();
        let frame = encode_packet(&pkt, 5_000_000);
        // IPv4 header.
        assert_eq!(frame[0], 0x45);
        assert_eq!(frame[9], 132, "IP proto = SCTP");
        assert_eq!(&frame[12..16], &[10, 1, 0, 0], "src 10.1.0.0");
        assert_eq!(&frame[16..20], &[10, 1, 0, 3], "dst 10.1.0.3");
        assert_eq!(
            u16::from_be_bytes([frame[2], frame[3]]) as usize,
            frame.len(),
            "IP total length matches"
        );
        // SCTP common header at offset 20.
        assert_eq!(u16::from_be_bytes([frame[20], frame[21]]), 5600);
        assert_eq!(u32::from_be_bytes([frame[24], frame[25], frame[26], frame[27]]), 0xDEAD_BEEF);
        // Chunk sizes: DATA 16 + 11 = 27 padded 28; SACK 16 + 4 = 20.
        let body = &pkt.body;
        assert_eq!(frame.len() as u32, IP_HEADER + body_wire_len(body));
        // DATA chunk header at offset 32: type 0, flags B=0x02.
        assert_eq!(frame[32], 0);
        assert_eq!(frame[33], 0x02);
        assert_eq!(u16::from_be_bytes([frame[34], frame[35]]), 27, "unpadded chunk length");
        // SACK at 32 + 28 = 60: type 3, one gap block [3, 4] rel cum 41.
        assert_eq!(frame[60], 3);
        assert_eq!(u32::from_be_bytes([frame[64], frame[65], frame[66], frame[67]]), 41, "cum TSN");
        assert_eq!(u16::from_be_bytes([frame[72], frame[73]]), 1, "one gap block");
        assert_eq!(u16::from_be_bytes([frame[76], frame[77]]), 3, "gap start offset");
        assert_eq!(u16::from_be_bytes([frame[78], frame[79]]), 4, "gap end offset");
    }

    fn body_wire_len(b: &Proto) -> u32 {
        match b {
            Proto::Tcp(s) => s.wire_len(),
            Proto::Sctp(p) => p.wire_len(),
        }
    }

    #[test]
    fn sctp_crc32c_round_trips() {
        // The stored checksum must equal crc32c over the SCTP bytes with the
        // checksum field zeroed — the round-trip the satellite task pins to
        // `transport/src/crc32c.rs`.
        let frame = encode_packet(&sctp_packet(), 0);
        let sctp = &frame[IP_HEADER as usize..];
        let stored = u32::from_le_bytes([sctp[8], sctp[9], sctp[10], sctp[11]]);
        let mut zeroed = sctp.to_vec();
        zeroed[8..12].fill(0);
        assert_eq!(stored, crc32c(&zeroed));
        // And it is a real CRC: flipping any byte breaks it.
        zeroed[0] ^= 0xFF;
        assert_ne!(stored, crc32c(&zeroed));
    }

    #[test]
    fn ip_header_checksum_is_valid() {
        let frame = encode_packet(&sctp_packet(), 0);
        // Summing the full header including the stored checksum yields 0xFFFF.
        assert_eq!(ones_complement_sum(&frame[..20], 0), 0xFFFF);
    }

    #[test]
    fn tcp_frame_checksum_and_options() {
        let seg = TcpSegment {
            src_port: 5700,
            dst_port: 5700,
            flags: Flags::ACK,
            seq: 1000,
            ack: 2000,
            wnd: 220 * 1024, // larger than u16: clamps on the wire
            sack: vec![(3000, 4460)],
            probe: false,
            payload: vec![Bytes::from_static(&[0xAB; 16])],
            payload_len: 16,
        };
        let pkt = Packet { src: IfAddr::new(1, 0), dst: IfAddr::new(2, 0), body: Proto::Tcp(seg) };
        let frame = encode_packet(&pkt, 12_000_000);
        assert_eq!(frame[9], 6, "IP proto = TCP");
        let tcp = &frame[20..];
        assert_eq!(u32::from_be_bytes([tcp[4], tcp[5], tcp[6], tcp[7]]), 1000);
        let header_len = (tcp[12] >> 4) as usize * 4;
        // 20 base + 12 ts + (2 NOP + 10 sack) = 44.
        assert_eq!(header_len, 44);
        assert_eq!(tcp[13] & 0x10, 0x10, "ACK set");
        assert_eq!(u16::from_be_bytes([tcp[14], tcp[15]]), u16::MAX, "window clamped");
        // Verify the transport checksum over the pseudo-header.
        let src_ip = [10, 0, 0, 1];
        let dst_ip = [10, 0, 0, 2];
        let mut pseudo = 0u32;
        pseudo += u16::from_be_bytes([src_ip[0], src_ip[1]]) as u32;
        pseudo += u16::from_be_bytes([src_ip[2], src_ip[3]]) as u32;
        pseudo += u16::from_be_bytes([dst_ip[0], dst_ip[1]]) as u32;
        pseudo += u16::from_be_bytes([dst_ip[2], dst_ip[3]]) as u32;
        pseudo += 6 + tcp.len() as u32;
        assert_eq!(ones_complement_sum(tcp, pseudo), 0xFFFF, "checksum validates");
    }

    #[test]
    fn meta_classifies_packets() {
        let (proto, kind, tsn, ntsn, stream) = pkt_meta(&sctp_packet().body);
        assert_eq!(proto, trace::Proto8::Sctp);
        assert_eq!(kind, trace::PktKind::Data);
        assert_eq!((tsn, ntsn, stream), (42, 1, 3));

        let ack = Proto::Tcp(TcpSegment {
            src_port: 1,
            dst_port: 1,
            flags: Flags::ACK,
            seq: 0,
            ack: 10,
            wnd: 1000,
            sack: vec![],
            probe: false,
            payload: vec![],
            payload_len: 0,
        });
        let (proto, kind, ..) = pkt_meta(&ack);
        assert_eq!(proto, trace::Proto8::Tcp);
        assert_eq!(kind, trace::PktKind::Ack);
    }

    #[test]
    fn capture_snaps_but_reports_full_length() {
        let pkt = sctp_packet();
        let full = encode_packet(&pkt, 0).len() as u32;
        let (frame, orig) = capture_frame(&pkt, 0, 40);
        assert_eq!(frame.len(), 40);
        assert_eq!(orig, full);
    }

    #[test]
    fn sctp_decode_inverts_encode() {
        let pkt = sctp_packet();
        let frame = encode_packet(&pkt, 5_000_000);
        let back = decode_packet(&frame).expect("own frames must decode");
        assert_eq!(back.src, IfAddr::new(0, 1));
        assert_eq!(back.dst, IfAddr::new(3, 1));
        let Proto::Sctp(p) = &back.body else { panic!("proto flipped") };
        assert_eq!((p.src_port, p.dst_port, p.vtag), (5600, 5600, 0xDEAD_BEEF));
        assert_eq!(p.chunks.len(), 2);
        let Chunk::Data(d) = &p.chunks[0] else { panic!("DATA first") };
        assert_eq!((d.tsn, d.stream, d.ssn, d.ppid), (42, 3, 7, 9));
        assert!(d.begin && !d.end && !d.unordered);
        assert_eq!(&d.data[..], b"hello world");
        let Chunk::Sack { cum_tsn, a_rwnd, gaps, dup_count } = &p.chunks[1] else {
            panic!("SACK second")
        };
        assert_eq!((*cum_tsn, *a_rwnd, *dup_count), (41, 220 * 1024, 0));
        assert_eq!(gaps, &vec![(44, 46)], "absolute [start, end) reconstructed from offsets");
        // Byte-level: re-encoding the decoded packet reproduces the frame.
        assert_eq!(encode_packet(&back, 5_000_000), frame);
    }

    #[test]
    fn corrupted_crc_is_rejected() {
        // Golden regression for the ingress reject path: flip one payload
        // byte (IP header checksum still validates — it covers only the
        // header) and the SCTP CRC32c must catch it.
        let mut frame = encode_packet(&sctp_packet(), 0);
        let last = frame.len() - 1;
        frame[last] ^= 0x01;
        match decode_packet(&frame) {
            Err(DecodeError::BadCrc(stored, computed)) => assert_ne!(stored, computed),
            other => panic!("corrupt frame must be rejected with BadCrc, got {other:?}"),
        }
        // And un-flipping restores decodability.
        frame[last] ^= 0x01;
        assert!(decode_packet(&frame).is_ok());
    }

    #[test]
    fn corrupted_ip_header_is_rejected() {
        let mut frame = encode_packet(&sctp_packet(), 0);
        frame[8] ^= 0x10; // TTL
        assert_eq!(decode_packet(&frame).unwrap_err(), DecodeError::BadIpChecksum);
    }

    #[test]
    fn tcp_decode_inverts_encode() {
        let seg = TcpSegment {
            src_port: 5700,
            dst_port: 5701,
            flags: Flags::ACK,
            seq: 1000,
            ack: 2000,
            wnd: 30_000,
            sack: vec![(3000, 4460), (6000, 7448)],
            probe: false,
            payload: vec![Bytes::from_static(&[0xAB; 7]), Bytes::from_static(&[0xCD; 9])],
            payload_len: 16,
        };
        let pkt = Packet { src: IfAddr::new(1, 0), dst: IfAddr::new(2, 0), body: Proto::Tcp(seg) };
        let frame = encode_packet(&pkt, 12_000_000);
        let back = decode_packet(&frame).expect("own frames must decode");
        let Proto::Tcp(s) = &back.body else { panic!("proto flipped") };
        assert_eq!((s.src_port, s.dst_port), (5700, 5701));
        assert_eq!((s.seq, s.ack, s.wnd), (1000, 2000, 30_000));
        assert_eq!(s.sack, vec![(3000, 4460), (6000, 7448)]);
        assert_eq!(s.payload_len, 16, "split payload slices merge on decode");
        assert_eq!(encode_packet(&back, 12_000_000), frame, "re-encode is byte-identical");
    }

    #[test]
    fn corrupted_tcp_checksum_is_rejected() {
        let seg = TcpSegment {
            src_port: 1,
            dst_port: 2,
            flags: Flags::SYN,
            seq: 0,
            ack: 0,
            wnd: 1000,
            sack: vec![],
            probe: false,
            payload: vec![],
            payload_len: 0,
        };
        let pkt = Packet { src: IfAddr::new(0, 0), dst: IfAddr::new(1, 0), body: Proto::Tcp(seg) };
        let mut frame = encode_packet(&pkt, 0);
        let last = frame.len() - 1;
        frame[last] ^= 0x40;
        assert_eq!(decode_packet(&frame).unwrap_err(), DecodeError::BadTcpChecksum);
    }

    #[test]
    fn addr_mapping_inverts() {
        for (host, iface) in [(0u16, 0u8), (7, 2), (300, 1), (65535, 255)] {
            assert_eq!(addr_of_ip(host_ip(host, iface)), Ok(IfAddr::new(host, iface)));
        }
        assert_eq!(addr_of_ip([192, 168, 0, 1]), Err(DecodeError::BadAddress));
    }

    #[test]
    fn heartbeat_path_recovered_from_addresses() {
        let pkt = Packet {
            src: IfAddr::new(2, 1),
            dst: IfAddr::new(5, 1),
            body: Proto::Sctp(SctpPacket {
                src_port: 7000,
                dst_port: 7000,
                vtag: 77,
                chunks: vec![Chunk::Heartbeat { path: 1, nonce: 0xFEED_FACE }],
            }),
        };
        let back = decode_packet(&encode_packet(&pkt, 0)).unwrap();
        let Proto::Sctp(p) = &back.body else { panic!() };
        let Chunk::Heartbeat { path, nonce } = &p.chunks[0] else { panic!() };
        assert_eq!((*path, *nonce), (1, 0xFEED_FACE));
    }

    #[test]
    fn idata_and_forward_tsn_round_trip() {
        let pkt = Packet {
            src: IfAddr::new(0, 0),
            dst: IfAddr::new(1, 0),
            body: Proto::Sctp(SctpPacket {
                src_port: 5600,
                dst_port: 5600,
                vtag: 7,
                chunks: vec![
                    Chunk::IData(IDataChunk {
                        tsn: 100,
                        stream: 2,
                        mid: 5,
                        fsn: 0,
                        begin: true,
                        end: false,
                        unordered: false,
                        ppid: 0xC0FE,
                        data: Bytes::from_static(b"first"),
                    }),
                    Chunk::IData(IDataChunk {
                        tsn: 101,
                        stream: 2,
                        mid: 5,
                        fsn: 1,
                        begin: false,
                        end: true,
                        unordered: false,
                        ppid: 0, // non-B fragment: PPID rides on the wire's B fragment
                        data: Bytes::from_static(b"second"),
                    }),
                    Chunk::ForwardTsn { new_cum: 99, skips: vec![(2, 4), (5, 0)] },
                ],
            }),
        };
        let frame = encode_packet(&pkt, 0);
        let back = decode_packet(&frame).expect("own frames must decode");
        let Proto::Sctp(p) = &back.body else { panic!("proto flipped") };
        let Chunk::IData(b) = &p.chunks[0] else { panic!("I-DATA first") };
        assert_eq!((b.tsn, b.stream, b.mid, b.fsn, b.ppid), (100, 2, 5, 0, 0xC0FE));
        assert!(b.begin && !b.end);
        let Chunk::IData(e) = &p.chunks[1] else { panic!("I-DATA second") };
        assert_eq!((e.tsn, e.mid, e.fsn, e.ppid), (101, 5, 1, 0));
        assert!(!e.begin && e.end);
        assert_eq!(&e.data[..], b"second");
        let Chunk::ForwardTsn { new_cum, skips } = &p.chunks[2] else { panic!("FWD-TSN third") };
        assert_eq!((*new_cum, skips.as_slice()), (99, &[(2u16, 4u64), (5, 0)][..]));
        assert_eq!(encode_packet(&back, 0), frame, "re-encode is byte-identical");
        // The serialized sizes match the model's accounting.
        assert_eq!(frame.len() as u32, IP_HEADER + body_wire_len(&pkt.body));
    }

    #[test]
    fn ext_handshake_round_trips() {
        use crate::sctp::{EXT_INTERLEAVE, EXT_PR_SCTP};
        let cookie = Cookie {
            peer_host: 0,
            peer_port: 5600,
            local_port: 5600,
            peer_tag: 11,
            local_tag: 22,
            peer_rwnd: 1 << 16,
            peer_init_tsn: 1,
            my_init_tsn: 1,
            out_streams: 10,
            in_streams: 10,
            created_at: simcore::SimTime::from_nanos(5),
            ext_flags: EXT_INTERLEAVE | EXT_PR_SCTP,
            mac: 0xFACE,
        };
        let pkt = Packet {
            src: IfAddr::new(1, 0),
            dst: IfAddr::new(0, 0),
            body: Proto::Sctp(SctpPacket {
                src_port: 5600,
                dst_port: 5600,
                vtag: 11,
                chunks: vec![
                    Chunk::Init {
                        init_tag: 1,
                        a_rwnd: 1 << 16,
                        out_streams: 10,
                        in_streams: 10,
                        init_tsn: 1,
                        ext_flags: EXT_INTERLEAVE,
                    },
                    Chunk::InitAck {
                        init_tag: 2,
                        a_rwnd: 1 << 16,
                        out_streams: 10,
                        in_streams: 10,
                        init_tsn: 1,
                        ext_flags: EXT_INTERLEAVE | EXT_PR_SCTP,
                        cookie,
                    },
                    Chunk::CookieEcho { cookie },
                ],
            }),
        };
        let frame = encode_packet(&pkt, 0);
        let back = decode_packet(&frame).expect("own frames must decode");
        let Proto::Sctp(p) = &back.body else { panic!() };
        let Chunk::Init { ext_flags, .. } = &p.chunks[0] else { panic!("INIT first") };
        assert_eq!(*ext_flags, EXT_INTERLEAVE);
        let Chunk::InitAck { ext_flags, cookie: c2, .. } = &p.chunks[1] else { panic!() };
        assert_eq!(*ext_flags, EXT_INTERLEAVE | EXT_PR_SCTP);
        assert_eq!(*c2, cookie, "cookie round-trips including ext_flags and mac");
        let Chunk::CookieEcho { cookie: c3 } = &p.chunks[2] else { panic!() };
        assert_eq!(*c3, cookie);
        assert_eq!(encode_packet(&back, 0), frame);
        assert_eq!(frame.len() as u32, IP_HEADER + body_wire_len(&pkt.body));
    }

    #[test]
    fn legacy_handshake_wire_size_unchanged() {
        // ext_flags = 0 emits no supported-extensions parameter: the frame
        // is byte-for-byte the pre-extension encoding.
        let pkt = Packet {
            src: IfAddr::new(1, 0),
            dst: IfAddr::new(0, 0),
            body: Proto::Sctp(SctpPacket {
                src_port: 5600,
                dst_port: 5600,
                vtag: 0,
                chunks: vec![Chunk::Init {
                    init_tag: 1,
                    a_rwnd: 1 << 16,
                    out_streams: 10,
                    in_streams: 10,
                    init_tsn: 1,
                    ext_flags: 0,
                }],
            }),
        };
        let frame = encode_packet(&pkt, 0);
        // IP 20 + SCTP common 12 + INIT 20.
        assert_eq!(frame.len(), 52);
        let back = decode_packet(&frame).unwrap();
        let Proto::Sctp(p) = &back.body else { panic!() };
        let Chunk::Init { ext_flags, .. } = &p.chunks[0] else { panic!() };
        assert_eq!(*ext_flags, 0);
    }

    #[test]
    fn snapped_frames_do_not_decode() {
        let (snapped, _) = capture_frame(&sctp_packet(), 0, 40);
        assert_eq!(decode_packet(&snapped).unwrap_err(), DecodeError::Truncated);
    }
}
