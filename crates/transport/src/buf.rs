//! Byte-sequence buffers built on reference-counted [`Bytes`] chunks.
//!
//! The simulator moves *real* bytes end to end (so integrity is testable),
//! but never copies payloads: a segment carries cheap `Bytes` slices into
//! the sender's original buffers.

use std::collections::VecDeque;

use bytes::{Buf, Bytes};

/// A FIFO of bytes addressed by an absolute, monotonically increasing
/// sequence number — the retained send window of a TCP socket.
///
/// `head_seq` is the sequence number of the first retained byte; bytes below
/// it have been acknowledged and dropped.
#[derive(Debug, Default)]
pub struct ByteQueue {
    chunks: VecDeque<Bytes>,
    head_seq: u64,
    len: u64,
}

impl ByteQueue {
    /// An empty queue whose first byte will carry sequence `start_seq`.
    pub fn new(start_seq: u64) -> Self {
        ByteQueue { chunks: VecDeque::new(), head_seq: start_seq, len: 0 }
    }

    /// Sequence number of the first retained byte.
    #[inline]
    pub fn head_seq(&self) -> u64 {
        self.head_seq
    }

    /// One past the last byte.
    #[inline]
    pub fn end_seq(&self) -> u64 {
        self.head_seq + self.len
    }

    /// Bytes currently retained.
    #[inline]
    pub fn len(&self) -> u64 {
        self.len
    }

    /// True when no bytes are queued.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Append data at the tail.
    pub fn push(&mut self, data: Bytes) {
        if data.is_empty() {
            return;
        }
        self.len += data.len() as u64;
        self.chunks.push_back(data);
    }

    /// Drop all bytes below `seq` (they were acknowledged). `seq` values at
    /// or below the current head are no-ops; `seq` beyond the end panics.
    pub fn advance_to(&mut self, seq: u64) {
        assert!(seq <= self.end_seq(), "ack beyond buffered data");
        while self.head_seq < seq {
            let front = self.chunks.front_mut().expect("length invariant");
            let drop = ((seq - self.head_seq) as usize).min(front.len());
            if drop == front.len() {
                self.chunks.pop_front();
            } else {
                front.advance(drop);
            }
            self.head_seq += drop as u64;
            self.len -= drop as u64;
        }
    }

    /// Cheap handles to the bytes in `[seq, seq + want)`, clamped to what is
    /// buffered. Used to (re)build segment payloads.
    pub fn slice(&self, seq: u64, want: usize) -> Vec<Bytes> {
        let mut out = Vec::new();
        self.slice_into(seq, want, &mut out);
        out
    }

    /// [`slice`](Self::slice) appended into a caller-provided (usually
    /// pooled) list, so the per-segment emit path reuses one buffer instead
    /// of allocating a fresh `Vec` per packet.
    pub fn slice_into(&self, seq: u64, want: usize, out: &mut Vec<Bytes>) {
        assert!(seq >= self.head_seq, "slice below retained window");
        let mut skip = (seq - self.head_seq) as usize;
        let mut want = want.min((self.end_seq() - seq) as usize);
        for c in &self.chunks {
            if want == 0 {
                break;
            }
            if skip >= c.len() {
                skip -= c.len();
                continue;
            }
            let take = (c.len() - skip).min(want);
            out.push(c.slice(skip..skip + take));
            want -= take;
            skip = 0;
        }
    }
}

/// Concatenate a list of chunks into one owned buffer (test/verification
/// helper; the hot paths never do this).
pub fn concat(chunks: &[Bytes]) -> Bytes {
    let total: usize = chunks.iter().map(|c| c.len()).sum();
    let mut v = Vec::with_capacity(total);
    for c in chunks {
        v.extend_from_slice(c);
    }
    Bytes::from(v)
}

/// Total length of a chunk list.
pub fn total_len(chunks: &[Bytes]) -> usize {
    chunks.iter().map(|c| c.len()).sum()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn bq(parts: &[&[u8]]) -> ByteQueue {
        let mut q = ByteQueue::new(100);
        for p in parts {
            q.push(Bytes::copy_from_slice(p));
        }
        q
    }

    #[test]
    fn push_tracks_len_and_seqs() {
        let q = bq(&[b"hello", b" world"]);
        assert_eq!(q.head_seq(), 100);
        assert_eq!(q.end_seq(), 111);
        assert_eq!(q.len(), 11);
    }

    #[test]
    fn slice_spans_chunk_boundaries() {
        let q = bq(&[b"hello", b" world"]);
        let s = concat(&q.slice(103, 5));
        assert_eq!(&s[..], b"lo wo");
    }

    #[test]
    fn slice_clamps_to_buffered() {
        let q = bq(&[b"abc"]);
        let s = concat(&q.slice(102, 100));
        assert_eq!(&s[..], b"c");
        assert!(q.slice(103, 10).is_empty());
    }

    #[test]
    fn advance_drops_whole_and_partial_chunks() {
        let mut q = bq(&[b"hello", b" world"]);
        q.advance_to(107); // drops "hello" and " w"
        assert_eq!(q.head_seq(), 107);
        assert_eq!(concat(&q.slice(107, 10))[..], b"orld"[..]);
        // Old acks are no-ops.
        q.advance_to(50);
        assert_eq!(q.head_seq(), 107);
    }

    #[test]
    #[should_panic(expected = "ack beyond")]
    fn advance_past_end_panics() {
        let mut q = bq(&[b"abc"]);
        q.advance_to(104);
    }

    #[test]
    fn empty_push_is_noop() {
        let mut q = ByteQueue::new(0);
        q.push(Bytes::new());
        assert!(q.is_empty());
    }
}
