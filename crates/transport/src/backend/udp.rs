//! Userspace SCTP-over-UDP (and TCP-over-UDP) socket driver.
//!
//! Encapsulation is RFC 6951 in spirit: the *entire* IPv4 frame the sim
//! would have put on the wire ([`wire_bytes::encode_packet`]) travels as
//! the payload of one UDP datagram. Carrying the IP header too keeps the
//! datagram self-describing — ingress recovers src/dst [`IfAddr`]s from the
//! `10.iface.host_hi.host_lo` address plan without any out-of-band framing
//! — and lets both checksums (IP header, SCTP CRC32c / TCP checksum) guard
//! the real path end to end.
//!
//! The driver is deliberately dumb: no loss model, no latency model, no
//! reordering — the real network supplies those. Egress is a synchronous
//! nonblocking `send_to`; ingress is a drain-until-`WouldBlock` loop that
//! verifies and decodes each datagram ([`wire_bytes::decode_packet`]) and
//! hands the survivors to the reactor for dispatch. Malformed or corrupted
//! datagrams are counted and dropped, never delivered: the CRC32c gate
//! rejects before any chunk parsing, exactly the discard rule RFC 4960 §6.8
//! prescribes.
//!
//! Peer routing is a tiny linear map from destination [`IfAddr`] to socket
//! address — cluster-scale fan-out would want a hash map, but a ping-pong
//! pair wants two entries and zero hashing.

use std::io;
use std::net::{SocketAddr, UdpSocket};

use netsim::{IfAddr, Verdict};

use crate::backend::Backend;
use crate::ip::{self, Packet};
use crate::{wire_bytes, World, Wx};

/// Largest datagram we accept: a full IPv4 frame at the sim's jumbo-free
/// MTU plus headroom. Anything longer than the buffer is truncated by the
/// kernel and will fail the IP total-length check — counted, not delivered.
const RECV_BUF: usize = 64 * 1024;

/// Ingress/egress counters, readable after a run for sanity reporting.
#[derive(Debug, Default, Clone, Copy)]
pub struct UdpStats {
    /// Datagrams written.
    pub tx_frames: u64,
    /// Bytes written (encapsulated frames, headers included).
    pub tx_bytes: u64,
    /// Egress packets dropped: no route for the destination address.
    pub tx_no_route: u64,
    /// Egress `send_to` errors (including `WouldBlock` on a full socket
    /// buffer — the transport's own retransmission machinery recovers,
    /// exactly as it would from real loss).
    pub tx_errors: u64,
    /// Datagrams that arrived and decoded cleanly.
    pub rx_frames: u64,
    /// Bytes in cleanly decoded datagrams.
    pub rx_bytes: u64,
    /// Datagrams rejected by the SCTP CRC32c gate.
    pub rx_bad_crc: u64,
    /// Datagrams rejected for any other reason (short, bad IP checksum,
    /// bad TCP checksum, unknown chunk/proto, foreign address plan).
    pub rx_bad_frame: u64,
}

/// A [`Backend`] that puts the engines on real (UDP) sockets.
#[derive(Debug)]
pub struct UdpBackend {
    sock: UdpSocket,
    /// Destination routes: simulated interface address → socket address.
    peers: Vec<(IfAddr, SocketAddr)>,
    buf: Box<[u8; RECV_BUF]>,
    /// Counters (see [`UdpStats`]).
    pub stats: UdpStats,
}

impl UdpBackend {
    /// Bind a nonblocking socket on `bind` (use port 0 for an ephemeral
    /// port, then [`UdpBackend::local_addr`] to learn it).
    pub fn bind(bind: SocketAddr) -> io::Result<Self> {
        let sock = UdpSocket::bind(bind)?;
        sock.set_nonblocking(true)?;
        Ok(UdpBackend {
            sock,
            peers: Vec::new(),
            buf: Box::new([0u8; RECV_BUF]),
            stats: UdpStats::default(),
        })
    }

    /// The socket's bound address.
    pub fn local_addr(&self) -> io::Result<SocketAddr> {
        self.sock.local_addr()
    }

    /// Route packets destined for simulated interface `addr` to `to`.
    /// Re-adding an address replaces its route.
    pub fn add_peer(&mut self, addr: IfAddr, to: SocketAddr) {
        if let Some(slot) = self.peers.iter_mut().find(|(a, _)| *a == addr) {
            slot.1 = to;
        } else {
            self.peers.push((addr, to));
        }
    }

    fn route(&self, dst: IfAddr) -> Option<SocketAddr> {
        self.peers.iter().find(|(a, _)| *a == dst).map(|&(_, to)| to)
    }

    fn egress_one(&mut self, ctx: &mut Wx, pkt: Packet) {
        let Some(to) = self.route(pkt.dst) else {
            self.stats.tx_no_route += 1;
            return;
        };
        let frame = wire_bytes::encode_packet(&pkt, ctx.now().as_nanos());
        // Flight-recorder parity with the sim path: the frame is captured
        // as offered, verdict Deliver-now (the real network's verdict is
        // unknowable from here).
        if let Some(cap) = ip::capture(ctx, &pkt) {
            let v = Verdict::Deliver { at: ctx.now() };
            ip::emit_pkt(ctx, pkt.src, pkt.dst, frame.len() as u32, v, cap);
        }
        match self.sock.send_to(&frame, to) {
            Ok(_) => {
                self.stats.tx_frames += 1;
                self.stats.tx_bytes += frame.len() as u64;
            }
            Err(_) => self.stats.tx_errors += 1,
        }
    }
}

impl Backend for UdpBackend {
    fn send(&mut self, _w: &mut World, ctx: &mut Wx, pkt: Packet) {
        self.egress_one(ctx, pkt);
    }

    fn send_train(&mut self, w: &mut World, ctx: &mut Wx, mut pkts: Vec<Packet>) {
        // No burst fusion on a real socket: a train is just K datagrams.
        for pkt in pkts.drain(..) {
            self.egress_one(ctx, pkt);
        }
        w.pool.put_packet_vec(pkts);
    }

    fn poll_ingress(&mut self, ctx: &mut Wx) -> Vec<Packet> {
        let mut out = Vec::new();
        loop {
            let n = match self.sock.recv_from(&mut self.buf[..]) {
                Ok((n, _from)) => n,
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
                Err(_) => break,
            };
            match wire_bytes::decode_packet(&self.buf[..n]) {
                Ok(pkt) => {
                    self.stats.rx_frames += 1;
                    self.stats.rx_bytes += n as u64;
                    // Mirror the frame into this node's flight recorder at
                    // arrival time, so a live pcapng holds both directions.
                    if let Some(cap) = ip::capture(ctx, &pkt) {
                        let v = Verdict::Deliver { at: ctx.now() };
                        ip::emit_pkt(ctx, pkt.src, pkt.dst, n as u32, v, cap);
                    }
                    out.push(pkt);
                }
                Err(wire_bytes::DecodeError::BadCrc(..)) => self.stats.rx_bad_crc += 1,
                Err(_) => self.stats.rx_bad_frame += 1,
            }
        }
        out
    }

    fn as_any(&mut self) -> &mut dyn std::any::Any {
        self
    }
}
