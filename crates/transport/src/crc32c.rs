//! CRC32c (Castagnoli), the SCTP packet checksum (RFC 4960 Appendix B).
//!
//! The paper's evaluation *disables* CRC32c in the kernel to equalize CPU
//! cost with TCP (whose checksum is NIC-offloaded); our configuration does
//! the same by default. The implementation is still here — and tested
//! against published vectors — because the security discussion (§3.5.2) and
//! the cookie mechanism rely on it, and because the `crc_enabled` ablation
//! charges its true per-byte CPU cost.

/// Reflected CRC32c polynomial.
const POLY: u32 = 0x82F6_3B78;

/// Byte-at-a-time lookup table, generated at compile time.
const TABLE: [u32; 256] = {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u32;
        let mut b = 0;
        while b < 8 {
            crc = if crc & 1 != 0 { (crc >> 1) ^ POLY } else { crc >> 1 };
            b += 1;
        }
        table[i] = crc;
        i += 1;
    }
    table
};

/// Incrementally updatable CRC32c.
#[derive(Debug, Clone, Copy)]
pub struct Crc32c(u32);

impl Default for Crc32c {
    fn default() -> Self {
        Self::new()
    }
}

impl Crc32c {
    /// A fresh (all-ones) CRC state.
    pub fn new() -> Self {
        Crc32c(0xFFFF_FFFF)
    }

    /// Fold `data` into the running CRC.
    pub fn update(&mut self, data: &[u8]) {
        let mut crc = self.0;
        for &b in data {
            crc = (crc >> 8) ^ TABLE[((crc ^ b as u32) & 0xFF) as usize];
        }
        self.0 = crc;
    }

    /// The final (inverted) CRC32c value.
    pub fn finalize(self) -> u32 {
        !self.0
    }
}

/// One-shot CRC32c of a buffer.
pub fn crc32c(data: &[u8]) -> u32 {
    let mut c = Crc32c::new();
    c.update(data);
    c.finalize()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_vectors() {
        // RFC 3720 / common test vectors for CRC32c.
        assert_eq!(crc32c(b""), 0x0000_0000);
        assert_eq!(crc32c(b"a"), 0xC1D0_4330);
        assert_eq!(crc32c(b"123456789"), 0xE306_9283);
        assert_eq!(crc32c(&[0u8; 32]), 0x8A91_36AA);
        assert_eq!(crc32c(&[0xFFu8; 32]), 0x62A8_AB43);
    }

    #[test]
    fn incremental_equals_oneshot() {
        let data = b"the quick brown fox jumps over the lazy dog";
        let mut c = Crc32c::new();
        c.update(&data[..10]);
        c.update(&data[10..]);
        assert_eq!(c.finalize(), crc32c(data));
    }

    #[test]
    fn detects_single_bit_flip() {
        let mut data = vec![0xABu8; 100];
        let orig = crc32c(&data);
        data[57] ^= 0x10;
        assert_ne!(crc32c(&data), orig);
    }
}
