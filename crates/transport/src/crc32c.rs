//! CRC32c (Castagnoli), the SCTP packet checksum (RFC 4960 Appendix B).
//!
//! The paper's evaluation *disables* CRC32c in the kernel to equalize CPU
//! cost with TCP (whose checksum is NIC-offloaded); our configuration does
//! the same by default. The implementation is still here — and tested
//! against published vectors — because the security discussion (§3.5.2) and
//! the cookie mechanism rely on it, and because the `crc_enabled` ablation
//! charges its true per-byte CPU cost.
//!
//! Two backends share one state machine:
//!
//! * a byte-at-a-time software table (portable, the reference);
//! * the SSE4.2 `crc32` instruction on x86-64, detected at runtime and
//!   folding eight bytes per cycle-ish on the aligned middle of the buffer.
//!
//! Both compute the identical reflected-polynomial CRC, so the backend is
//! invisible to callers; the equivalence test sweeps lengths and alignments
//! to hold them to that.

/// Reflected CRC32c polynomial.
const POLY: u32 = 0x82F6_3B78;

/// Byte-at-a-time lookup table, generated at compile time.
const TABLE: [u32; 256] = {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u32;
        let mut b = 0;
        while b < 8 {
            crc = if crc & 1 != 0 { (crc >> 1) ^ POLY } else { crc >> 1 };
            b += 1;
        }
        table[i] = crc;
        i += 1;
    }
    table
};

/// Fold `data` into `crc` one byte at a time (the portable reference).
#[inline]
fn update_soft(mut crc: u32, data: &[u8]) -> u32 {
    for &b in data {
        crc = (crc >> 8) ^ TABLE[((crc ^ b as u32) & 0xFF) as usize];
    }
    crc
}

/// Fold `data` into `crc` with the SSE4.2 `crc32` instruction: byte ops up
/// to 8-byte alignment, quadword ops over the aligned middle, byte ops on
/// the tail.
///
/// # Safety
/// The caller must have verified `sse4.2` support at runtime.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "sse4.2")]
unsafe fn update_hw(mut crc: u32, data: &[u8]) -> u32 {
    use std::arch::x86_64::{_mm_crc32_u64, _mm_crc32_u8};
    let (head, mids, tail) = data.align_to::<u64>();
    for &b in head {
        crc = _mm_crc32_u8(crc, b);
    }
    let mut acc = crc as u64;
    for &q in mids {
        // `align_to` yields native-endian u64 reads of consecutive bytes;
        // the instruction consumes them in exactly that (little-endian
        // byte-stream) order.
        acc = _mm_crc32_u64(acc, q);
    }
    crc = acc as u32;
    for &b in tail {
        crc = _mm_crc32_u8(crc, b);
    }
    crc
}

/// Whether the hardware path is available on this machine, decided once.
#[cfg(target_arch = "x86_64")]
#[inline]
fn hw_available() -> bool {
    use std::sync::atomic::{AtomicU8, Ordering};
    static STATE: AtomicU8 = AtomicU8::new(0); // 0 unknown, 1 yes, 2 no
    match STATE.load(Ordering::Relaxed) {
        1 => true,
        2 => false,
        _ => {
            let yes = std::arch::is_x86_feature_detected!("sse4.2");
            STATE.store(if yes { 1 } else { 2 }, Ordering::Relaxed);
            yes
        }
    }
}

/// Dispatch one update through the fastest correct backend.
#[inline]
fn update_dispatch(crc: u32, data: &[u8]) -> u32 {
    #[cfg(target_arch = "x86_64")]
    {
        if hw_available() {
            // Safety: gated on the runtime sse4.2 probe above.
            return unsafe { update_hw(crc, data) };
        }
    }
    update_soft(crc, data)
}

/// Incrementally updatable CRC32c.
#[derive(Debug, Clone, Copy)]
pub struct Crc32c(u32);

impl Default for Crc32c {
    fn default() -> Self {
        Self::new()
    }
}

impl Crc32c {
    /// A fresh (all-ones) CRC state.
    pub fn new() -> Self {
        Crc32c(0xFFFF_FFFF)
    }

    /// Fold `data` into the running CRC.
    pub fn update(&mut self, data: &[u8]) {
        self.0 = update_dispatch(self.0, data);
    }

    /// The final (inverted) CRC32c value.
    pub fn finalize(self) -> u32 {
        !self.0
    }
}

/// One-shot CRC32c of a buffer.
pub fn crc32c(data: &[u8]) -> u32 {
    let mut c = Crc32c::new();
    c.update(data);
    c.finalize()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_vectors() {
        // RFC 3720 / common test vectors for CRC32c.
        assert_eq!(crc32c(b""), 0x0000_0000);
        assert_eq!(crc32c(b"a"), 0xC1D0_4330);
        assert_eq!(crc32c(b"123456789"), 0xE306_9283);
        assert_eq!(crc32c(&[0u8; 32]), 0x8A91_36AA);
        assert_eq!(crc32c(&[0xFFu8; 32]), 0x62A8_AB43);
    }

    #[test]
    fn incremental_equals_oneshot() {
        let data = b"the quick brown fox jumps over the lazy dog";
        let mut c = Crc32c::new();
        c.update(&data[..10]);
        c.update(&data[10..]);
        assert_eq!(c.finalize(), crc32c(data));
    }

    #[test]
    fn detects_single_bit_flip() {
        let mut data = vec![0xABu8; 100];
        let orig = crc32c(&data);
        data[57] ^= 0x10;
        assert_ne!(crc32c(&data), orig);
    }

    #[test]
    fn hardware_and_software_backends_agree() {
        // Sweep lengths across every head/mid/tail split the dispatcher can
        // produce, at every alignment within a quadword, over data with no
        // structure the CRC could be insensitive to. On machines without
        // SSE4.2 both sides take the table path and the test is vacuous —
        // the CI x86-64 runners are the ones holding the claim.
        let mut backing = vec![0u8; 256 + 16];
        let mut x: u32 = 0x1234_5678;
        for b in backing.iter_mut() {
            // xorshift: cheap, deterministic, full-byte entropy.
            x ^= x << 13;
            x ^= x >> 17;
            x ^= x << 5;
            *b = x as u8;
        }
        for align in 0..8 {
            for len in 0..=256 {
                let data = &backing[align..align + len];
                let hw = crc32c(data);
                let sw = !update_soft(0xFFFF_FFFF, data);
                assert_eq!(
                    hw, sw,
                    "backend divergence at align={align} len={len}"
                );
            }
        }
    }

    #[test]
    fn incremental_split_points_agree_across_backends() {
        // Incremental updates restart the head/mid/tail decomposition at
        // every call; the running state must still be byte-stream exact.
        let data: Vec<u8> = (0u16..200).map(|i| (i * 31 + 7) as u8).collect();
        let oneshot = !update_soft(0xFFFF_FFFF, &data);
        for split in [0, 1, 3, 7, 8, 9, 63, 100, 199, 200] {
            let mut c = Crc32c::new();
            c.update(&data[..split]);
            c.update(&data[split..]);
            assert_eq!(c.finalize(), oneshot, "split at {split}");
        }
    }
}
