//! Slab pools for the packet plane: recycled buffers for everything the
//! hot paths used to allocate per packet.
//!
//! The data plane's steady state builds the same handful of temporaries for
//! every packet — a payload slice list, a SACK/gap block list, an SCTP
//! chunk bundle, a train of packets and its size table — and dropped each
//! of them on delivery. [`Pools`] keeps the retired buffers on per-world
//! freelists so the steady state allocates nothing: `take_*` hands back a
//! previously retired buffer (empty, capacity intact) and `put_*` retires
//! one after its contents have been consumed.
//!
//! # Lifecycle contract
//!
//! * A buffer is `take`n empty and `put` back exactly once, after the last
//!   read of its contents. Double-put is structurally impossible (puts move
//!   the buffer); use-after-put is a logic bug the poisoning below exists
//!   to catch.
//! * `put_*` clears the buffer immediately — element drops (e.g. `Bytes`
//!   refcounts) happen at retirement, not while the buffer waits on the
//!   freelist.
//! * Debug builds poison retired byte scratch with `0xA5` before reuse, so
//!   stale-read bugs surface as garbage checksums/payloads instead of
//!   silently reading the previous packet's bytes.
//! * Freelists are capped (`MAX_POOLED`) so a burst cannot pin unbounded
//!   memory; overflow buffers just drop.
//!
//! Pools live on the [`crate::World`], one set per world. Everything here
//! is single-threaded by construction (a world belongs to one scheduler),
//! so `take`/`put` are plain `Vec` push/pop — no atomics, no locks.

use std::collections::VecDeque;

use bytes::Bytes;
use netsim::Verdict;
use simcore::{ProcId, SimTime};

use crate::ip::Packet;
use crate::sctp::{Chunk, RecvMsg};

/// Freelist length cap per buffer kind.
const MAX_POOLED: usize = 256;

/// Debug-mode poison byte for retired `u8` scratch.
pub const POISON: u8 = 0xA5;

/// Per-world freelists for the packet plane's temporaries.
#[derive(Default)]
pub struct Pools {
    /// Payload slice lists (`TcpSegment::payload`, SCTP message bodies).
    bytes_vecs: Vec<Vec<Bytes>>,
    /// `[start, end)` block lists (TCP SACK blocks, SCTP gap-acks, hole
    /// lists from range scans).
    gap_vecs: Vec<Vec<(u64, u64)>>,
    /// SCTP chunk bundles (`SctpPacket::chunks`).
    chunk_vecs: Vec<Vec<Chunk>>,
    /// Packet trains under construction (`ip::send_train` input).
    packet_vecs: Vec<Vec<Packet>>,
    /// TCP output-burst staging lists (`(seq, payload, fin)` per segment).
    seg_vecs: Vec<Vec<(u64, Vec<Bytes>, bool)>>,
    /// In-flight trains (arrival instant + packet, walked by the fused
    /// delivery event).
    trains: Vec<VecDeque<(SimTime, Packet)>>,
    /// Wire-size tables offered to the network's burst call.
    size_vecs: Vec<Vec<u32>>,
    /// Per-path byte counters (SCTP SACK processing scratch).
    u64_vecs: Vec<Vec<u64>>,
    /// Assembled-message lists staged between reassembly and delivery.
    msg_vecs: Vec<Vec<RecvMsg>>,
    /// Network verdicts returned by the burst call.
    verdict_vecs: Vec<Vec<Verdict>>,
    /// Wake lists (blocked reader/writer process ids) swapped out of a
    /// socket while a deferred wake is staged.
    proc_vecs: Vec<Vec<ProcId>>,
    /// Byte scratch (wire encodes, cross-chunk payload splices). Poisoned
    /// in debug builds on retirement.
    byte_scratch: Vec<Vec<u8>>,
    /// Take/put traffic, for diagnostics.
    pub stats: PoolStats,
}

/// Pool traffic counters.
#[derive(Default, Debug, Clone, Copy)]
pub struct PoolStats {
    /// `take_*` calls served from a freelist (no allocation).
    pub reused: u64,
    /// `take_*` calls that had to construct a fresh buffer.
    pub fresh: u64,
}

macro_rules! pool_accessors {
    ($take:ident, $put:ident, $field:ident, $ty:ty, $doc:literal) => {
        #[doc = concat!("Take an empty ", $doc, " (recycled when available).")]
        #[inline]
        pub fn $take(&mut self) -> $ty {
            match self.$field.pop() {
                Some(b) => {
                    self.stats.reused += 1;
                    debug_assert!(b.is_empty(), "pooled buffer retired dirty");
                    b
                }
                None => {
                    self.stats.fresh += 1;
                    Default::default()
                }
            }
        }

        #[doc = concat!("Retire a ", $doc, " after its last read; clears it now.")]
        #[inline]
        pub fn $put(&mut self, mut b: $ty) {
            b.clear();
            if self.$field.len() < MAX_POOLED {
                self.$field.push(b);
            }
        }
    };
}

impl Pools {
    pool_accessors!(take_bytes_vec, put_bytes_vec, bytes_vecs, Vec<Bytes>, "payload slice list");
    pool_accessors!(take_gap_vec, put_gap_vec, gap_vecs, Vec<(u64, u64)>, "gap/SACK block list");
    pool_accessors!(take_chunk_vec, put_chunk_vec, chunk_vecs, Vec<Chunk>, "chunk bundle");
    pool_accessors!(take_packet_vec, put_packet_vec, packet_vecs, Vec<Packet>, "packet train");
    pool_accessors!(
        take_seg_vec,
        put_seg_vec,
        seg_vecs,
        Vec<(u64, Vec<Bytes>, bool)>,
        "TCP output staging list"
    );
    pool_accessors!(take_size_vec, put_size_vec, size_vecs, Vec<u32>, "wire-size table");
    pool_accessors!(take_u64_vec, put_u64_vec, u64_vecs, Vec<u64>, "per-path counter table");
    pool_accessors!(take_msg_vec, put_msg_vec, msg_vecs, Vec<RecvMsg>, "assembled-message list");
    pool_accessors!(take_verdict_vec, put_verdict_vec, verdict_vecs, Vec<Verdict>, "verdict table");
    pool_accessors!(take_proc_vec, put_proc_vec, proc_vecs, Vec<ProcId>, "wake list");

    /// Take an empty in-flight train (recycled when available).
    #[inline]
    pub fn take_train(&mut self) -> VecDeque<(SimTime, Packet)> {
        match self.trains.pop() {
            Some(t) => {
                self.stats.reused += 1;
                debug_assert!(t.is_empty(), "pooled train retired dirty");
                t
            }
            None => {
                self.stats.fresh += 1;
                VecDeque::new()
            }
        }
    }

    /// Retire an exhausted train.
    #[inline]
    pub fn put_train(&mut self, mut t: VecDeque<(SimTime, Packet)>) {
        t.clear();
        if self.trains.len() < MAX_POOLED {
            self.trains.push(t);
        }
    }

    /// Take empty byte scratch. In debug builds the buffer arrives filled
    /// with [`POISON`] up to its capacity *watermark* from the previous
    /// use, then truncated to empty — any read past `len` sees `0xA5`.
    #[inline]
    pub fn take_byte_scratch(&mut self) -> Vec<u8> {
        match self.byte_scratch.pop() {
            Some(b) => {
                self.stats.reused += 1;
                debug_assert!(b.iter().all(|&x| x == POISON), "byte scratch retired unpoisoned");
                let mut b = b;
                b.clear();
                b
            }
            None => {
                self.stats.fresh += 1;
                Vec::new()
            }
        }
    }

    /// Retire byte scratch. Debug builds re-fill it with [`POISON`] so a
    /// stale read of the old contents cannot go unnoticed.
    #[inline]
    pub fn put_byte_scratch(&mut self, mut b: Vec<u8>) {
        if cfg!(debug_assertions) {
            let cap = b.len();
            b.clear();
            b.resize(cap, POISON);
        } else {
            b.clear();
        }
        if self.byte_scratch.len() < MAX_POOLED {
            self.byte_scratch.push(b);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn take_put_recycles_capacity() {
        let mut p = Pools::default();
        let mut v = p.take_bytes_vec();
        v.reserve(64);
        let cap = v.capacity();
        let ptr = v.as_ptr();
        p.put_bytes_vec(v);
        let v2 = p.take_bytes_vec();
        assert!(v2.is_empty());
        assert_eq!(v2.capacity(), cap);
        assert_eq!(v2.as_ptr(), ptr, "expected the same buffer back");
        assert_eq!(p.stats.reused, 1);
        assert_eq!(p.stats.fresh, 1);
    }

    #[test]
    fn put_clears_contents_immediately() {
        let mut p = Pools::default();
        let mut v = p.take_gap_vec();
        v.push((1, 2));
        p.put_gap_vec(v);
        assert!(p.take_gap_vec().is_empty());
    }

    #[test]
    fn freelist_is_capped() {
        let mut p = Pools::default();
        for _ in 0..(MAX_POOLED + 10) {
            p.put_size_vec(Vec::with_capacity(8));
        }
        assert_eq!(p.size_vecs.len(), MAX_POOLED);
    }

    #[cfg(debug_assertions)]
    #[test]
    fn byte_scratch_is_poisoned_on_retirement() {
        let mut p = Pools::default();
        let mut b = p.take_byte_scratch();
        b.extend_from_slice(b"sensitive payload");
        p.put_byte_scratch(b);
        // The retired buffer holds only poison (the debug_assert in take
        // re-checks this; inspect directly too).
        assert!(p.byte_scratch[0].iter().all(|&x| x == POISON));
        let again = p.take_byte_scratch();
        assert!(again.is_empty());
    }
}
