//! A set of non-overlapping, sorted `u64` ranges.
//!
//! Used for the TCP sender's SACK scoreboard, the TCP receiver's
//! out-of-order map summary, and the SCTP receiver's TSN gap tracking.

use std::collections::BTreeMap;

/// Half-open ranges `[start, end)`, kept sorted, coalesced on insert.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct RangeSet {
    // start -> end
    map: BTreeMap<u64, u64>,
}

impl RangeSet {
    /// An empty set.
    pub fn new() -> Self {
        Self::default()
    }

    /// Remove every range.
    pub fn clear(&mut self) {
        self.map.clear();
    }

    /// True when no ranges are held.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Insert `[start, end)`, merging with any overlapping/adjacent ranges.
    pub fn insert(&mut self, start: u64, end: u64) {
        if start >= end {
            return;
        }
        let mut new_start = start;
        let mut new_end = end;

        // Merge with a predecessor that overlaps or touches.
        if let Some((&s, &e)) = self.map.range(..=start).next_back() {
            if e >= start {
                if e >= end {
                    return; // fully covered
                }
                new_start = s;
                new_end = new_end.max(e);
                self.map.remove(&s);
            }
        }
        // Merge with successors that start within the new range.
        loop {
            let next = self.map.range(new_start..=new_end).next().map(|(&s, &e)| (s, e));
            match next {
                Some((s, e)) => {
                    new_end = new_end.max(e);
                    self.map.remove(&s);
                }
                None => break,
            }
        }
        self.map.insert(new_start, new_end);
    }

    /// Insert a single value (a TSN).
    pub fn insert_point(&mut self, v: u64) {
        self.insert(v, v + 1);
    }

    /// Remove everything below `cut` (a cumulative ack).
    pub fn remove_below(&mut self, cut: u64) {
        // Ranges are disjoint and sorted, so only the last range starting
        // below `cut` can straddle it — pop from the front until then.
        while let Some((&s, &e)) = self.map.range(..cut).next() {
            self.map.remove(&s);
            if e > cut {
                self.map.insert(cut, e);
                break;
            }
        }
    }

    /// Does the set contain the whole of `[start, end)`?
    pub fn contains_range(&self, start: u64, end: u64) -> bool {
        if start >= end {
            return true;
        }
        match self.map.range(..=start).next_back() {
            Some((_, &e)) => e >= end,
            None => false,
        }
    }

    /// Does the set contain the point `v`?
    pub fn contains(&self, v: u64) -> bool {
        self.contains_range(v, v + 1)
    }

    /// Iterate ranges in ascending order.
    pub fn iter(&self) -> impl Iterator<Item = (u64, u64)> + '_ {
        self.map.iter().map(|(&s, &e)| (s, e))
    }

    /// Number of disjoint ranges.
    pub fn num_ranges(&self) -> usize {
        self.map.len()
    }

    /// Total number of values covered.
    pub fn covered(&self) -> u64 {
        self.map.iter().map(|(&s, &e)| e - s).sum()
    }

    /// First value `>= from` *not* in the set, scanning holes between ranges.
    pub fn first_missing_from(&self, from: u64) -> u64 {
        let mut v = from;
        for (s, e) in self.iter() {
            if v < s {
                return v;
            }
            if v < e {
                v = e;
            }
        }
        v
    }

    /// Highest value covered, if any (exclusive end of the last range).
    pub fn max_end(&self) -> Option<u64> {
        self.map.iter().next_back().map(|(_, &e)| e)
    }

    /// The sub-ranges of `[start, end)` **not** covered by the set — the
    /// holes a newly arrived byte range actually fills.
    pub fn holes_within(&self, start: u64, end: u64) -> Vec<(u64, u64)> {
        let mut holes = Vec::new();
        self.holes_within_into(start, end, &mut holes);
        holes
    }

    /// [`holes_within`](Self::holes_within) appended into a caller-provided
    /// (usually pooled) list.
    pub fn holes_within_into(&self, start: u64, end: u64, holes: &mut Vec<(u64, u64)>) {
        if start >= end {
            return;
        }
        let mut cursor = start;
        // A predecessor range may cover the beginning.
        if let Some((_, &e)) = self.map.range(..=start).next_back() {
            if e > cursor {
                cursor = e;
            }
        }
        for (&s, &e) in self.map.range(start..end) {
            if cursor >= end {
                break;
            }
            if s > cursor {
                holes.push((cursor, s.min(end)));
            }
            cursor = cursor.max(e);
        }
        if cursor < end {
            holes.push((cursor, end));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ranges(rs: &RangeSet) -> Vec<(u64, u64)> {
        rs.iter().collect()
    }

    #[test]
    fn insert_disjoint_keeps_sorted() {
        let mut r = RangeSet::new();
        r.insert(10, 20);
        r.insert(30, 40);
        r.insert(0, 5);
        assert_eq!(ranges(&r), vec![(0, 5), (10, 20), (30, 40)]);
        assert_eq!(r.covered(), 25);
    }

    #[test]
    fn insert_merges_overlaps_and_adjacency() {
        let mut r = RangeSet::new();
        r.insert(10, 20);
        r.insert(20, 30); // adjacent
        assert_eq!(ranges(&r), vec![(10, 30)]);
        r.insert(5, 15); // overlaps front
        assert_eq!(ranges(&r), vec![(5, 30)]);
        r.insert(0, 100); // swallows all
        assert_eq!(ranges(&r), vec![(0, 100)]);
        r.insert(40, 50); // fully covered no-op
        assert_eq!(ranges(&r), vec![(0, 100)]);
    }

    #[test]
    fn insert_bridges_multiple_ranges() {
        let mut r = RangeSet::new();
        r.insert(0, 10);
        r.insert(20, 30);
        r.insert(40, 50);
        r.insert(5, 45);
        assert_eq!(ranges(&r), vec![(0, 50)]);
    }

    #[test]
    fn contains_and_holes() {
        let mut r = RangeSet::new();
        r.insert(10, 20);
        r.insert(30, 40);
        assert!(r.contains(10) && r.contains(19) && !r.contains(20));
        assert!(r.contains_range(12, 18));
        assert!(!r.contains_range(15, 35));
        assert_eq!(r.first_missing_from(0), 0);
        assert_eq!(r.first_missing_from(10), 20);
        assert_eq!(r.first_missing_from(35), 40);
        assert_eq!(r.first_missing_from(99), 99);
    }

    #[test]
    fn remove_below_trims_and_splits() {
        let mut r = RangeSet::new();
        r.insert(10, 20);
        r.insert(30, 40);
        r.remove_below(15);
        assert_eq!(ranges(&r), vec![(15, 20), (30, 40)]);
        r.remove_below(25);
        assert_eq!(ranges(&r), vec![(30, 40)]);
        r.remove_below(100);
        assert!(r.is_empty());
    }

    #[test]
    fn holes_within_reports_gaps() {
        let mut r = RangeSet::new();
        r.insert(10, 20);
        r.insert(30, 40);
        assert_eq!(r.holes_within(0, 50), vec![(0, 10), (20, 30), (40, 50)]);
        assert_eq!(r.holes_within(12, 18), vec![]);
        assert_eq!(r.holes_within(15, 35), vec![(20, 30)]);
        assert_eq!(r.holes_within(20, 30), vec![(20, 30)]);
        assert_eq!(RangeSet::new().holes_within(5, 8), vec![(5, 8)]);
        assert_eq!(r.holes_within(8, 8), vec![]);
    }

    #[test]
    fn point_inserts_coalesce() {
        let mut r = RangeSet::new();
        for v in [5u64, 7, 6] {
            r.insert_point(v);
        }
        assert_eq!(ranges(&r), vec![(5, 8)]);
        assert_eq!(r.max_end(), Some(8));
    }
}
