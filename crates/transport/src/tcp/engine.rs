//! The TCP protocol engine: segment input, output, congestion control, and
//! timers. See `mod.rs` for the feature inventory.

use bytes::Bytes;
use netsim::IfAddr;
use simcore::Dur;

use crate::buf::total_len;
use crate::ip::{self, Packet, Proto};
use crate::{World, Wx};

use super::{
    sock, sock_mut, sock_pool_mut, Flags, SockId, TcpCfg, TcpSegment, TcpSock, TcpState,
};

// ---------------------------------------------------------------------------
// Helpers
// ---------------------------------------------------------------------------

fn cfg_of(w: &World, s: SockId) -> TcpCfg {
    w.hosts[s.host as usize].tcp.cfg
}

/// Flight-recorder snapshot of the congestion state. Callers guard with
/// `ctx.tracing()` so the off path costs one branch.
fn trace_cwnd(ctx: &Wx, s: SockId, sk: &TcpSock) {
    ctx.trace_emit(trace::Event::Cwnd(trace::CwndEv {
        proto: trace::Proto8::Tcp,
        host: s.host,
        peer: sk.remote.0.host,
        path: 0,
        cwnd: sk.cc.cwnd,
        ssthresh: sk.cc.ssthresh,
        flight: sk.flight(),
    }));
}

/// Advertised receive window with receiver-side silly-window avoidance:
/// never advertise a dribble smaller than one MSS.
fn adv_wnd(sk: &TcpSock, cfg: &TcpCfg) -> u64 {
    let w = sk.rcv_wnd(cfg.rcvbuf);
    if w < cfg.mss as u64 {
        0
    } else {
        w
    }
}

/// SACK blocks to attach: most recent ranges first, capped by option space.
/// Appends into `blocks` (pooled by the caller).
fn sack_blocks_into(sk: &TcpSock, cfg: &TcpCfg, blocks: &mut Vec<(u64, u64)>) {
    for &start in &sk.sack_recent {
        if blocks.len() >= cfg.max_sack_blocks {
            break;
        }
        // Re-resolve the (possibly merged/extended) containing range.
        if let Some((s0, e0)) = sk.have.iter().find(|&(s0, e0)| s0 <= start && start < e0) {
            if s0 >= sk.rcv_nxt && !blocks.contains(&(s0, e0)) {
                blocks.push((s0, e0));
            }
        }
    }
}

/// Build one segment's wire packet; updates stats and delayed-ACK state.
/// Emission is the caller's business (immediate or buffered into a train).
fn build_segment(
    w: &mut World,
    ctx: &mut Wx,
    s: SockId,
    flags: Flags,
    seq: u64,
    payload: Vec<Bytes>,
    probe: bool,
) -> Packet {
    let cfg = cfg_of(w, s);
    let (sk, pool) = sock_pool_mut(w, s);
    let payload_len = total_len(&payload) as u32;
    let wnd = adv_wnd(sk, &cfg);
    let sack = if flags.contains(Flags::SYN) {
        Vec::new()
    } else {
        let mut b = pool.take_gap_vec();
        sack_blocks_into(sk, &cfg, &mut b);
        b
    };
    let seg = TcpSegment {
        src_port: sk.local.1,
        dst_port: sk.remote.1,
        flags: flags | Flags::ACK,
        seq,
        ack: sk.rcv_nxt,
        wnd,
        sack,
        probe,
        payload,
        payload_len,
    };
    sk.last_adv_wnd = wnd;
    sk.adv_edge = sk.adv_edge.max(sk.rcv_nxt + wnd);
    sk.delack_pending = 0;
    sk.delack_gen += 1; // implicitly cancels any pending delack timer
    sk.delack_armed = false;
    if let Some(id) = sk.delack_timer.take() {
        ctx.cancel_counted(id);
    }
    sk.stats.segs_out += 1;
    sk.stats.bytes_out += payload_len as u64;
    sk.last_send = ctx.now();
    let (src, dst) = (sk.local.0, sk.remote.0);
    Packet { src, dst, body: Proto::Tcp(seg) }
}

/// Build and transmit one segment.
fn emit(w: &mut World, ctx: &mut Wx, s: SockId, flags: Flags, seq: u64, payload: Vec<Bytes>, probe: bool) {
    let pkt = build_segment(w, ctx, s, flags, seq, payload, probe);
    ip::send(w, ctx, pkt);
}

/// The initial SYN carries no ACK flag.
pub(crate) fn send_syn(w: &mut World, ctx: &mut Wx, s: SockId) {
    let cfg = cfg_of(w, s);
    let sk = sock_mut(w, s);
    let seg = TcpSegment {
        src_port: sk.local.1,
        dst_port: sk.remote.1,
        flags: Flags::SYN,
        seq: 0,
        ack: 0,
        wnd: cfg.rcvbuf,
        sack: Vec::new(),
        probe: false,
        payload: Vec::new(),
        payload_len: 0,
    };
    sk.stats.segs_out += 1;
    sk.snd_nxt = 1;
    sk.syn_sent_at = if sk.syn_retries == 0 { Some(ctx.now()) } else { None };
    let (src, dst) = (sk.local.0, sk.remote.0);
    ip::send(w, ctx, Packet { src, dst, body: Proto::Tcp(seg) });
    arm_rto(w, ctx, s);
}

fn send_syn_ack(w: &mut World, ctx: &mut Wx, s: SockId) {
    let cfg = cfg_of(w, s);
    let sk = sock_mut(w, s);
    let seg = TcpSegment {
        src_port: sk.local.1,
        dst_port: sk.remote.1,
        flags: Flags::SYN | Flags::ACK,
        seq: 0,
        ack: sk.rcv_nxt,
        wnd: cfg.rcvbuf,
        sack: Vec::new(),
        probe: false,
        payload: Vec::new(),
        payload_len: 0,
    };
    sk.stats.segs_out += 1;
    sk.snd_nxt = 1;
    let (src, dst) = (sk.local.0, sk.remote.0);
    ip::send(w, ctx, Packet { src, dst, body: Proto::Tcp(seg) });
    arm_rto(w, ctx, s);
}

/// Send an immediate pure ACK (dup-ACK, window update, FIN ack, ...).
pub(crate) fn send_ack_now(w: &mut World, ctx: &mut Wx, s: SockId) {
    let seq = sock(w, s).snd_nxt;
    emit(w, ctx, s, Flags::EMPTY, seq, Vec::new(), false);
}

// ---------------------------------------------------------------------------
// Timers
// ---------------------------------------------------------------------------

fn arm_rto(w: &mut World, ctx: &mut Wx, s: SockId) {
    let sk = sock_mut(w, s);
    sk.rto_gen += 1;
    sk.rto_armed = true;
    let gen = sk.rto_gen;
    let d = sk.rto.current();
    let old = sk.rto_timer.take();
    if ctx.tracing() {
        ctx.trace_emit(trace::Event::RtoArm(trace::RtoArmEv {
            proto: trace::Proto8::Tcp,
            host: s.host,
            peer: sk.remote.0.host,
            path: 0,
            rto_ns: d.as_nanos(),
            srtt_ns: sk.rto.srtt().map_or(-1, |x| x.as_nanos() as i64),
            rttvar_ns: sk.rto.rttvar().as_nanos() as i64,
        }));
    }
    let id = ctx.reschedule_in(old, d, move |w: &mut World, ctx: &mut Wx| on_rto(w, ctx, s, gen));
    sock_mut(w, s).rto_timer = Some(id);
}

fn disarm_rto(ctx: &mut Wx, sk: &mut TcpSock) {
    sk.rto_gen += 1;
    sk.rto_armed = false;
    if let Some(id) = sk.rto_timer.take() {
        ctx.cancel_counted(id);
    }
}

fn on_rto(w: &mut World, ctx: &mut Wx, s: SockId, gen: u64) {
    let cfg = cfg_of(w, s);
    let mss = cfg.mss as u64;
    {
        let sk = sock_mut(w, s);
        if sk.rto_gen != gen || !sk.rto_armed {
            return;
        }
        match sk.state {
            TcpState::SynSent | TcpState::SynRcvd => {
                sk.syn_retries += 1;
                if sk.syn_retries > cfg.max_syn_retries {
                    sk.state = TcpState::Closed;
                    ctx.wake_all(&sk.writers);
                    sk.writers.clear();
                    return;
                }
                sk.rto.backoff();
                let synsent = sk.state == TcpState::SynSent;
                if synsent {
                    send_syn(w, ctx, s);
                } else {
                    send_syn_ack(w, ctx, s);
                }
                return; // send_syn/send_syn_ack re-armed the timer
            }
            TcpState::Closed | TcpState::TimeWait => return,
            _ => {}
        }
        let fin_unacked = sk.fin_sent && sk.snd_una <= sk.snd.end_seq();
        if sk.flight() == 0 && !fin_unacked {
            sk.rto_armed = false;
            return;
        }
        // Timeout: collapse to one segment, clear the scoreboard, back off.
        if std::env::var("TCP_TRACE").is_ok() {
            eprintln!("[{}] RTO: una={} nxt={} cwnd={} recovery={} sacked={:?}", ctx.now(), sk.snd_una, sk.snd_nxt, sk.cc.cwnd, sk.cc.in_recovery, sk.sacked.iter().collect::<Vec<_>>());
        }
        let marked = sk.flight();
        sk.stats.timeouts += 1;
        sk.rto.backoff();
        sk.cc.ssthresh = (marked / 2).max(2 * mss);
        sk.cc.cwnd = mss;
        sk.cc.in_recovery = false;
        sk.cc.dupacks = 0;
        sk.sacked.clear();
        sk.hole_rtx.clear();
        sk.rtt_probe = None;
        // Go-back-N (4.4BSD: snd_nxt = snd_una): everything unacked is
        // re-sent by the normal output path as the window reopens. Without
        // this, every lost segment beyond the first needs its own
        // backed-off RTO — seconds each.
        sk.rtx_until = sk.rtx_until.max(sk.snd_nxt);
        sk.snd_nxt = sk.snd_una;
        if sk.fin_sent && sk.snd_una <= sk.snd.end_seq() {
            // The FIN (if any) rides again on the re-sent tail.
            sk.fin_sent = false;
        }
        if ctx.tracing() {
            ctx.trace_emit(trace::Event::RtoFire(trace::RtoFireEv {
                proto: trace::Proto8::Tcp,
                host: s.host,
                peer: sk.remote.0.host,
                path: 0,
                backoff: sk.rto.backoff_shift(),
                marked: marked.min(u32::MAX as u64) as u32,
            }));
            trace_cwnd(ctx, s, sk);
        }
    }
    output(w, ctx, s);
    arm_rto(w, ctx, s);
}

fn arm_delack(w: &mut World, ctx: &mut Wx, s: SockId) {
    let cfg = cfg_of(w, s);
    let sk = sock_mut(w, s);
    if sk.delack_armed {
        return;
    }
    sk.delack_gen += 1;
    sk.delack_armed = true;
    let gen = sk.delack_gen;
    let old = sk.delack_timer.take();
    let id = ctx.reschedule_in(old, cfg.delack, move |w: &mut World, ctx: &mut Wx| {
        let sk = sock_mut(w, s);
        if sk.delack_gen != gen || !sk.delack_armed {
            return;
        }
        sk.delack_armed = false;
        if sk.delack_pending > 0 {
            send_ack_now(w, ctx, s);
        }
    });
    sock_mut(w, s).delack_timer = Some(id);
}

fn arm_persist(w: &mut World, ctx: &mut Wx, s: SockId) {
    let sk = sock_mut(w, s);
    if sk.persist_armed {
        return;
    }
    sk.persist_gen += 1;
    sk.persist_armed = true;
    let gen = sk.persist_gen;
    let d = sk
        .rto
        .current()
        .saturating_mul(1u64 << sk.persist_shift.min(6))
        .min(Dur::from_secs(60));
    let old = sk.persist_timer.take();
    let id =
        ctx.reschedule_in(old, d, move |w: &mut World, ctx: &mut Wx| on_persist(w, ctx, s, gen));
    sock_mut(w, s).persist_timer = Some(id);
}

fn on_persist(w: &mut World, ctx: &mut Wx, s: SockId, gen: u64) {
    {
        let sk = sock_mut(w, s);
        if sk.persist_gen != gen || !sk.persist_armed {
            return;
        }
        sk.persist_armed = false;
        let has_pending = sk.snd.end_seq() > sk.snd_nxt || (sk.fin_queued && !sk.fin_sent);
        if sk.peer_wnd > 0 || !has_pending || sk.state == TcpState::Closed {
            sk.persist_shift = 0;
            return;
        }
        sk.persist_shift += 1;
    }
    // Window probe: a flagged zero-length segment that elicits an immediate
    // ACK carrying the peer's current window.
    let seq = sock(w, s).snd_nxt;
    emit(w, ctx, s, Flags::EMPTY, seq, Vec::new(), true);
    arm_persist(w, ctx, s);
}

// ---------------------------------------------------------------------------
// Retransmission
// ---------------------------------------------------------------------------

/// Retransmit up to `max_len` bytes starting at `seq` (clamped to one MSS
/// and to the buffered data). Poisons the RTT probe per Karn's rule.
fn retransmit_seg(w: &mut World, ctx: &mut Wx, s: SockId, seq: u64, max_len: usize) {
    let cfg = cfg_of(w, s);
    let (payload, fin_now) = {
        let (sk, pool) = sock_pool_mut(w, s);
        sk.rtt_probe = None;
        sk.stats.retransmits += 1;
        let data_end = sk.snd.end_seq();
        if seq >= data_end {
            // Only the FIN is outstanding.
            (Vec::new(), sk.fin_sent)
        } else {
            let len = (cfg.mss as usize).min(max_len).min((data_end - seq) as usize);
            let mut p = pool.take_bytes_vec();
            sk.snd.slice_into(seq, len, &mut p);
            let covers_end = seq + len as u64 == data_end;
            (p, covers_end && sk.fin_sent)
        }
    };
    let flags = if fin_now { Flags::FIN } else { Flags::EMPTY };
    emit(w, ctx, s, flags, seq, payload, false);
}

// ---------------------------------------------------------------------------
// Output path
// ---------------------------------------------------------------------------

/// Transmit as much queued data as the congestion and peer windows allow.
pub(crate) fn output(w: &mut World, ctx: &mut Wx, s: SockId) {
    let cfg = cfg_of(w, s);
    let mss = cfg.mss as u64;
    let now = ctx.now();
    let mut need_persist = false;
    let mut segs = w.pool.take_seg_vec();
    {
        let (sk, pool) = sock_pool_mut(w, s);
        if !matches!(
            sk.state,
            TcpState::Established | TcpState::CloseWait | TcpState::FinWait1 | TcpState::Closing | TcpState::LastAck
        ) {
            return;
        }
        // Congestion-window restart after idle (4.4BSD behaviour).
        if cfg.idle_restart
            && sk.flight() == 0
            && sk.snd_una > 1
            && now.since(sk.last_send) > sk.rto.current()
        {
            sk.cc.cwnd = sk.cc.cwnd.min(cfg.init_cwnd_mss as u64 * mss);
        }
        loop {
            let wnd = sk.cc.cwnd.min(sk.peer_wnd);
            let flight = sk.flight();
            let avail = sk.snd.end_seq().saturating_sub(sk.snd_nxt);
            let fin_pending = sk.fin_queued && !sk.fin_sent;
            if avail == 0 && !fin_pending {
                break;
            }
            if sk.peer_wnd == 0 && flight == 0 {
                need_persist = true;
                break;
            }
            if flight >= wnd {
                break;
            }
            let len = avail.min(wnd - flight).min(mss);
            if len > 0 {
                // Sender silly-window avoidance: don't send a window-limited
                // dribble while data is outstanding.
                let window_limited = len < mss && len < avail;
                if window_limited && flight > 0 {
                    break;
                }
                // Nagle: one outstanding small segment at a time.
                if cfg.nagle && len < mss && flight > 0 {
                    break;
                }
            }
            let seq = sk.snd_nxt;
            let payload = if len > 0 {
                let mut p = pool.take_bytes_vec();
                sk.snd.slice_into(seq, len as usize, &mut p);
                p
            } else {
                Vec::new()
            };
            sk.snd_nxt += len;
            // Bundle FIN onto the segment that exhausts the send queue.
            let mut fin_now = false;
            if fin_pending && sk.snd_nxt == sk.snd.end_seq() {
                fin_now = true;
                sk.fin_sent = true;
                sk.snd_nxt += 1;
                sk.state = match sk.state {
                    TcpState::Established => TcpState::FinWait1,
                    TcpState::CloseWait => TcpState::LastAck,
                    other => other,
                };
            }
            if len == 0 && !fin_now {
                break;
            }
            if sk.rtt_probe.is_none() && seq >= sk.rtx_until {
                sk.rtt_probe = Some((sk.snd_nxt, now));
            }
            if seq < sk.rtx_until {
                sk.stats.retransmits += 1;
            }
            segs.push((seq, payload, fin_now));
        }
    }
    let any = !segs.is_empty();
    // A cwnd's worth of segments leaves back-to-back for one peer: emit as
    // one train. Nothing between two emissions here touches the network or
    // the RNG, so the fused path is step-for-step equivalent to per-segment
    // emission (see `ip::send_train`); the RTO armed below is seconds out
    // while train arrivals are queue-bounded, so its seq position cannot
    // produce a (time, seq) tie either way.
    let mut train = w.pool.take_packet_vec();
    train.reserve(segs.len());
    for (seq, payload, fin) in segs.drain(..) {
        let flags = if fin { Flags::FIN } else { Flags::EMPTY };
        train.push(build_segment(w, ctx, s, flags, seq, payload, false));
    }
    w.pool.put_seg_vec(segs);
    ip::send_train(w, ctx, train);
    {
        let sk = sock_mut(w, s);
        let outstanding = sk.flight() > 0;
        if any && outstanding && !sk.rto_armed {
            arm_rto(w, ctx, s);
        }
    }
    if need_persist {
        arm_persist(w, ctx, s);
    }
}

// ---------------------------------------------------------------------------
// Input path
// ---------------------------------------------------------------------------

/// Entry point from the IP layer.
pub(crate) fn input(w: &mut World, ctx: &mut Wx, src: IfAddr, dst: IfAddr, seg: TcpSegment) {
    let host = dst.host;
    let key = (seg.dst_port, src.host, seg.src_port);
    let existing = w.hosts[host as usize].tcp.conn_map.get(&key).copied();
    match existing {
        Some(idx) => sock_input(w, ctx, SockId { host, idx }, seg),
        None => {
            if seg.flags.contains(Flags::SYN)
                && !seg.flags.contains(Flags::ACK)
                && w.hosts[host as usize].tcp.listeners.contains_key(&seg.dst_port)
            {
                passive_open(w, ctx, host, src, seg);
            }
            // Anything else to an unknown connection is silently dropped.
        }
    }
}

fn passive_open(w: &mut World, ctx: &mut Wx, host: u16, src: IfAddr, seg: TcpSegment) {
    let cfg = w.hosts[host as usize].tcp.cfg;
    let local = (IfAddr::new(host, 0), seg.dst_port);
    let remote = (src, seg.src_port);
    let mut sk = TcpSock::new(local, remote, TcpState::SynRcvd, &cfg);
    sk.rcv_nxt = 1;
    sk.peer_wnd = seg.wnd;
    let th = &mut w.hosts[host as usize].tcp;
    let idx = th.socks.len() as u32;
    th.socks.push(sk);
    th.conn_map.insert((seg.dst_port, src.host, seg.src_port), idx);
    send_syn_ack(w, ctx, SockId { host, idx });
}

fn sock_input(w: &mut World, ctx: &mut Wx, s: SockId, seg: TcpSegment) {
    sock_mut(w, s).stats.segs_in += 1;

    if seg.flags.contains(Flags::RST) {
        let sk = sock_mut(w, s);
        sk.state = TcpState::Closed;
        ctx.wake_all(&sk.readers);
        ctx.wake_all(&sk.writers);
        sk.readers.clear();
        sk.writers.clear();
        return;
    }

    match sock(w, s).state {
        TcpState::SynSent => {
            if seg.flags.contains(Flags::SYN) && seg.flags.contains(Flags::ACK) && seg.ack == 1 {
                {
                    let sk = sock_mut(w, s);
                    sk.snd_una = 1;
                    sk.rcv_nxt = seg.seq + 1;
                    sk.peer_wnd = seg.wnd;
                    sk.state = TcpState::Established;
                    sk.syn_retries = 0;
                    // Handshake RTT sample (unretransmitted SYNs only).
                    if let Some(t0) = sk.syn_sent_at.take() {
                        let now = ctx.now();
                        sk.rto.sample(now.since(t0));
                    }
                    disarm_rto(ctx, sk);
                    ctx.wake_all(&sk.writers);
                    sk.writers.clear();
                }
                send_ack_now(w, ctx, s);
            }
        }
        TcpState::SynRcvd => {
            if seg.flags.contains(Flags::ACK) && !seg.flags.contains(Flags::SYN) && seg.ack >= 1 {
                let port = {
                    let sk = sock_mut(w, s);
                    sk.snd_una = 1;
                    sk.peer_wnd = seg.wnd;
                    sk.state = TcpState::Established;
                    disarm_rto(ctx, sk);
                    sk.local.1
                };
                if let Some(l) = w.hosts[s.host as usize].tcp.listeners.get_mut(&port) {
                    l.backlog.push_back(s.idx);
                    let acceptors = std::mem::take(&mut l.acceptors);
                    ctx.wake_all(&acceptors);
                }
                // Piggybacked data on the final handshake ACK.
                if seg.payload_len > 0 || seg.flags.contains(Flags::FIN) {
                    established_input(w, ctx, s, seg);
                }
            }
        }
        TcpState::Closed => {}
        _ => {
            // A retransmitted SYN-ACK means our final handshake ACK was
            // lost; re-ack it.
            if seg.flags.contains(Flags::SYN) {
                send_ack_now(w, ctx, s);
                return;
            }
            established_input(w, ctx, s, seg);
        }
    }
}

fn established_input(w: &mut World, ctx: &mut Wx, s: SockId, seg: TcpSegment) {
    if seg.flags.contains(Flags::ACK) {
        process_ack(w, ctx, s, &seg);
    }
    let mut ack_now = seg.probe;
    if seg.payload_len > 0 || seg.flags.contains(Flags::FIN) {
        ack_now |= process_data(w, ctx, s, &seg);
    }
    // The payload slices the reassembly store needed were cloned (cheap
    // refcounted handles); retire the segment's carrier buffers.
    let TcpSegment { payload, sack, .. } = seg;
    w.pool.put_bytes_vec(payload);
    w.pool.put_gap_vec(sack);
    if ack_now {
        send_ack_now(w, ctx, s);
    } else {
        let pending = sock(w, s).delack_pending;
        if pending >= 2 {
            send_ack_now(w, ctx, s);
        } else if pending > 0 {
            arm_delack(w, ctx, s);
        }
    }
    // New acks / window changes may unblock sending.
    output(w, ctx, s);
}

fn process_ack(w: &mut World, ctx: &mut Wx, s: SockId, seg: &TcpSegment) {
    let cfg = cfg_of(w, s);
    let mss = cfg.mss as u64;
    let now = ctx.now();
    let mut wake_writers = w.pool.take_proc_vec();
    let mut new_ack = false;
    {
        let sk = sock_mut(w, s);
        // Fold in SACK blocks, noting whether they tell us anything new.
        let mut sack_new = false;
        for &(b0, b1) in &seg.sack {
            if b0 > sk.snd_una && !sk.sacked.contains_range(b0, b1) {
                sk.sacked.insert(b0, b1);
                sack_new = true;
            }
        }

        let old_peer_wnd = sk.peer_wnd;
        if seg.ack > sk.snd_una {
            new_ack = true;
            let acked = seg.ack - sk.snd_una;
            sk.snd_una = seg.ack;
            // A stale ack may land after a go-back-N rewind: never let
            // snd_nxt fall behind snd_una.
            sk.snd_nxt = sk.snd_nxt.max(seg.ack);
            sk.snd.advance_to(seg.ack.min(sk.snd.end_seq()));
            sk.sacked.remove_below(seg.ack);
            sk.hole_rtx.remove_below(seg.ack);
            sk.persist_shift = 0;
            if let Some((pseq, t0)) = sk.rtt_probe {
                if seg.ack >= pseq {
                    sk.rto.sample(now.since(t0));
                    sk.rtt_probe = None;
                }
            }
            if sk.cc.in_recovery {
                if seg.ack >= sk.cc.recover {
                    // Full ack: recovery complete.
                    sk.cc.in_recovery = false;
                    sk.cc.cwnd = sk.cc.ssthresh.max(2 * mss);
                    sk.cc.dupacks = 0;
                } else {
                    // NewReno partial ack: deflate; the hole-repair rule
                    // below retransmits the next hole.
                    sk.cc.cwnd = sk.cc.cwnd.saturating_sub(acked).saturating_add(mss).max(mss);
                }
            } else {
                sk.cc.dupacks = 0;
                if sk.cc.cwnd <= sk.cc.ssthresh {
                    // Slow start, classic per-ACK growth (the ack-counting
                    // the paper contrasts with SCTP's byte counting).
                    sk.cc.cwnd += mss;
                } else {
                    sk.cc.cwnd += (mss * mss / sk.cc.cwnd).max(1);
                }
                // Growth beyond the send buffer is useless; cap it.
                sk.cc.cwnd = sk.cc.cwnd.min(cfg.sndbuf * 4);
            }
            if ctx.tracing() {
                trace_cwnd(ctx, s, sk);
            }
            // Restart (or stop) the retransmission timer.
            let fin_unacked = sk.fin_sent && sk.snd_una <= sk.snd.end_seq();
            if sk.flight() > 0 || fin_unacked {
                // re-armed below (fresh timer)
                sk.rto_armed = false;
            } else {
                disarm_rto(ctx, sk);
            }
            std::mem::swap(&mut wake_writers, &mut sk.writers);

            // FIN acknowledged?
            if sk.fin_sent && seg.ack == sk.snd.end_seq() + 1 {
                sk.state = match sk.state {
                    TcpState::FinWait1 => TcpState::FinWait2,
                    TcpState::Closing => TcpState::TimeWait,
                    TcpState::LastAck => TcpState::Closed,
                    other => other,
                };
                if sk.state == TcpState::Closed || sk.state == TcpState::TimeWait {
                    disarm_rto(ctx, sk);
                }
            }
        } else if seg.ack == sk.snd_una {
            let is_dup = (sk.flight() > 0
                && seg.payload_len == 0
                && !seg.flags.intersects(Flags::SYN | Flags::FIN)
                && seg.wnd == old_peer_wnd)
                || sack_new;
            if is_dup {
                sk.stats.dup_acks_in += 1;
                if sk.cc.in_recovery {
                    sk.cc.cwnd += mss; // inflation during recovery
                    if ctx.tracing() {
                        trace_cwnd(ctx, s, sk);
                    }
                } else {
                    sk.cc.dupacks += 1;
                    if sk.cc.dupacks >= cfg.dupack_thresh {
                        // Fast retransmit: enter recovery; the hole-repair
                        // rule below sends the retransmission.
                        sk.cc.ssthresh = (sk.flight() / 2).max(2 * mss);
                        sk.cc.recover = sk.snd_nxt;
                        sk.cc.in_recovery = true;
                        sk.cc.cwnd = sk.cc.ssthresh + 3 * mss;
                        sk.stats.fast_retransmits += 1;
                        if ctx.tracing() {
                            ctx.trace_emit(trace::Event::FastRtx(trace::FastRtxEv {
                                proto: trace::Proto8::Tcp,
                                host: s.host,
                                peer: sk.remote.0.host,
                                path: 0,
                                tsn: sk.snd_una,
                                count: sk.cc.dupacks,
                            }));
                            trace_cwnd(ctx, s, sk);
                        }
                    }
                }
            }
        }
        sk.peer_wnd = seg.wnd;
        if sk.peer_wnd > 0 {
            // Cancel persist probing.
            sk.persist_gen += 1;
            sk.persist_armed = false;
            if let Some(id) = sk.persist_timer.take() {
                ctx.cancel_counted(id);
            }
        }
    }
    ctx.wake_all(&wake_writers);
    w.pool.put_proc_vec(wake_writers);

    // SACK-scoreboard hole repair: when the scoreboard proves a hole at
    // snd_una (data above it was received) and we are either in fast
    // recovery or just took a new cumulative ack (the post-RTO continuation
    // — the receiver sends no dup-ACK stream then), retransmit the first
    // hole, at most once per hole per recovery episode. Without this, a
    // lost retransmission or a multi-hole window degenerates into a chain
    // of backed-off RTOs.
    let rtx = {
        let sk = sock_mut(w, s);
        let hole_exists = sk.sacked.max_end().is_some_and(|e| e > sk.snd_una);
        // RFC 6675-style loss evidence: enough bytes SACKed above the hole
        // (the dup-ACK threshold expressed in scoreboard terms). Without
        // this, a single out-of-order SACK block would trigger repair.
        let evidence = sk.sacked.covered() >= cfg.dupack_thresh as u64 * mss;
        // During a timeout episode (Karn backoff still in force) the
        // receiver generates no dup-ACK stream, so the scoreboard is the
        // only signal left: repair holes on every cumulative ack or the
        // remaining losses each cost a full backed-off RTO.
        let rto_episode = sk.rto.backoff_shift() > 0;
        let allowed = if cfg.sack_hole_repair {
            sk.cc.in_recovery || (new_ack && (evidence || rto_episode))
        } else {
            // Era NewReno: retransmit only at recovery entry and on partial
            // acks; no scoreboard-driven continuation after an RTO.
            sk.cc.in_recovery
        };
        if hole_exists && allowed && !sk.hole_rtx.contains(sk.snd_una) {
            let hole_end = sk
                .sacked
                .iter()
                .next()
                .map(|(s0, _)| s0)
                .unwrap_or(sk.snd_una + mss)
                .min(sk.snd_una + mss);
            let len = hole_end - sk.snd_una;
            sk.hole_rtx.insert(sk.snd_una, hole_end);
            Some((sk.snd_una, len))
        } else {
            None
        }
    };
    if let Some((seq, len)) = rtx {
        if std::env::var("TCP_TRACE").is_ok() {
            eprintln!("[{}] HOLE-RTX seq={seq} len={len}", ctx.now());
        }
        retransmit_seg(w, ctx, s, seq, len as usize);
    }

    {
        let sk = sock_mut(w, s);
        let fin_unacked = sk.fin_sent && sk.snd_una <= sk.snd.end_seq();
        if (sk.flight() > 0 || fin_unacked) && !sk.rto_armed {
            // fresh RTO after forward progress
        } else {
            return;
        }
    }
    arm_rto(w, ctx, s);
}

/// Buffer arriving payload; returns true if an immediate ACK is required.
fn process_data(w: &mut World, ctx: &mut Wx, s: SockId, seg: &TcpSegment) -> bool {
    let cfg = cfg_of(w, s);
    let mut ack_now = false;
    let mut wake_readers = w.pool.take_proc_vec();
    {
        let (sk, pool) = sock_pool_mut(w, s);
        let seq = seg.seq;
        let len = seg.payload_len as u64;
        if len > 0 {
            let end = seq + len;
            // Acceptance edge: the window must never shrink (RFC 793/1122),
            // so anything below the highest edge we ever advertised is
            // accepted — even if the application has not drained the buffer
            // since. (The *advertised* window stays conservative.)
            let wnd_edge = sk.adv_edge.max(sk.rcv_nxt + cfg.rcvbuf.saturating_sub(sk.in_order_bytes));
            if end <= sk.rcv_nxt {
                // Entirely old: pure duplicate.
                ack_now = true;
            } else if seq >= wnd_edge {
                // Entirely beyond our window: drop, but tell the sender
                // where we stand (this answers zero-window probes too).
                if std::env::var("TCP_TRACE").is_ok() {
                    eprintln!("[?] OOW-DROP seq={seq} edge={wnd_edge} rcv_nxt={} in_order={}", sk.rcv_nxt, sk.in_order_bytes);
                }
                ack_now = true;
            } else {
                let had_gap = !sk.have.is_empty();
                // Clamp to window and insert the missing sub-ranges.
                let lo = seq.max(sk.rcv_nxt);
                let hi = end.min(wnd_edge);
                let mut holes = pool.take_gap_vec();
                sk.have.holes_within_into(lo, hi, &mut holes);
                if holes.is_empty() {
                    // Nothing new (complete duplicate of buffered data).
                    ack_now = true;
                } else {
                    for &(h0, h1) in &holes {
                        let off = (h0 - seq) as usize;
                        let piece = slice_payload(&seg.payload, off, (h1 - h0) as usize);
                        sk.store.insert(h0, piece);
                        sk.have.insert(h0, h1);
                        sk.ooo_bytes += h1 - h0;
                        sk.stats.bytes_in += h1 - h0;
                    }
                    if lo > sk.rcv_nxt {
                        // Out of order: remember recency for SACK, ack now.
                        sk.sack_recent.retain(|&r| r != lo);
                        sk.sack_recent.insert(0, lo);
                        sk.sack_recent.truncate(8);
                        ack_now = true;
                    }
                    // Drain whatever is now contiguous.
                    let mut drained = false;
                    while sk.have.contains(sk.rcv_nxt) {
                        let chunk = sk
                            .store
                            .remove(&sk.rcv_nxt)
                            .expect("store chunks partition `have`");
                        let clen = chunk.len() as u64;
                        sk.rcv_nxt += clen;
                        sk.ooo_bytes -= clen;
                        sk.in_order_bytes += clen;
                        sk.in_order.push_back(chunk);
                        drained = true;
                    }
                    if drained {
                        sk.have.remove_below(sk.rcv_nxt);
                        sk.sack_recent.retain(|&r| r >= sk.rcv_nxt);
                        std::mem::swap(&mut wake_readers, &mut sk.readers);
                        if had_gap {
                            // Filling a gap: ack immediately (RFC 5681).
                            ack_now = true;
                        } else {
                            sk.delack_pending += 1;
                        }
                    }
                }
                pool.put_gap_vec(holes);
            }
        }

        // FIN processing: the FIN sits after the segment's payload.
        if seg.flags.contains(Flags::FIN) {
            sk.fin_rcvd = Some(seg.seq + len);
        }
        if let Some(fs) = sk.fin_rcvd {
            if sk.rcv_nxt == fs && !sk.eof_delivered {
                sk.rcv_nxt += 1;
                sk.eof_delivered = true;
                ack_now = true;
                sk.state = match sk.state {
                    TcpState::Established => TcpState::CloseWait,
                    TcpState::FinWait1 => TcpState::Closing,
                    TcpState::FinWait2 => TcpState::TimeWait,
                    other => other,
                };
                wake_readers.append(&mut sk.readers);
            }
        }
    }
    ctx.wake_all(&wake_readers);
    w.pool.put_proc_vec(wake_readers);
    ack_now
}

/// Slice `len` bytes at `off` out of a chunked payload. Single-chunk slices
/// are zero-copy; cross-chunk slices copy (rare: only overlap trimming).
fn slice_payload(chunks: &[Bytes], off: usize, len: usize) -> Bytes {
    let mut skip = off;
    let mut need = len;
    let mut v: Vec<u8> = Vec::new();
    for c in chunks {
        if need == 0 {
            break;
        }
        if skip >= c.len() {
            skip -= c.len();
            continue;
        }
        let take = (c.len() - skip).min(need);
        if v.is_empty() && take == need {
            return c.slice(skip..skip + take);
        }
        v.reserve(need);
        v.extend_from_slice(&c[skip..skip + take]);
        need -= take;
        skip = 0;
    }
    Bytes::from(v)
}
