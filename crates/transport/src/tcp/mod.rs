//! TCP: a 4.4BSD-lineage implementation (the transport under LAM-TCP).
//!
//! Feature set (see DESIGN.md S5):
//! * 3-way handshake with SYN retransmission, orderly close with FIN
//!   sequences including the half-closed state the paper contrasts with
//!   SCTP (§3.5.2);
//! * sliding-window byte stream with advertised-window flow control,
//!   zero-window persist probes, and receiver window updates;
//! * delayed ACKs (ack-every-2nd or 100 ms), immediate dup-ACKs on
//!   out-of-order data;
//! * NewReno congestion control with fast retransmit / fast recovery and a
//!   SACK scoreboard limited to [`TcpCfg::max_sack_blocks`] blocks per ACK
//!   (the IP-option-space limit from §4.1.1 of the paper);
//! * RFC 6298 RTO with Karn's rule, exponential backoff, and the coarse
//!   500 ms timer granularity of era BSD stacks;
//! * Nagle's algorithm, **disabled by default** to match LAM-TCP.
//!
//! Public API mirrors nonblocking BSD sockets: `listen` / `connect` /
//! `accept` / `send` / `recv` / `close`, plus readiness queries and waiter
//! registration used by the middleware's progression engine.

mod engine;

use std::collections::{BTreeMap, HashMap, VecDeque};

use bytes::Bytes;
use netsim::IfAddr;
use simcore::{ProcId, SimTime};

use crate::buf::ByteQueue;
use crate::ranges::RangeSet;
use crate::rto::{RtoCfg, RtoEstimator};
use crate::{World, Wx};

pub(crate) use engine::input;

/// Handle to a TCP socket on a given host.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct SockId {
    /// Host the socket lives on.
    pub host: u16,
    /// Index into that host's socket table.
    pub idx: u32,
}

/// TCP configuration (per host; the paper uses identical settings on all
/// eight nodes).
#[derive(Debug, Clone, Copy)]
pub struct TcpCfg {
    /// Maximum segment size (1448 = 1500 MTU − 40 hdrs − 12 timestamp opt).
    pub mss: u32,
    /// SO_SNDBUF. The paper pins both buffers to 220 KB on both stacks.
    pub sndbuf: u64,
    /// SO_RCVBUF.
    pub rcvbuf: u64,
    /// Nagle's algorithm (LAM-TCP disables it).
    pub nagle: bool,
    /// Delayed-ACK timeout.
    pub delack: simcore::Dur,
    /// Dup-ACK threshold for fast retransmit.
    pub dupack_thresh: u32,
    /// Max SACK blocks carried per ACK (IP option space limit).
    pub max_sack_blocks: usize,
    /// RTO parameters (era BSD defaults).
    pub rto: RtoCfg,
    /// Initial congestion window, in MSS (RFC 3390 ≈ 3 for MSS 1448).
    pub init_cwnd_mss: u32,
    /// Restart cwnd after the connection idles longer than one RTO.
    pub idle_restart: bool,
    /// SYN (and SYN-ACK) retransmission limit before the connect fails.
    pub max_syn_retries: u32,
    /// SACK-scoreboard hole repair (RFC 6675-style). FreeBSD 5.3's SACK
    /// code (brand new in 2004) had nothing like it — set `false` for
    /// era-faithful NewReno-only recovery, which degenerates to RTO chains
    /// under multi-loss windows (the regime the paper's TCP numbers show).
    pub sack_hole_repair: bool,
}

impl Default for TcpCfg {
    fn default() -> Self {
        TcpCfg {
            mss: 1448,
            sndbuf: 220 * 1024,
            rcvbuf: 220 * 1024,
            nagle: false,
            delack: simcore::Dur::from_millis(100),
            dupack_thresh: 3,
            max_sack_blocks: 3,
            rto: RtoCfg::bsd_tcp(),
            init_cwnd_mss: 3,
            idle_restart: true,
            max_syn_retries: 6,
            sack_hole_repair: true,
        }
    }
}

/// TCP connection states (RFC 793 subset; LISTEN lives in the engine's
/// internal `Listener` table).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TcpState {
    /// Active open: SYN sent, waiting for SYN|ACK.
    SynSent,
    /// Passive open: SYN received, SYN|ACK sent.
    SynRcvd,
    /// Three-way handshake complete; data flows.
    Established,
    /// Our FIN sent, not yet acknowledged.
    FinWait1,
    /// Our FIN acknowledged, waiting for the peer's FIN.
    FinWait2,
    /// Peer's FIN received while we still have data to send.
    CloseWait,
    /// Simultaneous close: both FINs in flight.
    Closing,
    /// Passive close: our FIN sent after the peer's, awaiting its ACK.
    LastAck,
    /// Both FINs acknowledged; lingering to absorb stray segments.
    TimeWait,
    /// Connection fully torn down.
    Closed,
}

/// A minimal bitflags substitute to avoid an extra dependency.
macro_rules! bitflags_lite {
    ($(#[$m:meta])* pub struct $name:ident : $t:ty { $(const $f:ident = $v:expr;)* }) => {
        $(#[$m])*
        #[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
        pub struct $name($t);
        impl $name {
            $(#[doc = concat!("The `", stringify!($f), "` flag bit.")]
            pub const $f: $name = $name($v);)*
            /// No flags set.
            pub const EMPTY: $name = $name(0);
            /// True when every bit of `o` is set in `self`.
            #[inline]
            pub fn contains(self, o: $name) -> bool { self.0 & o.0 == o.0 }
            /// True when `self` and `o` share at least one bit.
            #[inline]
            pub fn intersects(self, o: $name) -> bool { self.0 & o.0 != 0 }
            /// The bitwise OR of both flag sets.
            #[inline]
            pub fn union(self, o: $name) -> $name { $name(self.0 | o.0) }
        }
        impl std::ops::BitOr for $name {
            type Output = $name;
            fn bitor(self, o: $name) -> $name { self.union(o) }
        }
    };
}

bitflags_lite! {
    /// TCP header flags (subset).
    pub struct Flags: u8 {
        const SYN = 0b0001;
        const ACK = 0b0010;
        const FIN = 0b0100;
        const RST = 0b1000;
    }
}

/// A TCP segment on the wire. Sequence numbers are absolute `u64` (the
/// simulator never wraps; real TCP's 32-bit wrap handling is orthogonal to
/// everything the paper measures).
#[derive(Debug)]
pub struct TcpSegment {
    /// Sending port.
    pub src_port: u16,
    /// Receiving port.
    pub dst_port: u16,
    /// Control flags (SYN/ACK/FIN/RST).
    pub flags: Flags,
    /// Sequence number of the first payload byte.
    pub seq: u64,
    /// Cumulative acknowledgment (next byte expected), valid when ACK set.
    pub ack: u64,
    /// Advertised receive window (bytes).
    pub wnd: u64,
    /// SACK blocks `[start, end)`, most recent first, at most
    /// `max_sack_blocks`.
    pub sack: Vec<(u64, u64)>,
    /// Zero-window persist probe: elicits an immediate pure ACK.
    pub probe: bool,
    /// Zero-copy payload slices, in order.
    pub payload: Vec<Bytes>,
    /// Total payload bytes across all slices.
    pub payload_len: u32,
}

impl TcpSegment {
    /// Bytes this segment occupies on the wire, excluding the IP header:
    /// 20 base + 12 timestamp option + SACK option + SYN MSS option.
    pub fn wire_len(&self) -> u32 {
        let mut n = 20 + 12 + self.payload_len;
        if !self.sack.is_empty() {
            n += 2 + 8 * self.sack.len() as u32;
        }
        if self.flags.contains(Flags::SYN) {
            n += 4;
        }
        n
    }

    /// Sequence space this segment consumes (payload + SYN/FIN flags).
    pub fn seq_len(&self) -> u64 {
        let mut n = self.payload_len as u64;
        if self.flags.contains(Flags::SYN) {
            n += 1;
        }
        if self.flags.contains(Flags::FIN) {
            n += 1;
        }
        n
    }
}

/// Per-socket counters (aggregated for EXPERIMENTS diagnostics).
#[derive(Debug, Clone, Copy, Default)]
pub struct SockStats {
    /// Segments transmitted (including retransmissions).
    pub segs_out: u64,
    /// Segments received.
    pub segs_in: u64,
    /// Payload bytes transmitted (including retransmissions).
    pub bytes_out: u64,
    /// Payload bytes received.
    pub bytes_in: u64,
    /// Retransmitted segments, any cause.
    pub retransmits: u64,
    /// Retransmissions triggered by duplicate ACKs / SACK, not timeout.
    pub fast_retransmits: u64,
    /// Retransmission-timer expiries.
    pub timeouts: u64,
    /// Duplicate ACKs received.
    pub dup_acks_in: u64,
}

/// Sender-side congestion control + recovery state.
#[derive(Debug)]
pub(crate) struct Cc {
    pub cwnd: u64,
    pub ssthresh: u64,
    pub dupacks: u32,
    pub in_recovery: bool,
    /// `snd_nxt` at recovery entry (NewReno "recover").
    pub recover: u64,
}

pub(crate) struct TcpSock {
    pub state: TcpState,
    pub local: (IfAddr, u16),
    pub remote: (IfAddr, u16),

    // --- send side ---
    /// Retained bytes from `snd_una` to the end of the app's queued data.
    pub snd: ByteQueue,
    pub snd_una: u64,
    pub snd_nxt: u64,
    pub peer_wnd: u64,
    pub fin_queued: bool,
    pub fin_sent: bool,
    pub cc: Cc,
    /// SACK scoreboard (peer-reported received ranges above snd_una).
    pub sacked: RangeSet,
    /// Holes already retransmitted once in the current recovery episode
    /// (prevents retransmit storms; cleared as `snd_una` advances).
    pub hole_rtx: RangeSet,
    /// After an RTO, `snd_nxt` is rewound to `snd_una` (go-back-N);
    /// sequences below this mark are retransmissions (Karn: never sampled).
    pub rtx_until: u64,
    pub rto: RtoEstimator,
    pub rto_gen: u64,
    pub rto_armed: bool,
    /// Live RTO timer, if one is scheduled. Rearms go through
    /// `Ctx::reschedule_in` so the superseded timer is ghost-cancelled (one
    /// wheel tombstone) instead of firing later as a checked no-op.
    pub rto_timer: Option<simcore::TimerId>,
    pub persist_gen: u64,
    pub persist_armed: bool,
    /// Live persist (zero-window probe) timer, ghost-cancelled on rearm.
    pub persist_timer: Option<simcore::TimerId>,
    pub persist_shift: u32,
    /// RTT probe: (seq to be acked, send time); None while a retransmission
    /// poisons the sample (Karn).
    pub rtt_probe: Option<(u64, SimTime)>,
    pub last_send: SimTime,
    pub syn_retries: u32,
    /// When the (first, unretransmitted) SYN went out — handshake RTT sample.
    pub syn_sent_at: Option<SimTime>,

    // --- receive side ---
    pub rcv_nxt: u64,
    pub in_order: VecDeque<Bytes>,
    pub in_order_bytes: u64,
    /// Out-of-order chunks keyed by start seq; chunk boundaries partition
    /// `have`.
    pub store: BTreeMap<u64, Bytes>,
    /// Received byte ranges at or above `rcv_nxt`.
    pub have: RangeSet,
    pub ooo_bytes: u64,
    /// Recency-ordered out-of-order range *starts* for SACK generation.
    pub sack_recent: Vec<u64>,
    pub fin_rcvd: Option<u64>,
    pub eof_delivered: bool,
    pub last_adv_wnd: u64,
    /// Highest sequence we have ever advertised as acceptable
    /// (`rcv_nxt + wnd` at advertisement time). TCP MUST NOT shrink the
    /// window: data below this edge is accepted even if the buffer has
    /// since filled.
    pub adv_edge: u64,
    pub delack_pending: u32,
    pub delack_gen: u64,
    pub delack_armed: bool,
    /// Live delayed-ACK timer, ghost-cancelled when a segment preempts it.
    pub delack_timer: Option<simcore::TimerId>,

    // --- app interface ---
    pub readers: Vec<ProcId>,
    pub writers: Vec<ProcId>,
    pub stats: SockStats,
}

impl TcpSock {
    fn new(local: (IfAddr, u16), remote: (IfAddr, u16), state: TcpState, cfg: &TcpCfg) -> Self {
        TcpSock {
            state,
            local,
            remote,
            snd: ByteQueue::new(1),
            snd_una: 0,
            snd_nxt: 0,
            peer_wnd: 0,
            fin_queued: false,
            fin_sent: false,
            cc: Cc {
                cwnd: cfg.init_cwnd_mss as u64 * cfg.mss as u64,
                ssthresh: u64::MAX / 2,
                dupacks: 0,
                in_recovery: false,
                recover: 0,
            },
            sacked: RangeSet::new(),
            hole_rtx: RangeSet::new(),
            rtx_until: 0,
            rto: RtoEstimator::new(cfg.rto),
            rto_gen: 0,
            rto_armed: false,
            rto_timer: None,
            persist_gen: 0,
            persist_armed: false,
            persist_timer: None,
            persist_shift: 0,
            rtt_probe: None,
            last_send: SimTime::ZERO,
            syn_retries: 0,
            syn_sent_at: None,
            rcv_nxt: 0,
            in_order: VecDeque::new(),
            in_order_bytes: 0,
            store: BTreeMap::new(),
            have: RangeSet::new(),
            ooo_bytes: 0,
            sack_recent: Vec::new(),
            fin_rcvd: None,
            eof_delivered: false,
            last_adv_wnd: cfg.rcvbuf,
            adv_edge: 0,
            delack_pending: 0,
            delack_gen: 0,
            delack_armed: false,
            delack_timer: None,
            readers: Vec::new(),
            writers: Vec::new(),
            stats: SockStats::default(),
        }
    }

    /// Bytes in flight.
    pub fn flight(&self) -> u64 {
        self.snd_nxt - self.snd_una
    }

    /// Receive window to advertise.
    pub fn rcv_wnd(&self, rcvbuf: u64) -> u64 {
        rcvbuf.saturating_sub(self.in_order_bytes + self.ooo_bytes)
    }

    /// Free space in the send buffer.
    pub fn snd_space(&self, sndbuf: u64) -> u64 {
        sndbuf.saturating_sub(self.snd.len())
    }
}

pub(crate) struct Listener {
    pub backlog: VecDeque<u32>,
    pub acceptors: Vec<ProcId>,
}

/// All TCP state on one host.
pub struct TcpHost {
    /// Host-wide TCP tuning (shared by every socket).
    pub cfg: TcpCfg,
    pub(crate) socks: Vec<TcpSock>,
    pub(crate) listeners: HashMap<u16, Listener>,
    /// (local_port, remote_host, remote_port) → sock index.
    pub(crate) conn_map: HashMap<(u16, u16, u16), u32>,
    next_ephemeral: u16,
}

impl TcpHost {
    /// A host with no sockets or listeners yet.
    pub fn new(cfg: TcpCfg) -> Self {
        TcpHost {
            cfg,
            socks: Vec::new(),
            listeners: HashMap::new(),
            conn_map: HashMap::new(),
            next_ephemeral: 49152,
        }
    }

    fn alloc_port(&mut self) -> u16 {
        let p = self.next_ephemeral;
        self.next_ephemeral = self.next_ephemeral.checked_add(1).expect("ephemeral ports exhausted");
        p
    }

    /// Aggregate stats across all sockets on this host.
    pub fn total_stats(&self) -> SockStats {
        let mut t = SockStats::default();
        for s in &self.socks {
            t.segs_out += s.stats.segs_out;
            t.segs_in += s.stats.segs_in;
            t.bytes_out += s.stats.bytes_out;
            t.bytes_in += s.stats.bytes_in;
            t.retransmits += s.stats.retransmits;
            t.fast_retransmits += s.stats.fast_retransmits;
            t.timeouts += s.stats.timeouts;
            t.dup_acks_in += s.stats.dup_acks_in;
        }
        t
    }
}

pub(crate) fn sock_mut(w: &mut World, s: SockId) -> &mut TcpSock {
    &mut w.hosts[s.host as usize].tcp.socks[s.idx as usize]
}

/// Split borrow: the socket *and* the world's buffer pools, so hot paths
/// can recycle buffers while mutating socket state.
pub(crate) fn sock_pool_mut(w: &mut World, s: SockId) -> (&mut TcpSock, &mut crate::pool::Pools) {
    let World { hosts, pool, .. } = w;
    (&mut hosts[s.host as usize].tcp.socks[s.idx as usize], pool)
}

pub(crate) fn sock(w: &World, s: SockId) -> &TcpSock {
    &w.hosts[s.host as usize].tcp.socks[s.idx as usize]
}

// ---------------------------------------------------------------------------
// Public socket API (nonblocking; middleware supplies the blocking layer)
// ---------------------------------------------------------------------------

/// Start listening on `port`.
pub fn listen(w: &mut World, host: u16, port: u16) {
    let prev = w.hosts[host as usize]
        .tcp
        .listeners
        .insert(port, Listener { backlog: VecDeque::new(), acceptors: Vec::new() });
    assert!(prev.is_none(), "port {port} already listening on host {host}");
}

/// Begin an active open to `(dst_host, dst_port)`. Poll
/// [`is_established`] / [`is_failed`]; register via [`register_writer`].
pub fn connect(w: &mut World, ctx: &mut Wx, host: u16, dst_host: u16, dst_port: u16) -> SockId {
    let cfg = w.hosts[host as usize].tcp.cfg;
    let lport = w.hosts[host as usize].tcp.alloc_port();
    let local = (IfAddr::new(host, 0), lport);
    let remote = (IfAddr::new(dst_host, 0), dst_port);
    let sock = TcpSock::new(local, remote, TcpState::SynSent, &cfg);
    let th = &mut w.hosts[host as usize].tcp;
    let idx = th.socks.len() as u32;
    th.socks.push(sock);
    th.conn_map.insert((lport, dst_host, dst_port), idx);
    let s = SockId { host, idx };
    engine::send_syn(w, ctx, s);
    s
}

/// Accept a pending connection, if any.
pub fn accept(w: &mut World, host: u16, port: u16) -> Option<SockId> {
    let l = w.hosts[host as usize].tcp.listeners.get_mut(&port)?;
    l.backlog.pop_front().map(|idx| SockId { host, idx })
}

/// Register `p` to be woken when a connection is ready to accept.
pub fn register_acceptor(w: &mut World, host: u16, port: u16, p: ProcId) {
    let l = w.hosts[host as usize]
        .tcp
        .listeners
        .get_mut(&port)
        .expect("register_acceptor on non-listening port");
    if !l.acceptors.contains(&p) {
        l.acceptors.push(p);
    }
}

/// True once the three-way handshake completed.
pub fn is_established(w: &World, s: SockId) -> bool {
    sock(w, s).state == TcpState::Established
}

/// True if the connection attempt or connection died.
pub fn is_failed(w: &World, s: SockId) -> bool {
    sock(w, s).state == TcpState::Closed
}

/// Queue bytes for transmission. Returns the number of bytes accepted into
/// the send buffer (0 = would block). Partial chunks are accepted. Takes
/// any walk over the chunks (`&[Bytes]`, a `VecDeque` iterator, …) so
/// callers retrying after a partial write never collect into a fresh list.
pub fn send<'a>(
    w: &mut World,
    ctx: &mut Wx,
    s: SockId,
    data: impl IntoIterator<Item = &'a Bytes>,
) -> usize {
    let sndbuf = w.hosts[s.host as usize].tcp.cfg.sndbuf;
    let sk = sock_mut(w, s);
    if !matches!(sk.state, TcpState::Established | TcpState::CloseWait) {
        return 0;
    }
    assert!(!sk.fin_queued, "send after close");
    let mut space = sk.snd_space(sndbuf) as usize;
    let mut accepted = 0;
    for chunk in data {
        if space == 0 {
            break;
        }
        let take = chunk.len().min(space);
        sk.snd.push(chunk.slice(0..take));
        space -= take;
        accepted += take;
    }
    if accepted > 0 {
        engine::output(w, ctx, s);
    }
    accepted
}

/// Read up to `max` buffered bytes. An empty result means "would block"
/// unless [`at_eof`] is true. May trigger a window-update ACK.
pub fn recv(w: &mut World, ctx: &mut Wx, s: SockId, max: usize) -> Vec<Bytes> {
    let mut out = Vec::new();
    recv_into(w, ctx, s, max, &mut out);
    out
}

/// [`recv`] into a caller-provided buffer (appended to), so a polling
/// reader can reuse one scratch list across every call instead of
/// allocating a fresh `Vec` per readiness pass.
pub fn recv_into(w: &mut World, ctx: &mut Wx, s: SockId, max: usize, out: &mut Vec<Bytes>) {
    let rcvbuf = w.hosts[s.host as usize].tcp.cfg.rcvbuf;
    let mss = w.hosts[s.host as usize].tcp.cfg.mss as u64;
    let sk = sock_mut(w, s);
    let before = out.len();
    let mut want = max;
    while want > 0 {
        match sk.in_order.front_mut() {
            None => break,
            Some(front) => {
                if front.len() <= want {
                    want -= front.len();
                    sk.in_order_bytes -= front.len() as u64;
                    out.push(sk.in_order.pop_front().unwrap());
                } else {
                    let part = front.split_to(want);
                    sk.in_order_bytes -= part.len() as u64;
                    out.push(part);
                    want = 0;
                }
            }
        }
    }
    if out.len() > before {
        // Window update: if our advertised window grew substantially since
        // the last segment we sent, tell the peer (it may be persist-blocked).
        let wnd = sk.rcv_wnd(rcvbuf);
        if wnd >= sk.last_adv_wnd + 2 * mss || (sk.last_adv_wnd < mss && wnd >= mss) {
            engine::send_ack_now(w, ctx, s);
        }
    }
}

/// Bytes currently readable.
pub fn readable_bytes(w: &World, s: SockId) -> u64 {
    sock(w, s).in_order_bytes
}

/// True when the peer's FIN has been consumed (all data read, stream ended).
pub fn at_eof(w: &World, s: SockId) -> bool {
    let sk = sock(w, s);
    sk.eof_delivered && sk.in_order_bytes == 0
}

/// Free space in the send buffer.
pub fn send_space(w: &World, s: SockId) -> u64 {
    let sndbuf = w.hosts[s.host as usize].tcp.cfg.sndbuf;
    sock(w, s).snd_space(sndbuf)
}

/// Register `p` to be woken when the socket may have become readable
/// (data, EOF, or state change).
pub fn register_reader(w: &mut World, s: SockId, p: ProcId) {
    let sk = sock_mut(w, s);
    if !sk.readers.contains(&p) {
        sk.readers.push(p);
    }
}

/// Register `p` to be woken when send-buffer space frees up or the
/// connection state changes.
pub fn register_writer(w: &mut World, s: SockId, p: ProcId) {
    let sk = sock_mut(w, s);
    if !sk.writers.contains(&p) {
        sk.writers.push(p);
    }
}

/// Close the write side (sends FIN after queued data). Reading remains
/// possible — this is TCP's half-close, which §3.5.2 of the paper contrasts
/// with SCTP's full close.
pub fn close(w: &mut World, ctx: &mut Wx, s: SockId) {
    let sk = sock_mut(w, s);
    if sk.fin_queued || matches!(sk.state, TcpState::Closed | TcpState::TimeWait) {
        return;
    }
    sk.fin_queued = true;
    engine::output(w, ctx, s);
}

/// Current state (tests/diagnostics).
pub fn state(w: &World, s: SockId) -> TcpState {
    sock(w, s).state
}

/// The peer's (host, port) — lets an acceptor identify who connected.
pub fn peer_of(w: &World, s: SockId) -> (u16, u16) {
    let sk = sock(w, s);
    (sk.remote.0.host, sk.remote.1)
}

/// Per-socket stats (tests/diagnostics).
pub fn stats(w: &World, s: SockId) -> SockStats {
    sock(w, s).stats
}
