//! RFC 8260 / RFC 3758 integration tests: interleave-off bit-identity,
//! scheduler determinism, per-(stream, MID) reassembly equivalence, and the
//! FORWARD-TSN vs SACK-accounting invariants.

use std::collections::BTreeMap;
use std::sync::{Arc, Mutex};

use bytes::Bytes;
use netsim::NetCfg;
use simcore::{Dur, ProcEnv, Runtime};
use transport::sctp::{self, AssocId, AssocState, EpId, RecvMsg, SchedKind, SctpCfg};
use transport::tcp::TcpCfg;
use transport::World;

type Env = ProcEnv<World>;

/// Delivered-message record: receipt order within its stream is the index
/// in the per-stream vector; payload equality via a cheap rolling digest.
type Delivered = BTreeMap<u16, Vec<(u32, u32, u32, u64)>>; // stream → [(ssn, ppid, len, digest)]

fn digest(m: &RecvMsg) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for chunk in &m.data {
        for &b in chunk.iter() {
            h = (h ^ b as u64).wrapping_mul(0x1000_0000_01b3);
        }
    }
    h
}

fn pattern(len: usize, tag: u8) -> Bytes {
    Bytes::from(
        (0..len).map(|i| (i as u8).wrapping_mul(31).wrapping_add(tag)).collect::<Vec<u8>>(),
    )
}

fn connect_blocking(env: &Env, ep: EpId, dst_host: u16, dst_port: u16) -> AssocId {
    let a = env.with(|w, ctx| sctp::connect(w, ctx, ep, dst_host, dst_port));
    let me = env.id();
    env.block_on(|w, _| match sctp::assoc_state(w, a) {
        AssocState::Established => Some(()),
        AssocState::Aborted => panic!("association failed during setup"),
        _ => {
            sctp::register_writer(w, ep, me);
            None
        }
    });
    a
}

fn sendmsg_blocking(env: &Env, a: AssocId, stream: u16, ppid: u32, data: Bytes) {
    let me = env.id();
    let ep = a.endpoint();
    env.block_on(|w, ctx| match sctp::sendmsg(w, ctx, a, stream, ppid, data.clone()) {
        Ok(()) => Some(()),
        Err(sctp::SendErr::WouldBlock) => {
            sctp::register_writer(w, ep, me);
            None
        }
        Err(e) => panic!("sendmsg failed: {e:?}"),
    });
}

fn recvmsg_blocking(env: &Env, ep: EpId) -> RecvMsg {
    let me = env.id();
    env.block_on(|w, ctx| match sctp::recvmsg(w, ctx, ep) {
        Some(m) => Some(m),
        None => {
            sctp::register_reader(w, ep, me);
            None
        }
    })
}

/// The mixed-size multistream workload every test here drives: `n_msgs`
/// messages round-robined over `streams` streams, every fourth message
/// large enough to fragment (70 KB > sndbuf-independent PMTU), the rest
/// 1 KB. Returns (delivered map, simulator events).
fn run_mixed(cfg: SctpCfg, loss: f64, seed: u64, n_msgs: u32, streams: u16) -> (Delivered, u64) {
    let world = World::new(NetCfg::paper_cluster(loss), TcpCfg::default(), cfg);
    let mut rt = Runtime::new(world, seed);
    let delivered: Arc<Mutex<Delivered>> = Arc::new(Mutex::new(BTreeMap::new()));

    rt.spawn("client", move |env: Env| {
        let ep = env.with(|w, _| sctp::socket(w, 0, 4000, true));
        let a = connect_blocking(&env, ep, 1, 4000);
        for i in 0..n_msgs {
            let sid = (i % streams as u32) as u16;
            let len = if i % 4 == 0 { 70 * 1024 } else { 1024 };
            sendmsg_blocking(&env, a, sid, i, pattern(len, sid as u8));
        }
    });

    let d = delivered.clone();
    rt.spawn("server", move |env: Env| {
        let ep = env.with(|w, _| {
            let ep = sctp::socket(w, 1, 4000, true);
            sctp::listen(w, ep);
            ep
        });
        for _ in 0..n_msgs {
            let m = recvmsg_blocking(&env, ep);
            let rec = (m.ssn, m.ppid, m.len, digest(&m));
            d.lock().unwrap().entry(m.stream).or_default().push(rec);
        }
    });

    let out = rt.run();
    let map = Arc::try_unwrap(delivered).unwrap().into_inner().unwrap();
    (map, out.events)
}

fn base_cfg() -> SctpCfg {
    SctpCfg { out_streams: 4, ..SctpCfg::default() }
}

/// With interleaving off the engine forces FCFS regardless of the
/// configured scheduler — a non-FIFO scheduler must not change one event of
/// the run (the bit-identity guarantee that keeps pre-8260 experiments
/// reproducible whatever `SCTP_SCHED` is set to).
#[test]
fn interleave_off_ignores_scheduler_bit_identically() {
    let mut runs = Vec::new();
    for sched in [
        SchedKind::Fcfs,
        SchedKind::RoundRobin,
        SchedKind::WeightedFair,
        SchedKind::StrictPriority,
    ] {
        let cfg = SctpCfg { interleave: false, sched, ..base_cfg() };
        runs.push(run_mixed(cfg, 0.01, 7, 64, 4));
    }
    let (ref d0, e0) = runs[0];
    for (d, e) in &runs[1..] {
        assert_eq!(e0, *e, "event counts must be identical with interleaving off");
        assert_eq!(d0, d, "delivered messages must be identical with interleaving off");
    }
}

/// Each scheduler is deterministic: the same seed replays the same run.
#[test]
fn schedulers_are_deterministic() {
    for sched in [
        SchedKind::Fcfs,
        SchedKind::RoundRobin,
        SchedKind::WeightedFair,
        SchedKind::StrictPriority,
    ] {
        let cfg = || SctpCfg { interleave: true, sched, ..base_cfg() };
        let (d1, e1) = run_mixed(cfg(), 0.01, 11, 64, 4);
        let (d2, e2) = run_mixed(cfg(), 0.01, 11, 64, 4);
        assert_eq!(e1, e2, "{sched:?} must replay the same event count");
        assert_eq!(d1, d2, "{sched:?} must replay the same deliveries");
    }
}

/// Per-(stream, MID) reassembly delivers exactly what classic per-stream
/// reassembly delivers: same messages, same payloads, same per-stream
/// order — only cross-stream arrival order may differ.
#[test]
fn reassembly_equivalent_interleave_on_vs_off() {
    for loss in [0.0, 0.02] {
        let (off, _) =
            run_mixed(SctpCfg { interleave: false, ..base_cfg() }, loss, 23, 64, 4);
        let (on, _) = run_mixed(
            SctpCfg { interleave: true, sched: SchedKind::RoundRobin, ..base_cfg() },
            loss,
            23,
            64,
            4,
        );
        assert_eq!(off, on, "per-stream deliveries must match at loss={loss}");
    }
}

mod props {
    use super::*;
    use proptest::prelude::*;

    fn arb_sched() -> impl Strategy<Value = SchedKind> {
        prop_oneof![
            Just(SchedKind::Fcfs),
            Just(SchedKind::RoundRobin),
            Just(SchedKind::WeightedFair),
            Just(SchedKind::StrictPriority),
        ]
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(8))]

        /// Interleave-off bit-identity holds for every scheduler, seed, and
        /// loss rate — not just the hand-picked cases above.
        #[test]
        fn interleave_off_identity_any_seed(
            sched in arb_sched(),
            seed in 0u64..1000,
            lossy in any::<bool>(),
        ) {
            let loss = if lossy { 0.01 } else { 0.0 };
            let fcfs = run_mixed(
                SctpCfg { interleave: false, sched: SchedKind::Fcfs, ..base_cfg() },
                loss, seed, 32, 4,
            );
            let other = run_mixed(
                SctpCfg { interleave: false, sched, ..base_cfg() },
                loss, seed, 32, 4,
            );
            prop_assert_eq!(fcfs.1, other.1, "event count must not depend on sched");
            prop_assert_eq!(fcfs.0, other.0, "deliveries must not depend on sched");
        }

        /// Per-(stream, MID) reassembly equivalence holds for every
        /// scheduler and seed: interleaving may reorder *streams* on the
        /// wire but never what a stream delivers.
        #[test]
        fn reassembly_equivalence_any_sched(
            sched in arb_sched(),
            seed in 0u64..1000,
            streams in 1u16..5,
        ) {
            let cfg = SctpCfg { out_streams: streams, ..SctpCfg::default() };
            let off = run_mixed(
                SctpCfg { interleave: false, ..cfg.clone() }, 0.01, seed, 32, streams,
            );
            let on = run_mixed(
                SctpCfg { interleave: true, sched, ..cfg }, 0.01, seed, 32, streams,
            );
            prop_assert_eq!(off.0, on.0, "per-stream deliveries must match");
        }
    }
}

/// FORWARD-TSN vs SACK accounting: a lossy PR-SCTP run terminates, conserves
/// messages (delivered + abandoned ≥ offered), pairs abandonment with
/// FORWARD-TSN traffic, and the reliable sentinel still arrives last.
#[test]
fn forward_tsn_accounting_invariants() {
    const N: u32 = 200;
    const SENTINEL: u32 = u32::MAX;
    let cfg = SctpCfg {
        pr_sctp: true,
        pr_lifetime: Some(Dur::from_millis(20)),
        ..base_cfg()
    };
    let world = World::new(NetCfg::paper_cluster(0.02), TcpCfg::default(), cfg);
    let mut rt = Runtime::new(world, 31);
    let delivered = Arc::new(Mutex::new(Vec::<u32>::new()));

    rt.spawn("client", move |env: Env| {
        let ep = env.with(|w, _| sctp::socket(w, 0, 4000, true));
        let a = connect_blocking(&env, ep, 1, 4000);
        for i in 0..N {
            // A near-line-rate source: 32 KB every 500 µs ≈ 512 Mb/s offered;
            // loss-recovery stalls back the queue up past the 20 ms lifetime.
            env.sleep(Dur::from_micros(500));
            let me = env.id();
            env.block_on(|w, ctx| {
                match sctp::sendmsg_pr(
                    w,
                    ctx,
                    a,
                    (i % 4) as u16,
                    i,
                    pattern(32 * 1024, i as u8),
                    Some(Dur::from_millis(20)),
                ) {
                    Ok(()) => Some(()),
                    Err(sctp::SendErr::WouldBlock) => {
                        sctp::register_writer(w, ep, me);
                        None
                    }
                    Err(e) => panic!("sendmsg_pr failed: {e:?}"),
                }
            });
        }
        let me = env.id();
        env.block_on(|w, ctx| {
            match sctp::sendmsg_pr(w, ctx, a, 0, SENTINEL, Bytes::from_static(b"eos"), None) {
                Ok(()) => Some(()),
                Err(sctp::SendErr::WouldBlock) => {
                    sctp::register_writer(w, ep, me);
                    None
                }
                Err(e) => panic!("sentinel send failed: {e:?}"),
            }
        });
    });

    let d = delivered.clone();
    rt.spawn("server", move |env: Env| {
        let ep = env.with(|w, _| {
            let ep = sctp::socket(w, 1, 4000, true);
            sctp::listen(w, ep);
            ep
        });
        loop {
            let m = recvmsg_blocking(&env, ep);
            if m.ppid == SENTINEL {
                break;
            }
            d.lock().unwrap().push(m.ppid);
        }
    });

    let out = rt.run();
    let got = delivered.lock().unwrap().clone();
    let stats = out
        .world
        .hosts
        .iter()
        .map(|h| h.sctp.total_stats())
        .fold(sctp::AssocStats::default(), |mut acc, s| {
            acc.msgs_abandoned += s.msgs_abandoned;
            acc.fwd_tsn_out += s.fwd_tsn_out;
            acc.fwd_tsn_in += s.fwd_tsn_in;
            acc
        });

    assert!(stats.msgs_abandoned > 0, "20 ms lifetimes at 2% loss must abandon something");
    assert!(stats.fwd_tsn_out > 0, "abandonment must emit FORWARD-TSN");
    assert!(stats.fwd_tsn_in > 0, "the peer must process FORWARD-TSN");
    assert!(
        got.len() as u64 + stats.msgs_abandoned >= N as u64,
        "every message is delivered or abandoned: {} delivered + {} abandoned < {N}",
        got.len(),
        stats.msgs_abandoned
    );
    // No message is both delivered and abandoned-counted twice: dedup check
    // on the receiver side (ppids are unique by construction).
    let mut sorted = got.clone();
    sorted.sort_unstable();
    sorted.dedup();
    assert_eq!(sorted.len(), got.len(), "no ppid may be delivered twice");
}
