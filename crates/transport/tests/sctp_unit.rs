//! Unit-level SCTP tests: message semantics at the socket API, stream
//! independence, stats plumbing, and edge cases not covered by the big
//! end-to-end suites.

use bytes::Bytes;
use simcore::{Dur, ProcEnv, Runtime};
use transport::sctp::{self, AssocState, SctpCfg};
use transport::tcp::TcpCfg;
use transport::World;

type Env = ProcEnv<World>;

fn world(cfg: SctpCfg) -> World {
    World::new(netsim::NetCfg::paper_cluster(0.0), TcpCfg::default(), cfg)
}

fn pair(
    cfg: SctpCfg,
    seed: u64,
    client: impl FnOnce(Env, sctp::EpId, sctp::AssocId) + Send + 'static,
    server: impl FnOnce(Env, sctp::EpId, sctp::AssocId) + Send + 'static,
) {
    let mut rt = Runtime::new(world(cfg), seed);
    rt.spawn("c", move |env: Env| {
        let ep = env.with(|w, _| sctp::socket(w, 0, 4000, true));
        let a = env.with(|w, ctx| sctp::connect(w, ctx, ep, 1, 4000));
        let me = env.id();
        env.block_on(|w, _| match sctp::assoc_state(w, a) {
            AssocState::Established => Some(()),
            _ => {
                sctp::register_writer(w, ep, me);
                None
            }
        });
        client(env, ep, a);
    });
    rt.spawn("s", move |env: Env| {
        let ep = env.with(|w, _| {
            let ep = sctp::socket(w, 1, 4000, true);
            sctp::listen(w, ep);
            ep
        });
        let me = env.id();
        let a = env.block_on(|w, _| match sctp::lookup_peer(w, ep, 0, 4000) {
            Some(a) if sctp::assoc_state(w, a) == AssocState::Established => Some(a),
            _ => {
                sctp::register_reader(w, ep, me);
                None
            }
        });
        server(env, ep, a);
    });
    rt.run();
}

#[test]
fn zero_length_messages_are_legal_and_framed() {
    pair(
        SctpCfg::default(),
        1,
        |env, _ep, a| {
            let me = env.id();
            for sid in [0u16, 3] {
                env.block_on(|w, ctx| match sctp::sendmsg(w, ctx, a, sid, 77, Bytes::new()) {
                    Ok(()) => Some(()),
                    Err(sctp::SendErr::WouldBlock) => {
                        sctp::register_writer(w, a.endpoint(), me);
                        None
                    }
                    Err(e) => panic!("{e:?}"),
                });
            }
        },
        |env, ep, _a| {
            let me = env.id();
            for _ in 0..2 {
                let m = env.block_on(|w, ctx| match sctp::recvmsg(w, ctx, ep) {
                    Some(m) => Some(m),
                    None => {
                        sctp::register_reader(w, ep, me);
                        None
                    }
                });
                assert_eq!(m.len, 0, "empty message must stay a message");
                assert_eq!(m.ppid, 77, "PPID must ride through");
            }
        },
    );
}

#[test]
fn sendmsg_rejects_oversized_and_bad_stream() {
    pair(
        SctpCfg::default(),
        2,
        |env, _ep, a| {
            env.with(|w, ctx| {
                let too_big = Bytes::from(vec![0u8; 221 * 1024]);
                assert_eq!(
                    sctp::sendmsg(w, ctx, a, 0, 0, too_big),
                    Err(sctp::SendErr::MsgTooBig)
                );
                assert_eq!(
                    sctp::sendmsg(w, ctx, a, 99, 0, Bytes::new()),
                    Err(sctp::SendErr::BadStream)
                );
            });
        },
        |_env, _ep, _a| {},
    );
}

#[test]
fn stats_count_data_and_sacks() {
    pair(
        SctpCfg::default(),
        3,
        |env, _ep, a| {
            let me = env.id();
            env.block_on(|w, ctx| match sctp::sendmsg(w, ctx, a, 0, 0, Bytes::from(vec![1u8; 10_000])) {
                Ok(()) => Some(()),
                _ => {
                    sctp::register_writer(w, a.endpoint(), me);
                    None
                }
            });
            // Wait for everything to be acked (writable space back to full).
            env.block_on(|w, _| {
                if sctp::can_send(w, a, 220 * 1024) {
                    Some(())
                } else {
                    sctp::register_writer(w, a.endpoint(), me);
                    None
                }
            });
            env.with(|w, _| {
                let st = sctp::stats(w, a);
                assert!(st.data_chunks_out >= 7, "10 KB is ≥7 chunks, got {}", st.data_chunks_out);
                assert_eq!(st.bytes_out, 10_000);
                assert!(st.sacks_in >= 1);
                assert_eq!(st.retransmits, 0, "no loss, no retransmits");
            });
        },
        |env, ep, _a| {
            let me = env.id();
            let m = env.block_on(|w, ctx| match sctp::recvmsg(w, ctx, ep) {
                Some(m) => Some(m),
                None => {
                    sctp::register_reader(w, ep, me);
                    None
                }
            });
            assert_eq!(m.len, 10_000);
        },
    );
}

#[test]
fn per_stream_ssns_are_independent() {
    pair(
        SctpCfg::default(),
        4,
        |env, _ep, a| {
            let me = env.id();
            // Interleave two streams; each stream's SSNs must start at 0.
            for i in 0..4u16 {
                let sid = i % 2;
                env.block_on(|w, ctx| {
                    match sctp::sendmsg(w, ctx, a, sid, 0, Bytes::from(vec![i as u8; 100])) {
                        Ok(()) => Some(()),
                        _ => {
                            sctp::register_writer(w, a.endpoint(), me);
                            None
                        }
                    }
                });
            }
        },
        |env, ep, _a| {
            let me = env.id();
            let mut next = [0u32; 2];
            for _ in 0..4 {
                let m = env.block_on(|w, ctx| match sctp::recvmsg(w, ctx, ep) {
                    Some(m) => Some(m),
                    None => {
                        sctp::register_reader(w, ep, me);
                        None
                    }
                });
                assert_eq!(m.ssn, next[m.stream as usize], "per-stream SSN sequence");
                next[m.stream as usize] += 1;
            }
        },
    );
}

#[test]
fn heartbeats_keep_idle_association_alive_and_measured() {
    let cfg = SctpCfg {
        heartbeat_interval: Some(Dur::from_secs(1)),
        ..SctpCfg::default()
    };
    pair(
        cfg,
        5,
        |env, _ep, a| {
            // Idle for several heartbeat intervals.
            env.sleep(Dur::from_secs(5));
            env.with(|w, _| {
                assert_eq!(sctp::assoc_state(w, a), AssocState::Established);
                let st = sctp::stats(w, a);
                assert!(st.packets_out >= 4, "heartbeats should have flowed: {st:?}");
            });
        },
        |env, _ep, a| {
            env.sleep(Dur::from_secs(5));
            env.with(|w, _| assert_eq!(sctp::assoc_state(w, a), AssocState::Established));
        },
    );
}

#[test]
fn security_drop_counters_are_exposed() {
    pair(
        SctpCfg::default(),
        6,
        |env, _ep, _a| {
            // Inject garbage with a bad vtag at the server.
            env.with(|w, ctx| {
                let pkt = sctp::SctpPacket {
                    src_port: 4000,
                    dst_port: 4000,
                    vtag: 0xBAD,
                    chunks: vec![sctp::Chunk::CookieAck],
                };
                sctp::input(w, ctx, netsim::IfAddr::new(0, 0), netsim::IfAddr::new(1, 0), pkt);
                let (vtag_drops, mac_drops, stale) = w.hosts[1].sctp.security_drops();
                assert_eq!(vtag_drops, 1);
                assert_eq!(mac_drops, 0);
                assert_eq!(stale, 0);
            });
        },
        |_env, _ep, _a| {},
    );
}
