//! Unit-level TCP tests: wire formats, state queries, and config knobs
//! exercised through small simulations.

use bytes::Bytes;
use simcore::{Dur, ProcEnv, Runtime};
use transport::tcp::{self, Flags, TcpCfg, TcpSegment, TcpState};
use transport::World;

type Env = ProcEnv<World>;

#[test]
fn segment_wire_len_accounts_options() {
    let base = TcpSegment {
        src_port: 1,
        dst_port: 2,
        flags: Flags::ACK,
        seq: 0,
        ack: 0,
        wnd: 1000,
        sack: vec![],
        probe: false,
        payload: vec![],
        payload_len: 0,
    };
    assert_eq!(base.wire_len(), 32, "20 header + 12 timestamp option");
    let syn = TcpSegment { flags: Flags::SYN, ..base };
    assert_eq!(syn.wire_len(), 36, "+4 MSS option");
    let sacky = TcpSegment {
        flags: Flags::ACK,
        sack: vec![(1, 2), (3, 4)],
        payload_len: 100,
        ..TcpSegment {
            src_port: 1,
            dst_port: 2,
            flags: Flags::ACK,
            seq: 0,
            ack: 0,
            wnd: 0,
            sack: vec![],
            probe: false,
            payload: vec![],
            payload_len: 0,
        }
    };
    assert_eq!(sacky.wire_len(), 32 + 2 + 16 + 100);
}

#[test]
fn segment_seq_len_counts_flags() {
    let mk = |flags, payload_len| TcpSegment {
        src_port: 0,
        dst_port: 0,
        flags,
        seq: 0,
        ack: 0,
        wnd: 0,
        sack: vec![],
        probe: false,
        payload: vec![],
        payload_len,
    };
    assert_eq!(mk(Flags::ACK, 10).seq_len(), 10);
    assert_eq!(mk(Flags::SYN, 0).seq_len(), 1);
    assert_eq!(mk(Flags::FIN | Flags::ACK, 5).seq_len(), 6);
    assert_eq!(mk(Flags::SYN | Flags::FIN, 0).seq_len(), 2);
}

#[test]
fn flags_algebra() {
    let f = Flags::SYN | Flags::ACK;
    assert!(f.contains(Flags::SYN));
    assert!(f.contains(Flags::ACK));
    assert!(!f.contains(Flags::FIN));
    assert!(f.intersects(Flags::SYN | Flags::FIN));
    assert!(!f.intersects(Flags::FIN | Flags::RST));
    assert!(Flags::EMPTY == Flags::default());
}

#[test]
fn state_transitions_through_a_whole_connection() {
    let mut rt = Runtime::new(World::paper_cluster(0.0), 1);
    rt.spawn("client", |env: Env| {
        let s = env.with(|w, ctx| tcp::connect(w, ctx, 0, 1, 9000));
        assert_eq!(env.with(|w, _| tcp::state(w, s)), TcpState::SynSent);
        let me = env.id();
        env.block_on(|w, _| {
            if tcp::is_established(w, s) {
                Some(())
            } else {
                tcp::register_writer(w, s, me);
                None
            }
        });
        assert_eq!(env.with(|w, _| tcp::state(w, s)), TcpState::Established);
        assert_eq!(env.with(|w, _| tcp::peer_of(w, s)), (1, 9000));
        env.with(|w, ctx| {
            let n = tcp::send(w, ctx, s, &[Bytes::from_static(b"bye")]);
            assert_eq!(n, 3);
            tcp::close(w, ctx, s);
        });
        // After our FIN is acked and the peer closes, we pass through
        // FinWait and land in TimeWait.
        env.block_on(|w, _| {
            let st = tcp::state(w, s);
            if st == TcpState::TimeWait {
                Some(())
            } else {
                tcp::register_reader(w, s, me);
                None
            }
        });
    });
    rt.spawn("server", |env: Env| {
        env.with(|w, _| tcp::listen(w, 1, 9000));
        let me = env.id();
        let s = env.block_on(|w, _| match tcp::accept(w, 1, 9000) {
            Some(s) => Some(s),
            None => {
                tcp::register_acceptor(w, 1, 9000, me);
                None
            }
        });
        // Read the 3 bytes + observe EOF.
        env.block_on(|w, ctx| {
            let got = tcp::recv(w, ctx, s, 10);
            if got.is_empty() {
                tcp::register_reader(w, s, me);
                None
            } else {
                Some(())
            }
        });
        env.block_on(|w, _| {
            if tcp::at_eof(w, s) {
                Some(())
            } else {
                tcp::register_reader(w, s, me);
                None
            }
        });
        assert_eq!(env.with(|w, _| tcp::state(w, s)), TcpState::CloseWait);
        env.with(|w, ctx| tcp::close(w, ctx, s));
        env.block_on(|w, _| {
            if tcp::state(w, s) == TcpState::Closed {
                Some(())
            } else {
                tcp::register_writer(w, s, me);
                None
            }
        });
    });
    rt.run();
}

#[test]
fn nagle_coalesces_small_writes() {
    // With Nagle on, many 10-byte writes produce far fewer segments than
    // with Nagle off.
    fn segs(nagle: bool) -> u64 {
        let cfg = TcpCfg { nagle, ..TcpCfg::default() };
        let world = World::new(netsim::NetCfg::paper_cluster(0.0), cfg, Default::default());
        let mut rt = Runtime::new(world, 4);
        rt.spawn("tx", |env: Env| {
            let s = env.with(|w, ctx| tcp::connect(w, ctx, 0, 1, 9100));
            let me = env.id();
            env.block_on(|w, _| {
                if tcp::is_established(w, s) {
                    Some(())
                } else {
                    tcp::register_writer(w, s, me);
                    None
                }
            });
            for _ in 0..50 {
                env.with(|w, ctx| {
                    tcp::send(w, ctx, s, &[Bytes::from_static(b"0123456789")]);
                });
                // A little pacing so un-Nagled writes become segments.
                env.sleep(Dur::from_micros(30));
            }
        });
        rt.spawn("rx", |env: Env| {
            env.with(|w, _| tcp::listen(w, 1, 9100));
            let me = env.id();
            let s = env.block_on(|w, _| match tcp::accept(w, 1, 9100) {
                Some(s) => Some(s),
                None => {
                    tcp::register_acceptor(w, 1, 9100, me);
                    None
                }
            });
            let mut got = 0usize;
            while got < 500 {
                let chunks = env.with(|w, ctx| tcp::recv(w, ctx, s, 500));
                if chunks.is_empty() {
                    env.with(|w, _| tcp::register_reader(w, s, me));
                    env.park();
                } else {
                    got += chunks.iter().map(|c| c.len()).sum::<usize>();
                }
            }
        });
        let out = rt.run();
        out.world.hosts[0].tcp.total_stats().segs_out
    }
    let with_nagle = segs(true);
    let without = segs(false);
    assert!(
        with_nagle < without / 2,
        "Nagle on: {with_nagle} segs, off: {without} segs — expected strong coalescing"
    );
}

#[test]
fn send_respects_buffer_and_reports_partial_accept() {
    let mut rt = Runtime::new(World::paper_cluster(0.0), 5);
    rt.spawn("tx", |env: Env| {
        let s = env.with(|w, ctx| tcp::connect(w, ctx, 0, 1, 9200));
        let me = env.id();
        env.block_on(|w, _| {
            if tcp::is_established(w, s) {
                Some(())
            } else {
                tcp::register_writer(w, s, me);
                None
            }
        });
        // Try to push 1 MB at once: only ~sndbuf is accepted.
        let big = Bytes::from(vec![7u8; 1 << 20]);
        let n = env.with(|w, ctx| tcp::send(w, ctx, s, &[big]));
        assert!(n > 0 && n <= 220 * 1024, "accepted {n}");
        assert!(env.with(|w, _| tcp::send_space(w, s)) < 220 * 1024);
    });
    rt.spawn("rx", |env: Env| {
        env.with(|w, _| tcp::listen(w, 1, 9200));
        let me = env.id();
        let _s = env.block_on(|w, _| match tcp::accept(w, 1, 9200) {
            Some(s) => Some(s),
            None => {
                tcp::register_acceptor(w, 1, 9200, me);
                None
            }
        });
        // Let the sender's buffered data drain into our rcvbuf.
        env.sleep(Dur::from_millis(50));
    });
    rt.run();
}
