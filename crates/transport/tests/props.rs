//! Property-based tests for the transport crate's core data structures.

use bytes::Bytes;
use proptest::prelude::*;
use transport::buf::{concat, ByteQueue};
use transport::crc32c::crc32c;
use transport::ranges::RangeSet;

// ---------------------------------------------------------------------------
// RangeSet vs a naive point-set model
// ---------------------------------------------------------------------------

#[derive(Debug, Clone)]
enum RangeOp {
    Insert(u64, u64),
    RemoveBelow(u64),
}

fn range_ops() -> impl Strategy<Value = Vec<RangeOp>> {
    prop::collection::vec(
        prop_oneof![
            (0u64..200, 0u64..40).prop_map(|(s, l)| RangeOp::Insert(s, s + l)),
            (0u64..220).prop_map(RangeOp::RemoveBelow),
        ],
        0..40,
    )
}

proptest! {
    #[test]
    fn rangeset_matches_naive_model(ops in range_ops()) {
        let mut rs = RangeSet::new();
        let mut model = std::collections::BTreeSet::new();
        for op in ops {
            match op {
                RangeOp::Insert(s, e) => {
                    rs.insert(s, e);
                    for v in s..e {
                        model.insert(v);
                    }
                }
                RangeOp::RemoveBelow(cut) => {
                    rs.remove_below(cut);
                    model.retain(|&v| v >= cut);
                }
            }
        }
        // Covered count agrees.
        prop_assert_eq!(rs.covered(), model.len() as u64);
        // Point membership agrees.
        for v in 0..250u64 {
            prop_assert_eq!(rs.contains(v), model.contains(&v), "point {}", v);
        }
        // Ranges are sorted, non-overlapping, non-adjacent.
        let ranges: Vec<_> = rs.iter().collect();
        for w in ranges.windows(2) {
            prop_assert!(w[0].1 < w[1].0, "ranges must not touch: {:?}", ranges);
        }
        for (s, e) in ranges {
            prop_assert!(s < e);
        }
    }

    #[test]
    fn rangeset_holes_partition_span(ops in range_ops(), lo in 0u64..200, len in 0u64..60) {
        let mut rs = RangeSet::new();
        for op in ops {
            if let RangeOp::Insert(s, e) = op {
                rs.insert(s, e);
            }
        }
        let hi = lo + len;
        let holes = rs.holes_within(lo, hi);
        // Every hole point is absent; every non-hole point in span is present.
        let mut hole_points = std::collections::BTreeSet::new();
        for (s, e) in &holes {
            prop_assert!(*s < *e);
            for v in *s..*e {
                prop_assert!(!rs.contains(v), "hole point {} claimed present", v);
                hole_points.insert(v);
            }
        }
        for v in lo..hi {
            if !hole_points.contains(&v) {
                prop_assert!(rs.contains(v), "non-hole point {} missing", v);
            }
        }
    }

    #[test]
    fn first_missing_is_correct(ops in range_ops(), from in 0u64..250) {
        let mut rs = RangeSet::new();
        for op in ops {
            if let RangeOp::Insert(s, e) = op {
                rs.insert(s, e);
            }
        }
        let m = rs.first_missing_from(from);
        prop_assert!(m >= from);
        prop_assert!(!rs.contains(m));
        for v in from..m {
            prop_assert!(rs.contains(v));
        }
    }
}

// ---------------------------------------------------------------------------
// ByteQueue vs a Vec<u8> model
// ---------------------------------------------------------------------------

proptest! {
    #[test]
    fn bytequeue_slices_match_model(
        chunks in prop::collection::vec(prop::collection::vec(any::<u8>(), 0..50), 0..10),
        advances in prop::collection::vec(0u64..30, 0..5),
        reads in prop::collection::vec((0u64..300, 0usize..100), 0..10),
    ) {
        let mut q = ByteQueue::new(1000);
        let mut model: Vec<u8> = Vec::new();
        for c in &chunks {
            q.push(Bytes::from(c.clone()));
            model.extend_from_slice(c);
        }
        let mut head = 1000u64;
        for adv in advances {
            let target = (head + adv).min(q.end_seq());
            q.advance_to(target);
            let drop = (target - head) as usize;
            model.drain(..drop.min(model.len()));
            head = target;
        }
        prop_assert_eq!(q.head_seq(), head);
        prop_assert_eq!(q.len() as usize, model.len());
        for (off, want) in reads {
            let seq = head + (off % (model.len() as u64 + 1));
            let got = concat(&q.slice(seq, want));
            let m_off = (seq - head) as usize;
            let m_end = (m_off + want).min(model.len());
            prop_assert_eq!(&got[..], &model[m_off..m_end]);
        }
    }
}

// ---------------------------------------------------------------------------
// CRC32c sanity
// ---------------------------------------------------------------------------

proptest! {
    #[test]
    fn crc_split_invariance(data in prop::collection::vec(any::<u8>(), 0..200), split in 0usize..200) {
        let split = split.min(data.len());
        let mut c = transport::crc32c::Crc32c::new();
        c.update(&data[..split]);
        c.update(&data[split..]);
        prop_assert_eq!(c.finalize(), crc32c(&data));
    }
}

// ---------------------------------------------------------------------------
// Cookie MAC: forgery resistance over random field tweaks
// ---------------------------------------------------------------------------

proptest! {
    #[test]
    fn cookie_mac_detects_any_field_tweak(
        secret in any::<u64>(),
        tag in any::<u64>(),
        field in 0usize..5,
        delta in 1u64..1000,
    ) {
        use transport::sctp::Cookie;
        use simcore::SimTime;
        let c = Cookie {
            peer_host: 1,
            peer_port: 2,
            local_port: 3,
            peer_tag: tag,
            local_tag: tag ^ 0xF0F0,
            peer_rwnd: 1000,
            peer_init_tsn: 1,
            my_init_tsn: 1,
            out_streams: 10,
            in_streams: 10,
            created_at: SimTime::from_nanos(77),
            ext_flags: 0,
            mac: 0,
        }
        .sign(secret);
        prop_assert!(c.verify(secret));
        let mut forged = c;
        match field {
            0 => forged.peer_tag = forged.peer_tag.wrapping_add(delta),
            1 => forged.local_tag = forged.local_tag.wrapping_add(delta),
            2 => forged.peer_rwnd = forged.peer_rwnd.wrapping_add(delta),
            3 => forged.peer_host = forged.peer_host.wrapping_add(delta as u16),
            _ => forged.created_at = SimTime::from_nanos(77 + delta),
        }
        prop_assert!(!forged.verify(secret), "tweak of field {} undetected", field);
    }
}

// ---------------------------------------------------------------------------
// Slab pools: recycling never leaks one use's contents into the next
// ---------------------------------------------------------------------------

#[derive(Debug, Clone)]
enum PoolOp {
    /// Take a payload list and hold it.
    Take,
    /// Fill held buffer `i` with `n` marker chunks and retire it.
    Put { i: usize, n: usize },
}

fn pool_ops() -> impl Strategy<Value = Vec<PoolOp>> {
    prop::collection::vec(
        prop_oneof![
            Just(PoolOp::Take),
            (0usize..8, 0usize..16).prop_map(|(i, n)| PoolOp::Put { i, n }),
        ],
        1..64,
    )
}

proptest! {
    /// Every `take_*` observes an empty buffer no matter what the previous
    /// holder wrote into it — recycling reuses capacity, never contents —
    /// and the reuse/fresh counters account for every take.
    #[test]
    fn pool_recycling_never_exposes_stale_contents(ops in pool_ops()) {
        let mut pool = transport::pool::Pools::default();
        let mut held: Vec<Vec<Bytes>> = Vec::new();
        let mut takes = 0u64;
        for op in ops {
            match op {
                PoolOp::Take => {
                    let v = pool.take_bytes_vec();
                    prop_assert!(v.is_empty(), "pooled buffer arrived non-empty");
                    takes += 1;
                    held.push(v);
                }
                PoolOp::Put { i, n } => {
                    if held.is_empty() {
                        continue;
                    }
                    let mut v = held.swap_remove(i % held.len());
                    for k in 0..n {
                        v.push(Bytes::from(vec![k as u8; 3]));
                    }
                    pool.put_bytes_vec(v);
                }
            }
        }
        prop_assert_eq!(pool.stats.reused + pool.stats.fresh, takes);
        // Drain whatever the freelist holds: all empty, and a buffer taken
        // right after a dirty put must not show the marker chunks.
        for _ in 0..takes {
            prop_assert!(pool.take_bytes_vec().is_empty());
        }
    }

    /// Byte scratch round-trips empty as well; in debug builds the pool
    /// additionally poisons retired scratch (covered by the crate's unit
    /// tests, which can see the freelist).
    #[test]
    fn byte_scratch_round_trips_empty(fill in prop::collection::vec(any::<u8>(), 0..64)) {
        let mut pool = transport::pool::Pools::default();
        let mut b = pool.take_byte_scratch();
        b.extend_from_slice(&fill);
        pool.put_byte_scratch(b);
        let again = pool.take_byte_scratch();
        prop_assert!(again.is_empty(), "scratch arrived non-empty after dirty put");
    }
}
