//! End-to-end SCTP tests: associations driven by virtual processes over the
//! simulated cluster — handshake, multistreaming, fragmentation, loss
//! recovery, security features, multihoming failover.

use bytes::Bytes;
use netsim::{IfAddr, NetCfg};
use simcore::{Dur, ProcEnv, Runtime, SimTime};
use transport::sctp::{self, AssocId, AssocState, EpId, RecvMsg, SctpCfg};
use transport::tcp::TcpCfg;
use transport::World;

type Env = ProcEnv<World>;

fn world(loss: f64, sctp_cfg: SctpCfg) -> World {
    World::new(NetCfg::paper_cluster(loss), TcpCfg::default(), sctp_cfg)
}

fn connect_blocking(env: &Env, ep: EpId, dst_host: u16, dst_port: u16) -> AssocId {
    let a = env.with(|w, ctx| sctp::connect(w, ctx, ep, dst_host, dst_port));
    let me = env.id();
    env.block_on(|w, _| match sctp::assoc_state(w, a) {
        AssocState::Established => Some(()),
        AssocState::Aborted => panic!("association failed during setup"),
        _ => {
            sctp::register_writer(w, ep, me);
            None
        }
    });
    a
}

/// Wait until the peer's inbound association appears and is established.
fn await_assoc(env: &Env, ep: EpId, peer_host: u16, peer_port: u16) -> AssocId {
    let me = env.id();
    env.block_on(|w, _| match sctp::lookup_peer(w, ep, peer_host, peer_port) {
        Some(a) if sctp::assoc_state(w, a) == AssocState::Established => Some(a),
        _ => {
            sctp::register_reader(w, ep, me);
            None
        }
    })
}

fn sendmsg_blocking(env: &Env, a: AssocId, stream: u16, data: Bytes) {
    let me = env.id();
    let ep = a.endpoint();
    env.block_on(|w, ctx| match sctp::sendmsg(w, ctx, a, stream, 0, data.clone()) {
        Ok(()) => Some(()),
        Err(sctp::SendErr::WouldBlock) => {
            sctp::register_writer(w, ep, me);
            None
        }
        Err(e) => panic!("sendmsg failed: {e:?}"),
    });
}

fn recvmsg_blocking(env: &Env, ep: EpId) -> RecvMsg {
    let me = env.id();
    env.block_on(|w, ctx| match sctp::recvmsg(w, ctx, ep) {
        Some(m) => Some(m),
        None => {
            sctp::register_reader(w, ep, me);
            None
        }
    })
}

fn pattern(len: usize, tag: u8) -> Bytes {
    Bytes::from((0..len).map(|i| (i as u8).wrapping_mul(13).wrapping_add(tag)).collect::<Vec<u8>>())
}

fn flatten(m: &RecvMsg) -> Vec<u8> {
    let mut v = Vec::with_capacity(m.len as usize);
    for c in &m.data {
        v.extend_from_slice(c);
    }
    v
}

fn run_pair(
    loss: f64,
    seed: u64,
    cfg: SctpCfg,
    client: impl FnOnce(Env, EpId, AssocId) + Send + 'static,
    server: impl FnOnce(Env, EpId, AssocId) + Send + 'static,
) -> simcore::RunOutcome<World> {
    let mut rt = Runtime::new(world(loss, cfg), seed);
    rt.spawn("client", move |env: Env| {
        let ep = env.with(|w, _| sctp::socket(w, 0, 4000, true));
        let a = connect_blocking(&env, ep, 1, 4000);
        client(env, ep, a);
    });
    rt.spawn("server", move |env: Env| {
        let ep = env.with(|w, _| {
            let ep = sctp::socket(w, 1, 4000, true);
            sctp::listen(w, ep);
            ep
        });
        let a = await_assoc(&env, ep, 0, 4000);
        server(env, ep, a);
    });
    rt.run()
}

#[test]
fn four_way_handshake_establishes_both_ends() {
    run_pair(
        0.0,
        1,
        SctpCfg::default(),
        |env, _ep, a| {
            env.with(|w, _| assert_eq!(sctp::assoc_state(w, a), AssocState::Established));
        },
        |env, _ep, a| {
            env.with(|w, _| assert_eq!(sctp::assoc_state(w, a), AssocState::Established));
        },
    );
}

#[test]
fn message_boundaries_are_preserved() {
    // Three differently-sized messages arrive as three messages, not a
    // byte soup — the framing property LAM-TCP has to rebuild by hand.
    let sizes = [100usize, 999, 40];
    run_pair(
        0.0,
        2,
        SctpCfg::default(),
        move |env, _ep, a| {
            for (i, &n) in sizes.iter().enumerate() {
                sendmsg_blocking(&env, a, 0, pattern(n, i as u8));
            }
        },
        move |env, ep, _a| {
            for (i, &n) in sizes.iter().enumerate() {
                let m = recvmsg_blocking(&env, ep);
                assert_eq!(m.len as usize, n, "message {i} boundary");
                assert_eq!(flatten(&m), &pattern(n, i as u8)[..]);
                assert_eq!(m.stream, 0);
                assert_eq!(m.ssn, i as u32);
            }
        },
    );
}

#[test]
fn large_message_fragments_and_reassembles() {
    let n = 100_000;
    let data = pattern(n, 9);
    let expect = data.clone();
    run_pair(
        0.0,
        3,
        SctpCfg::default(),
        move |env, _ep, a| sendmsg_blocking(&env, a, 3, data),
        move |env, ep, _a| {
            let m = recvmsg_blocking(&env, ep);
            assert_eq!(m.len as usize, n);
            assert_eq!(m.stream, 3);
            assert_eq!(flatten(&m), &expect[..]);
        },
    );
}

#[test]
fn per_stream_ordering_holds_across_streams() {
    // 10 streams x 20 messages; each stream's messages must arrive in SSN
    // order, and every message must arrive exactly once.
    let n_streams = 10u16;
    let per = 20u32;
    run_pair(
        0.0,
        4,
        SctpCfg::default(),
        move |env, _ep, a| {
            for i in 0..per {
                for sid in 0..n_streams {
                    sendmsg_blocking(&env, a, sid, pattern(200 + sid as usize, i as u8));
                }
            }
        },
        move |env, ep, _a| {
            let mut next = vec![0u32; n_streams as usize];
            for _ in 0..(per * n_streams as u32) {
                let m = recvmsg_blocking(&env, ep);
                assert_eq!(m.ssn, next[m.stream as usize], "SSN order on stream {}", m.stream);
                next[m.stream as usize] += 1;
            }
            assert!(next.iter().all(|&c| c == per));
        },
    );
}

#[test]
fn bulk_transfer_no_loss_is_wire_speed() {
    let n = 100;
    let size = 10_000;
    let out = run_pair(
        0.0,
        5,
        SctpCfg::default(),
        move |env, _ep, a| {
            for i in 0..n {
                sendmsg_blocking(&env, a, (i % 10) as u16, pattern(size, i as u8));
            }
        },
        move |env, ep, _a| {
            let mut total = 0u64;
            while total < (n * size) as u64 {
                total += recvmsg_blocking(&env, ep).len as u64;
            }
        },
    );
    let secs = out.sim_time.as_secs_f64();
    // 1 MB at 1 Gb/s ≈ 8 ms wire time.
    assert!(secs < 0.1, "SCTP bulk too slow without loss: {secs}");
}

#[test]
fn loss_recovery_preserves_content_and_order() {
    let n_msgs = 60;
    let size = 5_000;
    let out = run_pair(
        0.02,
        6,
        SctpCfg::default(),
        move |env, _ep, a| {
            for i in 0..n_msgs {
                sendmsg_blocking(&env, a, (i % 4) as u16, pattern(size, i as u8));
            }
        },
        move |env, ep, _a| {
            let mut next = [0u32; 4];
            let mut seen = 0;
            while seen < n_msgs {
                let m = recvmsg_blocking(&env, ep);
                assert_eq!(m.ssn, next[m.stream as usize]);
                next[m.stream as usize] += 1;
                // Verify content integrity under retransmission.
                let body = flatten(&m);
                assert_eq!(body.len(), size);
                seen += 1;
            }
        },
    );
    assert!(out.world.net.stats.drops_loss > 0, "no loss actually injected");
}

#[test]
fn head_of_line_blocking_is_per_stream_only() {
    // Targeted check of the paper's Figure 4 scenario: two messages on
    // different streams; the first is lost (we force loss on, then off);
    // the second must be deliverable before the first's retransmission.
    //
    // We approximate targeted loss with a brief 100% loss window around the
    // first message's flight.
    let mut rt = Runtime::new(world(0.0, SctpCfg::default()), 7);
    rt.spawn("sender", move |env: Env| {
        let ep = env.with(|w, _| sctp::socket(w, 0, 4000, true));
        let a = connect_blocking(&env, ep, 1, 4000);
        // Turn on total loss, send Msg-A on stream 0 (it will be dropped).
        env.with(|w, ctx| {
            w.net.set_loss(1.0);
            sctp::sendmsg(w, ctx, a, 0, 0, pattern(1000, 1)).unwrap();
        });
        // Let the doomed transmission happen, then restore the network and
        // send Msg-B on stream 1.
        env.sleep(Dur::from_millis(10));
        env.with(|w, ctx| {
            w.net.set_loss(0.0);
            sctp::sendmsg(w, ctx, a, 1, 0, pattern(1000, 2)).unwrap();
        });
    });
    let order = std::sync::Arc::new(std::sync::Mutex::new(Vec::new()));
    let order2 = order.clone();
    rt.spawn("receiver", move |env: Env| {
        let ep = env.with(|w, _| {
            let ep = sctp::socket(w, 1, 4000, true);
            sctp::listen(w, ep);
            ep
        });
        for _ in 0..2 {
            let m = recvmsg_blocking(&env, ep);
            order2.lock().unwrap().push((m.stream, env.now()));
        }
    });
    rt.run();
    let order = order.lock().unwrap();
    assert_eq!(order[0].0, 1, "stream-1 message must NOT wait for lost stream-0 message");
    assert_eq!(order[1].0, 0);
    assert!(
        order[1].1.since(order[0].1) >= Dur::from_millis(500),
        "lost message needed a retransmission to arrive"
    );
}

#[test]
fn one_to_many_socket_demuxes_many_peers() {
    // One server socket; 7 clients connect and send — the §3.1 model.
    let mut rt = Runtime::new(world(0.0, SctpCfg::default()), 8);
    for h in 1..8u16 {
        rt.spawn(format!("client{h}"), move |env: Env| {
            let ep = env.with(|w, _| sctp::socket(w, h, 4000, true));
            let a = connect_blocking(&env, ep, 0, 4000);
            sendmsg_blocking(&env, a, h % 10, pattern(500, h as u8));
            let m = recvmsg_blocking(&env, ep);
            assert_eq!(flatten(&m)[0], h as u8 ^ 0xFF);
        });
    }
    rt.spawn("server", move |env: Env| {
        let ep = env.with(|w, _| {
            let ep = sctp::socket(w, 0, 4000, true);
            sctp::listen(w, ep);
            ep
        });
        let mut seen = std::collections::HashSet::new();
        for _ in 0..7 {
            let m = recvmsg_blocking(&env, ep);
            let from = m.assoc;
            assert!(seen.insert(from.idx), "two messages from one peer?");
            // Reply on the same association.
            let tag = flatten(&m)[0] ^ 0xFF;
            sendmsg_blocking(&env, from, 0, Bytes::from(vec![tag; 10]));
        }
    });
    rt.run();
}

#[test]
fn forged_verification_tag_is_dropped() {
    run_pair(
        0.0,
        9,
        SctpCfg::default(),
        |env, _ep, a| {
            // Inject a forged DATA packet at the server with a bogus vtag.
            env.with(|w, ctx| {
                let forged = sctp::SctpPacket {
                    src_port: 4000,
                    dst_port: 4000,
                    vtag: 0xDEAD_BEEF,
                    chunks: vec![sctp::Chunk::Data(sctp::DataChunk {
                        tsn: 1,
                        stream: 0,
                        ssn: 0,
                        begin: true,
                        end: true,
                        unordered: false,
                        ppid: 0,
                        data: Bytes::from_static(b"evil"),
                    })],
                };
                sctp::input(w, ctx, IfAddr::new(0, 0), IfAddr::new(1, 0), forged);
            });
            // Legit message afterwards.
            sendmsg_blocking(&env, a, 0, Bytes::from_static(b"good"));
        },
        |env, ep, _a| {
            let m = recvmsg_blocking(&env, ep);
            assert_eq!(&flatten(&m)[..], b"good", "forged packet must not be delivered");
        },
    );
}

#[test]
fn stale_and_forged_cookies_are_rejected() {
    let mut rt = Runtime::new(world(0.0, SctpCfg::default()), 10);
    rt.spawn("attacker", |env: Env| {
        // A COOKIE-ECHO with a fabricated cookie (bad MAC) must not create
        // an association.
        env.with(|w, ctx| {
            let _server_ep = sctp::socket(w, 1, 4001, true);
            sctp::listen(w, _server_ep);
            let cookie = sctp::Cookie {
                peer_host: 0,
                peer_port: 9999,
                local_port: 4001,
                peer_tag: 42,
                local_tag: 43,
                peer_rwnd: 1000,
                peer_init_tsn: 1,
                my_init_tsn: 1,
                out_streams: 10,
                in_streams: 10,
                created_at: SimTime::ZERO,
                ext_flags: 0,
                mac: 0x1234_5678, // forged
            };
            let pkt = sctp::SctpPacket {
                src_port: 9999,
                dst_port: 4001,
                vtag: 43,
                chunks: vec![sctp::Chunk::CookieEcho { cookie }],
            };
            sctp::input(w, ctx, IfAddr::new(0, 0), IfAddr::new(1, 0), pkt);
            assert!(
                sctp::lookup_peer(w, _server_ep, 0, 9999).is_none(),
                "forged cookie must not allocate an association"
            );
        });
    });
    rt.run();
}

#[test]
fn autoclose_shuts_idle_association() {
    let cfg = SctpCfg { autoclose: Some(Dur::from_secs(5)), ..SctpCfg::default() };
    let out = run_pair(
        0.0,
        11,
        cfg,
        |env, ep, a| {
            sendmsg_blocking(&env, a, 0, Bytes::from_static(b"hello"));
            // Then go idle; autoclose should shut the association down.
            let me = env.id();
            env.block_on(|w, _| match sctp::assoc_state(w, a) {
                AssocState::Closed => Some(()),
                _ => {
                    sctp::register_writer(w, ep, me);
                    sctp::register_reader(w, ep, me);
                    None
                }
            });
        },
        |env, ep, a| {
            let _ = recvmsg_blocking(&env, ep);
            let me = env.id();
            env.block_on(|w, _| match sctp::assoc_state(w, a) {
                AssocState::Closed => Some(()),
                _ => {
                    sctp::register_reader(w, ep, me);
                    sctp::register_writer(w, ep, me);
                    None
                }
            });
        },
    );
    assert!(out.sim_time >= SimTime::ZERO + Dur::from_secs(5));
    assert!(out.sim_time < SimTime::ZERO + Dur::from_secs(60));
}

#[test]
fn graceful_shutdown_completes_both_sides() {
    run_pair(
        0.0,
        12,
        SctpCfg::default(),
        |env, ep, a| {
            sendmsg_blocking(&env, a, 0, pattern(5000, 1));
            env.with(|w, ctx| sctp::shutdown(w, ctx, a));
            let me = env.id();
            env.block_on(|w, _| match sctp::assoc_state(w, a) {
                AssocState::Closed => Some(()),
                _ => {
                    sctp::register_writer(w, ep, me);
                    sctp::register_reader(w, ep, me);
                    None
                }
            });
        },
        |env, ep, a| {
            let _ = recvmsg_blocking(&env, ep);
            let me = env.id();
            env.block_on(|w, _| match sctp::assoc_state(w, a) {
                AssocState::Closed | AssocState::ShutdownAckSent => Some(()),
                _ => {
                    sctp::register_reader(w, ep, me);
                    sctp::register_writer(w, ep, me);
                    None
                }
            });
        },
    );
}

#[test]
fn multihoming_failover_keeps_transfer_alive() {
    // Three paths; kill network 0 (the primary) mid-transfer. The sender
    // must fail over and complete on an alternate path.
    let cfg = SctpCfg {
        num_paths: 3,
        heartbeat_interval: Some(Dur::from_secs(2)),
        ..SctpCfg::default()
    };
    let n_msgs = 40;
    let size = 20_000;
    let mut rt = Runtime::new(world(0.0, cfg), 13);
    rt.spawn("sender", move |env: Env| {
        let ep = env.with(|w, _| sctp::socket(w, 0, 4000, true));
        let a = connect_blocking(&env, ep, 1, 4000);
        for i in 0..n_msgs {
            if i == 5 {
                // Primary network dies.
                env.with(|w, _| w.net.set_network_up(0, false));
            }
            sendmsg_blocking(&env, a, 0, pattern(size, i as u8));
        }
        // Confirm failover happened.
        env.with(|w, _| {
            assert_ne!(sctp::primary_path(w, a), 0, "primary should have moved off path 0");
            assert!(sctp::stats(w, a).failovers >= 1);
        });
    });
    rt.spawn("receiver", move |env: Env| {
        let ep = env.with(|w, _| {
            let ep = sctp::socket(w, 1, 4000, true);
            sctp::listen(w, ep);
            ep
        });
        for i in 0..n_msgs {
            let m = recvmsg_blocking(&env, ep);
            assert_eq!(m.ssn, i as u32, "ordered delivery across failover");
            assert_eq!(m.len as usize, size);
        }
    });
    let out = rt.run();
    assert!(out.sim_time > SimTime::ZERO + Dur::from_secs(1), "failover involves timeouts");
}

#[test]
fn sender_blocks_on_receiver_flow_control_then_resumes() {
    // Receiver sleeps; sender pushes 2 MB through a 220 KB window pair.
    let n_msgs = 20;
    let size = 100_000;
    let done_at = std::sync::Arc::new(std::sync::Mutex::new(SimTime::ZERO));
    let done2 = done_at.clone();
    run_pair(
        0.0,
        14,
        SctpCfg::default(),
        move |env, _ep, a| {
            for i in 0..n_msgs {
                sendmsg_blocking(&env, a, 0, pattern(size, i as u8));
            }
            *done2.lock().unwrap() = env.now();
        },
        move |env, ep, _a| {
            env.sleep(Dur::from_secs(3));
            for _ in 0..n_msgs {
                let m = recvmsg_blocking(&env, ep);
                assert_eq!(m.len as usize, size);
            }
        },
    );
    assert!(
        *done_at.lock().unwrap() > SimTime::ZERO + Dur::from_secs(3),
        "a_rwnd flow control failed to block the sender"
    );
}

#[test]
fn deterministic_under_loss() {
    fn run_once(seed: u64) -> (u64, u64, u64) {
        let n_msgs = 30;
        let size = 8_000;
        let out = run_pair(
            0.01,
            seed,
            SctpCfg::default(),
            move |env, _ep, a| {
                for i in 0..n_msgs {
                    sendmsg_blocking(&env, a, (i % 3) as u16, pattern(size, i as u8));
                }
            },
            move |env, ep, _a| {
                for _ in 0..n_msgs {
                    recvmsg_blocking(&env, ep);
                }
            },
        );
        (out.sim_time.as_nanos(), out.world.net.stats.drops_loss, out.world.net.stats.packets_delivered)
    }
    assert_eq!(run_once(77), run_once(77));
}
