//! End-to-end TCP tests: sockets driven by virtual processes over the
//! simulated cluster, with and without loss.

use bytes::Bytes;
use simcore::{Dur, ProcEnv, Runtime, SimTime};
use transport::tcp::{self, SockId};
use transport::World;

type Env = ProcEnv<World>;

fn connect_blocking(env: &Env, host: u16, dst_host: u16, dst_port: u16) -> SockId {
    let s = env.with(|w, ctx| tcp::connect(w, ctx, host, dst_host, dst_port));
    let me = env.id();
    env.block_on(|w, _| {
        if tcp::is_established(w, s) {
            Some(())
        } else {
            assert!(!tcp::is_failed(w, s), "connect failed");
            tcp::register_writer(w, s, me);
            None
        }
    });
    s
}

fn accept_blocking(env: &Env, host: u16, port: u16) -> SockId {
    let me = env.id();
    env.block_on(|w, _| match tcp::accept(w, host, port) {
        Some(s) => Some(s),
        None => {
            tcp::register_acceptor(w, host, port, me);
            None
        }
    })
}

fn send_all(env: &Env, s: SockId, data: Bytes) {
    let me = env.id();
    let mut off = 0usize;
    while off < data.len() {
        let chunk = data.slice(off..);
        let n = env.with(|w, ctx| tcp::send(w, ctx, s, &[chunk]));
        off += n;
        if off < data.len() && n == 0 {
            env.with(|w, _| tcp::register_writer(w, s, me));
            env.park();
        }
    }
}

fn recv_exact(env: &Env, s: SockId, n: usize) -> Vec<u8> {
    let me = env.id();
    let mut out = Vec::with_capacity(n);
    while out.len() < n {
        let want = n - out.len();
        let chunks = env.with(|w, ctx| tcp::recv(w, ctx, s, want));
        if chunks.is_empty() {
            env.with(|w, _| {
                assert!(!tcp::at_eof(w, s), "unexpected EOF");
                tcp::register_reader(w, s, me);
            });
            env.park();
        } else {
            for c in chunks {
                out.extend_from_slice(&c);
            }
        }
    }
    out
}

fn pattern(len: usize) -> Bytes {
    Bytes::from((0..len).map(|i| (i * 31 + 7) as u8).collect::<Vec<u8>>())
}

fn run_pair(
    loss: f64,
    seed: u64,
    client: impl FnOnce(Env, SockId) + Send + 'static,
    server: impl FnOnce(Env, SockId) + Send + 'static,
) -> simcore::RunOutcome<World> {
    let mut rt = Runtime::new(World::paper_cluster(loss), seed);
    rt.spawn("client", move |env: Env| {
        let s = connect_blocking(&env, 0, 1, 5000);
        client(env, s);
    });
    rt.spawn("server", move |env: Env| {
        env.with(|w, _| tcp::listen(w, 1, 5000));
        let s = accept_blocking(&env, 1, 5000);
        server(env, s);
    });
    rt.run()
}

#[test]
fn handshake_and_small_message() {
    let data = pattern(100);
    let expect = data.clone();
    run_pair(
        0.0,
        1,
        move |env, s| send_all(&env, s, data),
        move |env, s| {
            let got = recv_exact(&env, s, 100);
            assert_eq!(&got[..], &expect[..]);
        },
    );
}

#[test]
fn bidirectional_transfer() {
    let a = pattern(5000);
    let b = pattern(3000);
    let (ae, be) = (a.clone(), b.clone());
    run_pair(
        0.0,
        2,
        move |env, s| {
            send_all(&env, s, a);
            let got = recv_exact(&env, s, 3000);
            assert_eq!(&got[..], &be[..]);
        },
        move |env, s| {
            let got = recv_exact(&env, s, 5000);
            assert_eq!(&got[..], &ae[..]);
            send_all(&env, s, b);
        },
    );
}

#[test]
fn bulk_transfer_no_loss_is_wire_speed() {
    let n = 1_000_000;
    let data = pattern(n);
    let expect = data.clone();
    let out = run_pair(
        0.0,
        3,
        move |env, s| send_all(&env, s, data),
        move |env, s| {
            let got = recv_exact(&env, s, n);
            assert_eq!(got.len(), n);
            assert_eq!(&got[..64], &expect[..64]);
            assert_eq!(&got[n - 64..], &expect[n - 64..]);
        },
    );
    // 1 MB at 1 Gb/s is 8 ms on the wire; allow generous protocol overhead
    // (slow start) but catch gross stalls (an RTO would add a full second).
    let secs = out.sim_time.as_secs_f64();
    assert!(secs > 0.008, "faster than line rate? {secs}");
    assert!(secs < 0.1, "transfer too slow without loss: {secs}s");
}

#[test]
fn bulk_transfer_survives_heavy_loss_intact() {
    let n = 300_000;
    let data = pattern(n);
    let expect = data.clone();
    let out = run_pair(
        0.02,
        4,
        move |env, s| send_all(&env, s, data),
        move |env, s| {
            let got = recv_exact(&env, s, n);
            assert_eq!(&got[..], &expect[..], "corruption under loss");
        },
    );
    assert!(out.world.net.stats.drops_loss > 0, "loss must actually occur");
    let st = out.world.hosts[0].tcp.total_stats();
    assert!(st.retransmits > 0, "recovery must have happened");
}

#[test]
fn fast_retransmit_recovers_single_drop_quickly() {
    // With 0.3% loss and a large transfer, most losses recover via dup-ACKs.
    let n = 2_000_000;
    let data = pattern(n);
    let out = run_pair(
        0.003,
        5,
        move |env, s| send_all(&env, s, data),
        move |env, s| {
            let _ = recv_exact(&env, s, n);
        },
    );
    let st = out.world.hosts[0].tcp.total_stats();
    assert!(
        st.fast_retransmits > 0,
        "expected some fast retransmits, got stats {st:?}"
    );
}

#[test]
fn close_delivers_eof_and_half_close_allows_reply() {
    // Client sends, closes (FIN). Server reads to EOF, then still sends a
    // reply over the half-closed connection; client reads it.
    let data = pattern(1000);
    let reply = pattern(500);
    let (de, re) = (data.clone(), reply.clone());
    run_pair(
        0.0,
        6,
        move |env, s| {
            send_all(&env, s, data);
            env.with(|w, ctx| tcp::close(w, ctx, s));
            let got = recv_exact(&env, s, 500);
            assert_eq!(&got[..], &re[..]);
        },
        move |env, s| {
            let got = recv_exact(&env, s, 1000);
            assert_eq!(&got[..], &de[..]);
            // Wait for EOF.
            let me = env.id();
            env.block_on(|w, _| {
                if tcp::at_eof(w, s) {
                    Some(())
                } else {
                    tcp::register_reader(w, s, me);
                    None
                }
            });
            // Half-closed: we can still send.
            send_all(&env, s, reply);
            env.with(|w, ctx| tcp::close(w, ctx, s));
        },
    );
}

#[test]
fn flow_control_blocks_sender_until_receiver_drains() {
    // Receiver sleeps before reading; sender's 1 MB must not complete until
    // the receiver drains (220 KB rcvbuf + 220 KB sndbuf << 1 MB).
    let n = 1_000_000;
    let data = pattern(n);
    let done_at = std::sync::Arc::new(std::sync::Mutex::new(SimTime::ZERO));
    let done2 = done_at.clone();
    let out = run_pair(
        0.0,
        7,
        move |env, s| {
            send_all(&env, s, data);
            *done2.lock().unwrap() = env.now();
        },
        move |env, s| {
            env.sleep(Dur::from_secs(2));
            let got = recv_exact(&env, s, n);
            assert_eq!(got.len(), n);
        },
    );
    let sender_done = *done_at.lock().unwrap();
    assert!(
        sender_done > SimTime::ZERO + Dur::from_secs(2),
        "sender finished at {sender_done} — flow control did not block it"
    );
    assert!(out.sim_time > SimTime::ZERO + Dur::from_secs(2));
}

#[test]
fn zero_window_persist_probe_resumes_after_long_stall() {
    // Receiver stalls for 30 s (longer than any single RTO backoff stage);
    // persist probing must keep the connection alive and resume.
    let n = 500_000;
    let data = pattern(n);
    run_pair(
        0.0,
        8,
        move |env, s| send_all(&env, s, data),
        move |env, s| {
            env.sleep(Dur::from_secs(30));
            let got = recv_exact(&env, s, n);
            assert_eq!(got.len(), n);
        },
    );
}

#[test]
fn full_mesh_eight_hosts() {
    // Every pair of 8 hosts exchanges a message — the LAM-TCP topology.
    let mut rt = Runtime::new(World::paper_cluster(0.0), 9);
    let n = 8u16;
    for h in 0..n {
        rt.spawn(format!("h{h}"), move |env: Env| {
            env.with(|w, _| tcp::listen(w, h, 6000));
            // Connect to every higher rank; accept from every lower rank.
            let mut socks = Vec::new();
            for peer in (h + 1)..n {
                socks.push(connect_blocking(&env, h, peer, 6000));
            }
            for _ in 0..h {
                socks.push(accept_blocking(&env, h, 6000));
            }
            // Everyone sends its rank 100 times on every socket.
            let msg = Bytes::from(vec![h as u8; 100]);
            for &s in &socks {
                send_all(&env, s, msg.clone());
            }
            for &s in &socks {
                let got = recv_exact(&env, s, 100);
                assert!(got.iter().all(|&b| b == got[0]), "mixed bytes from one peer");
                assert_ne!(got[0], h as u8, "own rank echoed back?");
            }
        });
    }
    rt.run();
}

#[test]
fn deterministic_under_loss() {
    fn run_once(seed: u64) -> (u64, u64, u64) {
        let n = 200_000;
        let data = pattern(n);
        let out = run_pair(
            0.01,
            seed,
            move |env, s| send_all(&env, s, data),
            move |env, s| {
                let _ = recv_exact(&env, s, n);
            },
        );
        let st = out.world.hosts[0].tcp.total_stats();
        (out.sim_time.as_nanos(), st.retransmits, out.world.net.stats.drops_loss)
    }
    assert_eq!(run_once(42), run_once(42), "same seed must reproduce exactly");
    assert_ne!(
        run_once(42),
        run_once(44),
        "different seeds should draw different loss patterns"
    );
}

#[test]
fn connect_to_dead_host_fails_after_retries() {
    let mut rt = Runtime::new(World::paper_cluster(0.0), 10);
    rt.spawn("client", |env: Env| {
        // Nobody listens on host 1 port 7777.
        let s = env.with(|w, ctx| tcp::connect(w, ctx, 0, 1, 7777));
        let me = env.id();
        env.block_on(|w, _| {
            if tcp::is_failed(w, s) {
                Some(())
            } else {
                assert!(!tcp::is_established(w, s));
                tcp::register_writer(w, s, me);
                None
            }
        });
    });
    let out = rt.run();
    // 6 retries with exponential backoff from 3 s: tens of seconds.
    assert!(out.sim_time > SimTime::ZERO + Dur::from_secs(10));
}
